package bipartite

// MaxFlowPushRelabel computes the maximum s→t flow with the push-relabel
// (Goldberg–Tarjan) algorithm using the FIFO active-vertex rule and the
// two standard heuristics that make it fast in practice:
//
//   - gap relabeling: when a height level empties, every vertex above it is
//     lifted past n (it can no longer reach t);
//   - periodic global relabeling: heights reset to exact BFS distances from
//     t in the residual graph.
//
// It exists alongside Dinic as a design-choice ablation: the two flow
// engines expose very different constant factors on the shallow, wide
// networks the b-matching reduction produces, and BenchmarkFlowEngines
// quantifies the difference.  Results are cross-checked against Dinic in
// the tests, and per-arc flows are readable through Flow afterwards.
func (f *FlowNetwork) MaxFlowPushRelabel(s, t int) int64 {
	if s == t {
		panic("bipartite: MaxFlowPushRelabel with s == t")
	}
	f.ensureAdj()
	n := f.n
	height := make([]int32, n)
	excess := make([]int64, n)
	countAt := make([]int32, 2*n+1) // vertices per height level

	// Initial heights from a backward BFS from t (global relabel).
	globalRelabel := func() {
		for i := range height {
			height[i] = int32(2 * n)
		}
		height[t] = 0
		queue := make([]int32, 0, n)
		queue = append(queue, int32(t))
		for qi := 0; qi < len(queue); qi++ {
			v := queue[qi]
			for a, end := f.adjOff[v], f.adjOff[v+1]; a < end; a++ {
				// Arc a^1 is w→v; it must have residual capacity.
				w := f.es[a].to
				if f.es[f.pairPos[a]].cap > 0 && height[w] == int32(2*n) && int(w) != s {
					height[w] = height[v] + 1
					queue = append(queue, w)
				}
			}
		}
		height[s] = int32(n)
		for i := range countAt {
			countAt[i] = 0
		}
		for v := 0; v < n; v++ {
			countAt[height[v]]++
		}
	}
	globalRelabel()

	// Saturate all source arcs.
	active := make([]int32, 0, n)
	inActive := make([]bool, n)
	enqueue := func(v int32) {
		if !inActive[v] && excess[v] > 0 && int(v) != s && int(v) != t {
			inActive[v] = true
			active = append(active, v)
		}
	}
	for a, end := f.adjOff[s], f.adjOff[s+1]; a < end; a++ {
		if f.es[a].cap > 0 {
			d := f.es[a].cap
			f.es[a].cap -= d
			f.es[f.pairPos[a]].cap += d
			excess[f.es[a].to] += d
			excess[s] -= d
			enqueue(f.es[a].to)
		}
	}

	relabels := 0
	work := 0
	for len(active) > 0 {
		v := active[0]
		active = active[1:]
		inActive[v] = false
		// Discharge v.
		for excess[v] > 0 {
			pushed := false
			for a, end := f.adjOff[v], f.adjOff[v+1]; a < end; a++ {
				if excess[v] <= 0 {
					break
				}
				w := f.es[a].to
				if f.es[a].cap > 0 && height[v] == height[w]+1 {
					d := min64(excess[v], f.es[a].cap)
					f.es[a].cap -= d
					f.es[f.pairPos[a]].cap += d
					excess[v] -= d
					excess[w] += d
					enqueue(w)
					pushed = true
				}
				work++
			}
			if excess[v] == 0 {
				break
			}
			if !pushed {
				// Relabel with gap heuristic.
				old := height[v]
				minH := int32(2 * n)
				for a, end := f.adjOff[v], f.adjOff[v+1]; a < end; a++ {
					if f.es[a].cap > 0 && height[f.es[a].to] < minH {
						minH = height[f.es[a].to]
					}
				}
				if minH >= int32(2*n) {
					height[v] = int32(2 * n)
				} else {
					height[v] = minH + 1
				}
				countAt[old]--
				countAt[height[v]]++
				if countAt[old] == 0 && old < int32(n) {
					// Gap: lift everything above the emptied level.
					for u := 0; u < n; u++ {
						if height[u] > old && height[u] < int32(n) && u != s {
							countAt[height[u]]--
							height[u] = int32(n + 1)
							countAt[height[u]]++
						}
					}
				}
				relabels++
				if height[v] >= int32(2*n) {
					break // v can never push again
				}
			}
			// Periodic global relabeling keeps heights sharp.
			if work > 8*n && relabels > n {
				globalRelabel()
				work = 0
				relabels = 0
			}
		}
	}
	return excess[t]
}
