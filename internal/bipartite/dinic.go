package bipartite

// FlowNetwork is a directed graph with edge capacities, used for maximum
// flow (Dinic) and, with costs, minimum-cost flow.  Edges are stored in the
// standard paired-arc layout: edge i and its residual reverse edge i^1 are
// adjacent, so residual updates are branch-free.
type FlowNetwork struct {
	n     int
	head  []int32 // head[v] = first arc index of v, -1 if none
	next  []int32 // next[a] = next arc after a
	to    []int32
	cap   []int64
	cost  []int64
	flows int // number of AddEdge calls
}

// NewFlowNetwork creates a network with n vertices and capacity hint for m
// edges (each AddEdge consumes two arcs).
func NewFlowNetwork(n, m int) *FlowNetwork {
	if n < 0 {
		panic("bipartite: negative vertex count")
	}
	f := &FlowNetwork{
		n:    n,
		head: make([]int32, n),
		next: make([]int32, 0, 2*m),
		to:   make([]int32, 0, 2*m),
		cap:  make([]int64, 0, 2*m),
		cost: make([]int64, 0, 2*m),
	}
	for i := range f.head {
		f.head[i] = -1
	}
	return f
}

// N returns the number of vertices.
func (f *FlowNetwork) N() int { return f.n }

// AddEdge adds a directed edge u→v with the given capacity and cost and its
// zero-capacity reverse arc.  It returns the arc index, from which the flow
// can later be read with Flow.  It panics on out-of-range endpoints or
// negative capacity.
func (f *FlowNetwork) AddEdge(u, v int, capacity, cost int64) int {
	if u < 0 || u >= f.n || v < 0 || v >= f.n {
		panic("bipartite: AddEdge endpoint out of range")
	}
	if capacity < 0 {
		panic("bipartite: negative capacity")
	}
	a := int32(len(f.to))
	f.to = append(f.to, int32(v), int32(u))
	f.cap = append(f.cap, capacity, 0)
	f.cost = append(f.cost, cost, -cost)
	f.next = append(f.next, f.head[u], f.head[v])
	f.head[u] = a
	f.head[v] = a + 1
	f.flows++
	return int(a)
}

// Flow returns the flow currently pushed through arc a (the capacity of its
// reverse arc).
func (f *FlowNetwork) Flow(a int) int64 { return f.cap[a^1] }

// MaxFlow computes the maximum s→t flow with Dinic's algorithm in
// O(V²·E) general time, O(E·√V) on unit-capacity bipartite networks.
// The residual capacities are left in place so callers can read per-arc
// flows afterwards.
func (f *FlowNetwork) MaxFlow(s, t int) int64 {
	if s == t {
		panic("bipartite: MaxFlow with s == t")
	}
	const inf = int64(1) << 62
	level := make([]int32, f.n)
	iter := make([]int32, f.n)
	queue := make([]int32, 0, f.n)

	bfs := func() bool {
		for i := range level {
			level[i] = -1
		}
		level[s] = 0
		queue = queue[:0]
		queue = append(queue, int32(s))
		for qi := 0; qi < len(queue); qi++ {
			v := queue[qi]
			for a := f.head[v]; a != -1; a = f.next[a] {
				if f.cap[a] > 0 && level[f.to[a]] == -1 {
					level[f.to[a]] = level[v] + 1
					queue = append(queue, f.to[a])
				}
			}
		}
		return level[t] != -1
	}

	var dfs func(v int32, up int64) int64
	dfs = func(v int32, up int64) int64 {
		if v == int32(t) {
			return up
		}
		for ; iter[v] != -1; iter[v] = f.next[iter[v]] {
			a := iter[v]
			w := f.to[a]
			if f.cap[a] > 0 && level[w] == level[v]+1 {
				d := dfs(w, min64(up, f.cap[a]))
				if d > 0 {
					f.cap[a] -= d
					f.cap[a^1] += d
					return d
				}
			}
		}
		return 0
	}

	var total int64
	for bfs() {
		copy(iter, f.head)
		for {
			d := dfs(int32(s), inf)
			if d == 0 {
				break
			}
			total += d
		}
	}
	return total
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
