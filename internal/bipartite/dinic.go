package bipartite

// FlowNetwork is a directed graph with edge capacities, used for maximum
// flow (Dinic) and, with costs, minimum-cost flow.  Edges are stored in the
// standard paired-arc layout: edge i and its residual reverse edge i^1 are
// adjacent, so residual updates are branch-free.
//
// Arcs are ingested in AddEdge order into a staging array (raw) and, once
// arcs stop being added, laid out in CSR position order: a vertex's
// out-arcs occupy the contiguous records es[adjOff[v]:adjOff[v+1]], sorted
// by arc id, so the relaxation kernels stream memory sequentially instead
// of chasing a linked list or an arc-id indirection.  pairPos maps a
// position to its reverse arc's position, posOfArc an AddEdge-order arc id
// to its position.  Reset rebuilds a same-shape network inside the
// previous arenas.
type FlowNetwork struct {
	n   int
	raw []flowArc // staging, AddEdge (arc-id) order

	es       []flowArc // live arcs in CSR position order
	adjOff   []int32   // vertex v's arcs live at es[adjOff[v]:adjOff[v+1]]
	pairPos  []int32   // position of the paired reverse arc, per position
	posOfArc []int32   // arc id → position
	dirty    bool
	flows    int // number of AddEdge calls
}

// flowArc is one directed arc of the paired-arc layout.  Head, residual
// capacity and cost live interleaved in a single record so the relaxation
// loops touch one cache line per arc instead of three parallel arrays —
// on large networks the Dijkstra sweep is memory-bound and the layout is
// worth a sizeable constant factor.
type flowArc struct {
	to        int32
	cap, cost int64
}

// NewFlowNetwork creates a network with n vertices and capacity hint for m
// edges (each AddEdge consumes two arcs).
func NewFlowNetwork(n, m int) *FlowNetwork {
	f := &FlowNetwork{}
	f.Reset(n, m)
	return f
}

// Reset re-initialises f to an empty network with n vertices and a capacity
// hint of m AddEdge calls, retaining every backing array that is already
// large enough.  It panics on a negative vertex count.
func (f *FlowNetwork) Reset(n, m int) {
	if n < 0 {
		panic("bipartite: negative vertex count")
	}
	f.n = n
	if cap(f.raw) < 2*m {
		f.raw = make([]flowArc, 0, 2*m)
	} else {
		f.raw = f.raw[:0]
	}
	f.posOfArc = f.posOfArc[:0] // discard any previous build's residual state
	f.flows = 0
	f.dirty = true
}

// RebuildNetwork re-arenas net for an n-vertex, m-edge instance: it resets a
// non-nil network in place (reusing its allocations — the steady state of
// repeated same-shape solves) and allocates a fresh one otherwise.
func RebuildNetwork(net *FlowNetwork, n, m int) *FlowNetwork {
	if net == nil {
		return NewFlowNetwork(n, m)
	}
	net.Reset(n, m)
	return net
}

// N returns the number of vertices.
func (f *FlowNetwork) N() int { return f.n }

// NumArcs returns the number of arcs including residual reverses.
func (f *FlowNetwork) NumArcs() int { return len(f.raw) }

// AddEdge adds a directed edge u→v with the given capacity and cost and its
// zero-capacity reverse arc.  It returns the arc index, from which the flow
// can later be read with Flow.  It panics on out-of-range endpoints or
// negative capacity.
func (f *FlowNetwork) AddEdge(u, v int, capacity, cost int64) int {
	if u < 0 || u >= f.n || v < 0 || v >= f.n {
		panic("bipartite: AddEdge endpoint out of range")
	}
	if capacity < 0 {
		panic("bipartite: negative capacity")
	}
	a := int32(len(f.raw))
	f.raw = append(f.raw,
		flowArc{to: int32(v), cap: capacity, cost: cost},
		flowArc{to: int32(u), cap: 0, cost: -cost})
	f.flows++
	f.dirty = true
	return int(a)
}

// ensureAdj (re)builds the position-ordered arc records in two counted
// passes.  An arc's tail is the head of its paired reverse arc; arcs
// appear in each vertex's block in ascending arc id, so iteration order is
// deterministic and independent of how the layout is rebuilt.
func (f *FlowNetwork) ensureAdj() {
	if !f.dirty {
		return
	}
	// A previous build's es records hold the live residual capacities;
	// fold them back into staging order first so adding arcs after a solve
	// does not discard flow state.
	for a, p := range f.posOfArc {
		f.raw[a].cap = f.es[p].cap
	}
	off := growI32(f.adjOff, f.n+1)
	clear(off)
	for a := range f.raw {
		off[f.raw[a^1].to+1]++
	}
	for v := 0; v < f.n; v++ {
		off[v+1] += off[v]
	}
	es := growArcs(f.es, len(f.raw))
	posOfArc := growI32(f.posOfArc, len(f.raw))
	for a := range f.raw {
		u := f.raw[a^1].to
		p := off[u]
		es[p] = f.raw[a]
		posOfArc[a] = p
		off[u]++
	}
	for v := f.n; v > 0; v-- {
		off[v] = off[v-1]
	}
	off[0] = 0
	pairPos := growI32(f.pairPos, len(f.raw))
	for a, p := range posOfArc {
		pairPos[p] = posOfArc[a^1]
	}
	f.adjOff, f.es, f.posOfArc, f.pairPos = off, es, posOfArc, pairPos
	f.dirty = false
}

// Flow returns the flow currently pushed through arc a (an AddEdge return
// value) — the residual capacity of its reverse arc.
func (f *FlowNetwork) Flow(a int) int64 {
	f.ensureAdj()
	return f.es[f.posOfArc[a^1]].cap
}

// MaxFlow computes the maximum s→t flow with Dinic's algorithm in
// O(V²·E) general time, O(E·√V) on unit-capacity bipartite networks.
// The residual capacities are left in place so callers can read per-arc
// flows afterwards.  Scratch comes from a pooled FlowWorkspace; use
// MaxFlowWS to pin one across calls.
func (f *FlowNetwork) MaxFlow(s, t int) int64 {
	ws, pooled := acquireFlowWorkspace(nil)
	total := f.MaxFlowWS(s, t, ws)
	releaseFlowWorkspace(ws, pooled)
	return total
}

// MaxFlowWS is MaxFlow drawing its level/iterator/frontier scratch from ws.
func (f *FlowNetwork) MaxFlowWS(s, t int, ws *FlowWorkspace) int64 {
	if s == t {
		panic("bipartite: MaxFlow with s == t")
	}
	f.ensureAdj()
	const inf = int64(1) << 62
	level := growI32(ws.level, f.n)
	iter := growI32(ws.iter, f.n)
	queue := growI32(ws.queue, f.n)
	ws.level, ws.iter, ws.queue = level, iter, queue

	es, pairPos := f.es, f.pairPos
	bfs := func() bool {
		for i := range level {
			level[i] = -1
		}
		level[s] = 0
		queue = queue[:1]
		queue[0] = int32(s)
		for qi := 0; qi < len(queue); qi++ {
			v := queue[qi]
			for a, end := f.adjOff[v], f.adjOff[v+1]; a < end; a++ {
				if w := es[a].to; es[a].cap > 0 && level[w] == -1 {
					level[w] = level[v] + 1
					queue = append(queue, w)
				}
			}
		}
		return level[t] != -1
	}

	var dfs func(v int32, up int64) int64
	dfs = func(v int32, up int64) int64 {
		if v == int32(t) {
			return up
		}
		for end := f.adjOff[v+1]; iter[v] < end; iter[v]++ {
			a := iter[v]
			w := es[a].to
			if es[a].cap > 0 && level[w] == level[v]+1 {
				d := dfs(w, min64(up, es[a].cap))
				if d > 0 {
					es[a].cap -= d
					es[pairPos[a]].cap += d
					return d
				}
			}
		}
		return 0
	}

	var total int64
	for bfs() {
		// Cooperative cancellation, one poll per level-graph phase —
		// mirrors the augmentation-loop check in MinCostFlowWS.
		if ws.Stop != nil && ws.Stop() {
			break
		}
		copy(iter, f.adjOff[:f.n])
		for {
			d := dfs(int32(s), inf)
			if d == 0 {
				break
			}
			total += d
		}
	}
	return total
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
