package bipartite

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

// bruteMaxWeightBMatching enumerates all edge subsets (instances are kept
// tiny) and returns the best feasible total weight.
func bruteMaxWeightBMatching(g *Graph, capL, capR []int) float64 {
	m := g.NumEdges()
	if m > 20 {
		panic("brute force limited to 20 edges")
	}
	best := 0.0
	for mask := 0; mask < 1<<m; mask++ {
		degL := make([]int, g.NL())
		degR := make([]int, g.NR())
		w := 0.0
		ok := true
		for i := 0; i < m && ok; i++ {
			if mask&(1<<i) == 0 {
				continue
			}
			e := g.Edge(i)
			degL[e.L]++
			degR[e.R]++
			if degL[e.L] > capL[e.L] || degR[e.R] > capR[e.R] {
				ok = false
			}
			w += e.Weight
		}
		if ok && w > best {
			best = w
		}
	}
	return best
}

func feasible(t *testing.T, g *Graph, m BMatching, capL, capR []int) {
	t.Helper()
	degL := make([]int, g.NL())
	degR := make([]int, g.NR())
	seen := map[int]bool{}
	total := 0.0
	for _, ei := range m.EdgeIdx {
		if seen[ei] {
			t.Fatalf("edge %d chosen twice", ei)
		}
		seen[ei] = true
		e := g.Edge(ei)
		degL[e.L]++
		degR[e.R]++
		total += e.Weight
	}
	for l, d := range degL {
		if d > capL[l] {
			t.Fatalf("left %d over capacity: %d > %d", l, d, capL[l])
		}
	}
	for r, d := range degR {
		if d > capR[r] {
			t.Fatalf("right %d over capacity: %d > %d", r, d, capR[r])
		}
	}
	if math.Abs(total-m.Weight) > 1e-9 {
		t.Fatalf("reported weight %v != recomputed %v", m.Weight, total)
	}
}

func TestMaxWeightBMatchingSimple(t *testing.T) {
	// Two workers, one task needing 1 worker: must pick the heavier edge.
	g := NewGraph(2, 1)
	g.AddEdge(0, 0, 0.3)
	g.AddEdge(1, 0, 0.9)
	m := MaxWeightBMatching(g, []int{1, 1}, []int{1})
	if len(m.EdgeIdx) != 1 || g.Edge(m.EdgeIdx[0]).L != 1 {
		t.Fatalf("picked %v", m)
	}
	if math.Abs(m.Weight-0.9) > 1e-9 {
		t.Fatalf("weight %v", m.Weight)
	}
}

func TestMaxWeightBMatchingUsesCapacities(t *testing.T) {
	// One worker with capacity 2 serving two tasks.
	g := NewGraph(1, 2)
	g.AddEdge(0, 0, 0.5)
	g.AddEdge(0, 1, 0.6)
	m := MaxWeightBMatching(g, []int{2}, []int{1, 1})
	if len(m.EdgeIdx) != 2 || math.Abs(m.Weight-1.1) > 1e-9 {
		t.Fatalf("m = %+v", m)
	}
	// With capacity 1 only the better edge survives.
	m = MaxWeightBMatching(g, []int{1}, []int{1, 1})
	if len(m.EdgeIdx) != 1 || math.Abs(m.Weight-0.6) > 1e-9 {
		t.Fatalf("m = %+v", m)
	}
}

func TestMaxWeightBMatchingZeroCapacity(t *testing.T) {
	g := NewGraph(1, 1)
	g.AddEdge(0, 0, 1)
	m := MaxWeightBMatching(g, []int{0}, []int{1})
	if len(m.EdgeIdx) != 0 {
		t.Fatal("zero-capacity worker must stay unmatched")
	}
}

func TestMaxWeightBMatchingEmptyGraph(t *testing.T) {
	g := NewGraph(3, 3)
	m := MaxWeightBMatching(g, []int{1, 1, 1}, []int{1, 1, 1})
	if len(m.EdgeIdx) != 0 || m.Weight != 0 {
		t.Fatalf("m = %+v", m)
	}
}

func TestMaxWeightBMatchingTradesCardinalityForWeight(t *testing.T) {
	// A single heavy edge can beat two light ones when they conflict:
	// L0-R0 (1.0) vs L0-R1 (0.2) + L1-R0 (0.2) with all capacities 1.
	// Max weight picks both light? 0.4 < 1.0, and the heavy edge blocks
	// neither light edge's partner... actually heavy uses L0 and R0, blocking
	// both light edges, so the choice is {heavy}=1.0 vs {two light}=0.4.
	g := NewGraph(2, 2)
	g.AddEdge(0, 0, 1.0)
	g.AddEdge(0, 1, 0.2)
	g.AddEdge(1, 0, 0.2)
	m := MaxWeightBMatching(g, []int{1, 1}, []int{1, 1})
	// Optimum is heavy + nothing else? L0-R0 (1.0) plus no other feasible
	// edge (L1-R1 absent) = 1.0, vs 0.4.  But wait: with heavy chosen, L1
	// and R1 are free yet not adjacent.  So best = 1.0.
	if math.Abs(m.Weight-1.0) > 1e-9 {
		t.Fatalf("weight = %v, want 1.0 (%+v)", m.Weight, m)
	}
}

func TestMaxWeightBMatchingMatchesBruteForce(t *testing.T) {
	r := stats.NewRNG(606)
	for trial := 0; trial < 60; trial++ {
		nL := r.IntRange(1, 4)
		nR := r.IntRange(1, 4)
		g := NewGraph(nL, nR)
		for l := 0; l < nL; l++ {
			for rr := 0; rr < nR; rr++ {
				if r.Bool(0.6) && g.NumEdges() < 12 {
					// Two-decimal weights keep the scaled-integer solver and
					// the float brute force exactly comparable.
					g.AddEdge(l, rr, math.Round(r.Float64()*100)/100)
				}
			}
		}
		capL := make([]int, nL)
		capR := make([]int, nR)
		for i := range capL {
			capL[i] = r.IntRange(0, 3)
		}
		for i := range capR {
			capR[i] = r.IntRange(0, 3)
		}
		m := MaxWeightBMatching(g, capL, capR)
		feasible(t, g, m, capL, capR)
		want := bruteMaxWeightBMatching(g, capL, capR)
		if math.Abs(m.Weight-want) > 1e-6 {
			t.Fatalf("trial %d: flow %v vs brute %v", trial, m.Weight, want)
		}
	}
}

func TestMaxWeightBMatchingMatchesHungarianOnSquare(t *testing.T) {
	r := stats.NewRNG(707)
	for trial := 0; trial < 20; trial++ {
		n := r.IntRange(2, 8)
		g := NewGraph(n, n)
		weight := make([][]float64, n)
		for i := 0; i < n; i++ {
			weight[i] = make([]float64, n)
			for j := 0; j < n; j++ {
				w := math.Round(r.Float64()*1000) / 1000
				weight[i][j] = w
				g.AddEdge(i, j, w)
			}
		}
		ones := make([]int, n)
		for i := range ones {
			ones[i] = 1
		}
		m := MaxWeightBMatching(g, ones, ones)
		_, hTotal := HungarianMax(weight)
		// Hungarian solves the *perfect* matching variant; with non-negative
		// weights the max-weight b-matching is at least as good and the
		// perfect matching is feasible for it, so they must agree.
		if m.Weight < hTotal-1e-6 {
			t.Fatalf("trial %d: bmatching %v < hungarian %v", trial, m.Weight, hTotal)
		}
		if m.Weight > hTotal+1e-6 {
			// b-matching can only exceed Hungarian by being non-perfect, but
			// dropping an edge never raises a non-negative sum: impossible.
			t.Fatalf("trial %d: bmatching %v > hungarian %v", trial, m.Weight, hTotal)
		}
	}
}

func TestMaxWeightBMatchingPanics(t *testing.T) {
	g := NewGraph(1, 1)
	g.AddEdge(0, 0, -0.5)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("negative weight did not panic")
			}
		}()
		MaxWeightBMatching(g, []int{1}, []int{1})
	}()
	g2 := NewGraph(2, 1)
	g2.AddEdge(0, 0, 1)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("capacity length mismatch did not panic")
			}
		}()
		MaxWeightBMatching(g2, []int{1}, []int{1, 1})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("negative capacity did not panic")
			}
		}()
		MaxWeightBMatching(g2, []int{-1, 1}, []int{1})
	}()
}

// Property: the solver's result is always feasible and never below the
// weight of any single edge (with positive capacities).
func TestQuickBMatchingFeasibleAndMaximal(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		nL := r.IntRange(1, 6)
		nR := r.IntRange(1, 6)
		g := NewGraph(nL, nR)
		for l := 0; l < nL; l++ {
			for rr := 0; rr < nR; rr++ {
				if r.Bool(0.4) {
					g.AddEdge(l, rr, r.Float64())
				}
			}
		}
		capL := make([]int, nL)
		capR := make([]int, nR)
		for i := range capL {
			capL[i] = r.IntRange(1, 3)
		}
		for i := range capR {
			capR[i] = r.IntRange(1, 3)
		}
		m := MaxWeightBMatching(g, capL, capR)
		degL := make([]int, nL)
		degR := make([]int, nR)
		for _, ei := range m.EdgeIdx {
			e := g.Edge(ei)
			degL[e.L]++
			degR[e.R]++
		}
		for l, d := range degL {
			if d > capL[l] {
				return false
			}
		}
		for r2, d := range degR {
			if d > capR[r2] {
				return false
			}
		}
		// With all capacities >= 1, the optimum is at least the max edge.
		maxEdge := 0.0
		for _, e := range g.Edges() {
			if e.Weight > maxEdge {
				maxEdge = e.Weight
			}
		}
		return m.Weight >= maxEdge-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxCardinalityBMatching(t *testing.T) {
	g := NewGraph(2, 2)
	g.AddEdge(0, 0, 0.1)
	g.AddEdge(0, 1, 0.1)
	g.AddEdge(1, 0, 0.1)
	m := MaxCardinalityBMatching(g, []int{1, 1}, []int{1, 1})
	if len(m.EdgeIdx) != 2 {
		t.Fatalf("cardinality = %d, want 2", len(m.EdgeIdx))
	}
	// With worker 0 capacity 2, all three edges fit? deg constraints:
	// L0 ≤ 2 (edges to R0,R1), L1 ≤ 1 (edge to R0) but R0 ≤ 1 blocks one.
	m = MaxCardinalityBMatching(g, []int{2, 1}, []int{1, 1})
	if len(m.EdgeIdx) != 2 {
		t.Fatalf("cardinality = %d, want 2", len(m.EdgeIdx))
	}
	m = MaxCardinalityBMatching(g, []int{2, 1}, []int{2, 1})
	if len(m.EdgeIdx) != 3 {
		t.Fatalf("cardinality = %d, want 3", len(m.EdgeIdx))
	}
}

// TestBMatchingZeroCapacitySkipsArcs is the regression test for the flow
// reduction's zero-capacity handling: edges whose worker or task has
// capacity 0 must not emit unit arcs at all (they could never carry flow),
// and the solve must still match the brute-force optimum of the remaining
// market.
func TestBMatchingZeroCapacitySkipsArcs(t *testing.T) {
	g := NewGraph(3, 3)
	g.AddEdge(0, 0, 0.9) // worker 0 has capacity 0: excluded however heavy
	g.AddEdge(0, 1, 0.8)
	g.AddEdge(1, 1, 0.7)
	g.AddEdge(1, 2, 0.6) // task 2 has replication 0: excluded
	g.AddEdge(2, 1, 0.5)
	capL := []int{0, 1, 1}
	capR := []int{1, 1, 0}

	net, edgeArc, _, _ := buildAssignmentNetwork(nil, g, capL, capR, true)
	for i, want := range []bool{true, true, false, true, false} {
		if skipped := edgeArc[i] < 0; skipped != want {
			t.Errorf("edge %d: skipped = %v, want %v", i, skipped, want)
		}
	}
	// Arcs: 2 usable source arcs (workers 1, 2), 2 unit arcs, 2 sink arcs
	// (tasks 0, 1) — 6 AddEdge calls → 12 paired arcs, and nothing for the
	// zero-capacity endpoints.
	if net.NumArcs() != 12 {
		t.Errorf("network has %d arcs, want 12", net.NumArcs())
	}

	m := MaxWeightBMatching(g, capL, capR)
	feasible(t, g, m, capL, capR)
	if want := bruteMaxWeightBMatching(g, capL, capR); math.Abs(m.Weight-want) > 1e-9 {
		t.Errorf("weight %v, want brute-force optimum %v", m.Weight, want)
	}
	// Best remaining: worker 1 takes task 1 (0.7); worker 2 blocked on task
	// 1, task 0 unreachable — optimum 0.7 via edge 2.
	if len(m.EdgeIdx) != 1 || m.EdgeIdx[0] != 2 {
		t.Errorf("picked %v, want [2]", m.EdgeIdx)
	}

	// The cardinality solver shares the reduction and must skip too.
	mc := MaxCardinalityBMatching(g, capL, capR)
	feasible(t, g, mc, capL, capR)
	if len(mc.EdgeIdx) != 1 {
		t.Errorf("cardinality picked %v, want one edge", mc.EdgeIdx)
	}
}
