package bipartite

import (
	"math"
	"testing"

	"repro/internal/stats"
)

func TestMinCostFlowSimple(t *testing.T) {
	// Two parallel paths s→t: cost 1 cap 2, cost 3 cap 2.  Pushing 3 units
	// should cost 2·1 + 1·3 = 5.
	f := NewFlowNetwork(2, 2)
	f.AddEdge(0, 1, 2, 1)
	f.AddEdge(0, 1, 2, 3)
	res := f.MinCostFlow(0, 1, 3, false)
	if res.Flow != 3 || res.Cost != 5 {
		t.Fatalf("res = %+v, want flow 3 cost 5", res)
	}
}

func TestMinCostFlowPrefersCheapPath(t *testing.T) {
	// s→a→t cost 10, s→b→t cost 1; one unit must take the b route.
	f := NewFlowNetwork(4, 4)
	f.AddEdge(0, 1, 1, 5)
	f.AddEdge(1, 3, 1, 5)
	f.AddEdge(0, 2, 1, 0)
	f.AddEdge(2, 3, 1, 1)
	res := f.MinCostFlow(0, 3, 1, false)
	if res.Flow != 1 || res.Cost != 1 {
		t.Fatalf("res = %+v", res)
	}
}

func TestMinCostFlowNegativeCosts(t *testing.T) {
	// A negative-cost edge must be exploited: s→a cost -5, a→t cost 1.
	f := NewFlowNetwork(3, 2)
	f.AddEdge(0, 1, 2, -5)
	f.AddEdge(1, 2, 2, 1)
	res := f.MinCostFlow(0, 2, 10, false)
	if res.Flow != 2 || res.Cost != -8 {
		t.Fatalf("res = %+v, want flow 2 cost -8", res)
	}
}

func TestMinCostFlowStopAtNonNegative(t *testing.T) {
	// Path A: cost -3 (profitable), path B: cost +2 (unprofitable).
	// With stopAtNonNegative the solver must push only path A.
	f := NewFlowNetwork(4, 4)
	f.AddEdge(0, 1, 1, -3)
	f.AddEdge(1, 3, 1, 0)
	f.AddEdge(0, 2, 1, 2)
	f.AddEdge(2, 3, 1, 0)
	res := f.MinCostFlow(0, 3, 10, true)
	if res.Flow != 1 || res.Cost != -3 {
		t.Fatalf("res = %+v, want flow 1 cost -3", res)
	}
}

func TestMinCostFlowRespectsMaxFlow(t *testing.T) {
	f := NewFlowNetwork(2, 1)
	f.AddEdge(0, 1, 100, 1)
	res := f.MinCostFlow(0, 1, 7, false)
	if res.Flow != 7 || res.Cost != 7 {
		t.Fatalf("res = %+v", res)
	}
}

func TestMinCostFlowUnreachable(t *testing.T) {
	f := NewFlowNetwork(3, 1)
	f.AddEdge(0, 1, 5, 1)
	res := f.MinCostFlow(0, 2, 5, false)
	if res.Flow != 0 || res.Cost != 0 {
		t.Fatalf("res = %+v", res)
	}
}

// bruteMinCostAssign computes, by permutation enumeration, the min-cost
// perfect assignment on an n×n cost matrix.
func bruteMinCostAssign(cost [][]int64) int64 {
	n := len(cost)
	best := int64(math.MaxInt64)
	used := make([]bool, n)
	var rec func(i int, acc int64)
	rec = func(i int, acc int64) {
		if i == n {
			if acc < best {
				best = acc
			}
			return
		}
		for j := 0; j < n; j++ {
			if !used[j] {
				used[j] = true
				rec(i+1, acc+cost[i][j])
				used[j] = false
			}
		}
	}
	rec(0, 0)
	return best
}

func TestMinCostFlowMatchesBruteAssignment(t *testing.T) {
	r := stats.NewRNG(404)
	for trial := 0; trial < 40; trial++ {
		n := r.IntRange(1, 6)
		cost := make([][]int64, n)
		for i := range cost {
			cost[i] = make([]int64, n)
			for j := range cost[i] {
				cost[i][j] = int64(r.IntRange(-10, 20))
			}
		}
		// Flow network: source 0, rows 1..n, cols n+1..2n, sink 2n+1.
		f := NewFlowNetwork(2*n+2, n*n+2*n)
		for i := 0; i < n; i++ {
			f.AddEdge(0, 1+i, 1, 0)
			f.AddEdge(1+n+i, 2*n+1, 1, 0)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				f.AddEdge(1+i, 1+n+j, 1, cost[i][j])
			}
		}
		res := f.MinCostFlow(0, 2*n+1, int64(n), false)
		want := bruteMinCostAssign(cost)
		if res.Flow != int64(n) || res.Cost != want {
			t.Fatalf("trial %d (n=%d): flow %d cost %d, want cost %d",
				trial, n, res.Flow, res.Cost, want)
		}
	}
}

func TestMinCostFlowMatchesHungarian(t *testing.T) {
	r := stats.NewRNG(505)
	for trial := 0; trial < 20; trial++ {
		n := r.IntRange(2, 10)
		costF := make([][]float64, n)
		costI := make([][]int64, n)
		for i := 0; i < n; i++ {
			costF[i] = make([]float64, n)
			costI[i] = make([]int64, n)
			for j := 0; j < n; j++ {
				c := r.IntRange(0, 50)
				costF[i][j] = float64(c)
				costI[i][j] = int64(c)
			}
		}
		_, hTotal := Hungarian(costF)

		f := NewFlowNetwork(2*n+2, n*n+2*n)
		for i := 0; i < n; i++ {
			f.AddEdge(0, 1+i, 1, 0)
			f.AddEdge(1+n+i, 2*n+1, 1, 0)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				f.AddEdge(1+i, 1+n+j, 1, costI[i][j])
			}
		}
		res := f.MinCostFlow(0, 2*n+1, int64(n), false)
		if int64(hTotal) != res.Cost {
			t.Fatalf("trial %d: Hungarian %v vs MCMF %d", trial, hTotal, res.Cost)
		}
	}
}

func TestMinCostFlowPanicsOnSameST(t *testing.T) {
	f := NewFlowNetwork(2, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("s == t did not panic")
		}
	}()
	f.MinCostFlow(1, 1, 1, false)
}
