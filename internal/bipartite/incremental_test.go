package bipartite

import (
	"math/rand"
	"testing"
)

// mirrorEdge tracks one live matcher arc for the test's oracle model.
type mirrorEdge struct {
	l, r int
	w    float64
}

// mirrorState mirrors the matcher's live instance in plain slices so each
// round can be re-solved cold as an oracle.
type mirrorState struct {
	capL, capR     []int
	aliveL, aliveR []bool
	edges          map[int32]mirrorEdge // keyed by matcher arc id
}

// oracleObjective cold-solves the mirrored instance and returns the
// scaled-integer objective — the quantity DeltaMatcher.Objective reports.
func (ms *mirrorState) oracleObjective(t *testing.T) int64 {
	t.Helper()
	mapL := make([]int, len(ms.capL))
	mapR := make([]int, len(ms.capR))
	var capL, capR []int
	for l := range ms.capL {
		mapL[l] = -1
		if ms.aliveL[l] {
			mapL[l] = len(capL)
			capL = append(capL, ms.capL[l])
		}
	}
	for r := range ms.capR {
		mapR[r] = -1
		if ms.aliveR[r] {
			mapR[r] = len(capR)
			capR = append(capR, ms.capR[r])
		}
	}
	g := NewGraph(len(capL), len(capR))
	for _, e := range ms.edges {
		g.AddEdge(mapL[e.l], mapR[e.r], e.w)
	}
	m := MaxWeightBMatching(g, capL, capR)
	var scaled int64
	for _, ei := range m.EdgeIdx {
		scaled += -ScaledCost(g.Edge(ei).Weight)
	}
	return scaled
}

// seedMirror builds a random instance, seeds the matcher from a full solve
// and returns the synced mirror.
func seedMirror(t *testing.T, m *DeltaMatcher, rng *rand.Rand, nL, nR int, density float64) *mirrorState {
	t.Helper()
	ms := &mirrorState{edges: map[int32]mirrorEdge{}}
	g := NewGraph(nL, nR)
	type raw struct {
		l, r int
		w    float64
	}
	var raws []raw
	for l := 0; l < nL; l++ {
		ms.capL = append(ms.capL, 1+rng.Intn(3))
		ms.aliveL = append(ms.aliveL, true)
	}
	for r := 0; r < nR; r++ {
		ms.capR = append(ms.capR, 1+rng.Intn(2))
		ms.aliveR = append(ms.aliveR, true)
	}
	for l := 0; l < nL; l++ {
		for r := 0; r < nR; r++ {
			if rng.Float64() < density {
				w := rng.Float64()
				g.AddEdge(l, r, w)
				raws = append(raws, raw{l, r, w})
			}
		}
	}
	if _, err := m.SolveFull(g, ms.capL, ms.capR, nil); err != nil {
		t.Fatalf("SolveFull: %v", err)
	}
	// SolveFull allocates arcs in edge order, so re-associate by walking
	// each left slot's arcs through their ext tags.
	for l := 0; l < nL; l++ {
		for _, a := range m.ArcsOfLeft(l) {
			_, _, _, _, ext := m.Arc(a)
			ms.edges[a] = mirrorEdge{l: raws[ext].l, r: raws[ext].r, w: raws[ext].w}
		}
	}
	if len(ms.edges) != len(raws) {
		t.Fatalf("mirror lost edges: %d != %d", len(ms.edges), len(raws))
	}
	return ms
}

func livePick(rng *rand.Rand, alive []bool) int {
	var live []int
	for i, a := range alive {
		if a {
			live = append(live, i)
		}
	}
	if len(live) == 0 {
		return -1
	}
	return live[rng.Intn(len(live))]
}

// TestDeltaMatcherChurnOracle drives random removal / arrival / re-pricing
// batches through the matcher and checks, every round, that Reoptimize
// restores a matching whose scaled objective is bit-identical to a cold
// exact solve of the same instance, and that every internal invariant
// (balances, capacities, dual feasibility) holds.
func TestDeltaMatcherChurnOracle(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		m := &DeltaMatcher{}
		ms := seedMirror(t, m, rng, 25, 18, 0.25)
		for round := 0; round < 30; round++ {
			ops := 1 + rng.Intn(6)
			for k := 0; k < ops; k++ {
				switch rng.Intn(6) {
				case 0: // remove a worker
					if l := livePick(rng, ms.aliveL); l >= 0 {
						m.RemoveLeft(l)
						ms.aliveL[l] = false
						for a, e := range ms.edges {
							if e.l == l {
								delete(ms.edges, a)
							}
						}
					}
				case 1: // remove a task
					if r := livePick(rng, ms.aliveR); r >= 0 {
						m.RemoveRight(r)
						ms.aliveR[r] = false
						for a, e := range ms.edges {
							if e.r == r {
								delete(ms.edges, a)
							}
						}
					}
				case 2: // new worker with arcs to a few live tasks
					capacity := 1 + rng.Intn(3)
					l := m.AddLeft(capacity)
					for len(ms.capL) <= l {
						ms.capL = append(ms.capL, 0)
						ms.aliveL = append(ms.aliveL, false)
					}
					ms.capL[l] = capacity
					ms.aliveL[l] = true
					for i := 0; i < 4; i++ {
						if r := livePick(rng, ms.aliveR); r >= 0 {
							if dupArc(ms, l, r) {
								continue
							}
							w := rng.Float64()
							a := m.AddArc(l, r, ScaledCost(w), -1)
							ms.edges[a] = mirrorEdge{l: l, r: r, w: w}
						}
					}
				case 3: // new task with arcs from a few live workers
					capacity := 1 + rng.Intn(2)
					r := m.AddRight(capacity)
					for len(ms.capR) <= r {
						ms.capR = append(ms.capR, 0)
						ms.aliveR = append(ms.aliveR, false)
					}
					ms.capR[r] = capacity
					ms.aliveR[r] = true
					for i := 0; i < 4; i++ {
						if l := livePick(rng, ms.aliveL); l >= 0 {
							if dupArc(ms, l, r) {
								continue
							}
							w := rng.Float64()
							a := m.AddArc(l, r, ScaledCost(w), -1)
							ms.edges[a] = mirrorEdge{l: l, r: r, w: w}
						}
					}
				case 4: // re-price an existing edge
					for a, e := range ms.edges {
						w := rng.Float64()
						m.SetArcCost(a, ScaledCost(w))
						e.w = w
						ms.edges[a] = e
						break
					}
				case 5: // fresh eligibility between existing entities
					l, r := livePick(rng, ms.aliveL), livePick(rng, ms.aliveR)
					if l >= 0 && r >= 0 && !dupArc(ms, l, r) {
						w := rng.Float64()
						a := m.AddArc(l, r, ScaledCost(w), -1)
						ms.edges[a] = mirrorEdge{l: l, r: r, w: w}
					}
				}
			}
			if _, err := m.Reoptimize(); err != nil {
				t.Fatalf("seed %d round %d: Reoptimize: %v", seed, round, err)
			}
			if m.totalDeficit != 0 {
				t.Fatalf("seed %d round %d: deficit %d after Reoptimize", seed, round, m.totalDeficit)
			}
			if err := m.Verify(); err != nil {
				t.Fatalf("seed %d round %d: Verify: %v", seed, round, err)
			}
			want := ms.oracleObjective(t)
			if got := m.Objective(); got != want {
				t.Fatalf("seed %d round %d: objective %d != oracle %d", seed, round, got, want)
			}
		}
	}
}

func dupArc(ms *mirrorState, l, r int) bool {
	for _, e := range ms.edges {
		if e.l == l && e.r == r {
			return true
		}
	}
	return false
}

// TestDeltaMatcherRemovalCycle reproduces the case that breaks naive
// cancel-and-re-augment schemes: removing a worker leaves a negative
// residual cycle through the sink that only the merged-ST view repairs.
// l0 is matched to r1 (its best partner r0 being taken by l1); removing
// l1 must reroute l0 to r0.
func TestDeltaMatcherRemovalCycle(t *testing.T) {
	g := NewGraph(2, 2)
	g.AddEdge(0, 0, 0.9) // l0–r0
	g.AddEdge(0, 1, 0.1) // l0–r1
	g.AddEdge(1, 0, 1.0) // l1–r0
	m := &DeltaMatcher{}
	if _, err := m.SolveFull(g, []int{1, 1}, []int{1, 1}, nil); err != nil {
		t.Fatalf("SolveFull: %v", err)
	}
	if got, want := m.Objective(), -ScaledCost(1.0)-ScaledCost(0.1); got != want {
		t.Fatalf("seed objective %d, want %d", got, want)
	}
	m.RemoveLeft(1)
	if _, err := m.Reoptimize(); err != nil {
		t.Fatalf("Reoptimize: %v", err)
	}
	if err := m.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if got, want := m.Objective(), -ScaledCost(0.9); got != want {
		t.Fatalf("objective after removal %d, want %d (l0 must reroute to r0)", got, want)
	}
	if m.MatchedCount() != 1 {
		t.Fatalf("matched %d, want 1", m.MatchedCount())
	}
}

// TestDeltaMatcherFromEmpty seeds from an edgeless instance and grows the
// whole market through the delta path.
func TestDeltaMatcherFromEmpty(t *testing.T) {
	m := &DeltaMatcher{}
	if _, err := m.SolveFull(NewGraph(0, 0), nil, nil, nil); err != nil {
		t.Fatalf("SolveFull: %v", err)
	}
	l0 := m.AddLeft(2)
	r0 := m.AddRight(1)
	r1 := m.AddRight(1)
	m.AddArc(l0, r0, ScaledCost(0.5), -1)
	m.AddArc(l0, r1, ScaledCost(0.25), -1)
	if _, err := m.Reoptimize(); err != nil {
		t.Fatalf("Reoptimize: %v", err)
	}
	if err := m.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if got, want := m.Objective(), -ScaledCost(0.5)-ScaledCost(0.25); got != want {
		t.Fatalf("objective %d, want %d", got, want)
	}
}

// TestWarmStartMatchesCold checks the rebuilt-network warm path: a pinned
// workspace carries duals across solves, the second solve reports warm
// engagement, and perturbed weights still produce the cold optimum.
func TestWarmStartMatchesCold(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	nL, nR := 40, 30
	weights := make([]float64, 0, nL*nR)
	build := func() *Graph {
		g := NewGraph(nL, nR)
		i := 0
		for l := 0; l < nL; l++ {
			for r := 0; r < nR; r++ {
				if (l+r)%3 == 0 {
					g.AddEdge(l, r, weights[i])
					i++
				}
			}
		}
		return g
	}
	for l := 0; l < nL; l++ {
		for r := 0; r < nR; r++ {
			if (l+r)%3 == 0 {
				weights = append(weights, rng.Float64())
			}
		}
	}
	capL := make([]int, nL)
	capR := make([]int, nR)
	for i := range capL {
		capL[i] = 1 + rng.Intn(2)
	}
	for i := range capR {
		capR[i] = 1 + rng.Intn(2)
	}
	ws := NewFlowWorkspace()
	first, info := MaxWeightBMatchingWarmWS(build(), capL, capR, ws)
	if info.Warm {
		t.Fatal("first solve cannot be warm")
	}
	// Same instance again: duals must validate (repair allowed — the
	// rebuilt network has zero flow, so previously saturated arcs start
	// violated) and the result must be identical.
	second, info := MaxWeightBMatchingWarmWS(build(), capL, capR, ws)
	if !info.Warm {
		t.Fatalf("second solve not warm: %+v", info)
	}
	if first.Weight != second.Weight {
		t.Fatalf("warm weight %v != cold weight %v", second.Weight, first.Weight)
	}
	// Perturb weights; warm solve must still match a cold reference.
	for i := range weights {
		if rng.Float64() < 0.2 {
			weights[i] = rng.Float64()
		}
	}
	warm, _ := MaxWeightBMatchingWarmWS(build(), capL, capR, ws)
	cold := MaxWeightBMatching(build(), capL, capR)
	var sw, sc int64
	g := build()
	for _, ei := range warm.EdgeIdx {
		sw += -ScaledCost(g.Edge(ei).Weight)
	}
	for _, ei := range cold.EdgeIdx {
		sc += -ScaledCost(g.Edge(ei).Weight)
	}
	if sw != sc {
		t.Fatalf("warm objective %d != cold %d after perturbation", sw, sc)
	}
	// Shape change (one more left vertex) must refuse the carried duals
	// gracefully and fall back cold.
	nL++
	weights = weights[:0]
	for l := 0; l < nL; l++ {
		for r := 0; r < nR; r++ {
			if (l+r)%3 == 0 {
				weights = append(weights, rng.Float64())
			}
		}
	}
	capL = append(capL, 1)
	grown, info := MaxWeightBMatchingWarmWS(build(), capL, capR, ws)
	if info.Warm {
		t.Fatal("size change must cold-start")
	}
	ref := MaxWeightBMatching(build(), capL, capR)
	if grown.Weight != ref.Weight {
		t.Fatalf("fallback weight %v != cold %v", grown.Weight, ref.Weight)
	}
}
