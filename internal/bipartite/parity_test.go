package bipartite

import (
	"math"
	"slices"
	"testing"

	"repro/internal/stats"
)

// The parity suite pins every overhauled workspace kernel against its
// retained Serial reference, bit for bit: identical matched pair sets,
// identical weights, identical per-arc flows — across seeds, three graph
// generators and repeated solves through one pinned workspace (so arena
// reuse cannot leak state between instances).

// graphGen builds a random bipartite instance: graph plus both capacity
// vectors.  Weights are two-decimal so scaled-integer and float arithmetic
// stay exactly comparable.
type graphGen struct {
	name string
	gen  func(r *stats.RNG) (*Graph, []int, []int)
}

func parityGenerators() []graphGen {
	return []graphGen{
		{"uniform-sparse", func(r *stats.RNG) (*Graph, []int, []int) {
			nL, nR := r.IntRange(1, 12), r.IntRange(1, 12)
			g := NewGraph(nL, nR)
			for l := 0; l < nL; l++ {
				for rr := 0; rr < nR; rr++ {
					if r.Bool(0.25) {
						g.AddEdge(l, rr, math.Round(r.Float64()*100)/100)
					}
				}
			}
			return g, randomCaps(r, nL, 0, 3), randomCaps(r, nR, 0, 3)
		}},
		{"dense", func(r *stats.RNG) (*Graph, []int, []int) {
			nL, nR := r.IntRange(2, 8), r.IntRange(2, 8)
			g := NewGraph(nL, nR)
			for l := 0; l < nL; l++ {
				for rr := 0; rr < nR; rr++ {
					if r.Bool(0.9) {
						g.AddEdge(l, rr, math.Round(r.Float64()*100)/100)
					}
				}
			}
			return g, randomCaps(r, nL, 1, 4), randomCaps(r, nR, 1, 4)
		}},
		{"skewed", func(r *stats.RNG) (*Graph, []int, []int) {
			// A handful of popular right vertices soak up most edges —
			// the shape the Zipf market generators produce.
			nL, nR := r.IntRange(3, 14), r.IntRange(2, 10)
			g := NewGraph(nL, nR)
			for l := 0; l < nL; l++ {
				deg := r.IntRange(0, 4)
				for k := 0; k < deg; k++ {
					rr := r.IntRange(0, nR/2+1)
					if rr >= nR {
						rr = nR - 1
					}
					g.AddEdge(l, rr, math.Round(r.Float64()*100)/100)
				}
			}
			return g, randomCaps(r, nL, 0, 2), randomCaps(r, nR, 1, 5)
		}},
	}
}

func randomCaps(r *stats.RNG, n, lo, hi int) []int {
	caps := make([]int, n)
	for i := range caps {
		caps[i] = r.IntRange(lo, hi)
	}
	return caps
}

func matchingsEqual(t *testing.T, label string, got, want BMatching) {
	t.Helper()
	if !slices.Equal(got.EdgeIdx, want.EdgeIdx) {
		t.Fatalf("%s: edge sets diverge:\n  ws     %v\n  serial %v", label, got.EdgeIdx, want.EdgeIdx)
	}
	if got.Weight != want.Weight {
		t.Fatalf("%s: weights diverge: ws %v serial %v", label, got.Weight, want.Weight)
	}
}

// TestMaxWeightBMatchingBitIdenticalToSerial pins the workspace exact
// solver against MaxWeightBMatchingSerial across 24 seeds × all generators,
// solving every instance through one pinned workspace so cross-instance
// arena reuse is part of what is tested.
func TestMaxWeightBMatchingBitIdenticalToSerial(t *testing.T) {
	ws := NewFlowWorkspace()
	for _, gen := range parityGenerators() {
		for seed := uint64(0); seed < 24; seed++ {
			r := stats.NewRNG(seed*7919 + 13)
			g, capL, capR := gen.gen(r)
			want := MaxWeightBMatchingSerial(g, capL, capR)
			got := MaxWeightBMatchingWS(g, capL, capR, ws)
			matchingsEqual(t, gen.name, got, want)
			// A second solve through the warmed workspace must not drift.
			again := MaxWeightBMatchingWS(g, capL, capR, ws)
			matchingsEqual(t, gen.name+"/reuse", again, want)
		}
	}
}

// TestMaxCardinalityBMatchingBitIdenticalToSerial does the same for the
// Dinic-based feasibility solver.
func TestMaxCardinalityBMatchingBitIdenticalToSerial(t *testing.T) {
	ws := NewFlowWorkspace()
	for _, gen := range parityGenerators() {
		for seed := uint64(0); seed < 24; seed++ {
			r := stats.NewRNG(seed*104729 + 7)
			g, capL, capR := gen.gen(r)
			want := MaxCardinalityBMatchingSerial(g, capL, capR)
			got := MaxCardinalityBMatchingWS(g, capL, capR, ws)
			matchingsEqual(t, gen.name, got, want)
		}
	}
}

// TestHopcroftKarpBitIdenticalToSerial pins the frontier-reusing kernel
// against the retained seed implementation.
func TestHopcroftKarpBitIdenticalToSerial(t *testing.T) {
	ws := NewFlowWorkspace()
	for _, gen := range parityGenerators() {
		for seed := uint64(0); seed < 24; seed++ {
			r := stats.NewRNG(seed*31 + 3)
			g, _, _ := gen.gen(r)
			wantM, wantSize := HopcroftKarpSerial(g)
			gotM, gotSize := HopcroftKarpWS(g, ws)
			if gotSize != wantSize || !slices.Equal(gotM, wantM) {
				t.Fatalf("%s seed %d: ws (%d, %v) vs serial (%d, %v)",
					gen.name, seed, gotSize, gotM, wantSize, wantM)
			}
		}
	}
}

// TestHungarianBitIdenticalToSerial pins the hoisted-scratch kernel (and
// its on-the-fly negating max variant) against the retained per-row
// allocating seed implementation.
func TestHungarianBitIdenticalToSerial(t *testing.T) {
	ws := NewFlowWorkspace()
	for seed := uint64(0); seed < 30; seed++ {
		r := stats.NewRNG(seed*1009 + 17)
		n := r.IntRange(1, 9)
		m := n + r.IntRange(0, 4)
		cost := make([][]float64, n)
		neg := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, m)
			neg[i] = make([]float64, m)
			for j := range cost[i] {
				cost[i][j] = math.Round(r.Float64()*1000) / 1000
				neg[i][j] = -cost[i][j]
			}
		}
		wantM, wantT := HungarianSerial(cost)
		gotM, gotT := HungarianWS(cost, ws)
		if gotT != wantT || !slices.Equal(gotM, wantM) {
			t.Fatalf("seed %d: ws (%v, %v) vs serial (%v, %v)", seed, gotT, gotM, wantT, wantM)
		}
		// The max variant must equal the serial min solve of the negated
		// matrix, pair for pair.
		negM, negT := HungarianSerial(neg)
		maxM, maxT := HungarianMaxWS(cost, ws)
		if !slices.Equal(maxM, negM) {
			t.Fatalf("seed %d: max rowMatch %v vs negated serial %v", seed, maxM, negM)
		}
		if maxT != -negT {
			t.Fatalf("seed %d: max total %v vs negated serial %v", seed, maxT, -negT)
		}
	}
}

// TestMinCostFlowBitIdenticalToSerial compares the workspace solver against
// the Bellman–Ford reference on random layered networks with negative
// costs: identical flow, cost and full residual state.
func TestMinCostFlowBitIdenticalToSerial(t *testing.T) {
	ws := NewFlowWorkspace()
	for seed := uint64(0); seed < 30; seed++ {
		r := stats.NewRNG(seed*2741 + 29)
		n := r.IntRange(4, 12)
		build := func() *FlowNetwork {
			r := stats.NewRNG(seed*2741 + 29)
			r.IntRange(4, 12) // burn the same draw
			f := NewFlowNetwork(n, n*n)
			for u := 0; u < n; u++ {
				for v := u + 1; v < n; v++ {
					if r.Bool(0.4) {
						f.AddEdge(u, v, int64(r.IntRange(1, 5)), int64(r.IntRange(0, 9))-3)
					}
				}
			}
			return f
		}
		a, b := build(), build()
		stop := seed%2 == 0
		ra := a.MinCostFlowWS(0, n-1, 1<<40, stop, ws)
		rb := b.MinCostFlowSerial(0, n-1, 1<<40, stop)
		if ra != rb {
			t.Fatalf("seed %d: ws %+v vs serial %+v", seed, ra, rb)
		}
		if !slices.Equal(a.es, b.es) {
			t.Fatalf("seed %d: residual capacities diverge", seed)
		}
	}
}

// TestMaxWeightBMatchingWSAllocs enforces the steady-state allocation
// budget: with a warmed pinned workspace an exact solve allocates only the
// returned matching (EdgeIdx) — a handful of allocs, not a per-augmentation
// storm.
func TestMaxWeightBMatchingWSAllocs(t *testing.T) {
	r := stats.NewRNG(99)
	nL, nR := 40, 30
	g := NewGraph(nL, nR)
	for l := 0; l < nL; l++ {
		for rr := 0; rr < nR; rr++ {
			if r.Bool(0.3) {
				g.AddEdge(l, rr, math.Round(r.Float64()*100)/100)
			}
		}
	}
	capL := randomCaps(r, nL, 1, 3)
	capR := randomCaps(r, nR, 1, 3)
	ws := NewFlowWorkspace()
	MaxWeightBMatchingWS(g, capL, capR, ws) // warm the arenas
	allocs := testing.AllocsPerRun(20, func() {
		MaxWeightBMatchingWS(g, capL, capR, ws)
	})
	if allocs > 4 {
		t.Fatalf("steady-state exact solve allocates %.0f/op, want <= 4", allocs)
	}
}

// TestFlowWorkspaceShapeChange checks a pinned workspace survives solving
// instances of very different shapes back to back — arenas grow, never
// corrupt.
func TestFlowWorkspaceShapeChange(t *testing.T) {
	ws := NewFlowWorkspace()
	r := stats.NewRNG(5)
	shapes := []struct{ nL, nR int }{{2, 3}, {20, 15}, {1, 1}, {8, 30}}
	for _, sh := range shapes {
		g := NewGraph(sh.nL, sh.nR)
		for l := 0; l < sh.nL; l++ {
			for rr := 0; rr < sh.nR; rr++ {
				if r.Bool(0.5) {
					g.AddEdge(l, rr, math.Round(r.Float64()*100)/100)
				}
			}
		}
		capL := randomCaps(r, sh.nL, 1, 2)
		capR := randomCaps(r, sh.nR, 1, 2)
		matchingsEqual(t, "shape-change",
			MaxWeightBMatchingWS(g, capL, capR, ws),
			MaxWeightBMatchingSerial(g, capL, capR))
	}
}
