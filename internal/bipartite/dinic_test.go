package bipartite

import (
	"testing"

	"repro/internal/stats"
)

func TestMaxFlowDiamond(t *testing.T) {
	// s→a(3), s→b(2), a→t(2), b→t(3), a→b(1): max flow = 5? No:
	// s can emit 5, t can absorb 5, a receives 3 can push 2+1=3, b receives
	// 2+1 pushes 3 → total 5.
	f := NewFlowNetwork(4, 5)
	s, a, b, tt := 0, 1, 2, 3
	f.AddEdge(s, a, 3, 0)
	f.AddEdge(s, b, 2, 0)
	f.AddEdge(a, tt, 2, 0)
	f.AddEdge(b, tt, 3, 0)
	f.AddEdge(a, b, 1, 0)
	if got := f.MaxFlow(s, tt); got != 5 {
		t.Fatalf("max flow = %d, want 5", got)
	}
}

func TestMaxFlowDisconnected(t *testing.T) {
	f := NewFlowNetwork(3, 1)
	f.AddEdge(0, 1, 10, 0)
	if got := f.MaxFlow(0, 2); got != 0 {
		t.Fatalf("flow to unreachable sink = %d", got)
	}
}

func TestMaxFlowBottleneck(t *testing.T) {
	// Chain s→a→b→t with capacities 10, 1, 10: flow must be 1.
	f := NewFlowNetwork(4, 3)
	f.AddEdge(0, 1, 10, 0)
	f.AddEdge(1, 2, 1, 0)
	f.AddEdge(2, 3, 10, 0)
	if got := f.MaxFlow(0, 3); got != 1 {
		t.Fatalf("flow = %d", got)
	}
}

func TestMaxFlowPerArcFlows(t *testing.T) {
	f := NewFlowNetwork(3, 2)
	a1 := f.AddEdge(0, 1, 4, 0)
	a2 := f.AddEdge(1, 2, 3, 0)
	total := f.MaxFlow(0, 2)
	if total != 3 {
		t.Fatalf("flow = %d", total)
	}
	if f.Flow(a1) != 3 || f.Flow(a2) != 3 {
		t.Fatalf("arc flows = %d, %d", f.Flow(a1), f.Flow(a2))
	}
}

func TestMaxFlowRequiresResidual(t *testing.T) {
	// Classic instance where a naive greedy path choice must be undone via
	// the residual arc: two crossing paths sharing a middle edge.
	f := NewFlowNetwork(6, 7)
	s, a, b, c, d, tt := 0, 1, 2, 3, 4, 5
	f.AddEdge(s, a, 1, 0)
	f.AddEdge(s, b, 1, 0)
	f.AddEdge(a, c, 1, 0)
	f.AddEdge(b, c, 1, 0)
	f.AddEdge(c, d, 1, 0)
	f.AddEdge(a, d, 1, 0)
	f.AddEdge(d, tt, 2, 0)
	if got := f.MaxFlow(s, tt); got != 2 {
		t.Fatalf("flow = %d, want 2", got)
	}
}

func TestMaxFlowAgainstBruteMinCut(t *testing.T) {
	// On random small DAGs, verify max-flow ≤ capacity of every s-t cut we
	// sample, and equals at least one (max-flow min-cut spot check).
	r := stats.NewRNG(303)
	for trial := 0; trial < 20; trial++ {
		n := r.IntRange(4, 8)
		f := NewFlowNetwork(n, n*n)
		type arc struct {
			u, v int
			c    int64
		}
		var arcs []arc
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if r.Bool(0.5) {
					c := int64(r.IntRange(1, 5))
					f.AddEdge(u, v, c, 0)
					arcs = append(arcs, arc{u, v, c})
				}
			}
		}
		flow := f.MaxFlow(0, n-1)
		// Enumerate all cuts (S contains 0, complement contains n-1).
		minCut := int64(1) << 62
		for mask := 0; mask < 1<<(n-2); mask++ {
			inS := make([]bool, n)
			inS[0] = true
			for bit := 0; bit < n-2; bit++ {
				inS[bit+1] = mask&(1<<bit) != 0
			}
			var cut int64
			for _, a := range arcs {
				if inS[a.u] && !inS[a.v] {
					cut += a.c
				}
			}
			if cut < minCut {
				minCut = cut
			}
		}
		if flow != minCut {
			t.Fatalf("trial %d: flow %d != min cut %d", trial, flow, minCut)
		}
	}
}

func TestFlowNetworkPanics(t *testing.T) {
	f := NewFlowNetwork(2, 1)
	cases := []func(){
		func() { f.AddEdge(-1, 0, 1, 0) },
		func() { f.AddEdge(0, 2, 1, 0) },
		func() { f.AddEdge(0, 1, -1, 0) },
		func() { f.MaxFlow(0, 0) },
		func() { NewFlowNetwork(-1, 0) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}
