package bipartite

import "math"

// weightScale converts float64 edge weights in a bounded range into int64
// costs for the flow solver.  1e9 preserves nine decimal digits — far below
// the noise floor of the benefit models — while leaving ~9 decimal orders of
// headroom before int64 overflow on million-edge instances.
const weightScale = 1e9

// BMatching is a degree-constrained matching: a set of chosen edge indices
// together with the achieved total weight.
type BMatching struct {
	EdgeIdx []int   // indices into the Graph's edge slice
	Weight  float64 // sum of chosen edge weights
}

// MaxWeightBMatching computes an exact maximum-weight b-matching of g:
// a subset M of edges maximising Σweight such that every left vertex l is
// covered at most capL[l] times and every right vertex r at most capR[r]
// times.  Edge weights must be non-negative (benefit values are); it panics
// otherwise.
//
// This is the paper's exact solver for the linear mutual-benefit objective:
// source → worker arcs with capacity capL, per-edge unit arcs carrying the
// negated scaled weight, task → sink arcs with capacity capR, then min-cost
// flow with the stop-at-non-negative rule so only benefit-positive
// augmenting paths are taken.
func MaxWeightBMatching(g *Graph, capL, capR []int) BMatching {
	if len(capL) != g.NL() || len(capR) != g.NR() {
		panic("bipartite: capacity slice length mismatch")
	}
	nL, nR := g.NL(), g.NR()
	// Vertex layout: 0 = source, 1..nL = left, nL+1..nL+nR = right, last = sink.
	s := 0
	t := nL + nR + 1
	net := NewFlowNetwork(nL+nR+2, g.NumEdges()+nL+nR)

	for l := 0; l < nL; l++ {
		if capL[l] < 0 {
			panic("bipartite: negative left capacity")
		}
		if capL[l] > 0 && g.DegreeL(l) > 0 {
			net.AddEdge(s, 1+l, int64(capL[l]), 0)
		}
	}
	edgeArc := make([]int, g.NumEdges())
	for i, e := range g.Edges() {
		if e.Weight < 0 {
			panic("bipartite: MaxWeightBMatching requires non-negative weights")
		}
		c := -int64(math.Round(e.Weight * weightScale))
		edgeArc[i] = net.AddEdge(1+e.L, 1+nL+e.R, 1, c)
	}
	for r := 0; r < nR; r++ {
		if capR[r] < 0 {
			panic("bipartite: negative right capacity")
		}
		if capR[r] > 0 && g.DegreeR(r) > 0 {
			net.AddEdge(1+nL+r, t, int64(capR[r]), 0)
		}
	}

	net.MinCostFlow(s, t, int64(1)<<60, true)

	var m BMatching
	for i := range g.Edges() {
		if net.Flow(edgeArc[i]) > 0 {
			m.EdgeIdx = append(m.EdgeIdx, i)
			m.Weight += g.Edge(i).Weight
		}
	}
	return m
}

// MaxCardinalityBMatching computes a maximum-cardinality b-matching (degree
// constraints, ignore weights) via Dinic max-flow.  Used for feasibility
// analysis: how many assignment slots can be filled at all.
func MaxCardinalityBMatching(g *Graph, capL, capR []int) BMatching {
	if len(capL) != g.NL() || len(capR) != g.NR() {
		panic("bipartite: capacity slice length mismatch")
	}
	nL, nR := g.NL(), g.NR()
	s := 0
	t := nL + nR + 1
	net := NewFlowNetwork(nL+nR+2, g.NumEdges()+nL+nR)
	for l := 0; l < nL; l++ {
		if capL[l] > 0 && g.DegreeL(l) > 0 {
			net.AddEdge(s, 1+l, int64(capL[l]), 0)
		}
	}
	edgeArc := make([]int, g.NumEdges())
	for i, e := range g.Edges() {
		edgeArc[i] = net.AddEdge(1+e.L, 1+nL+e.R, 1, 0)
	}
	for r := 0; r < nR; r++ {
		if capR[r] > 0 && g.DegreeR(r) > 0 {
			net.AddEdge(1+nL+r, t, int64(capR[r]), 0)
		}
	}
	net.MaxFlow(s, t)
	var m BMatching
	for i := range g.Edges() {
		if net.Flow(edgeArc[i]) > 0 {
			m.EdgeIdx = append(m.EdgeIdx, i)
			m.Weight += g.Edge(i).Weight
		}
	}
	return m
}
