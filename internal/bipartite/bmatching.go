package bipartite

import "math"

// weightScale converts float64 edge weights in a bounded range into int64
// costs for the flow solver.  1e9 preserves nine decimal digits — far below
// the noise floor of the benefit models — while leaving ~9 decimal orders of
// headroom before int64 overflow on million-edge instances.
const weightScale = 1e9

// ScaledCost converts a non-negative edge weight into the negated scaled
// int64 cost the flow kernels minimise.  Exported so incremental callers
// (DeltaMatcher, core's incremental solver) produce costs bit-identical to
// buildAssignmentNetwork — objective equality across solve paths depends on
// every path quantising weights through this exact function.
func ScaledCost(w float64) int64 {
	return -int64(math.Round(w * weightScale))
}

// BMatching is a degree-constrained matching: a set of chosen edge indices
// together with the achieved total weight.
type BMatching struct {
	EdgeIdx []int   // indices into the Graph's edge slice
	Weight  float64 // sum of chosen edge weights
}

// buildAssignmentNetwork materialises the b-matching flow reduction shared
// by the weighted and cardinality solvers.  Vertex layout: 0 = source,
// 1..nL = left, nL+1..nL+nR = right, last = sink — source < left block <
// right block < sink, so vertex order is topological and MinCostFlowWS's
// O(E) potential sweep applies.
//
// Arcs: source → left with capacity capL (skipped for zero-capacity or
// isolated vertices), one unit arc per graph edge carrying the negated
// scaled weight when weighted (skipped entirely when either endpoint has
// zero capacity — a cap-0 arc can never carry flow and only bloats the
// network; skipped entries get edgeArc[i] = -1), right → sink with capacity
// capR.  The network is built into ws's retained arena when ws is non-nil,
// freshly allocated otherwise.  It panics on capacity-length mismatch,
// negative capacities, or (when weighted) negative weights.
func buildAssignmentNetwork(ws *FlowWorkspace, g *Graph, capL, capR []int, weighted bool) (net *FlowNetwork, edgeArc []int32, s, t int) {
	if len(capL) != g.NL() || len(capR) != g.NR() {
		panic("bipartite: capacity slice length mismatch")
	}
	nL, nR := g.NL(), g.NR()
	s = 0
	t = nL + nR + 1
	if ws != nil {
		net = RebuildNetwork(&ws.net, nL+nR+2, g.NumEdges()+nL+nR)
		ws.edgeArc = growI32(ws.edgeArc, g.NumEdges())
		edgeArc = ws.edgeArc
	} else {
		net = NewFlowNetwork(nL+nR+2, g.NumEdges()+nL+nR)
		edgeArc = make([]int32, g.NumEdges())
	}

	for l := 0; l < nL; l++ {
		if capL[l] < 0 {
			panic("bipartite: negative left capacity")
		}
		if capL[l] > 0 && g.DegreeL(l) > 0 {
			net.AddEdge(s, 1+l, int64(capL[l]), 0)
		}
	}
	for i, e := range g.Edges() {
		if weighted && e.Weight < 0 {
			panic("bipartite: MaxWeightBMatching requires non-negative weights")
		}
		if capL[e.L] == 0 || capR[e.R] == 0 {
			edgeArc[i] = -1
			continue
		}
		var c int64
		if weighted {
			c = ScaledCost(e.Weight)
		}
		edgeArc[i] = int32(net.AddEdge(1+e.L, 1+nL+e.R, 1, c))
	}
	for r := 0; r < nR; r++ {
		if capR[r] < 0 {
			panic("bipartite: negative right capacity")
		}
		if capR[r] > 0 && g.DegreeR(r) > 0 {
			net.AddEdge(1+nL+r, t, int64(capR[r]), 0)
		}
	}
	return net, edgeArc, s, t
}

// collectMatching reads the chosen edges back out of the solved network:
// one exactly-sized allocation for the caller-owned index slice.
func collectMatching(g *Graph, net *FlowNetwork, edgeArc []int32) BMatching {
	var m BMatching
	chosen := 0
	for i := range g.Edges() {
		if edgeArc[i] >= 0 && net.Flow(int(edgeArc[i])) > 0 {
			chosen++
		}
	}
	if chosen == 0 {
		return m
	}
	m.EdgeIdx = make([]int, 0, chosen)
	for i := range g.Edges() {
		if edgeArc[i] >= 0 && net.Flow(int(edgeArc[i])) > 0 {
			m.EdgeIdx = append(m.EdgeIdx, i)
			m.Weight += g.Edge(i).Weight
		}
	}
	return m
}

// MaxWeightBMatching computes an exact maximum-weight b-matching of g:
// a subset M of edges maximising Σweight such that every left vertex l is
// covered at most capL[l] times and every right vertex r at most capR[r]
// times.  Edge weights must be non-negative (benefit values are); it panics
// otherwise.
//
// This is the paper's exact solver for the linear mutual-benefit objective:
// source → worker arcs with capacity capL, per-edge unit arcs carrying the
// negated scaled weight, task → sink arcs with capacity capR, then min-cost
// flow with the stop-at-non-negative rule so only benefit-positive
// augmenting paths are taken.  Scratch and the network arena come from a
// pooled FlowWorkspace; MaxWeightBMatchingWS pins one across solves.
func MaxWeightBMatching(g *Graph, capL, capR []int) BMatching {
	return MaxWeightBMatchingWS(g, capL, capR, nil)
}

// MaxWeightBMatchingWS is MaxWeightBMatching solving inside ws: the flow
// network is rebuilt in ws's retained arena and every kernel scratch array
// is reused, so steady-state repeated solves allocate only the returned
// matching.  A nil ws borrows one from the package pool.
func MaxWeightBMatchingWS(g *Graph, capL, capR []int, ws *FlowWorkspace) BMatching {
	ws, pooled := acquireFlowWorkspace(ws)
	net, edgeArc, s, t := buildAssignmentNetwork(ws, g, capL, capR, true)
	net.MinCostFlowWS(s, t, int64(1)<<60, true, ws)
	m := collectMatching(g, net, edgeArc)
	releaseFlowWorkspace(ws, pooled)
	return m
}

// MaxCardinalityBMatching computes a maximum-cardinality b-matching (degree
// constraints, ignore weights) via Dinic max-flow.  Used for feasibility
// analysis: how many assignment slots can be filled at all.
func MaxCardinalityBMatching(g *Graph, capL, capR []int) BMatching {
	return MaxCardinalityBMatchingWS(g, capL, capR, nil)
}

// MaxCardinalityBMatchingWS is MaxCardinalityBMatching solving inside ws;
// a nil ws borrows one from the package pool.
func MaxCardinalityBMatchingWS(g *Graph, capL, capR []int, ws *FlowWorkspace) BMatching {
	ws, pooled := acquireFlowWorkspace(ws)
	net, edgeArc, s, t := buildAssignmentNetwork(ws, g, capL, capR, false)
	net.MaxFlowWS(s, t, ws)
	m := collectMatching(g, net, edgeArc)
	releaseFlowWorkspace(ws, pooled)
	return m
}
