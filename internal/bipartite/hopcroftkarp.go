package bipartite

// HopcroftKarp computes a maximum-cardinality matching of g in
// O(E·√V) time.  It returns matchL where matchL[l] is the right vertex
// matched to l, or -1 if l is unmatched, together with the matching size.
//
// The assignment layer uses it for feasibility probes ("can every task be
// covered at all?") and the test suite uses it to cross-check the flow-based
// solvers.  Scratch comes from a pooled FlowWorkspace; HopcroftKarpWS pins
// one across calls.
func HopcroftKarp(g *Graph) (matchL []int, size int) {
	ws, pooled := acquireFlowWorkspace(nil)
	matchL, size = hopcroftKarp(g, ws)
	releaseFlowWorkspace(ws, pooled)
	return matchL, size
}

// HopcroftKarpWS is HopcroftKarp drawing its right-side match table, layer
// distances and BFS frontier from ws; only the returned matchL allocates.
func HopcroftKarpWS(g *Graph, ws *FlowWorkspace) (matchL []int, size int) {
	return hopcroftKarp(g, ws)
}

// hopcroftKarp is the shared kernel.  The BFS reuses one frontier queue
// across phases (the seed re-grew it per call), the layer and match tables
// come from the workspace, and edges are read straight out of the graph's
// CSR arena.  It traverses adjacency in exactly the seed's order, so the
// matching is bit-identical to HopcroftKarpSerial.
func hopcroftKarp(g *Graph, ws *FlowWorkspace) (matchL []int, size int) {
	const inf = int32(^uint32(0) >> 1)
	nL, nR := g.NL(), g.NR()
	g.ensureAdj()
	matchL = make([]int, nL)
	matchR := growI32(ws.matchR, nR)
	dist := growI32(ws.level, nL)
	queue := growI32(ws.queue, nL)
	ws.matchR, ws.level, ws.queue = matchR, dist, queue
	for i := range matchL {
		matchL[i] = -1
	}
	for i := range matchR {
		matchR[i] = -1
	}

	// bfs builds the layered graph of alternating paths from free left
	// vertices, reusing the workspace frontier; it returns true if at least
	// one augmenting path exists.
	bfs := func() bool {
		queue = queue[:0]
		for l := 0; l < nL; l++ {
			if matchL[l] == -1 {
				dist[l] = 0
				queue = append(queue, int32(l))
			} else {
				dist[l] = inf
			}
		}
		found := false
		for qi := 0; qi < len(queue); qi++ {
			l := queue[qi]
			for _, ei := range g.adjL[g.offL[l]:g.offL[l+1]] {
				r := g.edges[ei].R
				next := matchR[r]
				if next == -1 {
					found = true
				} else if dist[next] == inf {
					dist[next] = dist[l] + 1
					queue = append(queue, next)
				}
			}
		}
		return found
	}

	// dfs searches for an augmenting path from l along the layered graph.
	var dfs func(l int32) bool
	dfs = func(l int32) bool {
		for _, ei := range g.adjL[g.offL[l]:g.offL[l+1]] {
			r := g.edges[ei].R
			next := matchR[r]
			if next == -1 || (dist[next] == dist[l]+1 && dfs(next)) {
				matchL[l] = r
				matchR[r] = int32(l)
				return true
			}
		}
		dist[l] = inf
		return false
	}

	for bfs() {
		for l := 0; l < nL; l++ {
			if matchL[l] == -1 && dfs(int32(l)) {
				size++
			}
		}
	}
	return matchL, size
}
