package bipartite

// HopcroftKarp computes a maximum-cardinality matching of g in
// O(E·√V) time.  It returns matchL where matchL[l] is the right vertex
// matched to l, or -1 if l is unmatched, together with the matching size.
//
// The assignment layer uses it for feasibility probes ("can every task be
// covered at all?") and the test suite uses it to cross-check the flow-based
// solvers.
func HopcroftKarp(g *Graph) (matchL []int, size int) {
	const inf = int(^uint(0) >> 1)
	nL, nR := g.NL(), g.NR()
	matchL = make([]int, nL)
	matchR := make([]int, nR)
	for i := range matchL {
		matchL[i] = -1
	}
	for i := range matchR {
		matchR[i] = -1
	}
	dist := make([]int, nL)
	queue := make([]int, 0, nL)

	// bfs builds the layered graph of alternating paths from free left
	// vertices; it returns true if at least one augmenting path exists.
	bfs := func() bool {
		queue = queue[:0]
		for l := 0; l < nL; l++ {
			if matchL[l] == -1 {
				dist[l] = 0
				queue = append(queue, l)
			} else {
				dist[l] = inf
			}
		}
		found := false
		for qi := 0; qi < len(queue); qi++ {
			l := queue[qi]
			for _, ei := range g.AdjL(l) {
				r := g.Edge(int(ei)).R
				next := matchR[r]
				if next == -1 {
					found = true
				} else if dist[next] == inf {
					dist[next] = dist[l] + 1
					queue = append(queue, next)
				}
			}
		}
		return found
	}

	// dfs searches for an augmenting path from l along the layered graph.
	var dfs func(l int) bool
	dfs = func(l int) bool {
		for _, ei := range g.AdjL(l) {
			r := g.Edge(int(ei)).R
			next := matchR[r]
			if next == -1 || (dist[next] == dist[l]+1 && dfs(next)) {
				matchL[l] = r
				matchR[r] = l
				return true
			}
		}
		dist[l] = inf
		return false
	}

	for bfs() {
		for l := 0; l < nL; l++ {
			if matchL[l] == -1 && dfs(l) {
				size++
			}
		}
	}
	return matchL, size
}
