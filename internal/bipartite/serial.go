package bipartite

// The retained reference implementations of the matching kernels, in the
// style of core.NewProblemSerial / core.LocalSearchSerial: straightforward
// allocation-per-call code with the classic start-up (Bellman–Ford
// potentials, fresh scratch every augmentation).  The property tests pin
// each overhauled workspace kernel against its reference bit for bit —
// identical matched pair sets and weights — across seeds, generators and
// pool reuse, so the allocation-free fast paths cannot drift semantically.

// MinCostFlowSerial is the reference successive-shortest-paths solver: SPFA
// Bellman–Ford potentials and per-call allocated Dijkstra state.  It must
// produce the same flow, cost and residual capacities as MinCostFlowWS.
func (f *FlowNetwork) MinCostFlowSerial(s, t int, maxFlow int64, stopAtNonNegative bool) MCMFResult {
	if s == t {
		panic("bipartite: MinCostFlow with s == t")
	}
	f.ensureAdj()

	pot := f.bellmanFord(s)
	dist := make([]int64, f.n)
	prevArc := make([]int32, f.n)
	inHeap := make([]int32, f.n)

	var res MCMFResult
	for res.Flow < maxFlow {
		for i := range dist {
			dist[i] = infCost
			prevArc[i] = -1
			inHeap[i] = 0
		}
		dist[s] = 0
		h := heap64{pos: inHeap}
		h.push(int32(s), 0)
		for h.len() > 0 {
			v, dv := h.pop()
			if dv > dist[v] {
				continue
			}
			if v == int32(t) {
				break
			}
			for a, end := f.adjOff[v], f.adjOff[v+1]; a < end; a++ {
				if f.es[a].cap <= 0 {
					continue
				}
				w := f.es[a].to
				rc := f.es[a].cost + pot[v] - pot[w]
				nd := dist[v] + rc
				if nd < dist[w] {
					dist[w] = nd
					prevArc[w] = a
					h.push(w, nd)
				}
			}
		}
		dt := dist[t]
		if dt >= infCost {
			break
		}
		realPathCost := dt - pot[s] + pot[t]
		if stopAtNonNegative && realPathCost >= 0 {
			break
		}
		for v := 0; v < f.n; v++ {
			if dist[v] < dt {
				pot[v] += dist[v]
			} else {
				pot[v] += dt
			}
		}
		push := maxFlow - res.Flow
		for v := int32(t); v != int32(s); {
			a := prevArc[v]
			if f.es[a].cap < push {
				push = f.es[a].cap
			}
			v = f.es[f.pairPos[a]].to
		}
		for v := int32(t); v != int32(s); {
			a := prevArc[v]
			f.es[a].cap -= push
			f.es[f.pairPos[a]].cap += push
			v = f.es[f.pairPos[a]].to
		}
		res.Flow += push
		res.Cost += push * realPathCost
	}
	return res
}

// bellmanFord computes shortest-path potentials from s over arcs with
// positive residual capacity, tolerating negative costs.  Vertices
// unreachable from s keep potential 0 so later reduced costs stay
// well-defined.  Retained as the reference start-up that initPotentials'
// O(E) ordered sweep is pinned against.
func (f *FlowNetwork) bellmanFord(s int) []int64 {
	pot := make([]int64, f.n)
	for i := range pot {
		pot[i] = infCost
	}
	pot[s] = 0
	// SPFA (queue-based Bellman-Ford) — fast on the layered DAG-like
	// networks the b-matching reduction produces.
	inQueue := make([]bool, f.n)
	queue := make([]int32, 0, f.n)
	queue = append(queue, int32(s))
	inQueue[s] = true
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		inQueue[v] = false
		for a, end := f.adjOff[v], f.adjOff[v+1]; a < end; a++ {
			if f.es[a].cap <= 0 {
				continue
			}
			w := f.es[a].to
			nd := pot[v] + f.es[a].cost
			if nd < pot[w] {
				pot[w] = nd
				if !inQueue[w] {
					queue = append(queue, w)
					inQueue[w] = true
				}
			}
		}
	}
	for i := range pot {
		if pot[i] == infCost {
			pot[i] = 0 // unreachable: potential value is irrelevant
		}
	}
	return pot
}

// MaxWeightBMatchingSerial is the reference exact solver: a freshly
// allocated flow network per call solved with MinCostFlowSerial.
func MaxWeightBMatchingSerial(g *Graph, capL, capR []int) BMatching {
	net, edgeArc, s, t := buildAssignmentNetwork(nil, g, capL, capR, true)
	net.MinCostFlowSerial(s, t, int64(1)<<60, true)
	return collectMatching(g, net, edgeArc)
}

// MaxCardinalityBMatchingSerial is the reference feasibility solver: a
// freshly allocated flow network per call solved with MaxFlowSerial.
func MaxCardinalityBMatchingSerial(g *Graph, capL, capR []int) BMatching {
	net, edgeArc, s, t := buildAssignmentNetwork(nil, g, capL, capR, false)
	net.MaxFlowSerial(s, t)
	return collectMatching(g, net, edgeArc)
}

// MaxFlowSerial is the reference Dinic solver with per-call allocated
// level/iterator/frontier tables.
func (f *FlowNetwork) MaxFlowSerial(s, t int) int64 {
	if s == t {
		panic("bipartite: MaxFlow with s == t")
	}
	f.ensureAdj()
	const inf = int64(1) << 62
	level := make([]int32, f.n)
	iter := make([]int32, f.n)
	queue := make([]int32, 0, f.n)

	bfs := func() bool {
		for i := range level {
			level[i] = -1
		}
		level[s] = 0
		queue = queue[:0]
		queue = append(queue, int32(s))
		for qi := 0; qi < len(queue); qi++ {
			v := queue[qi]
			for a, end := f.adjOff[v], f.adjOff[v+1]; a < end; a++ {
				if f.es[a].cap > 0 && level[f.es[a].to] == -1 {
					level[f.es[a].to] = level[v] + 1
					queue = append(queue, f.es[a].to)
				}
			}
		}
		return level[t] != -1
	}

	var dfs func(v int32, up int64) int64
	dfs = func(v int32, up int64) int64 {
		if v == int32(t) {
			return up
		}
		for end := f.adjOff[v+1]; iter[v] < end; iter[v]++ {
			a := iter[v]
			w := f.es[a].to
			if f.es[a].cap > 0 && level[w] == level[v]+1 {
				d := dfs(w, min64(up, f.es[a].cap))
				if d > 0 {
					f.es[a].cap -= d
					f.es[f.pairPos[a]].cap += d
					return d
				}
			}
		}
		return 0
	}

	var total int64
	for bfs() {
		copy(iter, f.adjOff[:f.n])
		for {
			d := dfs(int32(s), inf)
			if d == 0 {
				break
			}
			total += d
		}
	}
	return total
}

// HopcroftKarpSerial is the retained reference maximum-cardinality matcher:
// the seed's implementation with per-call allocated match tables, layer
// distances and BFS queue.
func HopcroftKarpSerial(g *Graph) (matchL []int, size int) {
	const inf = int(^uint(0) >> 1)
	nL, nR := g.NL(), g.NR()
	matchL = make([]int, nL)
	matchR := make([]int, nR)
	for i := range matchL {
		matchL[i] = -1
	}
	for i := range matchR {
		matchR[i] = -1
	}
	dist := make([]int, nL)
	queue := make([]int, 0, nL)

	// bfs builds the layered graph of alternating paths from free left
	// vertices; it returns true if at least one augmenting path exists.
	bfs := func() bool {
		queue = queue[:0]
		for l := 0; l < nL; l++ {
			if matchL[l] == -1 {
				dist[l] = 0
				queue = append(queue, l)
			} else {
				dist[l] = inf
			}
		}
		found := false
		for qi := 0; qi < len(queue); qi++ {
			l := queue[qi]
			for _, ei := range g.AdjL(l) {
				r := g.Edge(int(ei)).R
				next := matchR[r]
				if next == -1 {
					found = true
				} else if dist[next] == inf {
					dist[next] = dist[l] + 1
					queue = append(queue, next)
				}
			}
		}
		return found
	}

	// dfs searches for an augmenting path from l along the layered graph.
	var dfs func(l int) bool
	dfs = func(l int) bool {
		for _, ei := range g.AdjL(l) {
			r := g.Edge(int(ei)).R
			next := matchR[r]
			if next == -1 || (dist[next] == dist[l]+1 && dfs(next)) {
				matchL[l] = r
				matchR[r] = l
				return true
			}
		}
		dist[l] = inf
		return false
	}

	for bfs() {
		for l := 0; l < nL; l++ {
			if matchL[l] == -1 && dfs(l) {
				size++
			}
		}
	}
	return matchL, size
}

// HungarianSerial is the retained reference assignment solver: the seed's
// shortest-augmenting-path Kuhn–Munkres with freshly allocated minv/used
// arrays in the per-row loop (exactly the allocation pattern the optimised
// Hungarian hoists out).
func HungarianSerial(cost [][]float64) (rowMatch []int, total float64) {
	n, m := checkCostMatrix(cost)
	if n == 0 {
		return nil, 0
	}

	// Potentials u (rows) and v (columns); p[j] = row matched to column j,
	// all 1-indexed internally with 0 as a virtual root.
	u := make([]float64, n+1)
	v := make([]float64, m+1)
	p := make([]int, m+1)
	way := make([]int, m+1)

	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, m+1)
		used := make([]bool, m+1)
		for j := range minv {
			minv[j] = infFloat
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := infFloat
			j1 := -1
			for j := 1; j <= m; j++ {
				if used[j] {
					continue
				}
				cur := cost[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= m; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		// Unwind the augmenting path.
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}

	rowMatch = make([]int, n)
	for j := 1; j <= m; j++ {
		if p[j] != 0 {
			rowMatch[p[j]-1] = j - 1
		}
	}
	for i, j := range rowMatch {
		total += cost[i][j]
	}
	return rowMatch, total
}
