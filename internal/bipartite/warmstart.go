package bipartite

// Warm-start support for the min-cost-flow kernel: carry the node
// potentials (dual prices) a previous solve left in a pinned FlowWorkspace
// into the next solve on a rebuilt network, in the spirit of Bertsekas-style
// auction price persistence.  Round-over-round market churn moves edge
// weights only slightly, so yesterday's duals are usually feasible — or a
// couple of relaxation passes from feasible — for today's network, and the
// Dijkstra augmentation loop can start from them directly instead of from
// the DAG-ordered cold sweep.
//
// The contract is validation-first: carried duals are only used after every
// residual arc of the *new* network has been checked for reduced-cost
// feasibility.  Violations (edges whose weights changed, fresh vertices
// whose potentials are stale) are repaired with bounded ordered relaxation
// sweeps; if the budget runs out the solve falls back to the cold
// initPotentials path.  Either way the result is exact — feasible starting
// duals are the only soundness requirement of successive shortest paths.

// WarmInfo reports how a warm-capable solve actually started.
type WarmInfo struct {
	// Warm is true when carried duals (possibly after repair) seeded the
	// solve; false means the cold DAG-ordered initialisation ran.
	Warm bool
	// Violations counts residual arcs whose reduced cost was negative under
	// the carried duals before repair.
	Violations int
	// RepairPasses counts the relaxation sweeps spent making the carried
	// duals feasible again (0 when they validated as-is).
	RepairPasses int
}

// maxRepairPasses bounds dual repair.  The b-matching reduction's vertex
// order is topological, so one relaxing pass plus one verification pass
// repairs any zero-flow network; the margin covers callers with flow
// already on the network.  Past the budget, cold init is cheaper than
// continuing to relax.
const maxRepairPasses = 4

// MinCostFlowWarmWS is MinCostFlowWS with dual persistence: when ws.pot
// still holds potentials from a previous solve over a same-sized network,
// they are validated against the current residual arcs, repaired if
// feasibility was lost, and reused as the starting duals.  Validation
// failure (or a first-ever solve) falls back to the cold path.  The result
// is identical to MinCostFlowWS in value; only the starting duals differ.
func (f *FlowNetwork) MinCostFlowWarmWS(s, t int, maxFlow int64, stopAtNonNegative bool, ws *FlowWorkspace) (MCMFResult, WarmInfo) {
	if s == t {
		panic("bipartite: MinCostFlow with s == t")
	}
	f.ensureAdj()
	var info WarmInfo
	if ws.potN == f.n && len(ws.pot) >= f.n {
		pot := ws.pot[:f.n]
		info.Violations = f.countDualViolations(pot)
		if info.Violations == 0 {
			info.Warm = true
		} else if passes, ok := f.repairPotentials(pot, maxRepairPasses); ok {
			info.Warm = true
			info.RepairPasses = passes
		}
		if info.Warm {
			ws.pot = pot
			return f.minCostFlowLoop(s, t, maxFlow, stopAtNonNegative, ws), info
		}
	}
	pot := growI64(ws.pot, f.n)
	f.initPotentials(s, pot)
	ws.pot = pot
	return f.minCostFlowLoop(s, t, maxFlow, stopAtNonNegative, ws), info
}

// countDualViolations counts residual arcs (positive capacity) whose
// reduced cost under pot is negative — the dual-feasibility check that
// gates warm starts.  O(E).
func (f *FlowNetwork) countDualViolations(pot []int64) int {
	violations := 0
	es, adjOff := f.es, f.adjOff
	for v := int32(0); v < int32(f.n); v++ {
		pv := pot[v]
		for a, end := adjOff[v], adjOff[v+1]; a < end; a++ {
			e := &es[a]
			if e.cap > 0 && pv+e.cost < pot[e.to] {
				violations++
			}
		}
	}
	return violations
}

// repairPotentials restores dual feasibility by ordered relaxation: any
// violated arc (u,v) lowers pot[v] to pot[u]+cost, repeated until a pass
// changes nothing.  Equivalent to Bellman–Ford from a virtual super-source
// whose arc to v costs the carried pot[v], so on a residual graph without
// negative cycles it converges; on the reduction's topologically-ordered
// vertices it converges in one relaxing pass plus one verification pass.
// Returns the passes used and whether feasibility was reached within
// maxPasses (false means the caller should cold-start instead).
func (f *FlowNetwork) repairPotentials(pot []int64, maxPasses int) (int, bool) {
	es, adjOff := f.es, f.adjOff
	for pass := 1; pass <= maxPasses; pass++ {
		changed := false
		for v := int32(0); v < int32(f.n); v++ {
			pv := pot[v]
			for a, end := adjOff[v], adjOff[v+1]; a < end; a++ {
				e := &es[a]
				if e.cap <= 0 {
					continue
				}
				if nd := pv + e.cost; nd < pot[e.to] {
					pot[e.to] = nd
					changed = true
				}
			}
		}
		if !changed {
			return pass, true
		}
	}
	return maxPasses, false
}

// MaxWeightBMatchingWarmWS is MaxWeightBMatchingWS through the warm-start
// path: a pinned ws carries the previous round's duals into this solve.
// The matching is exactly as optimal as the cold entry point; WarmInfo
// reports whether persistence actually engaged.
func MaxWeightBMatchingWarmWS(g *Graph, capL, capR []int, ws *FlowWorkspace) (BMatching, WarmInfo) {
	ws, pooled := acquireFlowWorkspace(ws)
	net, edgeArc, s, t := buildAssignmentNetwork(ws, g, capL, capR, true)
	_, info := net.MinCostFlowWarmWS(s, t, int64(1)<<60, true, ws)
	m := collectMatching(g, net, edgeArc)
	releaseFlowWorkspace(ws, pooled)
	return m, info
}
