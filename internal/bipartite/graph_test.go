package bipartite

import "testing"

func TestGraphBasics(t *testing.T) {
	g := NewGraph(3, 2)
	if g.NL() != 3 || g.NR() != 2 || g.NumEdges() != 0 {
		t.Fatal("empty graph wrong shape")
	}
	g.AddEdge(0, 0, 1.5)
	g.AddEdge(0, 1, 2.5)
	g.AddEdge(2, 1, 3.0)
	if g.NumEdges() != 3 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
	if g.DegreeL(0) != 2 || g.DegreeL(1) != 0 || g.DegreeL(2) != 1 {
		t.Fatal("left degrees wrong")
	}
	if g.DegreeR(0) != 1 || g.DegreeR(1) != 2 {
		t.Fatal("right degrees wrong")
	}
	if e := g.Edge(1); e.L != 0 || e.R != 1 || e.Weight != 2.5 {
		t.Fatalf("edge 1 = %+v", e)
	}
	if w := g.TotalWeight(); w != 7.0 {
		t.Fatalf("total weight = %v", w)
	}
}

func TestGraphAdjacency(t *testing.T) {
	g := NewGraph(2, 2)
	g.AddEdge(0, 0, 1)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 1, 1)
	adj := g.AdjL(0)
	if len(adj) != 2 {
		t.Fatalf("AdjL(0) = %v", adj)
	}
	for _, ei := range adj {
		if g.Edge(int(ei)).L != 0 {
			t.Fatal("AdjL returned foreign edge")
		}
	}
	adjR := g.AdjR(1)
	if len(adjR) != 2 {
		t.Fatalf("AdjR(1) = %v", adjR)
	}
}

func TestGraphPanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("NewGraph(-1, 1) did not panic")
			}
		}()
		NewGraph(-1, 1)
	}()
	g := NewGraph(1, 1)
	for _, pair := range [][2]int{{-1, 0}, {1, 0}, {0, -1}, {0, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("AddEdge(%v) did not panic", pair)
				}
			}()
			g.AddEdge(pair[0], pair[1], 1)
		}()
	}
}
