package bipartite

import (
	"errors"
	"fmt"
)

// ErrStopped reports that a cooperative cancellation hook fired mid-solve;
// the matcher state is no longer trustworthy and must be rebuilt.
var ErrStopped = errors.New("bipartite: solve cancelled")

// DeltaMatcher maintains an exact maximum-weight b-matching under slot
// arrivals, departures and arc-cost changes, without re-solving from
// scratch.  It is the flow-level engine behind core's `incremental` solver.
//
// # Formulation
//
// The b-matching reduction's source and sink are merged into one node ST,
// turning the assignment network into a circulation instance: ST→l arcs
// with capacity capL, unit matching arcs l→r carrying negated scaled
// weights, r→ST arcs with capacity capR.  A flow with zero divergence at
// every node is a b-matching, and node potentials π that make every
// residual reduced cost non-negative certify there is no negative residual
// cycle — i.e. the matching is maximum-weight.  (The plain s–t view cannot
// express that certificate across rounds: cancelling flow leaves negative
// residual cycles *through* the sink that no s→t shortest path ever sees.)
//
// # Mutations
//
// Every mutation is dual-feasibility-preserving surgery that may leave
// integer imbalances (divergence ≠ 0) behind:
//
//   - removing a slot unflows its arcs and source/sink flow, leaving
//     excesses/deficits at its former partners and at ST;
//   - adding a slot starts at π = π(ST), trivially feasible for its ST arc;
//   - a new or cheapened arc whose reduced cost would go negative is
//     *force-saturated*: pushing its unit keeps the (reverse) residual arc
//     feasible and records a deficit at its tail and an excess at its head.
//
// Reoptimize then resolves all imbalances with multi-source Dijkstra over
// reduced costs (truncated at the first deficit), augmenting one unit per
// round and advancing potentials by the standard min(dist, dist_target)
// clamp.  Flow decomposition guarantees every deficit is reachable from an
// excess in the residual graph, so resolution always terminates; when it
// does, zero divergence plus feasible π certify the matching is again a
// global optimum — bit-identical in objective (Σ of ScaledCost values) to a
// cold exact solve of the mutated instance.  A force-saturated arc that
// should not have been taken is undone by its own reverse arc, and the
// clamp leaves it at reduced cost exactly 0.
//
// The zero-value matcher is empty; seed it with SolveFull.  Not safe for
// concurrent use.  All state is slot-addressed and arena-reused: steady
// rounds allocate nothing.
type DeltaMatcher struct {
	// Stop, when non-nil, is polled once per augmentation in Reoptimize and
	// once per Dijkstra round in SolveFull's import; a true return aborts
	// with ErrStopped and invalidates the matcher.
	Stop func() bool

	// Per-left-slot state.
	capL    []int64
	srcFlow []int64 // flow on the ST→l arc
	potL    []int64
	balL    []int32 // divergence bookkeeping (inflow − outflow)
	aliveL  []bool
	adjL    [][]int32 // live arc ids, unordered
	freeL   []int32

	// Per-right-slot state.
	capR    []int64
	snkFlow []int64 // flow on the r→ST arc
	potR    []int64
	balR    []int32
	aliveR  []bool
	adjR    [][]int32
	freeR   []int32

	potST    int64
	balST    int32
	freeArcs []int32

	arcs     []deltaArc
	liveArcs int
	matched  int
	// objective is Σ(−cost) over flowing arcs — the scaled-int matching
	// weight, the exact quantity the cold kernel maximises.
	objective int64
	// totalDeficit is Σ max(0, −bal) over all nodes: outstanding
	// augmentations Reoptimize owes.
	totalDeficit int
	excess       []int32 // stable node ids that crossed into excess; stale-tolerant

	// Dijkstra scratch, indexed by stable node id (ST=0, left l=2l+1,
	// right r=2r+2 — ids survive slot-array growth mid-batch).
	dist    []int64
	prevK   []int8
	prevI   []int32
	heapEs  []heapEnt
	heapPos []int32
}

// deltaArc is one matching arc.  A freed record has l == -1 and sits on
// freeArcs for reuse; adjacency lists never reference freed records.
type deltaArc struct {
	l, r int32
	cost int64 // ≤ 0: ScaledCost of the edge weight
	flow bool
	ext  int32 // caller tag (core stores the current problem's edge index)
}

// Residual arc kinds recorded on Dijkstra's shortest-path tree.
const (
	arcNone int8 = iota
	arcSTtoL
	arcLtoST
	arcLtoR
	arcRtoL
	arcRtoST
	arcSTtoR
)

// Stable node-id encoding (survives slot-array growth between surgeries).
func idOfL(l int) int32 { return int32(2*l + 1) }
func idOfR(r int) int32 { return int32(2*r + 2) }

const idST = int32(0)

// NumLeftSlots and NumRightSlots return the slot-array sizes (including
// dead slots awaiting reuse).
func (m *DeltaMatcher) NumLeftSlots() int  { return len(m.capL) }
func (m *DeltaMatcher) NumRightSlots() int { return len(m.capR) }

// LiveArcs returns the number of live matching arcs.
func (m *DeltaMatcher) LiveArcs() int { return m.liveArcs }

// MatchedCount returns the number of arcs currently carrying flow.
func (m *DeltaMatcher) MatchedCount() int { return m.matched }

// Objective returns the scaled-integer matching weight Σ round(w·1e9),
// the exact objective the cold kernel maximises.
func (m *DeltaMatcher) Objective() int64 { return m.objective }

// ArcsOfLeft returns the live arc ids of left slot l.  The slice is owned
// by the matcher, is invalidated by any mutation, and must not be modified.
func (m *DeltaMatcher) ArcsOfLeft(l int) []int32 { return m.adjL[l] }

// DegreeLeft and DegreeRight return a slot's live arc count.
func (m *DeltaMatcher) DegreeLeft(l int) int  { return len(m.adjL[l]) }
func (m *DeltaMatcher) DegreeRight(r int) int { return len(m.adjR[r]) }

// LeftCapacity and RightCapacity return a slot's capacity (0 once dead).
func (m *DeltaMatcher) LeftCapacity(l int) int64  { return m.capL[l] }
func (m *DeltaMatcher) RightCapacity(r int) int64 { return m.capR[r] }

// Arc returns arc a's endpoints, cost, flow state and caller tag.
func (m *DeltaMatcher) Arc(a int32) (l, r int, cost int64, flow bool, ext int32) {
	rec := &m.arcs[a]
	return int(rec.l), int(rec.r), rec.cost, rec.flow, rec.ext
}

// SetArcExt updates arc a's caller tag without touching flow or duals.
func (m *DeltaMatcher) SetArcExt(a int32, ext int32) { m.arcs[a].ext = ext }

// ForEachMatched calls fn for every flowing arc, in left-slot order.
func (m *DeltaMatcher) ForEachMatched(fn func(a int32, l, r int, ext int32)) {
	for l := range m.adjL {
		for _, a := range m.adjL[l] {
			if rec := &m.arcs[a]; rec.flow {
				fn(a, int(rec.l), int(rec.r), rec.ext)
			}
		}
	}
}

// AppendMatched appends the ext tag of every flowing arc to dst, in
// left-slot order, and returns the extended slice.  It is ForEachMatched
// without the closure: the caller that counts allocations (the incremental
// solver's per-round extraction) pays only for dst's own growth.
func (m *DeltaMatcher) AppendMatched(dst []int) []int {
	for l := range m.adjL {
		for _, a := range m.adjL[l] {
			if rec := &m.arcs[a]; rec.flow {
				dst = append(dst, int(rec.ext))
			}
		}
	}
	return dst
}

// Balance bookkeeping: every flow mutation below keeps bal == inflow −
// outflow at each node, so a node's bookkept balance is trustworthy at all
// times and totalDeficit counts exactly the augmentations still owed.

func (m *DeltaMatcher) shiftBal(old, nw int32, id int32) {
	if old < 0 {
		m.totalDeficit -= int(-old)
	}
	if nw < 0 {
		m.totalDeficit += int(-nw)
	}
	if nw > 0 && old <= 0 {
		m.excess = append(m.excess, id)
	}
}

func (m *DeltaMatcher) addBalL(l int, d int32) {
	old := m.balL[l]
	m.balL[l] = old + d
	m.shiftBal(old, old+d, idOfL(l))
}

func (m *DeltaMatcher) addBalR(r int, d int32) {
	old := m.balR[r]
	m.balR[r] = old + d
	m.shiftBal(old, old+d, idOfR(r))
}

func (m *DeltaMatcher) addBalST(d int32) {
	old := m.balST
	m.balST = old + d
	m.shiftBal(old, old+d, idST)
}

func (m *DeltaMatcher) balOf(id int32) int32 {
	switch {
	case id == idST:
		return m.balST
	case id&1 == 1:
		return m.balL[(id-1)/2]
	default:
		return m.balR[(id-2)/2]
	}
}

// AddLeft opens a new left slot with the given capacity and returns its
// slot index, reusing a freed slot when one exists.  The new slot starts
// at π(ST), which keeps its (empty-flow) ST arc feasible by construction.
func (m *DeltaMatcher) AddLeft(capacity int) int {
	if capacity < 0 {
		panic("bipartite: negative left capacity")
	}
	var l int
	if n := len(m.freeL); n > 0 {
		l = int(m.freeL[n-1])
		m.freeL = m.freeL[:n-1]
		m.capL[l], m.srcFlow[l], m.potL[l], m.aliveL[l] = int64(capacity), 0, m.potST, true
		m.adjL[l] = m.adjL[l][:0]
	} else {
		l = len(m.capL)
		m.capL = append(m.capL, int64(capacity))
		m.srcFlow = append(m.srcFlow, 0)
		m.potL = append(m.potL, m.potST)
		m.balL = append(m.balL, 0)
		m.aliveL = append(m.aliveL, true)
		m.adjL = append(m.adjL, nil)
	}
	return l
}

// AddRight opens a new right slot; symmetric to AddLeft.
func (m *DeltaMatcher) AddRight(capacity int) int {
	if capacity < 0 {
		panic("bipartite: negative right capacity")
	}
	var r int
	if n := len(m.freeR); n > 0 {
		r = int(m.freeR[n-1])
		m.freeR = m.freeR[:n-1]
		m.capR[r], m.snkFlow[r], m.potR[r], m.aliveR[r] = int64(capacity), 0, m.potST, true
		m.adjR[r] = m.adjR[r][:0]
	} else {
		r = len(m.capR)
		m.capR = append(m.capR, int64(capacity))
		m.snkFlow = append(m.snkFlow, 0)
		m.potR = append(m.potR, m.potST)
		m.balR = append(m.balR, 0)
		m.aliveR = append(m.aliveR, true)
		m.adjR = append(m.adjR, nil)
	}
	return r
}

// allocArc appends or reuses an arc record and links it into both
// adjacency lists.
func (m *DeltaMatcher) allocArc(l, r int, cost int64, ext int32) int32 {
	var a int32
	if n := len(m.freeArcs); n > 0 {
		a = m.freeArcs[n-1]
		m.freeArcs = m.freeArcs[:n-1]
		m.arcs[a] = deltaArc{l: int32(l), r: int32(r), cost: cost, ext: ext}
	} else {
		a = int32(len(m.arcs))
		m.arcs = append(m.arcs, deltaArc{l: int32(l), r: int32(r), cost: cost, ext: ext})
	}
	m.adjL[l] = append(m.adjL[l], a)
	m.adjR[r] = append(m.adjR[r], a)
	m.liveArcs++
	return a
}

// AddArc adds a matching arc between live slots with the given (≤ 0)
// scaled cost.  If the arc's reduced cost under the current duals is
// negative — the new edge is profitable where it stands — it is
// force-saturated: the unit of flow makes the residual (reverse) arc
// feasible and leaves a deficit at l and an excess at r for Reoptimize to
// arbitrate.  Returns the arc id.
func (m *DeltaMatcher) AddArc(l, r int, cost int64, ext int32) int32 {
	if !m.aliveL[l] || !m.aliveR[r] {
		panic("bipartite: AddArc on a dead slot")
	}
	if cost > 0 {
		panic("bipartite: positive arc cost (weights must be non-negative)")
	}
	a := m.allocArc(l, r, cost, ext)
	if cost+m.potL[l]-m.potR[r] < 0 {
		m.arcs[a].flow = true
		m.matched++
		m.objective += -cost
		m.addBalL(l, -1)
		m.addBalR(r, 1)
	}
	return a
}

// SetArcCost re-prices a live arc.  A flowing arc stays matched while its
// reduced cost stays ≤ 0 (the reverse residual arc stays feasible);
// otherwise it is unmatched, leaving an excess at l and a deficit at r.
// An idle arc whose new reduced cost goes negative is force-saturated as
// in AddArc.
func (m *DeltaMatcher) SetArcCost(a int32, cost int64) {
	if cost > 0 {
		panic("bipartite: positive arc cost (weights must be non-negative)")
	}
	rec := &m.arcs[a]
	if rec.l < 0 {
		panic("bipartite: SetArcCost on a freed arc")
	}
	old := rec.cost
	rec.cost = cost
	rc := cost + m.potL[rec.l] - m.potR[rec.r]
	if rec.flow {
		if rc <= 0 {
			m.objective += old - cost
			return
		}
		rec.flow = false
		m.matched--
		m.objective -= -old
		m.addBalL(int(rec.l), 1)
		m.addBalR(int(rec.r), -1)
		return
	}
	if rc < 0 {
		rec.flow = true
		m.matched++
		m.objective += -cost
		m.addBalL(int(rec.l), -1)
		m.addBalR(int(rec.r), 1)
	}
}

// unflowArc removes arc a's unit of flow, adjusting balances as a pure
// flow deletion (the unit vanishes rather than being rerouted).
func (m *DeltaMatcher) unflowArc(rec *deltaArc) {
	rec.flow = false
	m.matched--
	m.objective -= -rec.cost
	m.addBalL(int(rec.l), 1)
	m.addBalR(int(rec.r), -1)
}

// dropFromAdj removes arc a from adj by swap-delete.
func dropFromAdj(adj []int32, a int32) []int32 {
	for i, x := range adj {
		if x == a {
			adj[i] = adj[len(adj)-1]
			return adj[:len(adj)-1]
		}
	}
	panic("bipartite: arc missing from adjacency list")
}

// RemoveLeft closes left slot l: every incident arc is unflowed and freed,
// its source flow is returned to ST, and the slot goes on the free list.
// Flow-conservation bookkeeping guarantees the slot's own balance nets to
// zero; its former partners are left with deficits for Reoptimize.
func (m *DeltaMatcher) RemoveLeft(l int) {
	if !m.aliveL[l] {
		panic("bipartite: RemoveLeft on a dead slot")
	}
	for _, a := range m.adjL[l] {
		rec := &m.arcs[a]
		if rec.flow {
			m.unflowArc(rec)
		}
		m.adjR[rec.r] = dropFromAdj(m.adjR[rec.r], a)
		rec.l = -1
		m.freeArcs = append(m.freeArcs, a)
		m.liveArcs--
	}
	m.adjL[l] = m.adjL[l][:0]
	if sf := m.srcFlow[l]; sf > 0 {
		m.addBalST(int32(sf))
		m.addBalL(l, int32(-sf))
		m.srcFlow[l] = 0
	}
	m.capL[l] = 0
	m.aliveL[l] = false
	m.freeL = append(m.freeL, int32(l))
}

// RemoveRight closes right slot r; symmetric to RemoveLeft.
func (m *DeltaMatcher) RemoveRight(r int) {
	if !m.aliveR[r] {
		panic("bipartite: RemoveRight on a dead slot")
	}
	for _, a := range m.adjR[r] {
		rec := &m.arcs[a]
		if rec.flow {
			m.unflowArc(rec)
		}
		m.adjL[rec.l] = dropFromAdj(m.adjL[rec.l], a)
		rec.l = -1
		m.freeArcs = append(m.freeArcs, a)
		m.liveArcs--
	}
	m.adjR[r] = m.adjR[r][:0]
	if sf := m.snkFlow[r]; sf > 0 {
		m.addBalST(int32(-sf))
		m.addBalR(r, int32(sf))
		m.snkFlow[r] = 0
	}
	m.capR[r] = 0
	m.aliveR[r] = false
	m.freeR = append(m.freeR, int32(r))
}

// Reoptimize resolves every outstanding imbalance and returns the number
// of unit augmentations it ran.  On return with nil error the matcher
// holds a certified maximum-weight b-matching of the mutated instance.
// A non-nil error (cancellation, or an internal invariant breach) leaves
// the matcher invalid; the caller must rebuild via SolveFull.
func (m *DeltaMatcher) Reoptimize() (int, error) {
	if m.totalDeficit == 0 {
		m.excess = m.excess[:0]
		return 0, nil
	}
	ids := 1 + 2*max(len(m.capL), len(m.capR))
	dist := growI64(m.dist, ids)
	prevK := growI8(m.prevK, ids)
	prevI := growI32(m.prevI, ids)
	heapPos := growI32(m.heapPos, ids)
	m.dist, m.prevK, m.prevI, m.heapPos = dist, prevK, prevI, heapPos

	augmentations := 0
	for m.totalDeficit > 0 {
		if m.Stop != nil && m.Stop() {
			return augmentations, ErrStopped
		}
		target, err := m.dijkstra(dist, prevK, prevI, heapPos)
		if err != nil {
			return augmentations, err
		}
		m.applyClamp(dist, dist[target])
		src := m.augmentPath(target, prevK, prevI)
		m.addBalIDs(src, -1)
		m.addBalIDs(target, 1)
		augmentations++
	}
	m.excess = m.excess[:0]
	return augmentations, nil
}

func (m *DeltaMatcher) addBalIDs(id int32, d int32) {
	switch {
	case id == idST:
		m.addBalST(d)
	case id&1 == 1:
		m.addBalL(int(id-1)/2, d)
	default:
		m.addBalR(int(id-2)/2, d)
	}
}

// dijkstra runs a multi-source shortest-path search over residual reduced
// costs, seeded at every excess node, truncated at the first deficit node
// it settles.  Returns that node's stable id.
func (m *DeltaMatcher) dijkstra(dist []int64, prevK []int8, prevI, heapPos []int32) (int32, error) {
	for i := range dist {
		dist[i] = infCost
		heapPos[i] = 0
	}
	h := heap64{es: m.heapEs[:0], pos: heapPos}
	kept := m.excess[:0]
	for _, id := range m.excess {
		if m.balOf(id) > 0 && dist[id] != 0 {
			dist[id] = 0
			prevK[id] = arcNone
			kept = append(kept, id)
			h.push(id, 0)
		}
	}
	m.excess = kept

	for h.len() > 0 {
		v, dv := h.pop()
		if dv > dist[v] {
			continue
		}
		if m.balOf(v) < 0 {
			m.heapEs = h.es[:0]
			return v, nil
		}
		switch {
		case v == idST:
			for l, alive := range m.aliveL {
				if alive && m.srcFlow[l] < m.capL[l] {
					m.relax(&h, dist, prevK, prevI, idOfL(l), dv+m.potST-m.potL[l], arcSTtoL, int32(l))
				}
			}
			for r, alive := range m.aliveR {
				if alive && m.snkFlow[r] > 0 {
					m.relax(&h, dist, prevK, prevI, idOfR(r), dv+m.potST-m.potR[r], arcSTtoR, int32(r))
				}
			}
		case v&1 == 1:
			l := int(v-1) / 2
			if m.srcFlow[l] > 0 {
				m.relax(&h, dist, prevK, prevI, idST, dv+m.potL[l]-m.potST, arcLtoST, int32(l))
			}
			for _, a := range m.adjL[l] {
				rec := &m.arcs[a]
				if !rec.flow {
					m.relax(&h, dist, prevK, prevI, idOfR(int(rec.r)), dv+rec.cost+m.potL[l]-m.potR[rec.r], arcLtoR, a)
				}
			}
		default:
			r := int(v-2) / 2
			if m.snkFlow[r] < m.capR[r] {
				m.relax(&h, dist, prevK, prevI, idST, dv+m.potR[r]-m.potST, arcRtoST, int32(r))
			}
			for _, a := range m.adjR[r] {
				rec := &m.arcs[a]
				if rec.flow {
					m.relax(&h, dist, prevK, prevI, idOfL(int(rec.l)), dv-rec.cost+m.potR[r]-m.potL[rec.l], arcRtoL, a)
				}
			}
		}
	}
	m.heapEs = h.es[:0]
	// Flow decomposition guarantees a residual path from some excess to
	// every deficit; exhausting the heap first means the bookkeeping broke.
	return 0, fmt.Errorf("bipartite: %d imbalance units unreachable from any excess", m.totalDeficit)
}

func (m *DeltaMatcher) relax(h *heap64, dist []int64, prevK []int8, prevI []int32, to int32, nd int64, kind int8, idx int32) {
	if nd < dist[to] {
		dist[to] = nd
		prevK[to] = kind
		prevI[to] = idx
		h.push(to, nd)
	}
}

// applyClamp advances every live node's potential by min(dist, D), the
// standard truncated-Dijkstra update that keeps all residual reduced costs
// non-negative and zeroes them along the augmenting path.
func (m *DeltaMatcher) applyClamp(dist []int64, d int64) {
	if dv := dist[idST]; dv < d {
		m.potST += dv
	} else {
		m.potST += d
	}
	for l, alive := range m.aliveL {
		if !alive {
			continue
		}
		if dv := dist[idOfL(l)]; dv < d {
			m.potL[l] += dv
		} else {
			m.potL[l] += d
		}
	}
	for r, alive := range m.aliveR {
		if !alive {
			continue
		}
		if dv := dist[idOfR(r)]; dv < d {
			m.potR[r] += dv
		} else {
			m.potR[r] += d
		}
	}
}

// augmentPath pushes one unit along the shortest-path tree from the
// settled deficit node back to its source and returns the source's id.
func (m *DeltaMatcher) augmentPath(target int32, prevK []int8, prevI []int32) int32 {
	cur := target
	for prevK[cur] != arcNone {
		switch prevK[cur] {
		case arcSTtoL:
			m.srcFlow[prevI[cur]]++
			cur = idST
		case arcLtoST:
			m.srcFlow[prevI[cur]]--
			cur = idOfL(int(prevI[cur]))
		case arcLtoR:
			rec := &m.arcs[prevI[cur]]
			rec.flow = true
			m.matched++
			m.objective += -rec.cost
			cur = idOfL(int(rec.l))
		case arcRtoL:
			rec := &m.arcs[prevI[cur]]
			rec.flow = false
			m.matched--
			m.objective -= -rec.cost
			cur = idOfR(int(rec.r))
		case arcRtoST:
			m.snkFlow[prevI[cur]]++
			cur = idOfR(int(prevI[cur]))
		case arcSTtoR:
			m.snkFlow[prevI[cur]]--
			cur = idST
		}
	}
	return cur
}

// reset clears the matcher to an empty instance with nL left and nR right
// slots, reusing every arena.
func (m *DeltaMatcher) reset(nL, nR int) {
	m.capL = growI64(m.capL, nL)
	m.srcFlow = growI64(m.srcFlow, nL)
	m.potL = growI64(m.potL, nL)
	m.balL = growI32(m.balL, nL)
	m.aliveL = growBool(m.aliveL, nL)
	clear(m.srcFlow)
	clear(m.balL)
	for i := range m.aliveL {
		m.aliveL[i] = true
	}
	if cap(m.adjL) < nL {
		m.adjL = append(m.adjL[:cap(m.adjL)], make([][]int32, nL-cap(m.adjL))...)
	}
	m.adjL = m.adjL[:nL]
	for i := range m.adjL {
		m.adjL[i] = m.adjL[i][:0]
	}

	m.capR = growI64(m.capR, nR)
	m.snkFlow = growI64(m.snkFlow, nR)
	m.potR = growI64(m.potR, nR)
	m.balR = growI32(m.balR, nR)
	m.aliveR = growBool(m.aliveR, nR)
	clear(m.snkFlow)
	clear(m.balR)
	for i := range m.aliveR {
		m.aliveR[i] = true
	}
	if cap(m.adjR) < nR {
		m.adjR = append(m.adjR[:cap(m.adjR)], make([][]int32, nR-cap(m.adjR))...)
	}
	m.adjR = m.adjR[:nR]
	for i := range m.adjR {
		m.adjR[i] = m.adjR[i][:0]
	}

	m.freeL = m.freeL[:0]
	m.freeR = m.freeR[:0]
	m.freeArcs = m.freeArcs[:0]
	m.arcs = m.arcs[:0]
	m.excess = m.excess[:0]
	m.liveArcs, m.matched, m.objective = 0, 0, 0
	m.potST, m.balST, m.totalDeficit = 0, 0, 0
}

// SolveFull seeds (or re-seeds) the matcher from a cold/warm exact solve of
// g: the s–t kernel runs inside ws (warm-starting from ws's carried duals
// when they validate), and the solved flow plus its duals are imported into
// the merged-ST view.  Left slot i maps to g's left vertex i, right slot j
// to right vertex j, and each arc's ext tag is set to its g edge index.
// On error the matcher is left empty.
func (m *DeltaMatcher) SolveFull(g *Graph, capL, capR []int, ws *FlowWorkspace) (WarmInfo, error) {
	ws, pooled := acquireFlowWorkspace(ws)
	defer releaseFlowWorkspace(ws, pooled)
	if ws.Stop == nil {
		ws.Stop = m.Stop
		defer func() { ws.Stop = nil }()
	}
	net, edgeArc, s, t := buildAssignmentNetwork(ws, g, capL, capR, true)
	_, info := net.MinCostFlowWarmWS(s, t, int64(1)<<60, true, ws)
	nL, nR := g.NL(), g.NR()
	m.reset(nL, nR)
	if ws.Stop != nil && ws.Stop() {
		return info, ErrStopped
	}
	for l := 0; l < nL; l++ {
		m.capL[l] = int64(capL[l])
		m.potL[l] = ws.pot[1+l]
	}
	for r := 0; r < nR; r++ {
		m.capR[r] = int64(capR[r])
		m.potR[r] = ws.pot[1+nL+r]
	}
	// Seed π(ST) from the sink's potential: every r↔ST residual constraint
	// is then satisfied by the s–t solve's own feasibility, leaving only
	// source-side arcs for the merge sweep below to repair.
	m.potST = ws.pot[t]
	for i, e := range g.Edges() {
		c := ScaledCost(e.Weight)
		a := m.allocArc(e.L, e.R, c, int32(i))
		if edgeArc[i] >= 0 && net.Flow(int(edgeArc[i])) > 0 {
			m.arcs[a].flow = true
			m.matched++
			m.objective += -c
			m.srcFlow[e.L]++
			m.snkFlow[e.R]++
		}
	}
	if err := m.mergePotentials(); err != nil {
		m.reset(0, 0)
		return info, err
	}
	return info, nil
}

// mergePotentials lowers π until every residual arc of the merged-ST view
// has non-negative reduced cost.  Ordered relaxation from the imported s–t
// duals is Bellman–Ford from a virtual super-source, so on the optimal
// (negative-cycle-free) residual graph it converges within n passes; the
// stop-rule optimum guarantees no negative cycle through ST exists.
func (m *DeltaMatcher) mergePotentials() error {
	maxPasses := len(m.capL) + len(m.capR) + 2
	for pass := 0; pass < maxPasses; pass++ {
		changed := false
		for l := range m.capL {
			if m.srcFlow[l] < m.capL[l] && m.potL[l] > m.potST {
				m.potL[l] = m.potST
				changed = true
			}
			if m.srcFlow[l] > 0 && m.potST > m.potL[l] {
				m.potST = m.potL[l]
				changed = true
			}
			for _, a := range m.adjL[l] {
				rec := &m.arcs[a]
				if !rec.flow {
					if nd := m.potL[l] + rec.cost; nd < m.potR[rec.r] {
						m.potR[rec.r] = nd
						changed = true
					}
				} else {
					if nd := m.potR[rec.r] - rec.cost; nd < m.potL[l] {
						m.potL[l] = nd
						changed = true
					}
				}
			}
		}
		for r := range m.capR {
			if m.snkFlow[r] < m.capR[r] && m.potST > m.potR[r] {
				m.potST = m.potR[r]
				changed = true
			}
			if m.snkFlow[r] > 0 && m.potR[r] > m.potST {
				m.potR[r] = m.potST
				changed = true
			}
		}
		if !changed {
			return nil
		}
	}
	return errors.New("bipartite: merged-potential sweep did not converge (negative residual cycle)")
}

// Verify exhaustively checks the matcher's invariants: balance bookkeeping
// against actual flow divergence, capacity bounds, dual feasibility of
// every residual arc, and the objective/matched counters.  Test and
// self-check hook; O(V + E).
func (m *DeltaMatcher) Verify() error {
	var st int64
	inL := make([]int64, len(m.capL))
	matched, liveArcs := 0, 0
	var objective int64
	for l := range m.adjL {
		if !m.aliveL[l] && (len(m.adjL[l]) > 0 || m.srcFlow[l] != 0) {
			return fmt.Errorf("dead left slot %d still has arcs or source flow", l)
		}
		for _, a := range m.adjL[l] {
			rec := &m.arcs[a]
			liveArcs++
			if int(rec.l) != l {
				return fmt.Errorf("arc %d in adjL[%d] claims tail %d", a, l, rec.l)
			}
			if rec.flow {
				matched++
				objective += -rec.cost
				inL[l]--
			}
			// Dual feasibility: idle arcs need rc ≥ 0, flowing arcs rc ≤ 0
			// (their reverse is the residual arc).
			rc := rec.cost + m.potL[l] - m.potR[rec.r]
			if !rec.flow && rc < 0 {
				return fmt.Errorf("idle arc %d has negative reduced cost %d", a, rc)
			}
			if rec.flow && rc > 0 {
				return fmt.Errorf("flowing arc %d has positive reduced cost %d", a, rc)
			}
		}
		if m.srcFlow[l] < 0 || m.srcFlow[l] > m.capL[l] {
			return fmt.Errorf("left slot %d source flow %d outside [0,%d]", l, m.srcFlow[l], m.capL[l])
		}
		if m.aliveL[l] {
			if m.srcFlow[l] > 0 && m.potST > m.potL[l] {
				return fmt.Errorf("left slot %d: reverse source arc infeasible", l)
			}
			if m.srcFlow[l] < m.capL[l] && m.potL[l] > m.potST {
				return fmt.Errorf("left slot %d: source arc infeasible", l)
			}
		}
		inL[l] += m.srcFlow[l]
		st -= m.srcFlow[l]
	}
	for r := range m.adjR {
		if !m.aliveR[r] && (len(m.adjR[r]) > 0 || m.snkFlow[r] != 0) {
			return fmt.Errorf("dead right slot %d still has arcs or sink flow", r)
		}
		if m.snkFlow[r] < 0 || m.snkFlow[r] > m.capR[r] {
			return fmt.Errorf("right slot %d sink flow %d outside [0,%d]", r, m.snkFlow[r], m.capR[r])
		}
		if m.aliveR[r] {
			if m.snkFlow[r] > 0 && m.potR[r] > m.potST {
				return fmt.Errorf("right slot %d: reverse sink arc infeasible", r)
			}
			if m.snkFlow[r] < m.capR[r] && m.potST > m.potR[r] {
				return fmt.Errorf("right slot %d: sink arc infeasible", r)
			}
		}
		st += m.snkFlow[r]
		var div int64
		for _, a := range m.adjR[r] {
			if int(m.arcs[a].r) != r {
				return fmt.Errorf("arc %d in adjR[%d] claims head %d", a, r, m.arcs[a].r)
			}
			if m.arcs[a].flow {
				div++
			}
		}
		div -= m.snkFlow[r]
		if int32(div) != m.balR[r] {
			return fmt.Errorf("right slot %d divergence %d != bookkept balance %d", r, div, m.balR[r])
		}
	}
	for l := range inL {
		if int32(inL[l]) != m.balL[l] {
			return fmt.Errorf("left slot %d divergence %d != bookkept balance %d", l, inL[l], m.balL[l])
		}
	}
	if int32(st) != m.balST {
		return fmt.Errorf("ST divergence %d != bookkept balance %d", st, m.balST)
	}
	if matched != m.matched {
		return fmt.Errorf("matched recount %d != counter %d", matched, m.matched)
	}
	if liveArcs != m.liveArcs {
		return fmt.Errorf("live-arc recount %d != counter %d", liveArcs, m.liveArcs)
	}
	if objective != m.objective {
		return fmt.Errorf("objective recount %d != counter %d", objective, m.objective)
	}
	return nil
}
