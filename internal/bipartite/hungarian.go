package bipartite

import (
	"fmt"
	"math"
)

var infFloat = math.Inf(1)

// checkCostMatrix validates the n×m cost matrix shared by every Hungarian
// variant: rectangular, n ≤ m.  It panics otherwise and returns (n, m).
func checkCostMatrix(cost [][]float64) (n, m int) {
	n = len(cost)
	if n == 0 {
		return 0, 0
	}
	m = len(cost[0])
	for i, row := range cost {
		if len(row) != m {
			panic(fmt.Sprintf("bipartite: ragged cost matrix at row %d", i))
		}
	}
	if n > m {
		panic("bipartite: Hungarian requires rows <= columns")
	}
	return n, m
}

// Hungarian solves the classic assignment problem: given an n×m cost matrix
// (n ≤ m), find a minimum-cost assignment of every row to a distinct column.
// It returns rowMatch (rowMatch[i] = column assigned to row i) and the total
// cost.  The implementation is the O(n²·m) shortest-augmenting-path variant
// of the Kuhn–Munkres algorithm with potentials (the "e-maxx" formulation).
//
// The library uses it in two places: as an independent exact solver the
// test-suite cross-checks min-cost-flow against on unit-capacity instances,
// and directly for one-worker-one-task markets where it is faster than the
// general flow reduction.
//
// Scratch comes from a pooled FlowWorkspace; HungarianWS pins one across
// calls.  It panics if n > m or the matrix is ragged.
func Hungarian(cost [][]float64) (rowMatch []int, total float64) {
	ws, pooled := acquireFlowWorkspace(nil)
	rowMatch, total = hungarian(cost, ws, 1)
	releaseFlowWorkspace(ws, pooled)
	return rowMatch, total
}

// HungarianWS is Hungarian drawing its potentials, slack arrays and path
// book-keeping from ws, so repeated solves allocate only the returned
// rowMatch.
func HungarianWS(cost [][]float64, ws *FlowWorkspace) (rowMatch []int, total float64) {
	return hungarian(cost, ws, 1)
}

// HungarianMax solves the maximisation variant: it finds the assignment of
// rows to distinct columns maximising total weight.  Weights are negated on
// the fly inside the kernel — no negated copy of the matrix is built.
func HungarianMax(weight [][]float64) (rowMatch []int, total float64) {
	ws, pooled := acquireFlowWorkspace(nil)
	rowMatch, total = hungarian(weight, ws, -1)
	releaseFlowWorkspace(ws, pooled)
	return rowMatch, total
}

// HungarianMaxWS is HungarianMax with a pinned workspace.
func HungarianMaxWS(weight [][]float64, ws *FlowWorkspace) (rowMatch []int, total float64) {
	return hungarian(weight, ws, -1)
}

// hungarian is the shared kernel: sign +1 minimises cost, sign -1 maximises
// (entries are sign-multiplied on access).  The minv/used arrays — which
// the seed allocated afresh for every row — live in the workspace and are
// re-initialised per row, one allocation per call at most and none once the
// workspace has warmed up.  The returned total is always in the caller's
// original (un-negated) scale.
func hungarian(cost [][]float64, ws *FlowWorkspace, sign float64) (rowMatch []int, total float64) {
	n, m := checkCostMatrix(cost)
	if n == 0 {
		return nil, 0
	}

	// Potentials u (rows) and v (columns); p[j] = row matched to column j,
	// all 1-indexed internally with 0 as a virtual root.
	u := growF64(ws.hu, n+1)
	v := growF64(ws.hv, m+1)
	p := growI32(ws.hp, m+1)
	way := growI32(ws.hway, m+1)
	minv := growF64(ws.minv, m+1)
	used := growBool(ws.hused, m+1)
	ws.hu, ws.hv, ws.minv = u, v, minv
	ws.hp, ws.hway, ws.hused = p, way, used
	clear(u)
	clear(v)
	clear(p)

	for i := 1; i <= n; i++ {
		p[0] = int32(i)
		j0 := 0
		for j := range minv {
			minv[j] = infFloat
			used[j] = false
		}
		for {
			used[j0] = true
			i0 := int(p[j0])
			delta := infFloat
			j1 := -1
			row := cost[i0-1]
			for j := 1; j <= m; j++ {
				if used[j] {
					continue
				}
				cur := sign*row[j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = int32(j0)
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= m; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		// Unwind the augmenting path.
		for j0 != 0 {
			j1 := int(way[j0])
			p[j0] = p[j1]
			j0 = j1
		}
	}

	rowMatch = make([]int, n)
	for j := 1; j <= m; j++ {
		if p[j] != 0 {
			rowMatch[p[j]-1] = j - 1
		}
	}
	for i, j := range rowMatch {
		total += cost[i][j]
	}
	return rowMatch, total
}
