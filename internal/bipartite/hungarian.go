package bipartite

import (
	"fmt"
	"math"
)

// Hungarian solves the classic assignment problem: given an n×m cost matrix
// (n ≤ m), find a minimum-cost assignment of every row to a distinct column.
// It returns rowMatch (rowMatch[i] = column assigned to row i) and the total
// cost.  The implementation is the O(n²·m) shortest-augmenting-path variant
// of the Kuhn–Munkres algorithm with potentials (the "e-maxx" formulation).
//
// The library uses it in two places: as an independent exact solver the
// test-suite cross-checks min-cost-flow against on unit-capacity instances,
// and directly for one-worker-one-task markets where it is faster than the
// general flow reduction.
//
// It panics if n > m or the matrix is ragged.
func Hungarian(cost [][]float64) (rowMatch []int, total float64) {
	n := len(cost)
	if n == 0 {
		return nil, 0
	}
	m := len(cost[0])
	for i, row := range cost {
		if len(row) != m {
			panic(fmt.Sprintf("bipartite: ragged cost matrix at row %d", i))
		}
	}
	if n > m {
		panic("bipartite: Hungarian requires rows <= columns")
	}

	// Potentials u (rows) and v (columns); p[j] = row matched to column j,
	// all 1-indexed internally with 0 as a virtual root.
	u := make([]float64, n+1)
	v := make([]float64, m+1)
	p := make([]int, m+1)
	way := make([]int, m+1)

	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, m+1)
		used := make([]bool, m+1)
		for j := range minv {
			minv[j] = math.Inf(1)
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := math.Inf(1)
			j1 := -1
			for j := 1; j <= m; j++ {
				if used[j] {
					continue
				}
				cur := cost[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= m; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		// Unwind the augmenting path.
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}

	rowMatch = make([]int, n)
	for j := 1; j <= m; j++ {
		if p[j] != 0 {
			rowMatch[p[j]-1] = j - 1
		}
	}
	for i, j := range rowMatch {
		total += cost[i][j]
	}
	return rowMatch, total
}

// HungarianMax solves the maximisation variant: it finds the assignment of
// rows to distinct columns maximising total weight, by negating the matrix
// and delegating to Hungarian.  Returns rowMatch and the maximised total.
func HungarianMax(weight [][]float64) (rowMatch []int, total float64) {
	n := len(weight)
	if n == 0 {
		return nil, 0
	}
	neg := make([][]float64, n)
	for i, row := range weight {
		neg[i] = make([]float64, len(row))
		for j, w := range row {
			neg[i][j] = -w
		}
	}
	rowMatch, negTotal := Hungarian(neg)
	return rowMatch, -negTotal
}
