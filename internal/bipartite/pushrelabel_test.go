package bipartite

import (
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

// buildRandomNetwork creates a random DAG-ish network plus a copy, so two
// engines can each consume a fresh residual graph.
func buildRandomNetwork(r *stats.RNG, n int, density float64) (*FlowNetwork, *FlowNetwork) {
	a := NewFlowNetwork(n, n*n)
	b := NewFlowNetwork(n, n*n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v && r.Bool(density) {
				c := int64(r.IntRange(1, 10))
				a.AddEdge(u, v, c, 0)
				b.AddEdge(u, v, c, 0)
			}
		}
	}
	return a, b
}

func TestPushRelabelSimple(t *testing.T) {
	f := NewFlowNetwork(4, 5)
	f.AddEdge(0, 1, 3, 0)
	f.AddEdge(0, 2, 2, 0)
	f.AddEdge(1, 3, 2, 0)
	f.AddEdge(2, 3, 3, 0)
	f.AddEdge(1, 2, 1, 0)
	if got := f.MaxFlowPushRelabel(0, 3); got != 5 {
		t.Fatalf("flow = %d, want 5", got)
	}
}

func TestPushRelabelDisconnected(t *testing.T) {
	f := NewFlowNetwork(3, 1)
	f.AddEdge(0, 1, 10, 0)
	if got := f.MaxFlowPushRelabel(0, 2); got != 0 {
		t.Fatalf("flow = %d", got)
	}
}

func TestPushRelabelMatchesDinicRandom(t *testing.T) {
	r := stats.NewRNG(71)
	for trial := 0; trial < 40; trial++ {
		n := r.IntRange(3, 12)
		a, b := buildRandomNetwork(r, n, 0.4)
		fa := a.MaxFlow(0, n-1)
		fb := b.MaxFlowPushRelabel(0, n-1)
		if fa != fb {
			t.Fatalf("trial %d: dinic %d vs push-relabel %d", trial, fa, fb)
		}
	}
}

func TestPushRelabelBipartiteShape(t *testing.T) {
	// The b-matching network shape: source → workers → tasks → sink.
	r := stats.NewRNG(72)
	for trial := 0; trial < 15; trial++ {
		nW := r.IntRange(2, 8)
		nT := r.IntRange(2, 8)
		n := nW + nT + 2
		a := NewFlowNetwork(n, n*n)
		b := NewFlowNetwork(n, n*n)
		add := func(u, v int, c int64) {
			a.AddEdge(u, v, c, 0)
			b.AddEdge(u, v, c, 0)
		}
		for w := 0; w < nW; w++ {
			add(0, 1+w, int64(r.IntRange(1, 3)))
		}
		for tt := 0; tt < nT; tt++ {
			add(1+nW+tt, n-1, int64(r.IntRange(1, 3)))
		}
		for w := 0; w < nW; w++ {
			for tt := 0; tt < nT; tt++ {
				if r.Bool(0.5) {
					add(1+w, 1+nW+tt, 1)
				}
			}
		}
		fa := a.MaxFlow(0, n-1)
		fb := b.MaxFlowPushRelabel(0, n-1)
		if fa != fb {
			t.Fatalf("trial %d: dinic %d vs push-relabel %d", trial, fa, fb)
		}
	}
}

func TestPushRelabelPerArcFlowsConsistent(t *testing.T) {
	// Flow conservation at internal vertices after push-relabel.
	r := stats.NewRNG(73)
	n := 10
	f, _ := buildRandomNetwork(r, n, 0.4)
	total := f.MaxFlowPushRelabel(0, n-1)
	// Net outflow of source must equal total, and conservation must hold
	// elsewhere.  Reconstruct per-arc flows from residuals.
	net := make([]int64, n)
	for a := 0; a < f.NumArcs(); a += 2 { // even arc ids are original arcs
		flow := f.Flow(a)
		net[f.raw[a^1].to] -= flow
		net[f.raw[a].to] += flow
	}
	if net[0] != -total || net[n-1] != total {
		t.Fatalf("source/sink imbalance: %d, %d, total %d", net[0], net[n-1], total)
	}
	for v := 1; v < n-1; v++ {
		if net[v] != 0 {
			t.Fatalf("conservation violated at %d: %d", v, net[v])
		}
	}
}

func TestPushRelabelPanicsOnSameST(t *testing.T) {
	f := NewFlowNetwork(2, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	f.MaxFlowPushRelabel(1, 1)
}

// Property: the two engines agree on arbitrary random instances.
func TestQuickFlowEnginesAgree(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		n := r.IntRange(3, 10)
		a, b := buildRandomNetwork(r, n, 0.35)
		return a.MaxFlow(0, n-1) == b.MaxFlowPushRelabel(0, n-1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
