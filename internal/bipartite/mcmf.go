package bipartite

import "math"

const infCost = int64(math.MaxInt64 / 4)

// MCMFResult reports the outcome of a minimum-cost flow computation.
type MCMFResult struct {
	Flow int64 // total flow pushed
	Cost int64 // total cost of that flow
}

// MinCostFlow pushes flow from s to t along successive shortest (cheapest)
// paths until either maxFlow units have been sent or no augmenting path
// remains.  If stopAtNonNegative is true it additionally stops as soon as the
// cheapest augmenting path has non-negative cost — exactly the stopping rule
// that turns a min-cost-flow solver into a *maximum-weight* b-matching solver
// when edge weights are encoded as negated costs.
//
// Scratch comes from a pooled FlowWorkspace; use MinCostFlowWS to pin one
// across calls and amortise the arrays over many solves.
func (f *FlowNetwork) MinCostFlow(s, t int, maxFlow int64, stopAtNonNegative bool) MCMFResult {
	ws, pooled := acquireFlowWorkspace(nil)
	res := f.MinCostFlowWS(s, t, maxFlow, stopAtNonNegative, ws)
	releaseFlowWorkspace(ws, pooled)
	return res
}

// MinCostFlowWS is MinCostFlow drawing every scratch array — potentials,
// Dijkstra labels, the heap — from ws, so repeated solves through a pinned
// workspace allocate nothing.
//
// Costs may be negative on original arcs (they are, in the b-matching
// reduction).  Initial potentials come from an ordered relaxation sweep
// (initPotentials) that costs O(E) on the s→L→R→t DAG the reduction
// produces — Bellman–Ford is only needed once flow exists, and the first
// potentials never see flow.  Every augmentation then runs Dijkstra with
// reduced costs, stopping as soon as t is finalised; vertices the truncated
// search did not finalise have their potentials advanced by dist(t), the
// standard clamp that keeps every residual reduced cost non-negative.
func (f *FlowNetwork) MinCostFlowWS(s, t int, maxFlow int64, stopAtNonNegative bool, ws *FlowWorkspace) MCMFResult {
	if s == t {
		panic("bipartite: MinCostFlow with s == t")
	}
	f.ensureAdj()
	pot := growI64(ws.pot, f.n)
	f.initPotentials(s, pot)
	ws.pot = pot
	return f.minCostFlowLoop(s, t, maxFlow, stopAtNonNegative, ws)
}

// minCostFlowLoop is the successive-shortest-paths augmentation loop shared
// by the cold path (MinCostFlowWS, potentials from initPotentials) and the
// warm path (MinCostFlowWarmWS, carried duals validated/repaired first).
// Precondition: ws.pot[:f.n] holds reduced-cost-feasible potentials for the
// current residual graph.  On return ws.potN records the network size the
// final potentials are valid for, which is what the warm path checks.
func (f *FlowNetwork) minCostFlowLoop(s, t int, maxFlow int64, stopAtNonNegative bool, ws *FlowWorkspace) MCMFResult {
	pot := ws.pot[:f.n]
	dist := growI64(ws.dist, f.n)
	prevArc := growI32(ws.prevArc, f.n)
	inHeap := growI32(ws.heapPos, f.n) // position in heap + 1; 0 = absent
	h := heap64{es: ws.heapEs[:0], pos: inHeap}
	ws.dist, ws.prevArc = dist, prevArc

	// Hoisted locals: the relaxation loop is the hot path of the whole
	// exact solver, and keeping the slice headers out of the FlowNetwork
	// indirection lets the compiler keep them in registers.
	es, adjOff, pairPos := f.es, f.adjOff, f.pairPos

	var res MCMFResult
	for res.Flow < maxFlow {
		// Cooperative cancellation: one poll per augmentation keeps the
		// check off the relaxation hot path while bounding the latency of
		// a deadline fire to a single Dijkstra round.
		if ws.Stop != nil && ws.Stop() {
			break
		}
		// Dijkstra over reduced costs, truncated at t's finalisation.
		for i := range dist {
			dist[i] = infCost
			inHeap[i] = 0
		}
		dist[s] = 0
		h.es = h.es[:0]
		h.push(int32(s), 0)
		for h.len() > 0 {
			v, dv := h.pop()
			if dv > dist[v] {
				continue
			}
			if v == int32(t) {
				break
			}
			base := dv + pot[v]
			for a, end := adjOff[v], adjOff[v+1]; a < end; a++ {
				e := &es[a]
				if e.cap <= 0 {
					continue
				}
				w := e.to
				// Reduced cost is non-negative once potentials are valid.
				nd := base + e.cost - pot[w]
				if nd < dist[w] {
					dist[w] = nd
					prevArc[w] = a
					h.push(w, nd)
				}
			}
		}
		dt := dist[t]
		if dt >= infCost {
			break // t unreachable in the residual graph
		}
		realPathCost := dt - pot[s] + pot[t]
		if stopAtNonNegative && realPathCost >= 0 {
			break
		}
		// Update potentials for the next round; vertices beyond the
		// truncation horizon advance by dt, preserving reduced-cost
		// feasibility on every residual arc.
		for v := 0; v < f.n; v++ {
			if dist[v] < dt {
				pot[v] += dist[v]
			} else {
				pot[v] += dt
			}
		}
		// Bottleneck along the path.
		push := maxFlow - res.Flow
		for v := int32(t); v != int32(s); {
			a := prevArc[v]
			if es[a].cap < push {
				push = es[a].cap
			}
			v = es[pairPos[a]].to
		}
		for v := int32(t); v != int32(s); {
			a := prevArc[v]
			es[a].cap -= push
			es[pairPos[a]].cap += push
			v = es[pairPos[a]].to
		}
		res.Flow += push
		res.Cost += push * realPathCost
	}
	ws.heapEs = h.es[:0]
	ws.potN = f.n
	return res
}

// initPotentials fills pot with shortest-path distances from s over arcs
// with positive residual capacity, tolerating negative costs.  It relaxes
// every vertex's out-arcs in ascending vertex order and repeats until a
// pass changes nothing.  The b-matching reduction lays its vertices out as
// source < left block < right block < sink, so that order is topological
// and the sweep converges in one relaxing pass plus one verification pass —
// O(E) total, against Bellman–Ford's O(V·E).  On graphs where vertex order
// is not topological the sweep degrades gracefully into ordered
// Bellman–Ford and still terminates with exact distances.  Vertices
// unreachable from s keep potential 0 (the value is irrelevant, it only
// has to be finite).
func (f *FlowNetwork) initPotentials(s int, pot []int64) {
	for i := range pot {
		pot[i] = infCost
	}
	pot[s] = 0
	es, adjOff := f.es, f.adjOff
	for pass := 0; pass < f.n; pass++ {
		changed := false
		for v := int32(0); v < int32(f.n); v++ {
			pv := pot[v]
			if pv == infCost {
				continue
			}
			for a, end := adjOff[v], adjOff[v+1]; a < end; a++ {
				e := &es[a]
				if e.cap <= 0 {
					continue
				}
				if nd := pv + e.cost; nd < pot[e.to] {
					pot[e.to] = nd
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	for i := range pot {
		if pot[i] == infCost {
			pot[i] = 0
		}
	}
}

// heap64 is a small binary min-heap of (vertex, priority) used by Dijkstra.
// Entries are stored as fused (vertex, key) records so a sift touches one
// cache line per level instead of two; pos tracks heap positions (+1) for
// decrease-key.
type heap64 struct {
	es  []heapEnt
	pos []int32
}

type heapEnt struct {
	v int32
	d int64
}

func (h *heap64) len() int { return len(h.es) }

func (h *heap64) push(v int32, d int64) {
	if p := h.pos[v]; p != 0 {
		// decrease-key
		i := int(p - 1)
		if d >= h.es[i].d {
			return
		}
		h.es[i].d = d
		h.up(i)
		return
	}
	h.es = append(h.es, heapEnt{v, d})
	h.pos[v] = int32(len(h.es))
	h.up(len(h.es) - 1)
}

func (h *heap64) pop() (int32, int64) {
	top := h.es[0]
	last := len(h.es) - 1
	h.swap(0, last)
	h.pos[top.v] = 0
	h.es = h.es[:last]
	if last > 0 {
		h.down(0)
	}
	return top.v, top.d
}

func (h *heap64) swap(i, j int) {
	h.es[i], h.es[j] = h.es[j], h.es[i]
	h.pos[h.es[i].v] = int32(i + 1)
	h.pos[h.es[j].v] = int32(j + 1)
}

func (h *heap64) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if h.es[p].d <= h.es[i].d {
			break
		}
		h.swap(i, p)
		i = p
	}
}

func (h *heap64) down(i int) {
	n := len(h.es)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && h.es[l].d < h.es[small].d {
			small = l
		}
		if r < n && h.es[r].d < h.es[small].d {
			small = r
		}
		if small == i {
			return
		}
		h.swap(i, small)
		i = small
	}
}
