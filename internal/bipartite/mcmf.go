package bipartite

import "math"

// MCMFResult reports the outcome of a minimum-cost flow computation.
type MCMFResult struct {
	Flow int64 // total flow pushed
	Cost int64 // total cost of that flow
}

// MinCostFlow pushes flow from s to t along successive shortest (cheapest)
// paths until either maxFlow units have been sent or no augmenting path
// remains.  If stopAtNonNegative is true it additionally stops as soon as the
// cheapest augmenting path has non-negative cost — exactly the stopping rule
// that turns a min-cost-flow solver into a *maximum-weight* b-matching solver
// when edge weights are encoded as negated costs.
//
// Costs may be negative on original arcs (they are, in the b-matching
// reduction); the implementation runs one Bellman–Ford pass to initialise
// Johnson potentials and then uses Dijkstra with reduced costs for every
// subsequent augmentation, giving O(F·E·logV) after the O(V·E) start-up.
func (f *FlowNetwork) MinCostFlow(s, t int, maxFlow int64, stopAtNonNegative bool) MCMFResult {
	if s == t {
		panic("bipartite: MinCostFlow with s == t")
	}
	const inf = int64(math.MaxInt64 / 4)

	pot := f.bellmanFord(s)
	dist := make([]int64, f.n)
	prevArc := make([]int32, f.n)
	inHeap := make([]int32, f.n) // position in heap + 1; 0 = absent

	var res MCMFResult
	for res.Flow < maxFlow {
		// Dijkstra over reduced costs.
		for i := range dist {
			dist[i] = inf
			prevArc[i] = -1
			inHeap[i] = 0
		}
		dist[s] = 0
		h := heap64{pos: inHeap}
		h.push(int32(s), 0)
		for h.len() > 0 {
			v, dv := h.pop()
			if dv > dist[v] {
				continue
			}
			for a := f.head[v]; a != -1; a = f.next[a] {
				if f.cap[a] <= 0 {
					continue
				}
				w := f.to[a]
				// Reduced cost is non-negative once potentials are valid.
				rc := f.cost[a] + pot[v] - pot[w]
				nd := dist[v] + rc
				if nd < dist[w] {
					dist[w] = nd
					prevArc[w] = a
					h.push(w, nd)
				}
			}
		}
		if dist[t] >= inf {
			break // t unreachable in the residual graph
		}
		realPathCost := dist[t] - pot[s] + pot[t]
		if stopAtNonNegative && realPathCost >= 0 {
			break
		}
		// Update potentials for the next round.
		for v := 0; v < f.n; v++ {
			if dist[v] < inf {
				pot[v] += dist[v]
			}
		}
		// Bottleneck along the path.
		push := maxFlow - res.Flow
		for v := int32(t); v != int32(s); {
			a := prevArc[v]
			if f.cap[a] < push {
				push = f.cap[a]
			}
			v = f.to[a^1]
		}
		for v := int32(t); v != int32(s); {
			a := prevArc[v]
			f.cap[a] -= push
			f.cap[a^1] += push
			v = f.to[a^1]
		}
		res.Flow += push
		res.Cost += push * realPathCost
	}
	return res
}

// bellmanFord computes shortest-path potentials from s over arcs with
// positive residual capacity, tolerating negative costs.  Vertices
// unreachable from s keep a large-but-finite potential so later reduced
// costs stay well-defined.
func (f *FlowNetwork) bellmanFord(s int) []int64 {
	const inf = int64(math.MaxInt64 / 4)
	pot := make([]int64, f.n)
	for i := range pot {
		pot[i] = inf
	}
	pot[s] = 0
	// SPFA (queue-based Bellman-Ford) — fast on the layered DAG-like
	// networks the b-matching reduction produces.
	inQueue := make([]bool, f.n)
	queue := make([]int32, 0, f.n)
	queue = append(queue, int32(s))
	inQueue[s] = true
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		inQueue[v] = false
		for a := f.head[v]; a != -1; a = f.next[a] {
			if f.cap[a] <= 0 {
				continue
			}
			w := f.to[a]
			nd := pot[v] + f.cost[a]
			if nd < pot[w] {
				pot[w] = nd
				if !inQueue[w] {
					queue = append(queue, w)
					inQueue[w] = true
				}
			}
		}
	}
	for i := range pot {
		if pot[i] == inf {
			pot[i] = 0 // unreachable: potential value is irrelevant
		}
	}
	return pot
}

// heap64 is a small binary min-heap of (vertex, priority) used by Dijkstra.
// pos tracks heap positions (+1) for decrease-key.
type heap64 struct {
	vs  []int32
	ds  []int64
	pos []int32
}

func (h *heap64) len() int { return len(h.vs) }

func (h *heap64) push(v int32, d int64) {
	if p := h.pos[v]; p != 0 {
		// decrease-key
		i := int(p - 1)
		if d >= h.ds[i] {
			return
		}
		h.ds[i] = d
		h.up(i)
		return
	}
	h.vs = append(h.vs, v)
	h.ds = append(h.ds, d)
	h.pos[v] = int32(len(h.vs))
	h.up(len(h.vs) - 1)
}

func (h *heap64) pop() (int32, int64) {
	v, d := h.vs[0], h.ds[0]
	last := len(h.vs) - 1
	h.swap(0, last)
	h.pos[v] = 0
	h.vs = h.vs[:last]
	h.ds = h.ds[:last]
	if last > 0 {
		h.down(0)
	}
	return v, d
}

func (h *heap64) swap(i, j int) {
	h.vs[i], h.vs[j] = h.vs[j], h.vs[i]
	h.ds[i], h.ds[j] = h.ds[j], h.ds[i]
	h.pos[h.vs[i]] = int32(i + 1)
	h.pos[h.vs[j]] = int32(j + 1)
}

func (h *heap64) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if h.ds[p] <= h.ds[i] {
			break
		}
		h.swap(i, p)
		i = p
	}
}

func (h *heap64) down(i int) {
	n := len(h.vs)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && h.ds[l] < h.ds[small] {
			small = l
		}
		if r < n && h.ds[r] < h.ds[small] {
			small = r
		}
		if small == i {
			return
		}
		h.swap(i, small)
		i = small
	}
}
