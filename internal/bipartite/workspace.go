package bipartite

import "sync"

// FlowWorkspace is the reusable scratch memory behind the matching kernels,
// mirroring core.Workspace: Dijkstra's dist/prevArc/heap arrays, the
// potential vector, Dinic's level/iter tables, Hopcroft–Karp's layer and
// frontier queues, the Hungarian potentials, and — most importantly — a
// retained FlowNetwork arena so repeated b-matching solves rebuild the flow
// reduction inside the previous solve's allocations.
//
// Two ways to use it:
//
//   - implicit: call the plain kernel entry points (MaxWeightBMatching,
//     MinCostFlow, …) and each call borrows a workspace from a package-wide
//     sync.Pool for its duration — concurrent solves each get their own;
//   - explicit: allocate one with NewFlowWorkspace and pass it to the WS
//     variants (MaxWeightBMatchingWS, …) to pin it across calls, which is
//     what core.Exact does when its own Workspace is pinned round over
//     round.
//
// A FlowWorkspace is not safe for concurrent use; the pool hands each
// borrower a private one.  All buffers are sized lazily and retained at
// high-water mark.
type FlowWorkspace struct {
	// Stop, when non-nil, is polled once per augmentation (MinCostFlowWS)
	// or per phase (MaxFlowWS) and makes the kernel return early with
	// whatever partial flow it has pushed so far.  It is the cooperative
	// cancellation hook core.Exact uses to honour context deadlines: the
	// caller that set it must treat the result as invalid once Stop has
	// reported true.  Left nil (the default) the kernels are bit-identical
	// to their uncancellable behaviour.
	Stop func() bool

	// Min-cost-flow scratch (MinCostFlowWS).
	dist    []int64
	prevArc []int32
	pot     []int64
	heapEs  []heapEnt
	heapPos []int32
	// potN is the vertex count of the network the carried potentials in pot
	// were last left feasible for (set by the augmentation loop's epilogue);
	// 0 means no solve has completed yet.  The warm-start path refuses to
	// reuse pot when the new network's size differs.
	potN int

	// Max-flow scratch (MaxFlowWS) and Hopcroft–Karp layers/frontier.
	level []int32
	iter  []int32
	queue []int32

	// Hopcroft–Karp right-side matches.
	matchR []int32

	// Hungarian scratch: potentials, column matches, augmenting-path
	// book-keeping and the per-call (not per-row) minv/used arrays.
	hu, hv, minv []float64
	hp, hway     []int32
	hused        []bool

	// Retained network arena for the b-matching reduction, rebuilt in
	// place by RebuildNetwork on every solve.
	net     FlowNetwork
	edgeArc []int32
}

// NewFlowWorkspace returns an empty workspace; buffers grow on first use.
func NewFlowWorkspace() *FlowWorkspace { return &FlowWorkspace{} }

var flowWorkspacePool = sync.Pool{New: func() any { return &FlowWorkspace{} }}

// acquireFlowWorkspace hands the caller a private workspace: the pinned one
// when non-nil (pooled false), a pooled one otherwise.
func acquireFlowWorkspace(pinned *FlowWorkspace) (ws *FlowWorkspace, pooled bool) {
	if pinned != nil {
		return pinned, false
	}
	return flowWorkspacePool.Get().(*FlowWorkspace), true
}

// releaseFlowWorkspace returns a pooled workspace; a pinned one stays with
// its owner.  The cancellation hook never survives a release: the next
// borrower must start uncancellable.
func releaseFlowWorkspace(ws *FlowWorkspace, pooled bool) {
	if pooled {
		ws.Stop = nil
		flowWorkspacePool.Put(ws)
	}
}

// The grow helpers return a length-n slice backed by buf when it is large
// enough, a fresh allocation otherwise.  Contents are unspecified; callers
// that need zeroed or sentinel-filled memory initialise explicitly.

func growI32(buf []int32, n int) []int32 {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]int32, n)
}

func growI8(buf []int8, n int) []int8 {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]int8, n)
}

func growI64(buf []int64, n int) []int64 {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]int64, n)
}

func growF64(buf []float64, n int) []float64 {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]float64, n)
}

func growBool(buf []bool, n int) []bool {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]bool, n)
}

func growArcs(buf []flowArc, n int) []flowArc {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]flowArc, n)
}
