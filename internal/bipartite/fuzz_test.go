package bipartite

import (
	"math"
	"testing"
)

// FuzzMaxWeightBMatching cross-checks the exact flow solver against the
// subset-enumeration brute force on small random instances (≤ 8×8, random
// capacities including zeros) decoded from the fuzz input.  The seed corpus
// runs as part of tier-1 `go test` (including under -race); `go test
// -fuzz=FuzzMaxWeightBMatching ./internal/bipartite` explores further.
func FuzzMaxWeightBMatching(f *testing.F) {
	f.Add([]byte{3, 3, 0xff, 1, 2, 1, 1, 1, 1})
	f.Add([]byte{1, 1, 0x01, 0, 1})
	f.Add([]byte{8, 8, 0xaa, 0x55, 3, 0, 1, 2, 3, 0, 1, 2, 2, 1, 0, 3, 2, 1, 0, 3})
	f.Add([]byte{4, 2, 0x0f, 2, 2, 0, 1, 3, 1})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		next := func() byte {
			if len(data) == 0 {
				return 0
			}
			b := data[0]
			data = data[1:]
			return b
		}
		nL := int(next())%8 + 1
		nR := int(next())%8 + 1
		g := NewGraph(nL, nR)
		// One bit per potential pair decides edge presence; weights are
		// two-decimal so the scaled-integer solver and the float brute
		// force agree exactly.  The brute force is 2^edges, so stop at 14.
		var bits, have uint
		for l := 0; l < nL && g.NumEdges() < 14; l++ {
			for r := 0; r < nR && g.NumEdges() < 14; r++ {
				if have == 0 {
					bits, have = uint(next()), 8
				}
				present := bits&1 == 1
				bits >>= 1
				have--
				if present {
					w := float64((l*31+r*17)%100) / 100
					g.AddEdge(l, r, w)
				}
			}
		}
		capL := make([]int, nL)
		capR := make([]int, nR)
		for i := range capL {
			capL[i] = int(next()) % 4 // zeros included: the zero-capacity skip path
		}
		for i := range capR {
			capR[i] = int(next()) % 4
		}

		m := MaxWeightBMatchingWS(g, capL, capR, nil)
		feasible(t, g, m, capL, capR)
		want := bruteMaxWeightBMatching(g, capL, capR)
		if math.Abs(m.Weight-want) > 1e-6 {
			t.Fatalf("flow %v vs brute %v (graph %d×%d, %d edges, capL %v capR %v)",
				m.Weight, want, nL, nR, g.NumEdges(), capL, capR)
		}
		serial := MaxWeightBMatchingSerial(g, capL, capR)
		matchingsEqual(t, "fuzz", m, serial)
	})
}
