// Package bipartite implements the graph-algorithm substrate of the
// reproduction: weighted bipartite graphs, maximum-cardinality matching
// (Hopcroft–Karp), maximum-weight perfect matching (Hungarian / Kuhn–
// Munkres), maximum flow (Dinic) and minimum-cost maximum-flow (successive
// shortest paths with Johnson potentials).
//
// The paper's central observation is that a labor market is a *bipartite*
// structure — workers on one side, tasks on the other — and that assignment
// must respect degree constraints on both sides.  The exact optimum of the
// linear mutual-benefit objective (MBA-L in DESIGN.md) is a maximum-weight
// degree-constrained b-matching, which this package solves via a min-cost
// flow reduction.  The heuristic and online algorithms in internal/core are
// all measured against that optimum.
//
// Every kernel comes in three shapes: the plain entry point (pooled scratch),
// a WS variant taking a pinned FlowWorkspace for allocation-free repeated
// solves, and a retained *Serial reference — the straightforward
// allocation-per-call implementation the property tests pin the optimised
// kernels against, bit for bit.
package bipartite

import "fmt"

// Edge is a weighted edge between left vertex L and right vertex R.
type Edge struct {
	L, R   int
	Weight float64
}

// Graph is a weighted bipartite graph with nL left vertices and nR right
// vertices.  Vertices are dense integer ids (0-based on each side); the
// market layer maps worker/task identities onto them.
//
// Adjacency is stored in CSR form — one flat edge-index array per side plus
// an offsets array — built lazily in two counted passes the first time any
// adjacency accessor runs after an AddEdge.  Building therefore performs a
// fixed number of allocations regardless of degree distribution, and Reset
// lets a retained Graph rebuild a same-or-different-shape instance inside
// its previous arenas.
type Graph struct {
	nL, nR int
	edges  []Edge
	adjL   []int32 // edge indices incident to l at [offL[l], offL[l+1])
	offL   []int32 // len nL+1
	adjR   []int32 // edge indices incident to r at [offR[r], offR[r+1])
	offR   []int32 // len nR+1
	dirty  bool
}

// NewGraph returns an empty bipartite graph with the given side sizes.
// It panics on negative sizes.
func NewGraph(nL, nR int) *Graph {
	g := &Graph{}
	g.Reset(nL, nR)
	return g
}

// Reset re-initialises g to an empty graph with the given side sizes,
// retaining every backing array for reuse.  It panics on negative sizes.
func (g *Graph) Reset(nL, nR int) {
	if nL < 0 || nR < 0 {
		panic("bipartite: negative side size")
	}
	g.nL, g.nR = nL, nR
	g.edges = g.edges[:0]
	g.dirty = true
}

// NL returns the number of left vertices.
func (g *Graph) NL() int { return g.nL }

// NR returns the number of right vertices.
func (g *Graph) NR() int { return g.nR }

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int { return len(g.edges) }

// AddEdge appends an edge (l, r, w).  Duplicate pairs are allowed by the
// graph itself (the assignment layer forbids them) — algorithms treat them
// as parallel edges.  It panics on out-of-range endpoints.
func (g *Graph) AddEdge(l, r int, w float64) {
	if l < 0 || l >= g.nL || r < 0 || r >= g.nR {
		panic(fmt.Sprintf("bipartite: edge (%d,%d) out of range (%d,%d)", l, r, g.nL, g.nR))
	}
	g.edges = append(g.edges, Edge{L: l, R: r, Weight: w})
	g.dirty = true
}

// ensureAdj (re)builds the CSR adjacency in two counted passes: exact
// per-vertex degrees first, then a cursor sweep filling each vertex's list
// in ascending edge order (the order AddEdge appended them).
func (g *Graph) ensureAdj() {
	if !g.dirty {
		return
	}
	offL := growI32(g.offL, g.nL+1)
	offR := growI32(g.offR, g.nR+1)
	clear(offL)
	clear(offR)
	for i := range g.edges {
		offL[g.edges[i].L+1]++
		offR[g.edges[i].R+1]++
	}
	for l := 0; l < g.nL; l++ {
		offL[l+1] += offL[l]
	}
	for r := 0; r < g.nR; r++ {
		offR[r+1] += offR[r]
	}
	adjL := growI32(g.adjL, len(g.edges))
	adjR := growI32(g.adjR, len(g.edges))
	for i := range g.edges {
		e := &g.edges[i]
		adjL[offL[e.L]] = int32(i)
		offL[e.L]++
		adjR[offR[e.R]] = int32(i)
		offR[e.R]++
	}
	// The fill advanced each offset to its successor; shift back.
	for l := g.nL; l > 0; l-- {
		offL[l] = offL[l-1]
	}
	offL[0] = 0
	for r := g.nR; r > 0; r-- {
		offR[r] = offR[r-1]
	}
	offR[0] = 0
	g.adjL, g.offL = adjL, offL
	g.adjR, g.offR = adjR, offR
	g.dirty = false
}

// Edge returns the i-th edge.
func (g *Graph) Edge(i int) Edge { return g.edges[i] }

// Edges returns the backing edge slice.  Callers must not mutate it.
func (g *Graph) Edges() []Edge { return g.edges }

// DegreeL returns the degree of left vertex l.
func (g *Graph) DegreeL(l int) int {
	g.ensureAdj()
	return int(g.offL[l+1] - g.offL[l])
}

// DegreeR returns the degree of right vertex r.
func (g *Graph) DegreeR(r int) int {
	g.ensureAdj()
	return int(g.offR[r+1] - g.offR[r])
}

// AdjL returns the edge indices incident to left vertex l.  Callers must not
// mutate the returned slice, and must not hold it across an AddEdge.
func (g *Graph) AdjL(l int) []int32 {
	g.ensureAdj()
	return g.adjL[g.offL[l]:g.offL[l+1]]
}

// AdjR returns the edge indices incident to right vertex r.
func (g *Graph) AdjR(r int) []int32 {
	g.ensureAdj()
	return g.adjR[g.offR[r]:g.offR[r+1]]
}

// TotalWeight sums all edge weights.
func (g *Graph) TotalWeight() float64 {
	var s float64
	for _, e := range g.edges {
		s += e.Weight
	}
	return s
}
