// Package bipartite implements the graph-algorithm substrate of the
// reproduction: weighted bipartite graphs, maximum-cardinality matching
// (Hopcroft–Karp), maximum-weight perfect matching (Hungarian / Kuhn–
// Munkres), maximum flow (Dinic) and minimum-cost maximum-flow (successive
// shortest paths with Johnson potentials).
//
// The paper's central observation is that a labor market is a *bipartite*
// structure — workers on one side, tasks on the other — and that assignment
// must respect degree constraints on both sides.  The exact optimum of the
// linear mutual-benefit objective (MBA-L in DESIGN.md) is a maximum-weight
// degree-constrained b-matching, which this package solves via a min-cost
// flow reduction.  The heuristic and online algorithms in internal/core are
// all measured against that optimum.
package bipartite

import "fmt"

// Edge is a weighted edge between left vertex L and right vertex R.
type Edge struct {
	L, R   int
	Weight float64
}

// Graph is a weighted bipartite graph with nL left vertices and nR right
// vertices.  Vertices are dense integer ids (0-based on each side); the
// market layer maps worker/task identities onto them.
type Graph struct {
	nL, nR int
	edges  []Edge
	adjL   [][]int32 // adjL[l] lists indices into edges
	adjR   [][]int32
	dirty  bool
}

// NewGraph returns an empty bipartite graph with the given side sizes.
// It panics on negative sizes.
func NewGraph(nL, nR int) *Graph {
	if nL < 0 || nR < 0 {
		panic("bipartite: negative side size")
	}
	return &Graph{
		nL:   nL,
		nR:   nR,
		adjL: make([][]int32, nL),
		adjR: make([][]int32, nR),
	}
}

// NL returns the number of left vertices.
func (g *Graph) NL() int { return g.nL }

// NR returns the number of right vertices.
func (g *Graph) NR() int { return g.nR }

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int { return len(g.edges) }

// AddEdge appends an edge (l, r, w).  Duplicate pairs are allowed by the
// graph itself (the assignment layer forbids them) — algorithms treat them
// as parallel edges.  It panics on out-of-range endpoints.
func (g *Graph) AddEdge(l, r int, w float64) {
	if l < 0 || l >= g.nL || r < 0 || r >= g.nR {
		panic(fmt.Sprintf("bipartite: edge (%d,%d) out of range (%d,%d)", l, r, g.nL, g.nR))
	}
	idx := int32(len(g.edges))
	g.edges = append(g.edges, Edge{L: l, R: r, Weight: w})
	g.adjL[l] = append(g.adjL[l], idx)
	g.adjR[r] = append(g.adjR[r], idx)
}

// Edge returns the i-th edge.
func (g *Graph) Edge(i int) Edge { return g.edges[i] }

// Edges returns the backing edge slice.  Callers must not mutate it.
func (g *Graph) Edges() []Edge { return g.edges }

// DegreeL returns the degree of left vertex l.
func (g *Graph) DegreeL(l int) int { return len(g.adjL[l]) }

// DegreeR returns the degree of right vertex r.
func (g *Graph) DegreeR(r int) int { return len(g.adjR[r]) }

// AdjL returns the edge indices incident to left vertex l.  Callers must not
// mutate the returned slice.
func (g *Graph) AdjL(l int) []int32 { return g.adjL[l] }

// AdjR returns the edge indices incident to right vertex r.
func (g *Graph) AdjR(r int) []int32 { return g.adjR[r] }

// TotalWeight sums all edge weights.
func (g *Graph) TotalWeight() float64 {
	var s float64
	for _, e := range g.edges {
		s += e.Weight
	}
	return s
}
