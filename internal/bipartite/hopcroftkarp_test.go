package bipartite

import (
	"testing"

	"repro/internal/stats"
)

func TestHopcroftKarpPerfect(t *testing.T) {
	// 3x3 with a perfect matching along the diagonal plus noise edges.
	g := NewGraph(3, 3)
	g.AddEdge(0, 0, 1)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 1, 1)
	g.AddEdge(2, 2, 1)
	match, size := HopcroftKarp(g)
	if size != 3 {
		t.Fatalf("size = %d, want 3 (match %v)", size, match)
	}
	checkMatchingValid(t, g, match)
}

func TestHopcroftKarpNoEdges(t *testing.T) {
	g := NewGraph(4, 4)
	match, size := HopcroftKarp(g)
	if size != 0 {
		t.Fatalf("size = %d", size)
	}
	for _, m := range match {
		if m != -1 {
			t.Fatal("unmatched vertices must map to -1")
		}
	}
}

func TestHopcroftKarpStar(t *testing.T) {
	// Every left vertex connects only to right vertex 0: max matching is 1.
	g := NewGraph(5, 3)
	for l := 0; l < 5; l++ {
		g.AddEdge(l, 0, 1)
	}
	_, size := HopcroftKarp(g)
	if size != 1 {
		t.Fatalf("star matching size = %d", size)
	}
}

func TestHopcroftKarpNeedsAugmentation(t *testing.T) {
	// Classic instance where the greedy matching must be augmented:
	// L0-{R0,R1}, L1-{R0}.  Greedy might match L0-R0 and strand L1.
	g := NewGraph(2, 2)
	g.AddEdge(0, 0, 1)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 0, 1)
	_, size := HopcroftKarp(g)
	if size != 2 {
		t.Fatalf("size = %d, want 2", size)
	}
}

func TestHopcroftKarpMatchesFlow(t *testing.T) {
	// Cross-check max matching against Dinic unit-capacity flow on random
	// graphs.
	r := stats.NewRNG(101)
	for trial := 0; trial < 30; trial++ {
		nL := r.IntRange(1, 12)
		nR := r.IntRange(1, 12)
		g := NewGraph(nL, nR)
		for l := 0; l < nL; l++ {
			for rr := 0; rr < nR; rr++ {
				if r.Bool(0.3) {
					g.AddEdge(l, rr, 1)
				}
			}
		}
		_, hkSize := HopcroftKarp(g)

		ones := func(n int) []int {
			s := make([]int, n)
			for i := range s {
				s[i] = 1
			}
			return s
		}
		fm := MaxCardinalityBMatching(g, ones(nL), ones(nR))
		if hkSize != len(fm.EdgeIdx) {
			t.Fatalf("trial %d: HK %d vs flow %d", trial, hkSize, len(fm.EdgeIdx))
		}
	}
}

// checkMatchingValid asserts matchL encodes a valid matching of g.
func checkMatchingValid(t *testing.T, g *Graph, matchL []int) {
	t.Helper()
	usedR := map[int]bool{}
	for l, r := range matchL {
		if r == -1 {
			continue
		}
		if usedR[r] {
			t.Fatalf("right vertex %d matched twice", r)
		}
		usedR[r] = true
		found := false
		for _, ei := range g.AdjL(l) {
			if g.Edge(int(ei)).R == r {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("matched pair (%d,%d) is not an edge", l, r)
		}
	}
}
