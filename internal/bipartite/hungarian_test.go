package bipartite

import (
	"math"
	"testing"

	"repro/internal/stats"
)

func TestHungarianKnownSquare(t *testing.T) {
	cost := [][]float64{
		{4, 1, 3},
		{2, 0, 5},
		{3, 2, 2},
	}
	match, total := Hungarian(cost)
	// Optimal: row0→col1 (1), row1→col0 (2), row2→col2 (2) = 5.
	if total != 5 {
		t.Fatalf("total = %v, want 5 (match %v)", total, match)
	}
	checkAssignmentValid(t, match, 3)
}

func TestHungarianRectangular(t *testing.T) {
	cost := [][]float64{
		{10, 1, 10, 10},
		{10, 10, 2, 10},
	}
	match, total := Hungarian(cost)
	if total != 3 {
		t.Fatalf("total = %v, want 3", total)
	}
	if match[0] != 1 || match[1] != 2 {
		t.Fatalf("match = %v", match)
	}
}

func TestHungarianEmpty(t *testing.T) {
	match, total := Hungarian(nil)
	if match != nil || total != 0 {
		t.Fatal("empty problem should be trivial")
	}
}

func TestHungarianSingle(t *testing.T) {
	match, total := Hungarian([][]float64{{7}})
	if len(match) != 1 || match[0] != 0 || total != 7 {
		t.Fatalf("single: %v %v", match, total)
	}
}

func TestHungarianPanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("rows > cols did not panic")
			}
		}()
		Hungarian([][]float64{{1}, {2}})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("ragged matrix did not panic")
			}
		}()
		Hungarian([][]float64{{1, 2}, {3}})
	}()
}

func TestHungarianMax(t *testing.T) {
	weight := [][]float64{
		{1, 5},
		{5, 1},
	}
	match, total := HungarianMax(weight)
	if total != 10 {
		t.Fatalf("max total = %v, want 10", total)
	}
	if match[0] != 1 || match[1] != 0 {
		t.Fatalf("match = %v", match)
	}
}

func TestHungarianNegativeCosts(t *testing.T) {
	cost := [][]float64{
		{-1, 4},
		{4, -1},
	}
	_, total := Hungarian(cost)
	if total != -2 {
		t.Fatalf("total = %v, want -2", total)
	}
}

// Brute-force assignment by permutation enumeration, for cross-checking.
func bruteAssign(cost [][]float64) float64 {
	n := len(cost)
	m := len(cost[0])
	best := math.Inf(1)
	used := make([]bool, m)
	var rec func(row int, acc float64)
	rec = func(row int, acc float64) {
		if row == n {
			if acc < best {
				best = acc
			}
			return
		}
		for c := 0; c < m; c++ {
			if !used[c] {
				used[c] = true
				rec(row+1, acc+cost[row][c])
				used[c] = false
			}
		}
	}
	rec(0, 0)
	return best
}

func TestHungarianMatchesBruteForce(t *testing.T) {
	r := stats.NewRNG(202)
	for trial := 0; trial < 50; trial++ {
		n := r.IntRange(1, 6)
		m := n + r.IntRange(0, 2)
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, m)
			for j := range cost[i] {
				cost[i][j] = math.Round(r.Float64Range(-10, 10)*100) / 100
			}
		}
		_, got := Hungarian(cost)
		want := bruteAssign(cost)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: Hungarian %v vs brute %v for %v", trial, got, want, cost)
		}
	}
}

func checkAssignmentValid(t *testing.T, match []int, m int) {
	t.Helper()
	used := map[int]bool{}
	for _, c := range match {
		if c < 0 || c >= m || used[c] {
			t.Fatalf("invalid assignment %v", match)
		}
		used[c] = true
	}
}
