// Package pricing turns the retention model into an operator tool: how much
// must tasks pay for the workforce to stay?
//
// The benefit model gives each pair a monetary surplus only when the task's
// payment clears the worker's reservation wage, and the dynamics simulation
// makes under-paid workers quit.  This package exposes the two levers an
// operator can reason about:
//
//   - SurplusFraction / MultiplierForSurplus — the static view: what share
//     of eligible pairs pays above reservation, and the cheapest uniform
//     payment multiplier reaching a target share;
//   - RetentionCurve / RecommendMultiplier — the dynamic view: final
//     workforce participation as a function of the payment multiplier, and
//     the cheapest multiplier sustaining a participation target.
package pricing

import (
	"fmt"

	"repro/internal/dynamics"
	"repro/internal/market"
)

// ScalePayments returns a copy of in with every task payment multiplied by
// mult (MaxPayment rescaled accordingly).  It panics on a negative
// multiplier.
func ScalePayments(in *market.Instance, mult float64) *market.Instance {
	if mult < 0 {
		panic("pricing: negative multiplier")
	}
	out := *in
	out.Tasks = make([]market.Task, len(in.Tasks))
	copy(out.Tasks, in.Tasks)
	out.MaxPayment = 0
	for i := range out.Tasks {
		out.Tasks[i].Payment *= mult
		if out.Tasks[i].Payment > out.MaxPayment {
			out.MaxPayment = out.Tasks[i].Payment
		}
	}
	return &out
}

// SurplusFraction returns the share of eligible worker-task pairs whose
// payment strictly exceeds the worker's reservation wage — the fraction of
// the market where money actually motivates.  A market with no eligible
// pairs returns 0.
func SurplusFraction(in *market.Instance) float64 {
	tasksByCat := make([][]int, in.NumCategories)
	for j := range in.Tasks {
		tasksByCat[in.Tasks[j].Category] = append(tasksByCat[in.Tasks[j].Category], j)
	}
	pairs, surplus := 0, 0
	for i := range in.Workers {
		w := &in.Workers[i]
		for _, c := range w.Specialties {
			for _, j := range tasksByCat[c] {
				pairs++
				if in.Tasks[j].Payment > w.ReservationWage {
					surplus++
				}
			}
		}
	}
	if pairs == 0 {
		return 0
	}
	return float64(surplus) / float64(pairs)
}

// MultiplierForSurplus binary-searches the smallest payment multiplier in
// [lo, hi] at which SurplusFraction reaches target.  SurplusFraction is
// monotone in the multiplier, so the search is exact up to tol.  It returns
// an error when even hi cannot reach the target.
func MultiplierForSurplus(in *market.Instance, target, lo, hi, tol float64) (float64, error) {
	if target < 0 || target > 1 {
		return 0, fmt.Errorf("pricing: target %v outside [0,1]", target)
	}
	if lo < 0 || hi <= lo {
		return 0, fmt.Errorf("pricing: bad bracket [%v,%v]", lo, hi)
	}
	if tol <= 0 {
		tol = 1e-3
	}
	at := func(m float64) float64 { return SurplusFraction(ScalePayments(in, m)) }
	if at(hi) < target {
		return 0, fmt.Errorf("pricing: target %.3f unreachable even at multiplier %v (got %.3f)",
			target, hi, at(hi))
	}
	if at(lo) >= target {
		return lo, nil
	}
	for hi-lo > tol {
		mid := (lo + hi) / 2
		if at(mid) >= target {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}

// RetentionPoint is one multiplier probe of the dynamic view.
type RetentionPoint struct {
	Multiplier         float64
	FinalParticipation float64
	CumulativeBenefit  float64
}

// RetentionCurve runs the dynamics simulation once per multiplier, scaling
// the per-round task payments, and reports final participation and
// cumulative benefit.  The same seed is used for every point so the curve
// isolates the payment effect.
func RetentionCurve(cfg dynamics.Config, multipliers []float64, seed uint64) ([]RetentionPoint, error) {
	out := make([]RetentionPoint, 0, len(multipliers))
	for _, m := range multipliers {
		if m < 0 {
			return nil, fmt.Errorf("pricing: negative multiplier %v", m)
		}
		c := cfg
		// Applied post-generation so reservation wages (outside options)
		// stay fixed — scaling the generator's PaymentMu would scale them
		// too and leave utilities unchanged.
		c.PaymentMultiplier = m
		if m == 0 {
			c.PaymentMultiplier = 1e-9 // "pay nothing", distinct from the 0=default sentinel
		}
		rep, err := dynamics.Simulate(c, seed)
		if err != nil {
			return nil, err
		}
		out = append(out, RetentionPoint{
			Multiplier:         m,
			FinalParticipation: rep.FinalParticipation,
			CumulativeBenefit:  rep.TotalMutual,
		})
	}
	return out, nil
}

// RecommendMultiplier returns the smallest multiplier from candidates whose
// simulated final participation reaches target, or an error when none does.
// Candidates must be sorted ascending.
func RecommendMultiplier(cfg dynamics.Config, candidates []float64, target float64, seed uint64) (float64, error) {
	if len(candidates) == 0 {
		return 0, fmt.Errorf("pricing: no candidates")
	}
	curve, err := RetentionCurve(cfg, candidates, seed)
	if err != nil {
		return 0, err
	}
	for _, pt := range curve {
		if pt.FinalParticipation >= target {
			return pt.Multiplier, nil
		}
	}
	return 0, fmt.Errorf("pricing: participation target %.2f unreachable (best %.2f at multiplier %v)",
		target, curve[len(curve)-1].FinalParticipation, curve[len(curve)-1].Multiplier)
}
