package pricing

import (
	"math"
	"testing"

	"repro/internal/benefit"
	"repro/internal/core"
	"repro/internal/dynamics"
	"repro/internal/market"
)

func testInstance(seed uint64) *market.Instance {
	return market.MustGenerate(market.FreelanceTraceConfig(80, 60), seed)
}

func TestScalePayments(t *testing.T) {
	in := testInstance(1)
	out := ScalePayments(in, 2)
	for j := range in.Tasks {
		if math.Abs(out.Tasks[j].Payment-2*in.Tasks[j].Payment) > 1e-12 {
			t.Fatalf("task %d not doubled", j)
		}
	}
	if math.Abs(out.MaxPayment-2*in.MaxPayment) > 1e-9 {
		t.Fatalf("MaxPayment %v vs %v", out.MaxPayment, in.MaxPayment)
	}
	// Original untouched.
	if in.Tasks[0].Payment == out.Tasks[0].Payment && in.Tasks[0].Payment != 0 {
		t.Fatal("original mutated")
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestScalePaymentsPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	ScalePayments(testInstance(1), -1)
}

func TestSurplusFractionMonotoneInMultiplier(t *testing.T) {
	in := testInstance(2)
	prev := -1.0
	for _, m := range []float64{0.25, 0.5, 1, 2, 4} {
		f := SurplusFraction(ScalePayments(in, m))
		if f < prev-1e-12 {
			t.Fatalf("surplus not monotone at multiplier %v: %v < %v", m, f, prev)
		}
		if f < 0 || f > 1 {
			t.Fatalf("surplus %v out of range", f)
		}
		prev = f
	}
	if SurplusFraction(ScalePayments(in, 0)) != 0 {
		t.Fatal("zero payments should have zero surplus")
	}
}

func TestSurplusFractionEmptyMarket(t *testing.T) {
	in := &market.Instance{Name: "empty", NumCategories: 1}
	if SurplusFraction(in) != 0 {
		t.Fatal("empty market surplus should be 0")
	}
}

func TestMultiplierForSurplus(t *testing.T) {
	in := testInstance(3)
	target := 0.95
	m, err := MultiplierForSurplus(in, target, 0.01, 50, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	// The found multiplier achieves the target…
	if got := SurplusFraction(ScalePayments(in, m)); got < target {
		t.Fatalf("multiplier %v gives %v < %v", m, got, target)
	}
	// …and a meaningfully smaller one does not (minimality up to tol).
	if got := SurplusFraction(ScalePayments(in, m*0.9)); got >= target {
		t.Fatalf("0.9x multiplier still hits target: %v", got)
	}
}

func TestMultiplierForSurplusErrors(t *testing.T) {
	in := testInstance(4)
	if _, err := MultiplierForSurplus(in, 1.5, 0.1, 10, 0); err == nil {
		t.Fatal("bad target accepted")
	}
	if _, err := MultiplierForSurplus(in, 0.5, 5, 1, 0); err == nil {
		t.Fatal("bad bracket accepted")
	}
	// Workers with reservation wages above every scaled payment: target 1.0
	// may be unreachable at a tiny hi.
	if _, err := MultiplierForSurplus(in, 1.0, 0.0001, 0.0002, 0); err == nil {
		t.Fatal("unreachable target accepted")
	}
}

func dynCfg() dynamics.Config {
	return dynamics.Config{
		Rounds: 8,
		Market: market.Config{NumWorkers: 60, NumTasks: 40},
		Params: benefit.DefaultParams(),
		Solver: core.Greedy{Kind: core.MutualWeight},
	}
}

func TestRetentionCurveShape(t *testing.T) {
	curve, err := RetentionCurve(dynCfg(), []float64{0.25, 1, 4}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 3 {
		t.Fatalf("curve has %d points", len(curve))
	}
	for _, pt := range curve {
		if pt.FinalParticipation < 0 || pt.FinalParticipation > 1 {
			t.Fatalf("participation %v", pt.FinalParticipation)
		}
	}
	// Paying 16x more than baseline should not retain *fewer* workers than
	// paying a quarter (allowing simulation noise via a margin).
	if curve[2].FinalParticipation < curve[0].FinalParticipation-0.1 {
		t.Fatalf("higher pay retained clearly fewer workers: %+v", curve)
	}
}

func TestRetentionCurveRejectsNegative(t *testing.T) {
	if _, err := RetentionCurve(dynCfg(), []float64{-1}, 1); err == nil {
		t.Fatal("negative multiplier accepted")
	}
}

func TestRecommendMultiplier(t *testing.T) {
	cfg := dynCfg()
	candidates := []float64{0.25, 0.5, 1, 2, 4, 8}
	// A very low target must be satisfiable by the cheapest candidate that
	// reaches it; verify minimality against the returned curve.
	m, err := RecommendMultiplier(cfg, candidates, 0.1, 6)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range candidates {
		if c == m {
			found = true
		}
	}
	if !found {
		t.Fatalf("recommended %v not among candidates", m)
	}
	// An impossible target errors.
	if _, err := RecommendMultiplier(cfg, candidates, 1.01, 6); err == nil {
		t.Fatal("impossible target accepted")
	}
	if _, err := RecommendMultiplier(cfg, nil, 0.5, 6); err == nil {
		t.Fatal("empty candidates accepted")
	}
}
