package market

import "testing"

func TestClusteredMarketValid(t *testing.T) {
	in := ClusteredMarket(100, 80, 0.2, 1)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	if in.NumWorkers() != 100 || in.NumTasks() != 80 {
		t.Fatalf("shape (%d,%d)", in.NumWorkers(), in.NumTasks())
	}
}

func TestClusteredMarketIsBimodal(t *testing.T) {
	in := ClusteredMarket(200, 50, 0.25, 2)
	// The first quarter are experts: narrow & accurate; the rest broad &
	// mediocre.
	nExperts := 50
	var expAcc, genAcc float64
	var expSpec, genSpec int
	for i := range in.Workers {
		w := &in.Workers[i]
		var acc float64
		for _, c := range w.Specialties {
			acc += w.Accuracy[c]
		}
		acc /= float64(len(w.Specialties))
		if i < nExperts {
			expAcc += acc
			expSpec += len(w.Specialties)
		} else {
			genAcc += acc
			genSpec += len(w.Specialties)
		}
	}
	expAcc /= float64(nExperts)
	genAcc /= float64(200 - nExperts)
	if expAcc < genAcc+0.15 {
		t.Fatalf("experts not clearly more accurate: %.3f vs %.3f", expAcc, genAcc)
	}
	if float64(expSpec)/float64(nExperts) >= float64(genSpec)/float64(200-nExperts) {
		t.Fatal("experts should be narrower than generalists")
	}
}

func TestClusteredMarketDefaultFrac(t *testing.T) {
	in := ClusteredMarket(50, 20, 0, 3)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	in2 := ClusteredMarket(50, 20, 5, 3) // clamped to 1: all experts
	if err := in2.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestClusteredMarketDeterministic(t *testing.T) {
	a := ClusteredMarket(60, 40, 0.2, 9)
	b := ClusteredMarket(60, 40, 0.2, 9)
	for i := range a.Workers {
		if a.Workers[i].ReservationWage != b.Workers[i].ReservationWage {
			t.Fatal("not deterministic")
		}
	}
}
