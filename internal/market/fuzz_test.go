package market

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadJSON asserts the instance parser never panics and that anything
// it accepts satisfies the full structural validator (ReadJSON's contract).
func FuzzReadJSON(f *testing.F) {
	var seedBuf bytes.Buffer
	_ = MustGenerate(Config{NumWorkers: 2, NumTasks: 2}, 1).WriteJSON(&seedBuf)
	f.Add(seedBuf.String())
	f.Add(`{"name":"x","num_categories":1,"workers":[],"tasks":[]}`)
	f.Add(`{`)
	f.Add(``)
	f.Fuzz(func(t *testing.T, input string) {
		in, err := ReadJSON(strings.NewReader(input))
		if err != nil {
			return
		}
		if vErr := in.Validate(); vErr != nil {
			t.Fatalf("ReadJSON accepted invalid instance: %v", vErr)
		}
	})
}
