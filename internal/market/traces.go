package market

// The paper evaluated on data from a real labor platform, which is
// proprietary and unavailable.  Per the substitution policy in DESIGN.md §6
// this file provides two trace-shaped generators whose marginal
// distributions follow the published descriptions of such platforms:
//
//   - FreelanceTrace: an Upwork/Freelancer-like project market — few, large,
//     well-paid tasks with replication 1–2; strongly Zipf-skewed categories;
//     heterogeneous, specialised workers with meaningful reservation wages;
//     log-normal price dispersion.
//   - MicrotaskTrace: an MTurk-like microtask market — many cheap tasks with
//     high replication (3–7 answers aggregated per task); flat prices; broad,
//     shallow worker skills and low reservation wages.
//
// Both regimes stress the mutual-benefit trade-off differently: in the
// freelance market the tension is money vs. fit on scarce high-value edges;
// in the microtask market it is aggregate answer quality vs. keeping a large
// casual workforce engaged.

// FreelanceTraceConfig returns the generator configuration of the
// freelance-platform substitute with the given market size.
func FreelanceTraceConfig(workers, tasks int) Config {
	return Config{
		Name:              "freelance",
		NumWorkers:        workers,
		NumTasks:          tasks,
		NumCategories:     30,
		CategorySkew:      1.1,
		MinSpecialties:    1,
		MaxSpecialties:    4,
		MinCapacity:       1,
		MaxCapacity:       3,
		MinReplication:    1,
		MaxReplication:    2,
		PaymentMu:         3.5, // median ≈ $33 per project
		PaymentSigma:      0.9, // wide log-normal dispersion
		AccuracyMean:      0.85,
		AccuracyStd:       0.08,
		InterestSpecialty: 0.65,
		DifficultyMax:     0.7,
		ReservationFrac:   0.8, // freelancers have real outside options
	}
}

// MicrotaskTraceConfig returns the generator configuration of the
// microtask-platform substitute with the given market size.
func MicrotaskTraceConfig(workers, tasks int) Config {
	return Config{
		Name:              "microtask",
		NumWorkers:        workers,
		NumTasks:          tasks,
		NumCategories:     12,
		CategorySkew:      0.8,
		MinSpecialties:    3,
		MaxSpecialties:    6,
		MinCapacity:       2,
		MaxCapacity:       8,
		MinReplication:    3,
		MaxReplication:    7,
		PaymentMu:         0.5, // median ≈ $1.65 per answer
		PaymentSigma:      0.3, // near-flat microtask prices
		AccuracyMean:      0.75,
		AccuracyStd:       0.12,
		InterestSpecialty: 0.55,
		DifficultyMax:     0.5,
		ReservationFrac:   0.2, // casual workers accept almost anything
	}
}

// FreelanceTrace generates the freelance-platform substitute instance.
func FreelanceTrace(workers, tasks int, seed uint64) *Instance {
	return MustGenerate(FreelanceTraceConfig(workers, tasks), seed)
}

// MicrotaskTrace generates the microtask-platform substitute instance.
func MicrotaskTrace(workers, tasks int, seed uint64) *Instance {
	return MustGenerate(MicrotaskTraceConfig(workers, tasks), seed)
}

// UniformConfig returns a skew-free control workload: uniform categories,
// homogeneous capacities and replications.  It isolates algorithmic effects
// from distributional ones in the sweeps.
func UniformConfig(workers, tasks int) Config {
	return Config{
		Name:           "uniform",
		NumWorkers:     workers,
		NumTasks:       tasks,
		NumCategories:  10,
		CategorySkew:   0,
		MinSpecialties: 2,
		MaxSpecialties: 4,
		MinCapacity:    2,
		MaxCapacity:    2,
		MinReplication: 2,
		MaxReplication: 2,
	}
}

// ClusteredMarket generates the two-tier "expert market": a small cadre of
// specialists (narrow, highly accurate, expensive — high reservation wages)
// above a broad base of generalists (wide, mediocre, cheap).  Real labor
// platforms are strongly bimodal in exactly this way, and the regime
// stresses the mutual-benefit trade-off hardest: quality-only assignment
// funnels everything to the specialist cadre and starves the base.
//
// expertFrac is the fraction of workers in the specialist tier (default
// 0.2 when 0).
func ClusteredMarket(workers, tasks int, expertFrac float64, seed uint64) *Instance {
	if expertFrac <= 0 {
		expertFrac = 0.2
	}
	if expertFrac > 1 {
		expertFrac = 1
	}
	nExperts := int(float64(workers)*expertFrac + 0.5)
	expertCfg := Config{
		Name:              "clustered",
		NumWorkers:        nExperts,
		NumTasks:          tasks,
		NumCategories:     20,
		CategorySkew:      0.9,
		MinSpecialties:    1,
		MaxSpecialties:    2, // narrow
		MinCapacity:       1,
		MaxCapacity:       2,
		MinReplication:    1,
		MaxReplication:    3,
		PaymentMu:         2.5,
		PaymentSigma:      0.8,
		AccuracyMean:      0.93, // deep expertise
		AccuracyStd:       0.04,
		InterestSpecialty: 0.8,
		DifficultyMax:     0.8,
		ReservationFrac:   1.2, // experts are expensive
	}
	generalistCfg := expertCfg
	generalistCfg.NumWorkers = workers - nExperts
	generalistCfg.MinSpecialties = 4
	generalistCfg.MaxSpecialties = 8 // broad
	generalistCfg.MinCapacity = 2
	generalistCfg.MaxCapacity = 5
	generalistCfg.AccuracyMean = 0.68 // shallow
	generalistCfg.AccuracyStd = 0.08
	generalistCfg.InterestSpecialty = 0.55
	generalistCfg.ReservationFrac = 0.2 // cheap

	experts := MustGenerate(expertCfg, seed)
	generalists := MustGenerate(generalistCfg, seed^0x5bd1e995)

	// Merge: experts' tasks become the instance's tasks; generalists are
	// appended with re-densified IDs.
	out := &Instance{
		Name:          "clustered",
		NumCategories: expertCfg.NumCategories,
		Workers:       experts.Workers,
		Tasks:         experts.Tasks,
		MaxPayment:    experts.MaxPayment,
	}
	for _, w := range generalists.Workers {
		w.ID = len(out.Workers)
		out.Workers = append(out.Workers, w)
	}
	return out
}

// ZipfConfig returns the skew-sweep workload with the given Zipf exponent.
// Note theta = 0 cannot be expressed through Config.Defaults (zero means
// "use default", which is already 0), so this helper exists mostly for
// callers that sweep theta > 0 and fall back to UniformConfig at 0.
func ZipfConfig(workers, tasks int, theta float64) Config {
	cfg := UniformConfig(workers, tasks)
	cfg.Name = "zipf"
	cfg.CategorySkew = theta
	return cfg
}
