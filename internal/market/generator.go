package market

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// Config parameterises the synthetic market generator.  Zero values are
// filled in by Defaults; experiments override only the knob under study.
type Config struct {
	// Name labels the generated instance.
	Name string
	// NumWorkers and NumTasks size the two sides.
	NumWorkers int
	NumTasks   int
	// NumCategories sizes the category universe.
	NumCategories int
	// CategorySkew is the Zipf exponent of task-category popularity.
	// 0 = uniform; 1–1.5 matches real platform skew (see DESIGN.md §6).
	CategorySkew float64
	// WorkerSkew, when non-nil, sets a separate Zipf exponent for worker
	// specialty choice.  When nil, workers follow the task skew
	// (supply tracks demand, the equilibrium of a mature platform).
	// Setting it to 0 models a demand shock: tasks concentrate while the
	// workforce's skills stay broad — the regime the skew-sweep experiment
	// (R-Fig7) studies.
	WorkerSkew *float64
	// SpecialtiesPerWorker bounds how many categories each worker accepts.
	MinSpecialties, MaxSpecialties int
	// Capacity bounds the tasks a worker accepts per round.
	MinCapacity, MaxCapacity int
	// Replication bounds how many workers each task requests.
	MinReplication, MaxReplication int
	// PaymentMu/PaymentSigma parameterise the log-normal payment
	// distribution (real platform prices are log-normal).
	PaymentMu, PaymentSigma float64
	// AccuracyMean/AccuracyStd shape specialty accuracy (truncated normal in
	// [0.5, 0.99]); off-specialty accuracy is drawn near 0.5.
	AccuracyMean, AccuracyStd float64
	// InterestSpecialty is the mean interest in a worker's own specialties;
	// off-specialty interest is uniform in [0, 0.3].
	InterestSpecialty float64
	// DifficultyMax caps task difficulty (uniform in [0, DifficultyMax]).
	DifficultyMax float64
	// ReservationFrac scales reservation wages relative to the median
	// payment: wage ~ Uniform(0, ReservationFrac · exp(PaymentMu)).
	ReservationFrac float64
}

// Defaults returns cfg with every zero field replaced by the library
// default.  The defaults describe a balanced mid-size market used by the
// quickstart example and most unit tests.
func (cfg Config) Defaults() Config {
	def := Config{
		Name:              "synthetic",
		NumWorkers:        100,
		NumTasks:          100,
		NumCategories:     10,
		CategorySkew:      0,
		MinSpecialties:    1,
		MaxSpecialties:    3,
		MinCapacity:       1,
		MaxCapacity:       4,
		MinReplication:    1,
		MaxReplication:    3,
		PaymentMu:         2.0, // median payment e² ≈ 7.4
		PaymentSigma:      0.6,
		AccuracyMean:      0.8,
		AccuracyStd:       0.1,
		InterestSpecialty: 0.7,
		DifficultyMax:     0.6,
		ReservationFrac:   0.5,
	}
	if cfg.Name != "" {
		def.Name = cfg.Name
	}
	if cfg.NumWorkers > 0 {
		def.NumWorkers = cfg.NumWorkers
	}
	if cfg.NumTasks > 0 {
		def.NumTasks = cfg.NumTasks
	}
	if cfg.NumCategories > 0 {
		def.NumCategories = cfg.NumCategories
	}
	if cfg.CategorySkew != 0 {
		def.CategorySkew = cfg.CategorySkew
	}
	def.WorkerSkew = cfg.WorkerSkew
	if cfg.MinSpecialties > 0 {
		def.MinSpecialties = cfg.MinSpecialties
	}
	if cfg.MaxSpecialties > 0 {
		def.MaxSpecialties = cfg.MaxSpecialties
	}
	if cfg.MinCapacity > 0 {
		def.MinCapacity = cfg.MinCapacity
	}
	if cfg.MaxCapacity > 0 {
		def.MaxCapacity = cfg.MaxCapacity
	}
	if cfg.MinReplication > 0 {
		def.MinReplication = cfg.MinReplication
	}
	if cfg.MaxReplication > 0 {
		def.MaxReplication = cfg.MaxReplication
	}
	if cfg.PaymentMu != 0 {
		def.PaymentMu = cfg.PaymentMu
	}
	if cfg.PaymentSigma != 0 {
		def.PaymentSigma = cfg.PaymentSigma
	}
	if cfg.AccuracyMean != 0 {
		def.AccuracyMean = cfg.AccuracyMean
	}
	if cfg.AccuracyStd != 0 {
		def.AccuracyStd = cfg.AccuracyStd
	}
	if cfg.InterestSpecialty != 0 {
		def.InterestSpecialty = cfg.InterestSpecialty
	}
	if cfg.DifficultyMax != 0 {
		def.DifficultyMax = cfg.DifficultyMax
	}
	if cfg.ReservationFrac != 0 {
		def.ReservationFrac = cfg.ReservationFrac
	}
	return def
}

// validate rejects configurations the generator cannot honour.
func (cfg Config) validate() error {
	switch {
	case cfg.NumCategories <= 0:
		return fmt.Errorf("market: NumCategories = %d", cfg.NumCategories)
	case cfg.MinSpecialties <= 0 || cfg.MaxSpecialties < cfg.MinSpecialties:
		return fmt.Errorf("market: specialty range [%d,%d]", cfg.MinSpecialties, cfg.MaxSpecialties)
	case cfg.MaxSpecialties > cfg.NumCategories:
		return fmt.Errorf("market: MaxSpecialties %d exceeds categories %d", cfg.MaxSpecialties, cfg.NumCategories)
	case cfg.MinCapacity <= 0 || cfg.MaxCapacity < cfg.MinCapacity:
		return fmt.Errorf("market: capacity range [%d,%d]", cfg.MinCapacity, cfg.MaxCapacity)
	case cfg.MinReplication <= 0 || cfg.MaxReplication < cfg.MinReplication:
		return fmt.Errorf("market: replication range [%d,%d]", cfg.MinReplication, cfg.MaxReplication)
	case cfg.CategorySkew < 0:
		return fmt.Errorf("market: negative CategorySkew %v", cfg.CategorySkew)
	case cfg.WorkerSkew != nil && *cfg.WorkerSkew < 0:
		return fmt.Errorf("market: negative WorkerSkew %v", *cfg.WorkerSkew)
	case cfg.DifficultyMax < 0 || cfg.DifficultyMax > 1:
		return fmt.Errorf("market: DifficultyMax %v outside [0,1]", cfg.DifficultyMax)
	}
	return nil
}

// Generate builds a synthetic market instance from cfg (after Defaults) and
// the seed.  The same (cfg, seed) pair always yields the identical instance.
func Generate(cfg Config, seed uint64) (*Instance, error) {
	cfg = cfg.Defaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	r := stats.NewRNG(seed)
	zipf := stats.NewZipf(cfg.NumCategories, cfg.CategorySkew)
	workerZipf := zipf
	if cfg.WorkerSkew != nil {
		workerZipf = stats.NewZipf(cfg.NumCategories, *cfg.WorkerSkew)
	}

	in := &Instance{
		Name:          cfg.Name,
		NumCategories: cfg.NumCategories,
		Workers:       make([]Worker, cfg.NumWorkers),
		Tasks:         make([]Task, cfg.NumTasks),
	}

	for i := range in.Workers {
		w := &in.Workers[i]
		w.ID = i
		w.Capacity = r.IntRange(cfg.MinCapacity, cfg.MaxCapacity)
		w.Accuracy = make([]float64, cfg.NumCategories)
		w.Interest = make([]float64, cfg.NumCategories)
		// By default workers gravitate to popular categories too (supply
		// follows demand); WorkerSkew decouples the two sides.
		nSpec := r.IntRange(cfg.MinSpecialties, cfg.MaxSpecialties)
		w.Specialties = sampleDistinct(r, workerZipf, nSpec, cfg.NumCategories)
		for c := 0; c < cfg.NumCategories; c++ {
			w.Accuracy[c] = r.TruncNormal(0.55, 0.03, 0.5, 0.65)
			w.Interest[c] = r.Float64Range(0, 0.3)
		}
		for _, c := range w.Specialties {
			w.Accuracy[c] = r.TruncNormal(cfg.AccuracyMean, cfg.AccuracyStd, 0.5, 0.99)
			w.Interest[c] = r.TruncNormal(cfg.InterestSpecialty, 0.15, 0, 1)
		}
		// Reservation wages scale with the median payment exp(PaymentMu).
		w.ReservationWage = r.Float64Range(0, cfg.ReservationFrac*math.Exp(cfg.PaymentMu))
	}

	fillTasks(in.Tasks, cfg, zipf, r)
	for j := range in.Tasks {
		if in.Tasks[j].Payment > in.MaxPayment {
			in.MaxPayment = in.Tasks[j].Payment
		}
	}
	return in, nil
}

// fillTasks populates ts in place from the config's task distributions.
func fillTasks(ts []Task, cfg Config, zipf *stats.Zipf, r *stats.RNG) {
	for j := range ts {
		t := &ts[j]
		t.ID = j
		t.Category = zipf.Sample(r)
		t.Replication = r.IntRange(cfg.MinReplication, cfg.MaxReplication)
		t.Payment = r.LogNormal(cfg.PaymentMu, cfg.PaymentSigma)
		t.Difficulty = r.Float64Range(0, cfg.DifficultyMax)
	}
}

// ResampleTasks returns a copy of in that keeps the worker population but
// replaces the task set with a fresh draw from cfg's task distributions.
// The dynamics simulator uses it to model task churn: workers persist
// across rounds while each round brings a new batch of similar tasks.
// cfg's category universe must match the instance's.
func ResampleTasks(in *Instance, cfg Config, numTasks int, seed uint64) (*Instance, error) {
	cfg = cfg.Defaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.NumCategories != in.NumCategories {
		return nil, fmt.Errorf("market: ResampleTasks category mismatch: cfg %d vs instance %d",
			cfg.NumCategories, in.NumCategories)
	}
	if numTasks < 0 {
		return nil, fmt.Errorf("market: negative task count %d", numTasks)
	}
	r := stats.NewRNG(seed)
	zipf := stats.NewZipf(cfg.NumCategories, cfg.CategorySkew)
	out := &Instance{
		Name:          in.Name,
		NumCategories: in.NumCategories,
		Workers:       in.Workers, // shared: workers persist across rounds
		Tasks:         make([]Task, numTasks),
	}
	fillTasks(out.Tasks, cfg, zipf, r)
	for j := range out.Tasks {
		if out.Tasks[j].Payment > out.MaxPayment {
			out.MaxPayment = out.Tasks[j].Payment
		}
	}
	return out, nil
}

// MustGenerate is Generate that panics on configuration errors; for use in
// examples and benchmarks where the config is a literal.
func MustGenerate(cfg Config, seed uint64) *Instance {
	in, err := Generate(cfg, seed)
	if err != nil {
		panic(err)
	}
	return in
}

// sampleDistinct draws n distinct categories, preferring the Zipf sampler
// but falling back to uniform fill if rejection stalls on small universes.
func sampleDistinct(r *stats.RNG, z *stats.Zipf, n, universe int) []int {
	chosen := make([]int, 0, n)
	seen := make(map[int]bool, n)
	for attempts := 0; len(chosen) < n && attempts < 20*n; attempts++ {
		c := z.Sample(r)
		if !seen[c] {
			seen[c] = true
			chosen = append(chosen, c)
		}
	}
	for c := 0; len(chosen) < n && c < universe; c++ {
		if !seen[c] {
			seen[c] = true
			chosen = append(chosen, c)
		}
	}
	return chosen
}
