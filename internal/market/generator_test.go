package market

import (
	"testing"
	"testing/quick"
)

func TestGenerateValidInstances(t *testing.T) {
	for _, cfg := range []Config{
		{},
		UniformConfig(50, 80),
		ZipfConfig(50, 80, 1.2),
		FreelanceTraceConfig(60, 40),
		MicrotaskTraceConfig(40, 60),
	} {
		in, err := Generate(cfg, 1)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		if err := in.Validate(); err != nil {
			t.Fatalf("%s: generated invalid instance: %v", in.Name, err)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := FreelanceTraceConfig(30, 30)
	a := MustGenerate(cfg, 42)
	b := MustGenerate(cfg, 42)
	if a.NumWorkers() != b.NumWorkers() || a.NumTasks() != b.NumTasks() {
		t.Fatal("sizes differ")
	}
	for i := range a.Workers {
		if a.Workers[i].Capacity != b.Workers[i].Capacity ||
			a.Workers[i].ReservationWage != b.Workers[i].ReservationWage {
			t.Fatalf("worker %d differs between same-seed runs", i)
		}
		for c := range a.Workers[i].Accuracy {
			if a.Workers[i].Accuracy[c] != b.Workers[i].Accuracy[c] {
				t.Fatalf("worker %d accuracy differs", i)
			}
		}
	}
	for j := range a.Tasks {
		if a.Tasks[j] != b.Tasks[j] {
			t.Fatalf("task %d differs between same-seed runs", j)
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	cfg := UniformConfig(20, 20)
	a := MustGenerate(cfg, 1)
	b := MustGenerate(cfg, 2)
	same := true
	for j := range a.Tasks {
		if a.Tasks[j].Payment != b.Tasks[j].Payment {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical payments")
	}
}

func TestGenerateRespectsSizes(t *testing.T) {
	in := MustGenerate(Config{NumWorkers: 7, NumTasks: 13}, 3)
	if in.NumWorkers() != 7 || in.NumTasks() != 13 {
		t.Fatalf("sizes %d, %d", in.NumWorkers(), in.NumTasks())
	}
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	bad := []Config{
		{MinSpecialties: 5, MaxSpecialties: 2},
		{NumCategories: 3, MaxSpecialties: 9},
		{MinCapacity: 4, MaxCapacity: 2},
		{MinReplication: 3, MaxReplication: 1},
		{CategorySkew: -1},
		{DifficultyMax: 1.5},
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg, 1); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestSkewConcentratesTaskCategories(t *testing.T) {
	flat := MustGenerate(ZipfConfig(10, 5000, 0.01), 9)
	steep := MustGenerate(ZipfConfig(10, 5000, 1.5), 9)
	countTop := func(in *Instance) int {
		counts := make([]int, in.NumCategories)
		for _, task := range in.Tasks {
			counts[task.Category]++
		}
		best := 0
		for _, c := range counts {
			if c > best {
				best = c
			}
		}
		return best
	}
	if countTop(steep) <= countTop(flat) {
		t.Fatalf("steep skew top category %d <= flat %d", countTop(steep), countTop(flat))
	}
}

func TestSpecialtyAccuracyExceedsOffSpecialty(t *testing.T) {
	in := MustGenerate(Config{NumWorkers: 200, NumTasks: 1}, 4)
	var specSum, offSum float64
	var specN, offN int
	for i := range in.Workers {
		w := &in.Workers[i]
		for c := 0; c < in.NumCategories; c++ {
			if w.AcceptsCategory(c) {
				specSum += w.Accuracy[c]
				specN++
			} else {
				offSum += w.Accuracy[c]
				offN++
			}
		}
	}
	if specSum/float64(specN) <= offSum/float64(offN)+0.1 {
		t.Fatalf("specialty accuracy %.3f not clearly above off-specialty %.3f",
			specSum/float64(specN), offSum/float64(offN))
	}
}

func TestTraceShapesDiffer(t *testing.T) {
	fl := FreelanceTrace(100, 100, 5)
	mt := MicrotaskTrace(100, 100, 5)
	if fl.ComputeStats().MeanPayment <= mt.ComputeStats().MeanPayment {
		t.Fatal("freelance payments should exceed microtask payments")
	}
	if fl.TotalSlots() >= mt.TotalSlots() {
		t.Fatal("microtask replication should create more slots")
	}
}

// Property: every generated instance validates, across random seeds and
// moderate random sizes.
func TestQuickGenerateAlwaysValid(t *testing.T) {
	f := func(seed uint64, nw, nt uint8) bool {
		cfg := Config{NumWorkers: int(nw%50) + 1, NumTasks: int(nt%50) + 1}
		in, err := Generate(cfg, seed)
		if err != nil {
			return false
		}
		return in.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
