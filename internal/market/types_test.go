package market

import (
	"strings"
	"testing"
)

// tinyInstance builds a small hand-constructed valid instance used across
// the package tests.
func tinyInstance() *Instance {
	return &Instance{
		Name:          "tiny",
		NumCategories: 2,
		Workers: []Worker{
			{
				ID: 0, Capacity: 2,
				Accuracy:        []float64{0.9, 0.6},
				Interest:        []float64{0.8, 0.1},
				Specialties:     []int{0},
				ReservationWage: 1,
			},
			{
				ID: 1, Capacity: 1,
				Accuracy:        []float64{0.55, 0.85},
				Interest:        []float64{0.2, 0.9},
				Specialties:     []int{1},
				ReservationWage: 2,
			},
		},
		Tasks: []Task{
			{ID: 0, Category: 0, Replication: 1, Payment: 5, Difficulty: 0.2},
			{ID: 1, Category: 1, Replication: 2, Payment: 3, Difficulty: 0.4},
		},
		MaxPayment: 5,
	}
}

func TestTinyInstanceValid(t *testing.T) {
	if err := tinyInstance().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInstanceCounters(t *testing.T) {
	in := tinyInstance()
	if in.NumWorkers() != 2 || in.NumTasks() != 2 {
		t.Fatal("counts wrong")
	}
	if in.TotalSlots() != 3 {
		t.Fatalf("slots = %d", in.TotalSlots())
	}
	if in.TotalCapacity() != 3 {
		t.Fatalf("capacity = %d", in.TotalCapacity())
	}
	// Worker 0 accepts cat 0 (1 task), worker 1 accepts cat 1 (1 task).
	if in.NumEdges() != 2 {
		t.Fatalf("edges = %d", in.NumEdges())
	}
}

func TestAcceptsCategory(t *testing.T) {
	in := tinyInstance()
	if !in.Workers[0].AcceptsCategory(0) || in.Workers[0].AcceptsCategory(1) {
		t.Fatal("specialty check wrong")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*Instance)
		want string
	}{
		{"no categories", func(in *Instance) { in.NumCategories = 0 }, "category"},
		{"non-dense worker id", func(in *Instance) { in.Workers[1].ID = 5 }, "ID"},
		{"negative capacity", func(in *Instance) { in.Workers[0].Capacity = -1 }, "capacity"},
		{"short accuracy", func(in *Instance) { in.Workers[0].Accuracy = in.Workers[0].Accuracy[:1] }, "length"},
		{"accuracy below half", func(in *Instance) { in.Workers[0].Accuracy[0] = 0.4 }, "accuracy"},
		{"accuracy at one", func(in *Instance) { in.Workers[0].Accuracy[0] = 1.0 }, "accuracy"},
		{"interest negative", func(in *Instance) { in.Workers[0].Interest[0] = -0.1 }, "interest"},
		{"no specialties", func(in *Instance) { in.Workers[0].Specialties = nil }, "specialties"},
		{"specialty out of range", func(in *Instance) { in.Workers[0].Specialties = []int{9} }, "specialty"},
		{"duplicate specialty", func(in *Instance) { in.Workers[0].Specialties = []int{0, 0} }, "duplicate"},
		{"negative wage", func(in *Instance) { in.Workers[0].ReservationWage = -1 }, "wage"},
		{"non-dense task id", func(in *Instance) { in.Tasks[0].ID = 3 }, "ID"},
		{"bad category", func(in *Instance) { in.Tasks[0].Category = 7 }, "category"},
		{"zero replication", func(in *Instance) { in.Tasks[0].Replication = 0 }, "replication"},
		{"negative payment", func(in *Instance) { in.Tasks[0].Payment = -1 }, "payment"},
		{"difficulty above one", func(in *Instance) { in.Tasks[0].Difficulty = 1.5 }, "difficulty"},
		{"stale max payment", func(in *Instance) { in.MaxPayment = 1 }, "MaxPayment"},
	}
	for _, m := range mutations {
		in := tinyInstance()
		m.mut(in)
		err := in.Validate()
		if err == nil {
			t.Errorf("%s: validation passed", m.name)
			continue
		}
		if !strings.Contains(err.Error(), m.want) {
			t.Errorf("%s: error %q does not mention %q", m.name, err, m.want)
		}
	}
}

func TestComputeStats(t *testing.T) {
	in := tinyInstance()
	s := in.ComputeStats()
	if s.Workers != 2 || s.Tasks != 2 || s.Edges != 2 || s.TotalSlots != 3 {
		t.Fatalf("stats = %+v", s)
	}
	if s.MeanPayment != 4 {
		t.Fatalf("mean payment = %v", s.MeanPayment)
	}
	// Specialty accuracies are 0.9 and 0.85 → mean 0.875.
	if s.MeanAccuracy != 0.875 {
		t.Fatalf("mean accuracy = %v", s.MeanAccuracy)
	}
}

func TestComputeStatsEmpty(t *testing.T) {
	in := &Instance{Name: "empty", NumCategories: 1}
	s := in.ComputeStats()
	if s.Workers != 0 || s.Tasks != 0 || s.MeanPayment != 0 || s.MeanAccuracy != 0 {
		t.Fatalf("stats = %+v", s)
	}
}
