// Package market defines the bipartite labor-market domain model — workers,
// tasks, categories — and the workload generators that stand in for the
// paper's platform traces.
//
// A market Instance is a static snapshot of one assignment round: the set of
// workers currently online (with capacities, skill and interest profiles)
// and the set of open tasks (with categories, replication requirements,
// payments and difficulties).  The benefit layer turns an Instance into a
// weighted bipartite graph; the core layer assigns it; the dynamics layer
// strings many rounds together.
package market

import (
	"errors"
	"fmt"
)

// Worker is one supply-side participant of the labor market.
type Worker struct {
	// ID is the worker's dense index in the instance (0-based).
	ID int `json:"id"`
	// Capacity is the maximum number of tasks the worker accepts per round.
	Capacity int `json:"capacity"`
	// Accuracy[c] is the probability the worker answers a category-c task of
	// zero difficulty correctly; always in [0.5, 1) — a worker is never worse
	// than a coin flip (they could invert their answers otherwise).
	Accuracy []float64 `json:"accuracy"`
	// Interest[c] in [0,1] measures how much the worker enjoys category c;
	// it feeds the worker-side benefit.
	Interest []float64 `json:"interest"`
	// Specialties lists the categories the worker accepts tasks from.  The
	// bipartite structure the paper's title refers to comes from here: a
	// worker-task edge exists only if the task's category is a specialty of
	// the worker.
	Specialties []int `json:"specialties"`
	// ReservationWage is the payment below which a task yields zero monetary
	// utility for this worker.
	ReservationWage float64 `json:"reservation_wage"`
}

// AcceptsCategory reports whether category c is one of the worker's
// specialties.
func (w *Worker) AcceptsCategory(c int) bool {
	for _, s := range w.Specialties {
		if s == c {
			return true
		}
	}
	return false
}

// Task is one demand-side participant: a unit of work posted by a requester.
type Task struct {
	// ID is the task's dense index in the instance (0-based).
	ID int `json:"id"`
	// Category identifies the task's domain (image labelling, translation,
	// web development, …).
	Category int `json:"category"`
	// Replication is how many distinct workers the requester wants on the
	// task (k_t in DESIGN.md); answers are aggregated afterwards.
	Replication int `json:"replication"`
	// Payment is what each assigned worker is paid for an answer.
	Payment float64 `json:"payment"`
	// Difficulty in [0,1] discounts worker accuracy: a difficulty-1 task
	// reduces every worker to a coin flip.
	Difficulty float64 `json:"difficulty"`
}

// Instance is a snapshot of the market for one assignment round.
type Instance struct {
	// Name labels the workload for reports ("freelance", "microtask", …).
	Name string `json:"name"`
	// NumCategories is the size of the category universe; all per-category
	// slices have this length.
	NumCategories int `json:"num_categories"`
	// Workers and Tasks are the two sides of the bipartite market.
	Workers []Worker `json:"workers"`
	Tasks   []Task   `json:"tasks"`
	// MaxPayment caches the largest task payment, used to normalise monetary
	// utility into [0,1].
	MaxPayment float64 `json:"max_payment"`
}

// NumWorkers returns the number of workers.
func (in *Instance) NumWorkers() int { return len(in.Workers) }

// NumTasks returns the number of tasks.
func (in *Instance) NumTasks() int { return len(in.Tasks) }

// TotalSlots returns the total demand Σ k_t.
func (in *Instance) TotalSlots() int {
	s := 0
	for _, t := range in.Tasks {
		s += t.Replication
	}
	return s
}

// TotalCapacity returns the total supply Σ c_w.
func (in *Instance) TotalCapacity() int {
	s := 0
	for _, w := range in.Workers {
		s += w.Capacity
	}
	return s
}

// NumEdges counts eligible worker-task pairs (specialty matches).
func (in *Instance) NumEdges() int {
	// Bucket tasks by category once, then sum per-worker.
	perCat := make([]int, in.NumCategories)
	for _, t := range in.Tasks {
		perCat[t.Category]++
	}
	n := 0
	for i := range in.Workers {
		for _, c := range in.Workers[i].Specialties {
			n += perCat[c]
		}
	}
	return n
}

// Validate checks every structural invariant of the instance and returns a
// descriptive error for the first violation.  Generators are tested to
// always produce valid instances; external JSON inputs are validated on
// load.
func (in *Instance) Validate() error {
	if in.NumCategories <= 0 {
		return errors.New("market: instance needs at least one category")
	}
	maxPay := 0.0
	for i := range in.Workers {
		w := &in.Workers[i]
		if w.ID != i {
			return fmt.Errorf("market: worker %d has ID %d (must be dense)", i, w.ID)
		}
		if w.Capacity < 0 {
			return fmt.Errorf("market: worker %d has negative capacity", i)
		}
		if len(w.Accuracy) != in.NumCategories || len(w.Interest) != in.NumCategories {
			return fmt.Errorf("market: worker %d profile length mismatch", i)
		}
		for c, a := range w.Accuracy {
			if a < 0.5 || a >= 1 {
				return fmt.Errorf("market: worker %d accuracy[%d]=%v outside [0.5,1)", i, c, a)
			}
		}
		for c, iv := range w.Interest {
			if iv < 0 || iv > 1 {
				return fmt.Errorf("market: worker %d interest[%d]=%v outside [0,1]", i, c, iv)
			}
		}
		if len(w.Specialties) == 0 {
			return fmt.Errorf("market: worker %d has no specialties", i)
		}
		seen := map[int]bool{}
		for _, s := range w.Specialties {
			if s < 0 || s >= in.NumCategories {
				return fmt.Errorf("market: worker %d specialty %d out of range", i, s)
			}
			if seen[s] {
				return fmt.Errorf("market: worker %d has duplicate specialty %d", i, s)
			}
			seen[s] = true
		}
		if w.ReservationWage < 0 {
			return fmt.Errorf("market: worker %d has negative reservation wage", i)
		}
	}
	for j := range in.Tasks {
		t := &in.Tasks[j]
		if t.ID != j {
			return fmt.Errorf("market: task %d has ID %d (must be dense)", j, t.ID)
		}
		if t.Category < 0 || t.Category >= in.NumCategories {
			return fmt.Errorf("market: task %d category %d out of range", j, t.Category)
		}
		if t.Replication <= 0 {
			return fmt.Errorf("market: task %d has non-positive replication", j)
		}
		if t.Payment < 0 {
			return fmt.Errorf("market: task %d has negative payment", j)
		}
		if t.Difficulty < 0 || t.Difficulty > 1 {
			return fmt.Errorf("market: task %d difficulty %v outside [0,1]", j, t.Difficulty)
		}
		if t.Payment > maxPay {
			maxPay = t.Payment
		}
	}
	if len(in.Tasks) > 0 && in.MaxPayment < maxPay {
		return fmt.Errorf("market: MaxPayment %v below actual max %v", in.MaxPayment, maxPay)
	}
	return nil
}

// Stats summarises the instance for the dataset-statistics table (R-Tab1).
type Stats struct {
	Name          string
	Workers       int
	Tasks         int
	Categories    int
	Edges         int
	TotalSlots    int
	TotalCapacity int
	MeanPayment   float64
	MeanAccuracy  float64
}

// ComputeStats derives summary statistics of the instance.
func (in *Instance) ComputeStats() Stats {
	s := Stats{
		Name:          in.Name,
		Workers:       in.NumWorkers(),
		Tasks:         in.NumTasks(),
		Categories:    in.NumCategories,
		Edges:         in.NumEdges(),
		TotalSlots:    in.TotalSlots(),
		TotalCapacity: in.TotalCapacity(),
	}
	if len(in.Tasks) > 0 {
		sum := 0.0
		for _, t := range in.Tasks {
			sum += t.Payment
		}
		s.MeanPayment = sum / float64(len(in.Tasks))
	}
	if len(in.Workers) > 0 && in.NumCategories > 0 {
		sum, n := 0.0, 0
		for i := range in.Workers {
			for _, c := range in.Workers[i].Specialties {
				sum += in.Workers[i].Accuracy[c]
				n++
			}
		}
		if n > 0 {
			s.MeanAccuracy = sum / float64(n)
		}
	}
	return s
}
