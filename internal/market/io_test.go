package market

import (
	"bytes"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	orig := MustGenerate(FreelanceTraceConfig(20, 15), 11)
	var buf bytes.Buffer
	if err := orig.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != orig.Name || back.NumWorkers() != orig.NumWorkers() ||
		back.NumTasks() != orig.NumTasks() || back.NumCategories != orig.NumCategories {
		t.Fatal("round trip changed shape")
	}
	for i := range orig.Workers {
		if orig.Workers[i].ReservationWage != back.Workers[i].ReservationWage {
			t.Fatalf("worker %d wage changed", i)
		}
	}
	for j := range orig.Tasks {
		if orig.Tasks[j] != back.Tasks[j] {
			t.Fatalf("task %d changed", j)
		}
	}
}

func TestReadJSONRejectsInvalid(t *testing.T) {
	// Structurally valid JSON encoding an invalid instance (no categories).
	bad := `{"name":"x","num_categories":0,"workers":[],"tasks":[],"max_payment":0}`
	if _, err := ReadJSON(strings.NewReader(bad)); err == nil {
		t.Fatal("invalid instance accepted")
	}
	if _, err := ReadJSON(strings.NewReader("{nope")); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}

func TestCSVOutputs(t *testing.T) {
	in := tinyInstance()
	var tasks, workers bytes.Buffer
	if err := in.WriteCSVTasks(&tasks); err != nil {
		t.Fatal(err)
	}
	if err := in.WriteCSVWorkers(&workers); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(tasks.String(), "\n"); got != 3 { // header + 2 rows
		t.Fatalf("task CSV lines = %d", got)
	}
	if got := strings.Count(workers.String(), "\n"); got != 3 {
		t.Fatalf("worker CSV lines = %d", got)
	}
	if !strings.HasPrefix(tasks.String(), "id,category") {
		t.Fatal("task CSV missing header")
	}
}
