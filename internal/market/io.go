package market

import (
	"encoding/json"
	"fmt"
	"io"
)

// WriteJSON serialises the instance to w as indented JSON.  Instances are
// snapshots, so a flat document is the natural interchange format for the
// cmd/mbagen tool and for replaying a market in another system.
func (in *Instance) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(in); err != nil {
		return fmt.Errorf("market: encoding instance: %w", err)
	}
	return nil
}

// ReadJSON parses and validates an instance from r.
func ReadJSON(r io.Reader) (*Instance, error) {
	var in Instance
	dec := json.NewDecoder(r)
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("market: decoding instance: %w", err)
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	return &in, nil
}

// WriteCSVTasks emits the task table as CSV (header + one row per task),
// convenient for spreadsheet inspection of generated workloads.
func (in *Instance) WriteCSVTasks(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "id,category,replication,payment,difficulty"); err != nil {
		return err
	}
	for _, t := range in.Tasks {
		if _, err := fmt.Fprintf(w, "%d,%d,%d,%.4f,%.4f\n",
			t.ID, t.Category, t.Replication, t.Payment, t.Difficulty); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSVWorkers emits the worker table as CSV.  Per-category profiles are
// collapsed to the specialty averages to keep rows readable.
func (in *Instance) WriteCSVWorkers(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "id,capacity,num_specialties,mean_spec_accuracy,mean_spec_interest,reservation_wage"); err != nil {
		return err
	}
	for i := range in.Workers {
		wk := &in.Workers[i]
		var acc, intr float64
		for _, c := range wk.Specialties {
			acc += wk.Accuracy[c]
			intr += wk.Interest[c]
		}
		n := float64(len(wk.Specialties))
		if _, err := fmt.Fprintf(w, "%d,%d,%d,%.4f,%.4f,%.4f\n",
			wk.ID, wk.Capacity, len(wk.Specialties), acc/n, intr/n, wk.ReservationWage); err != nil {
			return err
		}
	}
	return nil
}
