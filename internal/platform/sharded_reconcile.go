package platform

import "repro/internal/core"

// reconcileShards resolves cross-shard worker over-subscription in a round
// in flight, reusing core.ShardedGreedy's proven pattern — optimistic
// shards, keep-heaviest, refill — via the same core.ReconcileTake
// primitive.  It mutates each shard's sel/pairs in place and returns the
// global drop/refill counts (also recorded per shard on out.info).
//
// Step 1 (detect): a worker is contested when its picks summed across
// shards exceed its capacity.  Only spanning workers can be — each shard's
// solver already respects capacities locally — and tasks never are, since
// a task lives in exactly one shard.
//
// Step 2 (keep-heaviest): all of a contested worker's picks compete in a
// dense space of contested workers × touched tasks; capW is the worker's
// true capacity, capT is the number of contested picks on the task (the
// only slots up for grabs — picks of uncontested workers keep theirs).
// ReconcileTake keeps the heaviest feasible subset by mutual benefit.
//
// Step 3 (refill): dropped picks free task slots.  Candidates are the
// owning shard's remaining edges into each freed task, excluding workers
// already assigned that task and workers with no global residual capacity
// (capacity minus pairs held after step 2).  A second ReconcileTake fills
// greedily by weight.
//
// The pass is deterministic: picks and candidates are collected in (shard,
// position) order, dense indices are assigned first-seen, and ReconcileTake
// breaks weight ties by ascending Ref.
func reconcileShards(outs []*shardSolve) (dropped, refilled int) {
	// Step 1: per-worker pick totals across shards.
	type wtotal struct{ cap, picks int }
	totals := map[int]*wtotal{}
	for _, out := range outs {
		if out.solveErr != nil || len(out.sel) == 0 {
			continue
		}
		for _, ei := range out.sel {
			e := &out.p.Edges[ei]
			wid := out.workerIDs[e.W]
			tot := totals[wid]
			if tot == nil {
				tot = &wtotal{cap: out.in.Workers[e.W].Capacity}
				totals[wid] = tot
			}
			tot.picks++
		}
	}
	anyContested := false
	for _, tot := range totals {
		if tot.picks > tot.cap {
			anyContested = true
			break
		}
	}
	if !anyContested {
		return 0, 0
	}

	// Step 2: dense reconcile space over the contested picks.
	wIndex := map[int]int32{} // worker ID → dense contested-worker index
	var capW []int
	tIndex := map[int]int32{} // task ID → dense touched-task index
	var capT []int
	type taskRef struct {
		shard  int
		denseT int // task index inside outs[shard]'s snapshot
		tid    int
	}
	var touched []taskRef
	var picks []core.PickEdge
	for k, out := range outs {
		if out.solveErr != nil || len(out.sel) == 0 {
			continue
		}
		for _, ei := range out.sel {
			e := &out.p.Edges[ei]
			wid := out.workerIDs[e.W]
			tot := totals[wid]
			if tot.picks <= tot.cap {
				continue
			}
			wi, ok := wIndex[wid]
			if !ok {
				wi = int32(len(capW))
				wIndex[wid] = wi
				capW = append(capW, tot.cap)
			}
			tid := out.taskIDs[e.T]
			ti, ok := tIndex[tid]
			if !ok {
				ti = int32(len(capT))
				tIndex[tid] = ti
				capT = append(capT, 0)
				touched = append(touched, taskRef{shard: k, denseT: e.T, tid: tid})
			}
			capT[ti]++
			// Ref is the pick's collection index: it both makes the take
			// order strict and lets the apply loop below walk the keep
			// flags with one cursor in the same (shard, position) order.
			picks = append(picks, core.PickEdge{W: wi, T: ti, Weight: e.M, Ref: int32(len(picks))})
		}
	}
	kept := core.ReconcileTake(picks, capW, capT)
	dropped = len(picks) - kept
	keep := make([]bool, len(picks))
	for i := 0; i < kept; i++ {
		keep[picks[i].Ref] = true
	}

	// Apply the drops in (shard, position) order — the same order metas
	// were collected in, so one cursor suffices — while accumulating each
	// worker's surviving pair count and, for freed tasks, the worker set
	// already assigned (both feed the refill).
	freed := map[int]bool{} // task IDs with freed slots
	for ti := range touched {
		if capT[ti] > 0 {
			freed[touched[ti].tid] = true
		}
	}
	held := map[int]int{}             // worker ID → surviving pairs
	onFreed := map[int]map[int]bool{} // freed task ID → assigned workers
	cursor := 0                       // index into metas/keep
	for _, out := range outs {
		if out.solveErr != nil || len(out.sel) == 0 {
			continue
		}
		newSel := out.sel[:0]
		newPairs := out.pairs[:0]
		for pos, ei := range out.sel {
			e := &out.p.Edges[ei]
			wid := out.workerIDs[e.W]
			tot := totals[wid]
			if tot.picks > tot.cap {
				won := keep[cursor]
				cursor++
				if !won {
					out.info.ReconcileDropped++
					continue
				}
			}
			newSel = append(newSel, ei)
			newPairs = append(newPairs, out.pairs[pos])
			held[wid]++
			if tid := out.taskIDs[e.T]; freed[tid] {
				set := onFreed[tid]
				if set == nil {
					set = map[int]bool{}
					onFreed[tid] = set
				}
				set[wid] = true
			}
		}
		out.sel, out.pairs = newSel, newPairs
	}

	// Step 3: refill freed slots from the owning shards' remaining edges.
	rIndex := map[int]int32{} // worker ID → refill dense index (-1: no room)
	var rcapW []int
	var fcapT []int
	type candMeta struct {
		shard int
		ei    int32
	}
	var cmetas []candMeta
	var cands []core.PickEdge
	for ti := range touched {
		if capT[ti] == 0 {
			continue
		}
		tr := touched[ti]
		out := outs[tr.shard]
		fi := int32(len(fcapT))
		fcapT = append(fcapT, capT[ti])
		for _, ei := range out.p.AdjT(tr.denseT) {
			e := &out.p.Edges[ei]
			wid := out.workerIDs[e.W]
			if onFreed[tr.tid][wid] {
				continue
			}
			ri, ok := rIndex[wid]
			if !ok {
				if avail := out.in.Workers[e.W].Capacity - held[wid]; avail > 0 {
					ri = int32(len(rcapW))
					rcapW = append(rcapW, avail)
				} else {
					ri = -1
				}
				rIndex[wid] = ri
			}
			if ri < 0 {
				continue
			}
			cands = append(cands, core.PickEdge{W: ri, T: fi, Weight: e.M, Ref: int32(len(cmetas))})
			cmetas = append(cmetas, candMeta{shard: tr.shard, ei: ei})
		}
	}
	refilled = core.ReconcileTake(cands, rcapW, fcapT)
	for i := 0; i < refilled; i++ {
		cm := cmetas[cands[i].Ref]
		out := outs[cm.shard]
		e := &out.p.Edges[cm.ei]
		out.sel = append(out.sel, int(cm.ei))
		out.pairs = append(out.pairs, AssignmentPair{
			WorkerID: out.workerIDs[e.W],
			TaskID:   out.taskIDs[e.T],
			Quality:  e.Q,
			Utility:  e.B,
			Mutual:   e.M,
		})
		out.info.ReconcileRefilled++
	}
	return dropped, refilled
}
