package platform

import (
	"net/http"
	"sync"
	"testing"
	"time"
)

// fakeClock is an injectable, manually advanced clock for admission tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTestAdmission(opts AdmissionOptions) (*Admission, *fakeClock) {
	clk := newFakeClock()
	a := NewAdmission(opts)
	if a != nil {
		a.now = clk.now
		// Rebase the buckets and signal onto the fake clock so the first
		// refill doesn't see a huge negative/positive delta.
		now := clk.now()
		for p := Priority(0); p < numPriorities; p++ {
			if a.global[p] != nil {
				a.global[p].last = now
			}
		}
		a.signalAt = now
	}
	return a, clk
}

func TestClassifyRequest(t *testing.T) {
	cases := []struct {
		method, path string
		want         Priority
		exempt       bool
	}{
		{http.MethodGet, "/v1/healthz", PriorityHigh, true},
		{http.MethodGet, "/v1/journal/stream", PriorityHigh, true},
		{http.MethodGet, "/v1/stats", PriorityHigh, false},
		{http.MethodGet, "/v1/snapshot", PriorityHigh, false},
		{http.MethodPost, "/v1/workers", PriorityMedium, false},
		{http.MethodDelete, "/v1/workers/3", PriorityMedium, false},
		{http.MethodPost, "/v1/tasks", PriorityMedium, false},
		{http.MethodPost, "/v1/batch", PriorityLow, false},
		{http.MethodPost, "/v1/rounds", PriorityLow, false},
		{http.MethodPost, "/v1/checkpoint", PriorityLow, false},
	}
	for _, c := range cases {
		p, exempt := classifyRequest(c.method, c.path)
		if p != c.want || exempt != c.exempt {
			t.Errorf("classify(%s %s) = (%v, %v), want (%v, %v)",
				c.method, c.path, p, exempt, c.want, c.exempt)
		}
	}
}

func TestTokenBucketRefill(t *testing.T) {
	now := time.Unix(0, 0)
	b := newTokenBucket(10, 1, now) // 10/s, burst 10
	for i := 0; i < 10; i++ {
		if ok, _ := b.take(now); !ok {
			t.Fatalf("take %d refused within burst", i)
		}
	}
	ok, wait := b.take(now)
	if ok {
		t.Fatal("11th take admitted with an empty bucket")
	}
	if wait <= 0 || wait > 150*time.Millisecond {
		t.Fatalf("refill wait %v, want ~100ms", wait)
	}
	// One token refills after 100ms at 10/s.
	if ok, _ := b.take(now.Add(110 * time.Millisecond)); !ok {
		t.Fatal("take refused after refill interval")
	}
}

func TestTokenBucketUnlimited(t *testing.T) {
	if b := newTokenBucket(0, 1, time.Unix(0, 0)); b != nil {
		t.Fatal("rate 0 should mean no bucket (unlimited)")
	}
}

func TestAIMDLimiterBackoffAndRecovery(t *testing.T) {
	opts := NewAdmissionOptions()
	opts.MinInflight, opts.MaxInflight = 2, 16
	opts.LatencyTarget = 10 * time.Millisecond
	l := newAIMDLimiter(opts)

	now := time.Unix(0, 0)
	// Slow observations walk the limit down multiplicatively to the floor.
	for i := 0; i < 50; i++ {
		if !l.acquire(time.Time{}, now, nil) {
			t.Fatal("acquire refused with open slots")
		}
		now = now.Add(opts.LatencyTarget * 2)
		l.releaseSlotAt(100*time.Millisecond, true, now)
	}
	limit, _, _ := l.snapshot()
	if limit != 2 {
		t.Fatalf("limit after sustained slowness = %v, want floor 2", limit)
	}
	// Fast observations grow it back additively.
	for i := 0; i < 500; i++ {
		if !l.acquire(time.Time{}, now, nil) {
			t.Fatal("acquire refused during recovery")
		}
		l.releaseSlotAt(time.Millisecond, true, now)
	}
	limit, _, _ = l.snapshot()
	if limit <= 2 {
		t.Fatalf("limit did not recover, still %v", limit)
	}
	if limit > float64(opts.MaxInflight) {
		t.Fatalf("limit %v exceeded ceiling %d", limit, opts.MaxInflight)
	}
}

func TestAIMDLimiterQueueHandoff(t *testing.T) {
	opts := NewAdmissionOptions()
	opts.MinInflight, opts.MaxInflight = 1, 1
	opts.MaxQueue = 4
	l := newAIMDLimiter(opts)
	now := time.Unix(0, 0)

	if !l.acquire(time.Time{}, now, nil) {
		t.Fatal("first acquire refused")
	}
	got := make(chan bool)
	go func() { got <- l.acquire(time.Time{}, now, nil) }()
	// Wait until the waiter is queued, then release: the slot must hand
	// over, not free-then-race.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, _, queued := l.snapshot(); queued == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	l.releaseSlotAt(time.Millisecond, true, now)
	if !<-got {
		t.Fatal("queued waiter was not granted the released slot")
	}
	_, inflight, _ := l.snapshot()
	if inflight != 1 {
		t.Fatalf("inflight after handoff = %d, want 1", inflight)
	}
	l.releaseSlotAt(time.Millisecond, true, now)
}

func TestAIMDLimiterDeadlineShed(t *testing.T) {
	opts := NewAdmissionOptions()
	opts.MinInflight, opts.MaxInflight = 1, 1
	opts.MaxQueue = 8
	opts.LatencyTarget = 50 * time.Millisecond
	l := newAIMDLimiter(opts)
	now := time.Unix(0, 0)
	l.ewmaLat = 50 * time.Millisecond

	if !l.acquire(time.Time{}, now, nil) {
		t.Fatal("first acquire refused")
	}
	// Estimated wait for the next request is ~50ms; a 1ms deadline cannot
	// be met and must shed instantly, without queueing.
	start := time.Now()
	if l.acquire(now.Add(time.Millisecond), now, nil) {
		t.Fatal("doomed request admitted")
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Fatalf("deadline shed took %v; must be immediate", elapsed)
	}
	if _, _, queued := l.snapshot(); queued != 0 {
		t.Fatalf("doomed request left %d queue entries", queued)
	}
}

func TestAIMDLimiterQueueBound(t *testing.T) {
	opts := NewAdmissionOptions()
	opts.MinInflight, opts.MaxInflight = 1, 1
	opts.MaxQueue = 0 // clamped? no: zero MaxQueue in limiter means no waiting room
	l := newAIMDLimiter(opts)
	now := time.Unix(0, 0)
	if !l.acquire(time.Time{}, now, nil) {
		t.Fatal("first acquire refused")
	}
	if l.acquire(time.Time{}, now, nil) {
		t.Fatal("second acquire admitted past a full (zero-length) queue")
	}
	l.releaseSlotAt(time.Millisecond, true, now)
}

func TestAdmissionDisabledAdmitsEverything(t *testing.T) {
	var a *Admission // nil = disabled
	dec := a.Admit(http.MethodPost, "/v1/workers", "", time.Time{}, nil)
	if !dec.OK {
		t.Fatal("nil admission shed a request")
	}
	dec.Release(time.Millisecond) // must be nil-safe
	if a.HealthSnapshot() != nil {
		t.Fatal("nil admission produced a health snapshot")
	}
	if a.Overloaded() {
		t.Fatal("nil admission reports overloaded")
	}
}

func TestAdmissionRateLimitAndRetryAfter(t *testing.T) {
	opts := NewAdmissionOptions()
	opts.RateMedium = 2 // burst 2
	a, _ := newTestAdmission(opts)

	for i := 0; i < 2; i++ {
		dec := a.Admit(http.MethodPost, "/v1/workers", "", time.Time{}, nil)
		if !dec.OK {
			t.Fatalf("request %d within burst shed", i)
		}
		dec.Release(time.Millisecond)
	}
	dec := a.Admit(http.MethodPost, "/v1/workers", "", time.Time{}, nil)
	if dec.OK {
		t.Fatal("request past burst admitted")
	}
	if dec.RetryAfter <= 0 {
		t.Fatal("shed decision missing Retry-After")
	}
	h := a.HealthSnapshot()
	if h.Admitted.Medium != 2 || h.Shed.Medium != 1 {
		t.Fatalf("counters admitted=%d shed=%d, want 2/1", h.Admitted.Medium, h.Shed.Medium)
	}
}

func TestAdmissionPerClientBuckets(t *testing.T) {
	opts := NewAdmissionOptions()
	opts.RateMedium = 1       // burst 1 per client
	opts.BrownoutShedRate = 2 // unreachable: isolate bucket behaviour from brownout
	a, _ := newTestAdmission(opts)

	if dec := a.Admit(http.MethodPost, "/v1/workers", "alice", time.Time{}, nil); !dec.OK {
		t.Fatal("alice's first request shed")
	}
	if dec := a.Admit(http.MethodPost, "/v1/workers", "alice", time.Time{}, nil); dec.OK {
		t.Fatal("alice's second request admitted past her bucket")
	}
	// A different client has its own bucket and is unaffected.
	if dec := a.Admit(http.MethodPost, "/v1/workers", "bob", time.Time{}, nil); !dec.OK {
		t.Fatal("bob shed because of alice's traffic")
	}
}

func TestAdmissionClientTableBound(t *testing.T) {
	opts := NewAdmissionOptions()
	opts.MaxClients = 2
	a, _ := newTestAdmission(opts)
	a.bucketFor("a", PriorityMedium)
	a.bucketFor("b", PriorityMedium)
	// Table full: client "c" must fall back to the global bucket, not
	// grow the table without bound.
	got := a.bucketFor("c", PriorityMedium)
	if got != a.global[PriorityMedium] {
		t.Fatal("overflow client did not fall back to the global bucket")
	}
	if len(a.clients) != 2 {
		t.Fatalf("client table grew to %d past MaxClients 2", len(a.clients))
	}
}

func TestAdmissionExpiredDeadlineShedsImmediately(t *testing.T) {
	a, clk := newTestAdmission(NewAdmissionOptions())
	dec := a.Admit(http.MethodPost, "/v1/workers", "", clk.now().Add(-time.Second), nil)
	if dec.OK {
		t.Fatal("request with an expired deadline admitted")
	}
	if dec.RetryAfter <= 0 {
		t.Fatal("expired-deadline shed missing Retry-After")
	}
}

func TestAdmissionExemptRoutesNeverShed(t *testing.T) {
	opts := NewAdmissionOptions()
	opts.RateHigh = 1
	a, clk := newTestAdmission(opts)
	// Drain the high bucket via a non-exempt read.
	a.Admit(http.MethodGet, "/v1/stats", "", time.Time{}, nil)
	for i := 0; i < 100; i++ {
		if dec := a.Admit(http.MethodGet, "/v1/healthz", "", time.Time{}, nil); !dec.OK {
			t.Fatalf("healthz probe %d shed", i)
		}
		if dec := a.Admit(http.MethodGet, "/v1/journal/stream", "", time.Time{}, nil); !dec.OK {
			t.Fatalf("journal stream %d shed", i)
		}
	}
	_ = clk
}

func TestAdmissionBrownoutAndRecovery(t *testing.T) {
	opts := NewAdmissionOptions()
	opts.RateMedium = 1
	opts.BrownoutShedRate = 0.05
	opts.BrownoutHalflife = 100 * time.Millisecond
	a, clk := newTestAdmission(opts)

	// Hammer past the bucket: every shed feeds the signal, shed rate
	// rockets past the threshold.
	for i := 0; i < 50; i++ {
		a.Admit(http.MethodPost, "/v1/workers", "", time.Time{}, nil)
	}
	if !a.Overloaded() {
		t.Fatal("not overloaded after sustained capacity sheds")
	}
	h := a.HealthSnapshot()
	if !h.Brownout || h.ShedRate <= opts.BrownoutShedRate {
		t.Fatalf("health brownout=%v shedRate=%v, want brownout past %v",
			h.Brownout, h.ShedRate, opts.BrownoutShedRate)
	}

	// Batch ingest (low priority) is not brownout-shed: it keeps its
	// bucket because batches amortise journal writes.
	if dec := a.Admit(http.MethodPost, "/v1/batch", "", time.Time{}, nil); !dec.OK {
		t.Fatal("batch ingest shed during brownout")
	}

	// The signal decays: after many halflives with no sheds, the
	// controller must report healthy again (monotone recovery).
	clk.advance(5 * time.Second)
	if a.Overloaded() {
		t.Fatalf("still overloaded %v after the signal decayed (shed rate %v)",
			a.Overloaded(), a.shedRate(clk.now()))
	}
}

func TestAdmissionBrownoutShedsDontFeedSignal(t *testing.T) {
	opts := NewAdmissionOptions()
	opts.RateMedium = 1000 // ample bucket: further sheds can only be brownout sheds
	opts.BrownoutHalflife = time.Second
	a, clk := newTestAdmission(opts)

	// Drive the shed signal straight into deep brownout.
	for i := 0; i < 100; i++ {
		a.observe(true, clk.now())
	}
	before := a.shedRate(clk.now())
	if a.severity(clk.now()) == 0 {
		t.Fatalf("not in brownout at shed rate %v", before)
	}
	// Traffic continues; most of it is brownout-shed.  The signal must
	// still fall — brownout sheds do not feed it, or severity would lock
	// in at 1 and never recover.
	brownoutShed := 0
	for i := 0; i < 200; i++ {
		clk.advance(5 * time.Millisecond)
		dec := a.Admit(http.MethodPost, "/v1/workers", "", time.Time{}, nil)
		if dec.OK {
			dec.Release(time.Millisecond)
		} else {
			brownoutShed++
		}
	}
	after := a.shedRate(clk.now())
	if after >= before {
		t.Fatalf("shed rate %v did not decay below %v despite brownout sheds", after, before)
	}
	if brownoutShed > 0 && a.HealthSnapshot().BrownoutSheds == 0 {
		t.Fatal("brownout sheds not counted")
	}
	// And once the storm is over, the controller recovers fully.
	clk.advance(30 * time.Second)
	if a.Overloaded() {
		t.Fatal("brownout never recovered after the signal decayed")
	}
}

func TestAdmissionConcurrencyLimitedRoutes(t *testing.T) {
	if !concurrencyLimited(http.MethodPost, "/v1/workers") {
		t.Fatal("single-event write not concurrency limited")
	}
	if !concurrencyLimited(http.MethodPost, "/v1/batch") {
		t.Fatal("batch ingest not concurrency limited")
	}
	if concurrencyLimited(http.MethodPost, "/v1/rounds") {
		t.Fatal("round close concurrency limited (it is single-flight already)")
	}
	if concurrencyLimited(http.MethodGet, "/v1/stats") {
		t.Fatal("read concurrency limited")
	}
}

func TestAdmissionReleaseFeedsAIMD(t *testing.T) {
	opts := NewAdmissionOptions()
	opts.MinInflight, opts.MaxInflight = 2, 64
	opts.LatencyTarget = 5 * time.Millisecond
	a, _ := newTestAdmission(opts)

	for i := 0; i < 100; i++ {
		dec := a.Admit(http.MethodPost, "/v1/workers", "", time.Time{}, nil)
		if !dec.OK {
			t.Fatalf("request %d shed", i)
		}
		dec.Release(100 * time.Millisecond) // way over target
	}
	h := a.HealthSnapshot()
	if h.InflightLimit >= float64(opts.MaxInflight) {
		t.Fatalf("inflight limit %v did not back off under slow latencies", h.InflightLimit)
	}
}
