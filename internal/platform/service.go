package platform

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"repro/internal/benefit"
	"repro/internal/core"
	"repro/internal/market"
	"repro/internal/stats"
)

// AssignmentPair reports one assigned pair in platform identities.
type AssignmentPair struct {
	WorkerID int     `json:"worker_id"`
	TaskID   int     `json:"task_id"`
	Quality  float64 `json:"quality"`
	Utility  float64 `json:"utility"`
	Mutual   float64 `json:"mutual"`
}

// RoundResult is the outcome of one assignment round over the live state.
type RoundResult struct {
	Round   int              `json:"round"`
	Pairs   []AssignmentPair `json:"pairs"`
	Metrics core.Metrics     `json:"metrics"`
	// StalePairs counts assignments the solver produced that were dropped
	// at commit time because their worker left or their task closed while
	// the round was solving.  Metrics still describe the full solve-time
	// assignment.
	StalePairs int `json:"stale_pairs,omitempty"`
	// Seq is the journal sequence number of this round's marker event —
	// the handle for locating the round in the log after recovery.
	Seq uint64 `json:"seq,omitempty"`
	// ServedBy / DegradedFrom / SolveTimedOut mirror core.SolveReport when
	// the solver is a composite (core.Degrader): which stage served the
	// round, what it degraded from, and whether a deadline fired.
	ServedBy      string `json:"served_by,omitempty"`
	DegradedFrom  string `json:"degraded_from,omitempty"`
	SolveTimedOut bool   `json:"solve_timed_out,omitempty"`
	// WarmStarted / DirtyFraction / FullSolveFallback mirror the incremental
	// provenance of core.SolveReport when the solver is delta-aware: whether
	// the round reused carried dual state, how much of the problem had
	// churned, and whether carried state had to be discarded for a full
	// re-solve.
	WarmStarted       bool    `json:"warm_started,omitempty"`
	DirtyFraction     float64 `json:"dirty_fraction,omitempty"`
	FullSolveFallback bool    `json:"full_solve_fallback,omitempty"`
	// SolveError is set when the solve failed outright (every degrader
	// stage exhausted, or a panicking solver).  The round still closed —
	// its marker is journaled — but assigned nothing.
	SolveError string `json:"solve_error,omitempty"`
	// Checkpointed reports that this round's close triggered a successful
	// checkpoint (snapshot + journal compaction); CheckpointError records
	// a failed attempt.  Checkpointing is an optimization of recovery
	// time, so its failure never fails the round.
	Checkpointed    bool   `json:"checkpointed,omitempty"`
	CheckpointError string `json:"checkpoint_error,omitempty"`
	// Shards carries per-shard provenance when the round was served by a
	// ShardedService (nil for a single-market Service), and
	// ReconcileDropped / ReconcileRefilled count the cross-shard
	// reconciliation churn: optimistic picks dropped because a spanning
	// worker was over-subscribed across shards, and freed slots refilled
	// from the owning shards' remaining edges.
	Shards            []ShardRound `json:"shards,omitempty"`
	ReconcileDropped  int          `json:"reconcile_dropped,omitempty"`
	ReconcileRefilled int          `json:"reconcile_refilled,omitempty"`
}

// Service runs assignment rounds over a live State with a fixed solver and
// benefit parameters, optionally journaling every mutation to a Log.
//
// Concurrency model: events may be submitted from many goroutines at any
// time, including while a round is closing.  CloseRound never holds the
// service mutex across the expensive work — it snapshots the state (read
// lock only), releases every lock, constructs and solves on the snapshot,
// then re-acquires the state to validate the result against mutations that
// interleaved with the solve (pairs whose endpoints vanished are dropped
// and counted in RoundResult.StalePairs).  Rounds serialise among
// themselves on roundMu, which also guards the previous round's Problem:
// round N+1 rebuilds into round N's arenas (core.RebuildProblem), so the
// steady-state serving loop stops re-allocating its largest data
// structure.
//
// When a journal is attached, Submit routes through State.ApplyJournaled,
// which holds the state mutex across apply-and-append: journal lines are
// written in strictly increasing sequence order — the invariant ReadLog
// enforces on recovery — and a journal failure rolls the state mutation
// back, so memory and disk can never silently drift apart.
type Service struct {
	mu         sync.Mutex
	state      *State
	journal    Journal // optional journal; nil disables
	solver     core.Solver
	params     benefit.Params
	rng        *stats.RNG
	checkpoint *CheckpointManager // optional; set via SetCheckpointer

	// fencedBy is the highest foreign replication epoch this service has
	// observed (via the X-MBA-Epoch request header, or ObserveEpoch
	// directly).  When it exceeds the state's own epoch the service is
	// fenced: a newer primary exists, so committing anything here would
	// split-brain the market.
	fencedBy atomic.Uint64
	// promotedAt is the journal seq of the epoch bump this service wrote
	// when it took over from a failed primary (0 = never promoted).
	promotedAt atomic.Uint64

	roundMu sync.Mutex    // serialises CloseRound; guards prev
	prev    *core.Problem // previous round's problem, reused as the next round's arena
}

// ErrFenced is returned by the write paths (Submit, SubmitBatch,
// CloseRound) once the service has observed a replication epoch higher
// than its own: another process has been promoted, and anything journaled
// here would diverge from the new primary's history.  The HTTP layer maps
// it to 409 with the X-MBA-Epoch header so clients can re-resolve the
// primary.
var ErrFenced = errors.New("platform: fenced by a higher replication epoch")

// NewService wires a service.  journal may be nil (no journaling); both
// *Log and *SegmentedLog satisfy it.
func NewService(state *State, solver core.Solver, params benefit.Params, journal Journal, seed uint64) (*Service, error) {
	if state == nil {
		return nil, fmt.Errorf("platform: nil state")
	}
	if solver == nil {
		return nil, fmt.Errorf("platform: nil solver")
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	// Guard against typed-nil journals: callers historically pass a
	// possibly-nil *Log variable, which would otherwise arrive as a
	// non-nil interface wrapping nothing.
	switch j := journal.(type) {
	case *Log:
		if j == nil {
			journal = nil
		}
	case *SegmentedLog:
		if j == nil {
			journal = nil
		}
	}
	return &Service{
		state:   state,
		journal: journal,
		solver:  solver,
		params:  params,
		rng:     stats.NewRNG(seed),
	}, nil
}

// SetCheckpointer attaches a checkpoint manager: every committed round
// then notifies it (snapshot-on-round policy), and the HTTP API exposes
// POST /v1/checkpoint.  Call before serving.
func (s *Service) SetCheckpointer(cm *CheckpointManager) {
	s.mu.Lock()
	s.checkpoint = cm
	s.mu.Unlock()
}

// Checkpointer returns the attached checkpoint manager, if any.
func (s *Service) Checkpointer() *CheckpointManager {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.checkpoint
}

// State exposes the underlying state (read-mostly use).
func (s *Service) State() *State { return s.state }

// Counts implements Backend (live worker/task counts).
func (s *Service) Counts() (workers, tasks int) { return s.state.Counts() }

// Rounds implements Backend (committed round count).
func (s *Service) Rounds() int { return s.state.Rounds() }

// CheckpointNow implements Backend: an immediate snapshot + journal
// compaction through the attached checkpoint manager, ok=false without one.
func (s *Service) CheckpointNow() (any, bool, error) {
	cm := s.Checkpointer()
	if cm == nil {
		return nil, false, nil
	}
	res, err := cm.Checkpoint()
	return res, true, err
}

// Epoch returns the service's replication epoch (the state's — the epoch
// is a journaled fact, not process memory).
func (s *Service) Epoch() uint64 { return s.state.Epoch() }

// ObserveEpoch records a replication epoch seen on the wire.  Observing
// an epoch above the service's own permanently fences it (until the state
// itself reaches that epoch — which only replication can make happen,
// never this service's own writes).
func (s *Service) ObserveEpoch(epoch uint64) {
	for {
		cur := s.fencedBy.Load()
		if epoch <= cur || s.fencedBy.CompareAndSwap(cur, epoch) {
			return
		}
	}
}

// FenceStatus reports whether the service is fenced and the highest
// foreign epoch it has observed.
func (s *Service) FenceStatus() (fenced bool, observed uint64) {
	observed = s.fencedBy.Load()
	return observed > s.state.Epoch(), observed
}

// checkFence refuses writes on a fenced service.
func (s *Service) checkFence() error {
	if fenced, observed := s.FenceStatus(); fenced {
		return fmt.Errorf("%w: observed epoch %d above local %d", ErrFenced, observed, s.state.Epoch())
	}
	return nil
}

// NotePromotion records the journal sequence of the epoch bump that made
// this service the primary (surfaced as promoted_at_seq in healthz).
func (s *Service) NotePromotion(seq uint64) { s.promotedAt.Store(seq) }

// PromotedAtSeq returns the promotion provenance recorded by
// NotePromotion (0 when this service started as a primary).
func (s *Service) PromotedAtSeq() uint64 { return s.promotedAt.Load() }

// Submit applies an event to the state and journals it.  With a journal
// attached, the apply and the append happen atomically under the state
// mutex (State.ApplyJournaled): sequence numbers are assigned inside the
// apply, so interleaving two Submits' apply and append phases would write
// the journal out of order — and if the append fails, the apply is rolled
// back, so a Submit error means the event happened nowhere.
func (s *Service) Submit(e Event) (Event, error) {
	if err := s.checkFence(); err != nil {
		return Event{}, err
	}
	if s.journal == nil {
		return s.state.Apply(e)
	}
	return s.state.ApplyJournaled(e, s.journal.Append)
}

// SubmitBatch applies a batch of ingestion events all-or-nothing: every
// event validates and applies, and the batch lands in the journal as one
// contiguous append (one write + one fsync), or none of it happens.
// Round markers are refused — rounds close through CloseRound, which owns
// the marker's journaling.  Requires the journal (if any) to implement
// BatchJournal; *Log and *SegmentedLog both do.
func (s *Service) SubmitBatch(events []Event) ([]Event, error) {
	if len(events) == 0 {
		return nil, nil
	}
	if err := s.checkFence(); err != nil {
		return nil, err
	}
	for i := range events {
		if events[i].Kind == EventRoundClosed {
			return nil, fmt.Errorf("platform: batch event %d: round markers cannot be batch-submitted", i)
		}
	}
	if s.journal == nil {
		return s.state.ApplyBatchJournaled(events, nil)
	}
	bj, ok := s.journal.(BatchJournal)
	if !ok {
		return nil, fmt.Errorf("platform: journal %T cannot append batches atomically", s.journal)
	}
	return s.state.ApplyBatchJournaled(events, bj.AppendBatch)
}

// ErrStreamUnsupported is returned by JournalEventsSince when the service
// has no segmented journal to stream from (journal-less, or a single-file
// Log).
var ErrStreamUnsupported = errors.New("platform: journal streaming requires a segmented journal")

// ErrNoSnapshot is returned by LatestSnapshot when no decodable snapshot
// exists (checkpointing never ran, or every generation is corrupt).
var ErrNoSnapshot = errors.New("platform: no snapshot available")

// LatestSnapshot implements SnapshotProvider: an open reader over the
// newest snapshot file that passes full CRC verification, plus its info.
// Corrupt generations are skipped exactly like RecoverDir's fallback
// chain.  Requires an attached checkpoint manager — a primary that never
// snapshots also never retires segments, so its followers never need a
// snapshot bootstrap.
func (s *Service) LatestSnapshot() (io.ReadCloser, SnapshotInfo, error) {
	cm := s.Checkpointer()
	if cm == nil {
		return nil, SnapshotInfo{}, ErrNoSnapshot
	}
	return latestSnapshotIn(cm.SnapshotDir())
}

// JournalEventsSince serves the primary side of follower replication:
// every journaled event with sequence ≥ from, plus the state's current
// last-committed sequence so the follower can report its lag.
func (s *Service) JournalEventsSince(from uint64) ([]Event, uint64, error) {
	sl, ok := s.journal.(*SegmentedLog)
	if !ok {
		return nil, 0, ErrStreamUnsupported
	}
	events, err := sl.EventsSince(from)
	return events, s.state.Seq(), err
}

// CloseRound assigns all open tasks to the live workforce, journals the
// round marker, and returns the result in platform identities.  Closed
// tasks are *not* removed automatically: platforms differ on whether a
// task keeps collecting answers across rounds, so removal is the caller's
// policy (see Server's drain parameter).
//
// The expensive middle — problem construction and the solve — runs on an
// immutable snapshot with no lock held, so ingestion continues at full
// rate while the round closes.  The result is then validated against the
// live state: pairs whose worker or task disappeared during the solve are
// dropped (counted in StalePairs) rather than handed out against entities
// that no longer exist.
func (s *Service) CloseRound() (*RoundResult, error) {
	return s.CloseRoundCtx(context.Background())
}

// CloseRoundCtx is CloseRound under a context.  Cancellation is
// cooperative: deadline-aware solvers (core.ContextSolver, and notably
// core.Degrader) observe ctx and abort or degrade; others run to
// completion.  A ctx that dies before the round commits aborts the round
// without journaling a marker.  A solve that fails for any *other* reason
// — every degrader stage exhausted, or a panicking solver (contained by
// core.RunCtx's panic fence) — still closes the round: the marker is
// journaled, RoundResult.SolveError records why nothing was assigned, and
// the serving loop lives on.
func (s *Service) CloseRoundCtx(ctx context.Context) (*RoundResult, error) {
	// A fenced service must not journal a round marker: the new primary's
	// history would never contain it.  Checked again implicitly when the
	// marker is Submitted, but failing before the solve is cheaper.
	if err := s.checkFence(); err != nil {
		return nil, err
	}
	s.roundMu.Lock()
	defer s.roundMu.Unlock()

	// Phase 1: snapshot under the state's lock only.  A delta-aware solver
	// additionally gets the churn since the previous snapshot, so warm
	// rounds repair the carried matching instead of re-solving.
	var in *market.Instance
	var workerIDs, taskIDs []int
	var delta *core.Delta
	if _, ok := s.solver.(core.DeltaSolver); ok {
		in, workerIDs, taskIDs, delta = s.state.SnapshotDelta()
	} else {
		in, workerIDs, taskIDs = s.state.Snapshot()
	}

	var res RoundResult
	if in.NumWorkers() > 0 && in.NumTasks() > 0 {
		s.mu.Lock()
		r := s.rng.Split()
		s.mu.Unlock()
		// Phase 2: construct and solve lock-free on the snapshot, rebuilding
		// into the previous round's arenas.  prev is owned by roundMu and
		// nothing outside this method retains views into it (pairs below are
		// copied out), so the reuse cannot be observed.
		pairs, err := s.solveSnapshot(ctx, in, delta, r, workerIDs, taskIDs, &res)
		if err != nil {
			if ctx.Err() != nil {
				// The caller is gone; don't journal a marker for a round
				// that never served anyone.
				return nil, err
			}
			res.SolveError = err.Error()
		} else {
			// Phase 3: re-acquire the state and commit only what is still
			// valid.
			res.Pairs, res.StalePairs = s.state.filterLivePairs(pairs)
		}
	}
	marker, err := s.Submit(NewRoundClosed(s.state.Rounds()))
	if err != nil {
		return nil, err
	}
	res.Seq = marker.Seq
	res.Round = s.state.Rounds()
	if cm := s.Checkpointer(); cm != nil {
		// The round is committed; checkpointing is recovery-time
		// optimization and must never undo that, so its errors are
		// reported on the result instead of failing the close.
		took, err := cm.RoundClosed()
		res.Checkpointed = took
		if err != nil {
			res.CheckpointError = err.Error()
		}
	}
	return &res, nil
}

// solveSnapshot runs problem construction and the solve on an immutable
// snapshot, filling res's metrics and degradation fields.  The panic fence
// covers construction as well as the solve (core.RunCtx fences the solver
// itself), so malformed input or an arena-reuse bug in the rebuild path
// costs one round, not the process.
func (s *Service) solveSnapshot(ctx context.Context, in *market.Instance, delta *core.Delta, r *stats.RNG, workerIDs, taskIDs []int, res *RoundResult) (pairs []AssignmentPair, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			pairs, err = nil, fmt.Errorf("platform: round solve panicked: %v", rec)
		}
	}()
	p, err := core.RebuildProblem(s.prev, in, s.params)
	if err != nil {
		return nil, err
	}
	s.prev = p
	sel, m, err := core.RunDeltaCtx(ctx, p, s.solver, delta, r)
	if rep, ok := s.solver.(core.SolveReporter); ok {
		last := rep.LastReport()
		res.ServedBy = last.ServedBy
		res.DegradedFrom = last.DegradedFrom
		res.SolveTimedOut = last.SolveTimedOut
		res.WarmStarted = last.WarmStarted
		res.DirtyFraction = last.DirtyFraction
		res.FullSolveFallback = last.FullSolveFallback
	}
	if err != nil {
		return nil, err
	}
	res.Metrics = m
	pairs = make([]AssignmentPair, len(sel))
	for i, ei := range sel {
		e := &p.Edges[ei]
		pairs[i] = AssignmentPair{
			WorkerID: workerIDs[e.W],
			TaskID:   taskIDs[e.T],
			Quality:  e.Q,
			Utility:  e.B,
			Mutual:   e.M,
		}
	}
	return pairs, nil
}
