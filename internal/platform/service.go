package platform

import (
	"fmt"
	"sync"

	"repro/internal/benefit"
	"repro/internal/core"
	"repro/internal/stats"
)

// AssignmentPair reports one assigned pair in platform identities.
type AssignmentPair struct {
	WorkerID int     `json:"worker_id"`
	TaskID   int     `json:"task_id"`
	Quality  float64 `json:"quality"`
	Utility  float64 `json:"utility"`
	Mutual   float64 `json:"mutual"`
}

// RoundResult is the outcome of one assignment round over the live state.
type RoundResult struct {
	Round   int              `json:"round"`
	Pairs   []AssignmentPair `json:"pairs"`
	Metrics core.Metrics     `json:"metrics"`
}

// Service runs assignment rounds over a live State with a fixed solver and
// benefit parameters, optionally journaling every mutation to a Log.
//
// Concurrency model: events may be submitted from many goroutines;
// CloseRound snapshots the state (read lock only) and solves outside any
// lock, so a slow exact solve never blocks ingestion.  The round log append
// and counter update serialise through the service mutex.
type Service struct {
	mu     sync.Mutex
	state  *State
	log    *Log // optional journal; nil disables
	solver core.Solver
	params benefit.Params
	rng    *stats.RNG
}

// NewService wires a service.  log may be nil (no journaling).
func NewService(state *State, solver core.Solver, params benefit.Params, log *Log, seed uint64) (*Service, error) {
	if state == nil {
		return nil, fmt.Errorf("platform: nil state")
	}
	if solver == nil {
		return nil, fmt.Errorf("platform: nil solver")
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	return &Service{
		state:  state,
		log:    log,
		solver: solver,
		params: params,
		rng:    stats.NewRNG(seed),
	}, nil
}

// State exposes the underlying state (read-mostly use).
func (s *Service) State() *State { return s.state }

// Submit applies an event to the state and journals it.
func (s *Service) Submit(e Event) (Event, error) {
	applied, err := s.state.Apply(e)
	if err != nil {
		return Event{}, err
	}
	if s.log != nil {
		s.mu.Lock()
		err = s.log.Append(applied)
		s.mu.Unlock()
		if err != nil {
			return Event{}, err
		}
	}
	return applied, nil
}

// CloseRound assigns all open tasks to the live workforce, journals the
// round marker, and returns the result in platform identities.  Closed
// tasks are *not* removed automatically: platforms differ on whether a
// task keeps collecting answers across rounds, so removal is the caller's
// policy (see Server's drain parameter).
func (s *Service) CloseRound() (*RoundResult, error) {
	in, workerIDs, taskIDs := s.state.Snapshot()
	var res RoundResult
	if in.NumWorkers() > 0 && in.NumTasks() > 0 {
		p, err := core.NewProblem(in, s.params)
		if err != nil {
			return nil, err
		}
		s.mu.Lock()
		r := s.rng.Split()
		s.mu.Unlock()
		sel, m, err := core.Run(p, s.solver, r)
		if err != nil {
			return nil, err
		}
		res.Metrics = m
		res.Pairs = make([]AssignmentPair, len(sel))
		for i, ei := range sel {
			e := &p.Edges[ei]
			res.Pairs[i] = AssignmentPair{
				WorkerID: workerIDs[e.W],
				TaskID:   taskIDs[e.T],
				Quality:  e.Q,
				Utility:  e.B,
				Mutual:   e.M,
			}
		}
	}
	marker, err := s.Submit(NewRoundClosed(s.state.Rounds()))
	if err != nil {
		return nil, err
	}
	_ = marker
	res.Round = s.state.Rounds()
	return &res, nil
}
