package platform

import (
	"fmt"
	"sync"

	"repro/internal/benefit"
	"repro/internal/core"
	"repro/internal/stats"
)

// AssignmentPair reports one assigned pair in platform identities.
type AssignmentPair struct {
	WorkerID int     `json:"worker_id"`
	TaskID   int     `json:"task_id"`
	Quality  float64 `json:"quality"`
	Utility  float64 `json:"utility"`
	Mutual   float64 `json:"mutual"`
}

// RoundResult is the outcome of one assignment round over the live state.
type RoundResult struct {
	Round   int              `json:"round"`
	Pairs   []AssignmentPair `json:"pairs"`
	Metrics core.Metrics     `json:"metrics"`
	// StalePairs counts assignments the solver produced that were dropped
	// at commit time because their worker left or their task closed while
	// the round was solving.  Metrics still describe the full solve-time
	// assignment.
	StalePairs int `json:"stale_pairs,omitempty"`
}

// Service runs assignment rounds over a live State with a fixed solver and
// benefit parameters, optionally journaling every mutation to a Log.
//
// Concurrency model: events may be submitted from many goroutines at any
// time, including while a round is closing.  CloseRound never holds the
// service mutex across the expensive work — it snapshots the state (read
// lock only), releases every lock, constructs and solves on the snapshot,
// then re-acquires the state to validate the result against mutations that
// interleaved with the solve (pairs whose endpoints vanished are dropped
// and counted in RoundResult.StalePairs).  Rounds serialise among
// themselves on roundMu, which also guards the previous round's Problem:
// round N+1 rebuilds into round N's arenas (core.RebuildProblem), so the
// steady-state serving loop stops re-allocating its largest data
// structure.
//
// When a journal is attached, Submit holds the service mutex across
// apply-and-append, so journal lines are written in strictly increasing
// sequence order — the invariant ReadLog enforces on recovery.
type Service struct {
	mu     sync.Mutex
	state  *State
	log    *Log // optional journal; nil disables
	solver core.Solver
	params benefit.Params
	rng    *stats.RNG

	roundMu sync.Mutex    // serialises CloseRound; guards prev
	prev    *core.Problem // previous round's problem, reused as the next round's arena
}

// NewService wires a service.  log may be nil (no journaling).
func NewService(state *State, solver core.Solver, params benefit.Params, log *Log, seed uint64) (*Service, error) {
	if state == nil {
		return nil, fmt.Errorf("platform: nil state")
	}
	if solver == nil {
		return nil, fmt.Errorf("platform: nil solver")
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	return &Service{
		state:  state,
		log:    log,
		solver: solver,
		params: params,
		rng:    stats.NewRNG(seed),
	}, nil
}

// State exposes the underlying state (read-mostly use).
func (s *Service) State() *State { return s.state }

// Submit applies an event to the state and journals it.  With a journal
// attached, the apply and the append happen atomically under the service
// mutex: sequence numbers are assigned inside Apply, so interleaving two
// Submits' apply and append phases would write the journal out of order.
func (s *Service) Submit(e Event) (Event, error) {
	if s.log == nil {
		return s.state.Apply(e)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	applied, err := s.state.Apply(e)
	if err != nil {
		return Event{}, err
	}
	if err := s.log.Append(applied); err != nil {
		return Event{}, err
	}
	return applied, nil
}

// CloseRound assigns all open tasks to the live workforce, journals the
// round marker, and returns the result in platform identities.  Closed
// tasks are *not* removed automatically: platforms differ on whether a
// task keeps collecting answers across rounds, so removal is the caller's
// policy (see Server's drain parameter).
//
// The expensive middle — problem construction and the solve — runs on an
// immutable snapshot with no lock held, so ingestion continues at full
// rate while the round closes.  The result is then validated against the
// live state: pairs whose worker or task disappeared during the solve are
// dropped (counted in StalePairs) rather than handed out against entities
// that no longer exist.
func (s *Service) CloseRound() (*RoundResult, error) {
	s.roundMu.Lock()
	defer s.roundMu.Unlock()

	// Phase 1: snapshot under the state's read lock only.
	in, workerIDs, taskIDs := s.state.Snapshot()

	var res RoundResult
	if in.NumWorkers() > 0 && in.NumTasks() > 0 {
		// Phase 2: construct and solve lock-free on the snapshot, rebuilding
		// into the previous round's arenas.  prev is owned by roundMu and
		// nothing outside this method retains views into it (pairs below are
		// copied out), so the reuse cannot be observed.
		p, err := core.RebuildProblem(s.prev, in, s.params)
		if err != nil {
			return nil, err
		}
		s.prev = p
		s.mu.Lock()
		r := s.rng.Split()
		s.mu.Unlock()
		sel, m, err := core.Run(p, s.solver, r)
		if err != nil {
			return nil, err
		}
		res.Metrics = m
		pairs := make([]AssignmentPair, len(sel))
		for i, ei := range sel {
			e := &p.Edges[ei]
			pairs[i] = AssignmentPair{
				WorkerID: workerIDs[e.W],
				TaskID:   taskIDs[e.T],
				Quality:  e.Q,
				Utility:  e.B,
				Mutual:   e.M,
			}
		}
		// Phase 3: re-acquire the state and commit only what is still valid.
		res.Pairs, res.StalePairs = s.state.filterLivePairs(pairs)
	}
	marker, err := s.Submit(NewRoundClosed(s.state.Rounds()))
	if err != nil {
		return nil, err
	}
	_ = marker
	res.Round = s.state.Rounds()
	return &res, nil
}
