package platform

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync/atomic"
	"time"
)

// Journal is the sink Service journals applied events into.  *Log (one
// file) and *SegmentedLog (rotating directory) both implement it.  Append
// is called under the state mutex (State.ApplyJournaled), so
// implementations see events in strictly increasing sequence order.
type Journal interface {
	Append(e Event) error
}

// BatchJournal is a Journal that can land a whole batch of events as one
// contiguous append — one write, and under FsyncAlways one fsync.  *Log
// and *SegmentedLog both implement it; the batch ingest path requires it
// (falling back to per-event appends would silently break the batch's
// all-or-nothing durability).
type BatchJournal interface {
	Journal
	AppendBatch(events []Event) error
}

// FsyncPolicy selects how hard Append pushes a line toward stable storage.
type FsyncPolicy int

const (
	// FsyncNever trusts the OS page cache: a process crash loses nothing,
	// a machine crash may lose the tail.  The default, and the right
	// trade-off for an experiment platform.
	FsyncNever FsyncPolicy = iota
	// FsyncAlways calls Sync after every appended line when the underlying
	// writer supports it (*os.File does); a machine crash then loses at
	// most the line being written — exactly the torn tail ReadLogPartial
	// recovers from.
	FsyncAlways
)

// LogOptions tunes the journal's durability behaviour.  The zero value is
// the seed semantics: no fsync, no retries.
type LogOptions struct {
	Fsync FsyncPolicy
	// MaxRetries is how many times a failed Write is retried (the unwritten
	// suffix only) before Append gives up; 0 disables retrying.  Transient
	// full-disk or EINTR-style blips are absorbed here instead of failing a
	// round.
	MaxRetries int
	// RetryBackoff is the sleep before the first retry, doubling per
	// attempt; 0 means 1ms.
	RetryBackoff time.Duration
	// Syncer is the fsync target for FsyncAlways when the write path hides
	// the underlying file behind wrappers (byte counters, fault injectors)
	// that don't forward Sync.  Nil falls back to asserting Sync on the
	// writer itself.
	Syncer interface{ Sync() error }
	// Format selects the encoding of newly written streams (binlog.go).
	// Readers ignore it: format is detected per stream.  Reopening an
	// existing stream keeps the on-disk format regardless of this field —
	// a stream never mixes encodings (directories may, per segment).
	Format JournalFormat
	// GroupCommit runs Appends through a committer goroutine that
	// coalesces concurrent calls into one write + one fsync
	// (groupcommit.go).  Append stays synchronous for the caller and the
	// poisoning contract is unchanged; a Log with group commit enabled
	// must be Closed to stop the goroutine.
	GroupCommit bool
	// GroupMaxBatch caps how many pending appends one flush absorbs; 0
	// means 128.
	GroupMaxBatch int
	// GroupWindow bounds how long the committer keeps draining newly
	// arriving appends into the current flush; 0 means 2ms.  It is a cap,
	// not a delay: a lone Append flushes immediately.
	GroupWindow time.Duration
}

// ErrLogPoisoned marks a journal that failed partway through a line.  All
// later Appends are refused: the file ends mid-line, so appending more
// events would place them *after* the corruption, and recovery — which
// truncates at the first corrupt line — would silently drop them while the
// in-memory state retained them.  Refusing keeps "recovered state ==
// applied state minus rolled-back events" true.
var ErrLogPoisoned = errors.New("platform: journal poisoned by a partial line write")

// syncer is the optional durability hook of the underlying writer
// (*os.File implements it).
type syncer interface{ Sync() error }

// ErrLogClosed is returned by Append on a Log whose group committer has
// been stopped (Close, or SegmentedLog sealing the segment out from under
// a racing caller — that path retries on the fresh segment).
var ErrLogClosed = errors.New("platform: log closed")

// Log is an append-only event log, JSONL (the seed format) or framed
// binary (binlog.go).  Either way a torn final record (crash mid-write)
// is detected and reported with its offset rather than silently
// corrupting a replay.
//
// Without group commit, Log methods are not safe for concurrent use; the
// platform serialises Appends under the state mutex (State.ApplyJournaled),
// which is also what keeps journal order identical to sequence order.
// With GroupCommit enabled, Append and AppendBatch may be called
// concurrently — the committer serialises the writes.
type Log struct {
	w    io.Writer
	opts LogOptions
	// format is the stream's actual encoding — opts.Format for a fresh
	// stream, the detected format when reopening existing bytes.
	format JournalFormat
	// headerPending is true while a binary stream still owes its magic;
	// it is fused into the first commit so an empty file never holds a
	// bare header that a torn first record would strand.
	headerPending bool
	// committed counts bytes of fully-successful commits (magic included).
	// Only the committing goroutine advances it; SegmentedLog reads it
	// concurrently — after a failed commit to find the truncation point
	// that removes every byte of the failed flush, and while streaming the
	// active segment to bound reads to never-truncated bytes.
	committed atomic.Int64
	poisoned  atomic.Bool
	gc        *committer
}

// NewLog starts appending to w with zero-value options.  The caller owns
// w's lifecycle (file, buffer, network); Log never closes it.
func NewLog(w io.Writer) *Log { return NewLogWithOptions(w, LogOptions{}) }

// NewLogWithOptions starts appending to w under the given durability
// options, assuming a fresh (empty) stream.
func NewLogWithOptions(w io.Writer, opts LogOptions) *Log {
	return newLogAt(w, opts, opts.Format, false)
}

// newLogAt builds a Log over a stream whose format is already decided —
// opts.Format for fresh streams, the detected on-disk format when
// reopening.  headerWritten says whether a binary stream's magic is
// already durable.
func newLogAt(w io.Writer, opts LogOptions, format JournalFormat, headerWritten bool) *Log {
	l := &Log{
		w:             w,
		opts:          opts,
		format:        format,
		headerPending: format == FormatBinary && !headerWritten,
	}
	if opts.GroupCommit {
		l.gc = newCommitter(l)
	}
	return l
}

// Poisoned reports whether a partial-record failure has made the journal
// unappendable (see ErrLogPoisoned).
func (l *Log) Poisoned() bool { return l.poisoned.Load() }

// Close stops the group-commit worker, flushing whatever it already
// accepted.  The underlying writer stays open (the caller owns it); a Log
// without group commit has nothing to stop and Close is a no-op.  Appends
// after Close return ErrLogClosed.
func (l *Log) Close() error {
	if l.gc != nil {
		l.gc.stop()
	}
	return nil
}

// encodeRecord appends e's on-disk encoding (one JSON line or one binary
// frame) to dst.
func (l *Log) encodeRecord(dst []byte, e *Event) ([]byte, error) {
	if l.format == FormatBinary {
		return appendBinaryRecord(dst, e)
	}
	line, err := e.MarshalJSONL()
	if err != nil {
		return dst, err
	}
	return append(dst, line...), nil
}

// Append writes one event, retrying transient write failures on the
// unwritten suffix and fsyncing per the policy.  An error return means
// the record is NOT durably in the log: either nothing of it was written
// (retryable — the log stays record-aligned) or the log is poisoned.  A
// poisoned group-commit log may hold whole records of the failed flush
// (other callers' as well as this one's) past the last committed offset;
// every caller in that flush got the error, and SegmentedLog heals by
// truncating to the committed offset so memory and disk agree.
func (l *Log) Append(e Event) error {
	if l.Poisoned() {
		return ErrLogPoisoned
	}
	if err := e.Validate(); err != nil {
		return err
	}
	rec, err := l.encodeRecord(nil, &e)
	if err != nil {
		return err
	}
	if l.gc != nil {
		return l.gc.commit(rec)
	}
	return l.commitBytes(rec)
}

// AppendBatch writes events as one contiguous run of records with a
// single write and (under FsyncAlways) a single fsync — the journal half
// of the all-or-nothing batch ingest path.  On error nothing of the batch
// is durably in the log under the same rules as Append.
func (l *Log) AppendBatch(events []Event) error {
	if len(events) == 0 {
		return nil
	}
	if l.Poisoned() {
		return ErrLogPoisoned
	}
	var buf []byte
	for i := range events {
		if err := events[i].Validate(); err != nil {
			return fmt.Errorf("platform: batch event %d: %w", i, err)
		}
		var err error
		if buf, err = l.encodeRecord(buf, &events[i]); err != nil {
			return fmt.Errorf("platform: batch event %d: %w", i, err)
		}
	}
	if l.gc != nil {
		return l.gc.commit(buf)
	}
	return l.commitBytes(buf)
}

// committedBytes is the stream offset after the last fully-successful
// commit — the heal target after a failed group flush.  Callers must
// order the read after the failing commit's reply (SegmentedLog does, via
// the committer's done channel).
func (l *Log) committedBytes() int64 { return l.committed.Load() }

// commitBytes is the single point where encoded records reach the writer:
// one write (with the stream magic fused in front when still owed), then
// one fsync per the policy.  Called by Append/AppendBatch directly, or by
// the committer goroutine on coalesced buffers.
func (l *Log) commitBytes(buf []byte) error {
	if l.headerPending {
		withMagic := make([]byte, 0, len(binaryLogMagic)+len(buf))
		withMagic = append(withMagic, binaryLogMagic...)
		buf = append(withMagic, buf...)
	}
	if err := l.write(buf); err != nil {
		return err
	}
	l.headerPending = false
	l.committed.Add(int64(len(buf)))
	if l.opts.Fsync == FsyncAlways {
		s := l.opts.Syncer
		if s == nil {
			s, _ = l.w.(syncer)
		}
		if s != nil {
			if err := s.Sync(); err != nil {
				// The record may or may not have reached the platter; assume
				// the worst so recovery semantics stay conservative.
				l.poisoned.Store(true)
				return fmt.Errorf("platform: fsyncing log: %w", err)
			}
		}
	}
	return nil
}

// write pushes line with bounded retry-with-backoff, always resuming at
// the first unwritten byte so a short write never duplicates a prefix.
func (l *Log) write(line []byte) error {
	backoff := l.opts.RetryBackoff
	if backoff <= 0 {
		backoff = time.Millisecond
	}
	n := 0
	for attempt := 0; ; attempt++ {
		k, err := l.w.Write(line[n:])
		n += k
		if n >= len(line) && err == nil {
			return nil
		}
		if err == nil {
			err = io.ErrShortWrite
		}
		if attempt >= l.opts.MaxRetries {
			if n > 0 {
				l.poisoned.Store(true)
				return fmt.Errorf("platform: appending to log: %w (wrote %d/%d bytes; journal poisoned)", err, n, len(line))
			}
			return fmt.Errorf("platform: appending to log: %w", err)
		}
		time.Sleep(backoff)
		backoff *= 2
	}
}

// sniffBinaryLog peeks the stream head and classifies it: a full magic
// means binary (the magic is consumed), anything else starting with 'M'
// is a torn or foreign binary header (JSONL lines begin '{' or are blank,
// never 'M'), the rest is JSONL.
func sniffBinaryLog(br *bufio.Reader) (isBinary bool, headErr error) {
	head, _ := br.Peek(len(binaryLogMagic))
	if len(head) == 0 || head[0] != binaryLogMagic[0] {
		return false, nil
	}
	if len(head) == len(binaryLogMagic) && string(head) == binaryLogMagic {
		_, _ = br.Discard(len(binaryLogMagic))
		return true, nil
	}
	return true, recordCorrupt("torn or foreign binary journal header")
}

// ReadLog parses an event stream, auto-detecting JSONL vs binary framing
// by the stream head.  Every event is validated; sequence numbers must be
// strictly increasing (gaps are allowed — a compacted log keeps original
// numbering).  Unlike the partial readers, any defect — including a torn
// tail — is an error.
func ReadLog(r io.Reader) ([]Event, error) {
	br := bufio.NewReaderSize(r, 64*1024)
	if isBinary, headErr := sniffBinaryLog(br); isBinary {
		if headErr != nil {
			return nil, headErr
		}
		events, _, dropped := readBinaryLogPartial(br)
		if dropped != nil {
			return nil, dropped
		}
		return events, nil
	}
	var events []Event
	sc := bufio.NewScanner(br)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineNo := 0
	var lastSeq uint64
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(line, &e); err != nil {
			return nil, fmt.Errorf("platform: log line %d: %w", lineNo, err)
		}
		if err := e.Validate(); err != nil {
			return nil, fmt.Errorf("platform: log line %d: %w", lineNo, err)
		}
		if e.Seq != 0 && e.Seq <= lastSeq {
			return nil, fmt.Errorf("platform: log line %d: sequence %d not increasing (last %d)",
				lineNo, e.Seq, lastSeq)
		}
		if e.Seq != 0 {
			lastSeq = e.Seq
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("platform: reading log: %w", err)
	}
	return events, nil
}

// ReplayLog reads a JSONL stream and replays it onto a fresh state.
func ReplayLog(numCategories int, r io.Reader) (*State, error) {
	events, err := ReadLog(r)
	if err != nil {
		return nil, err
	}
	return Replay(numCategories, events)
}

// ReadLogPartial is the crash-recovery variant of ReadLog: it returns every
// valid event up to the first corrupted line together with a diagnostic
// describing what was dropped (nil when the log was clean).  A process that
// died mid-Append leaves a torn final line; recovering the valid prefix and
// truncating is the standard journal-recovery policy, and the diagnostic
// lets the operator decide whether a *mid-log* corruption deserves a harder
// look.
func ReadLogPartial(r io.Reader) (events []Event, dropped error) {
	events, _, dropped = readLogPartialOffset(r)
	return events, dropped
}

// readLogPartialOffset is ReadLogPartial plus the byte offset of the end
// of the last fully-valid line — the truncation point that lets a
// reopened journal resume appending on a clean line boundary instead of
// after garbage.  A final line lacking its newline is treated as torn
// even when its bytes happen to parse: accepting it while truncation (or
// a later append) destroys it would let memory and disk disagree.
func readLogPartialOffset(r io.Reader) (events []Event, validBytes int64, dropped error) {
	events, validBytes, _, dropped = readLogPartialDetect(r)
	return events, validBytes, dropped
}

// readLogPartialDetect is readLogPartialOffset plus the detected stream
// format — JSONL and binary segments recover through the same code path,
// which is what lets a directory mix formats transparently.  For a valid
// binary stream validBytes includes the 8-byte magic; a stream that opens
// with a torn or foreign binary header recovers zero bytes (nothing
// behind an unverifiable header is trustworthy).
func readLogPartialDetect(r io.Reader) (events []Event, validBytes int64, format JournalFormat, dropped error) {
	br := bufio.NewReaderSize(r, 64*1024)
	if isBinary, headErr := sniffBinaryLog(br); isBinary {
		if headErr != nil {
			return nil, 0, FormatBinary, fmt.Errorf("platform: %w: recovered 0 events", headErr)
		}
		events, consumed, dropped := readBinaryLogPartial(br)
		return events, int64(len(binaryLogMagic)) + consumed, FormatBinary, dropped
	}
	events, validBytes, dropped = readJSONLPartialOffset(br)
	return events, validBytes, FormatJSONL, dropped
}

func readJSONLPartialOffset(br *bufio.Reader) (events []Event, validBytes int64, dropped error) {
	lineNo := 0
	var lastSeq uint64
	for {
		line, err := br.ReadBytes('\n')
		if err != nil && err != io.EOF {
			return events, validBytes, fmt.Errorf("platform: reading log: %w (recovered %d events)", err, len(events))
		}
		if len(line) == 0 {
			return events, validBytes, nil
		}
		lineNo++
		if err == io.EOF {
			return events, validBytes, fmt.Errorf("platform: log line %d torn (no trailing newline): recovered %d events", lineNo, len(events))
		}
		trimmed := bytes.TrimSuffix(line, []byte("\n"))
		if len(trimmed) == 0 {
			validBytes += int64(len(line))
			continue
		}
		var e Event
		if err := json.Unmarshal(trimmed, &e); err != nil {
			return events, validBytes, fmt.Errorf("platform: log line %d corrupt (%v): recovered %d events", lineNo, err, len(events))
		}
		if err := e.Validate(); err != nil {
			return events, validBytes, fmt.Errorf("platform: log line %d invalid (%v): recovered %d events", lineNo, err, len(events))
		}
		if e.Seq != 0 && e.Seq <= lastSeq {
			return events, validBytes, fmt.Errorf("platform: log line %d out of order: recovered %d events", lineNo, len(events))
		}
		if e.Seq != 0 {
			lastSeq = e.Seq
		}
		events = append(events, e)
		validBytes += int64(len(line))
	}
}

// RecoverLog replays the valid prefix of a possibly-torn journal onto a
// fresh state.  The returned diagnostic is non-nil when lines were dropped.
func RecoverLog(numCategories int, r io.Reader) (*State, error, error) {
	events, dropped := ReadLogPartial(r)
	state, err := Replay(numCategories, events)
	return state, err, dropped
}

// JournalFile is a single-file journal recovered and reopened for append
// by OpenJournal.
type JournalFile struct {
	// State is the replayed state (fresh when the file did not exist).
	State *State
	// Log appends to File under the requested durability options.
	Log *Log
	// File is the underlying append handle; the caller owns Sync/Close at
	// shutdown.
	File *os.File
	// Dropped is the torn-tail diagnostic (nil when the journal was clean).
	Dropped error
	// Truncated is how many bytes of torn tail were removed before the
	// file was reopened for append.
	Truncated int64
}

// OpenJournal recovers a single-file journal and reopens it for
// appending, truncating any torn tail *first* so new events are never
// written after corrupt bytes.  Without the truncation, a crash mid-write
// followed by a restart would append valid events after the torn line —
// and the next recovery, which stops at the first corrupt line, would
// silently drop them.
func OpenJournal(path string, numCategories int, opts LogOptions) (*JournalFile, error) {
	jf := &JournalFile{}
	// A fresh journal is written in the requested format; an existing one
	// keeps its on-disk format so a stream never mixes encodings.
	format, headerWritten := opts.Format, false
	if f, err := os.Open(path); err == nil {
		fi, statErr := f.Stat()
		if statErr != nil {
			f.Close()
			return nil, fmt.Errorf("platform: stating journal: %w", statErr)
		}
		events, valid, detected, dropped := readLogPartialDetect(f)
		f.Close()
		state, replayErr := Replay(numCategories, events)
		if replayErr != nil {
			return nil, replayErr
		}
		jf.State, jf.Dropped = state, dropped
		if valid > 0 {
			format, headerWritten = detected, detected == FormatBinary
		}
		if valid < fi.Size() {
			if err := os.Truncate(path, valid); err != nil {
				return nil, fmt.Errorf("platform: truncating torn journal tail: %w", err)
			}
			jf.Truncated = fi.Size() - valid
		}
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("platform: opening journal: %w", err)
	}
	if jf.State == nil {
		state, err := NewState(numCategories)
		if err != nil {
			return nil, err
		}
		jf.State = state
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("platform: opening journal for append: %w", err)
	}
	jf.File = f
	jf.Log = newLogAt(f, opts, format, headerWritten)
	return jf, nil
}
