package platform

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Log is an append-only JSONL event log.  One event per line keeps the
// format greppable, streamable and recoverable: a torn final line (crash
// mid-write) is detected and reported with its offset rather than silently
// corrupting a replay.
type Log struct {
	w io.Writer
}

// NewLog starts appending to w.  The caller owns w's lifecycle (file,
// buffer, network); Log never closes it.
func NewLog(w io.Writer) *Log { return &Log{w: w} }

// Append writes one event as a JSON line.
func (l *Log) Append(e Event) error {
	if err := e.Validate(); err != nil {
		return err
	}
	line, err := e.MarshalJSONL()
	if err != nil {
		return err
	}
	if _, err := l.w.Write(line); err != nil {
		return fmt.Errorf("platform: appending to log: %w", err)
	}
	return nil
}

// ReadLog parses a JSONL event stream.  Every event is validated; sequence
// numbers must be strictly increasing (gaps are allowed — a compacted log
// keeps original numbering).
func ReadLog(r io.Reader) ([]Event, error) {
	var events []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineNo := 0
	var lastSeq uint64
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(line, &e); err != nil {
			return nil, fmt.Errorf("platform: log line %d: %w", lineNo, err)
		}
		if err := e.Validate(); err != nil {
			return nil, fmt.Errorf("platform: log line %d: %w", lineNo, err)
		}
		if e.Seq != 0 && e.Seq <= lastSeq {
			return nil, fmt.Errorf("platform: log line %d: sequence %d not increasing (last %d)",
				lineNo, e.Seq, lastSeq)
		}
		if e.Seq != 0 {
			lastSeq = e.Seq
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("platform: reading log: %w", err)
	}
	return events, nil
}

// ReplayLog reads a JSONL stream and replays it onto a fresh state.
func ReplayLog(numCategories int, r io.Reader) (*State, error) {
	events, err := ReadLog(r)
	if err != nil {
		return nil, err
	}
	return Replay(numCategories, events)
}

// ReadLogPartial is the crash-recovery variant of ReadLog: it returns every
// valid event up to the first corrupted line together with a diagnostic
// describing what was dropped (nil when the log was clean).  A process that
// died mid-Append leaves a torn final line; recovering the valid prefix and
// truncating is the standard journal-recovery policy, and the diagnostic
// lets the operator decide whether a *mid-log* corruption deserves a harder
// look.
func ReadLogPartial(r io.Reader) (events []Event, dropped error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineNo := 0
	var lastSeq uint64
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(line, &e); err != nil {
			return events, fmt.Errorf("platform: log line %d corrupt (%v): recovered %d events", lineNo, err, len(events))
		}
		if err := e.Validate(); err != nil {
			return events, fmt.Errorf("platform: log line %d invalid (%v): recovered %d events", lineNo, err, len(events))
		}
		if e.Seq != 0 && e.Seq <= lastSeq {
			return events, fmt.Errorf("platform: log line %d out of order: recovered %d events", lineNo, len(events))
		}
		if e.Seq != 0 {
			lastSeq = e.Seq
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		return events, fmt.Errorf("platform: reading log: %w (recovered %d events)", err, len(events))
	}
	return events, nil
}

// RecoverLog replays the valid prefix of a possibly-torn journal onto a
// fresh state.  The returned diagnostic is non-nil when lines were dropped.
func RecoverLog(numCategories int, r io.Reader) (*State, error, error) {
	events, dropped := ReadLogPartial(r)
	state, err := Replay(numCategories, events)
	return state, err, dropped
}
