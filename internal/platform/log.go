package platform

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"time"
)

// Journal is the sink Service journals applied events into.  *Log (one
// file) and *SegmentedLog (rotating directory) both implement it.  Append
// is called under the state mutex (State.ApplyJournaled), so
// implementations see events in strictly increasing sequence order.
type Journal interface {
	Append(e Event) error
}

// FsyncPolicy selects how hard Append pushes a line toward stable storage.
type FsyncPolicy int

const (
	// FsyncNever trusts the OS page cache: a process crash loses nothing,
	// a machine crash may lose the tail.  The default, and the right
	// trade-off for an experiment platform.
	FsyncNever FsyncPolicy = iota
	// FsyncAlways calls Sync after every appended line when the underlying
	// writer supports it (*os.File does); a machine crash then loses at
	// most the line being written — exactly the torn tail ReadLogPartial
	// recovers from.
	FsyncAlways
)

// LogOptions tunes the journal's durability behaviour.  The zero value is
// the seed semantics: no fsync, no retries.
type LogOptions struct {
	Fsync FsyncPolicy
	// MaxRetries is how many times a failed Write is retried (the unwritten
	// suffix only) before Append gives up; 0 disables retrying.  Transient
	// full-disk or EINTR-style blips are absorbed here instead of failing a
	// round.
	MaxRetries int
	// RetryBackoff is the sleep before the first retry, doubling per
	// attempt; 0 means 1ms.
	RetryBackoff time.Duration
	// Syncer is the fsync target for FsyncAlways when the write path hides
	// the underlying file behind wrappers (byte counters, fault injectors)
	// that don't forward Sync.  Nil falls back to asserting Sync on the
	// writer itself.
	Syncer interface{ Sync() error }
}

// ErrLogPoisoned marks a journal that failed partway through a line.  All
// later Appends are refused: the file ends mid-line, so appending more
// events would place them *after* the corruption, and recovery — which
// truncates at the first corrupt line — would silently drop them while the
// in-memory state retained them.  Refusing keeps "recovered state ==
// applied state minus rolled-back events" true.
var ErrLogPoisoned = errors.New("platform: journal poisoned by a partial line write")

// syncer is the optional durability hook of the underlying writer
// (*os.File implements it).
type syncer interface{ Sync() error }

// Log is an append-only JSONL event log.  One event per line keeps the
// format greppable, streamable and recoverable: a torn final line (crash
// mid-write) is detected and reported with its offset rather than silently
// corrupting a replay.
//
// Log methods are not safe for concurrent use; the platform serialises
// Appends under the state mutex (State.ApplyJournaled), which is also what
// keeps journal order identical to sequence order.
type Log struct {
	w        io.Writer
	opts     LogOptions
	poisoned bool
}

// NewLog starts appending to w with zero-value options.  The caller owns
// w's lifecycle (file, buffer, network); Log never closes it.
func NewLog(w io.Writer) *Log { return &Log{w: w} }

// NewLogWithOptions starts appending to w under the given durability
// options.
func NewLogWithOptions(w io.Writer, opts LogOptions) *Log {
	return &Log{w: w, opts: opts}
}

// Poisoned reports whether a partial-line failure has made the journal
// unappendable (see ErrLogPoisoned).
func (l *Log) Poisoned() bool { return l.poisoned }

// Append writes one event as a JSON line, retrying transient write
// failures on the unwritten suffix and fsyncing per the policy.  An error
// return means the line is NOT durably in the log: either nothing of it
// was written (retryable — the log stays line-aligned) or it is torn
// mid-line, in which case the log is poisoned and says so.
func (l *Log) Append(e Event) error {
	if l.poisoned {
		return ErrLogPoisoned
	}
	if err := e.Validate(); err != nil {
		return err
	}
	line, err := e.MarshalJSONL()
	if err != nil {
		return err
	}
	if err := l.write(line); err != nil {
		return err
	}
	if l.opts.Fsync == FsyncAlways {
		s := l.opts.Syncer
		if s == nil {
			s, _ = l.w.(syncer)
		}
		if s != nil {
			if err := s.Sync(); err != nil {
				// The line may or may not have reached the platter; assume
				// the worst so recovery semantics stay conservative.
				l.poisoned = true
				return fmt.Errorf("platform: fsyncing log: %w", err)
			}
		}
	}
	return nil
}

// write pushes line with bounded retry-with-backoff, always resuming at
// the first unwritten byte so a short write never duplicates a prefix.
func (l *Log) write(line []byte) error {
	backoff := l.opts.RetryBackoff
	if backoff <= 0 {
		backoff = time.Millisecond
	}
	n := 0
	for attempt := 0; ; attempt++ {
		k, err := l.w.Write(line[n:])
		n += k
		if n >= len(line) && err == nil {
			return nil
		}
		if err == nil {
			err = io.ErrShortWrite
		}
		if attempt >= l.opts.MaxRetries {
			if n > 0 {
				l.poisoned = true
				return fmt.Errorf("platform: appending to log: %w (wrote %d/%d bytes; journal poisoned)", err, n, len(line))
			}
			return fmt.Errorf("platform: appending to log: %w", err)
		}
		time.Sleep(backoff)
		backoff *= 2
	}
}

// ReadLog parses a JSONL event stream.  Every event is validated; sequence
// numbers must be strictly increasing (gaps are allowed — a compacted log
// keeps original numbering).
func ReadLog(r io.Reader) ([]Event, error) {
	var events []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineNo := 0
	var lastSeq uint64
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(line, &e); err != nil {
			return nil, fmt.Errorf("platform: log line %d: %w", lineNo, err)
		}
		if err := e.Validate(); err != nil {
			return nil, fmt.Errorf("platform: log line %d: %w", lineNo, err)
		}
		if e.Seq != 0 && e.Seq <= lastSeq {
			return nil, fmt.Errorf("platform: log line %d: sequence %d not increasing (last %d)",
				lineNo, e.Seq, lastSeq)
		}
		if e.Seq != 0 {
			lastSeq = e.Seq
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("platform: reading log: %w", err)
	}
	return events, nil
}

// ReplayLog reads a JSONL stream and replays it onto a fresh state.
func ReplayLog(numCategories int, r io.Reader) (*State, error) {
	events, err := ReadLog(r)
	if err != nil {
		return nil, err
	}
	return Replay(numCategories, events)
}

// ReadLogPartial is the crash-recovery variant of ReadLog: it returns every
// valid event up to the first corrupted line together with a diagnostic
// describing what was dropped (nil when the log was clean).  A process that
// died mid-Append leaves a torn final line; recovering the valid prefix and
// truncating is the standard journal-recovery policy, and the diagnostic
// lets the operator decide whether a *mid-log* corruption deserves a harder
// look.
func ReadLogPartial(r io.Reader) (events []Event, dropped error) {
	events, _, dropped = readLogPartialOffset(r)
	return events, dropped
}

// readLogPartialOffset is ReadLogPartial plus the byte offset of the end
// of the last fully-valid line — the truncation point that lets a
// reopened journal resume appending on a clean line boundary instead of
// after garbage.  A final line lacking its newline is treated as torn
// even when its bytes happen to parse: accepting it while truncation (or
// a later append) destroys it would let memory and disk disagree.
func readLogPartialOffset(r io.Reader) (events []Event, validBytes int64, dropped error) {
	br := bufio.NewReaderSize(r, 64*1024)
	lineNo := 0
	var lastSeq uint64
	for {
		line, err := br.ReadBytes('\n')
		if err != nil && err != io.EOF {
			return events, validBytes, fmt.Errorf("platform: reading log: %w (recovered %d events)", err, len(events))
		}
		if len(line) == 0 {
			return events, validBytes, nil
		}
		lineNo++
		if err == io.EOF {
			return events, validBytes, fmt.Errorf("platform: log line %d torn (no trailing newline): recovered %d events", lineNo, len(events))
		}
		trimmed := bytes.TrimSuffix(line, []byte("\n"))
		if len(trimmed) == 0 {
			validBytes += int64(len(line))
			continue
		}
		var e Event
		if err := json.Unmarshal(trimmed, &e); err != nil {
			return events, validBytes, fmt.Errorf("platform: log line %d corrupt (%v): recovered %d events", lineNo, err, len(events))
		}
		if err := e.Validate(); err != nil {
			return events, validBytes, fmt.Errorf("platform: log line %d invalid (%v): recovered %d events", lineNo, err, len(events))
		}
		if e.Seq != 0 && e.Seq <= lastSeq {
			return events, validBytes, fmt.Errorf("platform: log line %d out of order: recovered %d events", lineNo, len(events))
		}
		if e.Seq != 0 {
			lastSeq = e.Seq
		}
		events = append(events, e)
		validBytes += int64(len(line))
	}
}

// RecoverLog replays the valid prefix of a possibly-torn journal onto a
// fresh state.  The returned diagnostic is non-nil when lines were dropped.
func RecoverLog(numCategories int, r io.Reader) (*State, error, error) {
	events, dropped := ReadLogPartial(r)
	state, err := Replay(numCategories, events)
	return state, err, dropped
}

// JournalFile is a single-file journal recovered and reopened for append
// by OpenJournal.
type JournalFile struct {
	// State is the replayed state (fresh when the file did not exist).
	State *State
	// Log appends to File under the requested durability options.
	Log *Log
	// File is the underlying append handle; the caller owns Sync/Close at
	// shutdown.
	File *os.File
	// Dropped is the torn-tail diagnostic (nil when the journal was clean).
	Dropped error
	// Truncated is how many bytes of torn tail were removed before the
	// file was reopened for append.
	Truncated int64
}

// OpenJournal recovers a single-file journal and reopens it for
// appending, truncating any torn tail *first* so new events are never
// written after corrupt bytes.  Without the truncation, a crash mid-write
// followed by a restart would append valid events after the torn line —
// and the next recovery, which stops at the first corrupt line, would
// silently drop them.
func OpenJournal(path string, numCategories int, opts LogOptions) (*JournalFile, error) {
	jf := &JournalFile{}
	if f, err := os.Open(path); err == nil {
		fi, statErr := f.Stat()
		if statErr != nil {
			f.Close()
			return nil, fmt.Errorf("platform: stating journal: %w", statErr)
		}
		events, valid, dropped := readLogPartialOffset(f)
		f.Close()
		state, replayErr := Replay(numCategories, events)
		if replayErr != nil {
			return nil, replayErr
		}
		jf.State, jf.Dropped = state, dropped
		if valid < fi.Size() {
			if err := os.Truncate(path, valid); err != nil {
				return nil, fmt.Errorf("platform: truncating torn journal tail: %w", err)
			}
			jf.Truncated = fi.Size() - valid
		}
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("platform: opening journal: %w", err)
	}
	if jf.State == nil {
		state, err := NewState(numCategories)
		if err != nil {
			return nil, err
		}
		jf.State = state
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("platform: opening journal for append: %w", err)
	}
	jf.File = f
	jf.Log = NewLogWithOptions(f, opts)
	return jf, nil
}
