package platform

// Tests for the binary journal format (binlog.go): round-tripping,
// exhaustive byte-flip and truncation mutation coverage, format
// auto-detection, and mixed-format directory recovery.  The mutation
// suite is the format's safety argument: every single-byte corruption of
// a valid stream must be detected, and partial recovery must never
// surface an event that was not appended.

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"reflect"
	"testing"
)

// binlogScript returns one already-sequenced event of every kind.
func binlogScript() []Event {
	w := validWorker()
	w.ID = 7
	tk := validTask()
	tk.ID = 9
	wid, tid, round := 7, 9, 1
	return []Event{
		{Seq: 1, Kind: EventWorkerJoined, Worker: &w},
		{Seq: 2, Kind: EventTaskPosted, Task: &tk},
		{Seq: 3, Kind: EventWorkerLeft, WorkerID: &wid},
		{Seq: 4, Kind: EventTaskClosed, TaskID: &tid},
		{Seq: 5, Kind: EventRoundClosed, Round: &round},
	}
}

// encodeBinaryStream appends the script through a binary Log and returns
// the stream bytes plus every record boundary offset (magic included).
func encodeBinaryStream(t *testing.T, script []Event) ([]byte, []int64) {
	t.Helper()
	var buf bytes.Buffer
	l := NewLogWithOptions(&buf, LogOptions{Format: FormatBinary})
	boundaries := []int64{0, int64(len(binaryLogMagic))}
	for i := range script {
		if err := l.Append(script[i]); err != nil {
			t.Fatal(err)
		}
		boundaries = append(boundaries, int64(buf.Len()))
	}
	return buf.Bytes(), boundaries
}

func TestBinaryLogRoundTrip(t *testing.T) {
	script := binlogScript()
	data, _ := encodeBinaryStream(t, script)
	if !bytes.HasPrefix(data, []byte(binaryLogMagic)) {
		t.Fatal("stream does not open with the format magic")
	}
	got, err := ReadLog(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, script) {
		t.Fatalf("round trip diverged:\n got %+v\nwant %+v", got, script)
	}
	// Appending the decoded events to a fresh binary log is a byte-level
	// fixed point — the property follower replication relies on.
	var again bytes.Buffer
	l := NewLogWithOptions(&again, LogOptions{Format: FormatBinary})
	for i := range got {
		if err := l.Append(got[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(again.Bytes(), data) {
		t.Fatal("re-encoding decoded events is not byte-identical")
	}
}

// TestBinaryLogMutationDetection flips every byte of a valid stream three
// ways and asserts the corruption is always detected: the strict reader
// errors, and the partial reader returns an exact prefix of the original
// events — never a different event — with a diagnostic.
func TestBinaryLogMutationDetection(t *testing.T) {
	script := binlogScript()
	data, _ := encodeBinaryStream(t, script)
	assertPrefix := func(events []Event) error {
		if len(events) > len(script) {
			return fmt.Errorf("recovered %d events from a %d-event stream", len(events), len(script))
		}
		for i := range events {
			if !reflect.DeepEqual(events[i], script[i]) {
				return fmt.Errorf("recovered event %d mutated:\n got %+v\nwant %+v", i, events[i], script[i])
			}
		}
		return nil
	}
	for off := range data {
		for _, mask := range []byte{0x01, 0x80, 0xFF} {
			mutated := append([]byte(nil), data...)
			mutated[off] ^= mask
			if _, err := ReadLog(bytes.NewReader(mutated)); err == nil {
				t.Fatalf("byte %d ^ %#02x: strict read accepted a corrupted stream", off, mask)
			}
			events, dropped := ReadLogPartial(bytes.NewReader(mutated))
			if dropped == nil {
				t.Fatalf("byte %d ^ %#02x: partial read reported a clean stream", off, mask)
			}
			if err := assertPrefix(events); err != nil {
				t.Fatalf("byte %d ^ %#02x: %v", off, mask, err)
			}
		}
	}
}

// TestBinaryLogTruncationDetection cuts the stream at every possible
// length: record boundaries recover cleanly (the crash-between-appends
// case), everything else is reported as a torn tail, and either way the
// recovered events are exactly the longest whole-record prefix.
func TestBinaryLogTruncationDetection(t *testing.T) {
	script := binlogScript()
	data, boundaries := encodeBinaryStream(t, script)
	isBoundary := map[int64]int{} // offset → number of whole records before it
	for i, b := range boundaries {
		n := i - 1 // boundaries[0] is offset 0, [1] is after the magic
		if n < 0 {
			n = 0
		}
		isBoundary[b] = n
	}
	for cut := 0; cut <= len(data); cut++ {
		events, dropped := ReadLogPartial(bytes.NewReader(data[:cut]))
		wantEvents := 0
		for _, b := range boundaries {
			if b <= int64(cut) {
				wantEvents = isBoundary[b]
			}
		}
		if len(events) != wantEvents {
			t.Fatalf("cut %d: recovered %d events, want %d", cut, len(events), wantEvents)
		}
		for i := range events {
			if !reflect.DeepEqual(events[i], script[i]) {
				t.Fatalf("cut %d: recovered event %d differs from the original", cut, i)
			}
		}
		if _, clean := isBoundary[int64(cut)]; clean {
			if dropped != nil {
				t.Fatalf("cut %d at a record boundary reported torn: %v", cut, dropped)
			}
		} else if dropped == nil {
			t.Fatalf("cut %d mid-record reported clean", cut)
		}
	}
}

func TestParseJournalFormat(t *testing.T) {
	for in, want := range map[string]JournalFormat{
		"json": FormatJSONL, "jsonl": FormatJSONL,
		"binary": FormatBinary, "bin": FormatBinary,
	} {
		got, err := ParseJournalFormat(in)
		if err != nil || got != want {
			t.Fatalf("ParseJournalFormat(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseJournalFormat("protobuf"); err == nil {
		t.Fatal("unknown format accepted")
	}
	if FormatJSONL.String() != "json" || FormatBinary.String() != "binary" {
		t.Fatal("JournalFormat String spelling changed")
	}
}

// TestOpenJournalBinarySingleFile exercises the single-file path: write
// binary, crash-truncate mid-record, reopen (which must heal and keep the
// on-disk format), append more, replay.
func TestOpenJournalBinarySingleFile(t *testing.T) {
	path := t.TempDir() + "/market.bin"
	opts := LogOptions{Format: FormatBinary}
	jf, err := OpenJournal(path, 3, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := jf.State.ApplyJournaled(NewWorkerJoined(validWorker()), jf.Log.Append); err != nil {
			t.Fatal(err)
		}
	}
	if err := jf.File.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the tail mid-record.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	// Reopen requesting JSONL: the existing stream must keep its binary
	// encoding anyway, and the torn record must be truncated and reported.
	jf2, err := OpenJournal(path, 3, LogOptions{Format: FormatJSONL})
	if err != nil {
		t.Fatal(err)
	}
	if jf2.Dropped == nil || jf2.Truncated == 0 {
		t.Fatalf("torn tail not reported: dropped=%v truncated=%d", jf2.Dropped, jf2.Truncated)
	}
	if w, _ := jf2.State.Counts(); w != 4 {
		t.Fatalf("recovered %d workers, want 4", w)
	}
	if _, err := jf2.State.ApplyJournaled(NewWorkerJoined(validWorker()), jf2.Log.Append); err != nil {
		t.Fatal(err)
	}
	if err := jf2.File.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := ReadLog(f)
	if err != nil {
		t.Fatalf("journal not clean binary after heal+append: %v", err)
	}
	if len(events) != 5 {
		t.Fatalf("replayed %d events, want 5", len(events))
	}
}

// TestMixedFormatDirRecovery runs the same event script into directories
// that switch encodings at different points (and never), then asserts all
// of them recover to byte-identical snapshots — the transparency contract
// of per-segment format detection.
func TestMixedFormatDirRecovery(t *testing.T) {
	run := func(formats [2]JournalFormat) ([]byte, string) {
		dir := t.TempDir()
		st := mustState(t)
		// The script resolves removal targets from the applied events, so
		// it depends only on the (deterministic) ID assignment, never on
		// guessed IDs.  Phase boundary at iteration 12 of 24.
		var workerIDs, taskIDs []int
		for p, format := range formats {
			seg, err := OpenSegmentedLog(dir, SegmentOptions{
				MaxBytes: 2048, // small enough to rotate within each phase
				Log:      LogOptions{Format: format},
			})
			if err != nil {
				t.Fatal(err)
			}
			journal := func(e Event) error { return seg.Append(e) }
			for i := p * 12; i < (p+1)*12; i++ {
				we, err := st.ApplyJournaled(NewWorkerJoined(validWorker()), journal)
				if err != nil {
					t.Fatal(err)
				}
				workerIDs = append(workerIDs, we.Worker.ID)
				te, err := st.ApplyJournaled(NewTaskPosted(validTask()), journal)
				if err != nil {
					t.Fatal(err)
				}
				taskIDs = append(taskIDs, te.Task.ID)
				if i%5 == 4 {
					if _, err := st.ApplyJournaled(NewWorkerLeft(workerIDs[0]), journal); err != nil {
						t.Fatal(err)
					}
					workerIDs = workerIDs[1:]
					if _, err := st.ApplyJournaled(NewTaskClosed(taskIDs[0]), journal); err != nil {
						t.Fatal(err)
					}
					taskIDs = taskIDs[1:]
				}
			}
			if err := seg.Close(); err != nil {
				t.Fatal(err)
			}
		}
		rec, info, err := RecoverDir(dir, 3)
		if err != nil {
			t.Fatal(err)
		}
		if info.TailDropped != nil {
			t.Fatalf("clean dir recovered with torn tail: %v", info.TailDropped)
		}
		var snap bytes.Buffer
		if _, err := rec.EncodeSnapshot(&snap); err != nil {
			t.Fatal(err)
		}
		return snap.Bytes(), fmt.Sprintf("%v", formats)
	}
	ref, refName := run([2]JournalFormat{FormatJSONL, FormatJSONL})
	for _, formats := range [][2]JournalFormat{
		{FormatJSONL, FormatBinary},
		{FormatBinary, FormatJSONL},
		{FormatBinary, FormatBinary},
	} {
		snap, name := run(formats)
		if !bytes.Equal(snap, ref) {
			t.Fatalf("recovery of %s dir diverges from %s dir", name, refName)
		}
	}
}

// FuzzBinaryRecordDecode asserts the binary reader never panics, rejects
// every corrupt stream with ErrRecordCorrupt, and round-trips whatever it
// accepts.
func FuzzBinaryRecordDecode(f *testing.F) {
	script := binlogScript()
	var valid bytes.Buffer
	l := NewLogWithOptions(&valid, LogOptions{Format: FormatBinary})
	for i := range script {
		if err := l.Append(script[i]); err != nil {
			f.Fatal(err)
		}
	}
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:valid.Len()/2])
	f.Add([]byte(binaryLogMagic))
	f.Add([]byte("MBAJRNL\x02junk"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		events, err := ReadLog(bytes.NewReader(data))
		if err != nil {
			if bytes.HasPrefix(data, []byte(binaryLogMagic)) && !errors.Is(err, ErrRecordCorrupt) {
				t.Fatalf("binary stream rejection does not wrap ErrRecordCorrupt: %v", err)
			}
			return
		}
		if !bytes.HasPrefix(data, []byte(binaryLogMagic)) {
			return // accepted as JSONL; FuzzReadLog covers that codec
		}
		var out bytes.Buffer
		l := NewLogWithOptions(&out, LogOptions{Format: FormatBinary})
		for i := range events {
			if vErr := events[i].Validate(); vErr != nil {
				t.Fatalf("accepted stream holds invalid event: %v", vErr)
			}
			if err := l.Append(events[i]); err != nil {
				t.Fatalf("accepted event does not re-encode: %v", err)
			}
		}
		again, err := ReadLog(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded stream does not decode: %v", err)
		}
		if len(events) > 0 && !reflect.DeepEqual(again, events) {
			t.Fatal("decode→encode→decode is not a fixed point")
		}
	})
}
