package platform

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/benefit"
	"repro/internal/core"
)

// jsonBody encodes v as a JSON request body.
func jsonBody(t *testing.T, v any) io.Reader {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(b)
}

// jsonRaw wraps a literal body string.
func jsonRaw(s string) io.Reader { return strings.NewReader(s) }

// admissionServerOptions returns server options with admission enabled
// and deterministic, test-friendly knobs.
func admissionServerOptions() ServerOptions {
	opts := NewServerOptions()
	opts.Admission = NewAdmissionOptions()
	return opts
}

func getJSON(t *testing.T, url string) (*http.Response, HealthStatus) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h HealthStatus
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	return resp, h
}

func TestServerAdmissionShedsWith429(t *testing.T) {
	opts := admissionServerOptions()
	opts.Admission.RateMedium = 2 // burst 2, then shed
	ts := newLimitedServer(t, core.Greedy{Kind: core.MutualWeight}, opts)

	statuses := map[int]int{}
	var retryAfter string
	for i := 0; i < 10; i++ {
		resp, _ := postJSON(t, ts.URL+"/v1/workers", validWorker())
		statuses[resp.StatusCode]++
		if resp.StatusCode == http.StatusTooManyRequests && retryAfter == "" {
			retryAfter = resp.Header.Get("Retry-After")
		}
	}
	if statuses[http.StatusCreated] == 0 {
		t.Fatalf("no request admitted within burst: %v", statuses)
	}
	if statuses[http.StatusTooManyRequests] == 0 {
		t.Fatalf("no request shed past the bucket: %v", statuses)
	}
	if retryAfter == "" {
		t.Fatal("429 carried no Retry-After")
	}
	if secs, err := strconv.Atoi(retryAfter); err != nil || secs < 1 {
		t.Fatalf("Retry-After %q is not a positive integer-seconds value", retryAfter)
	}

	// The shed counters are visible in healthz, and sustained shedding
	// reports "overloaded" — at HTTP 200, because overload is not failure.
	resp, h := getJSON(t, ts.URL+"/v1/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d during overload, want 200", resp.StatusCode)
	}
	if h.Admission == nil {
		t.Fatal("healthz missing admission payload")
	}
	if h.Admission.Shed.Medium == 0 {
		t.Fatalf("healthz shed counter zero after %d sheds", statuses[http.StatusTooManyRequests])
	}
}

func TestServerAdmissionPerClientHeader(t *testing.T) {
	opts := admissionServerOptions()
	opts.Admission.RateMedium = 1
	opts.Admission.BrownoutShedRate = 2 // isolate bucket behaviour
	ts := newLimitedServer(t, core.Greedy{Kind: core.MutualWeight}, opts)

	post := func(client string) int {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/workers", jsonBody(t, validWorker()))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		if client != "" {
			req.Header.Set(ClientHeader, client)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	if got := post("alice"); got != http.StatusCreated {
		t.Fatalf("alice's first request: %d", got)
	}
	if got := post("alice"); got != http.StatusTooManyRequests {
		t.Fatalf("alice's second request: %d, want 429 from her own bucket", got)
	}
	if got := post("bob"); got != http.StatusCreated {
		t.Fatalf("bob's request: %d — alice's bucket must not affect him", got)
	}
}

func TestServerAdmissionOffPreservesSeedSemantics(t *testing.T) {
	// Zero-value Admission (the default in NewServerOptions): nothing is
	// rate limited, nothing shed, healthz carries no admission payload.
	ts := newLimitedServer(t, core.Greedy{Kind: core.MutualWeight}, NewServerOptions())
	for i := 0; i < 50; i++ {
		resp, out := postJSON(t, ts.URL+"/v1/workers", validWorker())
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("request %d status %d (%v) with admission off", i, resp.StatusCode, out)
		}
	}
	_, h := getJSON(t, ts.URL+"/v1/healthz")
	if h.Admission != nil {
		t.Fatal("healthz carries admission payload with admission off")
	}
	if h.Status != "ok" {
		t.Fatalf("healthz status %q with admission off", h.Status)
	}
}

func TestServerAdmissionBrownoutRecovery(t *testing.T) {
	opts := admissionServerOptions()
	opts.Admission.RateMedium = 1
	opts.Admission.BrownoutHalflife = 50 * time.Millisecond
	ts := newLimitedServer(t, core.Greedy{Kind: core.MutualWeight}, opts)

	// Hammer into brownout.
	for i := 0; i < 30; i++ {
		resp, _ := postJSON(t, ts.URL+"/v1/workers", validWorker())
		resp.Body.Close()
	}
	resp, h := getJSON(t, ts.URL+"/v1/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz %d during brownout, want 200", resp.StatusCode)
	}
	if h.Status != StatusOverloaded {
		t.Fatalf("healthz status %q during brownout, want %q", h.Status, StatusOverloaded)
	}

	// The storm stops; the decayed signal must clear within a probe
	// interval or so (here: many halflives).
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, h = getJSON(t, ts.URL+"/v1/healthz")
		if h.Status == "ok" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("healthz stuck at %q after the storm stopped", h.Status)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestServerDecodeRejectsTrailingGarbage(t *testing.T) {
	ts := newLimitedServer(t, core.Greedy{Kind: core.MutualWeight}, NewServerOptions())

	cases := []struct {
		name, path, body string
	}{
		{"worker", "/v1/workers", `{"capacity":2,"accuracy":[0.8,0.6,0.7],"interest":[0.9,0.1,0.4],"specialties":[0,2],"reservation_wage":1}junk`},
		{"task", "/v1/tasks", `{"category":0,"replication":2,"payment":5,"difficulty":0.3}{"category":1}`},
		{"batch", "/v1/batch", `[]garbage`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+c.path, "application/json", jsonRaw(c.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("trailing garbage on %s: status %d, want 400", c.path, resp.StatusCode)
			}
		})
	}
	// Nothing was applied: the state must still be empty.
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats map[string]int
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats["workers"] != 0 || stats["tasks"] != 0 {
		t.Fatalf("garbage-suffixed bodies were applied: %v", stats)
	}
	// A clean body still works.
	if r2, out := postJSON(t, ts.URL+"/v1/workers", validWorker()); r2.StatusCode != http.StatusCreated {
		t.Fatalf("clean request status %d (%v)", r2.StatusCode, out)
	}
}

// TestServerTimeoutExemptPaths proves the RequestTimeout exemption table:
// with a 1ns timeout and admission on, every non-exempt route's context
// deadline has already passed at admission time (429), while the exempt
// routes (POST /v1/rounds, GET /v1/snapshot) carry no deadline at all and
// reach their handler.  Runs against both the single-market and the
// sharded backend.
func TestServerTimeoutExemptPaths(t *testing.T) {
	backends := map[string]func(t *testing.T) Backend{
		"service": func(t *testing.T) Backend {
			svc, err := NewService(mustState(t), core.Greedy{Kind: core.MutualWeight}, benefit.DefaultParams(), nil, 1)
			if err != nil {
				t.Fatal(err)
			}
			return svc
		},
		"sharded": func(t *testing.T) Backend {
			bundles := make([]Shard, 2)
			for i := range bundles {
				bundles[i] = Shard{State: mustState(t), Solver: core.Greedy{Kind: core.MutualWeight}}
			}
			ss, err := NewShardedService(bundles, benefit.DefaultParams(), ShardedOptions{}, 1)
			if err != nil {
				t.Fatal(err)
			}
			return ss
		},
	}
	routes := []struct {
		method, path string
		exempt       bool
	}{
		{http.MethodPost, "/v1/rounds", true},
		{http.MethodGet, "/v1/snapshot", true},
		{http.MethodPost, "/v1/workers", false},
		{http.MethodPost, "/v1/tasks", false},
		{http.MethodPost, "/v1/batch", false},
		{http.MethodGet, "/v1/stats", false},
		{http.MethodPost, "/v1/checkpoint", false},
	}
	for name, mk := range backends {
		t.Run(name, func(t *testing.T) {
			opts := admissionServerOptions()
			opts.RequestTimeout = time.Nanosecond // expired by the time admission sees it
			ts := httptest.NewServer(NewServerWithOptions(mk(t), opts))
			t.Cleanup(ts.Close)
			for _, rt := range routes {
				req, err := http.NewRequest(rt.method, ts.URL+rt.path, jsonRaw("{}"))
				if err != nil {
					t.Fatal(err)
				}
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					t.Fatal(err)
				}
				resp.Body.Close()
				gotShed := resp.StatusCode == http.StatusTooManyRequests
				if rt.exempt && gotShed {
					t.Errorf("%s %s: exempt route shed by the expired request timeout", rt.method, rt.path)
				}
				if !rt.exempt && !gotShed {
					t.Errorf("%s %s: status %d, want 429 under an expired request timeout", rt.method, rt.path, resp.StatusCode)
				}
			}
		})
	}
}

// TestTimeoutExemptPredicate pins the exemption list itself.
func TestTimeoutExemptPredicate(t *testing.T) {
	cases := []struct {
		method, path string
		want         bool
	}{
		{http.MethodPost, "/v1/rounds", true},
		{http.MethodGet, "/v1/snapshot", true},
		{http.MethodGet, "/v1/rounds", false},
		{http.MethodPost, "/v1/snapshot", false},
		{http.MethodPost, "/v1/workers", false},
		{http.MethodGet, "/v1/healthz", false},
		{http.MethodPost, "/v1/batch", false},
	}
	for _, c := range cases {
		if got := timeoutExempt(c.method, c.path); got != c.want {
			t.Errorf("timeoutExempt(%s %s) = %v, want %v", c.method, c.path, got, c.want)
		}
	}
}
