// Package platform is the operational layer of the reproduction: an
// event-sourced labor-market state machine plus the assignment service and
// HTTP API a real deployment of the paper's system would run.
//
// The batch layers (market/core) work on immutable snapshots; a live
// platform instead sees a *stream* of events — workers joining and leaving,
// tasks being posted and cancelled — and periodically closes an assignment
// round over whatever is currently open.  This package provides:
//
//   - Event: the JSONL-encoded event vocabulary;
//   - State: the mutable market state machine with deterministic replay;
//   - Log: an append-only JSONL event log (write, read, replay);
//   - Service: rounds of assignment over the live state via any core.Solver;
//   - Server: a net/http JSON API over the service (cmd/mbaserve).
package platform

import (
	"encoding/json"
	"fmt"

	"repro/internal/market"
)

// EventKind enumerates the event vocabulary.
type EventKind string

// Event kinds.  The set is deliberately small: everything a bipartite labor
// market does is join/leave on one side and post/cancel on the other, plus
// the round marker that makes assignment points explicit in the log.
const (
	EventWorkerJoined EventKind = "worker_joined"
	EventWorkerLeft   EventKind = "worker_left"
	EventTaskPosted   EventKind = "task_posted"
	EventTaskClosed   EventKind = "task_closed"
	EventRoundClosed  EventKind = "round_closed"
	// EventEpochBumped is the replication-control record: a promotion fences
	// every earlier epoch.  Journaled like any other event so the fencing
	// decision itself replays, replicates, and survives recovery.
	EventEpochBumped EventKind = "epoch_bumped"
)

// Event is one log entry.  Exactly one payload field is set, matching Kind.
type Event struct {
	// Seq is the log sequence number, assigned by State.Apply (0 in
	// not-yet-applied events).
	Seq uint64 `json:"seq"`
	// Kind selects the payload.
	Kind EventKind `json:"kind"`

	// Worker is set for worker_joined.  Its ID field is ignored on input;
	// the state machine assigns platform-wide worker IDs.
	Worker *market.Worker `json:"worker,omitempty"`
	// WorkerID is set for worker_left.
	WorkerID *int `json:"worker_id,omitempty"`
	// Task is set for task_posted.  ID handled like Worker.ID.
	Task *market.Task `json:"task,omitempty"`
	// TaskID is set for task_closed.
	TaskID *int `json:"task_id,omitempty"`
	// Round is set for round_closed: the round number that just finished.
	Round *int `json:"round,omitempty"`
	// Epoch is set for epoch_bumped: the new (strictly higher) epoch.
	Epoch *uint64 `json:"epoch,omitempty"`
}

// Validate checks the kind/payload pairing.
func (e *Event) Validate() error {
	switch e.Kind {
	case EventWorkerJoined:
		if e.Worker == nil {
			return fmt.Errorf("platform: %s without worker payload", e.Kind)
		}
	case EventWorkerLeft:
		if e.WorkerID == nil {
			return fmt.Errorf("platform: %s without worker_id", e.Kind)
		}
	case EventTaskPosted:
		if e.Task == nil {
			return fmt.Errorf("platform: %s without task payload", e.Kind)
		}
	case EventTaskClosed:
		if e.TaskID == nil {
			return fmt.Errorf("platform: %s without task_id", e.Kind)
		}
	case EventRoundClosed:
		if e.Round == nil {
			return fmt.Errorf("platform: %s without round", e.Kind)
		}
	case EventEpochBumped:
		if e.Epoch == nil {
			return fmt.Errorf("platform: %s without epoch", e.Kind)
		}
		if *e.Epoch == 0 {
			return fmt.Errorf("platform: %s with zero epoch", e.Kind)
		}
	default:
		return fmt.Errorf("platform: unknown event kind %q", e.Kind)
	}
	return nil
}

// MarshalJSONL encodes the event as a single JSON line.
func (e *Event) MarshalJSONL() ([]byte, error) {
	b, err := json.Marshal(e)
	if err != nil {
		return nil, fmt.Errorf("platform: encoding event: %w", err)
	}
	return append(b, '\n'), nil
}

// NewWorkerJoined builds a worker_joined event.
func NewWorkerJoined(w market.Worker) Event {
	return Event{Kind: EventWorkerJoined, Worker: &w}
}

// NewWorkerLeft builds a worker_left event.
func NewWorkerLeft(id int) Event {
	return Event{Kind: EventWorkerLeft, WorkerID: &id}
}

// NewTaskPosted builds a task_posted event.
func NewTaskPosted(t market.Task) Event {
	return Event{Kind: EventTaskPosted, Task: &t}
}

// NewTaskClosed builds a task_closed event.
func NewTaskClosed(id int) Event {
	return Event{Kind: EventTaskClosed, TaskID: &id}
}

// NewRoundClosed builds a round_closed marker.
func NewRoundClosed(round int) Event {
	return Event{Kind: EventRoundClosed, Round: &round}
}

// NewEpochBumped builds an epoch_bumped control event.
func NewEpochBumped(epoch uint64) Event {
	return Event{Kind: EventEpochBumped, Epoch: &epoch}
}
