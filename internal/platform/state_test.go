package platform

import (
	"strings"
	"testing"

	"repro/internal/market"
)

// validWorker returns a valid 3-category worker profile.
func validWorker() market.Worker {
	return market.Worker{
		Capacity:        2,
		Accuracy:        []float64{0.8, 0.6, 0.7},
		Interest:        []float64{0.9, 0.1, 0.4},
		Specialties:     []int{0, 2},
		ReservationWage: 1,
	}
}

// validTask returns a valid task in category 0.
func validTask() market.Task {
	return market.Task{Category: 0, Replication: 2, Payment: 5, Difficulty: 0.3}
}

func mustState(t *testing.T) *State {
	t.Helper()
	s, err := NewState(3)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewStateValidation(t *testing.T) {
	if _, err := NewState(0); err == nil {
		t.Fatal("zero categories accepted")
	}
	if _, err := NewState(-1); err == nil {
		t.Fatal("negative categories accepted")
	}
}

func TestApplyWorkerLifecycle(t *testing.T) {
	s := mustState(t)
	e1, err := s.Apply(NewWorkerJoined(validWorker()))
	if err != nil {
		t.Fatal(err)
	}
	e2, err := s.Apply(NewWorkerJoined(validWorker()))
	if err != nil {
		t.Fatal(err)
	}
	if e1.Worker.ID == e2.Worker.ID {
		t.Fatal("platform assigned duplicate worker IDs")
	}
	if e1.Seq >= e2.Seq {
		t.Fatal("sequence numbers not increasing")
	}
	if w, _ := s.Counts(); w != 2 {
		t.Fatalf("workers = %d", w)
	}
	if _, err := s.Apply(NewWorkerLeft(e1.Worker.ID)); err != nil {
		t.Fatal(err)
	}
	if w, _ := s.Counts(); w != 1 {
		t.Fatalf("workers after leave = %d", w)
	}
	if _, err := s.Apply(NewWorkerLeft(e1.Worker.ID)); err == nil {
		t.Fatal("double leave accepted")
	}
}

func TestApplyTaskLifecycle(t *testing.T) {
	s := mustState(t)
	e, err := s.Apply(NewTaskPosted(validTask()))
	if err != nil {
		t.Fatal(err)
	}
	if _, tasks := s.Counts(); tasks != 1 {
		t.Fatalf("tasks = %d", tasks)
	}
	if _, err := s.Apply(NewTaskClosed(e.Task.ID)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Apply(NewTaskClosed(e.Task.ID)); err == nil {
		t.Fatal("double close accepted")
	}
}

func TestApplyRejectsBadProfiles(t *testing.T) {
	s := mustState(t)
	cases := []struct {
		name string
		mut  func(*market.Worker)
	}{
		{"negative capacity", func(w *market.Worker) { w.Capacity = -1 }},
		{"short accuracy", func(w *market.Worker) { w.Accuracy = w.Accuracy[:1] }},
		{"accuracy below half", func(w *market.Worker) { w.Accuracy[0] = 0.2 }},
		{"interest above one", func(w *market.Worker) { w.Interest[0] = 2 }},
		{"no specialties", func(w *market.Worker) { w.Specialties = nil }},
		{"bad specialty", func(w *market.Worker) { w.Specialties = []int{5} }},
		{"dup specialty", func(w *market.Worker) { w.Specialties = []int{1, 1} }},
		{"negative wage", func(w *market.Worker) { w.ReservationWage = -1 }},
	}
	for _, tc := range cases {
		w := validWorker()
		tc.mut(&w)
		if _, err := s.Apply(NewWorkerJoined(w)); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	badTasks := []struct {
		name string
		mut  func(*market.Task)
	}{
		{"bad category", func(tk *market.Task) { tk.Category = 9 }},
		{"zero replication", func(tk *market.Task) { tk.Replication = 0 }},
		{"negative payment", func(tk *market.Task) { tk.Payment = -2 }},
		{"bad difficulty", func(tk *market.Task) { tk.Difficulty = 2 }},
	}
	for _, tc := range badTasks {
		tk := validTask()
		tc.mut(&tk)
		if _, err := s.Apply(NewTaskPosted(tk)); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestEventValidate(t *testing.T) {
	bad := []Event{
		{Kind: EventWorkerJoined},
		{Kind: EventWorkerLeft},
		{Kind: EventTaskPosted},
		{Kind: EventTaskClosed},
		{Kind: EventRoundClosed},
		{Kind: "mystery"},
	}
	for _, e := range bad {
		if err := e.Validate(); err == nil {
			t.Errorf("%s accepted without payload", e.Kind)
		}
	}
}

func TestSnapshotIsValidInstanceAndIsolated(t *testing.T) {
	s := mustState(t)
	we, _ := s.Apply(NewWorkerJoined(validWorker()))
	s.Apply(NewWorkerJoined(validWorker()))
	s.Apply(NewTaskPosted(validTask()))
	tk := validTask()
	tk.Category = 2
	tk.Payment = 9
	s.Apply(NewTaskPosted(tk))

	in, workerIDs, taskIDs := s.Snapshot()
	if err := in.Validate(); err != nil {
		t.Fatalf("snapshot invalid: %v", err)
	}
	if len(workerIDs) != 2 || len(taskIDs) != 2 {
		t.Fatal("mapping sizes wrong")
	}
	if in.MaxPayment != 9 {
		t.Fatalf("MaxPayment = %v", in.MaxPayment)
	}
	// Mutating state after snapshot must not affect the snapshot.
	s.Apply(NewWorkerLeft(we.Worker.ID))
	if in.NumWorkers() != 2 {
		t.Fatal("snapshot shrank after state mutation")
	}
	// Deep copy: mutating the live worker's profile must not leak in.
	in2, _, _ := s.Snapshot()
	in2.Workers[0].Accuracy[0] = 0.99
	in3, _, _ := s.Snapshot()
	if in3.Workers[0].Accuracy[0] == 0.99 {
		t.Fatal("snapshots share profile slices")
	}
}

func TestSnapshotEmpty(t *testing.T) {
	s := mustState(t)
	in, workerIDs, taskIDs := s.Snapshot()
	if in.NumWorkers() != 0 || in.NumTasks() != 0 || len(workerIDs) != 0 || len(taskIDs) != 0 {
		t.Fatal("empty snapshot not empty")
	}
}

func TestReplayReproducesState(t *testing.T) {
	s := mustState(t)
	var logEvents []Event
	apply := func(e Event) Event {
		t.Helper()
		applied, err := s.Apply(e)
		if err != nil {
			t.Fatal(err)
		}
		logEvents = append(logEvents, applied)
		return applied
	}
	w1 := apply(NewWorkerJoined(validWorker()))
	apply(NewWorkerJoined(validWorker()))
	t1 := apply(NewTaskPosted(validTask()))
	apply(NewTaskPosted(validTask()))
	apply(NewWorkerLeft(w1.Worker.ID))
	apply(NewTaskClosed(t1.Task.ID))
	apply(NewRoundClosed(0))

	replayed, err := Replay(3, logEvents)
	if err != nil {
		t.Fatal(err)
	}
	w, tk := s.Counts()
	rw, rtk := replayed.Counts()
	if w != rw || tk != rtk || s.Rounds() != replayed.Rounds() {
		t.Fatalf("replayed state differs: (%d,%d,%d) vs (%d,%d,%d)",
			w, tk, s.Rounds(), rw, rtk, replayed.Rounds())
	}
	inA, idsA, _ := s.Snapshot()
	inB, idsB, _ := replayed.Snapshot()
	if len(idsA) != len(idsB) {
		t.Fatal("worker id sets differ")
	}
	for i := range idsA {
		if idsA[i] != idsB[i] {
			t.Fatal("worker ids differ after replay")
		}
	}
	if inA.NumEdges() != inB.NumEdges() {
		t.Fatal("snapshots structurally differ after replay")
	}
}

func TestReplayRejectsCorruptedHistory(t *testing.T) {
	// A leave for a worker that never joined must fail replay.
	_, err := Replay(3, []Event{NewWorkerLeft(7)})
	if err == nil || !strings.Contains(err.Error(), "replay event 0") {
		t.Fatalf("err = %v", err)
	}
}
