package platform

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/market"
)

// Server exposes the assignment service as a JSON HTTP API (cmd/mbaserve):
//
//	POST   /v1/workers            body: market.Worker      → {"id": n}
//	DELETE /v1/workers/{id}                                → 204
//	POST   /v1/tasks              body: market.Task        → {"id": n}
//	DELETE /v1/tasks/{id}                                  → 204
//	POST   /v1/batch              body: [Event, …]         → {"applied": […]}
//	GET    /v1/stats                                       → live counts
//	GET    /v1/healthz                                     → HealthStatus
//	GET    /v1/journal/stream?from=N                       → binary event stream
//	GET    /v1/snapshot                                    → newest snapshot bytes
//	POST   /v1/rounds?drain=true                           → RoundResult
//
// With drain=true every task assigned at least one worker in the round is
// closed afterwards — the "one round collects the panel" policy; without it
// tasks stay open and keep collecting across rounds.
//
// Robustness posture: POST bodies are size-capped (413 past the limit),
// ingestion requests run under a per-request timeout, and POST /v1/rounds
// is single-flight — a second concurrent close gets 409 with Retry-After
// instead of queueing behind the solver, and a round that exceeds its
// budget gets 503.  All limits live in ServerOptions.
type Server struct {
	svc     Backend
	mux     *http.ServeMux
	opts    ServerOptions
	adm     *Admission  // nil = admission off (seed semantics)
	closing atomic.Bool // single-flight guard on POST /v1/rounds
}

// Backend is what the HTTP layer needs from a market service.  Service (one
// market) and ShardedService (N shard markets behind one API) both satisfy
// it, so `mbaserve -shards N` serves the exact same routes.
type Backend interface {
	// Submit validates, applies and (if configured) journals one event.
	Submit(Event) (Event, error)
	// CloseRoundCtx closes one assignment round under a context.
	CloseRoundCtx(context.Context) (*RoundResult, error)
	// Counts returns live worker/task counts (global for a sharded backend).
	Counts() (workers, tasks int)
	// Rounds returns the committed round count.
	Rounds() int
	// CheckpointNow triggers an immediate checkpoint.  ok is false when
	// checkpointing is not configured; result is the backend's own
	// JSON-renderable report (CheckpointResult, or per-shard results).
	CheckpointNow() (result any, ok bool, err error)
}

// ServerOptions bounds the server's resource exposure.  The zero value
// disables every limit (seed semantics); NewServerOptions returns the
// recommended defaults.
type ServerOptions struct {
	// MaxBodyBytes caps POST bodies via http.MaxBytesReader; 0 means
	// unlimited.
	MaxBodyBytes int64
	// RequestTimeout bounds ingestion requests (everything except round
	// closes) through the request context; 0 means unbounded.
	RequestTimeout time.Duration
	// RoundTimeout bounds POST /v1/rounds; the round is cancelled
	// cooperatively through the solver stack and the request answered 503.
	// 0 means unbounded.
	RoundTimeout time.Duration
	// MaxBatchBytes caps POST /v1/batch bodies separately from
	// MaxBodyBytes — a batch is by design many events; 0 means unlimited.
	MaxBatchBytes int64
	// Admission configures the priority-aware admission controller
	// (admission.go).  The zero value disables it.
	Admission AdmissionOptions
}

// NewServerOptions returns the recommended limits: 1 MiB bodies (a worker
// profile is a few KiB), 5s ingestion requests, unbounded rounds (bound
// the solve itself with a core.Degrader deadline instead — a cancelled
// round helps nobody, a degraded one serves everyone).
func NewServerOptions() ServerOptions {
	return ServerOptions{
		MaxBodyBytes:   1 << 20,
		MaxBatchBytes:  8 << 20,
		RequestTimeout: 5 * time.Second,
	}
}

// NewServer wires the HTTP handlers around a backend with zero-value
// (unlimited) options.
func NewServer(svc Backend) *Server {
	return NewServerWithOptions(svc, ServerOptions{})
}

// NewServerWithOptions wires the HTTP handlers with explicit limits.
func NewServerWithOptions(svc Backend, opts ServerOptions) *Server {
	s := &Server{svc: svc, mux: http.NewServeMux(), opts: opts, adm: NewAdmission(opts.Admission)}
	s.mux.HandleFunc("POST /v1/workers", s.handleAddWorker)
	s.mux.HandleFunc("DELETE /v1/workers/{id}", s.handleRemoveWorker)
	s.mux.HandleFunc("POST /v1/tasks", s.handleAddTask)
	s.mux.HandleFunc("DELETE /v1/tasks/{id}", s.handleRemoveTask)
	s.mux.HandleFunc("POST /v1/batch", s.handleBatch)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/journal/stream", s.handleJournalStream)
	s.mux.HandleFunc("GET /v1/snapshot", s.handleSnapshot)
	s.mux.HandleFunc("POST /v1/rounds", s.handleCloseRound)
	// POST, not GET: a checkpoint writes a snapshot and deletes journal
	// segments — side effects a crawler or monitoring probe must not be
	// able to trigger.
	s.mux.HandleFunc("POST /v1/checkpoint", s.handleCheckpoint)
	return s
}

// EpochHeader carries the replication epoch on every request and
// response of an epoch-aware backend.  Responses advertise the backend's
// current epoch; a request carrying a higher epoch than the backend's own
// proves a newer primary exists and fences the backend (ErrFenced on its
// write paths, 409 here).  A malformed request header is ignored —
// fencing is a safety net, and an unparseable value carries no evidence
// of a newer epoch.
const EpochHeader = "X-MBA-Epoch"

// Fenceable is the optional backend capability behind epoch fencing.
// Service and ShardedService implement it; backends without it serve
// exactly as before (no epoch header, no fencing).
type Fenceable interface {
	// Epoch is the backend's own (journaled) replication epoch.
	Epoch() uint64
	// ObserveEpoch records an epoch seen on the wire.
	ObserveEpoch(epoch uint64)
	// FenceStatus reports whether a higher epoch has been observed, and
	// which.
	FenceStatus() (fenced bool, observed uint64)
}

// timeoutExempt reports whether a route escapes the per-request
// ingestion deadline: round closes manage their own (longer) budget in
// handleCloseRound, and snapshot transfers are unbounded (a resyncing
// follower may pull a large file).
func timeoutExempt(method, path string) bool {
	return (method == http.MethodPost && path == "/v1/rounds") ||
		(method == http.MethodGet && path == "/v1/snapshot")
}

// ServeHTTP implements http.Handler.  Ingestion requests get the
// per-request deadline here (see timeoutExempt for the exceptions), then
// pass through admission control when it is enabled.  Epoch-aware
// backends get the fencing exchange on every request: observe the
// caller's epoch, advertise our own.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if fc, ok := s.svc.(Fenceable); ok {
		if h := r.Header.Get(EpochHeader); h != "" {
			if v, err := strconv.ParseUint(h, 10, 64); err == nil {
				fc.ObserveEpoch(v)
			}
		}
		w.Header().Set(EpochHeader, strconv.FormatUint(fc.Epoch(), 10))
	}
	if s.opts.RequestTimeout > 0 && !timeoutExempt(r.Method, r.URL.Path) {
		ctx, cancel := context.WithTimeout(r.Context(), s.opts.RequestTimeout)
		defer cancel()
		r = r.WithContext(ctx)
	}
	if s.adm != nil {
		ctx := r.Context()
		deadline, _ := ctx.Deadline()
		dec := s.adm.Admit(r.Method, r.URL.Path, r.Header.Get(ClientHeader), deadline, ctx.Done())
		if !dec.OK {
			secs := int(math.Ceil(dec.RetryAfter.Seconds()))
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", strconv.Itoa(secs))
			writeError(w, http.StatusTooManyRequests, ErrAdmissionShed)
			return
		}
		start := time.Now()
		defer func() { dec.Release(time.Since(start)) }()
	}
	s.mux.ServeHTTP(w, r)
}

// decodeBody decodes a size-capped JSON body into v.  The caller maps the
// error; oversized bodies surface as *http.MaxBytesError.  The body must
// be exactly one JSON value: trailing bytes after it are a 400, not
// silently discarded — `{"kind":"add_worker"}junk` is a malformed
// request, and a proxy or client bug that concatenates bodies must not
// have its first event applied.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	body := r.Body
	if s.opts.MaxBodyBytes > 0 {
		body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	}
	dec := json.NewDecoder(body)
	if err := dec.Decode(v); err != nil {
		return err
	}
	return requireEOF(dec)
}

// requireEOF verifies a decoder has consumed its entire input.
func requireEOF(dec *json.Decoder) error {
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return errors.New("trailing data after JSON value")
	}
	return nil
}

// writeDecodeError distinguishes an oversized body (413) from a malformed
// one (400).
func writeDecodeError(w http.ResponseWriter, err error) {
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		writeError(w, http.StatusRequestEntityTooLarge, err)
		return
	}
	writeError(w, http.StatusBadRequest, err)
}

// writeJSON renders v with the given status.
func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError renders a JSON error envelope.
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// writeSubmitError maps a write-path error to a status: a fenced backend
// answers 409 regardless of the handler's usual failure status — the
// response's X-MBA-Epoch header (set in ServeHTTP) tells the client which
// epoch outranked this process.
func writeSubmitError(w http.ResponseWriter, status int, err error) {
	if errors.Is(err, ErrFenced) {
		status = http.StatusConflict
	}
	writeError(w, status, err)
}

func (s *Server) handleAddWorker(w http.ResponseWriter, r *http.Request) {
	var worker market.Worker
	if err := s.decodeBody(w, r, &worker); err != nil {
		writeDecodeError(w, fmt.Errorf("decoding worker: %w", err))
		return
	}
	applied, err := s.svc.Submit(NewWorkerJoined(worker))
	if err != nil {
		writeSubmitError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]int{"id": applied.Worker.ID})
}

func (s *Server) handleRemoveWorker(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad worker id: %w", err))
		return
	}
	if _, err := s.svc.Submit(NewWorkerLeft(id)); err != nil {
		writeSubmitError(w, http.StatusNotFound, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleAddTask(w http.ResponseWriter, r *http.Request) {
	var task market.Task
	if err := s.decodeBody(w, r, &task); err != nil {
		writeDecodeError(w, fmt.Errorf("decoding task: %w", err))
		return
	}
	applied, err := s.svc.Submit(NewTaskPosted(task))
	if err != nil {
		writeSubmitError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]int{"id": applied.Task.ID})
}

func (s *Server) handleRemoveTask(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad task id: %w", err))
		return
	}
	if _, err := s.svc.Submit(NewTaskClosed(id)); err != nil {
		writeSubmitError(w, http.StatusNotFound, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// BatchSubmitter is the optional backend capability behind POST
// /v1/batch.  Service and ShardedService both implement it; it is not
// part of Backend so existing Backend fakes keep compiling.
type BatchSubmitter interface {
	SubmitBatch(events []Event) ([]Event, error)
}

// BatchItem is one applied event in a POST /v1/batch response: the
// journal sequence it committed at and the platform ID it resolved to.
type BatchItem struct {
	Seq  uint64    `json:"seq"`
	Kind EventKind `json:"kind"`
	ID   int       `json:"id,omitempty"`
}

// handleBatch applies a JSON array of mixed add/remove worker/task events
// all-or-nothing: one journaled append (one fsync) for the whole batch,
// 422 with nothing applied if any event is invalid.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	bs, ok := s.svc.(BatchSubmitter)
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("batch ingest not supported by this backend"))
		return
	}
	body := r.Body
	if s.opts.MaxBatchBytes > 0 {
		body = http.MaxBytesReader(w, r.Body, s.opts.MaxBatchBytes)
	}
	var events []Event
	dec := json.NewDecoder(body)
	if err := dec.Decode(&events); err != nil {
		writeDecodeError(w, fmt.Errorf("decoding batch: %w", err))
		return
	}
	if err := requireEOF(dec); err != nil {
		writeDecodeError(w, fmt.Errorf("decoding batch: %w", err))
		return
	}
	applied, err := bs.SubmitBatch(events)
	if err != nil {
		writeSubmitError(w, http.StatusUnprocessableEntity, err)
		return
	}
	items := make([]BatchItem, len(applied))
	for i := range applied {
		items[i] = BatchItem{Seq: applied[i].Seq, Kind: applied[i].Kind}
		switch {
		case applied[i].Worker != nil:
			items[i].ID = applied[i].Worker.ID
		case applied[i].WorkerID != nil:
			items[i].ID = *applied[i].WorkerID
		case applied[i].Task != nil:
			items[i].ID = applied[i].Task.ID
		case applied[i].TaskID != nil:
			items[i].ID = *applied[i].TaskID
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"applied": items})
}

// HealthReporter is the optional backend capability behind GET
// /v1/healthz; backends without it get a status synthesized from Backend
// alone (no journal visibility).
type HealthReporter interface {
	Health() HealthStatus
}

// handleHealthz reports serving health: 200 while the backend is fully
// healthy, 503 once it degrades — a poisoned journal, a fenced primary,
// or a follower out of contact — so a standby's probe loop (or a load
// balancer) needs no JSON parsing to know this process is in trouble.
// An admission brownout reports "overloaded" but stays 200: shedding
// load is the server doing its job, and a probe that flipped overload
// into failover would reward the storm with a promotion.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	var h HealthStatus
	if hr, ok := s.svc.(HealthReporter); ok {
		h = hr.Health()
	} else {
		h.Status, h.Role = "ok", "primary"
		h.Workers, h.Tasks = s.svc.Counts()
		h.Rounds = s.svc.Rounds()
	}
	if s.adm != nil {
		h.Admission = s.adm.HealthSnapshot()
		if h.Status == "ok" && s.adm.Overloaded() {
			h.Status = StatusOverloaded
		}
	}
	status := http.StatusOK
	if h.Status != "ok" && h.Status != StatusOverloaded {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, h)
}

// JournalStreamer is the optional backend capability behind GET
// /v1/journal/stream (only Service with a segmented journal implements
// it; sharded backends replicate per shard directory, not over one
// stream).
type JournalStreamer interface {
	JournalEventsSince(from uint64) ([]Event, uint64, error)
}

// JournalLastSeqHeader carries the primary's last committed sequence on
// a journal stream response, so a fully caught-up follower can still
// report accurate lag.
const JournalLastSeqHeader = "X-Journal-Last-Seq"

// handleJournalStream serves journaled events with sequence ≥ from as one
// finite binary stream (magic + framed records, the .mbaj segment format
// regardless of what is on disk).  Followers poll it; 410 tells a
// follower its start point was checkpoint-retired and it must bootstrap
// from a snapshot.
func (s *Server) handleJournalStream(w http.ResponseWriter, r *http.Request) {
	js, ok := s.svc.(JournalStreamer)
	if !ok {
		writeError(w, http.StatusNotFound, ErrStreamUnsupported)
		return
	}
	from := uint64(1)
	if q := r.URL.Query().Get("from"); q != "" {
		v, err := strconv.ParseUint(q, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad from: %w", err))
			return
		}
		from = v
	}
	events, lastSeq, err := js.JournalEventsSince(from)
	if err != nil {
		switch {
		case errors.Is(err, ErrStreamUnsupported):
			writeError(w, http.StatusNotFound, err)
		case errors.Is(err, ErrSeqRetired):
			writeError(w, http.StatusGone, err)
		default:
			writeError(w, http.StatusInternalServerError, err)
		}
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(JournalLastSeqHeader, strconv.FormatUint(lastSeq, 10))
	w.WriteHeader(http.StatusOK)
	bw := bufio.NewWriterSize(w, 64*1024)
	if _, err := bw.WriteString(binaryLogMagic); err != nil {
		return
	}
	var rec []byte
	for i := range events {
		rec, err = appendBinaryRecord(rec[:0], &events[i])
		if err != nil {
			return // stream truncates; the follower's decoder keeps its valid prefix
		}
		if _, err := bw.Write(rec); err != nil {
			return
		}
	}
	_ = bw.Flush()
}

// SnapshotProvider is the optional backend capability behind GET
// /v1/snapshot: the newest CRC-verified snapshot as raw bytes, for a
// follower whose replication position was checkpoint-retired (410 on the
// journal stream) to bootstrap from.
type SnapshotProvider interface {
	LatestSnapshot() (io.ReadCloser, SnapshotInfo, error)
}

// SnapshotSeqHeader carries the served snapshot's sequence number, so a
// resyncing follower knows its re-tail position before decoding a byte.
const SnapshotSeqHeader = "X-MBA-Snapshot-Seq"

// handleSnapshot streams the newest valid snapshot file.  404 when the
// backend cannot serve one (no checkpointing configured, or nothing
// written yet) — a follower translates that into "resync impossible,
// keep retrying the stream".
func (s *Server) handleSnapshot(w http.ResponseWriter, _ *http.Request) {
	sp, ok := s.svc.(SnapshotProvider)
	if !ok {
		writeError(w, http.StatusNotFound, ErrNoSnapshot)
		return
	}
	rc, info, err := sp.LatestSnapshot()
	if err != nil {
		if errors.Is(err, ErrNoSnapshot) {
			writeError(w, http.StatusNotFound, err)
		} else {
			writeError(w, http.StatusInternalServerError, err)
		}
		return
	}
	defer rc.Close()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(SnapshotSeqHeader, strconv.FormatUint(info.Seq, 10))
	w.WriteHeader(http.StatusOK)
	_, _ = io.Copy(w, rc)
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	workers, tasks := s.svc.Counts()
	writeJSON(w, http.StatusOK, map[string]int{
		"workers": workers,
		"tasks":   tasks,
		"rounds":  s.svc.Rounds(),
	})
}

// handleCheckpoint triggers an immediate snapshot + journal compaction.
// 404 when the backend has no checkpoint manager attached (serving
// without -snapshot-dir).
func (s *Server) handleCheckpoint(w http.ResponseWriter, _ *http.Request) {
	res, ok, err := s.svc.CheckpointNow()
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("checkpointing not configured"))
		return
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleCloseRound(w http.ResponseWriter, r *http.Request) {
	// Single-flight: a concurrent second close would only queue behind the
	// solver on roundMu; telling the client to come back is strictly better.
	if !s.closing.CompareAndSwap(false, true) {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusConflict, errors.New("a round is already closing"))
		return
	}
	defer s.closing.Store(false)

	ctx := r.Context()
	if s.opts.RoundTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.opts.RoundTimeout)
		defer cancel()
	}
	res, err := s.svc.CloseRoundCtx(ctx)
	if err != nil {
		if ctx.Err() != nil {
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable, fmt.Errorf("round abandoned: %w", err))
			return
		}
		writeSubmitError(w, http.StatusInternalServerError, err)
		return
	}
	if r.URL.Query().Get("drain") == "true" {
		assigned := map[int]bool{}
		for _, p := range res.Pairs {
			assigned[p.TaskID] = true
		}
		// Close in sorted order so the journal (and any replay) is
		// deterministic instead of following map iteration order.
		ids := make([]int, 0, len(assigned))
		for id := range assigned {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			if _, err := s.svc.Submit(NewTaskClosed(id)); err != nil {
				writeSubmitError(w, http.StatusInternalServerError, err)
				return
			}
		}
	}
	writeJSON(w, http.StatusOK, res)
}
