package platform

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/market"
)

// Server exposes the assignment service as a JSON HTTP API (cmd/mbaserve):
//
//	POST   /v1/workers            body: market.Worker      → {"id": n}
//	DELETE /v1/workers/{id}                                → 204
//	POST   /v1/tasks              body: market.Task        → {"id": n}
//	DELETE /v1/tasks/{id}                                  → 204
//	GET    /v1/stats                                       → live counts
//	POST   /v1/rounds?drain=true                           → RoundResult
//
// With drain=true every task assigned at least one worker in the round is
// closed afterwards — the "one round collects the panel" policy; without it
// tasks stay open and keep collecting across rounds.
type Server struct {
	svc *Service
	mux *http.ServeMux
}

// NewServer wires the HTTP handlers around a service.
func NewServer(svc *Service) *Server {
	s := &Server{svc: svc, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/workers", s.handleAddWorker)
	s.mux.HandleFunc("DELETE /v1/workers/{id}", s.handleRemoveWorker)
	s.mux.HandleFunc("POST /v1/tasks", s.handleAddTask)
	s.mux.HandleFunc("DELETE /v1/tasks/{id}", s.handleRemoveTask)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("POST /v1/rounds", s.handleCloseRound)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// writeJSON renders v with the given status.
func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError renders a JSON error envelope.
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Server) handleAddWorker(w http.ResponseWriter, r *http.Request) {
	var worker market.Worker
	if err := json.NewDecoder(r.Body).Decode(&worker); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding worker: %w", err))
		return
	}
	applied, err := s.svc.Submit(NewWorkerJoined(worker))
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]int{"id": applied.Worker.ID})
}

func (s *Server) handleRemoveWorker(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad worker id: %w", err))
		return
	}
	if _, err := s.svc.Submit(NewWorkerLeft(id)); err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleAddTask(w http.ResponseWriter, r *http.Request) {
	var task market.Task
	if err := json.NewDecoder(r.Body).Decode(&task); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding task: %w", err))
		return
	}
	applied, err := s.svc.Submit(NewTaskPosted(task))
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]int{"id": applied.Task.ID})
}

func (s *Server) handleRemoveTask(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad task id: %w", err))
		return
	}
	if _, err := s.svc.Submit(NewTaskClosed(id)); err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	workers, tasks := s.svc.State().Counts()
	writeJSON(w, http.StatusOK, map[string]int{
		"workers": workers,
		"tasks":   tasks,
		"rounds":  s.svc.State().Rounds(),
	})
}

func (s *Server) handleCloseRound(w http.ResponseWriter, r *http.Request) {
	res, err := s.svc.CloseRound()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if r.URL.Query().Get("drain") == "true" {
		assigned := map[int]bool{}
		for _, p := range res.Pairs {
			assigned[p.TaskID] = true
		}
		for id := range assigned {
			if _, err := s.svc.Submit(NewTaskClosed(id)); err != nil {
				writeError(w, http.StatusInternalServerError, err)
				return
			}
		}
	}
	writeJSON(w, http.StatusOK, res)
}
