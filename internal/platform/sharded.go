package platform

import (
	"context"
	"fmt"
	"reflect"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/benefit"
	"repro/internal/core"
	"repro/internal/market"
	"repro/internal/stats"
)

// Shard bundles the resources one shard of a ShardedService owns: its own
// State, an optional journal, its own solver instance, and an optional
// checkpoint manager over that state.  Ownership is strict — nothing may be
// shared between shards: states and journals because each shard is an
// independent event-sourced market, solvers because stateful ones
// (core.IncrementalExact, core.Degrader) carry per-market duals and reports
// and the shards solve concurrently.
type Shard struct {
	State      *State
	Journal    Journal // optional; nil disables journaling for this shard
	Solver     core.Solver
	Checkpoint *CheckpointManager // optional
}

// ShardedOptions tunes a ShardedService.
type ShardedOptions struct {
	// Parallel bounds the per-shard solve fan-out inside CloseRound; 0
	// means GOMAXPROCS, always capped at the shard count.
	Parallel int
}

// ShardRound is one shard's provenance inside an aggregated RoundResult:
// the shard's market size at snapshot time, its share of the committed
// pairs, and the same solve/checkpoint provenance Service reports for a
// single market.
type ShardRound struct {
	Shard   int `json:"shard"`
	Workers int `json:"workers"`
	Tasks   int `json:"tasks"`
	Pairs   int `json:"pairs"`
	// ReconcileDropped / ReconcileRefilled are this shard's share of the
	// cross-shard reconciliation churn: optimistic picks dropped because a
	// spanning worker was over-subscribed, and freed slots refilled from
	// this shard's remaining edges.
	ReconcileDropped  int     `json:"reconcile_dropped,omitempty"`
	ReconcileRefilled int     `json:"reconcile_refilled,omitempty"`
	StalePairs        int     `json:"stale_pairs,omitempty"`
	Seq               uint64  `json:"seq,omitempty"`
	ServedBy          string  `json:"served_by,omitempty"`
	DegradedFrom      string  `json:"degraded_from,omitempty"`
	SolveTimedOut     bool    `json:"solve_timed_out,omitempty"`
	WarmStarted       bool    `json:"warm_started,omitempty"`
	DirtyFraction     float64 `json:"dirty_fraction,omitempty"`
	FullSolveFallback bool    `json:"full_solve_fallback,omitempty"`
	SolveError        string  `json:"solve_error,omitempty"`
	Checkpointed      bool    `json:"checkpointed,omitempty"`
	CheckpointError   string  `json:"checkpoint_error,omitempty"`
}

// shardRuntime is one shard plus its round-serving scratch.
type shardRuntime struct {
	id         int
	state      *State
	journal    Journal
	solver     core.Solver
	checkpoint *CheckpointManager
	rng        *stats.RNG    // touched only by this shard's solve goroutine
	prev       *core.Problem // previous round's arena; guarded by roundMu
}

// submit applies an event to this shard, journaled when a journal is
// attached (same atomic apply+append contract as Service.Submit).
func (sh *shardRuntime) submit(e Event) (Event, error) {
	if sh.journal == nil {
		return sh.state.Apply(e)
	}
	return sh.state.ApplyJournaled(e, sh.journal.Append)
}

// ShardedService serves one logical market partitioned into N shard
// markets (see ShardRouter for the placement rule).  Each shard owns its
// own State, journal and checkpoint machinery — PR 5's crash-safety story
// applies per shard, and any single shard recovers independently and
// byte-identically.  The service owns the global identity space: platform
// IDs are assigned once here (starting at 1) and submitted to the target
// shards as explicit IDs, so an entity has the same ID in every shard it is
// resident in.
//
// Concurrency model: Submit serialises on the service mutex (validation is
// done before fan-out, so multi-shard applies fail only on journal I/O, and
// a partial failure is compensated by rolling the already-applied shards
// back).  CloseRound, like Service, holds no service-wide lock during the
// expensive work: each shard snapshots its own state, rebuilds into its own
// retained problem arena and solves — fanned across a bounded worker pool —
// then a sequential reconciliation pass resolves spanning workers, and each
// shard commits its share (filter-live, round marker, checkpoint
// notification).  Rounds serialise among themselves on roundMu.
//
// Invariant (reconciliation): the merged assignment never over-subscribes a
// worker, even one resident in several shards, and never over-fills a task
// (a task lives in exactly one shard, whose solver already respects its
// replication).
type ShardedService struct {
	params benefit.Params
	router ShardRouter
	shards []*shardRuntime
	par    int

	mu           sync.Mutex
	nextWorkerID int
	nextTaskID   int
	workerHome   map[int][]int // live worker ID → resident shards (sorted)
	taskHome     map[int]int   // open task ID → owning shard

	roundMu sync.Mutex // serialises CloseRound; guards every shard's prev

	// fencedBy is the highest foreign replication epoch observed (see
	// Service.fencedBy; one fence covers every shard — the shards fail
	// over as a unit or not at all).
	fencedBy atomic.Uint64

	// repairedWorkers counts the partial multi-shard worker writes reindex
	// converged to absent during recovery (see reindex).
	repairedWorkers int
}

// NewShardedService wires a sharded service over per-shard resource
// bundles.  All states must share one category universe; recovered states
// are re-indexed into the routing tables (and cross-checked against the
// router, which catches recovering with a different -shards than the
// directory was written with).  seed derives every shard's RNG stream.
func NewShardedService(shards []Shard, params benefit.Params, opts ShardedOptions, seed uint64) (*ShardedService, error) {
	if len(shards) < 1 {
		return nil, fmt.Errorf("platform: sharded service needs at least one shard")
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	numCategories := 0
	solverPtrs := map[uintptr]int{}
	for k := range shards {
		if shards[k].State == nil {
			return nil, fmt.Errorf("platform: shard %d has nil state", k)
		}
		if shards[k].Solver == nil {
			return nil, fmt.Errorf("platform: shard %d has nil solver", k)
		}
		if k == 0 {
			numCategories = shards[k].State.NumCategories()
		} else if shards[k].State.NumCategories() != numCategories {
			return nil, fmt.Errorf("platform: shard %d has %d categories, shard 0 has %d",
				k, shards[k].State.NumCategories(), numCategories)
		}
		// Stateful solvers must not be shared between concurrently solving
		// shards; a shared pointer is almost certainly that mistake.
		if v := reflect.ValueOf(shards[k].Solver); v.Kind() == reflect.Pointer {
			if prev, dup := solverPtrs[v.Pointer()]; dup {
				return nil, fmt.Errorf("platform: shards %d and %d share one solver instance", prev, k)
			}
			solverPtrs[v.Pointer()] = k
		}
	}

	ss := &ShardedService{
		params:       params,
		router:       ShardRouter{Shards: len(shards)},
		par:          opts.Parallel,
		nextWorkerID: 1,
		nextTaskID:   1,
		workerHome:   map[int][]int{},
		taskHome:     map[int]int{},
	}
	if ss.par <= 0 {
		ss.par = runtime.GOMAXPROCS(0)
	}
	if ss.par > len(shards) {
		ss.par = len(shards)
	}
	if ss.par < 1 {
		ss.par = 1
	}
	for k := range shards {
		journal := shards[k].Journal
		// Typed-nil journal guard, as in NewService.
		switch j := journal.(type) {
		case *Log:
			if j == nil {
				journal = nil
			}
		case *SegmentedLog:
			if j == nil {
				journal = nil
			}
		}
		ss.shards = append(ss.shards, &shardRuntime{
			id:         k,
			state:      shards[k].State,
			journal:    journal,
			solver:     shards[k].Solver,
			checkpoint: shards[k].Checkpoint,
			rng:        stats.NewRNG(seed + uint64(k)*0x9e3779b97f4a7c15),
		})
	}
	if err := ss.reindex(); err != nil {
		return nil, err
	}
	return ss, nil
}

// reindex rebuilds the routing tables and global ID counters from the shard
// states (the recovery path: per-shard RecoverDir, then NewShardedService).
// Residency that contradicts the router — a worker or task in a shard the
// router would not place it in, or a spanning worker missing from one of
// its shards — is a hard error: it means the directory was written under a
// different shard count.
func (ss *ShardedService) reindex() error {
	specialties := map[int][]int{} // worker ID → specialties (first sighting)
	seen := map[int][]int{}        // worker ID → shards actually resident in
	for k, sh := range ss.shards {
		in, workerIDs, taskIDs := sh.state.Snapshot()
		for i, wid := range workerIDs {
			if _, ok := specialties[wid]; !ok {
				specialties[wid] = in.Workers[i].Specialties
			}
			seen[wid] = append(seen[wid], k)
		}
		for j, tid := range taskIDs {
			want := ss.router.TaskShard(in.Tasks[j].Category)
			if want != k {
				return fmt.Errorf("platform: task %d (category %d) recovered in shard %d, router places it in shard %d — shard count mismatch?",
					tid, in.Tasks[j].Category, k, want)
			}
			if prev, dup := ss.taskHome[tid]; dup {
				return fmt.Errorf("platform: task %d recovered in shards %d and %d", tid, prev, k)
			}
			ss.taskHome[tid] = k
		}
		nw, nt := sh.state.NextIDs()
		if nw > ss.nextWorkerID {
			ss.nextWorkerID = nw
		}
		if nt > ss.nextTaskID {
			ss.nextTaskID = nt
		}
	}
	// Sorted worker order keeps repair journaling deterministic.
	wids := make([]int, 0, len(seen))
	for wid := range seen {
		wids = append(wids, wid)
	}
	sort.Ints(wids)
	for _, wid := range wids {
		got := seen[wid]
		want := ss.router.WorkerShards(specialties[wid])
		if equalIntSlices(got, want) {
			ss.workerHome[wid] = want
			continue
		}
		if !subsetIntSlice(got, want) {
			return fmt.Errorf("platform: worker %d resident in shards %v, router places it in %v — shard count mismatch?",
				wid, got, want)
		}
		// Strict subset: a crash between fan-out appends left either a torn
		// join (prefix of the target shards written) or a torn leave (prefix
		// removed).  Both converge to ABSENT — removing the residual copies
		// completes the join's rollback or the leave's remainder.  The
		// removals are journaled, so the repair is durable.
		for _, k := range got {
			if _, err := ss.shards[k].submit(NewWorkerLeft(wid)); err != nil {
				return fmt.Errorf("platform: repairing partial worker %d on shard %d: %w", wid, k, err)
			}
		}
		ss.repairedWorkers++
	}
	return nil
}

// RepairedWorkers reports how many workers reindex found resident in a
// strict subset of their router shards — a crash between the fan-out
// appends of a join or leave — and converged to absent during recovery.
func (ss *ShardedService) RepairedWorkers() int { return ss.repairedWorkers }

// equalIntSlices reports a == b elementwise.
func equalIntSlices(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// subsetIntSlice reports whether sorted a is a subset of sorted b.
func subsetIntSlice(a, b []int) bool {
	i := 0
	for _, x := range a {
		for i < len(b) && b[i] < x {
			i++
		}
		if i >= len(b) || b[i] != x {
			return false
		}
		i++
	}
	return true
}

// NumShards returns the shard count.
func (ss *ShardedService) NumShards() int { return len(ss.shards) }

// ShardState exposes shard k's state (tests, stats).
func (ss *ShardedService) ShardState(k int) *State { return ss.shards[k].state }

// Counts returns global live-entity counts (a spanning worker counts once).
func (ss *ShardedService) Counts() (workers, tasks int) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return len(ss.workerHome), len(ss.taskHome)
}

// Rounds returns the service's committed round count: the minimum over
// shards, since a failed commit can transiently leave later shards one
// marker behind.
func (ss *ShardedService) Rounds() int {
	min := -1
	for _, sh := range ss.shards {
		if r := sh.state.Rounds(); min < 0 || r < min {
			min = r
		}
	}
	return min
}

// CheckpointNow implements Backend over Checkpoint.
func (ss *ShardedService) CheckpointNow() (any, bool, error) {
	results, ok, err := ss.Checkpoint()
	return results, ok, err
}

// Checkpoint checkpoints every shard that has a manager attached and
// returns the per-shard results.  ok reports whether any shard is
// configured for checkpointing at all.
func (ss *ShardedService) Checkpoint() ([]CheckpointResult, bool, error) {
	var results []CheckpointResult
	configured := false
	for k, sh := range ss.shards {
		if sh.checkpoint == nil {
			continue
		}
		configured = true
		res, err := sh.checkpoint.Checkpoint()
		if err != nil {
			return results, true, fmt.Errorf("platform: checkpointing shard %d: %w", k, err)
		}
		results = append(results, res)
	}
	return results, configured, nil
}

// Submit validates, routes and applies one event.  Worker events fan out to
// every shard the worker's specialties map to; task events go to exactly
// one shard.  The event is validated up front against the shared category
// universe, so a multi-shard apply can only fail on journal I/O — and a
// partial failure is compensated by undoing the shards that had already
// applied, restoring the all-or-nothing Submit contract.  Round markers are
// journaled by CloseRound itself and are rejected here.
func (ss *ShardedService) Submit(e Event) (Event, error) {
	if err := ss.checkFence(); err != nil {
		return Event{}, err
	}
	if err := e.Validate(); err != nil {
		return Event{}, err
	}
	ss.mu.Lock()
	defer ss.mu.Unlock()
	switch e.Kind {
	case EventWorkerJoined:
		return ss.submitWorkerJoined(e)
	case EventWorkerLeft:
		return ss.submitWorkerLeft(e)
	case EventTaskPosted:
		return ss.submitTaskPosted(e)
	case EventTaskClosed:
		return ss.submitTaskClosed(e)
	case EventRoundClosed:
		return Event{}, fmt.Errorf("platform: round markers are journaled per shard by CloseRound")
	case EventEpochBumped:
		// An epoch bump has no routing key; sharded backends fail over as a
		// directory tree, not over one journal stream, so the control event
		// has nowhere coherent to land.
		return Event{}, fmt.Errorf("platform: epoch bumps are not routable on a sharded backend")
	default:
		return Event{}, fmt.Errorf("platform: unknown event kind %q", e.Kind)
	}
}

// Epoch implements Fenceable: the max over the shard states (a recovered
// directory tree may carry the bump in any shard's journal).
func (ss *ShardedService) Epoch() uint64 {
	var top uint64
	for _, rt := range ss.shards {
		if e := rt.state.Epoch(); e > top {
			top = e
		}
	}
	return top
}

// ObserveEpoch implements Fenceable (see Service.ObserveEpoch).
func (ss *ShardedService) ObserveEpoch(epoch uint64) {
	for {
		cur := ss.fencedBy.Load()
		if epoch <= cur || ss.fencedBy.CompareAndSwap(cur, epoch) {
			return
		}
	}
}

// FenceStatus implements Fenceable.
func (ss *ShardedService) FenceStatus() (fenced bool, observed uint64) {
	observed = ss.fencedBy.Load()
	return observed > ss.Epoch(), observed
}

func (ss *ShardedService) checkFence() error {
	if fenced, observed := ss.FenceStatus(); fenced {
		return fmt.Errorf("%w: observed epoch %d above local %d", ErrFenced, observed, ss.Epoch())
	}
	return nil
}

func (ss *ShardedService) submitWorkerJoined(e Event) (Event, error) {
	w := *e.Worker
	if err := validateWorkerProfile(&w, ss.shards[0].state.NumCategories()); err != nil {
		return Event{}, err
	}
	prevNext := ss.nextWorkerID
	if w.ID >= ss.nextWorkerID {
		ss.nextWorkerID = w.ID + 1
	} else if w.ID == 0 {
		// nextWorkerID starts at 1, so a fresh (ID-less) event always lands
		// here and global IDs are never 0 — which keeps compensation
		// unambiguous (re-joining ID 0 would be re-assigned a fresh ID).
		w.ID = ss.nextWorkerID
		ss.nextWorkerID++
	}
	if _, live := ss.workerHome[w.ID]; live {
		ss.nextWorkerID = prevNext
		return Event{}, fmt.Errorf("platform: worker %d already live", w.ID)
	}
	targets := ss.router.WorkerShards(w.Specialties)
	var applied Event
	for i, k := range targets {
		ev, err := ss.shards[k].submit(NewWorkerJoined(w))
		if err != nil {
			for _, kk := range targets[:i] {
				if _, cerr := ss.shards[kk].submit(NewWorkerLeft(w.ID)); cerr != nil {
					return Event{}, fmt.Errorf("platform: worker join failed on shard %d (%v) and compensation failed on shard %d: %w — shards inconsistent",
						k, err, kk, cerr)
				}
			}
			ss.nextWorkerID = prevNext
			return Event{}, err
		}
		if i == 0 {
			applied = ev
		}
	}
	ss.workerHome[w.ID] = targets
	return applied, nil
}

func (ss *ShardedService) submitWorkerLeft(e Event) (Event, error) {
	id := *e.WorkerID
	targets, live := ss.workerHome[id]
	if !live {
		return Event{}, fmt.Errorf("platform: worker %d not live", id)
	}
	// The profile is needed to compensate a partial removal.
	w, ok := ss.shards[targets[0]].state.Worker(id)
	if !ok {
		return Event{}, fmt.Errorf("platform: worker %d in routing table but not in shard %d", id, targets[0])
	}
	var applied Event
	for i, k := range targets {
		ev, err := ss.shards[k].submit(NewWorkerLeft(id))
		if err != nil {
			for _, kk := range targets[:i] {
				if _, cerr := ss.shards[kk].submit(NewWorkerJoined(w)); cerr != nil {
					return Event{}, fmt.Errorf("platform: worker leave failed on shard %d (%v) and compensation failed on shard %d: %w — shards inconsistent",
						k, err, kk, cerr)
				}
			}
			return Event{}, err
		}
		if i == 0 {
			applied = ev
		}
	}
	delete(ss.workerHome, id)
	return applied, nil
}

func (ss *ShardedService) submitTaskPosted(e Event) (Event, error) {
	t := *e.Task
	if err := validateTaskShape(&t, ss.shards[0].state.NumCategories()); err != nil {
		return Event{}, err
	}
	prevNext := ss.nextTaskID
	if t.ID >= ss.nextTaskID {
		ss.nextTaskID = t.ID + 1
	} else if t.ID == 0 {
		t.ID = ss.nextTaskID
		ss.nextTaskID++
	}
	if _, open := ss.taskHome[t.ID]; open {
		ss.nextTaskID = prevNext
		return Event{}, fmt.Errorf("platform: task %d already open", t.ID)
	}
	k := ss.router.TaskShard(t.Category)
	ev, err := ss.shards[k].submit(NewTaskPosted(t))
	if err != nil {
		ss.nextTaskID = prevNext
		return Event{}, err
	}
	ss.taskHome[t.ID] = k
	return ev, nil
}

func (ss *ShardedService) submitTaskClosed(e Event) (Event, error) {
	id := *e.TaskID
	k, open := ss.taskHome[id]
	if !open {
		return Event{}, fmt.Errorf("platform: task %d not open", id)
	}
	ev, err := ss.shards[k].submit(NewTaskClosed(id))
	if err != nil {
		return Event{}, err
	}
	delete(ss.taskHome, id)
	return ev, nil
}

// submitBatch applies a per-shard slice of a global batch atomically
// (ApplyBatchJournaled + one journal append), same contract as
// Service.SubmitBatch for one shard.
func (sh *shardRuntime) submitBatch(events []Event) ([]Event, error) {
	if sh.journal == nil {
		return sh.state.ApplyBatchJournaled(events, nil)
	}
	bj, ok := sh.journal.(BatchJournal)
	if !ok {
		return nil, fmt.Errorf("platform: shard journal %T cannot append batches atomically", sh.journal)
	}
	return sh.state.ApplyBatchJournaled(events, bj.AppendBatch)
}

// SubmitBatch applies a mixed batch of ingestion events all-or-nothing
// across the shards.  Planning happens first, under the service mutex but
// against *staged* ID counters and residency overlays, so an intra-batch
// sequence (join then leave, close then re-post) routes exactly as
// sequential Submits would and any validation or routing error rejects
// the batch before a single shard is touched.  Each shard then receives
// its slice of the batch as one atomic apply+append; if shard k fails,
// shards 0..k-1 are compensated with their inverse events in reverse
// order (the PR 7 fan-out discipline, batch-sized), restoring the
// pre-batch state everywhere.
func (ss *ShardedService) SubmitBatch(events []Event) ([]Event, error) {
	if len(events) == 0 {
		return nil, nil
	}
	if err := ss.checkFence(); err != nil {
		return nil, err
	}
	ncat := ss.shards[0].state.NumCategories()
	for i := range events {
		if err := events[i].Validate(); err != nil {
			return nil, fmt.Errorf("platform: batch event %d: %w", i, err)
		}
		if events[i].Kind == EventRoundClosed {
			return nil, fmt.Errorf("platform: batch event %d: round markers are journaled per shard by CloseRound", i)
		}
	}

	ss.mu.Lock()
	defer ss.mu.Unlock()

	// Staged view of the routing tables: overlays win over the live maps,
	// and nothing below mutates the live maps until every shard committed.
	type stagedWorker struct {
		targets []int
		live    bool
	}
	type stagedTask struct {
		shard int
		open  bool
	}
	nextWorkerID, nextTaskID := ss.nextWorkerID, ss.nextTaskID
	workerStage := map[int]stagedWorker{}
	taskStage := map[int]stagedTask{}
	profiles := map[int]market.Worker{} // in-batch joins; leaves need them for inverses
	taskShapes := map[int]market.Task{} // in-batch posts, same reason
	lookupWorker := func(id int) ([]int, bool) {
		if st, ok := workerStage[id]; ok {
			return st.targets, st.live
		}
		t, ok := ss.workerHome[id]
		return t, ok
	}
	lookupTask := func(id int) (int, bool) {
		if st, ok := taskStage[id]; ok {
			return st.shard, st.open
		}
		k, ok := ss.taskHome[id]
		return k, ok
	}

	perShard := make([][]Event, len(ss.shards))
	inverse := make([][]Event, len(ss.shards)) // inverse[k][j] undoes perShard[k][j]
	type eventRef struct{ shard, idx int }
	refs := make([]eventRef, len(events))
	place := func(k int, ev, inv Event) int {
		perShard[k] = append(perShard[k], ev)
		inverse[k] = append(inverse[k], inv)
		return len(perShard[k]) - 1
	}

	for i := range events {
		switch events[i].Kind {
		case EventWorkerJoined:
			w := *events[i].Worker
			if err := validateWorkerProfile(&w, ncat); err != nil {
				return nil, fmt.Errorf("platform: batch event %d: %w", i, err)
			}
			if w.ID >= nextWorkerID {
				nextWorkerID = w.ID + 1
			} else if w.ID == 0 {
				w.ID = nextWorkerID
				nextWorkerID++
			}
			if _, live := lookupWorker(w.ID); live {
				return nil, fmt.Errorf("platform: batch event %d: worker %d already live", i, w.ID)
			}
			targets := ss.router.WorkerShards(w.Specialties)
			for _, k := range targets {
				idx := place(k, NewWorkerJoined(w), NewWorkerLeft(w.ID))
				if k == targets[0] {
					refs[i] = eventRef{k, idx}
				}
			}
			workerStage[w.ID] = stagedWorker{targets: targets, live: true}
			profiles[w.ID] = w
		case EventWorkerLeft:
			id := *events[i].WorkerID
			targets, live := lookupWorker(id)
			if !live {
				return nil, fmt.Errorf("platform: batch event %d: worker %d not live", i, id)
			}
			w, staged := profiles[id]
			if !staged {
				var ok bool
				if w, ok = ss.shards[targets[0]].state.Worker(id); !ok {
					return nil, fmt.Errorf("platform: batch event %d: worker %d in routing table but not in shard %d", i, id, targets[0])
				}
			}
			for _, k := range targets {
				idx := place(k, NewWorkerLeft(id), NewWorkerJoined(w))
				if k == targets[0] {
					refs[i] = eventRef{k, idx}
				}
			}
			workerStage[id] = stagedWorker{live: false}
		case EventTaskPosted:
			t := *events[i].Task
			if err := validateTaskShape(&t, ncat); err != nil {
				return nil, fmt.Errorf("platform: batch event %d: %w", i, err)
			}
			if t.ID >= nextTaskID {
				nextTaskID = t.ID + 1
			} else if t.ID == 0 {
				t.ID = nextTaskID
				nextTaskID++
			}
			if _, open := lookupTask(t.ID); open {
				return nil, fmt.Errorf("platform: batch event %d: task %d already open", i, t.ID)
			}
			k := ss.router.TaskShard(t.Category)
			refs[i] = eventRef{k, place(k, NewTaskPosted(t), NewTaskClosed(t.ID))}
			taskStage[t.ID] = stagedTask{shard: k, open: true}
			taskShapes[t.ID] = t
		case EventTaskClosed:
			id := *events[i].TaskID
			k, open := lookupTask(id)
			if !open {
				return nil, fmt.Errorf("platform: batch event %d: task %d not open", i, id)
			}
			t, staged := taskShapes[id]
			if !staged {
				var ok bool
				if t, ok = ss.shards[k].state.Task(id); !ok {
					return nil, fmt.Errorf("platform: batch event %d: task %d in routing table but not in shard %d", i, id, k)
				}
			}
			refs[i] = eventRef{k, place(k, NewTaskClosed(id), NewTaskPosted(t))}
			taskStage[id] = stagedTask{open: false}
		default:
			return nil, fmt.Errorf("platform: batch event %d: unknown event kind %q", i, events[i].Kind)
		}
	}

	// Apply phase: one atomic batch per shard, ascending.  On failure the
	// already-applied shards are unwound by replaying their inverse lists
	// backwards — undo-last-first restores the exact pre-batch state even
	// when the batch touched an entity more than once.
	applied := make([][]Event, len(ss.shards))
	for k := range ss.shards {
		if len(perShard[k]) == 0 {
			continue
		}
		evs, err := ss.shards[k].submitBatch(perShard[k])
		if err != nil {
			for kk := k - 1; kk >= 0; kk-- {
				for j := len(inverse[kk]) - 1; j >= 0; j-- {
					if _, cerr := ss.shards[kk].submit(inverse[kk][j]); cerr != nil {
						return nil, fmt.Errorf("platform: batch failed on shard %d (%v) and compensation failed on shard %d: %w — shards inconsistent",
							k, err, kk, cerr)
					}
				}
			}
			return nil, fmt.Errorf("platform: batch failed on shard %d, batch rolled back: %w", k, err)
		}
		applied[k] = evs
	}

	// Commit the staged routing state only now that every shard holds the
	// batch durably.
	ss.nextWorkerID, ss.nextTaskID = nextWorkerID, nextTaskID
	for id, st := range workerStage {
		if st.live {
			ss.workerHome[id] = st.targets
		} else {
			delete(ss.workerHome, id)
		}
	}
	for id, st := range taskStage {
		if st.open {
			ss.taskHome[id] = st.shard
		} else {
			delete(ss.taskHome, id)
		}
	}
	out := make([]Event, len(events))
	for i, r := range refs {
		out[i] = applied[r.shard][r.idx]
	}
	return out, nil
}

// CloseRound is CloseRoundCtx with a background context.
func (ss *ShardedService) CloseRound() (*RoundResult, error) {
	return ss.CloseRoundCtx(context.Background())
}

// CloseRoundCtx closes one assignment round across every shard: fan out
// snapshot→rebuild→solve per shard over a bounded worker pool, reconcile
// spanning workers sequentially, then commit each shard's share (filter
// against the live state, journal the round marker, notify the checkpoint
// manager) and aggregate.  Cancellation before commit aborts the whole
// round without journaling any marker; per-shard solve failures do not —
// the shard contributes nothing, its error is recorded, and the round
// closes everywhere (mirroring Service's solve-error policy).
//
// If a marker commit fails mid-way the shards before it keep their marker:
// round counters can transiently diverge by one, which is why Rounds()
// reports the minimum.  Entity state is untouched by markers, so a retried
// CloseRound re-serves everyone.
func (ss *ShardedService) CloseRoundCtx(ctx context.Context) (*RoundResult, error) {
	if err := ss.checkFence(); err != nil {
		return nil, err
	}
	ss.roundMu.Lock()
	defer ss.roundMu.Unlock()

	// Phase 1: per-shard snapshot + solve on the worker pool.
	outs := make([]*shardSolve, len(ss.shards))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < ss.par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := range idx {
				outs[k] = ss.shards[k].solveRound(ctx, ss.params)
			}
		}()
	}
	for k := range ss.shards {
		idx <- k
	}
	close(idx)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		// The caller is gone; no marker for a round that served nobody.
		return nil, err
	}

	// Phase 2: sequential cross-shard reconciliation of spanning workers.
	dropped, refilled := reconcileShards(outs)

	// Phase 3: per-shard commit, then aggregate.
	res := &RoundResult{
		ReconcileDropped:  dropped,
		ReconcileRefilled: refilled,
		Shards:            make([]ShardRound, len(ss.shards)),
	}
	var solveErrs []string
	for k, out := range outs {
		sh := ss.shards[k]
		if out.solveErr == nil {
			var stale int
			out.pairs, stale = sh.state.filterLivePairs(out.pairs)
			out.info.StalePairs = stale
			res.StalePairs += stale
		} else {
			solveErrs = append(solveErrs, fmt.Sprintf("shard %d: %v", k, out.solveErr))
			out.info.SolveError = out.solveErr.Error()
		}
		marker, err := sh.submit(NewRoundClosed(sh.state.Rounds()))
		if err != nil {
			return nil, fmt.Errorf("platform: committing round marker on shard %d: %w", k, err)
		}
		out.info.Seq = marker.Seq
		if sh.checkpoint != nil {
			took, err := sh.checkpoint.RoundClosed()
			out.info.Checkpointed = took
			if err != nil {
				out.info.CheckpointError = err.Error()
			}
		}
		out.info.Pairs = len(out.pairs)
		res.Pairs = append(res.Pairs, out.pairs...)
		res.Shards[k] = out.info
	}
	if len(solveErrs) > 0 {
		res.SolveError = fmt.Sprintf("%d shard(s) failed: %s", len(solveErrs), strings.Join(solveErrs, "; "))
	}
	res.Round = ss.Rounds()
	res.Metrics = ss.aggregateMetrics(outs, res.Pairs)
	return res, nil
}

// aggregateMetrics recomputes round metrics from the merged committed
// pairs, mirroring core.Problem.Evaluate's formulas over the union market:
// slot coverage over the sum of open slots, Jain fairness and mean benefit
// over every live worker (spanning workers counted once, idle ones as
// zero).
func (ss *ShardedService) aggregateMetrics(outs []*shardSolve, pairs []AssignmentPair) core.Metrics {
	m := core.Metrics{
		Algorithm: fmt.Sprintf("sharded/%d(%s)", len(ss.shards), ss.shards[0].solver.Name()),
		Pairs:     len(pairs),
	}
	perWorker := map[int]float64{}
	totalWorkers := 0
	totalSlots := 0
	for _, out := range outs {
		if out.in == nil {
			continue
		}
		totalSlots += out.in.TotalSlots()
		for _, wid := range out.workerIDs {
			if _, dup := perWorker[wid]; !dup {
				perWorker[wid] = 0
				totalWorkers++
			}
		}
	}
	for _, pr := range pairs {
		m.TotalMutual += pr.Mutual
		m.TotalQuality += pr.Quality
		m.TotalWorker += pr.Utility
		perWorker[pr.WorkerID] += pr.Utility
	}
	if totalSlots > 0 {
		m.SlotCoverage = float64(len(pairs)) / float64(totalSlots)
	}
	benefits := make([]float64, 0, totalWorkers)
	for _, b := range perWorker {
		benefits = append(benefits, b)
		if b > 0 {
			m.ActiveWorkers++
		}
	}
	m.WorkerJain = stats.JainIndex(benefits)
	m.MeanWorkerBenefit = stats.Mean(benefits)
	return m
}

// shardSolve is one shard's contribution to a round in flight: the
// immutable snapshot it solved, the problem (retained for refill
// candidates), and the optimistic pairs before reconciliation.
type shardSolve struct {
	in                 *market.Instance
	workerIDs, taskIDs []int
	p                  *core.Problem
	sel                []int // selected edge indices into p.Edges, parallel to pairs
	pairs              []AssignmentPair
	info               ShardRound
	solveErr           error
}

// solveRound snapshots and solves one shard (phase 1 and 2 of Service's
// round, per shard).  It runs on the round worker pool: everything it
// touches — the shard's state (snapshot under its own lock), rng, prev
// arena — is owned by this shard, so shards never contend.
func (sh *shardRuntime) solveRound(ctx context.Context, params benefit.Params) *shardSolve {
	out := &shardSolve{}
	out.info.Shard = sh.id
	var delta *core.Delta
	if _, ok := sh.solver.(core.DeltaSolver); ok {
		out.in, out.workerIDs, out.taskIDs, delta = sh.state.SnapshotDelta()
	} else {
		out.in, out.workerIDs, out.taskIDs = sh.state.Snapshot()
	}
	out.info.Workers = len(out.workerIDs)
	out.info.Tasks = len(out.taskIDs)
	if out.in.NumWorkers() == 0 || out.in.NumTasks() == 0 {
		return out
	}
	out.solveErr = sh.solveSnapshot(ctx, out, delta, params)
	return out
}

// solveSnapshot is the panic-fenced rebuild+solve; it fills out.sel,
// out.pairs and the provenance fields.
func (sh *shardRuntime) solveSnapshot(ctx context.Context, out *shardSolve, delta *core.Delta, params benefit.Params) (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			out.sel, out.pairs = nil, nil
			err = fmt.Errorf("platform: shard %d round solve panicked: %v", sh.id, rec)
		}
	}()
	p, err := core.RebuildProblem(sh.prev, out.in, params)
	if err != nil {
		return err
	}
	sh.prev = p
	out.p = p
	sel, _, err := core.RunDeltaCtx(ctx, p, sh.solver, delta, sh.rng.Split())
	if rep, ok := sh.solver.(core.SolveReporter); ok {
		last := rep.LastReport()
		out.info.ServedBy = last.ServedBy
		out.info.DegradedFrom = last.DegradedFrom
		out.info.SolveTimedOut = last.SolveTimedOut
		out.info.WarmStarted = last.WarmStarted
		out.info.DirtyFraction = last.DirtyFraction
		out.info.FullSolveFallback = last.FullSolveFallback
	}
	if err != nil {
		return err
	}
	out.sel = sel
	out.pairs = make([]AssignmentPair, len(sel))
	for i, ei := range sel {
		e := &p.Edges[ei]
		out.pairs[i] = AssignmentPair{
			WorkerID: out.workerIDs[e.W],
			TaskID:   out.taskIDs[e.T],
			Quality:  e.Q,
			Utility:  e.B,
			Mutual:   e.M,
		}
	}
	return nil
}
