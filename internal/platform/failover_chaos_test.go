package platform

// Failover chaos: the three storms the self-healing replication stack
// must survive.  (1) The primary is killed mid-traffic and the standby
// auto-promotes — the promoted state must be byte-identical to a replay
// of the primary's replicated prefix plus the epoch bump.  (2) The dead
// primary is revived and hammered with writes — fencing must reject
// every single one, applying and journaling nothing.  (3) A follower
// stalls past segment retention and must come back through snapshot
// resync byte-identical to a follower that never lagged.  Seeded via
// CHAOS_SEED; run with `make chaos`.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/benefit"
	"repro/internal/faultinject"
	"repro/internal/stats"
)

// newKillablePrimary builds a segmented-journal primary fronted by a
// KillSwitch, returning the front URL the standby talks to.
func newKillablePrimary(t *testing.T, dir string) (*httptest.Server, *Service, *faultinject.KillSwitch) {
	t.Helper()
	sl, err := OpenSegmentedLog(dir, SegmentOptions{
		MaxBytes: 1 << 20,
		Log:      LogOptions{Format: FormatBinary, GroupCommit: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := NewService(mustState(t), greedySolver(), benefit.DefaultParams(), sl, 1)
	if err != nil {
		t.Fatal(err)
	}
	kill := faultinject.NewKillSwitch(NewServerWithOptions(svc, NewServerOptions()))
	ts := httptest.NewServer(kill)
	t.Cleanup(func() {
		ts.Close()
		sl.Close()
	})
	return ts, svc, kill
}

// churn POSTs workers and tasks at url until stop closes or a request
// fails (the killed primary severs connections); applied counts the
// successful writes.
func churn(t *testing.T, url string, rng *stats.RNG, stop <-chan struct{}, applied *atomic.Int64) {
	for {
		select {
		case <-stop:
			return
		default:
		}
		var body bytes.Buffer
		path := "/v1/workers"
		if rng.Bool(0.3) {
			path = "/v1/tasks"
			json.NewEncoder(&body).Encode(validTask())
		} else {
			json.NewEncoder(&body).Encode(validWorker())
		}
		resp, err := http.Post(url+path, "application/json", &body)
		if err != nil {
			return // the kill switch fired mid-request
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			return
		}
		applied.Add(1)
	}
}

// promotedReference replays the primary's journaled prefix [1..k] plus
// the promotion's epoch bump — the state a crash-free takeover at k must
// equal, byte for byte.
func promotedReference(t *testing.T, svc *Service, k uint64) *State {
	t.Helper()
	events, _, err := svc.JournalEventsSince(1)
	if err != nil {
		t.Fatal(err)
	}
	ref := mustState(t)
	for _, e := range events {
		if e.Seq > k {
			break
		}
		if _, err := ref.Apply(e); err != nil {
			t.Fatalf("replaying primary seq %d: %v", e.Seq, err)
		}
	}
	if ref.Seq() != k {
		t.Fatalf("primary journal only replays to %d, want %d", ref.Seq(), k)
	}
	if _, err := ref.Apply(NewEpochBumped(ref.Epoch() + 1)); err != nil {
		t.Fatal(err)
	}
	return ref
}

// runFailoverUnderChurn drives the shared storm front half: churn
// traffic into a killable primary while a standby replicates, kill the
// primary mid-traffic, and wait for the automatic promotion.
func runFailoverUnderChurn(t *testing.T, ctx context.Context, seed uint64) (primary *Service, promoted *Service, fo *Failover, done chan error) {
	t.Helper()
	rng := stats.NewRNG(seed)
	ts, svc, kill := newKillablePrimary(t, t.TempDir())

	fo, err := NewFailover(ts.URL, t.TempDir(), failoverOptions(true))
	if err != nil {
		t.Fatal(err)
	}
	done = make(chan error, 1)
	go func() { done <- fo.Run(ctx) }()

	var applied atomic.Int64
	stopChurn := make(chan struct{})
	churnDone := make(chan struct{})
	churnRNG := rng.Split()
	go func() {
		defer close(churnDone)
		churn(t, ts.URL, churnRNG, stopChurn, &applied)
	}()

	// Kill mid-traffic: once a seeded number of writes has committed and
	// the standby has demonstrably replicated some of them.
	target := int64(rng.IntRange(25, 60))
	waitFor(t, 10*time.Second, func() bool {
		return applied.Load() >= target && fo.Follower().Seq() > 0
	})
	kill.Kill()
	close(stopChurn)
	<-churnDone

	select {
	case <-fo.Promoted():
	case <-time.After(10 * time.Second):
		t.Fatal("standby never promoted after the kill")
	}
	p, err := fo.Service()
	if err != nil {
		t.Fatal(err)
	}
	return svc, p, fo, done
}

// TestReplicationChaosAutoFailoverUnderChurn: the promoted service must
// hold exactly the primary's replicated prefix plus the epoch bump —
// nothing invented, nothing reordered — and keep serving writes.
func TestReplicationChaosAutoFailoverUnderChurn(t *testing.T) {
	seed := chaosSeed(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	primary, promoted, fo, done := runFailoverUnderChurn(t, ctx, seed)

	k := promoted.PromotedAtSeq() - 1
	if k == 0 {
		t.Fatal("promotion happened before any replication")
	}
	if primarySeq := primary.State().Seq(); k > primarySeq {
		t.Fatalf("promoted from seq %d, ahead of the primary's %d", k, primarySeq)
	}
	if promoted.Epoch() != 1 {
		t.Fatalf("promoted epoch %d, want 1", promoted.Epoch())
	}
	ref := promotedReference(t, primary, k)
	if !bytes.Equal(snapshotBytes(t, promoted.State()), snapshotBytes(t, ref)) {
		t.Fatalf("promoted state diverges from the crash-free reference at seq %d", k)
	}

	// The new primary is live: it ingests and closes rounds.
	if _, err := promoted.Submit(NewWorkerJoined(validWorker())); err != nil {
		t.Fatal(err)
	}
	if _, err := promoted.CloseRound(); err != nil {
		t.Fatal(err)
	}

	cancel()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	_ = fo
}

// TestReplicationChaosSplitBrainRevival revives the killed primary after
// the standby promoted and hammers it with writes carrying the new
// epoch: every write must die with 409 and ErrFenced underneath — zero
// events applied, zero journaled — while reads keep serving.
func TestReplicationChaosSplitBrainRevival(t *testing.T) {
	seed := chaosSeed(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	primary, promoted, _, done := runFailoverUnderChurn(t, ctx, seed+2)

	ref := promotedReference(t, primary, promoted.PromotedAtSeq()-1)
	if !bytes.Equal(snapshotBytes(t, promoted.State()), snapshotBytes(t, ref)) {
		t.Fatal("promoted state diverges from the crash-free reference")
	}

	// The old primary comes back from the dead, unaware it was replaced.
	// (The kill switch only severed HTTP; its service and journal are the
	// in-process stand-in for a process restart on the same directory.)
	revived := httptest.NewServer(NewServerWithOptions(primary, NewServerOptions()))
	defer revived.Close()
	seqBefore := primary.State().Seq()
	eventsBefore, _, err := primary.JournalEventsSince(1)
	if err != nil {
		t.Fatal(err)
	}
	workersBefore, tasksBefore := primary.State().Counts()

	// Hammer it with writes that carry the promoted epoch — the first one
	// is the demotion, and every one must be refused.
	epoch := fmt.Sprint(promoted.Epoch())
	const hammer = 30
	for i := 0; i < hammer; i++ {
		var body bytes.Buffer
		json.NewEncoder(&body).Encode(validWorker())
		req, err := http.NewRequest(http.MethodPost, revived.URL+"/v1/workers", &body)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(EpochHeader, epoch)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusConflict {
			t.Fatalf("fenced write %d got %d, want 409", i, resp.StatusCode)
		}
	}
	// Writes without the header are equally dead: the fence latches.
	if _, err := primary.Submit(NewWorkerJoined(validWorker())); !errors.Is(err, ErrFenced) {
		t.Fatalf("direct submit on fenced primary: %v, want ErrFenced", err)
	}

	// Zero post-demotion effects: state, counts and journal all unmoved.
	if got := primary.State().Seq(); got != seqBefore {
		t.Fatalf("fenced primary applied events: seq %d → %d", seqBefore, got)
	}
	eventsAfter, _, err := primary.JournalEventsSince(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(eventsAfter) != len(eventsBefore) {
		t.Fatalf("fenced primary journaled %d new events", len(eventsAfter)-len(eventsBefore))
	}
	if w, k := primary.State().Counts(); w != workersBefore || k != tasksBefore {
		t.Fatalf("fenced primary counts moved: %d/%d → %d/%d", workersBefore, tasksBefore, w, k)
	}
	h := primary.Health()
	if h.Status != "degraded" || !h.Fenced || h.FencedBy != promoted.Epoch() {
		t.Fatalf("revived primary health %+v", h)
	}
	// Reads still serve — fencing demotes, it does not kill.
	resp, err := http.Get(revived.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fenced primary read got %d", resp.StatusCode)
	}

	cancel()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestReplicationChaosLagResync stalls a follower across multiple
// checkpoint/retention cycles while a control follower tails every
// event: the stalled one must recover through snapshot resync and end
// byte-identical to both the control and the primary, storm after storm.
func TestReplicationChaosLagResync(t *testing.T) {
	seed := chaosSeed(t)
	rng := stats.NewRNG(seed + 5)
	primaryDir := t.TempDir()
	ts, svc, cm := newCheckpointedPrimary(t, primaryDir, 512, 1)

	segOpts := SegmentOptions{MaxBytes: 1 << 20, Log: LogOptions{Format: FormatBinary}}
	controlDir, stallDir := t.TempDir(), t.TempDir()
	control, err := NewFollower(ts.URL, controlDir, FollowerOptions{NumCategories: 3, Segment: segOpts})
	if err != nil {
		t.Fatal(err)
	}
	defer control.Close()
	staller, err := NewFollower(ts.URL, stallDir, FollowerOptions{NumCategories: 3, Segment: segOpts})
	if err != nil {
		t.Fatal(err)
	}
	defer staller.Close()

	resyncs, retired := 0, 0
	for storm := 0; storm < 4; storm++ {
		// Both catch up, then the staller goes dark while the primary
		// ingests several segments' worth and checkpoints retire them.
		syncUntilCaughtUp(t, control)
		syncUntilCaughtUp(t, staller)
		bursts := rng.IntRange(2, 4)
		for b := 0; b < bursts; b++ {
			submitN(t, svc, rng.IntRange(15, 30))
			syncUntilCaughtUp(t, control)
			res, err := cm.Checkpoint()
			if err != nil {
				t.Fatal(err)
			}
			retired += res.SegmentsRetired
		}
		_, err := staller.SyncOnce(context.Background())
		switch {
		case errors.Is(err, ErrResyncNeeded):
			if _, err := staller.Resync(context.Background()); err != nil {
				t.Fatalf("storm %d: resync failed: %v", storm, err)
			}
			resyncs++
		case err != nil:
			t.Fatalf("storm %d: sync failed: %v", storm, err)
		}
		syncUntilCaughtUp(t, staller)
		want := snapshotBytes(t, svc.State())
		if !bytes.Equal(snapshotBytes(t, staller.State()), want) {
			t.Fatalf("storm %d: resynced follower diverges from primary", storm)
		}
		if !bytes.Equal(snapshotBytes(t, control.State()), want) {
			t.Fatalf("storm %d: control follower diverges from primary", storm)
		}
	}
	if resyncs == 0 {
		t.Fatal("no storm ever forced a resync — retention ran unexercised")
	}
	if retired < 2 {
		t.Fatalf("only %d segments retired across the storm — shrink MaxBytes", retired)
	}
	if got := staller.Resyncs(); got != uint64(resyncs) {
		t.Fatalf("follower counted %d resyncs, test saw %d", got, resyncs)
	}

	// Cold takeover from both directories reproduces the primary.
	if err := control.Close(); err != nil {
		t.Fatal(err)
	}
	if err := staller.Close(); err != nil {
		t.Fatal(err)
	}
	want := snapshotBytes(t, svc.State())
	fromControl, _, err := RecoverDir(controlDir, 3)
	if err != nil {
		t.Fatal(err)
	}
	fromStaller, _, err := RecoverDir(stallDir, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snapshotBytes(t, fromControl), want) {
		t.Fatal("control cold takeover diverges")
	}
	if !bytes.Equal(snapshotBytes(t, fromStaller), want) {
		t.Fatal("stalled-follower cold takeover diverges after resyncs")
	}
}
