package platform

import (
	"bytes"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/benefit"
	"repro/internal/core"
	"repro/internal/stats"
)

// TestServiceConcurrentMutationsAndRounds hammers the service with
// mutations from many goroutines while rounds close concurrently, then
// checks the two invariants the snapshot-solve-commit protocol and the
// atomic apply-and-append must preserve:
//
//   - no lost or reordered events: the journal holds exactly one line per
//     successful Submit, in strictly increasing sequence order (ReadLog
//     rejects anything else);
//   - journal/state equivalence: replaying the journal into a fresh state
//     reproduces the live state exactly.
//
// Run under -race (the Makefile verify gate does) this is also the data
// race test for the round protocol.
func TestServiceConcurrentMutationsAndRounds(t *testing.T) {
	var buf bytes.Buffer
	svc := mustService(t, NewLog(&buf))

	const (
		goroutines = 8
		iterations = 40
		rounds     = 6
	)
	var succeeded atomic.Int64
	submit := func(e Event) bool {
		if _, err := svc.Submit(e); err != nil {
			return false
		}
		succeeded.Add(1)
		return true
	}

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				wEv, err := svc.Submit(NewWorkerJoined(validWorker()))
				if err != nil {
					t.Error(err)
					return
				}
				succeeded.Add(1)
				tEv, err := svc.Submit(NewTaskPosted(validTask()))
				if err != nil {
					t.Error(err)
					return
				}
				succeeded.Add(1)
				// Churn: remove some of what this goroutine created — no other
				// goroutine touches these IDs, so success is deterministic.
				if i%3 == 0 {
					if !submit(NewWorkerLeft(wEv.Worker.ID)) {
						t.Errorf("worker %d could not leave", wEv.Worker.ID)
						return
					}
				}
				if i%4 == 0 {
					if !submit(NewTaskClosed(tEv.Task.ID)) {
						t.Errorf("task %d could not close", tEv.Task.ID)
						return
					}
				}
			}
		}(g)
	}

	roundErr := make(chan error, 1)
	go func() {
		for i := 0; i < rounds; i++ {
			if _, err := svc.CloseRound(); err != nil {
				roundErr <- err
				return
			}
		}
		roundErr <- nil
	}()

	wg.Wait()
	if err := <-roundErr; err != nil {
		t.Fatalf("CloseRound: %v", err)
	}
	if t.Failed() {
		return
	}

	// ReadLog enforces strictly increasing sequence numbers, so a torn or
	// interleaved append fails right here.
	events, err := ReadLog(&buf)
	if err != nil {
		t.Fatalf("journal corrupted: %v", err)
	}
	want := int(succeeded.Load()) + rounds // one marker per round
	if len(events) != want {
		t.Fatalf("journal has %d events, want %d (no lost or duplicated writes)", len(events), want)
	}

	replayed, err := Replay(svc.State().NumCategories(), events)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	gotW, gotT := svc.State().Counts()
	repW, repT := replayed.Counts()
	if gotW != repW || gotT != repT {
		t.Fatalf("replayed counts (%d workers, %d tasks) != live (%d, %d)", repW, repT, gotW, gotT)
	}
	if svc.State().Rounds() != replayed.Rounds() {
		t.Fatalf("replayed rounds %d != live %d", replayed.Rounds(), svc.State().Rounds())
	}
	liveIn, liveWIDs, liveTIDs := svc.State().Snapshot()
	repIn, repWIDs, repTIDs := replayed.Snapshot()
	if !reflect.DeepEqual(liveWIDs, repWIDs) || !reflect.DeepEqual(liveTIDs, repTIDs) {
		t.Fatal("replayed identity mappings differ from live state")
	}
	if !reflect.DeepEqual(liveIn, repIn) {
		t.Fatal("replayed snapshot differs from live state")
	}
}

// gatedSolver wraps an inner solver with a handshake: Solve signals entry,
// then blocks until released.  It lets a test hold a round open mid-solve
// at a deterministic point.
type gatedSolver struct {
	inner    core.Solver
	entered  chan struct{}
	released chan struct{}
}

func (g *gatedSolver) Name() string { return "gated-" + g.inner.Name() }

func (g *gatedSolver) Solve(p *core.Problem, r *stats.RNG) ([]int, error) {
	close(g.entered)
	<-g.released
	return g.inner.Solve(p, r)
}

// TestCloseRoundDoesNotBlockSubmits pins the headline property of the
// round protocol — a slow solve holds no lock the ingestion path needs —
// and the commit-time validation: entities removed mid-solve are dropped
// from the result as stale rather than assigned.
func TestCloseRoundDoesNotBlockSubmits(t *testing.T) {
	state := mustState(t)
	gate := &gatedSolver{
		inner:    core.Greedy{Kind: core.MutualWeight},
		entered:  make(chan struct{}),
		released: make(chan struct{}),
	}
	svc, err := NewService(state, gate, benefit.DefaultParams(), nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	var workerIDs []int
	for i := 0; i < 4; i++ {
		ev, err := svc.Submit(NewWorkerJoined(validWorker()))
		if err != nil {
			t.Fatal(err)
		}
		workerIDs = append(workerIDs, ev.Worker.ID)
	}
	for i := 0; i < 3; i++ {
		if _, err := svc.Submit(NewTaskPosted(validTask())); err != nil {
			t.Fatal(err)
		}
	}

	type roundOut struct {
		res *RoundResult
		err error
	}
	done := make(chan roundOut, 1)
	go func() {
		res, err := svc.CloseRound()
		done <- roundOut{res, err}
	}()

	// The solver is now provably mid-round.  Every mutation below must
	// complete while it is still blocked; if the round held a lock the
	// ingestion path needs, these Submits would deadlock the test.
	select {
	case <-gate.entered:
	case <-time.After(10 * time.Second):
		t.Fatal("solver never entered")
	}
	if _, err := svc.Submit(NewWorkerJoined(validWorker())); err != nil {
		t.Fatalf("submit during round: %v", err)
	}
	// Remove every worker the snapshot saw: all solved pairs become stale.
	for _, id := range workerIDs {
		if _, err := svc.Submit(NewWorkerLeft(id)); err != nil {
			t.Fatalf("worker %d leave during round: %v", id, err)
		}
	}
	close(gate.released)

	out := <-done
	if out.err != nil {
		t.Fatal(out.err)
	}
	if len(out.res.Pairs) != 0 {
		t.Fatalf("round committed %d pairs against departed workers", len(out.res.Pairs))
	}
	if out.res.StalePairs == 0 {
		t.Fatal("expected stale pairs after removing all snapshot workers mid-solve")
	}
	if out.res.Metrics.Pairs != out.res.StalePairs {
		t.Fatalf("metrics report %d assigned but %d went stale", out.res.Metrics.Pairs, out.res.StalePairs)
	}
}
