package platform

import (
	"sync"
	"time"
)

// committer is the group-commit engine behind LogOptions.GroupCommit: a
// single goroutine that drains concurrently queued record buffers into
// one contiguous write + one fsync.  The caller's Append stays
// synchronous — commit() blocks until its bytes are durable (or the flush
// failed) — so the ack-means-durable contract is exactly the synchronous
// path's; only the fsync cost is amortised across whoever queued in the
// same window.
//
// Failure semantics: every request coalesced into a failing flush gets
// the same error, and the Log poisons exactly as a synchronous torn write
// would.  Requests already queued behind a poisoned log are answered
// ErrLogPoisoned without touching the writer, which is what makes
// SegmentedLog's heal (truncate to Log.committedBytes) safe to run as
// soon as any caller observes the poisoning.
type committer struct {
	l *Log

	mu     sync.Mutex
	closed bool
	reqs   chan commitReq

	exited chan struct{}

	maxBatch int
	maxDelay time.Duration
}

type commitReq struct {
	buf  []byte
	done chan error
}

func newCommitter(l *Log) *committer {
	maxBatch := l.opts.GroupMaxBatch
	if maxBatch <= 0 {
		maxBatch = 128
	}
	maxDelay := l.opts.GroupWindow
	if maxDelay <= 0 {
		maxDelay = 2 * time.Millisecond
	}
	c := &committer{
		l:        l,
		reqs:     make(chan commitReq, maxBatch),
		exited:   make(chan struct{}),
		maxBatch: maxBatch,
		maxDelay: maxDelay,
	}
	go c.run()
	return c
}

// commit queues buf and blocks until the flush that absorbed it reports.
func (c *committer) commit(buf []byte) error {
	req := commitReq{buf: buf, done: make(chan error, 1)}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrLogClosed
	}
	c.reqs <- req
	c.mu.Unlock()
	return <-req.done
}

// stop closes the queue and waits for the worker to flush what it already
// accepted.  Idempotent.
func (c *committer) stop() {
	c.mu.Lock()
	if !c.closed {
		c.closed = true
		close(c.reqs)
	}
	c.mu.Unlock()
	<-c.exited
}

// run is the committer goroutine: take one request, then drain whatever
// else is already queued (bounded by maxBatch records and maxDelay of
// draining — never waiting idly: an empty queue flushes immediately, so
// the only latency a lone Append pays is the write+fsync itself).
func (c *committer) run() {
	defer close(c.exited)
	var buf []byte
	batch := make([]commitReq, 0, c.maxBatch)
	for req := range c.reqs {
		batch = append(batch[:0], req)
		buf = append(buf[:0], req.buf...)
		deadline := time.Now().Add(c.maxDelay)
	drain:
		for len(batch) < c.maxBatch && time.Now().Before(deadline) {
			select {
			case more, ok := <-c.reqs:
				if !ok {
					break drain
				}
				batch = append(batch, more)
				buf = append(buf, more.buf...)
			default:
				break drain
			}
		}
		var err error
		if c.l.Poisoned() {
			// A previous flush tore the stream; nothing more may be
			// written after the corruption point.
			err = ErrLogPoisoned
		} else {
			err = c.l.commitBytes(buf)
		}
		for _, r := range batch {
			r.done <- err
		}
	}
}
