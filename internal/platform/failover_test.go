package platform

// Failover and resync mechanics outside the chaos storms: the jittered
// backoff curve, the malformed-header hard error, the snapshot endpoint,
// the snapshot-resync property (a resynced follower is byte-identical to
// one that never lagged), and the probe loop's flap filter.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"repro/internal/benefit"
	"repro/internal/faultinject"
	"repro/internal/stats"
)

func TestBackoffDelay(t *testing.T) {
	rng := stats.NewRNG(1)
	base, ceiling := 100*time.Millisecond, time.Second
	prevTop := time.Duration(0)
	for fails := 1; fails <= 8; fails++ {
		top := base << (fails - 1)
		if top > ceiling {
			top = ceiling
		}
		d := backoffDelay(base, ceiling, fails, rng)
		if d < top/2 || d >= top {
			t.Fatalf("fails=%d: delay %v outside jitter window [%v, %v)", fails, d, top/2, top)
		}
		if top < prevTop {
			t.Fatalf("fails=%d: envelope shrank", fails)
		}
		prevTop = top
	}
	// Degenerate parameters still return something sane.
	if d := backoffDelay(0, 0, 1, rng); d <= 0 {
		t.Fatalf("zero-config delay %v", d)
	}
}

// TestFollowerMalformedLastSeqHeader: a primary advertising an
// unparseable commit position is a protocol error, not something to
// silently ignore — ignoring it would freeze PrimarySeq and fake zero
// lag forever.
func TestFollowerMalformedLastSeqHeader(t *testing.T) {
	fake := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(JournalLastSeqHeader, "not-a-number")
		w.Write([]byte(binaryLogMagic))
	}))
	defer fake.Close()

	f, err := NewFollower(fake.URL, t.TempDir(), FollowerOptions{
		NumCategories: 3,
		Segment:       SegmentOptions{MaxBytes: 1 << 20, Log: LogOptions{Format: FormatBinary}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.SyncOnce(context.Background()); err == nil {
		t.Fatal("malformed last-seq header accepted")
	} else if !errors.Is(err, strconv.ErrSyntax) {
		t.Fatalf("error %v does not surface the parse failure", err)
	}
	if f.PrimarySeq() != 0 {
		t.Fatalf("PrimarySeq %d moved on a malformed header", f.PrimarySeq())
	}
}

// newCheckpointedPrimary is newPrimary plus a checkpoint manager with
// tiny segments, so checkpoints retire history and /v1/snapshot serves.
func newCheckpointedPrimary(t *testing.T, dir string, segBytes int64, keep int) (*httptest.Server, *Service, *CheckpointManager) {
	t.Helper()
	sl, err := OpenSegmentedLog(dir, SegmentOptions{
		MaxBytes: segBytes,
		Log:      LogOptions{Format: FormatBinary, GroupCommit: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := NewService(mustState(t), greedySolver(), benefit.DefaultParams(), sl, 1)
	if err != nil {
		t.Fatal(err)
	}
	cm, err := NewCheckpointManager(svc.State(), sl, CheckpointOptions{Keep: keep})
	if err != nil {
		t.Fatal(err)
	}
	svc.SetCheckpointer(cm)
	ts := httptest.NewServer(NewServerWithOptions(svc, NewServerOptions()))
	t.Cleanup(func() {
		ts.Close()
		sl.Close()
	})
	return ts, svc, cm
}

func TestSnapshotEndpoint(t *testing.T) {
	// No checkpointing configured: the capability is absent, 404.
	plain := newTestServer(t)
	resp, err := http.Get(plain.URL + "/v1/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("snapshot without checkpointing: %d, want 404", resp.StatusCode)
	}

	ts, svc, cm := newCheckpointedPrimary(t, t.TempDir(), 1<<20, 2)
	// Checkpointing configured but none taken yet: still 404, not 500.
	resp, err = http.Get(ts.URL + "/v1/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("snapshot before first checkpoint: %d, want 404", resp.StatusCode)
	}

	submitN(t, svc, 5)
	if _, err := cm.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(ts.URL + "/v1/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot status %d", resp.StatusCode)
	}
	if got := resp.Header.Get(SnapshotSeqHeader); got != "5" {
		t.Fatalf("snapshot seq header %q, want 5", got)
	}
	var body bytes.Buffer
	if _, err := body.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	st, info, err := DecodeSnapshot(bytes.NewReader(body.Bytes()))
	if err != nil {
		t.Fatalf("served snapshot does not verify: %v", err)
	}
	if info.Seq != 5 {
		t.Fatalf("served snapshot at seq %d, want 5", info.Seq)
	}
	if !bytes.Equal(snapshotBytes(t, st), snapshotBytes(t, svc.State())) {
		t.Fatal("served snapshot decodes to a different state")
	}
}

// TestFollowerResyncEqualsNeverLagged is the resync property test: a
// follower that lagged past segment retention and bootstrapped from the
// snapshot endpoint must end byte-identical to a follower that tailed
// every event — and so must cold recoveries of both directories.
func TestFollowerResyncEqualsNeverLagged(t *testing.T) {
	primaryDir := t.TempDir()
	// 512-byte segments + Keep 1 make retention aggressive.
	ts, svc, cm := newCheckpointedPrimary(t, primaryDir, 512, 1)

	freshDir, lagDir := t.TempDir(), t.TempDir()
	segOpts := SegmentOptions{MaxBytes: 1 << 20, Log: LogOptions{Format: FormatBinary}}
	fresh, err := NewFollower(ts.URL, freshDir, FollowerOptions{NumCategories: 3, Segment: segOpts})
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	lagged, err := NewFollower(ts.URL, lagDir, FollowerOptions{NumCategories: 3, Segment: segOpts})
	if err != nil {
		t.Fatal(err)
	}
	defer lagged.Close()

	// Both followers see the first burst; then `lagged` stalls while the
	// primary ingests enough to seal several segments and a checkpoint
	// retires them.
	submitN(t, svc, 6)
	syncUntilCaughtUp(t, fresh)
	syncUntilCaughtUp(t, lagged)

	submitN(t, svc, 40)
	syncUntilCaughtUp(t, fresh)
	res, err := cm.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if res.SegmentsRetired < 2 {
		t.Fatalf("checkpoint retired %d segments, want >= 2 — shrink MaxBytes", res.SegmentsRetired)
	}

	// The stalled follower's position is gone: 410 → ErrResyncNeeded.
	if _, err := lagged.SyncOnce(context.Background()); !errors.Is(err, ErrResyncNeeded) {
		t.Fatalf("stalled follower got %v, want ErrResyncNeeded", err)
	}
	info, err := lagged.Resync(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if info.Seq != 46 || lagged.Seq() != 46 || lagged.Resyncs() != 1 {
		t.Fatalf("resync landed at %d (follower seq %d, resyncs %d)", info.Seq, lagged.Seq(), lagged.Resyncs())
	}

	// The primary keeps moving; the resynced follower re-tails normally.
	submitN(t, svc, 5)
	syncUntilCaughtUp(t, fresh)
	syncUntilCaughtUp(t, lagged)

	want := snapshotBytes(t, svc.State())
	if !bytes.Equal(snapshotBytes(t, lagged.State()), want) {
		t.Fatal("resynced follower diverges from primary")
	}
	if !bytes.Equal(snapshotBytes(t, lagged.State()), snapshotBytes(t, fresh.State())) {
		t.Fatal("resynced follower diverges from the never-lagged follower")
	}

	// Takeover equivalence: both directories cold-recover to the same
	// state, through entirely different histories (full tail vs snapshot
	// install + tail).
	if err := fresh.Close(); err != nil {
		t.Fatal(err)
	}
	if err := lagged.Close(); err != nil {
		t.Fatal(err)
	}
	fromFresh, _, err := RecoverDir(freshDir, 3)
	if err != nil {
		t.Fatal(err)
	}
	fromLagged, _, err := RecoverDir(lagDir, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snapshotBytes(t, fromLagged), want) || !bytes.Equal(snapshotBytes(t, fromFresh), want) {
		t.Fatal("cold takeover after resync diverges")
	}
}

// failoverOptions returns fast-probe options for tests.
func failoverOptions(autoTakeover bool) FailoverOptions {
	return FailoverOptions{
		Follower: FollowerOptions{
			NumCategories: 3,
			Segment:       SegmentOptions{MaxBytes: 1 << 20, Log: LogOptions{Format: FormatBinary}},
			PollInterval:  5 * time.Millisecond,
			MaxBackoff:    20 * time.Millisecond,
		},
		ProbeInterval:   5 * time.Millisecond,
		ProbeTimeout:    250 * time.Millisecond,
		ProbeFailures:   3,
		ProbeMaxBackoff: 20 * time.Millisecond,
		AutoTakeover:    autoTakeover,
		Seed:            1,
		Solver:          greedySolver(),
		Params:          benefit.DefaultParams(),
		Server:          NewServerOptions(),
	}
}

// TestFailoverIgnoresTransientFlaps: a primary that answers every other
// probe 503 is flapping, not dead — the consecutive-failure threshold
// must never fill, and no promotion may happen.
func TestFailoverIgnoresTransientFlaps(t *testing.T) {
	primaryDir := t.TempDir()
	ts, svc := newPrimary(t, primaryDir)
	submitN(t, svc, 3)
	// Only the probe path flaps: every other healthz answers 503 while the
	// journal stream stays healthy — alive-but-struggling, not dead.
	proxy := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		proxyTo(t, w, r, ts.URL)
	})
	mux := http.NewServeMux()
	mux.Handle("GET /v1/healthz", faultinject.NewFlapHandler(proxy, faultinject.EveryNth(2)))
	mux.Handle("/", proxy)
	flappy := httptest.NewServer(mux)
	defer flappy.Close()

	fo, err := NewFailover(flappy.URL, t.TempDir(), failoverOptions(true))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 400*time.Millisecond)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- fo.Run(ctx) }()

	select {
	case <-fo.Promoted():
		t.Fatal("flapping primary triggered a takeover")
	case <-ctx.Done():
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if fo.Phase() != PhaseFollower {
		t.Fatalf("phase %q after flapping, want follower", fo.Phase())
	}
	if fo.Follower().Seq() != 3 {
		t.Fatalf("follower replicated to %d through the flaps, want 3", fo.Follower().Seq())
	}
}

// proxyTo forwards one request to base, copying status and body — enough
// of a reverse proxy for probe tests.
func proxyTo(t *testing.T, w http.ResponseWriter, r *http.Request, base string) {
	t.Helper()
	resp, err := http.Get(base + r.URL.String())
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	w.Write(buf.Bytes())
}

// TestFailoverAutoTakeover kills the primary outright and watches the
// supervisor promote: phase walks follower → primary, the promoted
// service carries epoch 1 and a promoted_at_seq, and the full API serves
// on the same handler.
func TestFailoverAutoTakeover(t *testing.T) {
	primaryDir := t.TempDir()
	_, svc := newPrimary(t, primaryDir)
	kill := faultinject.NewKillSwitch(NewServerWithOptions(svc, NewServerOptions()))
	front := httptest.NewServer(kill)
	defer front.Close()
	submitN(t, svc, 8)

	fo, err := NewFailover(front.URL, t.TempDir(), failoverOptions(true))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- fo.Run(ctx) }()

	// Let it replicate, then pull the plug.
	waitFor(t, time.Second, func() bool { return fo.Follower().Seq() == 8 })
	kill.Kill()
	select {
	case <-fo.Promoted():
	case <-time.After(5 * time.Second):
		t.Fatal("takeover never happened")
	}
	if fo.Phase() != PhasePrimary {
		t.Fatalf("phase %q after promotion", fo.Phase())
	}
	promoted, err := fo.Service()
	if err != nil {
		t.Fatal(err)
	}
	if promoted.Epoch() != 1 || promoted.PromotedAtSeq() != 9 {
		t.Fatalf("promoted epoch %d at seq %d, want 1 at 9", promoted.Epoch(), promoted.PromotedAtSeq())
	}

	// The supervisor now serves the full API: writes and health both work.
	srv := httptest.NewServer(fo)
	defer srv.Close()
	resp, _ := postJSON(t, srv.URL+"/v1/workers", validWorker())
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("promoted primary refused a write: %d", resp.StatusCode)
	}
	hresp, err := http.Get(srv.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var h HealthStatus
	if err := json.NewDecoder(hresp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Role != "primary" || h.Epoch != 1 || h.PromotedAtSeq != 9 || h.Status != "ok" {
		t.Fatalf("promoted healthz %+v", h)
	}

	cancel()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition never held")
}
