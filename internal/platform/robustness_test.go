package platform

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/benefit"
	"repro/internal/core"
	"repro/internal/faultinject"
)

// TestReadLogPartialCorruptionThenValidLines pins the truncate-at-first-
// corruption contract: valid lines *after* a corrupt one are dropped too,
// never resurrected — replaying them would build a state that diverges
// from what any pre-corruption reader saw.
func TestReadLogPartialCorruptionThenValidLines(t *testing.T) {
	data := buildCleanLog(t, 6)
	lines := bytes.Split(data, []byte("\n"))
	lines[2] = []byte(`{"seq":`) // torn mid-log; lines 3..5 remain valid JSON
	corrupted := bytes.Join(lines, []byte("\n"))

	events, dropped := ReadLogPartial(bytes.NewReader(corrupted))
	if dropped == nil {
		t.Fatal("corruption not reported")
	}
	if len(events) != 2 {
		t.Fatalf("recovered %d events, want only the 2 before the corruption", len(events))
	}

	state, replayErr, dropped2 := RecoverLog(3, bytes.NewReader(corrupted))
	if replayErr != nil {
		t.Fatal(replayErr)
	}
	if dropped2 == nil {
		t.Fatal("RecoverLog lost the diagnostic")
	}
	w, tk := state.Counts()
	if w+tk != 2 {
		t.Fatalf("recovered state has %d entities, want 2", w+tk)
	}
}

// TestSubmitRollsBackOnJournalFailure is the state-applied-but-journal-
// failed contract: a Submit whose append fails must leave the state as if
// the event never happened, and the journal must stay replayable to
// exactly the live state.
func TestSubmitRollsBackOnJournalFailure(t *testing.T) {
	var buf bytes.Buffer
	fw := faultinject.NewFlakyWriter(&buf, faultinject.Once(1)) // second append fails cleanly
	svc := mustService(t, NewLog(fw))

	if _, err := svc.Submit(NewWorkerJoined(validWorker())); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Submit(NewWorkerJoined(validWorker())); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("err = %v, want injected journal failure", err)
	}
	if w, _ := svc.State().Counts(); w != 1 {
		t.Fatalf("workers = %d after rollback, want 1", w)
	}
	// The rolled-back sequence number must be reused, not skipped, so the
	// journal stays gapless relative to the state.
	applied, err := svc.Submit(NewTaskPosted(validTask()))
	if err != nil {
		t.Fatal(err)
	}
	if applied.Seq != 2 {
		t.Fatalf("seq = %d after rollback, want 2", applied.Seq)
	}

	events, err := ReadLog(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := Replay(3, events)
	if err != nil {
		t.Fatal(err)
	}
	liveIn, _, _ := svc.State().Snapshot()
	replayIn, _, _ := replayed.Snapshot()
	if !reflect.DeepEqual(liveIn, replayIn) {
		t.Fatal("replayed state diverges from live state after rollback")
	}
}

// TestAppendRetriesTransientFailure: a clean (zero-byte) write failure is
// absorbed by the retry policy without the caller noticing.
func TestAppendRetriesTransientFailure(t *testing.T) {
	var buf bytes.Buffer
	fw := faultinject.NewFlakyWriter(&buf, faultinject.Once(0))
	l := NewLogWithOptions(fw, LogOptions{MaxRetries: 2, RetryBackoff: time.Microsecond})
	s := mustState(t)
	e, err := s.Apply(NewWorkerJoined(validWorker()))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(e); err != nil {
		t.Fatalf("retry did not absorb the transient failure: %v", err)
	}
	if fw.Injections() != 1 {
		t.Fatalf("injections = %d", fw.Injections())
	}
	if events, err := ReadLog(bytes.NewReader(buf.Bytes())); err != nil || len(events) != 1 {
		t.Fatalf("log after retry: %d events, err %v", len(events), err)
	}
}

// TestAppendPartialWritePoisonsLog: a torn line must poison the journal —
// appending past it would place live events after the corruption, where
// recovery's truncate-at-first-corruption policy silently drops them.
func TestAppendPartialWritePoisonsLog(t *testing.T) {
	var buf bytes.Buffer
	fw := faultinject.NewFlakyWriter(&buf, faultinject.Once(1))
	fw.Partial = true
	l := NewLog(fw)
	s := mustState(t)

	e1, err := s.Apply(NewWorkerJoined(validWorker()))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(e1); err != nil {
		t.Fatal(err)
	}
	e2, err := s.Apply(NewWorkerJoined(validWorker()))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(e2); err == nil || !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("torn append err = %v", err)
	}
	if !l.Poisoned() {
		t.Fatal("torn line did not poison the log")
	}
	e3, err := s.Apply(NewWorkerJoined(validWorker()))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(e3); !errors.Is(err, ErrLogPoisoned) {
		t.Fatalf("append on poisoned log = %v, want ErrLogPoisoned", err)
	}
	// Recovery sees the clean first line and reports the torn second.
	events, dropped := ReadLogPartial(bytes.NewReader(buf.Bytes()))
	if len(events) != 1 || dropped == nil {
		t.Fatalf("recovered %d events, dropped %v", len(events), dropped)
	}
}

// TestCloseRoundSurvivesSolverPanic: a panicking solver costs the round
// its assignment, not the process — and the round marker still journals,
// so recovery counts the round.
func TestCloseRoundSurvivesSolverPanic(t *testing.T) {
	var buf bytes.Buffer
	state := mustState(t)
	solver := faultinject.NewPanicSolver(core.Greedy{Kind: core.MutualWeight}, faultinject.After(0))
	svc, err := NewService(state, solver, benefit.DefaultParams(), NewLog(&buf), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Submit(NewWorkerJoined(validWorker())); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Submit(NewTaskPosted(validTask())); err != nil {
		t.Fatal(err)
	}
	res, err := svc.CloseRound()
	if err != nil {
		t.Fatalf("panic escaped the round: %v", err)
	}
	if res.SolveError == "" || !strings.Contains(res.SolveError, "panicked") {
		t.Fatalf("SolveError = %q", res.SolveError)
	}
	if len(res.Pairs) != 0 {
		t.Fatal("failed solve still assigned pairs")
	}
	if res.Seq == 0 {
		t.Fatal("round marker seq not surfaced")
	}
	if state.Rounds() != 1 {
		t.Fatalf("rounds = %d", state.Rounds())
	}
	recovered, replayErr, dropped := RecoverLog(3, bytes.NewReader(buf.Bytes()))
	if replayErr != nil || dropped != nil {
		t.Fatalf("recovery: %v / %v", replayErr, dropped)
	}
	if recovered.Rounds() != 1 {
		t.Fatalf("recovered rounds = %d", recovered.Rounds())
	}
}

// TestCloseRoundDeadlineDegrades is the platform-level acceptance test:
// exact under an impossible deadline degrades to a non-empty greedy
// assignment within 2× the deadline, with the degradation visible in the
// RoundResult.
func TestCloseRoundDeadlineDegrades(t *testing.T) {
	const deadline = 200 * time.Millisecond
	state := mustState(t)
	solver := core.NewDegrader(deadline,
		faultinject.SleepySolver{Inner: core.Exact{Kind: core.MutualWeight}, Delay: 10 * time.Second},
		faultinject.SleepySolver{Inner: core.LocalSearch{Kind: core.MutualWeight}, Delay: 10 * time.Second},
		core.Greedy{Kind: core.MutualWeight},
	)
	svc, err := NewService(state, solver, benefit.DefaultParams(), nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := svc.Submit(NewWorkerJoined(validWorker())); err != nil {
			t.Fatal(err)
		}
		if _, err := svc.Submit(NewTaskPosted(validTask())); err != nil {
			t.Fatal(err)
		}
	}
	start := time.Now()
	res, err := svc.CloseRound()
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed >= 2*deadline {
		t.Fatalf("round took %v, want < %v", elapsed, 2*deadline)
	}
	if len(res.Pairs) == 0 {
		t.Fatal("degraded round assigned nothing")
	}
	if res.ServedBy != "greedy" || res.DegradedFrom != "exact" || !res.SolveTimedOut {
		t.Fatalf("degradation not surfaced: %+v", res)
	}
}

// TestRoundResultSeqMatchesJournal: the surfaced marker seq is the one in
// the journal.
func TestRoundResultSeqMatchesJournal(t *testing.T) {
	var buf bytes.Buffer
	svc := mustService(t, NewLog(&buf))
	if _, err := svc.Submit(NewWorkerJoined(validWorker())); err != nil {
		t.Fatal(err)
	}
	res, err := svc.CloseRound()
	if err != nil {
		t.Fatal(err)
	}
	events, err := ReadLog(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	last := events[len(events)-1]
	if last.Kind != EventRoundClosed || last.Seq != res.Seq {
		t.Fatalf("journal tail %v vs result seq %d", last, res.Seq)
	}
}

// TestDegraderRNGDeterminism guards the rng.Split-per-stage design: two
// identically seeded services running the same degrader chain over the
// same submissions must produce identical rounds.
func TestDegraderRNGDeterminism(t *testing.T) {
	run := func() *RoundResult {
		state := mustState(t)
		svc, err := NewService(state, core.DefaultDegrader(), benefit.DefaultParams(), nil, 42)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			if _, err := svc.Submit(NewWorkerJoined(validWorker())); err != nil {
				t.Fatal(err)
			}
			if _, err := svc.Submit(NewTaskPosted(validTask())); err != nil {
				t.Fatal(err)
			}
		}
		res, err := svc.CloseRound()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a.Pairs, b.Pairs) {
		t.Fatal("identical seeds produced different rounds")
	}
}
