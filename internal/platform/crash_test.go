package platform

// Crash chaos suite: a deterministic market script (≥100 rounds of churn
// and round closes) is run to completion once crash-free, then re-run
// with a power cut injected at every crash point the checkpoint/segment
// writers expose — torn snapshot body, cut before the snapshot fsync/
// rename, torn segment append, cut mid-rotation.  After each crash the
// directory is recovered exactly as mbaserve would (RecoverDir +
// OpenSegmentedLog) and the script continues; the final state must be
// BYTE-IDENTICAL to the crash-free reference (snapshot encoding is
// deterministic, so equal bytes ⇔ equal states).
//
// The redo rule mirrors what a client retrying against a restarted
// server sees: an op whose call failed (rolled back) is redone, an op
// that committed before the machine died is not.  Run with `make crash`;
// seeded via CHAOS_SEED like the rest of the chaos suite.

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/benefit"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/market"
	"repro/internal/stats"
)

// crashOp is one scripted market operation.  Payloads are pre-generated
// at build time; removal targets are resolved at execution time against
// the committed state (deterministic: live IDs are sorted, pick indexes
// them), so the script replays identically across crash/recover runs.
type crashOp struct {
	kind byte // 'w' join, 't' post, 'W' leave, 'T' close, 'r' round
	w    market.Worker
	tk   market.Task
	pick int
}

func crashScriptWorker(rng *stats.RNG) market.Worker {
	w := market.Worker{
		Capacity:        1 + rng.Intn(3),
		Accuracy:        make([]float64, 3),
		Interest:        make([]float64, 3),
		ReservationWage: rng.Float64Range(0.5, 2),
	}
	for c := 0; c < 3; c++ {
		w.Accuracy[c] = rng.Float64Range(0.5, 0.99)
		w.Interest[c] = rng.Float64()
		if rng.Bool(0.5) {
			w.Specialties = append(w.Specialties, c)
		}
	}
	if len(w.Specialties) == 0 {
		w.Specialties = []int{rng.Intn(3)}
	}
	return w
}

func crashScriptTask(rng *stats.RNG) market.Task {
	return market.Task{
		Category:    rng.Intn(3),
		Replication: 1 + rng.Intn(3),
		Payment:     rng.Float64Range(1, 10),
		Difficulty:  rng.Float64Range(0, 0.9),
	}
}

func buildCrashScript(seed uint64, rounds int) []crashOp {
	rng := stats.NewRNG(seed)
	var ops []crashOp
	for r := 0; r < rounds; r++ {
		n := 6 + rng.Intn(5)
		for i := 0; i < n; i++ {
			switch k := rng.Intn(10); {
			case k < 3:
				ops = append(ops, crashOp{kind: 'w', w: crashScriptWorker(rng)})
			case k < 6:
				ops = append(ops, crashOp{kind: 't', tk: crashScriptTask(rng)})
			case k < 8:
				ops = append(ops, crashOp{kind: 'W', pick: rng.Intn(1 << 16)})
			default:
				ops = append(ops, crashOp{kind: 'T', pick: rng.Intn(1 << 16)})
			}
		}
		ops = append(ops, crashOp{kind: 'r'})
	}
	return ops
}

// execCrashOp runs one scripted op.  An error means the op did NOT
// commit (Submit/CloseRound roll back on journal failure) and must be
// redone after recovery.
func execCrashOp(svc *Service, op crashOp) error {
	switch op.kind {
	case 'w':
		_, err := svc.Submit(NewWorkerJoined(op.w))
		return err
	case 't':
		_, err := svc.Submit(NewTaskPosted(op.tk))
		return err
	case 'W':
		_, ids, _ := svc.State().Snapshot()
		if len(ids) == 0 {
			return nil
		}
		_, err := svc.Submit(NewWorkerLeft(ids[op.pick%len(ids)]))
		return err
	case 'T':
		_, _, ids := svc.State().Snapshot()
		if len(ids) == 0 {
			return nil
		}
		_, err := svc.Submit(NewTaskClosed(ids[op.pick%len(ids)]))
		return err
	case 'r':
		_, err := svc.CloseRound()
		return err
	}
	return nil
}

// buildCrashService assembles the mbaserve recovery+serve stack over dir:
// RecoverDir, then OpenSegmentedLog (which heals any torn tail), then
// service + checkpoint manager.  Aggressive rotation/checkpoint settings
// so a ~110-round script crosses many segment and snapshot boundaries.
func buildCrashService(t *testing.T, dir string, hook CrashHook) (*Service, *State) {
	t.Helper()
	st, _, err := RecoverDir(dir, 3)
	if err != nil {
		t.Fatalf("recovering %s: %v", dir, err)
	}
	seg, err := OpenSegmentedLog(dir, SegmentOptions{MaxBytes: 4 << 10, Hook: hook})
	if err != nil {
		t.Fatalf("opening segmented log: %v", err)
	}
	solver, err := core.ByName("greedy")
	if err != nil {
		t.Fatal(err)
	}
	svc, err := NewService(st, solver, benefit.DefaultParams(), seg, 1)
	if err != nil {
		t.Fatal(err)
	}
	cm, err := NewCheckpointManager(st, seg, CheckpointOptions{EveryRounds: 5, Keep: 2, Hook: hook})
	if err != nil {
		t.Fatal(err)
	}
	svc.SetCheckpointer(cm)
	return svc, st
}

// runCrashScript executes ops against dir, crashing at most once (per
// cr's schedule), recovering, and continuing to the end.  It verifies the
// crash→recover fidelity property at the crash itself — the recovered
// state must equal the committed in-memory state byte for byte — and
// returns the final state's snapshot bytes.
func runCrashScript(t *testing.T, dir string, ops []crashOp, cr *faultinject.Crasher) []byte {
	t.Helper()
	var hook CrashHook
	if cr != nil {
		hook = cr
	}
	svc, st := buildCrashService(t, dir, hook)
	armed := cr
	for i := 0; i < len(ops); {
		err := execCrashOp(svc, ops[i])
		fired := armed != nil && armed.Fired()
		if err != nil && !fired {
			t.Fatalf("op %d (%c) failed without a crash: %v", i, ops[i].kind, err)
		}
		if !fired {
			i++
			continue
		}
		// The machine died.  err != nil ⇒ the op rolled back: redo it after
		// recovery.  err == nil ⇒ it committed and the crash hit the
		// post-commit checkpoint: do NOT redo it.
		t.Logf("crashed at op %d (%c), committed seq %d", i, ops[i].kind, st.Seq())
		if err == nil {
			i++
		} else if !errors.Is(err, faultinject.ErrCrash) {
			t.Fatalf("op %d: crash-run failure is not the injected crash: %v", i, err)
		}
		committed := stateBytes(t, st)

		// "Restart": recover the directory exactly like a fresh process.
		rec, info, rerr := RecoverDir(dir, 3)
		if rerr != nil {
			t.Fatalf("recovery after crash at op %d: %v", i, rerr)
		}
		if got := stateBytes(t, rec); !bytes.Equal(got, committed) {
			t.Fatalf("crash at op %d: recovered state (seq %d) != committed state (seq %d)",
				i, rec.Seq(), st.Seq())
		}
		_ = info
		svc, st = buildCrashService(t, dir, nil)
		armed = nil
	}
	if cr != nil && !cr.Fired() {
		t.Fatal("crasher never fired — its schedule points past the workload; lower the hit count")
	}
	return stateBytes(t, st)
}

func TestCrashRecoveryFidelity(t *testing.T) {
	seed := chaosSeed(t)
	const rounds = 110
	ops := buildCrashScript(seed, rounds)

	ref := runCrashScript(t, t.TempDir(), ops, nil)
	_, refInfo, err := DecodeSnapshot(bytes.NewReader(ref))
	if err != nil {
		t.Fatalf("reference state does not decode: %v", err)
	}
	if refInfo.Rounds != rounds {
		t.Fatalf("reference closed %d rounds, want %d", refInfo.Rounds, rounds)
	}

	specs := []struct {
		name string
		mk   func() *faultinject.Crasher
	}{
		{"torn-snapshot-body", func() *faultinject.Crasher { return faultinject.NewTornCrasher(CrashSnapshotBody, 0) }},
		{"torn-snapshot-body-later", func() *faultinject.Crasher { return faultinject.NewTornCrasher(CrashSnapshotBody, 2) }},
		{"cut-before-snapshot-sync", func() *faultinject.Crasher { return faultinject.NewCrasher(CrashSnapshotSync, 1) }},
		{"cut-before-snapshot-rename", func() *faultinject.Crasher { return faultinject.NewCrasher(CrashSnapshotRename, 0) }},
		{"cut-before-snapshot-rename-later", func() *faultinject.Crasher { return faultinject.NewCrasher(CrashSnapshotRename, 3) }},
		{"torn-segment-write-early", func() *faultinject.Crasher { return faultinject.NewTornCrasher(CrashSegmentWrite, 5) }},
		{"torn-segment-write-mid", func() *faultinject.Crasher { return faultinject.NewTornCrasher(CrashSegmentWrite, 230) }},
		{"torn-segment-write-late", func() *faultinject.Crasher { return faultinject.NewTornCrasher(CrashSegmentWrite, 700) }},
		{"cut-creating-first-segment", func() *faultinject.Crasher { return faultinject.NewCrasher(CrashSegmentRotate, 0) }},
		{"cut-mid-rotation", func() *faultinject.Crasher { return faultinject.NewCrasher(CrashSegmentRotate, 1) }},
		{"cut-mid-rotation-later", func() *faultinject.Crasher { return faultinject.NewCrasher(CrashSegmentRotate, 4) }},
	}
	for _, spec := range specs {
		spec := spec
		t.Run(spec.name, func(t *testing.T) {
			t.Parallel()
			got := runCrashScript(t, t.TempDir(), ops, spec.mk())
			if !bytes.Equal(got, ref) {
				t.Fatal("final state after crash→recover→continue diverges from the crash-free reference")
			}
		})
	}
}

// TestCrashDuringHealRecovers is the double-fault case: a torn append
// leaves garbage on disk (the dying process cannot heal it), then the
// NEXT startup is also cut down — right before its truncate-then-append
// heal.  The torn tail must survive untouched, and the startup after
// that must heal it and lose nothing.
func TestCrashDuringHealRecovers(t *testing.T) {
	dir := t.TempDir()
	s := mustState(t)
	cr := faultinject.NewTornCrasher(CrashSegmentWrite, 3)
	sl, err := OpenSegmentedLog(dir, SegmentOptions{MaxBytes: 1 << 20, Hook: cr})
	if err != nil {
		t.Fatal(err)
	}
	appendJoins(t, s, sl, 3)
	if _, err := s.ApplyJournaled(NewWorkerJoined(validWorker()), sl.Append); !errors.Is(err, faultinject.ErrCrash) {
		t.Fatalf("4th append: got %v, want the injected crash", err)
	}
	committed := stateBytes(t, s)

	// Restart #1 dies before the heal truncation: OpenSegmentedLog must
	// fail rather than open a journal it could not clean.
	if _, err := OpenSegmentedLog(dir, SegmentOptions{Hook: faultinject.NewCrasher(CrashSegmentHeal, 0)}); !errors.Is(err, faultinject.ErrCrash) {
		t.Fatalf("open with a heal-point crash: got %v, want the injected crash", err)
	}

	// The torn bytes are still on disk; recovery still lands exactly on
	// the committed state.
	rec, info, err := RecoverDir(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	if info.TailDropped == nil {
		t.Fatal("torn tail vanished without a heal")
	}
	if !bytes.Equal(stateBytes(t, rec), committed) {
		t.Fatal("recovery with a torn tail diverged from the committed state")
	}

	// Restart #2 is clean: heal, append, nothing lost.
	sl2, err := OpenSegmentedLog(dir, SegmentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sl2.Dropped() == nil {
		t.Fatal("clean restart did not report the tail it healed")
	}
	appendJoins(t, rec, sl2, 2)
	if err := sl2.Close(); err != nil {
		t.Fatal(err)
	}
	final, _, err := RecoverDir(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	if final.Seq() != 5 {
		t.Fatalf("final seq %d, want 5 (3 committed + 2 after heal)", final.Seq())
	}
}
