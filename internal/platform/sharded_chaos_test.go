package platform

// Sharded chaos suite: ≥120 rounds over a 4-shard service with one shard's
// journal injecting fault bursts, every shard's solver panicking on its own
// schedule, and concurrent churn through the routing layer.  Picked up by
// `make chaos` alongside the single-market run.  A single flaky shard is the
// deliberate fault model: it exercises every sharded failure path — fan-out
// submit failure, cross-shard compensation, marker-commit failure, retry —
// while compensation itself always lands on clean journals, mirroring the
// single-machine-failure assumption the crash suite makes.

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/benefit"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/market"
	"repro/internal/stats"
)

const (
	chaosShardedShards     = 4
	chaosShardedCategories = 6
	chaosShardedFlakyShard = 1 // markers fail here; shards 2,3 never inflate
)

// chaosShardedWorker draws a worker profile spanning 1–3 of the 6
// categories, so a large fraction of the population is resident in several
// shards and the reconciliation + fan-out paths stay hot.
func chaosShardedWorker(rng *stats.RNG) market.Worker {
	w := market.Worker{
		Capacity:        1 + rng.Intn(3),
		Accuracy:        make([]float64, chaosShardedCategories),
		Interest:        make([]float64, chaosShardedCategories),
		ReservationWage: 0.5 + rng.Float64(),
	}
	for c := range w.Accuracy {
		w.Accuracy[c] = 0.5 + 0.5*rng.Float64()
		w.Interest[c] = rng.Float64()
	}
	n := 1 + rng.Intn(3)
	for len(w.Specialties) < n {
		c := rng.Intn(chaosShardedCategories)
		dup := false
		for _, sp := range w.Specialties {
			if sp == c {
				dup = true
				break
			}
		}
		if !dup {
			w.Specialties = append(w.Specialties, c)
		}
	}
	return w
}

func chaosShardedTask(rng *stats.RNG) market.Task {
	return market.Task{
		Category:    rng.Intn(chaosShardedCategories),
		Replication: 1 + rng.Intn(2),
		Payment:     2 + 4*rng.Float64(),
		Difficulty:  0.2 + 0.5*rng.Float64(),
	}
}

func TestChaosShardedRounds(t *testing.T) {
	const (
		targetRounds = 120
		churners     = 3
		churnIters   = 400
	)
	seed := chaosSeed(t)

	// One shard's journal fails in bursts of two (defeating MaxRetries 1);
	// the rest are clean, so compensation for a partial fan-out is always
	// recoverable — the run must end with zero cross-shard inconsistency.
	var bufs [chaosShardedShards]bytes.Buffer
	var flaky *faultinject.FlakyWriter
	bundles := make([]Shard, chaosShardedShards)
	for k := range bundles {
		st, err := NewState(chaosShardedCategories)
		if err != nil {
			t.Fatal(err)
		}
		var w *faultinject.FlakyWriter
		if k == chaosShardedFlakyShard {
			w = faultinject.NewFlakyWriter(&bufs[k], func(op int) bool { return op%17 < 2 })
			flaky = w
		} else {
			w = faultinject.NewFlakyWriter(&bufs[k], func(int) bool { return false })
		}
		// Every shard gets its own degrader chain with its own panic
		// schedules — shards solve concurrently and the round must absorb a
		// panicking shard (empty contribution, SolveError) without failing.
		solver := core.NewDegrader(0,
			faultinject.NewPanicSolver(core.LocalSearch{Kind: core.MutualWeight}, faultinject.EveryNth(5+k)),
			faultinject.NewPanicSolver(core.Greedy{Kind: core.MutualWeight}, faultinject.EveryNth(11+k)),
		)
		bundles[k] = Shard{
			State:   st,
			Solver:  solver,
			Journal: NewLogWithOptions(w, LogOptions{MaxRetries: 1, RetryBackoff: 50 * time.Microsecond}),
		}
	}
	ss, err := NewShardedService(bundles, benefit.DefaultParams(), ShardedOptions{}, seed)
	if err != nil {
		t.Fatal(err)
	}

	// profiles records every committed worker so merged rounds can be
	// capacity-checked; entries are never deleted (a removed worker must
	// simply stop appearing in pairs, which the ledger checks).
	var profMu sync.Mutex
	profiles := map[int]market.Worker{}
	recordWorker := func(id int, w market.Worker) {
		profMu.Lock()
		profiles[id] = w
		profMu.Unlock()
	}

	mustSubmit := func(e Event) Event {
		for {
			ev, err := ss.Submit(e)
			if err == nil {
				return ev
			}
			if !errors.Is(err, faultinject.ErrInjected) {
				t.Fatal(err)
			}
		}
	}
	seedRNG := stats.NewRNG(seed + 7)
	for i := 0; i < 12; i++ {
		w := chaosShardedWorker(seedRNG)
		ev := mustSubmit(NewWorkerJoined(w))
		recordWorker(ev.Worker.ID, w)
		mustSubmit(NewTaskPosted(chaosShardedTask(seedRNG)))
	}

	ledger := newRemovalLedger()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < churners; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := stats.NewRNG(seed + uint64(g) + 100)
			var myWorkers, myTasks []int
			for i := 0; i < churnIters; i++ {
				select {
				case <-stop:
					return
				default:
				}
				switch rng.Intn(4) {
				case 0:
					w := chaosShardedWorker(rng)
					if e, err := ss.Submit(NewWorkerJoined(w)); err == nil {
						recordWorker(e.Worker.ID, w)
						myWorkers = append(myWorkers, e.Worker.ID)
					}
				case 1:
					if e, err := ss.Submit(NewTaskPosted(chaosShardedTask(rng))); err == nil {
						myTasks = append(myTasks, e.Task.ID)
					}
				case 2:
					if len(myWorkers) > 1 {
						k := rng.Intn(len(myWorkers))
						id := myWorkers[k]
						if _, err := ss.Submit(NewWorkerLeft(id)); err == nil {
							ledger.markWorker(id)
							myWorkers = append(myWorkers[:k], myWorkers[k+1:]...)
						}
					}
				case 3:
					if len(myTasks) > 1 {
						k := rng.Intn(len(myTasks))
						id := myTasks[k]
						if _, err := ss.Submit(NewTaskClosed(id)); err == nil {
							ledger.markTask(id)
							myTasks = append(myTasks[:k], myTasks[k+1:]...)
						}
					}
				}
			}
		}(g)
	}

	rounds, failedRounds, degradedRounds := 0, 0, 0
	for rounds < targetRounds {
		deadWorkers, deadTasks := ledger.snapshot()
		res, err := ss.CloseRound()
		if err != nil {
			// Only the flaky shard's marker append can fail the round; the
			// commit aborts there, so Rounds() (the min) is untouched.
			if !errors.Is(err, faultinject.ErrInjected) {
				t.Fatalf("round failed for a non-injected reason: %v", err)
			}
			failedRounds++
			continue
		}
		rounds++
		if res.SolveError != "" {
			degradedRounds++
		}
		// Stale-assignment check (per entity) and merged feasibility check
		// (per spanning worker, across shard contributions).
		perWorker := map[int]int{}
		seenPair := map[[2]int]bool{}
		for _, pr := range res.Pairs {
			if deadWorkers[pr.WorkerID] {
				t.Fatalf("round %d assigned worker %d removed before the round began", rounds, pr.WorkerID)
			}
			if deadTasks[pr.TaskID] {
				t.Fatalf("round %d assigned task %d closed before the round began", rounds, pr.TaskID)
			}
			key := [2]int{pr.WorkerID, pr.TaskID}
			if seenPair[key] {
				t.Fatalf("round %d emitted duplicate pair (%d,%d)", rounds, pr.WorkerID, pr.TaskID)
			}
			seenPair[key] = true
			perWorker[pr.WorkerID]++
		}
		for wid, n := range perWorker {
			profMu.Lock()
			w, ok := profiles[wid]
			profMu.Unlock()
			if !ok {
				// The join committed but the churner hasn't recorded it yet
				// (Submit returns before recordWorker runs); read the profile
				// from the live shards instead.  A worker that already left
				// again can't be capacity-checked — the ledger check above
				// already proved it wasn't removed before the round began.
				for k := 0; k < ss.NumShards() && !ok; k++ {
					w, ok = ss.ShardState(k).Worker(wid)
				}
				if !ok {
					continue
				}
			}
			if n > w.Capacity {
				t.Fatalf("round %d over-subscribed spanning worker %d: %d > %d", rounds, wid, n, w.Capacity)
			}
		}
	}
	close(stop)
	wg.Wait()

	if got := ss.Rounds(); got != rounds {
		t.Fatalf("service counts %d rounds, loop closed %d", got, rounds)
	}
	if flaky.Injections() == 0 {
		t.Fatal("chaos run injected no journal faults — schedule dead")
	}

	// Every shard's journal must be perfectly clean and replay to exactly
	// that shard's live state — including the flaky one, whose failed
	// appends all rolled back or retried into success.  (Per-shard round
	// counters may legitimately exceed the service minimum: shards before
	// the flaky one keep their marker when a commit aborts.)
	totalEvents := 0
	for k := range bufs {
		events, err := ReadLog(bytes.NewReader(bufs[k].Bytes()))
		if err != nil {
			t.Fatalf("shard %d journal corrupt after chaos: %v", k, err)
		}
		totalEvents += len(events)
		replayed, err := Replay(chaosShardedCategories, events)
		if err != nil {
			t.Fatalf("shard %d replay: %v", k, err)
		}
		if !bytes.Equal(stateBytes(t, replayed), stateBytes(t, ss.ShardState(k))) {
			t.Fatalf("shard %d: replayed journal diverges from live state", k)
		}
		if r := ss.ShardState(k).Rounds(); r < rounds {
			t.Fatalf("shard %d committed %d rounds, service closed %d", k, r, rounds)
		}
	}
	t.Logf("sharded chaos: %d rounds (%d marker failures retried, %d with a degraded shard), %d faults injected on shard %d, %d events across %d journals",
		rounds, failedRounds, degradedRounds, flaky.Injections(), chaosShardedFlakyShard, totalEvents, chaosShardedShards)
}
