package platform

import (
	"fmt"
	"path/filepath"
	"sort"
)

// ShardRouter maps market entities onto shards.  The key is the category:
// a task lives in exactly the shard that owns its category, and a worker is
// resident in every shard owning one of its specialties (its first
// specialty's shard is its home).  Because the benefit model only creates
// edges between a worker and tasks in its specialty categories, this
// placement puts every eligible (worker, task) edge in exactly one shard —
// per-shard solves see complete local markets, and only workers whose
// specialties span shards can be globally over-subscribed (the
// reconciliation pass's job).
//
// The mapping is a pure function of (category, Shards): routing tables can
// always be rebuilt from recovered shard states, and a shard-count change
// is detectable as residency that contradicts the router.
type ShardRouter struct {
	// Shards is the shard count (≥ 1).
	Shards int
}

// shardOfCategory spreads categories over shards with a splitmix64-style
// finalizer rather than bare modulo, so striped category numbering (common
// in generators) cannot alias all load onto few shards.
func shardOfCategory(category, shards int) int {
	x := uint64(category)*0x9e3779b97f4a7c15 + 0x632be59bd9b4e019
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int(x % uint64(shards))
}

// TaskShard returns the shard owning a task category.
func (r ShardRouter) TaskShard(category int) int {
	return shardOfCategory(category, r.Shards)
}

// WorkerShards returns the sorted, deduplicated shard set a worker with the
// given specialties is resident in.  The result is never empty for a valid
// profile (validateWorkerProfile requires at least one specialty).
func (r ShardRouter) WorkerShards(specialties []int) []int {
	out := make([]int, 0, len(specialties))
	for _, sp := range specialties {
		k := shardOfCategory(sp, r.Shards)
		dup := false
		for _, kk := range out {
			if kk == k {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, k)
		}
	}
	sort.Ints(out)
	return out
}

// ShardDir returns the per-shard journal/snapshot directory under a sharded
// service's root: <dir>/shard-0003.  Each shard's SegmentedLog, snapshots
// and CheckpointManager all live in its own subdirectory, so single-shard
// recovery (RecoverDir on one subdirectory) never reads another shard's
// files.
func ShardDir(dir string, shard int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%04d", shard))
}

// RecoverShardedDir recovers all shards of a sharded service's directory
// layout: shard k is recovered independently from ShardDir(dir, k) via
// RecoverDir (newest valid snapshot plus the journal tail).  Missing
// subdirectories recover as empty shards, so a fresh directory boots a
// fresh service.
func RecoverShardedDir(dir string, numCategories, shards int) ([]*State, []*RecoveryInfo, error) {
	if shards < 1 {
		return nil, nil, fmt.Errorf("platform: shard count %d < 1", shards)
	}
	states := make([]*State, shards)
	infos := make([]*RecoveryInfo, shards)
	for k := 0; k < shards; k++ {
		st, info, err := RecoverDir(ShardDir(dir, k), numCategories)
		if err != nil {
			return nil, nil, fmt.Errorf("platform: recovering shard %d: %w", k, err)
		}
		states[k] = st
		infos[k] = info
	}
	return states, infos, nil
}
