package platform

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// appendJoins journals n worker_joined events through the state, the same
// apply-then-journal path the service uses.
func appendJoins(t *testing.T, s *State, jnl Journal, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := s.ApplyJournaled(NewWorkerJoined(validWorker()), jnl.Append); err != nil {
			t.Fatal(err)
		}
	}
}

// readAllSegments replays every segment in dir in order and asserts the
// events are sequence-contiguous starting at 1.
func readAllSegments(t *testing.T, dir string) []Event {
	t.Helper()
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	var all []Event
	for _, sg := range segs {
		f, err := os.Open(sg.Path)
		if err != nil {
			t.Fatal(err)
		}
		events, _, dropped := readLogPartialOffset(f)
		f.Close()
		if dropped != nil {
			t.Fatalf("segment %s not clean: %v", sg.Path, dropped)
		}
		if len(events) == 0 || events[0].Seq != sg.FirstSeq {
			t.Fatalf("segment %s name says first seq %d, content starts at %v", sg.Path, sg.FirstSeq, events)
		}
		all = append(all, events...)
	}
	for i, e := range all {
		if e.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d, want %d (segments not contiguous)", i, e.Seq, i+1)
		}
	}
	return all
}

func TestSegmentedLogRotatesBySize(t *testing.T) {
	dir := t.TempDir()
	sl, err := OpenSegmentedLog(dir, SegmentOptions{MaxBytes: 600})
	if err != nil {
		t.Fatal(err)
	}
	s := mustState(t)
	appendJoins(t, s, sl, 20)
	if err := sl.Close(); err != nil {
		t.Fatal(err)
	}

	segs := sl.Segments()
	if len(segs) < 3 {
		t.Fatalf("20 events with MaxBytes=600 produced only %d segments", len(segs))
	}
	for i := 1; i < len(segs); i++ {
		if segs[i].FirstSeq <= segs[i-1].FirstSeq {
			t.Fatalf("segments out of order: %+v", segs)
		}
	}
	if got := readAllSegments(t, dir); len(got) != 20 {
		t.Fatalf("replayed %d events, want 20", len(got))
	}
	st, _, err := RecoverDir(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(stateBytes(t, st), stateBytes(t, s)) {
		t.Fatal("recovered state differs from the journaling state")
	}
}

func TestSegmentedLogRotatesByRounds(t *testing.T) {
	dir := t.TempDir()
	sl, err := OpenSegmentedLog(dir, SegmentOptions{MaxBytes: -1, RotateRounds: 2})
	if err != nil {
		t.Fatal(err)
	}
	s := mustState(t)
	for r := 1; r <= 6; r++ {
		appendJoins(t, s, sl, 2)
		if _, err := s.ApplyJournaled(NewRoundClosed(r), sl.Append); err != nil {
			t.Fatal(err)
		}
	}
	// 6 rounds at 2 rounds per segment → 3 sealed segments, no active one.
	segs := sl.Segments()
	if len(segs) != 3 {
		t.Fatalf("6 rounds with RotateRounds=2 produced %d segments, want 3", len(segs))
	}
	readAllSegments(t, dir)
}

func TestSegmentedLogReopenAppends(t *testing.T) {
	dir := t.TempDir()
	opts := SegmentOptions{MaxBytes: 800}
	sl, err := OpenSegmentedLog(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	s := mustState(t)
	appendJoins(t, s, sl, 7)
	if err := sl.Close(); err != nil {
		t.Fatal(err)
	}

	sl2, err := OpenSegmentedLog(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if sl2.Dropped() != nil {
		t.Fatalf("clean directory reported a torn tail: %v", sl2.Dropped())
	}
	appendJoins(t, s, sl2, 7)
	if err := sl2.Close(); err != nil {
		t.Fatal(err)
	}
	if got := readAllSegments(t, dir); len(got) != 14 {
		t.Fatalf("replayed %d events, want 14", len(got))
	}
}

func TestSegmentedLogHealsTornTailOnOpen(t *testing.T) {
	dir := t.TempDir()
	opts := SegmentOptions{MaxBytes: 1 << 20}
	sl, err := OpenSegmentedLog(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	s := mustState(t)
	appendJoins(t, s, sl, 5)
	if err := sl.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-append: garbage without a newline at the tail.
	segs, _ := listSegments(dir)
	last := segs[len(segs)-1].Path
	f, err := os.OpenFile(last, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":6,"kind":"worker_joi`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	sl2, err := OpenSegmentedLog(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if sl2.Dropped() == nil {
		t.Fatal("torn tail not reported")
	}
	// The torn bytes must be gone BEFORE new appends land.
	appendJoins(t, s, sl2, 3)
	if err := sl2.Close(); err != nil {
		t.Fatal(err)
	}
	if got := readAllSegments(t, dir); len(got) != 8 {
		t.Fatalf("replayed %d events, want 8 (5 + 3 after heal)", len(got))
	}
}

// flakyHook tears one scheduled write in half — a transient I/O fault the
// process survives, unlike faultinject.Crasher's power cut.
type flakyHook struct {
	point string
	hit   int
	seen  int
}

func (h *flakyHook) At(string) error { return nil }
func (h *flakyHook) Wrap(point string, w io.Writer) io.Writer {
	if point != h.point {
		return w
	}
	return &flakyTornWriter{h: h, w: w}
}

type flakyTornWriter struct {
	h *flakyHook
	w io.Writer
}

func (fw *flakyTornWriter) Write(p []byte) (int, error) {
	n := fw.h.seen
	fw.h.seen++
	if n != fw.h.hit {
		return fw.w.Write(p)
	}
	k, _ := fw.w.Write(p[:len(p)/2])
	return k, errors.New("flaky: torn write")
}

func TestSegmentedLogTornAppendHealsInPlace(t *testing.T) {
	dir := t.TempDir()
	sl, err := OpenSegmentedLog(dir, SegmentOptions{
		MaxBytes: 1 << 20,
		Hook:     &flakyHook{point: CrashSegmentWrite, hit: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := mustState(t)
	appendJoins(t, s, sl, 3)

	// The 4th append tears mid-line; ApplyJournaled must roll it back.
	if _, err := s.ApplyJournaled(NewWorkerJoined(validWorker()), sl.Append); err == nil {
		t.Fatal("torn append reported success")
	}
	if s.Seq() != 3 {
		t.Fatalf("state seq %d after rollback, want 3", s.Seq())
	}

	// Truncate-then-append: the next event reuses the rolled-back seq and
	// lands on a clean line boundary — no garbage in between.
	appendJoins(t, s, sl, 2)
	if err := sl.Close(); err != nil {
		t.Fatal(err)
	}
	if got := readAllSegments(t, dir); len(got) != 5 {
		t.Fatalf("replayed %d events, want 5", len(got))
	}
}

func TestSegmentedLogRetireThrough(t *testing.T) {
	dir := t.TempDir()
	sl, err := OpenSegmentedLog(dir, SegmentOptions{MaxBytes: 400})
	if err != nil {
		t.Fatal(err)
	}
	s := mustState(t)
	appendJoins(t, s, sl, 10)
	snapAt := s.Seq()
	if _, _, err := WriteSnapshot(dir, s, nil); err != nil {
		t.Fatal(err)
	}
	appendJoins(t, s, sl, 10)

	removed, err := sl.RetireThrough(snapAt)
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Fatal("nothing retired despite a snapshot covering several segments")
	}
	// Only provably-covered segments may go: every survivor's events must
	// still recover the full state on top of the snapshot.
	for _, sg := range sl.Segments() {
		if _, err := os.Stat(sg.Path); err != nil {
			t.Fatalf("listed segment missing on disk: %v", err)
		}
	}
	st, info, err := RecoverDir(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(stateBytes(t, st), stateBytes(t, s)) {
		t.Fatal("recovery after retirement lost events")
	}
	if info.Snapshot.Seq != snapAt {
		t.Fatalf("recovery used snapshot at seq %d, want %d", info.Snapshot.Seq, snapAt)
	}
}

// TestOpenJournalTornTailTwiceRestart is the single-file regression test:
// crash mid-write, restart, append, crash mid-write again, restart — no
// committed event may be lost at any point (the reopen must truncate the
// torn tail BEFORE appending, or the second recovery drops live events).
func TestOpenJournalTornTailTwiceRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	tear := func() {
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteString(`{"seq":99,"kind":"wor`); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}

	total := 0
	for restart := 0; restart < 2; restart++ {
		jf, err := OpenJournal(path, 3, LogOptions{})
		if err != nil {
			t.Fatalf("restart %d: %v", restart, err)
		}
		if restart > 0 {
			if jf.Dropped == nil || jf.Truncated == 0 {
				t.Fatalf("restart %d: torn tail not detected/truncated (dropped=%v truncated=%d)",
					restart, jf.Dropped, jf.Truncated)
			}
		}
		if got, _ := jf.State.Counts(); got != total {
			t.Fatalf("restart %d: recovered %d workers, want %d — committed events lost", restart, got, total)
		}
		appendJoins(t, jf.State, jf.Log, 4)
		total += 4
		if err := jf.File.Close(); err != nil {
			t.Fatal(err)
		}
		tear()
	}

	// Final restart: everything ever committed is still there.
	jf, err := OpenJournal(path, 3, LogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer jf.File.Close()
	if got, _ := jf.State.Counts(); got != total {
		t.Fatalf("final recovery has %d workers, want %d", got, total)
	}
	if jf.State.Seq() != uint64(total) {
		t.Fatalf("final seq %d, want %d", jf.State.Seq(), total)
	}
}

// recordingSyncer observes the Sync calls FsyncAlways performs.
type recordingSyncer struct{ syncs int }

func (r *recordingSyncer) Sync() error { r.syncs++; return nil }

// TestSegmentedLogFsyncAlwaysReachesFile guards the durability contract of
// -fsync always in segmented mode: the Log's write path hides the segment
// file behind a byte counter (and, under fault injection, a crash
// wrapper), neither of which forwards Sync, so the fsync target must be
// plumbed explicitly — otherwise FsyncAlways silently degrades to
// page-cache durability.
func TestSegmentedLogFsyncAlwaysReachesFile(t *testing.T) {
	dir := t.TempDir()
	sl, err := OpenSegmentedLog(dir, SegmentOptions{Log: LogOptions{Fsync: FsyncAlways}})
	if err != nil {
		t.Fatal(err)
	}
	s := mustState(t)
	appendJoins(t, s, sl, 1) // opens the first segment, building its log chain

	if got, ok := sl.log.opts.Syncer.(*os.File); !ok || got != sl.f {
		t.Fatalf("active segment's sync target is %T, want the segment file", sl.log.opts.Syncer)
	}

	// Per-append fsync actually fires: substitute an observable target.
	rec := &recordingSyncer{}
	sl.log.opts.Syncer = rec
	appendJoins(t, s, sl, 2)
	if rec.syncs != 2 {
		t.Fatalf("FsyncAlways synced %d times over 2 appends, want 2", rec.syncs)
	}

	// Reopening an existing directory plumbs the tail segment the same way.
	if err := sl.Close(); err != nil {
		t.Fatal(err)
	}
	sl2, err := OpenSegmentedLog(dir, SegmentOptions{Log: LogOptions{Fsync: FsyncAlways}})
	if err != nil {
		t.Fatal(err)
	}
	defer sl2.Close()
	if got, ok := sl2.log.opts.Syncer.(*os.File); !ok || got != sl2.f {
		t.Fatalf("reopened segment's sync target is %T, want the segment file", sl2.log.opts.Syncer)
	}
}
