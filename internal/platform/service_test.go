package platform

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/benefit"
	"repro/internal/core"
	"repro/internal/market"
)

func mustService(t *testing.T, log *Log) *Service {
	t.Helper()
	s := mustState(t)
	svc, err := NewService(s, core.Greedy{Kind: core.MutualWeight}, benefit.DefaultParams(), log, 1)
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

func TestNewServiceValidation(t *testing.T) {
	s := mustState(t)
	if _, err := NewService(nil, core.Greedy{}, benefit.DefaultParams(), nil, 1); err == nil {
		t.Fatal("nil state accepted")
	}
	if _, err := NewService(s, nil, benefit.DefaultParams(), nil, 1); err == nil {
		t.Fatal("nil solver accepted")
	}
	if _, err := NewService(s, core.Greedy{}, benefit.Params{Lambda: 3}, nil, 1); err == nil {
		t.Fatal("bad params accepted")
	}
}

func TestCloseRoundAssigns(t *testing.T) {
	svc := mustService(t, nil)
	for i := 0; i < 4; i++ {
		if _, err := svc.Submit(NewWorkerJoined(validWorker())); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if _, err := svc.Submit(NewTaskPosted(validTask())); err != nil {
			t.Fatal(err)
		}
	}
	res, err := svc.CloseRound()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) == 0 {
		t.Fatal("no assignments made")
	}
	if res.Round != 1 || svc.State().Rounds() != 1 {
		t.Fatalf("round counter = %d / %d", res.Round, svc.State().Rounds())
	}
	// Pairs reference live platform identities.
	for _, p := range res.Pairs {
		if p.Mutual <= 0 {
			t.Fatalf("pair with no benefit: %+v", p)
		}
	}
}

func TestCloseRoundEmptyMarket(t *testing.T) {
	svc := mustService(t, nil)
	res, err := svc.CloseRound()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 0 || res.Round != 1 {
		t.Fatalf("res = %+v", res)
	}
}

func TestServiceJournalsEverything(t *testing.T) {
	var buf bytes.Buffer
	svc := mustService(t, NewLog(&buf))
	svc.Submit(NewWorkerJoined(validWorker()))
	svc.Submit(NewTaskPosted(validTask()))
	if _, err := svc.CloseRound(); err != nil {
		t.Fatal(err)
	}
	events, err := ReadLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 { // join, post, round marker
		t.Fatalf("journal has %d events", len(events))
	}
	replayed, err := Replay(3, events)
	if err != nil {
		t.Fatal(err)
	}
	if replayed.Rounds() != 1 {
		t.Fatal("round marker lost in replay")
	}
}

func TestServiceConcurrentSubmit(t *testing.T) {
	svc := mustService(t, NewLog(&bytes.Buffer{}))
	var wg sync.WaitGroup
	const n = 50
	errs := make(chan error, 2*n)
	for i := 0; i < n; i++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			if _, err := svc.Submit(NewWorkerJoined(validWorker())); err != nil {
				errs <- err
			}
		}()
		go func() {
			defer wg.Done()
			if _, err := svc.Submit(NewTaskPosted(validTask())); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	w, tk := svc.State().Counts()
	if w != n || tk != n {
		t.Fatalf("counts (%d,%d), want (%d,%d)", w, tk, n, n)
	}
	if _, err := svc.CloseRound(); err != nil {
		t.Fatal(err)
	}
}

func TestServiceWithExactSolver(t *testing.T) {
	s := mustState(t)
	svc, err := NewService(s, core.Exact{Kind: core.MutualWeight}, benefit.DefaultParams(), nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		svc.Submit(NewWorkerJoined(validWorker()))
		tk := market.Task{Category: 2, Replication: 1, Payment: 3, Difficulty: 0.1}
		svc.Submit(NewTaskPosted(tk))
	}
	res, err := svc.CloseRound()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 3 {
		t.Fatalf("pairs = %d, want 3", len(res.Pairs))
	}
}
