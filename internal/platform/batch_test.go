package platform

// Batch ingest tests: POST /v1/batch's all-or-nothing contract on both
// backends.  A batch either fully applies — one contiguous journal append
// per shard — or leaves state, journal, and routing tables exactly as
// they were, including under mid-fan-out journal failures on a sharded
// backend (compensation) and intra-batch entity lifecycles.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"repro/internal/benefit"
	"repro/internal/faultinject"
)

// assertReplayMatches replays journal bytes and compares against the live
// state — the memory-equals-disk invariant every batch path must keep.
func assertReplayMatches(t *testing.T, ncat int, journal []byte, live *State) {
	t.Helper()
	events, err := ReadLog(bytes.NewReader(journal))
	if err != nil {
		t.Fatalf("journal corrupt: %v", err)
	}
	replayed, err := Replay(ncat, events)
	if err != nil {
		t.Fatal(err)
	}
	liveIn, liveW, liveT := live.Snapshot()
	repIn, repW, repT := replayed.Snapshot()
	if !reflect.DeepEqual(liveIn, repIn) || !reflect.DeepEqual(liveW, repW) || !reflect.DeepEqual(liveT, repT) {
		t.Fatal("replayed state diverges from live state")
	}
	if replayed.Seq() != live.Seq() {
		t.Fatalf("replayed seq %d, live seq %d", replayed.Seq(), live.Seq())
	}
}

func TestServiceSubmitBatch(t *testing.T) {
	var buf bytes.Buffer
	log := NewLog(&buf)
	svc := mustService(t, log)

	applied, err := svc.SubmitBatch([]Event{
		NewWorkerJoined(validWorker()),
		NewWorkerJoined(validWorker()),
		NewTaskPosted(validTask()),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(applied) != 3 {
		t.Fatalf("applied %d events, want 3", len(applied))
	}
	for i, e := range applied {
		if want := uint64(i + 1); e.Seq != want {
			t.Fatalf("batch seqs not contiguous: event %d has seq %d", i, e.Seq)
		}
	}
	if w, tk := svc.Counts(); w != 2 || tk != 1 {
		t.Fatalf("counts after batch: %d workers %d tasks", w, tk)
	}

	// An invalid event anywhere rejects the whole batch: nothing applies,
	// nothing is journaled.
	journalLen := buf.Len()
	_, err = svc.SubmitBatch([]Event{
		NewTaskPosted(validTask()),
		NewWorkerLeft(999), // not live
		NewTaskPosted(validTask()),
	})
	if err == nil {
		t.Fatal("batch with an invalid event accepted")
	}
	if w, tk := svc.Counts(); w != 2 || tk != 1 {
		t.Fatalf("failed batch leaked state: %d workers %d tasks", w, tk)
	}
	if buf.Len() != journalLen {
		t.Fatal("failed batch left bytes in the journal")
	}

	// Round markers are CloseRound's business.
	if _, err := svc.SubmitBatch([]Event{NewRoundClosed(0)}); err == nil {
		t.Fatal("round marker accepted in a batch")
	}

	// A batch may consume entities from earlier batches.
	if _, err := svc.SubmitBatch([]Event{
		NewWorkerLeft(applied[0].Worker.ID),
		NewTaskClosed(applied[2].Task.ID),
		NewWorkerJoined(validWorker()),
	}); err != nil {
		t.Fatal(err)
	}
	if w, tk := svc.Counts(); w != 2 || tk != 0 {
		t.Fatalf("counts after mixed batch: %d workers %d tasks", w, tk)
	}
	assertReplayMatches(t, 3, buf.Bytes(), svc.State())
}

func TestServiceSubmitBatchJournalFailureRollsBack(t *testing.T) {
	var buf bytes.Buffer
	fw := faultinject.NewFlakyWriter(&buf, faultinject.Once(1))
	svc := mustService(t, NewLog(fw))
	if _, err := svc.SubmitBatch([]Event{NewWorkerJoined(validWorker())}); err != nil {
		t.Fatal(err)
	}
	// Write op 1 — the next batch's single append — fails cleanly (nothing
	// written); the whole batch must roll back.
	_, err := svc.SubmitBatch([]Event{
		NewWorkerJoined(validWorker()),
		NewTaskPosted(validTask()),
	})
	if err == nil {
		t.Fatal("batch with failed journal append reported success")
	}
	if w, tk := svc.Counts(); w != 1 || tk != 0 {
		t.Fatalf("rolled-back batch leaked state: %d workers %d tasks", w, tk)
	}
	if svc.State().Seq() != 1 {
		t.Fatalf("seq %d after rollback, want 1", svc.State().Seq())
	}
	// The same batch succeeds on retry and replay equivalence holds.
	if _, err := svc.SubmitBatch([]Event{
		NewWorkerJoined(validWorker()),
		NewTaskPosted(validTask()),
	}); err != nil {
		t.Fatal(err)
	}
	assertReplayMatches(t, 3, buf.Bytes(), svc.State())
}

// newBatchSharded builds a 2-shard sharded service whose shard journals
// are in-memory logs (shard 1 optionally flaky), returning the pieces the
// assertions need.
func newBatchSharded(t *testing.T, cats int, flaky *faultinject.FlakyWriter) (*ShardedService, []*State, []*bytes.Buffer) {
	t.Helper()
	const shards = 2
	states := make([]*State, shards)
	bufs := make([]*bytes.Buffer, shards)
	bundles := make([]Shard, shards)
	for k := range bundles {
		st, err := NewState(cats)
		if err != nil {
			t.Fatal(err)
		}
		states[k] = st
		bufs[k] = &bytes.Buffer{}
		var journal Journal = NewLog(bufs[k])
		if k == 1 && flaky != nil {
			journal = NewLog(flaky)
		}
		bundles[k] = Shard{State: st, Journal: journal, Solver: greedySolver()}
	}
	ss, err := NewShardedService(bundles, benefit.DefaultParams(), ShardedOptions{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	return ss, states, bufs
}

// shardStatesMatchJournals replays every shard's journal against its live
// state.
func shardStatesMatchJournals(t *testing.T, cats int, states []*State, journals [][]byte) {
	t.Helper()
	for k := range states {
		assertReplayMatches(t, cats, journals[k], states[k])
	}
}

func TestShardedSubmitBatchFanOut(t *testing.T) {
	const cats = 4
	c0, c1 := spanningSpecialties(t, cats, 2)
	ss, states, bufs := newBatchSharded(t, cats, nil)

	applied, err := ss.SubmitBatch([]Event{
		NewWorkerJoined(shardedWorker(cats, c0, c1)), // resident in both shards
		NewWorkerJoined(shardedWorker(cats, c0)),
		NewTaskPosted(shardedTask(c0)),
		NewTaskPosted(shardedTask(c1)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(applied) != 4 {
		t.Fatalf("applied %d events, want 4", len(applied))
	}
	if w, tk := ss.Counts(); w != 2 || tk != 2 {
		t.Fatalf("counts after batch: %d workers %d tasks", w, tk)
	}
	// The spanning worker landed in both shard states.
	span := applied[0].Worker.ID
	for k, st := range states {
		if _, ok := st.Worker(span); !ok {
			t.Fatalf("spanning worker %d missing from shard %d", span, k)
		}
	}
	shardStatesMatchJournals(t, cats, states, [][]byte{bufs[0].Bytes(), bufs[1].Bytes()})

	// Consume them in a second batch, including the spanning worker whose
	// leave must fan out to both shards.
	if _, err := ss.SubmitBatch([]Event{
		NewWorkerLeft(span),
		NewTaskClosed(applied[2].Task.ID),
		NewTaskClosed(applied[3].Task.ID),
	}); err != nil {
		t.Fatal(err)
	}
	if w, tk := ss.Counts(); w != 1 || tk != 0 {
		t.Fatalf("counts after removal batch: %d workers %d tasks", w, tk)
	}
	shardStatesMatchJournals(t, cats, states, [][]byte{bufs[0].Bytes(), bufs[1].Bytes()})
}

func TestShardedSubmitBatchIntraBatchLifecycle(t *testing.T) {
	const cats = 4
	c0, c1 := spanningSpecialties(t, cats, 2)
	ss, states, bufs := newBatchSharded(t, cats, nil)

	// Sharded IDs are assigned from 1, so an intra-batch leave/close can
	// name the entity its own batch just created.
	applied, err := ss.SubmitBatch([]Event{
		NewWorkerJoined(shardedWorker(cats, c0, c1)), // → worker 1
		NewTaskPosted(shardedTask(c0)),               // → task 1
		NewWorkerLeft(1),                             // leaves within the batch
		NewTaskClosed(1),
		NewWorkerJoined(shardedWorker(cats, c1)), // → worker 2
	})
	if err != nil {
		t.Fatal(err)
	}
	if applied[0].Worker.ID != 1 || applied[1].Task.ID != 1 || applied[4].Worker.ID != 2 {
		t.Fatalf("unexpected ID assignment: %+v", applied)
	}
	if w, tk := ss.Counts(); w != 1 || tk != 0 {
		t.Fatalf("counts after intra-batch lifecycle: %d workers %d tasks", w, tk)
	}
	shardStatesMatchJournals(t, cats, states, [][]byte{bufs[0].Bytes(), bufs[1].Bytes()})

	// Rejected plans must leave the routing tables unstaged: worker 2 is
	// still live, worker 1 is not.
	if _, err := ss.SubmitBatch([]Event{NewWorkerLeft(1)}); err == nil {
		t.Fatal("left worker removed twice")
	}
	if _, err := ss.SubmitBatch([]Event{NewWorkerLeft(2)}); err != nil {
		t.Fatal(err)
	}
}

func TestShardedSubmitBatchCompensation(t *testing.T) {
	const cats = 4
	c0, c1 := spanningSpecialties(t, cats, 2)
	var flakyBuf bytes.Buffer
	// Shard 1 takes 2 seed writes (spanning worker + its task), then every
	// write fails — including the batch append.
	flaky := faultinject.NewFlakyWriter(&flakyBuf, faultinject.After(2))
	ss, states, bufs := newBatchSharded(t, cats, flaky)

	if _, err := ss.Submit(NewWorkerJoined(shardedWorker(cats, c0, c1))); err != nil {
		t.Fatal(err)
	}
	if _, err := ss.Submit(NewTaskPosted(shardedTask(c1))); err != nil {
		t.Fatal(err)
	}
	w0, t0 := ss.Counts()

	// This batch touches shard 0 first (applies cleanly), then shard 1
	// (journal append fails): shard 0 must be compensated back.
	_, err := ss.SubmitBatch([]Event{
		NewWorkerJoined(shardedWorker(cats, c0)),
		NewTaskPosted(shardedTask(c0)),
		NewTaskPosted(shardedTask(c1)),
	})
	if err == nil {
		t.Fatal("batch over a failing shard journal succeeded")
	}
	if flaky.Injections() == 0 {
		t.Fatal("fault never injected — the fan-out order changed?")
	}
	if w, tk := ss.Counts(); w != w0 || tk != t0 {
		t.Fatalf("counts drifted after compensated batch: %d/%d, want %d/%d", w, tk, w0, t0)
	}
	// Every shard's journal still replays to its exact state — the
	// compensation events are journaled like any other.
	shardStatesMatchJournals(t, cats, states, [][]byte{bufs[0].Bytes(), flakyBuf.Bytes()})

	// Routing tables were not committed: the batch's provisional IDs are
	// reusable, so an all-shard-0 batch (avoiding the dead journal) works.
	if _, err := ss.SubmitBatch([]Event{
		NewWorkerJoined(shardedWorker(cats, c0)),
		NewTaskPosted(shardedTask(c0)),
	}); err != nil {
		t.Fatal(err)
	}
}

func newBatchHTTPServer(t *testing.T, journal Journal) (*httptest.Server, *Service) {
	t.Helper()
	state := mustState(t)
	svc, err := NewService(state, greedySolver(), benefit.DefaultParams(), journal, 1)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServerWithOptions(svc, NewServerOptions()))
	t.Cleanup(ts.Close)
	return ts, svc
}

func TestServerBatchEndpoint(t *testing.T) {
	var buf bytes.Buffer
	ts, svc := newBatchHTTPServer(t, NewLog(&buf))

	resp, out := postJSON(t, ts.URL+"/v1/batch", []Event{
		NewWorkerJoined(validWorker()),
		NewTaskPosted(validTask()),
		NewWorkerJoined(validWorker()),
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d (%v)", resp.StatusCode, out)
	}
	var items []BatchItem
	if err := json.Unmarshal(out["applied"], &items); err != nil {
		t.Fatal(err)
	}
	if len(items) != 3 {
		t.Fatalf("applied %d items, want 3", len(items))
	}
	for i, it := range items {
		if it.Seq != uint64(i+1) {
			t.Fatalf("item %d = %+v, want contiguous seq", i, it)
		}
	}
	if items[0].Kind != EventWorkerJoined || items[1].Kind != EventTaskPosted {
		t.Fatalf("item kinds %v", items)
	}
	if items[0].ID == items[2].ID {
		t.Fatalf("both workers resolved to ID %d", items[0].ID)
	}

	// All-or-nothing over HTTP: 422, counts unchanged.
	resp, out = postJSON(t, ts.URL+"/v1/batch", []Event{
		NewWorkerJoined(validWorker()),
		NewWorkerLeft(12345),
	})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("invalid batch status %d (%v)", resp.StatusCode, out)
	}
	if w, tk := svc.Counts(); w != 2 || tk != 1 {
		t.Fatalf("counts after rejected batch: %d workers %d tasks", w, tk)
	}

	// Malformed JSON is 400, not 422.
	r, err := http.Post(ts.URL+"/v1/batch", "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed batch status %d", r.StatusCode)
	}
	assertReplayMatches(t, 3, buf.Bytes(), svc.State())
}

func TestServerHealthz(t *testing.T) {
	var buf bytes.Buffer
	// Writes 0 and 1 succeed; write 2 tears mid-record and poisons.
	fw := faultinject.NewFlakyWriter(&buf, faultinject.After(2))
	fw.Partial = true
	ts, svc := newBatchHTTPServer(t, NewLog(fw))

	for i := 0; i < 2; i++ {
		if _, err := svc.Submit(NewWorkerJoined(validWorker())); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h HealthStatus
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || h.Status != "ok" || h.Role != "primary" || h.LastSeq != 2 {
		t.Fatalf("healthy healthz = %d %+v", resp.StatusCode, h)
	}

	// Poison the journal; healthz must flip to 503/degraded.
	if _, err := svc.Submit(NewWorkerJoined(validWorker())); err == nil {
		t.Fatal("torn append reported success")
	}
	resp, err = http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || h.Status != "degraded" || !h.JournalPoisoned {
		t.Fatalf("poisoned healthz = %d %+v", resp.StatusCode, h)
	}
}

func TestShardedHealthReportsPerShard(t *testing.T) {
	const cats = 4
	c0, c1 := spanningSpecialties(t, cats, 2)
	var flakyBuf bytes.Buffer
	flaky := faultinject.NewFlakyWriter(&flakyBuf, faultinject.After(1))
	flaky.Partial = true
	ss, _, _ := newBatchSharded(t, cats, flaky)

	if _, err := ss.Submit(NewTaskPosted(shardedTask(c1))); err != nil {
		t.Fatal(err)
	}
	h := ss.Health()
	if h.Status != "ok" || len(h.Shards) != 2 || h.JournalPoisoned {
		t.Fatalf("healthy sharded health = %+v", h)
	}
	// Tear shard 1's journal (write 1, Partial) — submits to c1 fail and
	// the health rolls up as degraded with the shard pinpointed.
	if _, err := ss.Submit(NewTaskPosted(shardedTask(c1))); err == nil {
		t.Fatal("torn shard append reported success")
	}
	h = ss.Health()
	if h.Status != "degraded" || !h.JournalPoisoned {
		t.Fatalf("degraded sharded health = %+v", h)
	}
	poisonedShards := 0
	for _, sh := range h.Shards {
		if sh.JournalPoisoned {
			poisonedShards++
		}
	}
	if poisonedShards != 1 {
		t.Fatalf("%d shards report poisoned, want exactly 1", poisonedShards)
	}
	_ = c0
}
