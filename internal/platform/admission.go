package platform

// Admission control for the serving stack.  Every request that reaches
// Server.ServeHTTP is classified into a priority class and passed through
// the Admission controller before it may touch a backend:
//
//   - token buckets per priority class bound the sustained request rate,
//     with per-client buckets (keyed by the X-MBA-Client header) falling
//     back to a shared global bucket for anonymous traffic;
//   - an AIMD concurrency limiter in front of the Submit/SubmitBatch
//     paths converts saturation into bounded queueing instead of latency
//     collapse: the limit grows additively while observed latency stays
//     under target and shrinks multiplicatively when it does not;
//   - the wait queue is a bounded FIFO with deadline-aware shedding — a
//     request whose context deadline cannot be met by the estimated wait
//     is rejected immediately with 429 + jittered Retry-After, never
//     after burning its budget;
//   - brownout: when the recent shed rate or queue depth crosses a
//     threshold the controller reports "overloaded" through healthz
//     (still HTTP 200 — overload is not failure) and starts shedding
//     single-event writes probabilistically first, so batch ingest and
//     the group-commit journal keep their throughput under stress.
//
// Probe and replication traffic (GET /healthz, GET /v1/journal/stream)
// is exempt: a failover supervisor must be able to distinguish an
// overloaded-but-alive primary from a dead one, and shedding the
// replication stream would turn load into data loss.

import (
	"errors"
	"fmt"
	"math"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/stats"
)

// Priority classes for admission.  Lower numeric value = higher priority.
type Priority int

const (
	// PriorityHigh covers read traffic: stats, rounds listing, snapshot
	// fetches.  Reads are cheap and never touch the journal.
	PriorityHigh Priority = iota
	// PriorityMedium covers single-event writes (add/remove worker/task,
	// rate updates).  These are the first to brown out.
	PriorityMedium
	// PriorityLow covers the heavyweight verbs: batch ingest, round
	// closes and checkpoints.  Low priority here means lowest sustained
	// *rate* budget, not importance — batch ingest keeps its bucket
	// during brownout precisely because it amortises journal writes.
	PriorityLow

	numPriorities = 3
)

// String returns the canonical class name used in flags and health payloads.
func (p Priority) String() string {
	switch p {
	case PriorityHigh:
		return "high"
	case PriorityMedium:
		return "medium"
	case PriorityLow:
		return "low"
	default:
		return fmt.Sprintf("priority(%d)", int(p))
	}
}

// ClientHeader names the request header used to key per-client token
// buckets.  Requests without it share the global per-class bucket.
const ClientHeader = "X-MBA-Client"

// StatusOverloaded is the healthz Status reported while the admission
// controller is in brownout.  It is served with HTTP 200: an overloaded
// primary is alive, and probes must not mistake load for death.
const StatusOverloaded = "overloaded"

// ErrAdmissionShed is the sentinel for requests rejected by admission.
var ErrAdmissionShed = errors.New("platform: request shed by admission control")

// classifyRequest maps a route to its priority class.  exempt routes
// bypass admission entirely (probes, replication stream).
func classifyRequest(method, path string) (p Priority, exempt bool) {
	if method == http.MethodGet {
		// Liveness probes and the replication stream are never shed:
		// shedding the former turns overload into failover, shedding
		// the latter turns overload into replication lag.
		if path == "/v1/healthz" || strings.HasPrefix(path, "/v1/journal/stream") {
			return PriorityHigh, true
		}
		return PriorityHigh, false
	}
	switch path {
	case "/v1/batch", "/v1/rounds", "/v1/checkpoint":
		return PriorityLow, false
	}
	return PriorityMedium, false
}

// concurrencyLimited reports whether the route sits behind the AIMD
// concurrency limiter.  Only the journaled ingest paths do: round closes
// are already single-flighted by the server and reads don't contend.
func concurrencyLimited(method, path string) bool {
	if method == http.MethodGet {
		return false
	}
	switch path {
	case "/v1/rounds", "/v1/checkpoint":
		return false
	}
	return true
}

// AdmissionOptions configures the admission controller.  The zero value
// means "disabled" (seed semantics: every request admitted, nothing
// shed); NewAdmissionOptions returns the recommended enabled defaults.
type AdmissionOptions struct {
	// Enabled turns admission on.  Off preserves pre-admission behavior.
	Enabled bool

	// RateHigh/RateMedium/RateLow are sustained requests-per-second
	// budgets per priority class.  0 means unlimited for that class.
	RateHigh   float64
	RateMedium float64
	RateLow    float64
	// Burst scales bucket capacity: a class with rate r admits bursts of
	// up to r*Burst requests.  Values < 1 are clamped to 1 second.
	Burst float64

	// MinInflight/MaxInflight clamp the AIMD concurrency limit for the
	// journaled write paths.  The limiter starts at MaxInflight and
	// backs off multiplicatively when latency crosses LatencyTarget.
	MinInflight int
	MaxInflight int
	// LatencyTarget is the per-request latency the AIMD loop steers to.
	LatencyTarget time.Duration
	// MaxQueue bounds the FIFO wait queue in front of the concurrency
	// limiter; requests beyond it are shed immediately.
	MaxQueue int

	// BrownoutShedRate is the recent shed fraction (0..1) above which
	// the controller enters brownout.  BrownoutQueueFrac is the queue
	// occupancy fraction with the same effect.  BrownoutHalflife is the
	// decay half-life of the shed-rate signal: after the storm stops the
	// controller forgets at this rate, so healthz recovers promptly.
	BrownoutShedRate  float64
	BrownoutQueueFrac float64
	BrownoutHalflife  time.Duration

	// MaxClients bounds the per-client bucket table (LRU-free: once full,
	// new clients share the global bucket).  Protects against header
	// cardinality attacks.
	MaxClients int

	// Seed drives the jittered Retry-After values and probabilistic
	// brownout shedding.  Deterministic given the request sequence.
	Seed uint64
}

// NewAdmissionOptions returns enabled defaults tuned for a single node:
// generous read budget, moderate single-write budget, a small budget for
// the heavyweight verbs, and an AIMD window sized for the group-commit
// journal path.
func NewAdmissionOptions() AdmissionOptions {
	return AdmissionOptions{
		Enabled:           true,
		RateHigh:          5000,
		RateMedium:        2000,
		RateLow:           50,
		Burst:             1,
		MinInflight:       4,
		MaxInflight:       256,
		LatencyTarget:     25 * time.Millisecond,
		MaxQueue:          64,
		BrownoutShedRate:  0.05,
		BrownoutQueueFrac: 0.5,
		BrownoutHalflife:  500 * time.Millisecond,
		MaxClients:        1024,
		Seed:              1,
	}
}

func (o AdmissionOptions) rateFor(p Priority) float64 {
	switch p {
	case PriorityHigh:
		return o.RateHigh
	case PriorityMedium:
		return o.RateMedium
	default:
		return o.RateLow
	}
}

// tokenBucket is a standard refill-on-demand token bucket.  rate is
// tokens/second, burst the capacity.  Safe for concurrent use.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
}

func newTokenBucket(rate, burstSeconds float64, now time.Time) *tokenBucket {
	if rate <= 0 {
		return nil // nil bucket = unlimited
	}
	if burstSeconds < 1 {
		burstSeconds = 1
	}
	burst := rate * burstSeconds
	if burst < 1 {
		burst = 1
	}
	return &tokenBucket{rate: rate, burst: burst, tokens: burst, last: now}
}

func (b *tokenBucket) refillLocked(now time.Time) {
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens = math.Min(b.burst, b.tokens+dt*b.rate)
	}
	b.last = now
}

// take consumes one token if available.  When it cannot, it returns the
// duration until one token will have refilled, for Retry-After.
func (b *tokenBucket) take(now time.Time) (ok bool, wait time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked(now)
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	need := 1 - b.tokens
	return false, time.Duration(need / b.rate * float64(time.Second))
}

// admWaiter is one queued request waiting for a concurrency slot.
type admWaiter struct {
	ready     chan struct{}
	granted   bool // slot transferred to this waiter
	abandoned bool // waiter gave up (deadline); slot must not transfer
}

// aimdLimiter is the adaptive concurrency limiter: additive increase
// while observed latency stays under target, multiplicative decrease
// (with a cooldown so one burst of slow requests triggers one backoff)
// when it does not.  Waiters queue FIFO and carry their context
// deadline; the limiter sheds a waiter immediately if the estimated
// queue wait exceeds the deadline.
type aimdLimiter struct {
	mu       sync.Mutex
	limit    float64
	floor    float64
	ceil     float64
	target   time.Duration
	inflight int
	queue    []*admWaiter
	maxQueue int
	// ewmaLat tracks recent admitted-request latency for wait estimates.
	ewmaLat  time.Duration
	lastDrop time.Time
}

func newAIMDLimiter(o AdmissionOptions) *aimdLimiter {
	floor := float64(o.MinInflight)
	if floor < 1 {
		floor = 1
	}
	ceil := float64(o.MaxInflight)
	if ceil < floor {
		ceil = floor
	}
	return &aimdLimiter{
		limit:    ceil, // start wide open; back off on evidence
		floor:    floor,
		ceil:     ceil,
		target:   o.LatencyTarget,
		maxQueue: o.MaxQueue,
		ewmaLat:  o.LatencyTarget / 4,
	}
}

// estimateWaitLocked predicts how long a newly queued request would wait
// for a slot: queue ahead of it plus itself, served at limit-wide
// concurrency with ewmaLat per request.
func (l *aimdLimiter) estimateWaitLocked() time.Duration {
	lim := math.Max(1, l.limit)
	waves := float64(len(l.queue)+1) / lim
	return time.Duration(waves * float64(l.ewmaLat))
}

// acquire takes a concurrency slot, queueing FIFO if none is free.
// deadline is the request's context deadline (zero time = none).  It
// returns false with a shed reason when the request cannot be admitted
// in time.  done must not have fired for correctness of slot transfer.
func (l *aimdLimiter) acquire(deadline time.Time, now time.Time, done <-chan struct{}) bool {
	l.mu.Lock()
	if float64(l.inflight) < math.Floor(l.limit) || l.inflight < int(l.floor) {
		l.inflight++
		l.mu.Unlock()
		return true
	}
	if len(l.queue) >= l.maxQueue {
		l.mu.Unlock()
		return false
	}
	// Deadline-aware: shed now rather than after burning the budget.
	if !deadline.IsZero() && now.Add(l.estimateWaitLocked()).After(deadline) {
		l.mu.Unlock()
		return false
	}
	w := &admWaiter{ready: make(chan struct{})}
	l.queue = append(l.queue, w)
	l.mu.Unlock()

	var timer *time.Timer
	var timeout <-chan time.Time
	if !deadline.IsZero() {
		timer = time.NewTimer(deadline.Sub(now))
		timeout = timer.C
		defer timer.Stop()
	}
	select {
	case <-w.ready:
		return true
	case <-timeout:
	case <-done:
	}
	// Gave up.  If the grant raced us, we own a slot and must release it.
	l.mu.Lock()
	if w.granted {
		l.mu.Unlock()
		select {
		case <-w.ready:
		default:
		}
		l.releaseSlot(0, false)
		return false
	}
	w.abandoned = true
	l.mu.Unlock()
	return false
}

// grantLocked hands the caller's slot to the next live waiter instead of
// freeing it.  Returns true if a transfer happened.
func (l *aimdLimiter) grantLocked() bool {
	for len(l.queue) > 0 {
		w := l.queue[0]
		l.queue[0] = nil
		l.queue = l.queue[1:]
		if w.abandoned {
			continue
		}
		w.granted = true
		close(w.ready)
		return true
	}
	return false
}

// release returns a slot after a request completes, feeding the measured
// latency into the AIMD loop.
func (l *aimdLimiter) release(latency time.Duration, now time.Time) {
	l.releaseSlotAt(latency, true, now)
}

func (l *aimdLimiter) releaseSlot(latency time.Duration, observe bool) {
	l.releaseSlotAt(latency, observe, time.Now())
}

func (l *aimdLimiter) releaseSlotAt(latency time.Duration, observe bool, now time.Time) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if observe {
		// EWMA with alpha 0.2: responsive without thrashing.
		l.ewmaLat = time.Duration(0.8*float64(l.ewmaLat) + 0.2*float64(latency))
		if latency > l.target {
			// Multiplicative decrease, at most once per cooldown window
			// (≈ the target) so one slow burst is one backoff.
			if now.Sub(l.lastDrop) > l.target {
				l.limit = math.Max(l.floor, l.limit*0.7)
				l.lastDrop = now
			}
		} else {
			l.limit = math.Min(l.ceil, l.limit+1/math.Max(1, l.limit))
		}
	}
	if float64(l.inflight) <= math.Floor(l.limit) && l.grantLocked() {
		// Slot transferred to a waiter; inflight count unchanged.
		return
	}
	l.inflight--
}

func (l *aimdLimiter) snapshot() (limit float64, inflight, queued int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.limit, l.inflight, len(l.queue)
}

// AdmissionCounts breaks a counter down by priority class.
type AdmissionCounts struct {
	High   int64 `json:"high"`
	Medium int64 `json:"medium"`
	Low    int64 `json:"low"`
}

// AdmissionHealth is the admission slice of the healthz payload.
type AdmissionHealth struct {
	Brownout      bool            `json:"brownout"`
	ShedRate      float64         `json:"shed_rate"`
	InflightLimit float64         `json:"inflight_limit"`
	Inflight      int             `json:"inflight"`
	QueueDepth    int             `json:"queue_depth"`
	Admitted      AdmissionCounts `json:"admitted"`
	Shed          AdmissionCounts `json:"shed"`
	BrownoutSheds int64           `json:"brownout_sheds"`
}

// Admission is the controller.  One per Server.
type Admission struct {
	opts    AdmissionOptions
	limiter *aimdLimiter

	global [numPriorities]*tokenBucket

	cmu     sync.Mutex
	clients map[string]*[numPriorities]*tokenBucket

	rmu sync.Mutex
	rng *stats.RNG

	// shedSignal is a decayed estimate of the recent capacity-shed rate
	// (sheds caused by buckets/queue/deadline — brownout sheds are
	// deliberately excluded so brownout cannot feed itself and lock in).
	smu        sync.Mutex
	shedSignal float64 // decayed shed count
	seenSignal float64 // decayed total count
	signalAt   time.Time

	admitted      [numPriorities]atomic.Int64
	shed          [numPriorities]atomic.Int64
	brownoutSheds atomic.Int64

	now func() time.Time // injectable for tests
}

// NewAdmission builds a controller from opts.  Returns nil when
// admission is disabled; a nil *Admission admits everything.
func NewAdmission(opts AdmissionOptions) *Admission {
	if !opts.Enabled {
		return nil
	}
	if opts.LatencyTarget <= 0 {
		opts.LatencyTarget = 25 * time.Millisecond
	}
	if opts.MaxQueue <= 0 {
		opts.MaxQueue = 64
	}
	if opts.BrownoutHalflife <= 0 {
		opts.BrownoutHalflife = 500 * time.Millisecond
	}
	if opts.BrownoutShedRate <= 0 {
		opts.BrownoutShedRate = 0.05
	}
	if opts.BrownoutQueueFrac <= 0 {
		opts.BrownoutQueueFrac = 0.5
	}
	if opts.MaxClients <= 0 {
		opts.MaxClients = 1024
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	a := &Admission{
		opts:    opts,
		limiter: newAIMDLimiter(opts),
		clients: make(map[string]*[numPriorities]*tokenBucket),
		rng:     stats.NewRNG(seed),
		now:     time.Now,
	}
	now := a.now()
	for p := Priority(0); p < numPriorities; p++ {
		a.global[p] = newTokenBucket(opts.rateFor(p), opts.Burst, now)
	}
	a.signalAt = now
	return a
}

// bucketFor resolves the token bucket for (client, class): the client's
// own bucket when a client id is present and the table has room, else
// the shared global bucket.
func (a *Admission) bucketFor(client string, p Priority) *tokenBucket {
	if client == "" {
		return a.global[p]
	}
	a.cmu.Lock()
	defer a.cmu.Unlock()
	set, ok := a.clients[client]
	if !ok {
		if len(a.clients) >= a.opts.MaxClients {
			return a.global[p]
		}
		set = new([numPriorities]*tokenBucket)
		now := a.now()
		for q := Priority(0); q < numPriorities; q++ {
			set[q] = newTokenBucket(a.opts.rateFor(q), a.opts.Burst, now)
		}
		a.clients[client] = set
	}
	return set[p]
}

// observe feeds one admission decision into the decayed shed-rate
// signal.  Brownout-caused sheds must NOT be fed here: they would raise
// the shed rate, which raises brownout severity, which sheds more — a
// positive feedback loop that never recovers.
func (a *Admission) observe(shed bool, now time.Time) {
	a.smu.Lock()
	defer a.smu.Unlock()
	a.decayLocked(now)
	a.seenSignal++
	if shed {
		a.shedSignal++
	}
}

func (a *Admission) decayLocked(now time.Time) {
	dt := now.Sub(a.signalAt)
	if dt > 0 {
		k := math.Exp2(-float64(dt) / float64(a.opts.BrownoutHalflife))
		a.shedSignal *= k
		a.seenSignal *= k
	}
	a.signalAt = now
}

// shedRate returns the decayed recent shed fraction.
func (a *Admission) shedRate(now time.Time) float64 {
	a.smu.Lock()
	defer a.smu.Unlock()
	a.decayLocked(now)
	if a.seenSignal < 1 {
		return 0
	}
	return a.shedSignal / a.seenSignal
}

// severity returns the brownout severity in [0,1]: 0 = healthy, >0 =
// brownout, scaling the probabilistic shed of medium-priority writes.
func (a *Admission) severity(now time.Time) float64 {
	rate := a.shedRate(now)
	_, _, queued := a.limiter.snapshot()
	sev := 0.0
	if thr := a.opts.BrownoutShedRate; rate > thr {
		sev = math.Max(sev, math.Min(1, (rate-thr)/math.Max(1e-9, 1-thr)))
	}
	if frac := float64(queued) / float64(a.opts.MaxQueue); frac > a.opts.BrownoutQueueFrac {
		sev = math.Max(sev, math.Min(1, (frac-a.opts.BrownoutQueueFrac)/(1-a.opts.BrownoutQueueFrac)))
	}
	return sev
}

// Overloaded reports whether the controller is in brownout.
func (a *Admission) Overloaded() bool {
	if a == nil {
		return false
	}
	return a.severity(a.now()) > 0
}

// Decision is the outcome of Admit.
type Decision struct {
	// OK means the request may proceed.  Release must be called exactly
	// once when the request finishes (nil-safe when no slot was taken).
	OK bool
	// RetryAfter is the jittered client backoff hint for shed requests.
	RetryAfter time.Duration
	release    func(latency time.Duration)
}

// Release returns the concurrency slot (if one was held) and feeds the
// observed latency to the AIMD loop.  Safe to call on a shed decision.
func (d Decision) Release(latency time.Duration) {
	if d.release != nil {
		d.release(latency)
	}
}

// jitteredRetry converts a bucket refill wait into a client hint:
// the wait plus up to 100% seeded jitter, so a shed herd does not
// return in lockstep.
func (a *Admission) jitteredRetry(wait time.Duration) time.Duration {
	if wait <= 0 {
		wait = 100 * time.Millisecond
	}
	a.rmu.Lock()
	f := 1 + a.rng.Float64()
	a.rmu.Unlock()
	return time.Duration(float64(wait) * f)
}

func (a *Admission) roll(p float64) bool {
	a.rmu.Lock()
	defer a.rmu.Unlock()
	return a.rng.Float64() < p
}

// Admit runs the full admission pipeline for one request.  deadline is
// the request context's deadline (zero = none); done is its Done
// channel.  A nil *Admission admits everything.
func (a *Admission) Admit(method, path, client string, deadline time.Time, done <-chan struct{}) Decision {
	if a == nil {
		return Decision{OK: true}
	}
	p, exempt := classifyRequest(method, path)
	if exempt {
		return Decision{OK: true}
	}
	now := a.now()

	// Fast shed: the deadline has already passed — admitting would burn
	// backend budget on a response nobody is waiting for.
	if !deadline.IsZero() && !deadline.After(now) {
		a.shed[p].Add(1)
		a.observe(true, now)
		return Decision{RetryAfter: a.jitteredRetry(0)}
	}

	// Brownout: shed single-event writes probabilistically before they
	// reach the buckets, keeping batch ingest and reads flowing.  These
	// sheds do not feed the shed-rate signal (see observe).
	if p == PriorityMedium {
		if sev := a.severity(now); sev > 0 {
			if a.roll(math.Min(0.95, sev)) {
				a.shed[p].Add(1)
				a.brownoutSheds.Add(1)
				return Decision{RetryAfter: a.jitteredRetry(a.opts.BrownoutHalflife)}
			}
		}
	}

	if b := a.bucketFor(client, p); b != nil {
		ok, wait := b.take(now)
		if !ok {
			a.shed[p].Add(1)
			a.observe(true, now)
			return Decision{RetryAfter: a.jitteredRetry(wait)}
		}
	}

	if concurrencyLimited(method, path) {
		if !a.limiter.acquire(deadline, now, done) {
			a.shed[p].Add(1)
			a.observe(true, now)
			return Decision{RetryAfter: a.jitteredRetry(a.opts.LatencyTarget)}
		}
		a.admitted[p].Add(1)
		a.observe(false, now)
		return Decision{OK: true, release: func(lat time.Duration) {
			a.limiter.release(lat, a.now())
		}}
	}

	a.admitted[p].Add(1)
	a.observe(false, now)
	return Decision{OK: true}
}

// HealthSnapshot returns the admission slice of the healthz payload.
func (a *Admission) HealthSnapshot() *AdmissionHealth {
	if a == nil {
		return nil
	}
	now := a.now()
	limit, inflight, queued := a.limiter.snapshot()
	return &AdmissionHealth{
		Brownout:      a.severity(now) > 0,
		ShedRate:      a.shedRate(now),
		InflightLimit: math.Floor(limit),
		Inflight:      inflight,
		QueueDepth:    queued,
		Admitted: AdmissionCounts{
			High:   a.admitted[PriorityHigh].Load(),
			Medium: a.admitted[PriorityMedium].Load(),
			Low:    a.admitted[PriorityLow].Load(),
		},
		Shed: AdmissionCounts{
			High:   a.shed[PriorityHigh].Load(),
			Medium: a.shed[PriorityMedium].Load(),
			Low:    a.shed[PriorityLow].Load(),
		},
		BrownoutSheds: a.brownoutSheds.Load(),
	}
}
