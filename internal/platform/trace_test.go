package platform

import (
	"bytes"
	"testing"

	"repro/internal/benefit"
	"repro/internal/core"
	"repro/internal/market"
)

func traceCfg(events int) TraceConfig {
	return TraceConfig{
		Market:     market.FreelanceTraceConfig(0, 0),
		Events:     events,
		RoundEvery: 20,
	}
}

func TestSyntheticTraceReplays(t *testing.T) {
	events, err := SyntheticTrace(traceCfg(200), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) < 200 {
		t.Fatalf("only %d events", len(events))
	}
	state, err := Replay(30, events)
	if err != nil {
		t.Fatal(err)
	}
	w, tk := state.Counts()
	if w == 0 && tk == 0 {
		t.Fatal("trace left an empty market")
	}
	if state.Rounds() != 10 {
		t.Fatalf("rounds = %d, want 10", state.Rounds())
	}
	in, _, _ := state.Snapshot()
	if err := in.Validate(); err != nil {
		t.Fatalf("replayed snapshot invalid: %v", err)
	}
}

func TestSyntheticTraceDeterministic(t *testing.T) {
	a, err := SyntheticTrace(traceCfg(100), 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SyntheticTrace(traceCfg(100), 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("trace lengths differ")
	}
	for i := range a {
		if a[i].Kind != b[i].Kind || a[i].Seq != b[i].Seq {
			t.Fatalf("event %d differs", i)
		}
	}
}

func TestSyntheticTraceHasChurn(t *testing.T) {
	events, err := SyntheticTrace(TraceConfig{
		Market: market.MicrotaskTraceConfig(0, 0), Events: 300, ChurnProb: 0.4,
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[EventKind]int{}
	for _, e := range events {
		kinds[e.Kind]++
	}
	if kinds[EventWorkerLeft] == 0 || kinds[EventTaskClosed] == 0 {
		t.Fatalf("no churn in trace: %v", kinds)
	}
	if kinds[EventWorkerJoined] == 0 || kinds[EventTaskPosted] == 0 {
		t.Fatalf("no arrivals in trace: %v", kinds)
	}
}

func TestSyntheticTraceValidation(t *testing.T) {
	if _, err := SyntheticTrace(TraceConfig{Events: 0}, 1); err == nil {
		t.Fatal("zero events accepted")
	}
	if _, err := SyntheticTrace(TraceConfig{Events: 10, ChurnProb: 1.5}, 1); err == nil {
		t.Fatal("churn >= 1 accepted")
	}
}

func TestSyntheticTraceThroughLogAndService(t *testing.T) {
	// End-to-end: trace → log → replay → assignment round.
	events, err := SyntheticTrace(traceCfg(150), 9)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	l := NewLog(&buf)
	for _, e := range events {
		if err := l.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	state, err := ReplayLog(30, &buf)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := NewService(state, core.Greedy{Kind: core.MutualWeight}, benefit.DefaultParams(), nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := svc.CloseRound()
	if err != nil {
		t.Fatal(err)
	}
	if w, tk := state.Counts(); w > 0 && tk > 0 && len(res.Pairs) == 0 {
		t.Fatal("populated market but empty assignment")
	}
}
