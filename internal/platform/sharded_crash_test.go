package platform

// Sharded crash-fidelity suite: the single-market crash harness
// (crash_test.go) extended to the 4-shard stack.  A deterministic script
// runs once crash-free, then re-runs with a power cut injected into ONE
// shard's checkpoint/segment writers at every crash point — the fault model
// is a single shard machine dying, which is why the at-crash property is
// per shard: every shard directory must recover BYTE-IDENTICALLY to that
// shard's committed in-memory state.
//
// The final states of a crash run and the reference are compared as entity
// content (dense snapshot instances), not bytes: a mid-fan-out crash leaves
// durable compensation events on the clean shards and a mid-commit crash
// leaves earlier shards a round marker ahead, so ID counters and per-shard
// round counters legitimately diverge — what must NOT diverge is which
// workers and tasks are live, their profiles, and the service round count.

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"repro/internal/benefit"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/market"
	"repro/internal/stats"
)

const (
	crashShardedShards     = 4
	crashShardedCategories = 8
)

// shardedCrashWorker draws an 8-category profile; ~35% specialty density
// means most workers span shards, keeping fan-out writes (the crash
// surface) on the scripted path.
func shardedCrashWorker(rng *stats.RNG) market.Worker {
	w := market.Worker{
		Capacity:        1 + rng.Intn(3),
		Accuracy:        make([]float64, crashShardedCategories),
		Interest:        make([]float64, crashShardedCategories),
		ReservationWage: rng.Float64Range(0.5, 2),
	}
	for c := 0; c < crashShardedCategories; c++ {
		w.Accuracy[c] = rng.Float64Range(0.5, 0.99)
		w.Interest[c] = rng.Float64()
		if rng.Bool(0.35) {
			w.Specialties = append(w.Specialties, c)
		}
	}
	if len(w.Specialties) == 0 {
		w.Specialties = []int{rng.Intn(crashShardedCategories)}
	}
	return w
}

func shardedCrashTask(rng *stats.RNG) market.Task {
	return market.Task{
		Category:    rng.Intn(crashShardedCategories),
		Replication: 1 + rng.Intn(3),
		Payment:     rng.Float64Range(1, 10),
		Difficulty:  rng.Float64Range(0, 0.9),
	}
}

func buildShardedCrashScript(seed uint64, rounds int) []crashOp {
	rng := stats.NewRNG(seed)
	var ops []crashOp
	for r := 0; r < rounds; r++ {
		n := 6 + rng.Intn(5)
		for i := 0; i < n; i++ {
			switch k := rng.Intn(10); {
			case k < 3:
				ops = append(ops, crashOp{kind: 'w', w: shardedCrashWorker(rng)})
			case k < 6:
				ops = append(ops, crashOp{kind: 't', tk: shardedCrashTask(rng)})
			case k < 8:
				ops = append(ops, crashOp{kind: 'W', pick: rng.Intn(1 << 16)})
			default:
				ops = append(ops, crashOp{kind: 'T', pick: rng.Intn(1 << 16)})
			}
		}
		ops = append(ops, crashOp{kind: 'r'})
	}
	return ops
}

// buildShardedCrashStack assembles the mbaserve -shards recovery+serve
// stack over dir, arming the crash hook on exactly crashShard (-1 = none).
func buildShardedCrashStack(t *testing.T, dir string, hook CrashHook, crashShard int) *ShardedService {
	t.Helper()
	states, _, err := RecoverShardedDir(dir, crashShardedCategories, crashShardedShards)
	if err != nil {
		t.Fatalf("recovering %s: %v", dir, err)
	}
	bundles := make([]Shard, crashShardedShards)
	for k := range bundles {
		var h CrashHook
		if k == crashShard {
			h = hook
		}
		seg, err := OpenSegmentedLog(ShardDir(dir, k), SegmentOptions{MaxBytes: 4 << 10, Hook: h})
		if err != nil {
			t.Fatalf("opening shard %d segmented log: %v", k, err)
		}
		cm, err := NewCheckpointManager(states[k], seg, CheckpointOptions{EveryRounds: 3, Keep: 2, Hook: h})
		if err != nil {
			t.Fatal(err)
		}
		solver, err := core.ByName("greedy")
		if err != nil {
			t.Fatal(err)
		}
		bundles[k] = Shard{State: states[k], Journal: seg, Solver: solver, Checkpoint: cm}
	}
	ss, err := NewShardedService(bundles, benefit.DefaultParams(), ShardedOptions{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	return ss
}

// shardedCrashRun executes the script against a sharded service, resolving
// removal targets from its own committed-ID ledgers.  The ledgers, not a
// state snapshot, are the resolution source because the sharded service has
// no single global ID list — and because they make target choice identical
// across the reference and every crash run (both commit the same op
// sequence, even though a crash run may skip ID numbers).
type shardedCrashRun struct {
	ss      *ShardedService
	workers []int // committed live worker IDs, ascending (IDs are monotone)
	tasks   []int
}

func (run *shardedCrashRun) exec(op crashOp) error {
	switch op.kind {
	case 'w':
		ev, err := run.ss.Submit(NewWorkerJoined(op.w))
		if err == nil {
			run.workers = append(run.workers, ev.Worker.ID)
		}
		return err
	case 't':
		ev, err := run.ss.Submit(NewTaskPosted(op.tk))
		if err == nil {
			run.tasks = append(run.tasks, ev.Task.ID)
		}
		return err
	case 'W':
		if len(run.workers) == 0 {
			return nil
		}
		k := op.pick % len(run.workers)
		if _, err := run.ss.Submit(NewWorkerLeft(run.workers[k])); err != nil {
			return err
		}
		run.workers = append(run.workers[:k], run.workers[k+1:]...)
		return nil
	case 'T':
		if len(run.tasks) == 0 {
			return nil
		}
		k := op.pick % len(run.tasks)
		if _, err := run.ss.Submit(NewTaskClosed(run.tasks[k])); err != nil {
			return err
		}
		run.tasks = append(run.tasks[:k], run.tasks[k+1:]...)
		return nil
	case 'r':
		_, err := run.ss.CloseRound()
		return err
	}
	return nil
}

// shardedCrashFingerprint is the ID-number-free content of a final state:
// per-shard dense snapshot instances plus global counts and the committed
// round count.
type shardedCrashFingerprint struct {
	instances      []*market.Instance
	workers, tasks int
	rounds         int
}

func fingerprintSharded(ss *ShardedService) shardedCrashFingerprint {
	fp := shardedCrashFingerprint{rounds: ss.Rounds()}
	fp.workers, fp.tasks = ss.Counts()
	for k := 0; k < ss.NumShards(); k++ {
		in, _, _ := ss.ShardState(k).Snapshot()
		fp.instances = append(fp.instances, in)
	}
	return fp
}

// runShardedCrashScript is runCrashScript for the sharded stack: execute,
// crash at most once on crashShard, verify every shard recovers
// byte-identically at the crash, rebuild hook-free, continue to the end.
func runShardedCrashScript(t *testing.T, dir string, ops []crashOp, cr *faultinject.Crasher, crashShard int) shardedCrashFingerprint {
	t.Helper()
	var hook CrashHook
	if cr != nil {
		hook = cr
	}
	run := &shardedCrashRun{ss: buildShardedCrashStack(t, dir, hook, crashShard)}
	armed := cr
	for i := 0; i < len(ops); {
		err := run.exec(ops[i])
		fired := armed != nil && armed.Fired()
		if err != nil && !fired {
			t.Fatalf("op %d (%c) failed without a crash: %v", i, ops[i].kind, err)
		}
		if !fired {
			i++
			continue
		}
		// Shard crashShard's machine died.  Same redo rule as the
		// single-market harness: a failed call rolled back everywhere
		// (compensation) and is redone; a nil-error crash hit the post-commit
		// checkpoint and is not.
		t.Logf("crashed at op %d (%c) on shard %d", i, ops[i].kind, crashShard)
		if err == nil {
			i++
		} else if !errors.Is(err, faultinject.ErrCrash) {
			t.Fatalf("op %d: crash-run failure is not the injected crash: %v", i, err)
		}
		committed := make([][]byte, crashShardedShards)
		for k := 0; k < crashShardedShards; k++ {
			committed[k] = stateBytes(t, run.ss.ShardState(k))
		}

		// "Restart": every shard directory must land exactly on its
		// committed state — the crashed shard because its torn tail heals
		// away, the clean shards because their journals are fully durable.
		rec, _, rerr := RecoverShardedDir(dir, crashShardedCategories, crashShardedShards)
		if rerr != nil {
			t.Fatalf("recovery after crash at op %d: %v", i, rerr)
		}
		for k, st := range rec {
			if !bytes.Equal(stateBytes(t, st), committed[k]) {
				t.Fatalf("crash at op %d: shard %d recovered state != committed state", i, k)
			}
		}
		run.ss = buildShardedCrashStack(t, dir, nil, -1)
		armed = nil
	}
	if cr != nil && !cr.Fired() {
		t.Fatal("crasher never fired — its schedule points past the workload; lower the hit count")
	}
	return fingerprintSharded(run.ss)
}

func TestCrashShardedRecoveryFidelity(t *testing.T) {
	seed := chaosSeed(t)
	const rounds = 45
	ops := buildShardedCrashScript(seed, rounds)

	ref := runShardedCrashScript(t, t.TempDir(), ops, nil, -1)
	if ref.rounds != rounds {
		t.Fatalf("reference closed %d rounds, want %d", ref.rounds, rounds)
	}
	if ref.workers == 0 || ref.tasks == 0 {
		t.Fatalf("reference ended empty (%d workers, %d tasks) — script too destructive", ref.workers, ref.tasks)
	}

	specs := []struct {
		name  string
		shard int
		mk    func() *faultinject.Crasher
	}{
		{"torn-segment-write-early", 0, func() *faultinject.Crasher { return faultinject.NewTornCrasher(CrashSegmentWrite, 5) }},
		{"torn-segment-write-mid", 2, func() *faultinject.Crasher { return faultinject.NewTornCrasher(CrashSegmentWrite, 60) }},
		{"torn-segment-write-late", 3, func() *faultinject.Crasher { return faultinject.NewTornCrasher(CrashSegmentWrite, 120) }},
		{"torn-snapshot-body", 2, func() *faultinject.Crasher { return faultinject.NewTornCrasher(CrashSnapshotBody, 0) }},
		{"cut-before-snapshot-sync", 3, func() *faultinject.Crasher { return faultinject.NewCrasher(CrashSnapshotSync, 1) }},
		{"cut-before-snapshot-rename", 1, func() *faultinject.Crasher { return faultinject.NewCrasher(CrashSnapshotRename, 2) }},
		{"cut-creating-first-segment", 0, func() *faultinject.Crasher { return faultinject.NewCrasher(CrashSegmentRotate, 0) }},
		{"cut-mid-rotation", 1, func() *faultinject.Crasher { return faultinject.NewCrasher(CrashSegmentRotate, 1) }},
	}
	for _, spec := range specs {
		spec := spec
		t.Run(spec.name, func(t *testing.T) {
			t.Parallel()
			got := runShardedCrashScript(t, t.TempDir(), ops, spec.mk(), spec.shard)
			if got.rounds != ref.rounds || got.workers != ref.workers || got.tasks != ref.tasks {
				t.Fatalf("crash run ended with %d/%d/%d (rounds/workers/tasks), reference %d/%d/%d",
					got.rounds, got.workers, got.tasks, ref.rounds, ref.workers, ref.tasks)
			}
			for k := range ref.instances {
				if !reflect.DeepEqual(got.instances[k], ref.instances[k]) {
					t.Fatalf("shard %d entity content after crash→recover→continue diverges from the crash-free reference", k)
				}
			}
		})
	}
}
