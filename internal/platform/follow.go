package platform

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/stats"
)

// Follower tails a primary's journal over HTTP (GET /v1/journal/stream)
// and persists every event into its own segment directory before
// applying it — the standby half of primary→follower replication.  The
// local directory is a normal journal: takeover is simply RecoverDir on
// it (plus starting a Service), and because the follower only ever
// applies events it has already journaled, the recovered state equals
// the followed state exactly.
//
// Consistency model: the primary serves only committed bytes (a group
// flush that may still fail is never streamed — see
// SegmentedLog.EventsSince), the follower verifies per-event contiguity
// (seq == local seq + 1) and treats a torn stream as a retriable partial
// read, keeping the valid prefix it already applied.  The follower can
// therefore lag but never diverge.
//
// A follower that lags past the primary's segment retention gets 410
// from the stream (ErrResyncNeeded); Resync then bootstraps from GET
// /v1/snapshot — every frame CRC-verified before a byte is installed —
// and re-tails from the snapshot's sequence, so checkpoint compaction on
// the primary never strands a standby permanently.
type FollowerOptions struct {
	// NumCategories is the market's category universe (must match the
	// primary's).
	NumCategories int
	// Segment configures the follower's local journal (format, fsync,
	// rotation).  The follower mirrors events, not bytes: its segment
	// boundaries and encoding may differ from the primary's, recovery
	// equivalence is at the event level.
	Segment SegmentOptions
	// Client performs the HTTP requests; nil means a fresh default client.
	Client *http.Client
	// PollInterval is the idle re-poll delay in Run; 0 means 200ms.  It is
	// also the base of the error backoff.
	PollInterval time.Duration
	// MaxBackoff caps the jittered exponential backoff Run applies after
	// consecutive errors (so a fleet of followers doesn't hammer a
	// restarting primary); 0 means 5s.
	MaxBackoff time.Duration
	// BackoffSeed seeds the backoff jitter; 0 means 1.  Two followers with
	// different seeds desynchronise their retries.
	BackoffSeed uint64
	// DegradedContactAge degrades Health once the last successful primary
	// contact is older than this; 0 means 10s, negative disables the check.
	DegradedContactAge time.Duration
	// DegradedLag degrades Health once ReplicationLag reaches this many
	// events; 0 disables the check (transient lag is normal).
	DegradedLag uint64
	// ResyncBudget caps the wall-clock time of one snapshot resync attempt
	// in Run.  Without it a primary that accepts the connection but stalls
	// the snapshot body pins the follower forever (the HTTP client has no
	// default timeout).  0 means 30s; negative disables the cap.
	ResyncBudget time.Duration
}

// ErrResyncNeeded reports that the follower's replication position was
// checkpoint-retired on the primary (410 Gone from the journal stream):
// tailing can never catch up, only Resync (snapshot bootstrap) can.
var ErrResyncNeeded = errors.New("platform: replication position retired by primary; snapshot resync required")

type Follower struct {
	primary string // primary's base URL, no trailing slash
	opts    FollowerOptions
	client  *http.Client

	// mu guards the state/journal pair as a unit: Resync swaps both
	// (snapshot-installed state, rotated journal) atomically with respect
	// to Health and State readers.
	mu    sync.RWMutex
	state *State
	seg   *SegmentedLog

	// primarySeq is the primary's last committed sequence as of the
	// latest successful poll (from the stream response header).
	primarySeq atomic.Uint64
	// primaryEpoch is the primary's replication epoch as advertised on the
	// latest response's X-MBA-Epoch header (0 before first contact or from
	// pre-epoch primaries).
	primaryEpoch atomic.Uint64
	// lastContact is the unix-nano time of the last successful primary
	// response (initialised to construction time so a fresh follower is
	// not born degraded).
	lastContact atomic.Int64
	// resyncs counts completed snapshot bootstraps.
	resyncs atomic.Uint64
	// consecRetries mirrors Run's consecutive-failure counter for Health:
	// 0 while replication flows, growing while the primary flaps.
	consecRetries atomic.Int64
}

// NewFollower recovers (or creates) the follower's local journal
// directory and prepares to tail the primary.  Call SyncOnce / Run to
// start pulling.
func NewFollower(primaryURL, dir string, opts FollowerOptions) (*Follower, error) {
	if opts.NumCategories <= 0 {
		return nil, fmt.Errorf("platform: follower needs the category count")
	}
	state, _, err := RecoverDir(dir, opts.NumCategories)
	if err != nil {
		return nil, fmt.Errorf("platform: recovering follower dir: %w", err)
	}
	seg, err := OpenSegmentedLog(dir, opts.Segment)
	if err != nil {
		return nil, fmt.Errorf("platform: opening follower journal: %w", err)
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{}
	}
	f := &Follower{
		primary: primaryURL,
		opts:    opts,
		client:  client,
		state:   state,
		seg:     seg,
	}
	f.lastContact.Store(time.Now().UnixNano())
	return f, nil
}

// replica returns the current state/journal pair under the swap lock.
func (f *Follower) replica() (*State, *SegmentedLog) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.state, f.seg
}

// State exposes the follower's replica state (read-only use; mutating it
// outside the replication path would diverge from the primary).  After a
// Resync the returned pointer is stale — re-fetch it.
func (f *Follower) State() *State {
	st, _ := f.replica()
	return st
}

// Seq is the follower's last applied sequence.
func (f *Follower) Seq() uint64 { return f.State().Seq() }

// PrimarySeq is the primary's last committed sequence as of the latest
// successful poll (0 before the first contact).
func (f *Follower) PrimarySeq() uint64 { return f.primarySeq.Load() }

// PrimaryEpoch is the primary's replication epoch as of the latest
// response (0 before the first contact).
func (f *Follower) PrimaryEpoch() uint64 { return f.primaryEpoch.Load() }

// Resyncs counts the snapshot bootstraps this follower has performed.
func (f *Follower) Resyncs() uint64 { return f.resyncs.Load() }

// ConsecutiveRetries is how many poll/resync attempts in a row have
// failed (0 while replication is healthy).
func (f *Follower) ConsecutiveRetries() int64 { return f.consecRetries.Load() }

// Lag is how many events behind the primary the follower was at the
// latest poll.
func (f *Follower) Lag() uint64 {
	p, s := f.PrimarySeq(), f.Seq()
	if p > s {
		return p - s
	}
	return 0
}

// ContactAge is how long ago the primary last answered any request
// successfully.
func (f *Follower) ContactAge() time.Duration {
	return time.Since(time.Unix(0, f.lastContact.Load()))
}

func (f *Follower) touchContact() { f.lastContact.Store(time.Now().UnixNano()) }

// Health implements HealthReporter for a follower process.  A follower
// degrades when its journal is poisoned, when the primary has been out
// of contact past DegradedContactAge, or when replication lag reaches
// DegradedLag — an unreachable primary must not keep reporting "ok"
// forever, or nothing watching this endpoint ever learns replication has
// stalled.
func (f *Follower) Health() HealthStatus {
	st, seg := f.replica()
	workers, tasks := st.Counts()
	contactAge := f.ContactAge()
	h := HealthStatus{
		Role:               "follower",
		LastSeq:            st.Seq(),
		JournalPoisoned:    seg.Poisoned(),
		Workers:            workers,
		Tasks:              tasks,
		Rounds:             st.Rounds(),
		PrimarySeq:         f.PrimarySeq(),
		ReplicationLag:     f.Lag(),
		Epoch:              st.Epoch(),
		ContactAgeMS:       contactAge.Milliseconds(),
		ConsecutiveRetries: f.ConsecutiveRetries(),
	}
	h.Status = "ok"
	maxAge := f.opts.DegradedContactAge
	if maxAge == 0 {
		maxAge = 10 * time.Second
	}
	switch {
	case h.JournalPoisoned:
		h.Status = "degraded"
	case maxAge > 0 && contactAge > maxAge:
		h.Status = "degraded"
	case f.opts.DegradedLag > 0 && h.ReplicationLag >= f.opts.DegradedLag:
		h.Status = "degraded"
	}
	return h
}

// Close seals the follower's local journal.
func (f *Follower) Close() error {
	_, seg := f.replica()
	return seg.Close()
}

// SyncOnce pulls one stream from the primary and applies it: journal
// first, then state, per event.  It returns how many events were applied.
// A torn or interrupted stream is not fatal — the applied prefix is kept
// and the next SyncOnce re-requests from the new position; the error
// reports why the stream ended early.  A 410 response surfaces as
// ErrResyncNeeded (see Resync).
func (f *Follower) SyncOnce(ctx context.Context) (int, error) {
	state, seg := f.replica()
	from := state.Seq() + 1
	url := fmt.Sprintf("%s/v1/journal/stream?from=%d", f.primary, from)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, err
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return 0, fmt.Errorf("platform: polling primary: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusGone {
		f.touchContact() // the primary is alive, just compacted past us
		return 0, fmt.Errorf("%w (stream from=%d)", ErrResyncNeeded, from)
	}
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return 0, fmt.Errorf("platform: primary stream returned %d: %s", resp.StatusCode, msg)
	}
	f.touchContact()
	f.observeResponse(resp)
	if h := resp.Header.Get(JournalLastSeqHeader); h != "" {
		v, err := strconv.ParseUint(h, 10, 64)
		if err != nil {
			// A primary that emits an unparseable commit position is speaking
			// a different protocol; freezing PrimarySeq silently would fake a
			// healthy lag of zero forever.
			return 0, fmt.Errorf("platform: primary sent malformed %s header %q: %w", JournalLastSeqHeader, h, err)
		}
		f.primarySeq.Store(v)
	}
	br := bufio.NewReaderSize(resp.Body, 64*1024)
	var magic [len(binaryLogMagic)]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil || string(magic[:]) != binaryLogMagic {
		return 0, fmt.Errorf("platform: bad stream header from primary")
	}
	applied := 0
	for {
		e, _, err := readBinaryRecord(br)
		if err == io.EOF {
			return applied, nil
		}
		if err != nil {
			// Torn stream (primary died mid-response, connection cut): the
			// prefix is applied and durable, just report and let the caller
			// re-poll.
			return applied, fmt.Errorf("platform: stream ended mid-record after %d events: %w", applied, err)
		}
		if err := e.Validate(); err != nil {
			return applied, fmt.Errorf("platform: primary streamed invalid event: %w", err)
		}
		if e.Seq <= state.Seq() {
			continue // duplicate of something already replicated
		}
		if want := state.Seq() + 1; e.Seq != want {
			return applied, fmt.Errorf("platform: stream gap: got seq %d, want %d", e.Seq, want)
		}
		if _, err := state.ApplyJournaled(e, seg.Append); err != nil {
			return applied, fmt.Errorf("platform: applying replicated event %d: %w", e.Seq, err)
		}
		applied++
	}
}

// observeResponse records the epoch the primary advertises on a
// response.  A malformed value is ignored here (the lag header above is
// the stream-protocol canary; the epoch is advisory provenance).
func (f *Follower) observeResponse(resp *http.Response) {
	if h := resp.Header.Get(EpochHeader); h != "" {
		if v, err := strconv.ParseUint(h, 10, 64); err == nil {
			f.primaryEpoch.Store(v)
		}
	}
}

// Resync bootstraps the follower from the primary's newest snapshot —
// the recovery path for a follower whose stream position was retired
// (ErrResyncNeeded).  The snapshot is fetched whole, every frame
// CRC-verified by DecodeSnapshot before anything is touched, then
// installed: written into the follower's own directory (so RecoverDir on
// this directory no longer needs the retired history), the local journal
// rotated onto a fresh segment, and the in-memory replica swapped.  The
// next SyncOnce re-tails from snapshot seq + 1.
func (f *Follower) Resync(ctx context.Context) (SnapshotInfo, error) {
	var none SnapshotInfo
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, f.primary+"/v1/snapshot", nil)
	if err != nil {
		return none, err
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return none, fmt.Errorf("platform: fetching snapshot: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return none, fmt.Errorf("platform: primary snapshot returned %d: %s", resp.StatusCode, msg)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return none, fmt.Errorf("platform: reading snapshot body: %w", err)
	}
	newState, info, err := DecodeSnapshot(bytes.NewReader(body))
	if err != nil {
		return none, fmt.Errorf("platform: verifying snapshot: %w", err)
	}
	if info.NumCategories != f.opts.NumCategories {
		return none, fmt.Errorf("platform: snapshot has %d categories, want %d", info.NumCategories, f.opts.NumCategories)
	}
	f.touchContact()
	f.observeResponse(resp)

	f.mu.Lock()
	defer f.mu.Unlock()
	if info.Seq <= f.state.Seq() {
		// The stream said our position was retired, yet the snapshot
		// predates us — the primary is contradicting itself (or we raced a
		// checkpoint); re-polling the stream is the only safe move.
		return none, fmt.Errorf("platform: snapshot seq %d not past local %d; retrying stream", info.Seq, f.state.Seq())
	}
	// Durability first: the snapshot must exist in our directory before
	// the in-memory replica jumps past the retired gap, or a crash here
	// would leave a journal that can never replay to the new position.
	if _, _, err := WriteSnapshot(f.seg.Dir(), newState, nil); err != nil {
		return none, fmt.Errorf("platform: installing snapshot: %w", err)
	}
	// Seal the stale pre-gap segment so the re-tail starts on a fresh one;
	// RecoverDir skips fully-covered segments, so the leftovers are inert
	// history until retirement deletes them.
	if err := f.seg.Rotate(); err != nil {
		return none, fmt.Errorf("platform: rotating past retired history: %w", err)
	}
	_, _ = f.seg.RetireThrough(info.Seq) // best-effort cleanup, like checkpointing
	f.state = newState
	f.resyncs.Add(1)
	return info, nil
}

// backoffDelay is the jittered exponential retry delay after the n-th
// consecutive failure (n ≥ 1): base·2^(n-1), capped at max, jittered
// uniformly into [d/2, d) so a fleet of followers spreads its retries
// instead of stampeding a restarting primary in lockstep.
func backoffDelay(base, max time.Duration, fails int, rng *stats.RNG) time.Duration {
	if base <= 0 {
		base = 200 * time.Millisecond
	}
	if max < base {
		max = base
	}
	d := base
	for i := 1; i < fails && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	half := d / 2
	if half <= 0 {
		return d
	}
	return half + time.Duration(rng.Float64()*float64(d-half))
}

// Run polls the primary until ctx is cancelled.  Transient errors
// (primary restarting, torn streams) are absorbed with jittered
// exponential backoff — reset on the first success — and a retired
// position (410) triggers an automatic snapshot Resync.
func (f *Follower) Run(ctx context.Context) error {
	poll := f.opts.PollInterval
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}
	maxB := f.opts.MaxBackoff
	if maxB <= 0 {
		maxB = 5 * time.Second
	}
	seed := f.opts.BackoffSeed
	if seed == 0 {
		seed = 1
	}
	budget := f.opts.ResyncBudget
	if budget == 0 {
		budget = 30 * time.Second
	}
	rng := stats.NewRNG(seed)
	fails := 0
	for {
		n, err := f.SyncOnce(ctx)
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if errors.Is(err, ErrResyncNeeded) {
			// Budget the whole resync attempt: the default HTTP client has
			// no timeout, and a primary that stalls the snapshot body mid-
			// transfer must cost one bounded attempt, not pin Run forever.
			rctx, cancel := ctx, context.CancelFunc(func() {})
			if budget > 0 {
				rctx, cancel = context.WithTimeout(ctx, budget)
			}
			_, rerr := f.Resync(rctx)
			cancel()
			if rerr == nil {
				fails = 0
				f.consecRetries.Store(0)
				continue // re-tail immediately from the snapshot position
			} else if ctx.Err() != nil {
				return ctx.Err()
			}
			// Resync failed; fall through to the error backoff below.
		}
		var delay time.Duration
		switch {
		case err != nil:
			fails++
			f.consecRetries.Store(int64(fails))
			delay = backoffDelay(poll, maxB, fails, rng)
		case n == 0:
			fails = 0
			f.consecRetries.Store(0)
			delay = poll
		default:
			fails = 0
			f.consecRetries.Store(0)
			continue // traffic is flowing; pull again immediately
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(delay):
		}
	}
}
