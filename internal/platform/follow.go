package platform

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"
)

// Follower tails a primary's journal over HTTP (GET /v1/journal/stream)
// and persists every event into its own segment directory before
// applying it — the standby half of primary→follower replication.  The
// local directory is a normal journal: takeover is simply RecoverDir on
// it (plus starting a Service), and because the follower only ever
// applies events it has already journaled, the recovered state equals
// the followed state exactly.
//
// Consistency model: the primary serves only committed bytes (a group
// flush that may still fail is never streamed — see
// SegmentedLog.EventsSince), the follower verifies per-event contiguity
// (seq == local seq + 1) and treats a torn stream as a retriable partial
// read, keeping the valid prefix it already applied.  The follower can
// therefore lag but never diverge.
type FollowerOptions struct {
	// NumCategories is the market's category universe (must match the
	// primary's).
	NumCategories int
	// Segment configures the follower's local journal (format, fsync,
	// rotation).  The follower mirrors events, not bytes: its segment
	// boundaries and encoding may differ from the primary's, recovery
	// equivalence is at the event level.
	Segment SegmentOptions
	// Client performs the HTTP requests; nil means a fresh default client.
	Client *http.Client
	// PollInterval is the idle re-poll delay in Run; 0 means 200ms.
	PollInterval time.Duration
}

type Follower struct {
	primary string // primary's base URL, no trailing slash
	opts    FollowerOptions
	client  *http.Client
	state   *State
	seg     *SegmentedLog
	// primarySeq is the primary's last committed sequence as of the
	// latest successful poll (from the stream response header).
	primarySeq atomic.Uint64
}

// NewFollower recovers (or creates) the follower's local journal
// directory and prepares to tail the primary.  Call SyncOnce / Run to
// start pulling.
func NewFollower(primaryURL, dir string, opts FollowerOptions) (*Follower, error) {
	if opts.NumCategories <= 0 {
		return nil, fmt.Errorf("platform: follower needs the category count")
	}
	state, _, err := RecoverDir(dir, opts.NumCategories)
	if err != nil {
		return nil, fmt.Errorf("platform: recovering follower dir: %w", err)
	}
	seg, err := OpenSegmentedLog(dir, opts.Segment)
	if err != nil {
		return nil, fmt.Errorf("platform: opening follower journal: %w", err)
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{}
	}
	f := &Follower{
		primary: primaryURL,
		opts:    opts,
		client:  client,
		state:   state,
		seg:     seg,
	}
	return f, nil
}

// State exposes the follower's replica state (read-only use; mutating it
// outside the replication path would diverge from the primary).
func (f *Follower) State() *State { return f.state }

// Seq is the follower's last applied sequence.
func (f *Follower) Seq() uint64 { return f.state.Seq() }

// PrimarySeq is the primary's last committed sequence as of the latest
// successful poll (0 before the first contact).
func (f *Follower) PrimarySeq() uint64 { return f.primarySeq.Load() }

// Lag is how many events behind the primary the follower was at the
// latest poll.
func (f *Follower) Lag() uint64 {
	p, s := f.PrimarySeq(), f.Seq()
	if p > s {
		return p - s
	}
	return 0
}

// Health implements HealthReporter for a follower process.
func (f *Follower) Health() HealthStatus {
	workers, tasks := f.state.Counts()
	h := HealthStatus{
		Role:            "follower",
		LastSeq:         f.Seq(),
		JournalPoisoned: f.seg.Poisoned(),
		Workers:         workers,
		Tasks:           tasks,
		Rounds:          f.state.Rounds(),
		PrimarySeq:      f.PrimarySeq(),
		ReplicationLag:  f.Lag(),
	}
	h.Status = "ok"
	if h.JournalPoisoned {
		h.Status = "degraded"
	}
	return h
}

// Close seals the follower's local journal.
func (f *Follower) Close() error { return f.seg.Close() }

// SyncOnce pulls one stream from the primary and applies it: journal
// first, then state, per event.  It returns how many events were applied.
// A torn or interrupted stream is not fatal — the applied prefix is kept
// and the next SyncOnce re-requests from the new position; the error
// reports why the stream ended early.
func (f *Follower) SyncOnce(ctx context.Context) (int, error) {
	from := f.Seq() + 1
	url := fmt.Sprintf("%s/v1/journal/stream?from=%d", f.primary, from)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, err
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return 0, fmt.Errorf("platform: polling primary: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return 0, fmt.Errorf("platform: primary stream returned %d: %s", resp.StatusCode, msg)
	}
	if h := resp.Header.Get(JournalLastSeqHeader); h != "" {
		if v, err := strconv.ParseUint(h, 10, 64); err == nil {
			f.primarySeq.Store(v)
		}
	}
	br := bufio.NewReaderSize(resp.Body, 64*1024)
	var magic [len(binaryLogMagic)]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil || string(magic[:]) != binaryLogMagic {
		return 0, fmt.Errorf("platform: bad stream header from primary")
	}
	applied := 0
	for {
		e, _, err := readBinaryRecord(br)
		if err == io.EOF {
			return applied, nil
		}
		if err != nil {
			// Torn stream (primary died mid-response, connection cut): the
			// prefix is applied and durable, just report and let the caller
			// re-poll.
			return applied, fmt.Errorf("platform: stream ended mid-record after %d events: %w", applied, err)
		}
		if err := e.Validate(); err != nil {
			return applied, fmt.Errorf("platform: primary streamed invalid event: %w", err)
		}
		if e.Seq <= f.state.Seq() {
			continue // duplicate of something already replicated
		}
		if want := f.state.Seq() + 1; e.Seq != want {
			return applied, fmt.Errorf("platform: stream gap: got seq %d, want %d", e.Seq, want)
		}
		if _, err := f.state.ApplyJournaled(e, f.seg.Append); err != nil {
			return applied, fmt.Errorf("platform: applying replicated event %d: %w", e.Seq, err)
		}
		applied++
	}
}

// Run polls the primary until ctx is cancelled.  Transient errors
// (primary restarting, torn streams) are absorbed: the follower keeps
// its applied prefix and retries after the poll interval.
func (f *Follower) Run(ctx context.Context) error {
	poll := f.opts.PollInterval
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}
	for {
		n, err := f.SyncOnce(ctx)
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if n == 0 || err != nil {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(poll):
			}
		}
	}
}
