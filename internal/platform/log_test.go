package platform

import (
	"bytes"
	"strings"
	"testing"
)

func TestLogRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	l := NewLog(&buf)
	s := mustState(t)
	for i := 0; i < 3; i++ {
		e, err := s.Apply(NewWorkerJoined(validWorker()))
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	e, _ := s.Apply(NewTaskPosted(validTask()))
	if err := l.Append(e); err != nil {
		t.Fatal(err)
	}

	events, err := ReadLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 4 {
		t.Fatalf("read %d events", len(events))
	}
	replayed, err := Replay(3, events)
	if err != nil {
		t.Fatal(err)
	}
	w, tk := replayed.Counts()
	if w != 3 || tk != 1 {
		t.Fatalf("replayed counts (%d,%d)", w, tk)
	}
}

func TestLogAppendValidates(t *testing.T) {
	l := NewLog(&bytes.Buffer{})
	if err := l.Append(Event{Kind: EventWorkerJoined}); err == nil {
		t.Fatal("invalid event appended")
	}
}

func TestReadLogRejectsGarbage(t *testing.T) {
	if _, err := ReadLog(strings.NewReader("{not json\n")); err == nil {
		t.Fatal("garbage line accepted")
	}
	if _, err := ReadLog(strings.NewReader(`{"kind":"worker_left"}` + "\n")); err == nil {
		t.Fatal("payload-less event accepted")
	}
}

func TestReadLogRejectsNonIncreasingSeq(t *testing.T) {
	lines := `{"seq":2,"kind":"round_closed","round":0}
{"seq":1,"kind":"round_closed","round":1}
`
	if _, err := ReadLog(strings.NewReader(lines)); err == nil {
		t.Fatal("decreasing sequence accepted")
	}
}

func TestReadLogSkipsBlankLines(t *testing.T) {
	lines := "\n" + `{"seq":1,"kind":"round_closed","round":0}` + "\n\n"
	events, err := ReadLog(strings.NewReader(lines))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 {
		t.Fatalf("events = %d", len(events))
	}
}

func TestReplayLogEndToEnd(t *testing.T) {
	var buf bytes.Buffer
	l := NewLog(&buf)
	s := mustState(t)
	for i := 0; i < 5; i++ {
		e, err := s.Apply(NewTaskPosted(validTask()))
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	replayed, err := ReplayLog(3, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, tasks := replayed.Counts(); tasks != 5 {
		t.Fatalf("tasks = %d", tasks)
	}
}
