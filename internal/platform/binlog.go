package platform

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/market"
)

// Binary journal format ("MBAJRNL", version 1).
//
// The JSONL journal is greppable and diffable but pays json.Marshal on the
// hot ingest path and carries field names on every record.  The binary
// format keeps the same append-only, truncate-at-first-defect discipline
// while being ~5× smaller and an order of magnitude cheaper to encode.  A
// stream is the 8-byte magic followed by records framed exactly like the
// snapshot format (snapshot.go):
//
//	kind(1) | len(uint32 LE) | payload | crc32c(uint32 LE)
//
// where the CRC (Castagnoli, like the snapshot frames) covers kind+len+
// payload.  Record kinds map one-to-one onto EventKind: 'W' worker_joined,
// 'L' worker_left, 'T' task_posted, 'C' task_closed, 'R' round_closed.
// Every payload starts with the event's sequence number (uint64 LE); the
// rest is kind-specific:
//
//	'W': id(i64) capacity(i64) reservation_wage(f64)
//	     nacc(u32) accuracy[nacc](f64) nint(u32) interest[nint](f64)
//	     nspec(u32) specialties[nspec](i32)
//	'T': id(i64) category(i32) replication(i32) payment(f64) difficulty(f64)
//	'L','C': id(i64)
//	'R': round(i64)
//	'E': epoch(u64)
//
// All integers and float bit patterns are little-endian.  Accuracy and
// interest lengths are encoded independently so the codec round-trips any
// Event the JSONL codec accepts, even shapes the state layer would reject.
//
// Readers auto-detect the format per stream: JSONL lines always begin with
// '{' (or a blank line), never 'M', so the first byte disambiguates — see
// readLogPartialDetect.  A defect (bad CRC, short frame, foreign bytes)
// wraps ErrRecordCorrupt; partial readers keep the valid prefix before it,
// exactly like the JSONL torn-tail rules.

// binaryLogMagic opens every binary journal stream; the final byte is the
// format version.
const binaryLogMagic = "MBAJRNL\x01"

// maxBinaryRecord caps a record payload, same bound as snapshot frames: a
// length field beyond it is treated as corruption, not an allocation
// request.
const maxBinaryRecord = 1 << 24

// Binary record kinds (the frame's kind byte).
const (
	binKindWorkerJoined = byte('W')
	binKindWorkerLeft   = byte('L')
	binKindTaskPosted   = byte('T')
	binKindTaskClosed   = byte('C')
	binKindRoundClosed  = byte('R')
	binKindEpochBumped  = byte('E')
)

// ErrRecordCorrupt marks any defect in a binary journal stream — bad
// magic, bad CRC, truncated frame, impossible payload.  Wrapped errors
// carry the specifics.
var ErrRecordCorrupt = errors.New("platform: binary journal record corrupt")

// binlogCRC is the Castagnoli table shared with the snapshot format.
var binlogCRC = crc32.MakeTable(crc32.Castagnoli)

func recordCorrupt(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrRecordCorrupt, fmt.Sprintf(format, args...))
}

// JournalFormat selects the on-disk encoding of newly written journal
// streams.  Readers never need it: they detect the format per segment.
type JournalFormat int

const (
	// FormatJSONL is the seed encoding: one JSON object per line.
	FormatJSONL JournalFormat = iota
	// FormatBinary is the CRC32C-framed binary encoding above.
	FormatBinary
)

func (f JournalFormat) String() string {
	switch f {
	case FormatJSONL:
		return "json"
	case FormatBinary:
		return "binary"
	default:
		return fmt.Sprintf("JournalFormat(%d)", int(f))
	}
}

// ParseJournalFormat maps the CLI spelling to a JournalFormat.
func ParseJournalFormat(s string) (JournalFormat, error) {
	switch s {
	case "json", "jsonl":
		return FormatJSONL, nil
	case "binary", "bin":
		return FormatBinary, nil
	default:
		return FormatJSONL, fmt.Errorf("platform: unknown journal format %q (want json or binary)", s)
	}
}

// appendBinaryRecord encodes e as one framed binary record onto dst.
func appendBinaryRecord(dst []byte, e *Event) ([]byte, error) {
	var kind byte
	start := len(dst)
	// Reserve the header; the length is patched once the payload is known.
	dst = append(dst, 0, 0, 0, 0, 0)
	dst = binary.LittleEndian.AppendUint64(dst, e.Seq)
	switch e.Kind {
	case EventWorkerJoined:
		kind = binKindWorkerJoined
		w := e.Worker
		dst = binary.LittleEndian.AppendUint64(dst, uint64(int64(w.ID)))
		dst = binary.LittleEndian.AppendUint64(dst, uint64(int64(w.Capacity)))
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(w.ReservationWage))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(w.Accuracy)))
		for _, v := range w.Accuracy {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
		}
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(w.Interest)))
		for _, v := range w.Interest {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
		}
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(w.Specialties)))
		for _, s := range w.Specialties {
			dst = binary.LittleEndian.AppendUint32(dst, uint32(int32(s)))
		}
	case EventWorkerLeft:
		kind = binKindWorkerLeft
		dst = binary.LittleEndian.AppendUint64(dst, uint64(int64(*e.WorkerID)))
	case EventTaskPosted:
		kind = binKindTaskPosted
		t := e.Task
		dst = binary.LittleEndian.AppendUint64(dst, uint64(int64(t.ID)))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(int32(t.Category)))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(int32(t.Replication)))
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(t.Payment))
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(t.Difficulty))
	case EventTaskClosed:
		kind = binKindTaskClosed
		dst = binary.LittleEndian.AppendUint64(dst, uint64(int64(*e.TaskID)))
	case EventRoundClosed:
		kind = binKindRoundClosed
		dst = binary.LittleEndian.AppendUint64(dst, uint64(int64(*e.Round)))
	case EventEpochBumped:
		kind = binKindEpochBumped
		dst = binary.LittleEndian.AppendUint64(dst, *e.Epoch)
	default:
		return dst[:start], fmt.Errorf("platform: cannot binary-encode event kind %q", e.Kind)
	}
	payloadLen := len(dst) - start - 5
	if payloadLen > maxBinaryRecord {
		return dst[:start], fmt.Errorf("platform: binary record payload %d bytes exceeds limit", payloadLen)
	}
	dst[start] = kind
	binary.LittleEndian.PutUint32(dst[start+1:start+5], uint32(payloadLen))
	crc := crc32.Update(0, binlogCRC, dst[start:])
	dst = binary.LittleEndian.AppendUint32(dst, crc)
	return dst, nil
}

// binCursor is a bounds-checked little-endian payload reader.  Overruns
// set bad instead of panicking; the caller checks once at the end.
type binCursor struct {
	b   []byte
	off int
	bad bool
}

func (c *binCursor) u32() uint32 {
	if c.off+4 > len(c.b) {
		c.bad = true
		return 0
	}
	v := binary.LittleEndian.Uint32(c.b[c.off:])
	c.off += 4
	return v
}

func (c *binCursor) u64() uint64 {
	if c.off+8 > len(c.b) {
		c.bad = true
		return 0
	}
	v := binary.LittleEndian.Uint64(c.b[c.off:])
	c.off += 8
	return v
}

func (c *binCursor) i64() int64   { return int64(c.u64()) }
func (c *binCursor) i32() int32   { return int32(c.u32()) }
func (c *binCursor) f64() float64 { return math.Float64frombits(c.u64()) }

// floats reads a count-prefixed float64 array.  The count is sanity-bounded
// by the remaining payload before allocating.
func (c *binCursor) floats() []float64 {
	n := int(c.u32())
	if c.bad || n < 0 || c.off+8*n > len(c.b) {
		c.bad = true
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = c.f64()
	}
	return out
}

func (c *binCursor) ints32() []int {
	n := int(c.u32())
	if c.bad || n < 0 || c.off+4*n > len(c.b) {
		c.bad = true
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = int(c.i32())
	}
	return out
}

// decodeBinaryPayload rebuilds an Event from one record's kind byte and
// payload.  The payload must be consumed exactly; trailing bytes are
// corruption (a CRC collision or an encoder bug, either way untrustworthy).
func decodeBinaryPayload(kind byte, payload []byte) (Event, error) {
	c := &binCursor{b: payload}
	var e Event
	e.Seq = c.u64()
	switch kind {
	case binKindWorkerJoined:
		w := market.Worker{
			ID:              int(c.i64()),
			Capacity:        int(c.i64()),
			ReservationWage: c.f64(),
			Accuracy:        c.floats(),
			Interest:        c.floats(),
			Specialties:     c.ints32(),
		}
		e.Kind, e.Worker = EventWorkerJoined, &w
	case binKindWorkerLeft:
		id := int(c.i64())
		e.Kind, e.WorkerID = EventWorkerLeft, &id
	case binKindTaskPosted:
		t := market.Task{
			ID:          int(c.i64()),
			Category:    int(c.i32()),
			Replication: int(c.i32()),
			Payment:     c.f64(),
			Difficulty:  c.f64(),
		}
		e.Kind, e.Task = EventTaskPosted, &t
	case binKindTaskClosed:
		id := int(c.i64())
		e.Kind, e.TaskID = EventTaskClosed, &id
	case binKindRoundClosed:
		round := int(c.i64())
		e.Kind, e.Round = EventRoundClosed, &round
	case binKindEpochBumped:
		epoch := c.u64()
		e.Kind, e.Epoch = EventEpochBumped, &epoch
	default:
		return Event{}, recordCorrupt("unknown record kind 0x%02x", kind)
	}
	if c.bad {
		return Event{}, recordCorrupt("payload for kind %q truncated (%d bytes)", kind, len(payload))
	}
	if c.off != len(payload) {
		return Event{}, recordCorrupt("payload for kind %q has %d trailing bytes", kind, len(payload)-c.off)
	}
	return e, nil
}

// readBinaryRecord reads one framed record.  A clean end-of-stream at a
// frame boundary returns io.EOF; any other defect wraps ErrRecordCorrupt.
// size is the full on-disk footprint of the record (header+payload+CRC).
func readBinaryRecord(br *bufio.Reader) (e Event, size int64, err error) {
	var hdr [5]byte
	n, err := io.ReadFull(br, hdr[:])
	if n == 0 && (err == io.EOF || err == io.ErrUnexpectedEOF) {
		return Event{}, 0, io.EOF
	}
	if err != nil {
		return Event{}, 0, recordCorrupt("truncated record header (%d of 5 bytes)", n)
	}
	payloadLen := int(binary.LittleEndian.Uint32(hdr[1:]))
	if payloadLen > maxBinaryRecord {
		return Event{}, 0, recordCorrupt("payload length %d exceeds limit", payloadLen)
	}
	body := make([]byte, payloadLen+4)
	if k, err := io.ReadFull(br, body); err != nil {
		return Event{}, 0, recordCorrupt("truncated record body (%d of %d bytes)", k, len(body))
	}
	payload := body[:payloadLen]
	wantCRC := binary.LittleEndian.Uint32(body[payloadLen:])
	crc := crc32.Update(0, binlogCRC, hdr[:])
	crc = crc32.Update(crc, binlogCRC, payload)
	if crc != wantCRC {
		return Event{}, 0, recordCorrupt("CRC mismatch (stored %08x, computed %08x)", wantCRC, crc)
	}
	e, err = decodeBinaryPayload(hdr[0], payload)
	if err != nil {
		return Event{}, 0, err
	}
	return e, int64(5 + payloadLen + 4), nil
}

// readBinaryLogPartial consumes framed records after the magic has been
// stripped, stopping at the first defect.  consumed counts the bytes of
// fully-valid records only (not the magic); dropped is nil for a clean
// stream.  Mirrors the JSONL partial-read rules: validated events, Seq
// strictly increasing when nonzero.
func readBinaryLogPartial(br *bufio.Reader) (events []Event, consumed int64, dropped error) {
	var lastSeq uint64
	for {
		e, size, err := readBinaryRecord(br)
		if err == io.EOF {
			return events, consumed, nil
		}
		if err != nil {
			return events, consumed, fmt.Errorf("platform: binary log record %d: %w: recovered %d events",
				len(events)+1, err, len(events))
		}
		if err := e.Validate(); err != nil {
			return events, consumed, fmt.Errorf("platform: binary log record %d invalid (%v): recovered %d events",
				len(events)+1, err, len(events))
		}
		if e.Seq != 0 && e.Seq <= lastSeq {
			return events, consumed, fmt.Errorf("platform: binary log record %d out of order: recovered %d events",
				len(events)+1, len(events))
		}
		if e.Seq != 0 {
			lastSeq = e.Seq
		}
		events = append(events, e)
		consumed += size
	}
}
