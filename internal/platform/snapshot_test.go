package platform

import (
	"bytes"
	"encoding/json"
	"errors"
	"path/filepath"
	"strings"
	"testing"
)

// populatedState builds a state whose snapshot must carry more than live
// entities: removed IDs leave the next-ID counters ahead of the live
// counts, and a closed round bumps the round counter.
func populatedState(t *testing.T) *State {
	t.Helper()
	s := mustState(t)
	for i := 0; i < 5; i++ {
		if _, err := s.Apply(NewWorkerJoined(validWorker())); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		tk := validTask()
		tk.Category = i % 3
		if _, err := s.Apply(NewTaskPosted(tk)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Apply(NewWorkerLeft(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Apply(NewTaskClosed(2)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Apply(NewRoundClosed(1)); err != nil {
		t.Fatal(err)
	}
	return s
}

// stateBytes encodes a state into its canonical snapshot bytes.  Encoding
// is deterministic, so equal byte slices mean equal states — the crash
// suite uses this as a whole-state digest.
func stateBytes(t *testing.T, s *State) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := s.EncodeSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestSnapshotRoundTrip(t *testing.T) {
	s := populatedState(t)
	enc := stateBytes(t, s)

	got, info, err := DecodeSnapshot(bytes.NewReader(enc))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if info.Workers != 4 || info.Tasks != 3 || info.Rounds != 1 || info.NumCategories != 3 {
		t.Fatalf("info = %+v", info)
	}
	if info.Seq != s.Seq() || info.Seq != 12 {
		t.Fatalf("info.Seq = %d, want %d", info.Seq, s.Seq())
	}
	if !bytes.Equal(stateBytes(t, got), enc) {
		t.Fatal("decoded state does not re-encode to the same bytes")
	}

	// The ID counters must survive: the next worker joined after recovery
	// gets the same ID it would have gotten on the original state.
	want, err := s.Apply(NewWorkerJoined(validWorker()))
	if err != nil {
		t.Fatal(err)
	}
	have, err := got.Apply(NewWorkerJoined(validWorker()))
	if err != nil {
		t.Fatal(err)
	}
	if have.Worker.ID != want.Worker.ID || have.Seq != want.Seq {
		t.Fatalf("post-recovery allocation (id %d, seq %d) != original (id %d, seq %d)",
			have.Worker.ID, have.Seq, want.Worker.ID, want.Seq)
	}
}

func TestSnapshotDetectsEveryByteFlip(t *testing.T) {
	enc := stateBytes(t, populatedState(t))
	for i := range enc {
		mut := append([]byte(nil), enc...)
		mut[i] ^= 0xFF
		if _, _, err := DecodeSnapshot(bytes.NewReader(mut)); err == nil {
			t.Fatalf("flip at byte %d/%d went undetected", i, len(enc))
		} else if !errors.Is(err, ErrSnapshotCorrupt) {
			t.Fatalf("flip at byte %d: error does not wrap ErrSnapshotCorrupt: %v", i, err)
		}
	}
}

func TestSnapshotDetectsEveryTruncation(t *testing.T) {
	enc := stateBytes(t, populatedState(t))
	for n := 0; n < len(enc); n++ {
		if _, _, err := DecodeSnapshot(bytes.NewReader(enc[:n])); err == nil {
			t.Fatalf("truncation to %d/%d bytes went undetected", n, len(enc))
		} else if !errors.Is(err, ErrSnapshotCorrupt) {
			t.Fatalf("truncation to %d bytes: error does not wrap ErrSnapshotCorrupt: %v", n, err)
		}
	}
}

func TestSnapshotDetectsTrailingJunk(t *testing.T) {
	enc := stateBytes(t, populatedState(t))
	for _, junk := range [][]byte{{0}, []byte("x"), stateBytes(t, mustState(t))} {
		mut := append(append([]byte(nil), enc...), junk...)
		_, _, err := DecodeSnapshot(bytes.NewReader(mut))
		if !errors.Is(err, ErrSnapshotCorrupt) {
			t.Fatalf("trailing %d junk bytes: got %v, want ErrSnapshotCorrupt", len(junk), err)
		}
	}
}

// craftSnapshot assembles snapshot bytes frame by frame so tests can
// build structurally-corrupt inputs with valid CRCs.
func craftSnapshot(t *testing.T, hdr snapshotHeader, frames ...func(w *bytes.Buffer)) []byte {
	t.Helper()
	var buf bytes.Buffer
	buf.WriteString(snapshotMagic)
	payload, err := json.Marshal(hdr)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeFrame(&buf, 'H', payload); err != nil {
		t.Fatal(err)
	}
	for _, f := range frames {
		f(&buf)
	}
	if err := writeFrame(&buf, 'E', nil); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestSnapshotRejectsStructuralCorruption(t *testing.T) {
	workerFrame := func(id int) func(w *bytes.Buffer) {
		return func(w *bytes.Buffer) {
			wk := validWorker()
			wk.ID = id
			payload, _ := json.Marshal(&wk)
			if err := writeFrame(w, 'W', payload); err != nil {
				t.Fatal(err)
			}
		}
	}
	hdr := snapshotHeader{Version: snapshotVersion, NumCategories: 3, Seq: 9,
		NextWorkerID: 4, NextTaskID: 1, Workers: 2}

	cases := map[string][]byte{
		"duplicate worker": craftSnapshot(t, hdr, workerFrame(0), workerFrame(0)),
		"count mismatch":   craftSnapshot(t, hdr, workerFrame(0)),
		"id past counter":  craftSnapshot(t, hdr, workerFrame(0), workerFrame(7)),
		"bad version": craftSnapshot(t, snapshotHeader{Version: 99, NumCategories: 3,
			NextWorkerID: 1, NextTaskID: 1}),
		"negative categories": craftSnapshot(t, snapshotHeader{Version: snapshotVersion,
			NumCategories: -3}),
		"unknown frame kind": craftSnapshot(t,
			snapshotHeader{Version: snapshotVersion, NumCategories: 3},
			func(w *bytes.Buffer) {
				if err := writeFrame(w, 'Z', []byte("?")); err != nil {
					t.Fatal(err)
				}
			}),
	}
	for name, enc := range cases {
		_, _, err := DecodeSnapshot(bytes.NewReader(enc))
		if !errors.Is(err, ErrSnapshotCorrupt) {
			t.Errorf("%s: got %v, want ErrSnapshotCorrupt", name, err)
		}
	}
}

func TestWriteSnapshotAtomicPublish(t *testing.T) {
	dir := t.TempDir()
	s := populatedState(t)
	path, info, err := WriteSnapshot(dir, s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != snapshotFileName(info.Seq) {
		t.Fatalf("snapshot published as %s, want %s", filepath.Base(path), snapshotFileName(info.Seq))
	}
	if tmps, _ := filepath.Glob(filepath.Join(dir, "*.tmp")); len(tmps) != 0 {
		t.Fatalf("temp files left after a successful write: %v", tmps)
	}
	got, _, err := ReadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(stateBytes(t, got), stateBytes(t, s)) {
		t.Fatal("snapshot file does not round-trip the state")
	}

	// A second snapshot at a later seq lists first (newest-first order).
	if _, err := s.Apply(NewWorkerJoined(validWorker())); err != nil {
		t.Fatal(err)
	}
	path2, _, err := WriteSnapshot(dir, s, nil)
	if err != nil {
		t.Fatal(err)
	}
	snaps, err := listSnapshots(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 2 || snaps[0] != path2 || snaps[1] != path {
		t.Fatalf("listSnapshots = %v, want [%s %s]", snaps, path2, path)
	}
}

func TestParseSnapshotSeq(t *testing.T) {
	seq, ok := parseSnapshotSeq(snapshotFileName(42))
	if !ok || seq != 42 {
		t.Fatalf("parse(%s) = %d, %v", snapshotFileName(42), seq, ok)
	}
	for _, name := range []string{
		"snapshot.mba", "journal.00001.jsonl", "snapshot.x.mba", "foo",
		"snapshot.5junk.mba",                     // trailing garbage after the digits
		"snapshot.5.mba",                         // un-padded: not a name our writer emits
		"snapshot.0000000000000000000x.mba",      // non-digit at canonical width
		"snapshot.+0000000000000000005.mba",      // sign at canonical width
		"snapshot.99999999999999999999.mba",      // canonical width but overflows uint64
		"snapshot.000000000000000000005junk.mba", // garbage pushing past canonical width
	} {
		if _, ok := parseSnapshotSeq(name); ok {
			t.Fatalf("parse(%q) accepted a foreign file", name)
		}
	}
	// Same strictness for segment names: a foreign "journal.5junk.jsonl"
	// must never parse (and so never be pruned or replayed).
	for _, format := range []JournalFormat{FormatJSONL, FormatBinary} {
		if seq, ok := parseSegmentSeq(segmentFileName(42, format)); !ok || seq != 42 {
			t.Fatalf("parse(%s) = %d, %v", segmentFileName(42, format), seq, ok)
		}
	}
	for _, name := range []string{"journal.5junk.jsonl", "journal.5.jsonl", "journal.jsonl", "journal.5.mbaj"} {
		if _, ok := parseSegmentSeq(name); ok {
			t.Fatalf("parse(%q) accepted a foreign file", name)
		}
	}
	if !strings.Contains(snapshotFileName(7), "00000000000000000007") {
		t.Fatalf("snapshot names must zero-pad: %s", snapshotFileName(7))
	}
}
