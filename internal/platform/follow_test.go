package platform

// Follower tests: the journal stream endpoint serves the committed binary
// stream, a follower tails it into an equivalent local journal, and a
// torn stream (primary dying mid-response) loses nothing — the follower
// keeps its applied prefix and catches up on the next poll.

import (
	"bytes"
	"context"
	"encoding/binary"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"repro/internal/benefit"
	"repro/internal/faultinject"
)

// newPrimary starts an HTTP primary over a segmented binary journal in
// dir.
func newPrimary(t *testing.T, dir string) (*httptest.Server, *Service) {
	t.Helper()
	sl, err := OpenSegmentedLog(dir, SegmentOptions{
		MaxBytes: 1 << 20,
		Log:      LogOptions{Format: FormatBinary, GroupCommit: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := NewService(mustState(t), greedySolver(), benefit.DefaultParams(), sl, 1)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServerWithOptions(svc, NewServerOptions()))
	t.Cleanup(func() {
		ts.Close()
		sl.Close()
	})
	return ts, svc
}

func submitN(t *testing.T, svc *Service, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		var e Event
		if i%3 == 2 {
			e = NewTaskPosted(validTask())
		} else {
			e = NewWorkerJoined(validWorker())
		}
		if _, err := svc.Submit(e); err != nil {
			t.Fatal(err)
		}
	}
}

// snapshotBytes canonicalizes a state for equivalence comparison.
func snapshotBytes(t *testing.T, s *State) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := s.EncodeSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestJournalStreamEndpoint(t *testing.T) {
	ts, svc := newPrimary(t, t.TempDir())
	submitN(t, svc, 7)

	get := func(path string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return resp, body
	}

	resp, body := get("/v1/journal/stream?from=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", resp.StatusCode)
	}
	if resp.Header.Get(JournalLastSeqHeader) != "7" {
		t.Fatalf("last-seq header %q, want 7", resp.Header.Get(JournalLastSeqHeader))
	}
	events, err := ReadLog(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("stream not a clean binary log: %v", err)
	}
	if len(events) != 7 || events[0].Seq != 1 || events[6].Seq != 7 {
		t.Fatalf("streamed %d events (%v..)", len(events), events[0].Seq)
	}

	// Mid-stream resume returns the suffix only.
	_, body = get("/v1/journal/stream?from=5")
	events, err = ReadLog(bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 || events[0].Seq != 5 {
		t.Fatalf("resume streamed %d events starting at %d", len(events), events[0].Seq)
	}

	// Beyond the tip: an empty (header-only) stream, not an error.
	resp, body = get("/v1/journal/stream?from=100")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("beyond-tip status %d", resp.StatusCode)
	}
	if events, err = ReadLog(bytes.NewReader(body)); err != nil || len(events) != 0 {
		t.Fatalf("beyond-tip stream: %d events, err %v", len(events), err)
	}

	if resp, _ = get("/v1/journal/stream?from=x"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad from: status %d", resp.StatusCode)
	}

	// A backend over a plain (non-segmented) journal cannot stream.
	plain := newTestServer(t)
	if resp, err := http.Get(plain.URL + "/v1/journal/stream"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("plain-journal stream status %d, want 404", resp.StatusCode)
		}
	}
}

func TestFollowerSyncAndTakeover(t *testing.T) {
	primaryDir, followerDir := t.TempDir(), t.TempDir()
	ts, svc := newPrimary(t, primaryDir)
	submitN(t, svc, 12)

	f, err := NewFollower(ts.URL, followerDir, FollowerOptions{
		NumCategories: 3,
		Segment: SegmentOptions{
			MaxBytes: 1 << 20,
			Log:      LogOptions{Format: FormatBinary, GroupCommit: true},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.SyncOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if n != 12 || f.Seq() != 12 || f.Lag() != 0 {
		t.Fatalf("first sync: applied %d, seq %d, lag %d", n, f.Seq(), f.Lag())
	}

	// The primary keeps moving; the follower catches up incrementally.
	submitN(t, svc, 5)
	if n, err = f.SyncOnce(context.Background()); err != nil || n != 5 {
		t.Fatalf("second sync: applied %d, err %v", n, err)
	}
	h := f.Health()
	if h.Role != "follower" || h.LastSeq != 17 || h.PrimarySeq != 17 || h.ReplicationLag != 0 {
		t.Fatalf("follower health %+v", h)
	}
	if !bytes.Equal(snapshotBytes(t, f.State()), snapshotBytes(t, svc.State())) {
		t.Fatal("follower state diverges from primary")
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// Takeover: cold recovery of the follower's own journal directory
	// reproduces the primary's state exactly.
	rec, info, err := RecoverDir(followerDir, 3)
	if err != nil {
		t.Fatal(err)
	}
	if info.TailDropped != nil {
		t.Fatalf("follower journal torn: %v", info.TailDropped)
	}
	if !bytes.Equal(snapshotBytes(t, rec), snapshotBytes(t, svc.State())) {
		t.Fatal("takeover state diverges from primary")
	}
}

// binaryStreamCut returns a byte offset that lands mid-way through record
// index k (0-based) of a binary stream, by walking the frame lengths.
func binaryStreamCut(t *testing.T, stream []byte, k int) int64 {
	t.Helper()
	off := len(binaryLogMagic)
	for i := 0; i < k; i++ {
		if off+5 > len(stream) {
			t.Fatalf("stream has fewer than %d records", k)
		}
		plen := int(binary.LittleEndian.Uint32(stream[off+1 : off+5]))
		off += 1 + 4 + plen + 4
	}
	if off+5 >= len(stream) {
		t.Fatalf("record %d missing or empty", k)
	}
	return int64(off + 5) // into record k's payload: unmistakably torn
}

// tornOnceProxy forwards journal-stream requests to the primary, severing
// the first response body mid-record — the observable shape of a primary
// that died while streaming.
type tornOnceProxy struct {
	t          *testing.T
	primaryURL string
	cutRecord  int
	torn       atomic.Bool
}

func (p *tornOnceProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	resp, err := http.Get(p.primaryURL + r.URL.String())
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	w.Header().Set(JournalLastSeqHeader, resp.Header.Get(JournalLastSeqHeader))
	w.WriteHeader(resp.StatusCode)
	if resp.StatusCode == http.StatusOK && p.torn.CompareAndSwap(false, true) {
		cw := faultinject.NewCutWriter(w, binaryStreamCut(p.t, body, p.cutRecord))
		cw.Write(body) // delivers the prefix, then cuts
		return
	}
	w.Write(body)
}

func TestFollowerTornStreamKeepsPrefix(t *testing.T) {
	ts, svc := newPrimary(t, t.TempDir())
	submitN(t, svc, 10)

	proxy := httptest.NewServer(&tornOnceProxy{t: t, primaryURL: ts.URL, cutRecord: 6})
	defer proxy.Close()

	followerDir := t.TempDir()
	f, err := NewFollower(proxy.URL, followerDir, FollowerOptions{
		NumCategories: 3,
		Segment:       SegmentOptions{MaxBytes: 1 << 20, Log: LogOptions{Format: FormatBinary}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	// First poll tears inside record 6: exactly the 6 whole records before
	// it apply, and the error says the stream ended early.
	n, err := f.SyncOnce(context.Background())
	if err == nil {
		t.Fatal("torn stream reported a clean sync")
	}
	if n != 6 || f.Seq() != 6 {
		t.Fatalf("torn sync applied %d (seq %d), want 6", n, f.Seq())
	}
	if f.Lag() != 4 {
		t.Fatalf("lag %d after torn sync, want 4", f.Lag())
	}

	// Next poll resumes from seq 7 and completes the catch-up.
	if n, err = f.SyncOnce(context.Background()); err != nil || n != 4 {
		t.Fatalf("recovery sync applied %d, err %v", n, err)
	}
	if !bytes.Equal(snapshotBytes(t, f.State()), snapshotBytes(t, svc.State())) {
		t.Fatal("follower state diverges from primary after torn stream")
	}
}
