package platform

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/benefit"
	"repro/internal/core"
	"repro/internal/stats"
)

// TestSnapshotDeltaTracksChurn pins the positional delta encoding: join a
// few entities, snapshot, churn, snapshot again, and check survivors map to
// their previous instance indices while arrivals/departures land in the
// added/removed lists.
func TestSnapshotDeltaTracksChurn(t *testing.T) {
	s := mustState(t)
	submit := func(e Event) Event {
		t.Helper()
		applied, err := s.Apply(e)
		if err != nil {
			t.Fatal(err)
		}
		return applied
	}
	w0 := submit(NewWorkerJoined(validWorker()))
	w1 := submit(NewWorkerJoined(validWorker()))
	submit(NewTaskPosted(validTask()))

	_, _, _, d := s.SnapshotDelta()
	if d != nil {
		t.Fatalf("first SnapshotDelta returned a delta: %+v", d)
	}

	// Churn: w0 leaves, a new worker joins, a second task is posted.
	submit(NewWorkerLeft(w0.Worker.ID))
	w2 := submit(NewWorkerJoined(validWorker()))
	submit(NewTaskPosted(validTask()))

	in, workerIDs, _, d := s.SnapshotDelta()
	if d == nil {
		t.Fatal("second SnapshotDelta returned no delta")
	}
	if in.NumWorkers() != 2 || in.NumTasks() != 2 {
		t.Fatalf("snapshot %d workers / %d tasks, want 2/2", in.NumWorkers(), in.NumTasks())
	}
	// Previous snapshot order was [w0, w1]; current is [w1, w2].
	if workerIDs[0] != w1.Worker.ID || workerIDs[1] != w2.Worker.ID {
		t.Fatalf("workerIDs = %v, want [%d %d]", workerIDs, w1.Worker.ID, w2.Worker.ID)
	}
	if len(d.PrevWorker) != 2 || d.PrevWorker[0] != 1 || d.PrevWorker[1] != -1 {
		t.Fatalf("PrevWorker = %v, want [1 -1]", d.PrevWorker)
	}
	if len(d.RemovedWorkers) != 1 || d.RemovedWorkers[0] != 0 {
		t.Fatalf("RemovedWorkers = %v, want [0]", d.RemovedWorkers)
	}
	if len(d.AddedWorkers) != 1 || d.AddedWorkers[0] != 1 {
		t.Fatalf("AddedWorkers = %v, want [1]", d.AddedWorkers)
	}
	if len(d.PrevTask) != 2 || d.PrevTask[0] != 0 || d.PrevTask[1] != -1 {
		t.Fatalf("PrevTask = %v, want [0 -1]", d.PrevTask)
	}
	if len(d.AddedTasks) != 1 || len(d.RemovedTasks) != 0 {
		t.Fatalf("task churn = added %v removed %v, want one addition", d.AddedTasks, d.RemovedTasks)
	}

	// After a baseline reset the next delta is nil again.
	s.ResetDeltaBaseline()
	if _, _, _, d := s.SnapshotDelta(); d != nil {
		t.Fatalf("delta after reset: %+v", d)
	}
}

// TestSnapshotDeltaConcurrentSubmit races churning Submits against a
// SnapshotDelta loop (the CloseRound path takes its snapshot while the HTTP
// mux keeps mutating the state) and checks every delta is internally
// consistent with the ID lists of the PREVIOUS call: survivors map to the
// right previous index, arrivals are exactly the -1 positions, departures
// are exactly the previous IDs missing from the current list.  Any torn
// read — a delta computed against a baseline other than the last returned
// snapshot — shows up as a mapping violation.
func TestSnapshotDeltaConcurrentSubmit(t *testing.T) {
	const (
		churners   = 3
		churnIters = 300
		snapshots  = 200
	)
	state := mustState(t)
	svc, err := NewService(state, core.Greedy{Kind: core.MutualWeight, WS: &core.Workspace{}}, benefit.DefaultParams(), nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := svc.Submit(NewWorkerJoined(validWorker())); err != nil {
			t.Fatal(err)
		}
		if _, err := svc.Submit(NewTaskPosted(validTask())); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < churners; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := stats.NewRNG(uint64(g) + 11)
			var myWorkers, myTasks []int
			for i := 0; i < churnIters; i++ {
				select {
				case <-stop:
					return
				default:
				}
				switch rng.Intn(4) {
				case 0:
					if e, err := svc.Submit(NewWorkerJoined(validWorker())); err == nil {
						myWorkers = append(myWorkers, e.Worker.ID)
					}
				case 1:
					if e, err := svc.Submit(NewTaskPosted(validTask())); err == nil {
						myTasks = append(myTasks, e.Task.ID)
					}
				case 2:
					if len(myWorkers) > 0 {
						k := rng.Intn(len(myWorkers))
						if _, err := svc.Submit(NewWorkerLeft(myWorkers[k])); err == nil {
							myWorkers = append(myWorkers[:k], myWorkers[k+1:]...)
						}
					}
				case 3:
					if len(myTasks) > 0 {
						k := rng.Intn(len(myTasks))
						if _, err := svc.Submit(NewTaskClosed(myTasks[k])); err == nil {
							myTasks = append(myTasks[:k], myTasks[k+1:]...)
						}
					}
				}
			}
		}(g)
	}

	// checkDelta validates one side (workers or tasks) of the positional
	// encoding against the previous call's sorted ID list.
	checkDelta := func(n int, prevIDs, curIDs []int, prev, added, removed []int32) {
		t.Helper()
		if len(prev) != len(curIDs) {
			t.Fatalf("snapshot %d: len(prev)=%d, len(curIDs)=%d", n, len(prev), len(curIDs))
		}
		ai := 0
		usedPrev := make(map[int32]bool, len(prevIDs))
		for j, p := range prev {
			if p < 0 {
				if ai >= len(added) || added[ai] != int32(j) {
					t.Fatalf("snapshot %d: position %d is an arrival but added=%v", n, j, added)
				}
				ai++
				continue
			}
			if int(p) >= len(prevIDs) {
				t.Fatalf("snapshot %d: prev[%d]=%d out of range (baseline had %d)", n, j, p, len(prevIDs))
			}
			if prevIDs[p] != curIDs[j] {
				t.Fatalf("snapshot %d: survivor at %d maps to previous index %d (ID %d), but current ID is %d",
					n, j, p, prevIDs[p], curIDs[j])
			}
			if usedPrev[p] {
				t.Fatalf("snapshot %d: previous index %d mapped twice", n, p)
			}
			usedPrev[p] = true
		}
		if ai != len(added) {
			t.Fatalf("snapshot %d: %d arrivals in prev, added=%v", n, ai, added)
		}
		for _, r := range removed {
			if int(r) >= len(prevIDs) {
				t.Fatalf("snapshot %d: removed index %d out of range", n, r)
			}
			if usedPrev[r] {
				t.Fatalf("snapshot %d: previous index %d both survived and was removed", n, r)
			}
			usedPrev[r] = true
		}
		if len(usedPrev) != len(prevIDs) {
			t.Fatalf("snapshot %d: %d of %d previous indices accounted for", n, len(usedPrev), len(prevIDs))
		}
	}

	_, prevW, prevT, d := state.SnapshotDelta()
	if d != nil {
		t.Fatalf("first SnapshotDelta returned a delta: %+v", d)
	}
	for n := 1; n < snapshots; n++ {
		in, curW, curT, d := state.SnapshotDelta()
		if d == nil {
			t.Fatalf("snapshot %d returned no delta", n)
		}
		if in.NumWorkers() != len(curW) || in.NumTasks() != len(curT) {
			t.Fatalf("snapshot %d: instance %d/%d entities, ID lists %d/%d",
				n, in.NumWorkers(), in.NumTasks(), len(curW), len(curT))
		}
		checkDelta(n, prevW, curW, d.PrevWorker, d.AddedWorkers, d.RemovedWorkers)
		checkDelta(n, prevT, curT, d.PrevTask, d.AddedTasks, d.RemovedTasks)
		prevW, prevT = curW, curT
	}
	close(stop)
	wg.Wait()
}

// TestRoundsEndpointWarmProvenance drives POST /v1/rounds with the
// incremental solver: the first round is a cold full solve (dirty fraction
// 1), a zero-churn second round must be served warm, and the JSON response
// carries the provenance fields.
func TestRoundsEndpointWarmProvenance(t *testing.T) {
	state := mustState(t)
	svc, err := NewService(state, core.NewIncrementalExact(), benefit.DefaultParams(), nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(svc))
	t.Cleanup(ts.Close)

	for i := 0; i < 3; i++ {
		resp, out := postJSON(t, ts.URL+"/v1/workers", validWorker())
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("add worker %d: status %d (%v)", i, resp.StatusCode, out)
		}
	}
	for i := 0; i < 2; i++ {
		resp, out := postJSON(t, ts.URL+"/v1/tasks", validTask())
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("add task %d: status %d (%v)", i, resp.StatusCode, out)
		}
	}

	closeRound := func() map[string]json.RawMessage {
		t.Helper()
		resp, out := postJSON(t, ts.URL+"/v1/rounds", nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("close round: status %d (%v)", resp.StatusCode, out)
		}
		return out
	}
	boolField := func(out map[string]json.RawMessage, key string) bool {
		t.Helper()
		raw, ok := out[key]
		if !ok {
			return false // omitempty: absent means false
		}
		var v bool
		if err := json.Unmarshal(raw, &v); err != nil {
			t.Fatalf("field %s: %v", key, err)
		}
		return v
	}

	// Round 1: no baseline yet — a cold full solve over the whole market.
	out := closeRound()
	if boolField(out, "warm_started") {
		t.Fatalf("first round reported warm_started: %v", out)
	}
	var dirty float64
	if err := json.Unmarshal(out["dirty_fraction"], &dirty); err != nil {
		t.Fatalf("dirty_fraction missing on cold round: %v", out)
	}
	if dirty != 1 {
		t.Fatalf("cold round dirty_fraction = %v, want 1", dirty)
	}
	if len(out["pairs"]) == 0 {
		t.Fatalf("no pairs in round result: %v", out)
	}

	// Round 2: zero churn — must be served by delta surgery, not a re-solve.
	out = closeRound()
	if !boolField(out, "warm_started") {
		t.Fatalf("zero-churn round not warm: %v", out)
	}
	if boolField(out, "full_solve_fallback") {
		t.Fatalf("zero-churn round fell back to a full solve: %v", out)
	}
	if _, present := out["dirty_fraction"]; present {
		t.Fatalf("zero-churn round reported a non-zero dirty fraction: %v", out)
	}
}
