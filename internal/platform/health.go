package platform

// Health reporting for GET /v1/healthz: enough signal for an operator (or
// a standby's takeover script) to decide whether this process is serving
// safely — is the journal still appendable, how far has the event stream
// progressed, and, on a follower, how far behind the primary it runs.

// ShardHealth is one shard's slice of a sharded backend's health.
type ShardHealth struct {
	Shard           int    `json:"shard"`
	LastSeq         uint64 `json:"last_seq"`
	JournalPoisoned bool   `json:"journal_poisoned"`
	Workers         int    `json:"workers"`
	Tasks           int    `json:"tasks"`
}

// HealthStatus is the /v1/healthz payload.
type HealthStatus struct {
	// Status is "ok" or "degraded" (a poisoned journal: reads and rounds
	// still serve, ingestion is refused).
	Status string `json:"status"`
	// Role is "primary" or "follower".
	Role string `json:"role"`
	// LastSeq is the last committed sequence number (max across shards
	// for a sharded backend).
	LastSeq         uint64 `json:"last_seq"`
	JournalPoisoned bool   `json:"journal_poisoned"`
	Workers         int    `json:"workers"`
	Tasks           int    `json:"tasks"`
	Rounds          int    `json:"rounds"`
	// Shards carries per-shard detail for a sharded backend.
	Shards []ShardHealth `json:"shards,omitempty"`
	// PrimarySeq and ReplicationLag are follower-only: the primary's last
	// committed sequence as of the latest poll, and how many events behind
	// it this follower's state is.
	PrimarySeq     uint64 `json:"primary_seq,omitempty"`
	ReplicationLag uint64 `json:"replication_lag,omitempty"`
	// Epoch is the replication epoch of the serving state: 0 on a market
	// that has never failed over, bumped by one at every promotion.
	Epoch uint64 `json:"epoch"`
	// Fenced reports that this process observed a higher epoch than its
	// own (FencedBy) — it is a demoted primary refusing writes.
	Fenced   bool   `json:"fenced,omitempty"`
	FencedBy uint64 `json:"fenced_by,omitempty"`
	// PromotedAtSeq is the journal sequence of the epoch-bump event this
	// primary wrote when it took over (0 when it started as a primary).
	PromotedAtSeq uint64 `json:"promoted_at_seq,omitempty"`
	// ContactAgeMS is follower-only: milliseconds since the last successful
	// primary contact.
	ContactAgeMS int64 `json:"contact_age_ms,omitempty"`
	// ConsecutiveRetries is follower-only: how many poll/resync attempts
	// in a row have failed.  0 while replication is healthy; a growing
	// value means the primary is unreachable or flapping.
	ConsecutiveRetries int64 `json:"consecutive_retries,omitempty"`
	// Admission carries the admission controller's shed/brownout counters
	// when admission is enabled on the serving front end.
	Admission *AdmissionHealth `json:"admission,omitempty"`
}

// journalPoisoned asks a journal whether it can still append; journals
// that don't report (or nil) count as healthy.
func journalPoisoned(j Journal) bool {
	p, ok := j.(interface{ Poisoned() bool })
	return ok && p.Poisoned()
}

// Health implements HealthReporter for the single-market service.
func (s *Service) Health() HealthStatus {
	workers, tasks := s.state.Counts()
	h := HealthStatus{
		Role:            "primary",
		LastSeq:         s.state.Seq(),
		JournalPoisoned: journalPoisoned(s.journal),
		Workers:         workers,
		Tasks:           tasks,
		Rounds:          s.state.Rounds(),
		Epoch:           s.state.Epoch(),
		PromotedAtSeq:   s.PromotedAtSeq(),
	}
	h.Fenced, h.FencedBy = s.FenceStatus()
	if !h.Fenced {
		h.FencedBy = 0
	}
	h.Status = "ok"
	if h.JournalPoisoned || h.Fenced {
		h.Status = "degraded"
	}
	return h
}

// Health implements HealthReporter for the sharded service.  LastSeq is
// the max across shards (shards journal independently); the overall
// status degrades if any shard's journal is poisoned.
func (ss *ShardedService) Health() HealthStatus {
	h := HealthStatus{Role: "primary", Status: "ok"}
	for i, rt := range ss.shards {
		sh := ShardHealth{
			Shard:           i,
			LastSeq:         rt.state.Seq(),
			JournalPoisoned: journalPoisoned(rt.journal),
		}
		sh.Workers, sh.Tasks = rt.state.Counts()
		if sh.LastSeq > h.LastSeq {
			h.LastSeq = sh.LastSeq
		}
		if sh.JournalPoisoned {
			h.JournalPoisoned = true
			h.Status = "degraded"
		}
		h.Shards = append(h.Shards, sh)
	}
	h.Workers, h.Tasks = ss.Counts()
	h.Rounds = ss.Rounds()
	h.Epoch = ss.Epoch()
	h.Fenced, h.FencedBy = ss.FenceStatus()
	if h.Fenced {
		h.Status = "degraded"
	} else {
		h.FencedBy = 0
	}
	return h
}
