package platform

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/benefit"
	"repro/internal/core"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	state := mustState(t)
	svc, err := NewService(state, core.Greedy{Kind: core.MutualWeight}, benefit.DefaultParams(), nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(svc))
	t.Cleanup(ts.Close)
	return ts
}

func postJSON(t *testing.T, url string, body interface{}) (*http.Response, map[string]json.RawMessage) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Post(url, "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	var out map[string]json.RawMessage
	_ = json.NewDecoder(resp.Body).Decode(&out)
	return resp, out
}

func TestServerWorkerAndTaskLifecycle(t *testing.T) {
	ts := newTestServer(t)

	resp, out := postJSON(t, ts.URL+"/v1/workers", validWorker())
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("add worker status %d (%v)", resp.StatusCode, out)
	}
	var workerID int
	if err := json.Unmarshal(out["id"], &workerID); err != nil {
		t.Fatal(err)
	}

	resp, out = postJSON(t, ts.URL+"/v1/tasks", validTask())
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("add task status %d (%v)", resp.StatusCode, out)
	}

	// Stats reflect the submissions.
	statsResp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer statsResp.Body.Close()
	var stats map[string]int
	if err := json.NewDecoder(statsResp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats["workers"] != 1 || stats["tasks"] != 1 || stats["rounds"] != 0 {
		t.Fatalf("stats = %v", stats)
	}

	// Remove the worker.
	req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/v1/workers/%d", ts.URL, workerID), nil)
	delResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	delResp.Body.Close()
	if delResp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete status %d", delResp.StatusCode)
	}
}

func TestServerRejectsInvalidPayloads(t *testing.T) {
	ts := newTestServer(t)
	resp, _ := postJSON(t, ts.URL+"/v1/workers", map[string]interface{}{"capacity": -5})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("bad worker status %d", resp.StatusCode)
	}
	r, err := http.Post(ts.URL+"/v1/workers", "application/json", bytes.NewBufferString("{broken"))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON status %d", r.StatusCode)
	}
}

func TestServerDeleteUnknown(t *testing.T) {
	ts := newTestServer(t)
	for _, path := range []string{"/v1/workers/99", "/v1/tasks/99"} {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+path, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s status %d", path, resp.StatusCode)
		}
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/workers/notanumber", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("non-numeric id status %d", resp.StatusCode)
	}
}

func TestServerCloseRoundAndDrain(t *testing.T) {
	ts := newTestServer(t)
	for i := 0; i < 3; i++ {
		if resp, _ := postJSON(t, ts.URL+"/v1/workers", validWorker()); resp.StatusCode != http.StatusCreated {
			t.Fatal("add worker failed")
		}
	}
	for i := 0; i < 2; i++ {
		if resp, _ := postJSON(t, ts.URL+"/v1/tasks", validTask()); resp.StatusCode != http.StatusCreated {
			t.Fatal("add task failed")
		}
	}

	resp, err := http.Post(ts.URL+"/v1/rounds?drain=true", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("round status %d", resp.StatusCode)
	}
	var res RoundResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) == 0 {
		t.Fatal("round assigned nothing")
	}

	// Drained: the assigned tasks are gone.
	statsResp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer statsResp.Body.Close()
	var stats map[string]int
	json.NewDecoder(statsResp.Body).Decode(&stats)
	if stats["tasks"] != 0 {
		t.Fatalf("tasks not drained: %v", stats)
	}
	if stats["rounds"] != 1 {
		t.Fatalf("rounds = %d", stats["rounds"])
	}
}

func TestServerRoundWithoutDrainKeepsTasks(t *testing.T) {
	ts := newTestServer(t)
	postJSON(t, ts.URL+"/v1/workers", validWorker())
	postJSON(t, ts.URL+"/v1/tasks", validTask())
	resp, err := http.Post(ts.URL+"/v1/rounds", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	statsResp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer statsResp.Body.Close()
	var stats map[string]int
	json.NewDecoder(statsResp.Body).Decode(&stats)
	if stats["tasks"] != 1 {
		t.Fatalf("tasks = %d, want 1 (no drain)", stats["tasks"])
	}
}
