package platform

// CheckpointManager ties snapshots and the segmented journal into a
// compaction loop, and RecoverDir is its inverse: load the newest valid
// snapshot, replay only the segment tail.  Together they bound recovery
// to O(state + tail) no matter how many events the market has ingested.
//
// Checkpoint procedure (all under the manager's mutex):
//
//  1. atomically write a snapshot of the state at its current seq S;
//  2. prune old snapshots down to Keep generations — the extra
//     generations are the fallback chain recovery walks when the newest
//     snapshot turns out corrupt;
//  3. rotate the segmented journal, so the post-S tail starts on a fresh
//     segment;
//  4. retire sealed segments whose every event is ≤ the OLDEST retained
//     snapshot's seq — each kept generation keeps its replay tail, so the
//     fallback chain stays replayable end to end.
//
// A crash anywhere in this procedure is safe: snapshots publish by
// atomic rename, segment retirement only deletes fully-covered files,
// and every step is idempotent on retry.

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// CheckpointOptions configures the snapshot/compaction policy.
type CheckpointOptions struct {
	// Dir is where snapshots live; empty defaults to the segmented log's
	// directory.
	Dir string
	// EveryRounds takes a checkpoint after this many closed rounds;
	// 0 means manual checkpoints only (Checkpoint / POST /v1/checkpoint).
	EveryRounds int
	// Keep is how many snapshot generations to retain (default 2).  Older
	// generations are the fallback chain when the newest snapshot fails
	// its CRC on recovery.
	Keep int
	// Hook injects simulated crashes (tests only; nil in production).
	Hook CrashHook
}

// CheckpointResult reports what one checkpoint did.
type CheckpointResult struct {
	Path            string       `json:"path"`
	Snapshot        SnapshotInfo `json:"snapshot"`
	SegmentsRetired int          `json:"segments_retired"`
	SnapshotsPruned int          `json:"snapshots_pruned"`
}

// CheckpointManager snapshots a State on a round policy and retires the
// journal history its snapshots cover.  Safe for concurrent use.
type CheckpointManager struct {
	mu          sync.Mutex
	state       *State
	seg         *SegmentedLog // may be nil (snapshot-only mode)
	opts        CheckpointOptions
	roundsSince int
	last        SnapshotInfo
	taken       int
}

// NewCheckpointManager wires a manager.  seg may be nil, in which case
// checkpoints only write snapshots (no journal compaction).
func NewCheckpointManager(state *State, seg *SegmentedLog, opts CheckpointOptions) (*CheckpointManager, error) {
	if state == nil {
		return nil, fmt.Errorf("platform: nil state")
	}
	if opts.Dir == "" {
		if seg == nil {
			return nil, fmt.Errorf("platform: checkpoint dir required without a segmented log")
		}
		opts.Dir = seg.Dir()
	}
	if opts.Keep <= 0 {
		opts.Keep = 2
	}
	if opts.EveryRounds < 0 {
		return nil, fmt.Errorf("platform: EveryRounds %d negative", opts.EveryRounds)
	}
	return &CheckpointManager{state: state, seg: seg, opts: opts}, nil
}

// SnapshotDir returns where this manager writes snapshots (the segmented
// log's directory unless overridden) — the directory GET /v1/snapshot
// serves from.
func (cm *CheckpointManager) SnapshotDir() string { return cm.opts.Dir }

// RoundClosed notifies the manager that a round committed; it takes a
// checkpoint when the policy says so.  took reports whether a checkpoint
// was taken (and succeeded).
func (cm *CheckpointManager) RoundClosed() (took bool, err error) {
	cm.mu.Lock()
	defer cm.mu.Unlock()
	cm.roundsSince++
	if cm.opts.EveryRounds <= 0 || cm.roundsSince < cm.opts.EveryRounds {
		return false, nil
	}
	if _, err := cm.checkpointLocked(); err != nil {
		// roundsSince is left as-is: the next round retries the overdue
		// checkpoint instead of waiting a whole fresh interval.
		return false, err
	}
	return true, nil
}

// Checkpoint takes a snapshot now, regardless of the round policy.
func (cm *CheckpointManager) Checkpoint() (CheckpointResult, error) {
	cm.mu.Lock()
	defer cm.mu.Unlock()
	return cm.checkpointLocked()
}

// LastSnapshot returns the most recent snapshot this manager wrote and
// how many it has taken.
func (cm *CheckpointManager) LastSnapshot() (SnapshotInfo, int) {
	cm.mu.Lock()
	defer cm.mu.Unlock()
	return cm.last, cm.taken
}

func (cm *CheckpointManager) checkpointLocked() (CheckpointResult, error) {
	var res CheckpointResult
	path, info, err := WriteSnapshot(cm.opts.Dir, cm.state, cm.opts.Hook)
	if err != nil {
		return res, err
	}
	res.Path, res.Snapshot = path, info
	pruned, oldestKept := cm.pruneLocked()
	res.SnapshotsPruned = pruned
	if cm.seg != nil {
		// Rotation and retirement are best-effort: the snapshot is already
		// durable, and an unrotated or unretired segment only costs a
		// little extra replay next recovery.  Retirement is bounded by the
		// OLDEST retained snapshot, not the one just written: every kept
		// generation must keep its replay tail on disk, or falling back
		// past a corrupt newest snapshot would hit a journal gap.
		if err := cm.seg.Rotate(); err == nil {
			res.SegmentsRetired, _ = cm.seg.RetireThrough(oldestKept)
		}
	}
	cm.roundsSince = 0
	cm.last = info
	cm.taken++
	return res, nil
}

// pruneLocked removes snapshot generations beyond Keep and any *.tmp
// orphans left by crashed snapshot writes.  oldestKept is the seq of the
// oldest snapshot still on disk after pruning — the retirement bound:
// journal segments past it must survive so every retained generation
// keeps its replay tail.
func (cm *CheckpointManager) pruneLocked() (pruned int, oldestKept uint64) {
	snaps, err := listSnapshots(cm.opts.Dir)
	if err != nil {
		return 0, 0
	}
	kept := 0
	for _, p := range snaps { // newest first
		seq, _ := parseSnapshotSeq(filepath.Base(p))
		if kept < cm.opts.Keep {
			kept++
			oldestKept = seq
			continue
		}
		if os.Remove(p) == nil {
			pruned++
		}
	}
	entries, err := os.ReadDir(cm.opts.Dir)
	if err != nil {
		return pruned, oldestKept
	}
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, "snapshot-") && strings.HasSuffix(name, ".tmp") {
			if os.Remove(filepath.Join(cm.opts.Dir, name)) == nil {
				pruned++
			}
		}
	}
	return pruned, oldestKept
}

// RecoveryInfo describes how a RecoverDir run reconstructed the state.
type RecoveryInfo struct {
	// SnapshotPath is the snapshot recovery started from ("" when it
	// replayed from genesis).
	SnapshotPath string
	// Snapshot describes that snapshot.
	Snapshot SnapshotInfo
	// CorruptSnapshots lists snapshots that failed their CRC and were
	// skipped on the way to a valid one.
	CorruptSnapshots []string
	// SegmentsReplayed / EventsReplayed measure the tail: how much journal
	// had to be read on top of the snapshot.
	SegmentsReplayed int
	EventsReplayed   int
	// EventsSkipped counts events already covered by the snapshot inside
	// straddling segments.
	EventsSkipped int
	// TailDropped is the newest segment's torn-tail diagnostic, if any.
	TailDropped error
}

// RecoverDir reconstructs a State from a checkpoint directory: the
// newest snapshot that decodes cleanly (corrupt ones are skipped — the
// CRC failure chain), then the journal segments past it, tolerating a
// torn tail on the newest segment only.  Mid-history corruption or a
// sequence gap is a hard error: recovery must never silently invent a
// state that skips committed events.
func RecoverDir(dir string, numCategories int) (*State, *RecoveryInfo, error) {
	info := &RecoveryInfo{}
	snaps, err := listSnapshots(dir)
	if err != nil {
		return nil, info, err
	}
	var state *State
	for _, p := range snaps {
		st, si, err := ReadSnapshotFile(p)
		if err != nil {
			if errors.Is(err, ErrSnapshotCorrupt) {
				info.CorruptSnapshots = append(info.CorruptSnapshots, p)
				continue
			}
			return nil, info, err
		}
		if si.NumCategories != numCategories {
			return nil, info, fmt.Errorf("platform: snapshot %s has %d categories, want %d",
				p, si.NumCategories, numCategories)
		}
		state, info.SnapshotPath, info.Snapshot = st, p, si
		break
	}
	if state == nil {
		if state, err = NewState(numCategories); err != nil {
			return nil, info, err
		}
	}
	base := state.Seq()

	segs, err := listSegments(dir)
	if err != nil {
		return nil, info, err
	}
	for i, sg := range segs {
		// A segment is provably covered by the snapshot when the next
		// segment starts at or before base+1 (events are contiguous, so
		// this one holds nothing past base).  The newest segment is always
		// read.
		if i+1 < len(segs) && segs[i+1].FirstSeq <= base+1 {
			continue
		}
		f, err := os.Open(sg.Path)
		if err != nil {
			return nil, info, err
		}
		events, _, dropped := readLogPartialOffset(f)
		f.Close()
		if dropped != nil {
			if i != len(segs)-1 {
				return nil, info, fmt.Errorf("platform: segment %s corrupt mid-history: %v", sg.Path, dropped)
			}
			info.TailDropped = dropped
		}
		for _, e := range events {
			if e.Seq != 0 && e.Seq <= state.Seq() {
				info.EventsSkipped++
				continue
			}
			if e.Seq != 0 && e.Seq != state.Seq()+1 {
				return nil, info, fmt.Errorf("platform: journal gap: segment %s jumps to seq %d after %d",
					sg.Path, e.Seq, state.Seq())
			}
			if _, err := state.Apply(e); err != nil {
				return nil, info, fmt.Errorf("platform: replaying segment %s seq %d: %w", sg.Path, e.Seq, err)
			}
			info.EventsReplayed++
		}
		info.SegmentsReplayed++
	}
	return state, info, nil
}
