package platform

import (
	"fmt"

	"repro/internal/market"
	"repro/internal/stats"
)

// TraceConfig parameterises SyntheticTrace.
type TraceConfig struct {
	// Market shapes the worker/task populations drawn from (the generator's
	// per-entity distributions are reused; its size fields are ignored).
	Market market.Config
	// Events is the total number of events to emit.
	Events int
	// RoundEvery inserts a round_closed marker every that-many events
	// (0 disables markers).
	RoundEvery int
	// ChurnProb is the probability an event is a departure/closure rather
	// than an arrival (given something exists to remove); default 0.25.
	ChurnProb float64
}

// SyntheticTrace generates a plausible event stream for the live platform:
// workers join and leave, tasks are posted and closed, with the same
// per-entity distributions as the batch generators.  The trace is valid by
// construction — replaying it through Replay/State.Apply never errors — and
// deterministic per seed.  It feeds demos of cmd/mbaserve and the replay
// tooling (cmd/mbareplay).
func SyntheticTrace(cfg TraceConfig, seed uint64) ([]Event, error) {
	mcfg := cfg.Market.Defaults()
	if cfg.Events <= 0 {
		return nil, fmt.Errorf("platform: Events must be positive, got %d", cfg.Events)
	}
	churn := cfg.ChurnProb
	if churn <= 0 {
		churn = 0.25
	}
	if churn >= 1 {
		return nil, fmt.Errorf("platform: ChurnProb %v must be below 1", churn)
	}
	// Reuse the batch generator for entity shapes: draw a big instance once
	// and deal entities from it as arrival events.
	pool, err := market.Generate(market.Config{
		Name:              mcfg.Name,
		NumWorkers:        cfg.Events,
		NumTasks:          cfg.Events,
		NumCategories:     mcfg.NumCategories,
		CategorySkew:      mcfg.CategorySkew,
		MinSpecialties:    mcfg.MinSpecialties,
		MaxSpecialties:    mcfg.MaxSpecialties,
		MinCapacity:       mcfg.MinCapacity,
		MaxCapacity:       mcfg.MaxCapacity,
		MinReplication:    mcfg.MinReplication,
		MaxReplication:    mcfg.MaxReplication,
		PaymentMu:         mcfg.PaymentMu,
		PaymentSigma:      mcfg.PaymentSigma,
		AccuracyMean:      mcfg.AccuracyMean,
		AccuracyStd:       mcfg.AccuracyStd,
		InterestSpecialty: mcfg.InterestSpecialty,
		DifficultyMax:     mcfg.DifficultyMax,
		ReservationFrac:   mcfg.ReservationFrac,
	}, seed)
	if err != nil {
		return nil, err
	}

	r := stats.NewRNG(seed ^ 0xabcdef12345)
	state, err := NewState(mcfg.NumCategories)
	if err != nil {
		return nil, err
	}
	var events []Event
	var liveWorkers, liveTasks []int
	nextW, nextT := 0, 0
	emit := func(e Event) error {
		applied, err := state.Apply(e)
		if err != nil {
			return err
		}
		events = append(events, applied)
		return nil
	}
	round := 0
	for i := 0; i < cfg.Events; i++ {
		removal := r.Bool(churn) && (len(liveWorkers) > 0 || len(liveTasks) > 0)
		switch {
		case removal && len(liveWorkers) > 0 && (len(liveTasks) == 0 || r.Bool(0.5)):
			k := r.Intn(len(liveWorkers))
			if err := emit(NewWorkerLeft(liveWorkers[k])); err != nil {
				return nil, err
			}
			liveWorkers = append(liveWorkers[:k], liveWorkers[k+1:]...)
		case removal && len(liveTasks) > 0:
			k := r.Intn(len(liveTasks))
			if err := emit(NewTaskClosed(liveTasks[k])); err != nil {
				return nil, err
			}
			liveTasks = append(liveTasks[:k], liveTasks[k+1:]...)
		case r.Bool(0.5) && nextW < len(pool.Workers):
			w := pool.Workers[nextW]
			nextW++
			if err := emit(NewWorkerJoined(w)); err != nil {
				return nil, err
			}
			liveWorkers = append(liveWorkers, events[len(events)-1].Worker.ID)
		case nextT < len(pool.Tasks):
			t := pool.Tasks[nextT]
			nextT++
			if err := emit(NewTaskPosted(t)); err != nil {
				return nil, err
			}
			liveTasks = append(liveTasks, events[len(events)-1].Task.ID)
		}
		if cfg.RoundEvery > 0 && (i+1)%cfg.RoundEvery == 0 {
			if err := emit(NewRoundClosed(round)); err != nil {
				return nil, err
			}
			round++
		}
	}
	return events, nil
}
