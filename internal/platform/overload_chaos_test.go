//go:build chaos

package platform

// Overload chaos storm (`make chaos`, -tags chaos): a seeded open-loop
// LoadStorm drives the admission-controlled server at ~4× its sustained
// write capacity under -race, asserting the overload contract end to
// end:
//
//   - admitted requests meet their deadline (p99 under RequestTimeout);
//   - shed requests get 429 + a positive Retry-After and consume zero
//     journal writes (the journal's accepted-event set is exactly the
//     set of acknowledged writes);
//   - the journal survives uncorrupted and replays to a state
//     byte-identical to the serving state;
//   - healthz reports "overloaded" during the storm (at HTTP 200) and
//     recovers to "ok" shortly after it ends;
//   - a concurrently probing failover standby never promotes: pure
//     overload is not death.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/benefit"
	"repro/internal/core"
	"repro/internal/faultinject"
)

func TestChaosOverloadStorm(t *testing.T) {
	seed := chaosSeed(t)

	const (
		capacity     = 150.0 // RateMedium: sustained single-write budget (req/s)
		overloadMult = 4.0
		stormTime    = 2500 * time.Millisecond
		reqTimeout   = 1 * time.Second
	)

	dir := t.TempDir()
	seg, err := OpenSegmentedLog(dir, SegmentOptions{
		Log: LogOptions{Format: FormatBinary, GroupCommit: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	state := mustState(t)
	svc, err := NewService(state, core.Greedy{Kind: core.MutualWeight}, benefit.DefaultParams(), seg, seed)
	if err != nil {
		t.Fatal(err)
	}
	opts := NewServerOptions()
	opts.RequestTimeout = reqTimeout
	opts.Admission = NewAdmissionOptions()
	opts.Admission.RateMedium = capacity
	opts.Admission.Seed = seed
	opts.Admission.BrownoutHalflife = 200 * time.Millisecond
	ts := httptest.NewServer(NewServerWithOptions(svc, opts))
	defer ts.Close()

	// A failover standby probes the primary's health throughout the storm
	// with a hair-trigger threshold.  Overload must never read as death:
	// the standby is required to still be a follower when the storm ends.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	fo, err := NewFailover(ts.URL, t.TempDir(), FailoverOptions{
		Follower: FollowerOptions{
			NumCategories: 3,
			Segment:       SegmentOptions{Log: LogOptions{Format: FormatBinary}},
			PollInterval:  50 * time.Millisecond,
		},
		ProbeInterval: 50 * time.Millisecond,
		ProbeFailures: 3,
		AutoTakeover:  true,
		Seed:          seed,
		Solver:        core.Greedy{Kind: core.MutualWeight},
		Params:        benefit.DefaultParams(),
		Server:        NewServerOptions(),
	})
	if err != nil {
		t.Fatal(err)
	}
	foDone := make(chan struct{})
	go func() {
		defer close(foDone)
		_ = fo.Run(ctx)
	}()

	client := &http.Client{
		Transport: &http.Transport{MaxIdleConnsPerHost: 512, MaxConnsPerHost: 0},
		Timeout:   2 * reqTimeout,
	}

	var (
		acceptedMu  sync.Mutex
		acceptedIDs = map[int]bool{}

		badRetryAfter atomic.Int64 // 429s with a missing/invalid Retry-After
		transportErrs atomic.Int64
		unexpected    atomic.Int64
	)
	doRequest := func(i int) faultinject.LoadStormOutcome {
		body, _ := json.Marshal(validWorker())
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/workers", bytes.NewReader(body))
		if err != nil {
			transportErrs.Add(1)
			return faultinject.LoadError
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err != nil {
			transportErrs.Add(1)
			return faultinject.LoadError
		}
		defer resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusCreated:
			var out struct {
				ID int `json:"id"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				unexpected.Add(1)
				return faultinject.LoadError
			}
			acceptedMu.Lock()
			acceptedIDs[out.ID] = true
			acceptedMu.Unlock()
			return faultinject.LoadAdmitted
		case http.StatusTooManyRequests:
			ra := resp.Header.Get("Retry-After")
			if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
				badRetryAfter.Add(1)
			}
			return faultinject.LoadShed
		default:
			unexpected.Add(1)
			return faultinject.LoadError
		}
	}

	healthz := func() (int, string) {
		resp, err := http.Get(ts.URL + "/v1/healthz")
		if err != nil {
			return 0, fmt.Sprintf("transport: %v", err)
		}
		defer resp.Body.Close()
		var h HealthStatus
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			return resp.StatusCode, fmt.Sprintf("decode: %v", err)
		}
		return resp.StatusCode, h.Status
	}

	// Storm in a goroutine; the main goroutine watches healthz meanwhile.
	repCh := make(chan *faultinject.LoadStormReport, 1)
	go func() {
		repCh <- faultinject.RunLoadStorm(ctx, faultinject.LoadStormConfig{
			Rate:        capacity * overloadMult,
			Duration:    stormTime,
			Seed:        seed,
			Jitter:      0.3,
			MaxInFlight: 512,
		}, doRequest)
	}()

	sawOverloaded := false
	var rep *faultinject.LoadStormReport
watch:
	for {
		select {
		case rep = <-repCh:
			break watch
		case <-time.After(50 * time.Millisecond):
			if code, status := healthz(); code == http.StatusOK && status == StatusOverloaded {
				sawOverloaded = true
			} else if code != http.StatusOK {
				t.Errorf("healthz answered %d (%s) mid-storm; overload must stay 200", code, status)
			}
		}
	}

	t.Logf("storm: issued=%d admitted=%d shed=%d errors=%d skipped=%d p50=%v p99=%v",
		rep.Issued, rep.Admitted, rep.Shed, rep.Errors, rep.Skipped,
		rep.Percentile(50), rep.Percentile(99))

	// The storm must actually have overloaded the server, and the server
	// must have shed — an admission controller that admits 4× capacity is
	// not controlling anything.
	if rep.Admitted == 0 {
		t.Fatal("storm admitted nothing")
	}
	if rep.Shed == 0 {
		t.Fatal("4x overload shed nothing")
	}
	if n := transportErrs.Load() + unexpected.Load(); n > 0 {
		t.Fatalf("%d requests failed outside the 201/429 contract", n)
	}
	if n := badRetryAfter.Load(); n > 0 {
		t.Fatalf("%d shed responses carried a missing or non-positive Retry-After", n)
	}
	if !sawOverloaded {
		t.Error("healthz never reported overloaded during a 4x storm")
	}

	// Bounded latency for admitted work: the deadline-aware queue must
	// shed what it cannot serve in time instead of serving it late.
	if p99 := rep.Percentile(99); p99 >= reqTimeout {
		t.Errorf("admitted p99 %v breaches the %v request deadline", p99, reqTimeout)
	}

	// Monotone recovery: overloaded -> ok shortly after arrivals stop,
	// and it stays ok (the shed signal decays, nothing re-trips it).
	recoverDeadline := time.Now().Add(3 * time.Second)
	for {
		code, status := healthz()
		if code == http.StatusOK && status == "ok" {
			break
		}
		if time.Now().After(recoverDeadline) {
			t.Fatalf("healthz stuck at %d/%s after the storm", code, status)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if code, status := healthz(); code != http.StatusOK || status != "ok" {
		t.Fatalf("healthz flapped back to %d/%s after recovering", code, status)
	}

	// The standby watched every probe of the storm and must not have
	// promoted: overload is not failure.
	if phase := fo.Phase(); phase != PhaseFollower {
		t.Fatalf("failover phase %q after pure overload; the standby promoted", phase)
	}
	cancel()
	<-foDone

	// Journal fidelity.  Every acknowledged write (201 + id) is in the
	// journal exactly once; no shed request left a trace.
	events, _, err := svc.JournalEventsSince(1)
	if err != nil {
		t.Fatal(err)
	}
	journaled := map[int]bool{}
	for _, e := range events {
		if e.Kind != EventWorkerJoined {
			t.Fatalf("unexpected journal event kind %q", e.Kind)
		}
		if journaled[e.Worker.ID] {
			t.Fatalf("worker %d journaled twice", e.Worker.ID)
		}
		journaled[e.Worker.ID] = true
	}
	acceptedMu.Lock()
	defer acceptedMu.Unlock()
	if len(journaled) != len(acceptedIDs) {
		t.Fatalf("journal has %d accepted writes, clients got %d acks", len(journaled), len(acceptedIDs))
	}
	for id := range acceptedIDs {
		if !journaled[id] {
			t.Fatalf("acknowledged worker %d missing from the journal", id)
		}
	}

	// Zero corruption, byte-identical replay: recovering the directory
	// must reproduce the serving state exactly.
	if err := seg.Close(); err != nil {
		t.Fatal(err)
	}
	recovered, info, err := RecoverDir(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	if info.TailDropped != nil {
		t.Fatalf("recovery dropped a torn tail after a pure overload storm: %v", info.TailDropped)
	}
	if len(info.CorruptSnapshots) != 0 {
		t.Fatalf("recovery skipped corrupt snapshots: %v", info.CorruptSnapshots)
	}
	var live, replayed bytes.Buffer
	if _, err := state.EncodeSnapshot(&live); err != nil {
		t.Fatal(err)
	}
	if _, err := recovered.EncodeSnapshot(&replayed); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(live.Bytes(), replayed.Bytes()) {
		t.Fatalf("replayed state differs from serving state (%d vs %d snapshot bytes)",
			replayed.Len(), live.Len())
	}
}
