package platform

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/benefit"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/market"
)

// newTestShardedService assembles an in-memory (journal-less) sharded
// service; mkSolver is called once per shard so solver state is never
// shared.
func newTestShardedService(t *testing.T, shards, categories int, mkSolver func() core.Solver, seed uint64) *ShardedService {
	t.Helper()
	bundles := make([]Shard, shards)
	for k := range bundles {
		st, err := NewState(categories)
		if err != nil {
			t.Fatal(err)
		}
		bundles[k] = Shard{State: st, Solver: mkSolver()}
	}
	ss, err := NewShardedService(bundles, benefit.DefaultParams(), ShardedOptions{}, seed)
	if err != nil {
		t.Fatal(err)
	}
	return ss
}

func greedySolver() core.Solver { return core.Greedy{Kind: core.MutualWeight, WS: &core.Workspace{}} }

// spanningSpecialties returns two categories routed to different shards
// (they exist whenever categories span more shards than one).
func spanningSpecialties(t *testing.T, categories, shards int) (int, int) {
	t.Helper()
	r := ShardRouter{Shards: shards}
	first := r.TaskShard(0)
	for c := 1; c < categories; c++ {
		if r.TaskShard(c) != first {
			return 0, c
		}
	}
	t.Fatalf("all %d categories hash to shard %d of %d", categories, first, shards)
	return 0, 0
}

// shardedWorker builds a valid worker profile over the given specialties.
func shardedWorker(categories int, specialties ...int) market.Worker {
	w := market.Worker{
		Capacity:        2,
		Specialties:     specialties,
		Accuracy:        make([]float64, categories),
		Interest:        make([]float64, categories),
		ReservationWage: 1,
	}
	for c := range w.Accuracy {
		w.Accuracy[c] = 0.8
		w.Interest[c] = 0.5
	}
	return w
}

func shardedTask(category int) market.Task {
	return market.Task{Category: category, Replication: 2, Payment: 5, Difficulty: 0.3}
}

func TestShardedServiceRoutingAndFanout(t *testing.T) {
	const categories, shards = 8, 4
	ss := newTestShardedService(t, shards, categories, greedySolver, 1)
	c0, c1 := spanningSpecialties(t, categories, shards)
	router := ShardRouter{Shards: shards}

	// A spanning worker is resident in exactly its specialty shards.
	ev, err := ss.Submit(NewWorkerJoined(shardedWorker(categories, c0, c1)))
	if err != nil {
		t.Fatal(err)
	}
	wid := ev.Worker.ID
	if wid != 1 {
		t.Fatalf("first worker ID = %d, want 1 (global IDs start at 1)", wid)
	}
	wantShards := router.WorkerShards([]int{c0, c1})
	if len(wantShards) != 2 {
		t.Fatalf("specialties %d,%d map to %v, want two shards", c0, c1, wantShards)
	}
	for k := 0; k < shards; k++ {
		_, ok := ss.ShardState(k).Worker(wid)
		want := k == wantShards[0] || k == wantShards[1]
		if ok != want {
			t.Fatalf("worker %d resident in shard %d = %v, want %v", wid, k, ok, want)
		}
	}

	// A task lives in exactly the shard its category routes to.
	ev, err = ss.Submit(NewTaskPosted(shardedTask(c1)))
	if err != nil {
		t.Fatal(err)
	}
	tid := ev.Task.ID
	home := router.TaskShard(c1)
	for k := 0; k < shards; k++ {
		_, ok := ss.ShardState(k).Task(tid)
		if ok != (k == home) {
			t.Fatalf("task %d in shard %d = %v, want %v", tid, k, ok, k == home)
		}
	}
	if w, tk := ss.Counts(); w != 1 || tk != 1 {
		t.Fatalf("Counts = %d/%d, want 1/1 (spanning worker counted once)", w, tk)
	}

	// Removal fans out to every resident shard.
	if _, err := ss.Submit(NewWorkerLeft(wid)); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < shards; k++ {
		if _, ok := ss.ShardState(k).Worker(wid); ok {
			t.Fatalf("worker %d still in shard %d after leave", wid, k)
		}
	}
	if _, err := ss.Submit(NewWorkerLeft(wid)); err == nil {
		t.Fatal("second leave of the same worker succeeded")
	}

	// Round markers belong to CloseRound, not Submit.
	if _, err := ss.Submit(NewRoundClosed(0)); err == nil {
		t.Fatal("Submit accepted a round marker")
	}
}

// TestShardedSubmitCompensation pins the all-or-nothing Submit contract: a
// journal failure on the second target shard must undo the first shard's
// apply and leave the worker fully absent.
func TestShardedSubmitCompensation(t *testing.T) {
	const categories, shards = 8, 4
	c0, c1 := spanningSpecialties(t, categories, shards)
	router := ShardRouter{Shards: shards}
	targets := router.WorkerShards([]int{c0, c1})

	bundles := make([]Shard, shards)
	var bufs [4]bytes.Buffer
	var flaky *faultinject.FlakyWriter
	for k := range bundles {
		st, err := NewState(categories)
		if err != nil {
			t.Fatal(err)
		}
		var w *faultinject.FlakyWriter
		if k == targets[1] {
			// The SECOND shard of the fan-out fails its first append.
			w = faultinject.NewFlakyWriter(&bufs[k], faultinject.Once(0))
			flaky = w
		} else {
			w = faultinject.NewFlakyWriter(&bufs[k], func(int) bool { return false })
		}
		bundles[k] = Shard{
			State:   st,
			Solver:  greedySolver(),
			Journal: NewLogWithOptions(w, LogOptions{}),
		}
	}
	ss, err := NewShardedService(bundles, benefit.DefaultParams(), ShardedOptions{}, 1)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := ss.Submit(NewWorkerJoined(shardedWorker(categories, c0, c1))); err == nil {
		t.Fatal("join over a failing shard journal succeeded")
	}
	if flaky.Injections() == 0 {
		t.Fatal("fault never injected — the fan-out order changed?")
	}
	if w, _ := ss.Counts(); w != 0 {
		t.Fatalf("Counts reports %d workers after a compensated join", w)
	}
	for k := 0; k < shards; k++ {
		if w, _ := ss.ShardState(k).Counts(); w != 0 {
			t.Fatalf("shard %d still holds a worker after compensation", k)
		}
	}

	// The rolled-back ID is handed out again on retry.
	ev, err := ss.Submit(NewWorkerJoined(shardedWorker(categories, c0, c1)))
	if err != nil {
		t.Fatal(err)
	}
	if ev.Worker.ID != 1 {
		t.Fatalf("retried join got ID %d, want 1 (counter rolled back)", ev.Worker.ID)
	}
}

// TestShardedRecoveryByteIdentical runs a churn-and-rounds workload over a
// fully journaled+checkpointed 4-shard stack, then recovers every shard
// directory and requires each recovered state to be byte-identical to the
// live one — and the recovered stack to serve.
func TestShardedRecoveryByteIdentical(t *testing.T) {
	const categories, shards = 8, 4
	dir := t.TempDir()

	build := func() (*ShardedService, []*SegmentedLog) {
		bundles := make([]Shard, shards)
		states, _, err := RecoverShardedDir(dir, categories, shards)
		if err != nil {
			t.Fatal(err)
		}
		var segs []*SegmentedLog
		for k := range bundles {
			seg, err := OpenSegmentedLog(ShardDir(dir, k), SegmentOptions{MaxBytes: 2 << 10})
			if err != nil {
				t.Fatal(err)
			}
			cm, err := NewCheckpointManager(states[k], seg, CheckpointOptions{EveryRounds: 3, Keep: 2})
			if err != nil {
				t.Fatal(err)
			}
			bundles[k] = Shard{State: states[k], Journal: seg, Solver: greedySolver(), Checkpoint: cm}
			segs = append(segs, seg)
		}
		ss, err := NewShardedService(bundles, benefit.DefaultParams(), ShardedOptions{}, 7)
		if err != nil {
			t.Fatal(err)
		}
		return ss, segs
	}

	ss, segs := build()
	var workerIDs, taskIDs []int
	for i := 0; i < 24; i++ {
		ev, err := ss.Submit(NewWorkerJoined(shardedWorker(categories, i%categories, (i*3+1)%categories)))
		if err != nil {
			t.Fatal(err)
		}
		workerIDs = append(workerIDs, ev.Worker.ID)
		ev, err = ss.Submit(NewTaskPosted(shardedTask(i % categories)))
		if err != nil {
			t.Fatal(err)
		}
		taskIDs = append(taskIDs, ev.Task.ID)
	}
	for r := 0; r < 10; r++ {
		if _, err := ss.CloseRound(); err != nil {
			t.Fatal(err)
		}
		if r%2 == 0 && len(workerIDs) > 4 {
			if _, err := ss.Submit(NewWorkerLeft(workerIDs[0])); err != nil {
				t.Fatal(err)
			}
			workerIDs = workerIDs[1:]
			if _, err := ss.Submit(NewTaskClosed(taskIDs[0])); err != nil {
				t.Fatal(err)
			}
			taskIDs = taskIDs[1:]
		}
	}
	liveW, liveT := ss.Counts()
	rounds := ss.Rounds()
	var committed [shards][]byte
	for k := 0; k < shards; k++ {
		committed[k] = stateBytes(t, ss.ShardState(k))
	}
	for _, seg := range segs {
		if err := seg.Close(); err != nil {
			t.Fatal(err)
		}
	}

	// Recover each shard directory like a fresh mbaserve -shards run.
	states, infos, err := RecoverShardedDir(dir, categories, shards)
	if err != nil {
		t.Fatal(err)
	}
	for k, st := range states {
		if !bytes.Equal(stateBytes(t, st), committed[k]) {
			t.Fatalf("shard %d: recovered state differs from live state (replayed %d events from %d segments)",
				k, infos[k].EventsReplayed, infos[k].SegmentsReplayed)
		}
	}

	// The recovered stack reindexes to the same routing view and serves.
	ss2, segs2 := build()
	if w, tk := ss2.Counts(); w != liveW || tk != liveT {
		t.Fatalf("recovered Counts = %d/%d, want %d/%d", w, tk, liveW, liveT)
	}
	if ss2.Rounds() != rounds {
		t.Fatalf("recovered Rounds = %d, want %d", ss2.Rounds(), rounds)
	}
	if ss2.RepairedWorkers() != 0 {
		t.Fatalf("clean recovery repaired %d workers", ss2.RepairedWorkers())
	}
	if _, err := ss2.CloseRound(); err != nil {
		t.Fatal(err)
	}
	ev, err := ss2.Submit(NewWorkerJoined(shardedWorker(categories, 0)))
	if err != nil {
		t.Fatal(err)
	}
	for _, old := range workerIDs {
		if ev.Worker.ID == old {
			t.Fatalf("recovered service re-issued live worker ID %d", ev.Worker.ID)
		}
	}
	for _, seg := range segs2 {
		if err := seg.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestShardedRecoveryShardCountMismatch writes a 2-shard directory and
// recovers it under a 4-shard router, expecting the residency cross-check to
// refuse it.  (This direction is the detectable one: a category with
// shardOfCategory(c,4) ≥ 2 recovers in shard c%2 where the 4-shard router
// would never place it.  The reverse — 4-shard data under 2 shards — is
// undetectable for categories already in shards 0/1, since x%4 < 2 implies
// x%4 == x%2.)
func TestShardedRecoveryShardCountMismatch(t *testing.T) {
	const categories = 16
	dir := t.TempDir()

	r4, r2 := ShardRouter{Shards: 4}, ShardRouter{Shards: 2}
	cat := -1
	for c := 0; c < categories; c++ {
		if r4.TaskShard(c) != r2.TaskShard(c) {
			cat = c
			break
		}
	}
	if cat < 0 {
		t.Fatalf("no category distinguishes a 2-shard from a 4-shard router among %d categories", categories)
	}

	states := make([]*State, 2)
	bundles := make([]Shard, 2)
	var segs []*SegmentedLog
	for k := range states {
		st, err := NewState(categories)
		if err != nil {
			t.Fatal(err)
		}
		seg, err := OpenSegmentedLog(ShardDir(dir, k), SegmentOptions{})
		if err != nil {
			t.Fatal(err)
		}
		segs = append(segs, seg)
		states[k] = st
		bundles[k] = Shard{State: st, Journal: seg, Solver: greedySolver()}
	}
	ss, err := NewShardedService(bundles, benefit.DefaultParams(), ShardedOptions{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ss.Submit(NewTaskPosted(shardedTask(cat))); err != nil {
		t.Fatal(err)
	}
	for _, seg := range segs {
		if err := seg.Close(); err != nil {
			t.Fatal(err)
		}
	}

	rec, _, err := RecoverShardedDir(dir, categories, 4)
	if err != nil {
		t.Fatal(err)
	}
	four := make([]Shard, 4)
	for k := range four {
		four[k] = Shard{State: rec[k], Solver: greedySolver()}
	}
	_, err = NewShardedService(four, benefit.DefaultParams(), ShardedOptions{}, 1)
	if err == nil || !strings.Contains(err.Error(), "shard count mismatch") {
		t.Fatalf("recovering 2-shard data with 4 shards: err = %v, want a shard count mismatch", err)
	}
}

// TestShardedPartialJoinRepaired simulates a machine death between the
// fan-out appends of a spanning worker's join: the worker lands on disk in
// only the first of its shards.  Recovery must converge the torn write to
// absent (journaled), not refuse to start, and the ID must not be re-issued
// to a later... different profile while the torn copy lingers.
func TestShardedPartialJoinRepaired(t *testing.T) {
	const categories, shards = 8, 4
	dir := t.TempDir()
	c0, c1 := spanningSpecialties(t, categories, shards)
	targets := ShardRouter{Shards: shards}.WorkerShards([]int{c0, c1})

	// Write the torn join directly: shard targets[0] gets the event, the
	// machine dies before targets[1] is reached.
	st, err := NewState(categories)
	if err != nil {
		t.Fatal(err)
	}
	seg, err := OpenSegmentedLog(ShardDir(dir, targets[0]), SegmentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	w := shardedWorker(categories, c0, c1)
	w.ID = 1
	if _, err := st.ApplyJournaled(NewWorkerJoined(w), seg.Append); err != nil {
		t.Fatal(err)
	}
	if err := seg.Close(); err != nil {
		t.Fatal(err)
	}

	states, _, err := RecoverShardedDir(dir, categories, shards)
	if err != nil {
		t.Fatal(err)
	}
	bundles := make([]Shard, shards)
	var segs []*SegmentedLog
	for k := range bundles {
		sg, err := OpenSegmentedLog(ShardDir(dir, k), SegmentOptions{})
		if err != nil {
			t.Fatal(err)
		}
		segs = append(segs, sg)
		bundles[k] = Shard{State: states[k], Journal: sg, Solver: greedySolver()}
	}
	ss, err := NewShardedService(bundles, benefit.DefaultParams(), ShardedOptions{}, 1)
	if err != nil {
		t.Fatalf("recovery refused a torn join: %v", err)
	}
	if ss.RepairedWorkers() != 1 {
		t.Fatalf("RepairedWorkers = %d, want 1", ss.RepairedWorkers())
	}
	if w, _ := ss.Counts(); w != 0 {
		t.Fatalf("torn worker still counted: %d", w)
	}
	for k := 0; k < shards; k++ {
		if _, ok := ss.ShardState(k).Worker(1); ok {
			t.Fatalf("torn worker survives in shard %d after repair", k)
		}
	}

	// The repair is journaled: a second recovery sees a clean directory.
	for _, sg := range segs {
		if err := sg.Close(); err != nil {
			t.Fatal(err)
		}
	}
	states2, _, err := RecoverShardedDir(dir, categories, shards)
	if err != nil {
		t.Fatal(err)
	}
	for k := range bundles {
		bundles[k] = Shard{State: states2[k], Solver: greedySolver()}
	}
	ss2, err := NewShardedService(bundles, benefit.DefaultParams(), ShardedOptions{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ss2.RepairedWorkers() != 0 {
		t.Fatalf("second recovery repaired again (%d) — the repair was not durable", ss2.RepairedWorkers())
	}
}

// TestShardedSharedSolverRejected pins the footgun guard: two shards
// sharing one stateful solver instance must be refused.
func TestShardedSharedSolverRejected(t *testing.T) {
	shared := core.NewIncrementalExact()
	bundles := make([]Shard, 2)
	for k := range bundles {
		st, err := NewState(4)
		if err != nil {
			t.Fatal(err)
		}
		bundles[k] = Shard{State: st, Solver: shared}
	}
	if _, err := NewShardedService(bundles, benefit.DefaultParams(), ShardedOptions{}, 1); err == nil {
		t.Fatal("two shards sharing one solver instance were accepted")
	}
}

// shardedOracleCase is one generator family of the feasibility property
// test.
type shardedOracleCase struct {
	name string
	gen  func(seed uint64) (*market.Instance, error)
}

func shardedOracleCases() []shardedOracleCase {
	return []shardedOracleCase{
		{"default", func(seed uint64) (*market.Instance, error) {
			return market.Generate(market.Config{NumWorkers: 90, NumTasks: 70}, seed)
		}},
		{"freelance", func(seed uint64) (*market.Instance, error) {
			return market.Generate(market.FreelanceTraceConfig(90, 70), seed)
		}},
		{"clustered", func(seed uint64) (*market.Instance, error) {
			return market.ClusteredMarket(90, 70, 0.3, seed), nil
		}},
	}
}

// checkMergedFeasibility asserts the merged round result respects every
// market constraint: worker capacity (globally, across shards), task
// replication, edge eligibility, and pair uniqueness.
func checkMergedFeasibility(t *testing.T, res *RoundResult, workers map[int]market.Worker, tasks map[int]market.Task) {
	t.Helper()
	perWorker := map[int]int{}
	perTask := map[int]int{}
	seen := map[[2]int]bool{}
	for _, pr := range res.Pairs {
		key := [2]int{pr.WorkerID, pr.TaskID}
		if seen[key] {
			t.Fatalf("duplicate pair (%d,%d) in merged result", pr.WorkerID, pr.TaskID)
		}
		seen[key] = true
		w, ok := workers[pr.WorkerID]
		if !ok {
			t.Fatalf("pair references unknown worker %d", pr.WorkerID)
		}
		tk, ok := tasks[pr.TaskID]
		if !ok {
			t.Fatalf("pair references unknown task %d", pr.TaskID)
		}
		eligible := false
		for _, c := range w.Specialties {
			if c == tk.Category {
				eligible = true
				break
			}
		}
		if !eligible {
			t.Fatalf("worker %d assigned task %d outside its specialties %v (category %d)",
				pr.WorkerID, pr.TaskID, w.Specialties, tk.Category)
		}
		perWorker[pr.WorkerID]++
		perTask[pr.TaskID]++
		if perWorker[pr.WorkerID] > w.Capacity {
			t.Fatalf("worker %d over capacity: %d > %d (spanning-worker reconciliation failed)",
				pr.WorkerID, perWorker[pr.WorkerID], w.Capacity)
		}
		if perTask[pr.TaskID] > tk.Replication {
			t.Fatalf("task %d over replication: %d > %d", pr.TaskID, perTask[pr.TaskID], tk.Replication)
		}
	}
}

// TestShardedFeasibilityAgainstOracle is the merged-assignment property
// test: the same event stream drives a 4-shard service and a single-market
// oracle Service across 20 seeds × 3 generator families; every merged round
// must be feasible, and its aggregate mutual benefit must stay close to the
// oracle's (the reconciliation pass may cost a little quality, never
// feasibility).
func TestShardedFeasibilityAgainstOracle(t *testing.T) {
	const seeds = 20
	worstRatio := 1.0
	totalDropped, totalRefilled := 0, 0
	for _, tc := range shardedOracleCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			for seed := uint64(1); seed <= seeds; seed++ {
				in, err := tc.gen(seed)
				if err != nil {
					t.Fatal(err)
				}
				ss := newTestShardedService(t, 4, in.NumCategories, greedySolver, seed)
				oracleState, err := NewState(in.NumCategories)
				if err != nil {
					t.Fatal(err)
				}
				oracle, err := NewService(oracleState, greedySolver(), benefit.DefaultParams(), nil, seed)
				if err != nil {
					t.Fatal(err)
				}

				// Identical explicit IDs on both sides so churn events match.
				workers := map[int]market.Worker{}
				tasks := map[int]market.Task{}
				submitBoth := func(e Event) {
					t.Helper()
					if _, err := ss.Submit(e); err != nil {
						t.Fatalf("sharded submit: %v", err)
					}
					if _, err := oracle.Submit(e); err != nil {
						t.Fatalf("oracle submit: %v", err)
					}
				}
				for i, w := range in.Workers {
					w.ID = i + 1
					workers[w.ID] = w
					submitBoth(NewWorkerJoined(w))
				}
				for j, tk := range in.Tasks {
					tk.ID = j + 1
					tasks[tk.ID] = tk
					submitBoth(NewTaskPosted(tk))
				}

				for round := 0; round < 2; round++ {
					res, err := ss.CloseRound()
					if err != nil {
						t.Fatalf("seed %d round %d: %v", seed, round, err)
					}
					if res.SolveError != "" {
						t.Fatalf("seed %d round %d: solve error %q", seed, round, res.SolveError)
					}
					checkMergedFeasibility(t, res, workers, tasks)
					totalDropped += res.ReconcileDropped
					totalRefilled += res.ReconcileRefilled
					oracleRes, err := oracle.CloseRound()
					if err != nil {
						t.Fatal(err)
					}
					if oracleRes.Metrics.TotalMutual > 0 {
						ratio := res.Metrics.TotalMutual / oracleRes.Metrics.TotalMutual
						if ratio < worstRatio {
							worstRatio = ratio
						}
						if ratio < 0.85 {
							t.Fatalf("seed %d round %d: sharded mutual benefit %.4f vs oracle %.4f (ratio %.3f)",
								seed, round, res.Metrics.TotalMutual, oracleRes.Metrics.TotalMutual, ratio)
						}
					}
					if round == 0 {
						// Churn between rounds: drop every 5th worker and every
						// 7th task on both sides, so round 2 reconciles a
						// different spanning set.
						for id := 5; id <= len(in.Workers); id += 5 {
							submitBoth(NewWorkerLeft(id))
							delete(workers, id)
						}
						for id := 7; id <= len(in.Tasks); id += 7 {
							submitBoth(NewTaskClosed(id))
							delete(tasks, id)
						}
					}
				}
			}
		})
	}
	t.Logf("worst sharded/oracle mutual-benefit ratio: %.3f (reconcile dropped %d, refilled %d)",
		worstRatio, totalDropped, totalRefilled)
	// The property is only meaningful if the spanning-worker path actually
	// fired: across 120 generated markets some optimistic pick must have been
	// dropped by reconciliation, or the workloads never contested a worker.
	if totalDropped == 0 {
		t.Fatal("reconciliation never dropped a pick across the whole property run — spanning-worker path untested")
	}
}

// TestShardedCloseRoundMarkerFailure pins the divergence contract: a marker
// append failing on one shard aborts the round with earlier shards one
// marker ahead, Rounds() reports the minimum, entity state is untouched,
// and a retry serves everyone.
func TestShardedCloseRoundMarkerFailure(t *testing.T) {
	const categories, shards = 8, 4
	bundles := make([]Shard, shards)
	var bufs [shards]bytes.Buffer
	// Shard 2's journal fails exactly one append; every entity below is
	// routed away from shard 2, so the failing append is its round marker.
	var failing *faultinject.FlakyWriter
	for k := range bundles {
		st, err := NewState(categories)
		if err != nil {
			t.Fatal(err)
		}
		var w *faultinject.FlakyWriter
		if k == 2 {
			w = faultinject.NewFlakyWriter(&bufs[k], faultinject.Once(0))
			failing = w
		} else {
			w = faultinject.NewFlakyWriter(&bufs[k], func(int) bool { return false })
		}
		bundles[k] = Shard{State: st, Solver: greedySolver(), Journal: NewLogWithOptions(w, LogOptions{})}
	}
	ss, err := NewShardedService(bundles, benefit.DefaultParams(), ShardedOptions{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	router := ShardRouter{Shards: shards}
	cat := -1
	for c := 0; c < categories; c++ {
		if router.TaskShard(c) != 2 {
			cat = c
			break
		}
	}
	if cat < 0 {
		t.Fatal("every category routes to shard 2")
	}
	if _, err := ss.Submit(NewWorkerJoined(shardedWorker(categories, cat))); err != nil {
		t.Fatal(err)
	}
	if _, err := ss.Submit(NewTaskPosted(shardedTask(cat))); err != nil {
		t.Fatal(err)
	}

	if _, err := ss.CloseRound(); err == nil {
		t.Fatal("round with a failing marker append succeeded")
	}
	if failing.Injections() == 0 {
		t.Fatal("marker fault never injected")
	}
	if got := ss.Rounds(); got != 0 {
		t.Fatalf("Rounds = %d after a failed commit, want 0 (minimum across shards)", got)
	}
	if w, tk := ss.Counts(); w != 1 || tk != 1 {
		t.Fatalf("entity state disturbed by a failed round: %d/%d", w, tk)
	}
	res, err := ss.CloseRound()
	if err != nil {
		t.Fatalf("retried round: %v", err)
	}
	if len(res.Pairs) == 0 {
		t.Fatal("retried round served nobody")
	}
	if got := ss.Rounds(); got != 1 {
		t.Fatalf("Rounds = %d after the retry, want 1", got)
	}
}

// TestShardedRoundProvenance checks the per-shard provenance surface: every
// shard reports, pairs sum to the aggregate, and the algorithm label names
// the partitioning.
func TestShardedRoundProvenance(t *testing.T) {
	const categories, shards = 8, 4
	ss := newTestShardedService(t, shards, categories, greedySolver, 3)
	for c := 0; c < categories; c++ {
		if _, err := ss.Submit(NewWorkerJoined(shardedWorker(categories, c, (c+1)%categories))); err != nil {
			t.Fatal(err)
		}
		if _, err := ss.Submit(NewTaskPosted(shardedTask(c))); err != nil {
			t.Fatal(err)
		}
	}
	res, err := ss.CloseRound()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Shards) != shards {
		t.Fatalf("%d shard reports, want %d", len(res.Shards), shards)
	}
	sum := 0
	for k, sr := range res.Shards {
		if sr.Shard != k {
			t.Fatalf("shard report %d labelled %d", k, sr.Shard)
		}
		sum += sr.Pairs
	}
	if sum != len(res.Pairs) {
		t.Fatalf("per-shard pairs sum %d != aggregate %d", sum, len(res.Pairs))
	}
	if want := fmt.Sprintf("sharded/%d(", shards); !strings.HasPrefix(res.Metrics.Algorithm, want) {
		t.Fatalf("algorithm label %q, want prefix %q", res.Metrics.Algorithm, want)
	}

	// Cancellation before commit journals nothing.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ss.CloseRoundCtx(ctx); err == nil {
		t.Fatal("cancelled round succeeded")
	}
	if got := ss.Rounds(); got != 1 {
		t.Fatalf("Rounds = %d after a cancelled round, want 1", got)
	}
}
