package platform

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/benefit"
	"repro/internal/core"
	"repro/internal/faultinject"
)

func newLimitedServer(t *testing.T, solver core.Solver, opts ServerOptions) *httptest.Server {
	t.Helper()
	state := mustState(t)
	svc, err := NewService(state, solver, benefit.DefaultParams(), nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServerWithOptions(svc, opts))
	t.Cleanup(ts.Close)
	return ts
}

func TestServerRejectsOversizedBody(t *testing.T) {
	ts := newLimitedServer(t, core.Greedy{Kind: core.MutualWeight}, ServerOptions{MaxBodyBytes: 256})
	big := strings.NewReader(`{"capacity": 1, "padding": "` + strings.Repeat("x", 1024) + `"}`)
	resp, err := http.Post(ts.URL+"/v1/workers", "application/json", big)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", resp.StatusCode)
	}
	// A within-limit request still works.
	resp2, out := postJSON(t, ts.URL+"/v1/tasks", validTask())
	if resp2.StatusCode != http.StatusCreated {
		t.Fatalf("in-limit request status %d (%v)", resp2.StatusCode, out)
	}
}

func TestServerSingleFlightRound(t *testing.T) {
	// A solver slow enough that the second close definitely overlaps the
	// first.  No deadline: the first round must succeed.
	slow := faultinject.SleepySolver{Inner: core.Greedy{Kind: core.MutualWeight}, Delay: 300 * time.Millisecond}
	ts := newLimitedServer(t, slow, NewServerOptions())
	if resp, _ := postJSON(t, ts.URL+"/v1/workers", validWorker()); resp.StatusCode != http.StatusCreated {
		t.Fatal("seeding worker failed")
	}
	if resp, _ := postJSON(t, ts.URL+"/v1/tasks", validTask()); resp.StatusCode != http.StatusCreated {
		t.Fatal("seeding task failed")
	}

	statuses := make([]int, 2)
	var retryAfter string
	var wg sync.WaitGroup
	for i := range statuses {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i == 1 {
				time.Sleep(50 * time.Millisecond) // land inside the first solve
			}
			resp, err := http.Post(ts.URL+"/v1/rounds", "application/json", bytes.NewReader(nil))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			statuses[i] = resp.StatusCode
			if resp.StatusCode == http.StatusConflict {
				retryAfter = resp.Header.Get("Retry-After")
			}
		}(i)
	}
	wg.Wait()
	if statuses[0] != http.StatusOK {
		t.Fatalf("first close status = %d", statuses[0])
	}
	if statuses[1] != http.StatusConflict {
		t.Fatalf("overlapping close status = %d, want 409", statuses[1])
	}
	if retryAfter == "" {
		t.Fatal("409 carried no Retry-After")
	}
	// The guard releases: a later close succeeds.
	resp, _ := postJSON(t, ts.URL+"/v1/rounds", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-conflict close status = %d", resp.StatusCode)
	}
}

func TestServerRoundTimeoutReturns503(t *testing.T) {
	slow := faultinject.SleepySolver{Inner: core.Greedy{Kind: core.MutualWeight}, Delay: 10 * time.Second}
	opts := NewServerOptions()
	opts.RoundTimeout = 100 * time.Millisecond
	ts := newLimitedServer(t, slow, opts)
	if resp, _ := postJSON(t, ts.URL+"/v1/workers", validWorker()); resp.StatusCode != http.StatusCreated {
		t.Fatal("seeding worker failed")
	}
	if resp, _ := postJSON(t, ts.URL+"/v1/tasks", validTask()); resp.StatusCode != http.StatusCreated {
		t.Fatal("seeding task failed")
	}
	start := time.Now()
	resp, _ := postJSON(t, ts.URL+"/v1/rounds", nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 carried no Retry-After")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timed-out round took %v", elapsed)
	}
}

func TestServerDrainClosesTasksInSortedOrder(t *testing.T) {
	var buf bytes.Buffer
	state := mustState(t)
	svc, err := NewService(state, core.Greedy{Kind: core.MutualWeight}, benefit.DefaultParams(), NewLog(&buf), 1)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServerWithOptions(svc, NewServerOptions()))
	t.Cleanup(ts.Close)

	for i := 0; i < 4; i++ {
		if resp, _ := postJSON(t, ts.URL+"/v1/workers", validWorker()); resp.StatusCode != http.StatusCreated {
			t.Fatal("seeding worker failed")
		}
		if resp, _ := postJSON(t, ts.URL+"/v1/tasks", validTask()); resp.StatusCode != http.StatusCreated {
			t.Fatal("seeding task failed")
		}
	}
	resp, _ := postJSON(t, ts.URL+"/v1/rounds?drain=true", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("drain round status = %d", resp.StatusCode)
	}
	events, err := ReadLog(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	lastClosed := -1
	sawClosed := 0
	for _, e := range events {
		if e.Kind != EventTaskClosed {
			continue
		}
		sawClosed++
		if *e.TaskID <= lastClosed {
			t.Fatalf("drain closed task %d after %d — not sorted", *e.TaskID, lastClosed)
		}
		lastClosed = *e.TaskID
	}
	if sawClosed == 0 {
		t.Fatal("drain closed nothing")
	}
}
