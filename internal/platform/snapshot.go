package platform

// Crash-safe State snapshots.  A snapshot is the compaction primitive of
// the platform's durability story: instead of replaying a journal from
// genesis, recovery loads the newest valid snapshot and replays only the
// journal tail written after it (see CheckpointManager / RecoverDir).
//
// Format (all integers little-endian):
//
//	magic   "MBASNAP\x01" (8 bytes)
//	frames  kind(1) | len(uint32) | payload | crc32c(uint32)
//
// The CRC covers kind+len+payload, so a flipped length byte is as
// detectable as a flipped payload byte.  Frame kinds:
//
//	'H'  header, exactly one, first: JSON snapshotHeader — the snapshot is
//	     self-identifying (numCategories, seq, round, entity counts)
//	'W'  one live worker (market.Worker JSON, ID = platform ID)
//	'T'  one open task (market.Task JSON, ID = platform ID)
//	'E'  end marker, exactly one, last, empty payload
//
// A snapshot missing its end frame is a torn write and fails to decode;
// any byte flipped anywhere fails a CRC; trailing bytes after the end
// frame are corruption too.  Writers never modify a snapshot in place:
// WriteSnapshot goes write-to-temp → fsync → rename, so a crash at any
// point leaves either no snapshot or a complete valid one (plus an
// ignorable *.tmp orphan).

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/market"
)

const (
	snapshotMagic   = "MBASNAP\x01"
	snapshotVersion = 1
	// maxSnapshotFrame bounds a single frame's payload so a corrupt length
	// field cannot make the decoder allocate gigabytes.
	maxSnapshotFrame = 1 << 24
)

// ErrSnapshotCorrupt wraps every decode failure caused by the bytes (as
// opposed to I/O errors), so recovery can tell "this snapshot is damaged,
// fall back to an older one" from "the disk is gone".
var ErrSnapshotCorrupt = errors.New("platform: snapshot corrupt")

var snapshotCRC = crc32.MakeTable(crc32.Castagnoli)

// snapshotHeader is the self-identifying 'H' frame payload.
type snapshotHeader struct {
	Version       int    `json:"version"`
	NumCategories int    `json:"num_categories"`
	Seq           uint64 `json:"seq"`
	Rounds        int    `json:"rounds"`
	NextWorkerID  int    `json:"next_worker_id"`
	NextTaskID    int    `json:"next_task_id"`
	Workers       int    `json:"workers"`
	Tasks         int    `json:"tasks"`
	// Epoch is the replication epoch at snapshot time.  Omitted (and so
	// decoded as 0) in snapshots written before epoch fencing existed.
	Epoch uint64 `json:"epoch,omitempty"`
}

// SnapshotInfo describes a snapshot to callers (API responses, recovery
// diagnostics, tests).
type SnapshotInfo struct {
	Seq           uint64 `json:"seq"`
	Rounds        int    `json:"rounds"`
	NumCategories int    `json:"num_categories"`
	Workers       int    `json:"workers"`
	Tasks         int    `json:"tasks"`
}

// Seq returns the sequence number of the last applied event — the
// snapshot/journal coordinate of the state.
func (s *State) Seq() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.nextSeq
}

// writeFrame emits one kind|len|payload|crc frame.
func writeFrame(w io.Writer, kind byte, payload []byte) error {
	var hdr [5]byte
	hdr[0] = kind
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(payload)))
	crc := crc32.Update(0, snapshotCRC, hdr[:])
	crc = crc32.Update(crc, snapshotCRC, payload)
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	_, err := w.Write(tail[:])
	return err
}

// EncodeSnapshot writes s as a snapshot stream.  Encoding is deterministic
// — entities are emitted in platform-ID order — so two byte-identical
// states produce byte-identical snapshots (the crash-fidelity tests lean
// on this to compare whole states).
func (s *State) EncodeSnapshot(w io.Writer) (SnapshotInfo, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()

	hdr := snapshotHeader{
		Version:       snapshotVersion,
		NumCategories: s.numCategories,
		Seq:           s.nextSeq,
		Rounds:        s.rounds,
		NextWorkerID:  s.nextWorkerID,
		NextTaskID:    s.nextTaskID,
		Workers:       len(s.workers),
		Tasks:         len(s.tasks),
		Epoch:         s.epoch,
	}
	info := SnapshotInfo{
		Seq: hdr.Seq, Rounds: hdr.Rounds, NumCategories: hdr.NumCategories,
		Workers: hdr.Workers, Tasks: hdr.Tasks,
	}
	if _, err := io.WriteString(w, snapshotMagic); err != nil {
		return info, err
	}
	payload, err := json.Marshal(hdr)
	if err != nil {
		return info, err
	}
	if err := writeFrame(w, 'H', payload); err != nil {
		return info, err
	}
	workerIDs := make([]int, 0, len(s.workers))
	for id := range s.workers {
		workerIDs = append(workerIDs, id)
	}
	sort.Ints(workerIDs)
	for _, id := range workerIDs {
		wk := s.workers[id]
		payload, err := json.Marshal(&wk)
		if err != nil {
			return info, err
		}
		if err := writeFrame(w, 'W', payload); err != nil {
			return info, err
		}
	}
	taskIDs := make([]int, 0, len(s.tasks))
	for id := range s.tasks {
		taskIDs = append(taskIDs, id)
	}
	sort.Ints(taskIDs)
	for _, id := range taskIDs {
		tk := s.tasks[id]
		payload, err := json.Marshal(&tk)
		if err != nil {
			return info, err
		}
		if err := writeFrame(w, 'T', payload); err != nil {
			return info, err
		}
	}
	return info, writeFrame(w, 'E', nil)
}

// corrupt tags a decode failure as data corruption.
func corrupt(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrSnapshotCorrupt, fmt.Sprintf(format, args...))
}

// readFrame reads one frame, verifying the CRC.  io.EOF at a frame
// boundary is returned as-is; anything else mid-frame is corruption.
func readFrame(r *bufio.Reader) (kind byte, payload []byte, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, corrupt("truncated frame header")
	}
	kind = hdr[0]
	n := binary.LittleEndian.Uint32(hdr[1:])
	if n > maxSnapshotFrame {
		return 0, nil, corrupt("frame length %d exceeds limit", n)
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, corrupt("truncated frame payload")
	}
	var tail [4]byte
	if _, err := io.ReadFull(r, tail[:]); err != nil {
		return 0, nil, corrupt("truncated frame checksum")
	}
	crc := crc32.Update(0, snapshotCRC, hdr[:])
	crc = crc32.Update(crc, snapshotCRC, payload)
	if crc != binary.LittleEndian.Uint32(tail[:]) {
		return 0, nil, corrupt("frame checksum mismatch (kind %q)", kind)
	}
	return kind, payload, nil
}

// DecodeSnapshot parses a snapshot stream into a State.  Every defect —
// bad magic, flipped bytes, truncation, duplicate entities, counts that
// disagree with the header, bytes after the end frame — yields an error
// wrapping ErrSnapshotCorrupt; valid input round-trips exactly.
func DecodeSnapshot(r io.Reader) (*State, SnapshotInfo, error) {
	br := bufio.NewReaderSize(r, 64*1024)
	var info SnapshotInfo

	magic := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(br, magic); err != nil || string(magic) != snapshotMagic {
		return nil, info, corrupt("bad magic")
	}
	kind, payload, err := readFrame(br)
	if err != nil {
		if err == io.EOF {
			return nil, info, corrupt("missing header frame")
		}
		return nil, info, err
	}
	if kind != 'H' {
		return nil, info, corrupt("first frame kind %q, want header", kind)
	}
	var hdr snapshotHeader
	if err := json.Unmarshal(payload, &hdr); err != nil {
		return nil, info, corrupt("header: %v", err)
	}
	if hdr.Version != snapshotVersion {
		return nil, info, corrupt("unsupported snapshot version %d", hdr.Version)
	}
	if hdr.NumCategories <= 0 || hdr.Workers < 0 || hdr.Tasks < 0 ||
		hdr.Rounds < 0 || hdr.NextWorkerID < 0 || hdr.NextTaskID < 0 {
		return nil, info, corrupt("header fields out of range")
	}
	info = SnapshotInfo{
		Seq: hdr.Seq, Rounds: hdr.Rounds, NumCategories: hdr.NumCategories,
		Workers: hdr.Workers, Tasks: hdr.Tasks,
	}

	s := &State{
		numCategories: hdr.NumCategories,
		nextSeq:       hdr.Seq,
		nextWorkerID:  hdr.NextWorkerID,
		nextTaskID:    hdr.NextTaskID,
		rounds:        hdr.Rounds,
		epoch:         hdr.Epoch,
		workers:       make(map[int]market.Worker, hdr.Workers),
		tasks:         make(map[int]market.Task, hdr.Tasks),
	}
	done := false
	for !done {
		kind, payload, err := readFrame(br)
		if err != nil {
			if err == io.EOF {
				return nil, info, corrupt("missing end frame")
			}
			return nil, info, err
		}
		switch kind {
		case 'W':
			var w market.Worker
			if err := json.Unmarshal(payload, &w); err != nil {
				return nil, info, corrupt("worker frame: %v", err)
			}
			if err := validateWorkerProfile(&w, hdr.NumCategories); err != nil {
				return nil, info, corrupt("worker frame: %v", err)
			}
			if w.ID < 0 || w.ID >= hdr.NextWorkerID {
				return nil, info, corrupt("worker id %d outside [0,%d)", w.ID, hdr.NextWorkerID)
			}
			if _, dup := s.workers[w.ID]; dup {
				return nil, info, corrupt("duplicate worker %d", w.ID)
			}
			s.workers[w.ID] = w
		case 'T':
			var tk market.Task
			if err := json.Unmarshal(payload, &tk); err != nil {
				return nil, info, corrupt("task frame: %v", err)
			}
			if err := validateTaskShape(&tk, hdr.NumCategories); err != nil {
				return nil, info, corrupt("task frame: %v", err)
			}
			if tk.ID < 0 || tk.ID >= hdr.NextTaskID {
				return nil, info, corrupt("task id %d outside [0,%d)", tk.ID, hdr.NextTaskID)
			}
			if _, dup := s.tasks[tk.ID]; dup {
				return nil, info, corrupt("duplicate task %d", tk.ID)
			}
			s.tasks[tk.ID] = tk
		case 'E':
			if len(payload) != 0 {
				return nil, info, corrupt("end frame with payload")
			}
			done = true
		default:
			return nil, info, corrupt("unknown frame kind %q", kind)
		}
	}
	if len(s.workers) != hdr.Workers || len(s.tasks) != hdr.Tasks {
		return nil, info, corrupt("entity counts (%d,%d) disagree with header (%d,%d)",
			len(s.workers), len(s.tasks), hdr.Workers, hdr.Tasks)
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, info, corrupt("trailing bytes after end frame")
	}
	return s, info, nil
}

// CrashHook is the platform's seam for simulated power cuts
// (faultinject.Crasher implements it).  The checkpoint and segment
// writers call At at named barriers and route file writes through Wrap;
// a non-nil At error (or an error from a wrapped write) means "the
// machine died here": the operation aborts immediately and leaves its
// on-disk artifacts exactly as a real crash would — half-written temp
// files, un-renamed snapshots, torn segment tails.  Production paths pass
// a nil hook.
type CrashHook interface {
	// At fires at the named barrier; a non-nil error aborts the operation.
	At(point string) error
	// Wrap intercepts the writes of the named stream (torn-write
	// injection); implementations return w unchanged when uninterested.
	Wrap(point string, w io.Writer) io.Writer
}

// Crash points used by the snapshot and segment writers.  Exported so the
// fault-injection suite and the writers agree on names by construction.
const (
	CrashSnapshotBody   = "snapshot.body"   // torn temp-file body write
	CrashSnapshotSync   = "snapshot.sync"   // cut before the temp fsync
	CrashSnapshotRename = "snapshot.rename" // cut before the atomic rename
	CrashSegmentWrite   = "segment.write"   // torn segment append
	CrashSegmentRotate  = "segment.rotate"  // cut mid-rotation, before the new segment exists
	CrashSegmentHeal    = "segment.heal"    // cut before a torn tail is truncated away
)

// snapshotFileName formats the canonical snapshot name for a sequence
// number; zero-padding keeps lexical order equal to numeric order.
func snapshotFileName(seq uint64) string {
	return fmt.Sprintf("snapshot.%020d.mba", seq)
}

// parseSnapshotSeq inverts snapshotFileName; ok is false for foreign
// files.
func parseSnapshotSeq(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "snapshot.") || !strings.HasSuffix(name, ".mba") {
		return 0, false
	}
	return parseSeqToken(strings.TrimSuffix(strings.TrimPrefix(name, "snapshot."), ".mba"))
}

// seqTokenWidth is the zero-padded width both file-name writers emit.
const seqTokenWidth = 20

// parseSeqToken parses the sequence token of a snapshot or segment file
// name.  Strict by design: the token must be exactly the digits the
// writers emit — "5junk" or an un-padded "5" is a foreign file, not ours
// to prune or to collide with a real sequence number.
func parseSeqToken(mid string) (uint64, bool) {
	if len(mid) != seqTokenWidth {
		return 0, false
	}
	seq, err := strconv.ParseUint(mid, 10, 64)
	return seq, err == nil
}

// fsyncDir flushes a directory's entry table so a just-renamed file
// survives a power cut.  Best-effort: some filesystems refuse directory
// syncs, and the rename itself is already atomic.
func fsyncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	_ = d.Close()
}

// WriteSnapshot atomically persists s into dir and returns the final
// path.  The sequence is write-to-temp → fsync → rename → dir-fsync: a
// crash before the rename leaves only a *.tmp orphan (cleaned by the
// next successful checkpoint), a crash after it leaves a complete valid
// snapshot — there is no window in which a partial file carries the
// canonical name.
func WriteSnapshot(dir string, s *State, hook CrashHook) (string, SnapshotInfo, error) {
	var info SnapshotInfo
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", info, err
	}
	tmp, err := os.CreateTemp(dir, "snapshot-*.tmp")
	if err != nil {
		return "", info, err
	}
	// The temp file is deliberately left behind on failure: a real crash
	// could not unlink it either, and recovery must cope with orphans.
	var w io.Writer = tmp
	if hook != nil {
		w = hook.Wrap(CrashSnapshotBody, tmp)
	}
	bw := bufio.NewWriterSize(w, 256*1024)
	info, err = s.EncodeSnapshot(bw)
	if err == nil {
		err = bw.Flush()
	}
	if err != nil {
		tmp.Close()
		return "", info, fmt.Errorf("platform: writing snapshot: %w", err)
	}
	if hook != nil {
		if err := hook.At(CrashSnapshotSync); err != nil {
			tmp.Close()
			return "", info, fmt.Errorf("platform: writing snapshot: %w", err)
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return "", info, fmt.Errorf("platform: syncing snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return "", info, fmt.Errorf("platform: closing snapshot: %w", err)
	}
	if hook != nil {
		if err := hook.At(CrashSnapshotRename); err != nil {
			return "", info, fmt.Errorf("platform: publishing snapshot: %w", err)
		}
	}
	final := filepath.Join(dir, snapshotFileName(info.Seq))
	if err := os.Rename(tmp.Name(), final); err != nil {
		return "", info, fmt.Errorf("platform: publishing snapshot: %w", err)
	}
	fsyncDir(dir)
	return final, info, nil
}

// ReadSnapshotFile decodes one snapshot file.
func ReadSnapshotFile(path string) (*State, SnapshotInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, SnapshotInfo{}, err
	}
	defer f.Close()
	return DecodeSnapshot(f)
}

// latestSnapshotIn opens the newest snapshot in dir that decodes cleanly,
// returning a reader positioned at byte 0 plus the snapshot's info.
// Corrupt generations are skipped (the same fallback chain RecoverDir
// walks); a file pruned between listing and open is skipped too.  The
// full decode before serving means a follower is never handed bytes that
// cannot pass its own frame verification.
func latestSnapshotIn(dir string) (io.ReadCloser, SnapshotInfo, error) {
	snaps, err := listSnapshots(dir)
	if err != nil {
		return nil, SnapshotInfo{}, err
	}
	for _, p := range snaps {
		f, err := os.Open(p)
		if err != nil {
			continue // pruned since listing
		}
		_, info, err := DecodeSnapshot(f)
		if err != nil {
			f.Close()
			if errors.Is(err, ErrSnapshotCorrupt) {
				continue
			}
			return nil, SnapshotInfo{}, err
		}
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			f.Close()
			return nil, SnapshotInfo{}, err
		}
		return f, info, nil
	}
	return nil, SnapshotInfo{}, ErrNoSnapshot
}

// listSnapshots returns the snapshot files in dir, newest (highest seq)
// first.
func listSnapshots(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	type snap struct {
		name string
		seq  uint64
	}
	var snaps []snap
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if seq, ok := parseSnapshotSeq(e.Name()); ok {
			snaps = append(snaps, snap{e.Name(), seq})
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].seq > snaps[j].seq })
	names := make([]string, len(snaps))
	for i, sn := range snaps {
		names[i] = filepath.Join(dir, sn.name)
	}
	return names, nil
}
