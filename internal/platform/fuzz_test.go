package platform

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// FuzzReadLog asserts the log parser never panics and never returns both a
// nil error and events that fail replay-level validation on arbitrary
// byte input.
func FuzzReadLog(f *testing.F) {
	f.Add(`{"seq":1,"kind":"round_closed","round":0}`)
	f.Add(`{"seq":1,"kind":"worker_left","worker_id":3}`)
	f.Add("")
	f.Add("\n\n{bad")
	f.Add(`{"seq":1,"kind":"task_posted","task":{"id":0,"category":0,"replication":1,"payment":1,"difficulty":0}}`)
	f.Fuzz(func(t *testing.T, input string) {
		events, err := ReadLog(strings.NewReader(input))
		if err != nil {
			return
		}
		for _, e := range events {
			if vErr := e.Validate(); vErr != nil {
				t.Fatalf("ReadLog returned invalid event %+v: %v", e, vErr)
			}
		}
	})
}

// FuzzSnapshotDecode asserts the snapshot decoder never panics, rejects
// every corrupt input with an error wrapping ErrSnapshotCorrupt, and
// round-trips whatever it accepts: a decoded state must re-encode to a
// snapshot that decodes to the same bytes again.
func FuzzSnapshotDecode(f *testing.F) {
	seedState, err := NewState(3)
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := seedState.Apply(NewWorkerJoined(validWorker())); err != nil {
			f.Fatal(err)
		}
	}
	if _, err := seedState.Apply(NewTaskPosted(validTask())); err != nil {
		f.Fatal(err)
	}
	var valid bytes.Buffer
	if _, err := seedState.EncodeSnapshot(&valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:len(valid.Bytes())/2])
	f.Add([]byte(snapshotMagic))
	f.Add([]byte("MBASNAP\x02junk"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		st, info, err := DecodeSnapshot(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrSnapshotCorrupt) {
				t.Fatalf("decode error does not wrap ErrSnapshotCorrupt: %v", err)
			}
			return
		}
		var out bytes.Buffer
		info2, err := st.EncodeSnapshot(&out)
		if err != nil {
			t.Fatalf("accepted snapshot does not re-encode: %v", err)
		}
		if info2 != info {
			t.Fatalf("re-encode info %+v != decode info %+v", info2, info)
		}
		st2, _, err := DecodeSnapshot(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded snapshot does not decode: %v", err)
		}
		var out2 bytes.Buffer
		if _, err := st2.EncodeSnapshot(&out2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out.Bytes(), out2.Bytes()) {
			t.Fatal("snapshot encoding is not a fixed point after one round trip")
		}
	})
}
