package platform

import (
	"strings"
	"testing"
)

// FuzzReadLog asserts the log parser never panics and never returns both a
// nil error and events that fail replay-level validation on arbitrary
// byte input.
func FuzzReadLog(f *testing.F) {
	f.Add(`{"seq":1,"kind":"round_closed","round":0}`)
	f.Add(`{"seq":1,"kind":"worker_left","worker_id":3}`)
	f.Add("")
	f.Add("\n\n{bad")
	f.Add(`{"seq":1,"kind":"task_posted","task":{"id":0,"category":0,"replication":1,"payment":1,"difficulty":0}}`)
	f.Fuzz(func(t *testing.T, input string) {
		events, err := ReadLog(strings.NewReader(input))
		if err != nil {
			return
		}
		for _, e := range events {
			if vErr := e.Validate(); vErr != nil {
				t.Fatalf("ReadLog returned invalid event %+v: %v", e, vErr)
			}
		}
	})
}
