package platform

// Epoch plumbing and fencing: the epoch_bumped control event (validation,
// binary codec, state monotonicity, snapshot carriage), and the fence it
// powers — a service that observes a higher epoch refuses writes with
// ErrFenced, surfaces it in health, and answers 409 over HTTP.

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"testing"

	"repro/internal/benefit"
	"repro/internal/faultinject"
)

func TestEpochBumpedValidation(t *testing.T) {
	missing := Event{Kind: EventEpochBumped}
	if err := missing.Validate(); err == nil {
		t.Fatal("epoch bump without an epoch validated")
	}
	zero := uint64(0)
	toZero := Event{Kind: EventEpochBumped, Epoch: &zero}
	if err := toZero.Validate(); err == nil {
		t.Fatal("epoch bump to zero validated (zero is the never-failed-over epoch)")
	}
	ok := NewEpochBumped(3)
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid epoch bump rejected: %v", err)
	}
}

func TestEpochBumpedBinaryRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	log := NewLogWithOptions(&buf, LogOptions{Format: FormatBinary})
	e := NewEpochBumped(7)
	e.Seq = 1
	if err := log.Append(e); err != nil {
		t.Fatal(err)
	}
	events, err := ReadLog(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Kind != EventEpochBumped {
		t.Fatalf("round-trip returned %+v", events)
	}
	if events[0].Epoch == nil || *events[0].Epoch != 7 || events[0].Seq != 1 {
		t.Fatalf("epoch payload mangled: %+v", events[0])
	}
}

func TestStateEpochMonotonicAndRollback(t *testing.T) {
	s := mustState(t)
	if s.Epoch() != 0 {
		t.Fatalf("fresh state epoch %d", s.Epoch())
	}
	if _, err := s.Apply(NewEpochBumped(3)); err != nil {
		t.Fatal(err)
	}
	if s.Epoch() != 3 {
		t.Fatalf("epoch %d after bump to 3", s.Epoch())
	}
	// Equal or lower bumps are refused: the epoch is a term, it only grows.
	if _, err := s.Apply(NewEpochBumped(3)); err == nil {
		t.Fatal("equal epoch re-applied")
	}
	if _, err := s.Apply(NewEpochBumped(2)); err == nil {
		t.Fatal("lower epoch applied")
	}
	// A failed journal append rolls the bump back atomically.
	failing := NewLogWithOptions(faultinject.NewFlakyWriter(&bytes.Buffer{}, faultinject.After(0)), LogOptions{})
	if _, err := s.ApplyJournaled(NewEpochBumped(9), failing.Append); err == nil {
		t.Fatal("bump with a dead journal reported success")
	}
	if s.Epoch() != 3 || s.Seq() != 1 {
		t.Fatalf("rollback left epoch %d seq %d, want 3/1", s.Epoch(), s.Seq())
	}
}

func TestSnapshotCarriesEpoch(t *testing.T) {
	s := mustState(t)
	if _, err := s.Apply(NewWorkerJoined(validWorker())); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Apply(NewEpochBumped(4)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := s.EncodeSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, info, err := DecodeSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if restored.Epoch() != 4 {
		t.Fatalf("decoded epoch %d, want 4 (info %+v)", restored.Epoch(), info)
	}
}

func TestServiceFencing(t *testing.T) {
	svc, err := NewService(mustState(t), greedySolver(), benefit.DefaultParams(), nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if fenced, _ := svc.FenceStatus(); fenced {
		t.Fatal("fresh service born fenced")
	}
	// Observing our own (equal) epoch is not evidence of a newer primary.
	svc.ObserveEpoch(0)
	if _, err := svc.Submit(NewWorkerJoined(validWorker())); err != nil {
		t.Fatal(err)
	}

	svc.ObserveEpoch(5)
	if _, err := svc.Submit(NewWorkerJoined(validWorker())); !errors.Is(err, ErrFenced) {
		t.Fatalf("fenced submit error %v, want ErrFenced", err)
	}
	if _, err := svc.SubmitBatch([]Event{NewTaskPosted(validTask())}); !errors.Is(err, ErrFenced) {
		t.Fatalf("fenced batch error %v, want ErrFenced", err)
	}
	if _, err := svc.CloseRound(); !errors.Is(err, ErrFenced) {
		t.Fatalf("fenced round error %v, want ErrFenced", err)
	}
	// Observation keeps the max, never regresses.
	svc.ObserveEpoch(2)
	if fenced, by := svc.FenceStatus(); !fenced || by != 5 {
		t.Fatalf("fence status %v/%d after lower observation, want true/5", fenced, by)
	}
	h := svc.Health()
	if h.Status != "degraded" || !h.Fenced || h.FencedBy != 5 {
		t.Fatalf("fenced health %+v", h)
	}
	if svc.State().Seq() != 1 {
		t.Fatalf("fenced service still applied events (seq %d)", svc.State().Seq())
	}
}

func TestShardedFencingAndEpochRouting(t *testing.T) {
	ss := newTestShardedService(t, 2, 4, greedySolver, 1)
	// Epoch bumps have no routing key; a sharded backend refuses them
	// rather than bumping one arbitrary shard.
	if _, err := ss.Submit(NewEpochBumped(1)); err == nil ||
		!strings.Contains(err.Error(), "not routable") {
		t.Fatalf("sharded epoch bump error %v", err)
	}
	ss.ObserveEpoch(3)
	if _, err := ss.Submit(NewWorkerJoined(validWorker())); !errors.Is(err, ErrFenced) {
		t.Fatalf("fenced sharded submit error %v, want ErrFenced", err)
	}
	h := ss.Health()
	if h.Status != "degraded" || !h.Fenced || h.FencedBy != 3 {
		t.Fatalf("fenced sharded health %+v", h)
	}
}

// TestServerEpochHeaderFences drives the fence over HTTP: a request
// carrying a higher X-MBA-Epoch proves a newer primary exists; that very
// request (and every write after it) dies with 409, responses advertise
// the backend's epoch, and healthz degrades to 503.
func TestServerEpochHeaderFences(t *testing.T) {
	ts, svc := newPrimary(t, t.TempDir())
	submitN(t, svc, 2)

	post := func(epoch string) *http.Response {
		t.Helper()
		var body bytes.Buffer
		if err := json.NewEncoder(&body).Encode(validWorker()); err != nil {
			t.Fatal(err)
		}
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/workers", &body)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		if epoch != "" {
			req.Header.Set(EpochHeader, epoch)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	// Malformed epochs are ignored (no evidence), equal epochs are benign.
	if resp := post("rubbish"); resp.StatusCode != http.StatusCreated {
		t.Fatalf("malformed epoch header got %d", resp.StatusCode)
	}
	if resp := post("0"); resp.StatusCode != http.StatusCreated {
		t.Fatalf("equal epoch header got %d", resp.StatusCode)
	}
	if got := svc.State().Seq(); got != 4 {
		t.Fatalf("seq %d before fencing, want 4", got)
	}

	// A higher epoch fences immediately: this request is already refused.
	resp := post("2")
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("fenced write got %d, want 409", resp.StatusCode)
	}
	if resp.Header.Get(EpochHeader) != "0" {
		t.Fatalf("fenced response advertises epoch %q, want 0", resp.Header.Get(EpochHeader))
	}
	if resp := post(""); resp.StatusCode != http.StatusConflict {
		t.Fatalf("post-fence write without header got %d, want 409", resp.StatusCode)
	}
	if got := svc.State().Seq(); got != 4 {
		t.Fatalf("fenced primary applied events: seq %d, want 4", got)
	}

	// Healthz reflects the demotion and answers 503 for probes.
	hresp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("fenced healthz status %d, want 503", hresp.StatusCode)
	}
}
