package platform

// Failover supervises a warm standby: it runs a Follower, probes the
// primary's /v1/healthz, and — when enough consecutive probes fail and
// AutoTakeover is on — promotes the replica into a full serving primary
// without operator intervention.  Promotion recovers the follower's own
// journal directory (the replica is, by construction, a valid checkpoint
// dir), bumps the replication epoch with a journaled control event, and
// atomically swaps the HTTP handler from "follower healthz" through
// "transitioning 503" to the complete API.
//
// The epoch bump is the fencing half of the story: every response from
// the promoted service now advertises the higher epoch, so a resurrected
// old primary that hears it (on any request or stream response) fences
// itself and refuses further ingestion — split-brain writes die with 409
// instead of diverging the histories.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/benefit"
	"repro/internal/core"
	"repro/internal/stats"
)

// FailoverOptions configures the supervisor.  The zero value of every
// duration/count picks a sane default; Solver is required when
// AutoTakeover is set (a promoted primary must be able to close rounds).
type FailoverOptions struct {
	// Follower configures the replication tail (categories, segment
	// options, poll cadence, backoff).
	Follower FollowerOptions
	// ProbeInterval is the health-probe cadence while the primary looks
	// alive; 0 means 500ms.
	ProbeInterval time.Duration
	// ProbeTimeout bounds each probe request; 0 means 2s.
	ProbeTimeout time.Duration
	// ProbeFailures is how many consecutive bad probes (transport error,
	// non-200, or a degraded payload) trigger takeover; 0 means 5.  The
	// threshold is the flap filter: one dropped packet must not cause a
	// promotion.
	ProbeFailures int
	// ProbeMaxBackoff caps the jittered backoff between failed probes;
	// 0 means 5s.
	ProbeMaxBackoff time.Duration
	// AutoTakeover enables promotion.  Off, the supervisor only reports
	// probe state through Health and never promotes — the PR-8 behaviour
	// (operator restarts without -follow) still works on the directory.
	AutoTakeover bool
	// Seed seeds the promoted service's solver RNG and the probe jitter.
	Seed uint64
	// Solver closes rounds after promotion.  Stateful solvers must be
	// fresh instances (same rule as every other Service constructor).
	Solver core.Solver
	// Params are the benefit parameters for the promoted service.
	Params benefit.Params
	// Server bounds the promoted API (body caps, request timeouts).
	Server ServerOptions
	// Checkpoint, when non-nil, attaches a CheckpointManager to the
	// promoted service so the new primary keeps compacting (and can feed
	// snapshot resyncs to its own followers).
	Checkpoint *CheckpointOptions
}

// Failover phases, reported by Phase and visible in takeover logs.
const (
	PhaseFollower      = "follower"
	PhaseTransitioning = "transitioning"
	PhasePrimary       = "primary"
)

// ErrNotPromoted reports an accessor that only makes sense after
// promotion (e.g. Service) being called before it.
var ErrNotPromoted = errors.New("platform: failover has not promoted")

// Failover is the supervisor.  It is an http.Handler whose behaviour
// changes with the phase; see the package comment on promotion ordering.
type Failover struct {
	primary string
	dir     string
	opts    FailoverOptions
	client  *http.Client

	follower *Follower
	handler  atomic.Pointer[handlerBox] // current phase's http.Handler
	phase    atomic.Value               // string
	svc      atomic.Pointer[Service]

	promoted  chan struct{}
	probeDown atomic.Int64 // consecutive failed probes, for Health
}

// handlerBox wraps the phase handler so the atomic slot always holds one
// concrete type regardless of the handler's own.
type handlerBox struct{ h http.Handler }

// NewFailover prepares the supervisor: the follower is constructed (its
// directory recovered) but nothing runs until Run.
func NewFailover(primaryURL, dir string, opts FailoverOptions) (*Failover, error) {
	if opts.AutoTakeover && opts.Solver == nil {
		return nil, fmt.Errorf("platform: auto-takeover needs a solver for the promoted service")
	}
	f, err := NewFollower(primaryURL, dir, opts.Follower)
	if err != nil {
		return nil, err
	}
	fo := &Failover{
		primary:  primaryURL,
		dir:      dir,
		opts:     opts,
		client:   &http.Client{Timeout: probeTimeout(opts)},
		follower: f,
		promoted: make(chan struct{}),
	}
	fo.phase.Store(PhaseFollower)
	fo.handler.Store(&handlerBox{h: fo.followerHandler()})
	return fo, nil
}

func probeTimeout(opts FailoverOptions) time.Duration {
	if opts.ProbeTimeout <= 0 {
		return 2 * time.Second
	}
	return opts.ProbeTimeout
}

// Phase is the current lifecycle phase: follower, transitioning, primary.
func (fo *Failover) Phase() string { return fo.phase.Load().(string) }

// Promoted is closed once the supervisor has promoted to primary.
func (fo *Failover) Promoted() <-chan struct{} { return fo.promoted }

// Follower exposes the replication tail (read-only inspection).
func (fo *Failover) Follower() *Follower { return fo.follower }

// Service returns the promoted primary service, or ErrNotPromoted before
// takeover.
func (fo *Failover) Service() (*Service, error) {
	if s := fo.svc.Load(); s != nil {
		return s, nil
	}
	return nil, ErrNotPromoted
}

// ServeHTTP delegates to the current phase's handler.  The swap is a
// single atomic store, so requests always see a coherent phase: follower
// healthz, transitioning 503, or the full primary API.
func (fo *Failover) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	fo.handler.Load().h.ServeHTTP(w, r)
}

// followerHandler serves the standby API: healthz (with follower lag and
// probe detail), 503 + Retry-After everywhere else — the address may
// become a primary any moment, so clients are told to retry rather than
// being 404ed away.
func (fo *Failover) followerHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		h := fo.follower.Health()
		w.Header().Set("Content-Type", "application/json")
		if h.Status != "ok" {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		_ = json.NewEncoder(w).Encode(h)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "replication follower: not serving the market API", http.StatusServiceUnavailable)
	})
	return mux
}

// transitioningHandler answers everything 503 + Retry-After while the
// promotion sequence (recover, epoch bump, server wiring) runs.
func transitioningHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "failover in progress", http.StatusServiceUnavailable)
	})
}

// Run tails the primary and, with AutoTakeover, watches its health until
// either ctx is cancelled or a takeover completes.  After promotion Run
// keeps serving until ctx is cancelled, then closes the journal (with a
// parting checkpoint when one is configured).  Without AutoTakeover it
// degenerates to Follower.Run plus the phase-aware handler.
func (fo *Failover) Run(ctx context.Context) error {
	followCtx, stopFollow := context.WithCancel(ctx)
	defer stopFollow()
	runDone := make(chan struct{})
	go func() {
		defer close(runDone)
		_ = fo.follower.Run(followCtx)
	}()

	if !fo.opts.AutoTakeover {
		<-ctx.Done()
		<-runDone
		return fo.follower.Close()
	}

	takeover, err := fo.watchPrimary(ctx)
	if err != nil || !takeover {
		stopFollow()
		<-runDone
		cerr := fo.follower.Close()
		if err != nil {
			return err
		}
		return cerr
	}

	// Promotion.  Order matters: stop replicating first (the tail must
	// not move while we recover the directory), then recover + bump under
	// the transitioning handler so no request ever reaches a half-built
	// primary.
	fo.phase.Store(PhaseTransitioning)
	fo.handler.Store(&handlerBox{h: transitioningHandler()})
	stopFollow()
	<-runDone
	if err := fo.follower.Close(); err != nil {
		return fmt.Errorf("platform: sealing follower journal for takeover: %w", err)
	}

	svc, seg, cm, err := fo.promote()
	if err != nil {
		return fmt.Errorf("platform: takeover failed: %w", err)
	}
	fo.svc.Store(svc)
	fo.handler.Store(&handlerBox{h: NewServerWithOptions(svc, fo.opts.Server)})
	fo.phase.Store(PhasePrimary)
	close(fo.promoted)
	log.Printf("platform: failover complete: promoted %s to primary (epoch %d, seq %d)",
		fo.dir, svc.Epoch(), svc.PromotedAtSeq())

	<-ctx.Done()
	if cm != nil {
		if _, err := cm.Checkpoint(); err != nil {
			log.Printf("platform: failover shutdown checkpoint: %v", err)
		}
	}
	return seg.Close()
}

// promote turns the replica directory into a serving primary: recover it
// (it is a valid checkpoint dir — the follower journaled before applying,
// always), reopen the segmented journal for appending, build the service
// and journal the epoch bump that fences the old primary.
func (fo *Failover) promote() (*Service, *SegmentedLog, *CheckpointManager, error) {
	state, _, err := RecoverDir(fo.dir, fo.opts.Follower.NumCategories)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("recovering replica dir: %w", err)
	}
	seg, err := OpenSegmentedLog(fo.dir, fo.opts.Follower.Segment)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("reopening replica journal: %w", err)
	}
	svc, err := NewService(state, fo.opts.Solver, fo.opts.Params, seg, fo.opts.Seed)
	if err != nil {
		seg.Close()
		return nil, nil, nil, err
	}
	var cm *CheckpointManager
	if fo.opts.Checkpoint != nil {
		if cm, err = NewCheckpointManager(state, seg, *fo.opts.Checkpoint); err != nil {
			seg.Close()
			return nil, nil, nil, err
		}
		svc.SetCheckpointer(cm)
	}
	// The journaled epoch bump is the promotion: it survives restarts of
	// the new primary and rides every response header from here on, which
	// is what demotes a resurrected old primary.
	bump, err := svc.Submit(NewEpochBumped(state.Epoch() + 1))
	if err != nil {
		seg.Close()
		return nil, nil, nil, fmt.Errorf("journaling epoch bump: %w", err)
	}
	svc.NotePromotion(bump.Seq)
	return svc, seg, cm, nil
}

// watchPrimary probes GET /v1/healthz until ProbeFailures consecutive
// bad probes (takeover=true), or ctx cancellation (takeover=false).  A
// bad probe is a transport error, a non-200 status — the primary answers
// 503 whenever its own health is degraded — or a payload whose Status
// isn't "ok".  Failed probes back off with jitter so a fleet of standbys
// doesn't synchronise its probes against a struggling primary.
func (fo *Failover) watchPrimary(ctx context.Context) (takeover bool, err error) {
	interval := fo.opts.ProbeInterval
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	maxB := fo.opts.ProbeMaxBackoff
	if maxB <= 0 {
		maxB = 5 * time.Second
	}
	threshold := fo.opts.ProbeFailures
	if threshold <= 0 {
		threshold = 5
	}
	seed := fo.opts.Seed
	if seed == 0 {
		seed = 1
	}
	rng := stats.NewRNG(seed).Split()
	fails := 0
	for {
		bad := fo.probeOnce(ctx)
		if ctx.Err() != nil {
			return false, nil
		}
		if !bad {
			fails = 0
			fo.probeDown.Store(0)
			if !sleepCtx(ctx, interval) {
				return false, nil
			}
			continue
		}
		fails++
		fo.probeDown.Store(int64(fails))
		if fails >= threshold {
			log.Printf("platform: primary %s failed %d consecutive probes; taking over", fo.primary, fails)
			return true, nil
		}
		if !sleepCtx(ctx, backoffDelay(interval, maxB, fails, rng)) {
			return false, nil
		}
	}
}

// probeOnce reports whether one health probe was bad.  An overloaded
// primary is NOT bad: healthz is admission-exempt so the probe itself is
// never shed, a 429 on any route proves a live admission controller
// answered it, and the "overloaded" status is the server coping with
// load — promoting a standby into the same storm would only double it.
func (fo *Failover) probeOnce(ctx context.Context) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, fo.primary+"/v1/healthz", nil)
	if err != nil {
		return true
	}
	resp, err := fo.client.Do(req)
	if err != nil {
		return true
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusTooManyRequests {
		return false // shed by admission: the primary is alive, just busy
	}
	if resp.StatusCode != http.StatusOK {
		return true
	}
	var h HealthStatus
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return true
	}
	return h.Status != "ok" && h.Status != StatusOverloaded
}

// sleepCtx sleeps d or until ctx is done; false means cancelled.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	select {
	case <-ctx.Done():
		return false
	case <-time.After(d):
		return true
	}
}
