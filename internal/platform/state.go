package platform

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/market"
)

// State is the live market: the mutable set of online workers and open
// tasks, maintained by applying events.  It is safe for concurrent use —
// the HTTP server mutates it from request goroutines while the assignment
// service snapshots it.
//
// Identity model: the platform assigns stable uint-ish IDs (dense over the
// lifetime of the state, never reused).  Snapshot() compacts the live
// entities into a market.Instance with dense instance-local indices and
// returns the mapping back to platform IDs, so assignment results can be
// reported against stable identities.
type State struct {
	mu sync.RWMutex

	numCategories int
	nextSeq       uint64
	nextWorkerID  int
	nextTaskID    int
	rounds        int
	epoch         uint64

	workers map[int]market.Worker // live workers by platform ID
	tasks   map[int]market.Task   // open tasks by platform ID

	// prevWorkerIDs/prevTaskIDs are the (sorted) platform IDs of the last
	// SnapshotDelta call — the baseline the next round's churn delta is
	// computed against.  Tracked here, not in the service, because the state
	// is what actually observes the churn; nil until a first SnapshotDelta.
	prevWorkerIDs, prevTaskIDs []int
}

// NewState creates an empty market over the given category universe.
func NewState(numCategories int) (*State, error) {
	if numCategories <= 0 {
		return nil, fmt.Errorf("platform: numCategories must be positive, got %d", numCategories)
	}
	return &State{
		numCategories: numCategories,
		workers:       map[int]market.Worker{},
		tasks:         map[int]market.Task{},
	}, nil
}

// NumCategories returns the category universe size.
func (s *State) NumCategories() int { return s.numCategories }

// Counts returns the number of live workers and open tasks.
func (s *State) Counts() (workers, tasks int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.workers), len(s.tasks)
}

// Rounds returns how many assignment rounds have been closed.
func (s *State) Rounds() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.rounds
}

// Epoch returns the highest replication epoch this state has applied (0 on
// a market that has never seen a promotion).
func (s *State) Epoch() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.epoch
}

// NextIDs returns the next worker and task IDs the state would assign.  A
// sharded service seeds its global ID counters with the max over its
// recovered shards.
func (s *State) NextIDs() (nextWorkerID, nextTaskID int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.nextWorkerID, s.nextTaskID
}

// Worker returns a deep copy of a live worker by platform ID.
func (s *State) Worker(id int) (market.Worker, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	w, ok := s.workers[id]
	if !ok {
		return market.Worker{}, false
	}
	w.Accuracy = append([]float64(nil), w.Accuracy...)
	w.Interest = append([]float64(nil), w.Interest...)
	w.Specialties = append([]int(nil), w.Specialties...)
	return w, true
}

// Task returns a copy of an open task by platform ID.
func (s *State) Task(id int) (market.Task, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tasks[id]
	return t, ok
}

// Apply validates and applies one event, assigning it the next sequence
// number.  It returns the applied event (with Seq and any platform-assigned
// IDs filled in) so callers can append it to a log.
//
// Apply is the single mutation entry point: the HTTP API, the log replayer
// and tests all converge here, which is what makes replay deterministic.
func (s *State) Apply(e Event) (Event, error) {
	if err := e.Validate(); err != nil {
		return Event{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	applied, _, err := s.applyLocked(e)
	return applied, err
}

// ApplyJournaled applies e and journals the applied event as one atomic
// step: the state mutex is held across both, so journal lines land in
// strictly increasing sequence order, and a journal failure rolls the
// state mutation back via the undo closure — the event then exists
// neither in memory nor on disk.  This is the state-applied-but-journal-
// failed contract: Submit can fail *cleanly*, with replay equivalence
// preserved, instead of letting memory and journal drift apart.
func (s *State) ApplyJournaled(e Event, journal func(Event) error) (Event, error) {
	if err := e.Validate(); err != nil {
		return Event{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	applied, undo, err := s.applyLocked(e)
	if err != nil {
		return Event{}, err
	}
	if err := journal(applied); err != nil {
		undo()
		return Event{}, fmt.Errorf("platform: event %s rolled back, journal append failed: %w", applied.Kind, err)
	}
	return applied, nil
}

// ApplyBatchJournaled applies a batch of events and journals them through
// one call — the all-or-nothing half of batch ingest.  The state mutex is
// held across the whole batch, so the events occupy a contiguous sequence
// range and land in the journal as one contiguous (single-write,
// single-fsync via BatchJournal) run.  Any failure — validation, apply, or
// journal — unwinds every already-applied event of the batch in reverse
// order: afterwards the batch exists neither in memory nor on disk.
func (s *State) ApplyBatchJournaled(events []Event, journal func([]Event) error) ([]Event, error) {
	if len(events) == 0 {
		return nil, nil
	}
	for i := range events {
		if err := events[i].Validate(); err != nil {
			return nil, fmt.Errorf("platform: batch event %d: %w", i, err)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	applied := make([]Event, 0, len(events))
	undos := make([]func(), 0, len(events))
	unwind := func() {
		for i := len(undos) - 1; i >= 0; i-- {
			undos[i]()
		}
	}
	for i := range events {
		a, undo, err := s.applyLocked(events[i])
		if err != nil {
			unwind()
			return nil, fmt.Errorf("platform: batch event %d (%s) rejected, batch rolled back: %w", i, events[i].Kind, err)
		}
		applied = append(applied, a)
		undos = append(undos, undo)
	}
	if journal != nil {
		if err := journal(applied); err != nil {
			unwind()
			return nil, fmt.Errorf("platform: batch of %d events rolled back, journal append failed: %w", len(applied), err)
		}
	}
	return applied, nil
}

// applyLocked performs the mutation under an already-held write lock and
// returns, alongside the applied event, an undo closure that restores the
// exact pre-apply state — entities and all ID/sequence counters.  The
// closure is only valid until the lock is released and must be called (or
// discarded) before then.
func (s *State) applyLocked(e Event) (Event, func(), error) {
	// All counter state is captured up front: every branch below advances
	// nextSeq, and the joined/posted branches may advance the ID counters.
	prev := struct {
		seq      uint64
		workerID int
		taskID   int
		rounds   int
		epoch    uint64
	}{s.nextSeq, s.nextWorkerID, s.nextTaskID, s.rounds, s.epoch}
	restore := func() {
		s.nextSeq, s.nextWorkerID, s.nextTaskID, s.rounds, s.epoch =
			prev.seq, prev.workerID, prev.taskID, prev.rounds, prev.epoch
	}
	undo := restore

	switch e.Kind {
	case EventWorkerJoined:
		w := *e.Worker
		if err := validateWorkerProfile(&w, s.numCategories); err != nil {
			return Event{}, nil, err
		}
		// During replay, preserve the recorded ID and advance the counter
		// past it; for fresh events (ID 0 is ambiguous, so fresh events must
		// leave ID at 0 and rely on assignment) allocate the next ID.
		if w.ID >= s.nextWorkerID {
			s.nextWorkerID = w.ID + 1
		} else if w.ID == 0 && s.nextWorkerID > 0 {
			w.ID = s.nextWorkerID
			s.nextWorkerID++
		}
		if _, dup := s.workers[w.ID]; dup {
			restore()
			return Event{}, nil, fmt.Errorf("platform: worker %d already live", w.ID)
		}
		s.workers[w.ID] = w
		e.Worker = &w
		undo = func() { delete(s.workers, w.ID); restore() }
	case EventWorkerLeft:
		w, ok := s.workers[*e.WorkerID]
		if !ok {
			return Event{}, nil, fmt.Errorf("platform: worker %d not live", *e.WorkerID)
		}
		delete(s.workers, *e.WorkerID)
		undo = func() { s.workers[w.ID] = w; restore() }
	case EventTaskPosted:
		t := *e.Task
		if err := validateTaskShape(&t, s.numCategories); err != nil {
			return Event{}, nil, err
		}
		if t.ID >= s.nextTaskID {
			s.nextTaskID = t.ID + 1
		} else if t.ID == 0 && s.nextTaskID > 0 {
			t.ID = s.nextTaskID
			s.nextTaskID++
		}
		if _, dup := s.tasks[t.ID]; dup {
			restore()
			return Event{}, nil, fmt.Errorf("platform: task %d already open", t.ID)
		}
		s.tasks[t.ID] = t
		e.Task = &t
		undo = func() { delete(s.tasks, t.ID); restore() }
	case EventTaskClosed:
		t, ok := s.tasks[*e.TaskID]
		if !ok {
			return Event{}, nil, fmt.Errorf("platform: task %d not open", *e.TaskID)
		}
		delete(s.tasks, *e.TaskID)
		undo = func() { s.tasks[t.ID] = t; restore() }
	case EventRoundClosed:
		s.rounds++
	case EventEpochBumped:
		if *e.Epoch <= s.epoch {
			return Event{}, nil, fmt.Errorf("platform: epoch %d not above current %d", *e.Epoch, s.epoch)
		}
		s.epoch = *e.Epoch
	}

	s.nextSeq++
	e.Seq = s.nextSeq
	return e, undo, nil
}

// validateWorkerProfile checks the per-worker invariants market.Validate
// enforces, independent of instance position.
func validateWorkerProfile(w *market.Worker, numCategories int) error {
	if w.Capacity < 0 {
		return fmt.Errorf("platform: worker capacity %d negative", w.Capacity)
	}
	if len(w.Accuracy) != numCategories || len(w.Interest) != numCategories {
		return fmt.Errorf("platform: worker profile length mismatch (want %d categories)", numCategories)
	}
	for c, a := range w.Accuracy {
		if a < 0.5 || a >= 1 {
			return fmt.Errorf("platform: worker accuracy[%d]=%v outside [0.5,1)", c, a)
		}
	}
	for c, iv := range w.Interest {
		if iv < 0 || iv > 1 {
			return fmt.Errorf("platform: worker interest[%d]=%v outside [0,1]", c, iv)
		}
	}
	if len(w.Specialties) == 0 {
		return fmt.Errorf("platform: worker has no specialties")
	}
	seen := map[int]bool{}
	for _, sp := range w.Specialties {
		if sp < 0 || sp >= numCategories {
			return fmt.Errorf("platform: specialty %d out of range", sp)
		}
		if seen[sp] {
			return fmt.Errorf("platform: duplicate specialty %d", sp)
		}
		seen[sp] = true
	}
	if w.ReservationWage < 0 {
		return fmt.Errorf("platform: negative reservation wage")
	}
	return nil
}

// validateTaskShape checks per-task invariants.
func validateTaskShape(t *market.Task, numCategories int) error {
	if t.Category < 0 || t.Category >= numCategories {
		return fmt.Errorf("platform: task category %d out of range", t.Category)
	}
	if t.Replication <= 0 {
		return fmt.Errorf("platform: task replication %d not positive", t.Replication)
	}
	if t.Payment < 0 {
		return fmt.Errorf("platform: negative payment")
	}
	if t.Difficulty < 0 || t.Difficulty > 1 {
		return fmt.Errorf("platform: difficulty %v outside [0,1]", t.Difficulty)
	}
	return nil
}

// Snapshot compacts the live state into a valid market.Instance with dense
// indices.  The returned slices map instance index → platform ID for both
// sides.  The instance copies all data, so later events do not race with
// solvers working on the snapshot.
func (s *State) Snapshot() (*market.Instance, []int, []int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.snapshotLocked()
}

// SnapshotDelta is Snapshot plus per-round churn tracking: it also returns
// a core.Delta describing how this snapshot differs from the previous
// SnapshotDelta call — which workers/tasks survived (and at which previous
// instance index), departed, or arrived.  The first call, and any call
// after ResetDeltaBaseline, returns a nil delta (no baseline yet).
//
// The delta is advisory in the strict sense: a delta-aware solver
// re-validates it against its own carried state and re-derives weight
// changes itself, so a baseline that went stale (a failed round, a
// recovery) costs a full solve, never a wrong assignment.
func (s *State) SnapshotDelta() (*market.Instance, []int, []int, *core.Delta) {
	s.mu.Lock()
	defer s.mu.Unlock()
	in, workerIDs, taskIDs := s.snapshotLocked()
	var d *core.Delta
	if s.prevWorkerIDs != nil || s.prevTaskIDs != nil {
		d = &core.Delta{}
		d.PrevWorker, d.AddedWorkers, d.RemovedWorkers = diffSortedIDs(s.prevWorkerIDs, workerIDs)
		d.PrevTask, d.AddedTasks, d.RemovedTasks = diffSortedIDs(s.prevTaskIDs, taskIDs)
	}
	s.prevWorkerIDs = workerIDs
	s.prevTaskIDs = taskIDs
	return in, workerIDs, taskIDs, d
}

// ResetDeltaBaseline forgets the churn baseline, so the next SnapshotDelta
// reports no delta (forcing a full solve downstream).  Recovery paths call
// this for hygiene after replaying a journal.
func (s *State) ResetDeltaBaseline() {
	s.mu.Lock()
	s.prevWorkerIDs, s.prevTaskIDs = nil, nil
	s.mu.Unlock()
}

// diffSortedIDs two-pointer-merges the previous and current sorted platform
// ID lists into the Delta's positional encoding: prev[i] is the previous
// index of current entity i (or -1 if it arrived), added lists current
// indices of arrivals, removed lists previous indices of departures.
func diffSortedIDs(prevIDs, curIDs []int) (prev, added, removed []int32) {
	prev = make([]int32, len(curIDs))
	i, j := 0, 0
	for j < len(curIDs) {
		switch {
		case i < len(prevIDs) && prevIDs[i] == curIDs[j]:
			prev[j] = int32(i)
			i++
			j++
		case i < len(prevIDs) && prevIDs[i] < curIDs[j]:
			removed = append(removed, int32(i))
			i++
		default:
			prev[j] = -1
			added = append(added, int32(j))
			j++
		}
	}
	for ; i < len(prevIDs); i++ {
		removed = append(removed, int32(i))
	}
	return prev, added, removed
}

// snapshotLocked is Snapshot's body; the caller holds at least a read lock.
func (s *State) snapshotLocked() (*market.Instance, []int, []int) {
	workerIDs := make([]int, 0, len(s.workers))
	for id := range s.workers {
		workerIDs = append(workerIDs, id)
	}
	sort.Ints(workerIDs)
	taskIDs := make([]int, 0, len(s.tasks))
	for id := range s.tasks {
		taskIDs = append(taskIDs, id)
	}
	sort.Ints(taskIDs)

	in := &market.Instance{
		Name:          "platform",
		NumCategories: s.numCategories,
		Workers:       make([]market.Worker, len(workerIDs)),
		Tasks:         make([]market.Task, len(taskIDs)),
	}
	for i, id := range workerIDs {
		w := s.workers[id]
		// Deep-copy the profile slices: the instance must be immune to
		// later state mutation.
		w.Accuracy = append([]float64(nil), w.Accuracy...)
		w.Interest = append([]float64(nil), w.Interest...)
		w.Specialties = append([]int(nil), w.Specialties...)
		w.ID = i
		in.Workers[i] = w
	}
	for j, id := range taskIDs {
		t := s.tasks[id]
		t.ID = j
		in.Tasks[j] = t
		if t.Payment > in.MaxPayment {
			in.MaxPayment = t.Payment
		}
	}
	return in, workerIDs, taskIDs
}

// filterLivePairs returns the subset of pairs whose worker is still live
// and whose task is still open, plus the number dropped.  One read lock
// covers the whole validation, so the commit decision is made against a
// single consistent view of the state.  The input slice is filtered in
// place (the caller owns it).
func (s *State) filterLivePairs(pairs []AssignmentPair) ([]AssignmentPair, int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := pairs[:0]
	for _, pr := range pairs {
		if _, ok := s.workers[pr.WorkerID]; !ok {
			continue
		}
		if _, ok := s.tasks[pr.TaskID]; !ok {
			continue
		}
		out = append(out, pr)
	}
	return out, len(pairs) - len(out)
}

// Replay applies a sequence of recorded events to a fresh state.  Events
// must be in log order; the first failure aborts with context.
func Replay(numCategories int, events []Event) (*State, error) {
	s, err := NewState(numCategories)
	if err != nil {
		return nil, err
	}
	for i, e := range events {
		if _, err := s.Apply(e); err != nil {
			return nil, fmt.Errorf("platform: replay event %d (seq %d): %w", i, e.Seq, err)
		}
	}
	return s, nil
}
