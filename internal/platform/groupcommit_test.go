package platform

// Group-commit tests: concurrent appends coalesce without losing or
// reordering anything durable, a torn flush poisons exactly like the
// synchronous path, and the segmented heal removes every byte of a failed
// flush while keeping every acked record.  The property test is the
// core guarantee: under a flaky writer, whatever was acked is recoverable
// and the recovered stream is byte-identical to a serial re-append.

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/faultinject"
)

// groupWorker returns a valid worker event tagged with a unique ID so
// concurrent appends are distinguishable after recovery.  Seq stays 0:
// concurrent callers interleave in arbitrary order and the readers only
// enforce monotonicity for nonzero sequences.
func groupWorker(id int) Event {
	w := validWorker()
	w.ID = id
	return NewWorkerJoined(w)
}

func TestGroupCommitConcurrentAppends(t *testing.T) {
	for _, format := range []JournalFormat{FormatJSONL, FormatBinary} {
		t.Run(format.String(), func(t *testing.T) {
			const goroutines, perG = 8, 50
			var buf bytes.Buffer
			l := NewLogWithOptions(&buf, LogOptions{Format: format, GroupCommit: true})
			var wg sync.WaitGroup
			errs := make(chan error, goroutines*perG)
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < perG; i++ {
						if err := l.Append(groupWorker(g*perG + i + 1)); err != nil {
							errs <- fmt.Errorf("append %d/%d: %w", g, i, err)
						}
					}
				}(g)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			events, err := ReadLog(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("log corrupt after concurrent group commit: %v", err)
			}
			if len(events) != goroutines*perG {
				t.Fatalf("recovered %d events, want %d", len(events), goroutines*perG)
			}
			seen := map[int]bool{}
			for _, e := range events {
				if seen[e.Worker.ID] {
					t.Fatalf("worker %d journaled twice", e.Worker.ID)
				}
				seen[e.Worker.ID] = true
			}
		})
	}
}

func TestGroupCommitClosedAndPoisoned(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogWithOptions(&buf, LogOptions{Format: FormatBinary, GroupCommit: true})
	if err := l.Append(groupWorker(1)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(groupWorker(2)); !errors.Is(err, ErrLogClosed) {
		t.Fatalf("append after close: %v, want ErrLogClosed", err)
	}

	// A torn first flush (the magic is fused into it) poisons: later
	// appends are refused without IO and nothing of the stream is
	// recoverable.
	var torn bytes.Buffer
	fw := faultinject.NewFlakyWriter(&torn, faultinject.Once(0))
	fw.Partial = true
	lp := NewLogWithOptions(fw, LogOptions{Format: FormatBinary, GroupCommit: true})
	if err := lp.Append(groupWorker(1)); err == nil {
		t.Fatal("torn flush reported success")
	}
	if !lp.Poisoned() {
		t.Fatal("torn flush did not poison")
	}
	ops := fw.Ops()
	if err := lp.Append(groupWorker(2)); !errors.Is(err, ErrLogPoisoned) {
		t.Fatalf("append on poisoned log: %v, want ErrLogPoisoned", err)
	}
	if fw.Ops() != ops {
		t.Fatal("poisoned log still reached the writer")
	}
	if lp.committedBytes() != 0 {
		t.Fatalf("committed bytes %d after a fully-failed stream", lp.committedBytes())
	}
	events, _ := ReadLogPartial(bytes.NewReader(torn.Bytes()))
	if len(events) != 0 {
		t.Fatalf("recovered %d events from behind a torn header", len(events))
	}
	lp.Close()
}

// TestGroupCommitFlakyProperty is the durability property under a
// randomly tearing writer: N goroutines append M events each with no
// retries; once the stream tears the log poisons and everyone else is
// refused.  Afterwards (a) every acked event is recoverable, and (b) the
// recovered events re-appended serially reproduce the valid prefix
// byte-for-byte — group commit changes batching, never bytes.
func TestGroupCommitFlakyProperty(t *testing.T) {
	const goroutines, perG = 6, 60
	sawInjection := false
	for _, format := range []JournalFormat{FormatJSONL, FormatBinary} {
		for seed := uint64(1); seed <= 4; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", format, seed), func(t *testing.T) {
				var buf bytes.Buffer
				fw := faultinject.NewFlakyWriter(&buf, faultinject.Seeded(seed, 0.05))
				fw.Partial = true
				l := NewLogWithOptions(fw, LogOptions{Format: format, GroupCommit: true})

				var mu sync.Mutex
				acked := map[int]bool{}
				var wg sync.WaitGroup
				for g := 0; g < goroutines; g++ {
					wg.Add(1)
					go func(g int) {
						defer wg.Done()
						for i := 0; i < perG; i++ {
							id := g*perG + i + 1
							if err := l.Append(groupWorker(id)); err == nil {
								mu.Lock()
								acked[id] = true
								mu.Unlock()
							}
						}
					}(g)
				}
				wg.Wait()
				if err := l.Close(); err != nil {
					t.Fatal(err)
				}
				if fw.Injections() > 0 {
					sawInjection = true
				}

				recovered, validBytes, _ := readLogPartialOffset(bytes.NewReader(buf.Bytes()))
				got := map[int]bool{}
				for _, e := range recovered {
					if got[e.Worker.ID] {
						t.Fatalf("worker %d recovered twice", e.Worker.ID)
					}
					got[e.Worker.ID] = true
				}
				for id := range acked {
					if !got[id] {
						t.Fatalf("acked worker %d missing from recovery (%d acked, %d recovered)",
							id, len(acked), len(recovered))
					}
				}

				// Byte-identity: a serial re-append of the recovered events
				// must reproduce the valid prefix exactly.
				var ref bytes.Buffer
				rl := NewLogWithOptions(&ref, LogOptions{Format: format})
				for i := range recovered {
					if err := rl.Append(recovered[i]); err != nil {
						t.Fatal(err)
					}
				}
				if !bytes.Equal(ref.Bytes(), buf.Bytes()[:validBytes]) {
					t.Fatalf("serial re-append differs from the valid prefix (%d vs %d bytes)",
						ref.Len(), validBytes)
				}
			})
		}
	}
	if !sawInjection {
		t.Fatal("no seed injected a fault — the property ran unexercised")
	}
}

// TestSegmentedGroupCommitHealKeepsAcked drives a group-committed
// segmented journal through a transient torn write: the failed event
// rolls back, the heal truncates the tear away, and every acked event —
// before and after the fault — recovers.
func TestSegmentedGroupCommitHealKeepsAcked(t *testing.T) {
	dir := t.TempDir()
	sl, err := OpenSegmentedLog(dir, SegmentOptions{
		MaxBytes: 1 << 20,
		Hook:     &flakyHook{point: CrashSegmentWrite, hit: 3},
		Log:      LogOptions{Format: FormatBinary, GroupCommit: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := mustState(t)
	for i := 0; i < 3; i++ {
		if _, err := s.ApplyJournaled(NewWorkerJoined(validWorker()), sl.Append); err != nil {
			t.Fatal(err)
		}
	}
	// Write op 3 tears (ops 0-2 were magic-fused flushes of the first
	// three events... op counting is per-write: each lone append is one
	// write).  The 4th append fails and must roll back.
	if _, err := s.ApplyJournaled(NewWorkerJoined(validWorker()), sl.Append); err == nil {
		t.Fatal("torn group flush reported success")
	}
	if s.Seq() != 3 {
		t.Fatalf("state seq %d after rollback, want 3", s.Seq())
	}
	if sl.Poisoned() {
		t.Fatal("journal still poisoned after heal")
	}
	// Healed in place: later appends land on a clean boundary.
	for i := 0; i < 2; i++ {
		if _, err := s.ApplyJournaled(NewWorkerJoined(validWorker()), sl.Append); err != nil {
			t.Fatal(err)
		}
	}
	if err := sl.Close(); err != nil {
		t.Fatal(err)
	}
	rec, info, err := RecoverDir(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	if info.TailDropped != nil {
		t.Fatalf("healed dir still torn: %v", info.TailDropped)
	}
	if w, _ := rec.Counts(); w != 5 {
		t.Fatalf("recovered %d workers, want 5", w)
	}
	if rec.Seq() != s.Seq() {
		t.Fatalf("recovered seq %d, live seq %d", rec.Seq(), s.Seq())
	}
}

// TestSegmentedGroupCommitRotation: group commit composes with size
// rotation — segments seal with their committers flushed, recovery sees
// every event across the rotated files.
func TestSegmentedGroupCommitRotation(t *testing.T) {
	dir := t.TempDir()
	sl, err := OpenSegmentedLog(dir, SegmentOptions{
		MaxBytes: 1024,
		Log:      LogOptions{Format: FormatBinary, GroupCommit: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := mustState(t)
	const n = 60
	for i := 0; i < n; i++ {
		if _, err := s.ApplyJournaled(NewWorkerJoined(validWorker()), sl.Append); err != nil {
			t.Fatal(err)
		}
	}
	if len(sl.Segments()) < 3 {
		t.Fatalf("only %d segments after %d events with 1KB rotation", len(sl.Segments()), n)
	}
	if err := sl.Close(); err != nil {
		t.Fatal(err)
	}
	rec, _, err := RecoverDir(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	if w, _ := rec.Counts(); w != n {
		t.Fatalf("recovered %d workers, want %d", w, n)
	}
}
