package platform

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/benefit"
	"repro/internal/core"
)

// newCheckpointedService wires the full serving stack over a checkpoint
// directory: segmented journal, service, checkpoint manager.
func newCheckpointedService(t *testing.T, dir string, everyRounds, keep int, segBytes int64) (*Service, *SegmentedLog, *CheckpointManager) {
	t.Helper()
	st, _, err := RecoverDir(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	sl, err := OpenSegmentedLog(dir, SegmentOptions{MaxBytes: segBytes})
	if err != nil {
		t.Fatal(err)
	}
	solver, err := core.ByName("greedy")
	if err != nil {
		t.Fatal(err)
	}
	svc, err := NewService(st, solver, benefit.DefaultParams(), sl, 1)
	if err != nil {
		t.Fatal(err)
	}
	cm, err := NewCheckpointManager(st, sl, CheckpointOptions{EveryRounds: everyRounds, Keep: keep})
	if err != nil {
		t.Fatal(err)
	}
	svc.SetCheckpointer(cm)
	return svc, sl, cm
}

// churnRound submits a little churn and closes a round, returning the
// round result.
func churnRound(t *testing.T, svc *Service) *RoundResult {
	t.Helper()
	for i := 0; i < 3; i++ {
		if _, err := svc.Submit(NewWorkerJoined(validWorker())); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := svc.Submit(NewTaskPosted(validTask())); err != nil {
		t.Fatal(err)
	}
	res, err := svc.CloseRound()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestCheckpointRoundPolicy(t *testing.T) {
	dir := t.TempDir()
	svc, _, cm := newCheckpointedService(t, dir, 2, 2, 1<<20)
	for r := 1; r <= 5; r++ {
		res := churnRound(t, svc)
		want := r%2 == 0
		if res.Checkpointed != want {
			t.Fatalf("round %d: Checkpointed = %v, want %v", r, res.Checkpointed, want)
		}
		if res.CheckpointError != "" {
			t.Fatalf("round %d: checkpoint error %q", r, res.CheckpointError)
		}
	}
	if _, taken := cm.LastSnapshot(); taken != 2 {
		t.Fatalf("manager took %d checkpoints over 5 rounds at EveryRounds=2, want 2", taken)
	}
	snaps, err := listSnapshots(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 2 {
		t.Fatalf("%d snapshots on disk, want 2", len(snaps))
	}
}

// TestCheckpointFallbackChainSurvivesRetirement is the contract behind
// Keep > 1: after many checkpoints have pruned snapshots and retired
// segments, corrupting the NEWEST snapshot must still leave an older
// generation with its full replay tail on disk.
func TestCheckpointFallbackChainSurvivesRetirement(t *testing.T) {
	dir := t.TempDir()
	svc, _, _ := newCheckpointedService(t, dir, 1, 2, 512)
	for r := 0; r < 6; r++ {
		churnRound(t, svc)
	}
	want := stateBytes(t, svc.State())

	snaps, err := listSnapshots(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 2 {
		t.Fatalf("%d snapshots retained, want Keep=2", len(snaps))
	}
	// Flip a byte in the middle of the newest snapshot.
	raw, err := os.ReadFile(snaps[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xFF
	if err := os.WriteFile(snaps[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}

	st, info, err := RecoverDir(dir, 3)
	if err != nil {
		t.Fatalf("recovery with a corrupt newest snapshot: %v", err)
	}
	if len(info.CorruptSnapshots) != 1 || info.CorruptSnapshots[0] != snaps[0] {
		t.Fatalf("CorruptSnapshots = %v, want [%s]", info.CorruptSnapshots, snaps[0])
	}
	if info.SnapshotPath != snaps[1] {
		t.Fatalf("recovery used %s, want the older generation %s", info.SnapshotPath, snaps[1])
	}
	if !bytes.Equal(stateBytes(t, st), want) {
		t.Fatal("fallback recovery diverged — the older snapshot's replay tail was retired")
	}
}

func TestRecoverDirWithoutSnapshotsReplaysFromGenesis(t *testing.T) {
	dir := t.TempDir()
	sl, err := OpenSegmentedLog(dir, SegmentOptions{MaxBytes: 300})
	if err != nil {
		t.Fatal(err)
	}
	s := mustState(t)
	appendJoins(t, s, sl, 12)
	if err := sl.Close(); err != nil {
		t.Fatal(err)
	}
	st, info, err := RecoverDir(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	if info.SnapshotPath != "" || info.EventsReplayed != 12 {
		t.Fatalf("info = %+v, want genesis replay of 12 events", info)
	}
	if !bytes.Equal(stateBytes(t, st), stateBytes(t, s)) {
		t.Fatal("genesis replay diverged")
	}
}

func TestRecoverDirDetectsSegmentGap(t *testing.T) {
	dir := t.TempDir()
	sl, err := OpenSegmentedLog(dir, SegmentOptions{MaxBytes: 300})
	if err != nil {
		t.Fatal(err)
	}
	s := mustState(t)
	appendJoins(t, s, sl, 12)
	if err := sl.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := listSegments(dir)
	if len(segs) < 3 {
		t.Fatalf("need ≥3 segments for a middle deletion, have %d", len(segs))
	}
	if err := os.Remove(segs[1].Path); err != nil {
		t.Fatal(err)
	}
	if _, _, err := RecoverDir(dir, 3); err == nil {
		t.Fatal("a missing middle segment must be a hard error, not a silent skip")
	} else if !strings.Contains(err.Error(), "gap") {
		t.Fatalf("error %q does not name the gap", err)
	}
}

func TestRecoverDirRejectsMidHistoryCorruption(t *testing.T) {
	dir := t.TempDir()
	sl, err := OpenSegmentedLog(dir, SegmentOptions{MaxBytes: 300})
	if err != nil {
		t.Fatal(err)
	}
	s := mustState(t)
	appendJoins(t, s, sl, 12)
	if err := sl.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := listSegments(dir)
	if len(segs) < 3 {
		t.Fatalf("need ≥3 segments, have %d", len(segs))
	}
	// A torn tail is only legal on the NEWEST segment; tear an older one.
	f, err := os.OpenFile(segs[0].Path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("garbage"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, _, err := RecoverDir(dir, 3); err == nil {
		t.Fatal("mid-history corruption must be a hard error")
	}
}

func TestRecoverDirToleratesTornNewestSegment(t *testing.T) {
	dir := t.TempDir()
	sl, err := OpenSegmentedLog(dir, SegmentOptions{MaxBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	s := mustState(t)
	appendJoins(t, s, sl, 6)
	if err := sl.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := listSegments(dir)
	f, err := os.OpenFile(segs[len(segs)-1].Path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":7,"ki`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	st, info, err := RecoverDir(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	if info.TailDropped == nil {
		t.Fatal("torn newest-segment tail not reported")
	}
	if !bytes.Equal(stateBytes(t, st), stateBytes(t, s)) {
		t.Fatal("torn-tail recovery diverged from committed state")
	}
}

func TestRecoverDirRejectsCategoryMismatch(t *testing.T) {
	dir := t.TempDir()
	s := populatedState(t)
	if _, _, err := WriteSnapshot(dir, s, nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := RecoverDir(dir, 7); err == nil {
		t.Fatal("recovering a 3-category snapshot into a 7-category universe must fail")
	}
}

func TestCheckpointHTTPEndpoint(t *testing.T) {
	// Without a manager: 404.
	st := mustState(t)
	solver, err := core.ByName("greedy")
	if err != nil {
		t.Fatal(err)
	}
	svc, err := NewService(st, solver, benefit.DefaultParams(), nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(svc))
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/v1/checkpoint", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("POST /v1/checkpoint without a manager: %d, want 404", resp.StatusCode)
	}

	// GET must not trigger compaction: the route is POST-only.
	respGet, err := http.Get(srv.URL + "/v1/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	respGet.Body.Close()
	if respGet.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/checkpoint: %d, want 405", respGet.StatusCode)
	}

	// With one: 200 and a snapshot on disk.
	dir := t.TempDir()
	svc2, _, _ := newCheckpointedService(t, dir, 0, 2, 1<<20)
	if _, err := svc2.Submit(NewWorkerJoined(validWorker())); err != nil {
		t.Fatal(err)
	}
	srv2 := httptest.NewServer(NewServer(svc2))
	defer srv2.Close()
	resp2, err := http.Post(srv2.URL+"/v1/checkpoint", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/checkpoint: %d, want 200", resp2.StatusCode)
	}
	var res CheckpointResult
	if err := json.NewDecoder(resp2.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if res.Snapshot.Seq != 1 || filepath.Dir(res.Path) != dir {
		t.Fatalf("checkpoint result %+v", res)
	}
	if _, err := os.Stat(res.Path); err != nil {
		t.Fatalf("published snapshot missing: %v", err)
	}
}
