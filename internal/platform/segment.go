package platform

// SegmentedLog rotates the append-only journal across
// journal.<firstseq>.jsonl files so checkpointing can retire history:
// once a snapshot covers a whole segment, that segment can be deleted and
// recovery cost becomes O(snapshot + tail) instead of O(history).
//
// Naming: a segment file carries the sequence number of its first event,
// zero-padded so lexical order equals replay order.  Events are
// contiguous across segments (sequence numbers never gap within a live
// journal directory), which is what lets retirement reason about a
// segment's last event from the next segment's name alone.
//
// Torn tails are healed by truncate-then-append: both at open (a crash
// mid-append leaves half a line at the end of the newest segment) and
// after a failed in-flight append, the file is truncated back to its last
// valid byte before anything else is written — new events are never
// appended after garbage, so the journal never buries committed events
// behind a corrupt line.

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// SegmentOptions tunes rotation and per-segment durability.
type SegmentOptions struct {
	// MaxBytes seals the active segment once it reaches this size;
	// 0 means the default (4 MiB).  Negative disables size rotation.
	MaxBytes int64
	// RotateRounds seals the active segment after this many round_closed
	// markers; 0 disables round-based rotation.
	RotateRounds int
	// Log is the per-segment durability policy (fsync, retries).
	Log LogOptions
	// Hook injects simulated crashes (tests only; nil in production).
	Hook CrashHook
}

// DefaultSegmentBytes is the size threshold used when MaxBytes is 0.
const DefaultSegmentBytes = 4 << 20

// SegmentInfo describes one journal segment on disk.
type SegmentInfo struct {
	Path     string `json:"path"`
	FirstSeq uint64 `json:"first_seq"`
	Size     int64  `json:"size"`
}

// SegmentedLog is a rotating journal over a directory.  It implements
// Journal; like Log, Append is serialised externally by the state mutex
// (State.ApplyJournaled), but rotation-management entry points
// (Rotate, RetireThrough) take an internal mutex so the checkpoint
// manager may call them concurrently with appends.
type SegmentedLog struct {
	mu   sync.Mutex
	dir  string
	opts SegmentOptions

	f      *os.File // active segment; nil until the first append after a seal
	log    *Log
	cur    SegmentInfo
	rounds int // round markers in the active segment

	sealed  []SegmentInfo // older segments, ascending FirstSeq
	dropped error         // open-time torn-tail diagnostic, if any
}

// segmentFileName formats the canonical segment name for a first
// sequence number.
func segmentFileName(firstSeq uint64) string {
	return fmt.Sprintf("journal.%020d.jsonl", firstSeq)
}

// parseSegmentSeq inverts segmentFileName; ok is false for foreign files.
func parseSegmentSeq(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "journal.") || !strings.HasSuffix(name, ".jsonl") {
		return 0, false
	}
	return parseSeqToken(strings.TrimSuffix(strings.TrimPrefix(name, "journal."), ".jsonl"))
}

// listSegments returns dir's journal segments ascending by first
// sequence number, sizes included.
func listSegments(dir string) ([]SegmentInfo, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var segs []SegmentInfo
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		seq, ok := parseSegmentSeq(e.Name())
		if !ok {
			continue
		}
		fi, err := e.Info()
		if err != nil {
			return nil, err
		}
		segs = append(segs, SegmentInfo{Path: filepath.Join(dir, e.Name()), FirstSeq: seq, Size: fi.Size()})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].FirstSeq < segs[j].FirstSeq })
	return segs, nil
}

// OpenSegmentedLog opens (creating if needed) a segment directory for
// appending.  If the newest segment ends in a torn line — the signature
// of a crash mid-append — it is truncated back to its last valid byte
// before the file is opened for append; the diagnostic is available via
// Dropped.
func OpenSegmentedLog(dir string, opts SegmentOptions) (*SegmentedLog, error) {
	if opts.MaxBytes == 0 {
		opts.MaxBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	sl := &SegmentedLog{dir: dir, opts: opts}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	if len(segs) == 0 {
		return sl, nil
	}
	sl.sealed = segs[:len(segs)-1]
	active := segs[len(segs)-1]

	valid, dropped, err := scanValidPrefix(active.Path)
	if err != nil {
		return nil, err
	}
	sl.dropped = dropped
	if valid < active.Size {
		// Truncate-then-append: drop the torn tail before the first new
		// event can land after it.
		if hook := opts.Hook; hook != nil {
			if err := hook.At(CrashSegmentHeal); err != nil {
				return nil, fmt.Errorf("platform: healing segment %s: %w", active.Path, err)
			}
		}
		if err := os.Truncate(active.Path, valid); err != nil {
			return nil, fmt.Errorf("platform: healing segment %s: %w", active.Path, err)
		}
		active.Size = valid
	}
	f, err := os.OpenFile(active.Path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	sl.attach(f, active)
	// Round markers already inside the reopened segment are not recounted:
	// rotation thresholds are heuristics, and a segment slightly overshooting
	// its round budget across a restart is harmless.
	return sl, nil
}

// attach installs f as the active segment and builds its Log chain:
// Log → crash-hook wrapper → byte counter → file, so the counter sees
// exactly the bytes that reached the file (torn halves included).  The
// file itself is plumbed as the Log's fsync target: the wrappers don't
// forward Sync, and FsyncAlways must reach the file, not a counter.
func (sl *SegmentedLog) attach(f *os.File, info SegmentInfo) {
	sl.f = f
	sl.cur = info
	var w io.Writer = &countingWriter{w: f, n: &sl.cur.Size}
	if sl.opts.Hook != nil {
		w = sl.opts.Hook.Wrap(CrashSegmentWrite, w)
	}
	logOpts := sl.opts.Log
	logOpts.Syncer = f
	sl.log = NewLogWithOptions(w, logOpts)
}

// countingWriter tracks bytes that actually reached the underlying
// writer.
type countingWriter struct {
	w io.Writer
	n *int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	k, err := c.w.Write(p)
	*c.n += int64(k)
	return k, err
}

// Dropped reports the open-time torn-tail diagnostic (nil when the
// directory was clean).
func (sl *SegmentedLog) Dropped() error { return sl.dropped }

// Dir returns the segment directory.
func (sl *SegmentedLog) Dir() string { return sl.dir }

// Append journals one applied event, rotating segments per the options.
// A torn write is healed in place — the file is truncated back to the
// pre-append offset, so the (rolled-back) event leaves no bytes behind
// and the next append lands on a clean line boundary.  The error is
// still returned: the caller's rollback contract is unchanged.
func (sl *SegmentedLog) Append(e Event) error {
	sl.mu.Lock()
	defer sl.mu.Unlock()

	if sl.f == nil {
		if hook := sl.opts.Hook; hook != nil {
			// The mid-rotation power-cut point: the previous segment is
			// sealed, the next does not exist yet.
			if err := hook.At(CrashSegmentRotate); err != nil {
				return fmt.Errorf("platform: rotating segment: %w", err)
			}
		}
		path := filepath.Join(sl.dir, segmentFileName(e.Seq))
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("platform: creating segment: %w", err)
		}
		sl.attach(f, SegmentInfo{Path: path, FirstSeq: e.Seq})
		sl.rounds = 0
	}

	before := sl.cur.Size
	err := sl.log.Append(e)
	if err != nil {
		if sl.log.Poisoned() && sl.cur.Size > before {
			sl.heal(before)
		}
		return err
	}
	if e.Kind == EventRoundClosed {
		sl.rounds++
	}
	if (sl.opts.MaxBytes > 0 && sl.cur.Size >= sl.opts.MaxBytes) ||
		(sl.opts.RotateRounds > 0 && sl.rounds >= sl.opts.RotateRounds) {
		if err := sl.sealLocked(); err != nil {
			// The event is durably appended; a Sync failure delays rotation
			// (retried at the next append) and a Close failure has already
			// detached the synced segment, so surface nothing either way.
			return nil
		}
	}
	return nil
}

// heal truncates the active segment back to offset after a torn append
// and un-poisons the inner Log.  A crashed process cannot heal — the
// hook's At(CrashSegmentHeal) models that — in which case the log stays
// poisoned and the torn tail is left for open-time recovery to remove.
func (sl *SegmentedLog) heal(offset int64) {
	if hook := sl.opts.Hook; hook != nil {
		if err := hook.At(CrashSegmentHeal); err != nil {
			return
		}
	}
	if err := sl.f.Truncate(offset); err != nil {
		return
	}
	sl.cur.Size = offset
	// Rebuild the log chain: same file, fresh (unpoisoned) Log.
	sl.attach(sl.f, sl.cur)
}

// sealLocked syncs and closes the active segment, adding it to the
// sealed list.  The next Append opens a fresh segment named after its
// event.
func (sl *SegmentedLog) sealLocked() error {
	if sl.f == nil {
		return nil
	}
	if err := sl.f.Sync(); err != nil {
		return err
	}
	// The data is durable once Sync succeeds, so even a failed Close
	// detaches the file: keeping a dead fd attached would poison every
	// later Append (and heal's Truncate on it) until restart, whereas
	// detaching just makes the next Append open a fresh segment.
	err := sl.f.Close()
	sl.sealed = append(sl.sealed, sl.cur)
	sl.f, sl.log = nil, nil
	sl.cur = SegmentInfo{}
	sl.rounds = 0
	return err
}

// Rotate seals the active segment now (checkpoint policy: the tail that
// postdates a snapshot starts on a fresh segment).  A nil error with no
// active segment is a no-op.
func (sl *SegmentedLog) Rotate() error {
	sl.mu.Lock()
	defer sl.mu.Unlock()
	return sl.sealLocked()
}

// RetireThrough deletes sealed segments whose every event is ≤ seq —
// i.e. fully covered by a snapshot at seq.  A segment's last event is
// inferred from the next segment's first (events are contiguous), so the
// newest sealed segment is only retired when an active segment exists to
// bound it.  Returns how many segments were removed.
func (sl *SegmentedLog) RetireThrough(seq uint64) (int, error) {
	sl.mu.Lock()
	defer sl.mu.Unlock()
	removed := 0
	for len(sl.sealed) > 0 {
		var nextFirst uint64
		switch {
		case len(sl.sealed) > 1:
			nextFirst = sl.sealed[1].FirstSeq
		case sl.f != nil:
			nextFirst = sl.cur.FirstSeq
		default:
			nextFirst = 0
		}
		if nextFirst == 0 || nextFirst-1 > seq {
			break
		}
		if err := os.Remove(sl.sealed[0].Path); err != nil {
			return removed, err
		}
		removed++
		sl.sealed = sl.sealed[1:]
	}
	if removed > 0 {
		fsyncDir(sl.dir)
	}
	return removed, nil
}

// Segments returns the on-disk segments, sealed first then active,
// ascending by first sequence number.
func (sl *SegmentedLog) Segments() []SegmentInfo {
	sl.mu.Lock()
	defer sl.mu.Unlock()
	out := append([]SegmentInfo(nil), sl.sealed...)
	if sl.f != nil {
		out = append(out, sl.cur)
	}
	return out
}

// Sync flushes the active segment to stable storage.
func (sl *SegmentedLog) Sync() error {
	sl.mu.Lock()
	defer sl.mu.Unlock()
	if sl.f == nil {
		return nil
	}
	return sl.f.Sync()
}

// Close syncs and closes the active segment.  The log remains usable —
// a later Append simply opens a new segment — but Close is intended as
// the shutdown call.
func (sl *SegmentedLog) Close() error {
	sl.mu.Lock()
	defer sl.mu.Unlock()
	return sl.sealLocked()
}

// scanValidPrefix reads a segment file and returns the byte offset of
// the end of its last fully-valid line, plus the torn-tail diagnostic
// when that offset is short of the file size.
func scanValidPrefix(path string) (int64, error, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, nil, err
	}
	defer f.Close()
	_, valid, dropped := readLogPartialOffset(f)
	return valid, dropped, nil
}
