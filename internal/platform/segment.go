package platform

// SegmentedLog rotates the append-only journal across
// journal.<firstseq>.jsonl / .mbaj files so checkpointing can retire
// history: once a snapshot covers a whole segment, that segment can be
// deleted and recovery cost becomes O(snapshot + tail) instead of
// O(history).
//
// Naming: a segment file carries the sequence number of its first event,
// zero-padded so lexical order equals replay order; the extension records
// the encoding it was created with (.jsonl seed format, .mbaj binary —
// binlog.go), though recovery trusts content sniffing, not names.  Events
// are contiguous across segments (sequence numbers never gap within a
// live journal directory), which is what lets retirement reason about a
// segment's last event from the next segment's name alone.  A directory
// may freely mix formats across segments — each segment is one
// self-describing stream.
//
// Torn tails are healed by truncate-then-append: both at open (a crash
// mid-append leaves half a record at the end of the newest segment) and
// after a failed in-flight append, the file is truncated back to its last
// valid byte before anything else is written — new events are never
// appended after garbage, so the journal never buries committed events
// behind a corrupt record.  Under group commit the truncation point is
// the log's committed-bytes offset, which also removes whole records that
// other callers coalesced into the failed flush: every one of those
// callers got the flush's error and rolled back, so their records must
// not survive either.

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// SegmentOptions tunes rotation and per-segment durability.
type SegmentOptions struct {
	// MaxBytes seals the active segment once it reaches this size;
	// 0 means the default (4 MiB).  Negative disables size rotation.
	MaxBytes int64
	// RotateRounds seals the active segment after this many round_closed
	// markers; 0 disables round-based rotation.
	RotateRounds int
	// Log is the per-segment durability policy (fsync, retries, format,
	// group commit).
	Log LogOptions
	// Hook injects simulated crashes (tests only; nil in production).
	Hook CrashHook
}

// DefaultSegmentBytes is the size threshold used when MaxBytes is 0.
const DefaultSegmentBytes = 4 << 20

// SegmentInfo describes one journal segment on disk.
type SegmentInfo struct {
	Path     string `json:"path"`
	FirstSeq uint64 `json:"first_seq"`
	Size     int64  `json:"size"`
}

// ErrSeqRetired is returned by EventsSince when the requested start falls
// before the oldest on-disk segment — the history a follower wants has
// been checkpoint-retired, and it must bootstrap from a snapshot instead.
var ErrSeqRetired = errors.New("platform: requested sequence retired from journal")

// SegmentedLog is a rotating journal over a directory.  It implements
// Journal; like Log, Append is serialised externally by the state mutex
// (State.ApplyJournaled), but rotation-management entry points
// (Rotate, RetireThrough) take an internal mutex so the checkpoint
// manager may call them concurrently with appends.  With group commit
// enabled (SegmentOptions.Log.GroupCommit) Append itself may also be
// called concurrently: callers queue on the active segment's committer
// and the mutex is only held for segment bookkeeping, not the write.
type SegmentedLog struct {
	mu   sync.Mutex
	dir  string
	opts SegmentOptions

	f   *os.File // active segment; nil until the first append after a seal
	log *Log
	cur SegmentInfo
	// curBase is the active segment's size when its Log was attached;
	// curBase + log.committedBytes() is always a safe (never-truncated,
	// record-aligned) prefix of the file — the heal target and the
	// streaming read limit.
	curBase   int64
	curFormat JournalFormat
	rounds    int // round markers in the active segment

	sealed  []SegmentInfo // older segments, ascending FirstSeq
	dropped error         // open-time torn-tail diagnostic, if any
}

// segmentFileName formats the canonical segment name for a first
// sequence number in the given encoding.
func segmentFileName(firstSeq uint64, format JournalFormat) string {
	ext := "jsonl"
	if format == FormatBinary {
		ext = "mbaj"
	}
	return fmt.Sprintf("journal.%020d.%s", firstSeq, ext)
}

// parseSegmentSeq inverts segmentFileName; ok is false for foreign files.
func parseSegmentSeq(name string) (uint64, bool) {
	rest, found := strings.CutPrefix(name, "journal.")
	if !found {
		return 0, false
	}
	token, found := strings.CutSuffix(rest, ".jsonl")
	if !found {
		if token, found = strings.CutSuffix(rest, ".mbaj"); !found {
			return 0, false
		}
	}
	return parseSeqToken(token)
}

// segmentPathFormat infers a segment's declared encoding from its
// extension — only consulted when the file has no valid content to sniff
// (empty or fully torn).
func segmentPathFormat(path string) JournalFormat {
	if strings.HasSuffix(path, ".mbaj") {
		return FormatBinary
	}
	return FormatJSONL
}

// listSegments returns dir's journal segments ascending by first
// sequence number, sizes included.
func listSegments(dir string) ([]SegmentInfo, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var segs []SegmentInfo
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		seq, ok := parseSegmentSeq(e.Name())
		if !ok {
			continue
		}
		fi, err := e.Info()
		if err != nil {
			return nil, err
		}
		segs = append(segs, SegmentInfo{Path: filepath.Join(dir, e.Name()), FirstSeq: seq, Size: fi.Size()})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].FirstSeq < segs[j].FirstSeq })
	return segs, nil
}

// OpenSegmentedLog opens (creating if needed) a segment directory for
// appending.  If the newest segment ends in a torn record — the signature
// of a crash mid-append — it is truncated back to its last valid byte
// before the file is opened for append; the diagnostic is available via
// Dropped.  The reopened segment keeps its on-disk encoding regardless of
// the requested format: a stream never mixes encodings, only the
// directory does.
func OpenSegmentedLog(dir string, opts SegmentOptions) (*SegmentedLog, error) {
	if opts.MaxBytes == 0 {
		opts.MaxBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	sl := &SegmentedLog{dir: dir, opts: opts}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	if len(segs) == 0 {
		return sl, nil
	}
	sl.sealed = segs[:len(segs)-1]
	active := segs[len(segs)-1]

	valid, format, dropped, err := scanValidPrefix(active.Path)
	if err != nil {
		return nil, err
	}
	sl.dropped = dropped
	if valid == 0 {
		// Nothing sniffable; trust the extension so the segment keeps the
		// encoding it was created with.
		format = segmentPathFormat(active.Path)
	}
	if valid < active.Size {
		// Truncate-then-append: drop the torn tail before the first new
		// event can land after it.
		if hook := opts.Hook; hook != nil {
			if err := hook.At(CrashSegmentHeal); err != nil {
				return nil, fmt.Errorf("platform: healing segment %s: %w", active.Path, err)
			}
		}
		if err := os.Truncate(active.Path, valid); err != nil {
			return nil, fmt.Errorf("platform: healing segment %s: %w", active.Path, err)
		}
		active.Size = valid
	}
	f, err := os.OpenFile(active.Path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	sl.attach(f, active, format)
	// Round markers already inside the reopened segment are not recounted:
	// rotation thresholds are heuristics, and a segment slightly overshooting
	// its round budget across a restart is harmless.
	return sl, nil
}

// attach installs f as the active segment and builds its Log chain:
// Log → crash-hook wrapper → byte counter → file, so the counter sees
// exactly the bytes that reached the file (torn halves included).  The
// file itself is plumbed as the Log's fsync target: the wrappers don't
// forward Sync, and FsyncAlways must reach the file, not a counter.
// info.Size must be the file's current (valid) size; for a binary
// segment a nonzero size proves the stream magic is already on disk.
func (sl *SegmentedLog) attach(f *os.File, info SegmentInfo, format JournalFormat) {
	if sl.log != nil {
		// Stop the previous committer (heal re-attaches over the same
		// file); it has already answered every caller, so this is just
		// goroutine hygiene.
		sl.log.Close()
	}
	sl.f = f
	sl.cur = info
	sl.curBase = info.Size
	sl.curFormat = format
	var w io.Writer = &countingWriter{w: f, n: &sl.cur.Size}
	if sl.opts.Hook != nil {
		w = sl.opts.Hook.Wrap(CrashSegmentWrite, w)
	}
	logOpts := sl.opts.Log
	logOpts.Syncer = f
	sl.log = newLogAt(w, logOpts, format, info.Size > 0)
}

// countingWriter tracks bytes that actually reached the underlying
// writer.  The count is updated atomically: under group commit the
// committer goroutine writes while bookkeeping readers hold the segment
// mutex.
type countingWriter struct {
	w io.Writer
	n *int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	k, err := c.w.Write(p)
	atomic.AddInt64(c.n, int64(k))
	return k, err
}

// Dropped reports the open-time torn-tail diagnostic (nil when the
// directory was clean).
func (sl *SegmentedLog) Dropped() error { return sl.dropped }

// Dir returns the segment directory.
func (sl *SegmentedLog) Dir() string { return sl.dir }

// Poisoned reports whether the active segment's log is poisoned (a torn
// write that could not be healed).
func (sl *SegmentedLog) Poisoned() bool {
	sl.mu.Lock()
	defer sl.mu.Unlock()
	return sl.log != nil && sl.log.Poisoned()
}

// Append journals one applied event, rotating segments per the options.
// A torn write is healed in place — the file is truncated back to the
// last committed offset, so the (rolled-back) event leaves no bytes
// behind and the next append lands on a clean record boundary.  The
// error is still returned: the caller's rollback contract is unchanged.
func (sl *SegmentedLog) Append(e Event) error {
	return sl.appendEvents(e.Seq, []Event{e})
}

// AppendBatch journals a batch as one contiguous write (and one fsync)
// in the active segment; a batch never spans a segment boundary.  It
// implements BatchJournal for the all-or-nothing ingest path.
func (sl *SegmentedLog) AppendBatch(events []Event) error {
	if len(events) == 0 {
		return nil
	}
	return sl.appendEvents(events[0].Seq, events)
}

func (sl *SegmentedLog) appendEvents(firstSeq uint64, events []Event) error {
	if sl.opts.Log.GroupCommit {
		return sl.appendGrouped(firstSeq, events)
	}
	return sl.appendDirect(firstSeq, events)
}

// ensureActiveLocked opens a fresh segment named after the incoming
// event when none is active.
func (sl *SegmentedLog) ensureActiveLocked(firstSeq uint64) error {
	if sl.f != nil {
		return nil
	}
	if hook := sl.opts.Hook; hook != nil {
		// The mid-rotation power-cut point: the previous segment is
		// sealed, the next does not exist yet.
		if err := hook.At(CrashSegmentRotate); err != nil {
			return fmt.Errorf("platform: rotating segment: %w", err)
		}
	}
	path := filepath.Join(sl.dir, segmentFileName(firstSeq, sl.opts.Log.Format))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("platform: creating segment: %w", err)
	}
	sl.attach(f, SegmentInfo{Path: path, FirstSeq: firstSeq}, sl.opts.Log.Format)
	sl.rounds = 0
	return nil
}

// afterAppendLocked does the post-append bookkeeping: round counting and
// threshold rotation.
func (sl *SegmentedLog) afterAppendLocked(events []Event) {
	for i := range events {
		if events[i].Kind == EventRoundClosed {
			sl.rounds++
		}
	}
	size := atomic.LoadInt64(&sl.cur.Size)
	if (sl.opts.MaxBytes > 0 && size >= sl.opts.MaxBytes) ||
		(sl.opts.RotateRounds > 0 && sl.rounds >= sl.opts.RotateRounds) {
		// The events are durably appended; a Sync failure delays rotation
		// (retried at the next append) and a Close failure has already
		// detached the synced segment, so surface nothing either way.
		_ = sl.sealLocked()
	}
}

// appendDirect is the synchronous path (no group commit): the mutex is
// held across the write, exactly the seed semantics.
func (sl *SegmentedLog) appendDirect(firstSeq uint64, events []Event) error {
	sl.mu.Lock()
	defer sl.mu.Unlock()
	if err := sl.ensureActiveLocked(firstSeq); err != nil {
		return err
	}
	before := atomic.LoadInt64(&sl.cur.Size)
	var err error
	if len(events) == 1 {
		err = sl.log.Append(events[0])
	} else {
		err = sl.log.AppendBatch(events)
	}
	if err != nil {
		if sl.log.Poisoned() && atomic.LoadInt64(&sl.cur.Size) > before {
			sl.heal(before)
		}
		return err
	}
	sl.afterAppendLocked(events)
	return nil
}

// appendGrouped queues the records on the active segment's committer
// without holding the mutex across the write, so concurrent appends can
// coalesce.  If the segment is sealed out from under a queued caller
// (rotation racing an append) the caller retries on the fresh segment.
func (sl *SegmentedLog) appendGrouped(firstSeq uint64, events []Event) error {
	for {
		sl.mu.Lock()
		if err := sl.ensureActiveLocked(firstSeq); err != nil {
			sl.mu.Unlock()
			return err
		}
		log := sl.log
		sl.mu.Unlock()

		var err error
		if len(events) == 1 {
			err = log.Append(events[0])
		} else {
			err = log.AppendBatch(events)
		}
		if errors.Is(err, ErrLogClosed) {
			// Sealed between our bookkeeping and the enqueue; the fresh
			// segment has a live committer.
			continue
		}

		sl.mu.Lock()
		defer sl.mu.Unlock()
		if err != nil {
			if log == sl.log && log.Poisoned() {
				sl.healGrouped()
			}
			return err
		}
		if log == sl.log {
			sl.afterAppendLocked(events)
		}
		return nil
	}
}

// heal truncates the active segment back to offset after a torn append
// and un-poisons the inner Log.  A crashed process cannot heal — the
// hook's At(CrashSegmentHeal) models that — in which case the log stays
// poisoned and the torn tail is left for open-time recovery to remove.
func (sl *SegmentedLog) heal(offset int64) {
	if hook := sl.opts.Hook; hook != nil {
		if err := hook.At(CrashSegmentHeal); err != nil {
			return
		}
	}
	if err := sl.f.Truncate(offset); err != nil {
		return
	}
	atomic.StoreInt64(&sl.cur.Size, offset)
	// Rebuild the log chain: same file, fresh (unpoisoned) Log.
	sl.attach(sl.f, sl.cur, sl.curFormat)
}

// healGrouped is heal for the group-commit path, where the failed flush
// may carry several callers' records and this caller's view of the
// pre-append offset means nothing.  The truncation target is the log's
// committed-bytes offset: everything of the failed flush goes (all its
// callers were refused and rolled back), everything of earlier successful
// flushes stays.  Poisoning is sticky, so no later flush can have moved
// the file past the tear before we truncate.
func (sl *SegmentedLog) healGrouped() {
	sl.heal(sl.curBase + sl.log.committedBytes())
}

// sealLocked syncs and closes the active segment, adding it to the
// sealed list.  The next Append opens a fresh segment named after its
// event.  A group committer is stopped first, which flushes everything
// it already accepted — records therefore never land after the seal's
// fsync without their own.
func (sl *SegmentedLog) sealLocked() error {
	if sl.f == nil {
		return nil
	}
	sl.log.Close()
	if err := sl.f.Sync(); err != nil {
		return err
	}
	// The data is durable once Sync succeeds, so even a failed Close
	// detaches the file: keeping a dead fd attached would poison every
	// later Append (and heal's Truncate on it) until restart, whereas
	// detaching just makes the next Append open a fresh segment.
	err := sl.f.Close()
	done := sl.cur
	done.Size = atomic.LoadInt64(&sl.cur.Size)
	sl.sealed = append(sl.sealed, done)
	sl.f, sl.log = nil, nil
	sl.cur = SegmentInfo{}
	sl.rounds = 0
	return err
}

// Rotate seals the active segment now (checkpoint policy: the tail that
// postdates a snapshot starts on a fresh segment).  A nil error with no
// active segment is a no-op.
func (sl *SegmentedLog) Rotate() error {
	sl.mu.Lock()
	defer sl.mu.Unlock()
	return sl.sealLocked()
}

// RetireThrough deletes sealed segments whose every event is ≤ seq —
// i.e. fully covered by a snapshot at seq.  A segment's last event is
// inferred from the next segment's first (events are contiguous), so the
// newest sealed segment is only retired when an active segment exists to
// bound it.  Returns how many segments were removed.
func (sl *SegmentedLog) RetireThrough(seq uint64) (int, error) {
	sl.mu.Lock()
	defer sl.mu.Unlock()
	removed := 0
	for len(sl.sealed) > 0 {
		var nextFirst uint64
		switch {
		case len(sl.sealed) > 1:
			nextFirst = sl.sealed[1].FirstSeq
		case sl.f != nil:
			nextFirst = sl.cur.FirstSeq
		default:
			nextFirst = 0
		}
		if nextFirst == 0 || nextFirst-1 > seq {
			break
		}
		if err := os.Remove(sl.sealed[0].Path); err != nil {
			return removed, err
		}
		removed++
		sl.sealed = sl.sealed[1:]
	}
	if removed > 0 {
		fsyncDir(sl.dir)
	}
	return removed, nil
}

// Segments returns the on-disk segments, sealed first then active,
// ascending by first sequence number.
func (sl *SegmentedLog) Segments() []SegmentInfo {
	sl.mu.Lock()
	defer sl.mu.Unlock()
	out := append([]SegmentInfo(nil), sl.sealed...)
	if sl.f != nil {
		cur := sl.cur
		cur.Size = atomic.LoadInt64(&sl.cur.Size)
		out = append(out, cur)
	}
	return out
}

// EventsSince returns every journaled event with sequence ≥ from, read
// from the on-disk segments — the primary side of follower streaming.
// Reads of the active segment stop at its committed-bytes offset, so an
// in-flight (and possibly doomed) group flush is never served to a
// follower; sealed segments are read whole.  ErrSeqRetired means from
// predates the oldest segment and the caller needs a snapshot bootstrap.
func (sl *SegmentedLog) EventsSince(from uint64) ([]Event, error) {
	sl.mu.Lock()
	segs := append([]SegmentInfo(nil), sl.sealed...)
	if sl.f != nil {
		cur := sl.cur
		cur.Size = sl.curBase + sl.log.committedBytes()
		segs = append(segs, cur)
	}
	sl.mu.Unlock()

	if len(segs) == 0 {
		return nil, nil
	}
	if from < segs[0].FirstSeq && segs[0].FirstSeq > 1 {
		return nil, fmt.Errorf("%w: oldest on-disk sequence is %d, requested %d",
			ErrSeqRetired, segs[0].FirstSeq, from)
	}
	var out []Event
	for i, seg := range segs {
		if i+1 < len(segs) && segs[i+1].FirstSeq <= from {
			continue // every event here is < from
		}
		f, err := os.Open(seg.Path)
		if err != nil {
			if os.IsNotExist(err) {
				// Retired between the listing and the read.
				return nil, fmt.Errorf("%w: segment %s removed mid-read", ErrSeqRetired, seg.Path)
			}
			return nil, err
		}
		events, _, dropped := readLogPartialOffset(io.LimitReader(f, seg.Size))
		f.Close()
		if dropped != nil && i+1 < len(segs) {
			// A defect inside a sealed segment is real corruption, not an
			// in-flight append; refuse to stream past it.
			return nil, fmt.Errorf("platform: streaming segment %s: %w", seg.Path, dropped)
		}
		for _, e := range events {
			if e.Seq >= from {
				out = append(out, e)
			}
		}
	}
	return out, nil
}

// Sync flushes the active segment to stable storage.
func (sl *SegmentedLog) Sync() error {
	sl.mu.Lock()
	defer sl.mu.Unlock()
	if sl.f == nil {
		return nil
	}
	return sl.f.Sync()
}

// Close syncs and closes the active segment.  The log remains usable —
// a later Append simply opens a new segment — but Close is intended as
// the shutdown call.
func (sl *SegmentedLog) Close() error {
	sl.mu.Lock()
	defer sl.mu.Unlock()
	return sl.sealLocked()
}

// scanValidPrefix reads a segment file and returns the byte offset of
// the end of its last fully-valid record and the detected encoding, plus
// the torn-tail diagnostic when that offset is short of the file size.
func scanValidPrefix(path string) (int64, JournalFormat, error, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, FormatJSONL, nil, err
	}
	defer f.Close()
	_, valid, format, dropped := readLogPartialDetect(f)
	return valid, format, dropped, nil
}
