package platform

// HTTP-level healthz contract: the endpoint a failover probe (or a load
// balancer) actually hits.  A degraded backend answers 503, not just a
// JSON field — probes must not need to parse the payload to notice — and
// a sharded backend names the poisoned shard.

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/benefit"
)

// poisonedJournal is a Journal stub that reports itself unappendable.
type poisonedJournal struct{ poisoned bool }

func (j *poisonedJournal) Append(Event) error { return nil }
func (j *poisonedJournal) Poisoned() bool     { return j.poisoned }

// getHealth fetches /v1/healthz and decodes the payload.
func getHealth(t *testing.T, url string) (*http.Response, HealthStatus) {
	t.Helper()
	resp, err := http.Get(url + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h HealthStatus
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	return resp, h
}

func TestHealthzEndpointOK(t *testing.T) {
	ts, svc := newPrimary(t, t.TempDir())
	submitN(t, svc, 3)
	resp, h := getHealth(t, ts.URL)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy backend healthz %d", resp.StatusCode)
	}
	if h.Status != "ok" || h.Role != "primary" || h.LastSeq != 3 || h.Epoch != 0 {
		t.Fatalf("healthz payload %+v", h)
	}
}

// TestHealthzShardedPoisonedShard poisons one shard of four: the overall
// status must be 503/degraded and the payload must identify exactly which
// shard is refusing appends.
func TestHealthzShardedPoisonedShard(t *testing.T) {
	const shards = 4
	bundles := make([]Shard, shards)
	var bad *poisonedJournal
	for k := range bundles {
		st, err := NewState(8)
		if err != nil {
			t.Fatal(err)
		}
		j := &poisonedJournal{}
		if k == 2 {
			bad = j
		}
		bundles[k] = Shard{State: st, Solver: greedySolver(), Journal: j}
	}
	ss, err := NewShardedService(bundles, benefit.DefaultParams(), ShardedOptions{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(ss))
	defer srv.Close()

	resp, h := getHealth(t, srv.URL)
	if resp.StatusCode != http.StatusOK || h.Status != "ok" {
		t.Fatalf("pre-poison healthz %d / %+v", resp.StatusCode, h)
	}

	bad.poisoned = true
	resp, h = getHealth(t, srv.URL)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("poisoned-shard healthz %d, want 503", resp.StatusCode)
	}
	if h.Status != "degraded" || !h.JournalPoisoned {
		t.Fatalf("poisoned-shard payload %+v", h)
	}
	if len(h.Shards) != shards {
		t.Fatalf("payload lists %d shards, want %d", len(h.Shards), shards)
	}
	for _, sh := range h.Shards {
		if want := sh.Shard == 2; sh.JournalPoisoned != want {
			t.Fatalf("shard %d poisoned=%v in payload", sh.Shard, sh.JournalPoisoned)
		}
	}
}

// TestHealthzFollowerPayload serves a follower's health over HTTP (the
// failover supervisor's follower phase) and checks the replication
// fields a takeover decision reads: primary_seq, replication_lag, and
// contact age.
func TestHealthzFollowerPayload(t *testing.T) {
	ts, svc := newPrimary(t, t.TempDir())
	submitN(t, svc, 9)
	// The first stream tears after 4 records, so one sync leaves the
	// follower knowing the primary is at 9 while it sits at 4: real lag.
	proxy := httptest.NewServer(&tornOnceProxy{t: t, primaryURL: ts.URL, cutRecord: 4})
	defer proxy.Close()

	fo, err := NewFailover(proxy.URL, t.TempDir(), failoverOptions(false))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(fo)
	defer srv.Close()

	// Before any contact the follower is at 0 with unknown primary seq.
	resp, h := getHealth(t, srv.URL)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fresh follower healthz %d", resp.StatusCode)
	}
	if h.Role != "follower" || h.LastSeq != 0 || h.PrimarySeq != 0 {
		t.Fatalf("fresh follower payload %+v", h)
	}

	if _, err := fo.Follower().SyncOnce(context.Background()); err == nil {
		t.Fatal("torn stream reported a clean sync")
	}
	_, h = getHealth(t, srv.URL)
	if h.PrimarySeq != 9 || h.LastSeq != 4 || h.ReplicationLag != 5 {
		t.Fatalf("lagging follower payload %+v", h)
	}

	// Non-healthz routes on a follower tell clients to come back, not 404.
	wresp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	wresp.Body.Close()
	if wresp.StatusCode != http.StatusServiceUnavailable || wresp.Header.Get("Retry-After") == "" {
		t.Fatalf("follower non-healthz route: %d (Retry-After %q)", wresp.StatusCode, wresp.Header.Get("Retry-After"))
	}
}
