package platform

// Replication chaos: a follower tails a live primary through a proxy that
// injects the three failure shapes a real deployment sees — the stream
// cut mid-record (primary killed while responding), the primary
// unreachable across several polls while its journal keeps rotating, and
// the primary's own journal poisoning under it.  After every storm the
// follower must converge to the primary's exact state (snapshot
// byte-identity) and a cold takeover from its local journal directory
// must reproduce the same state.  Seeded via CHAOS_SEED like the rest of
// the chaos suite; run with `make chaos`.

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/benefit"
	"repro/internal/faultinject"
	"repro/internal/stats"
)

// Proxy modes: how the next journal-stream response is delivered.
const (
	proxyPass = iota // forward untouched
	proxyCut         // sever the body at a chosen byte offset
	proxyDown        // primary unreachable: 503 without forwarding
)

// chaosProxy fronts the primary for the follower.  The driver flips mode
// between polls; every mutation is mutex-guarded so the test stays clean
// under -race.
type chaosProxy struct {
	primaryURL string

	mu    sync.Mutex
	mode  int
	cutAt int64 // body offset for proxyCut
}

func (p *chaosProxy) set(mode int, cutAt int64) {
	p.mu.Lock()
	p.mode = mode
	p.cutAt = cutAt
	p.mu.Unlock()
}

func (p *chaosProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	p.mu.Lock()
	mode, cutAt := p.mode, p.cutAt
	p.mu.Unlock()
	if mode == proxyDown {
		http.Error(w, "primary unreachable", http.StatusServiceUnavailable)
		return
	}
	resp, err := http.Get(p.primaryURL + r.URL.String())
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	w.Header().Set(JournalLastSeqHeader, resp.Header.Get(JournalLastSeqHeader))
	w.WriteHeader(resp.StatusCode)
	if mode == proxyCut && resp.StatusCode == http.StatusOK && cutAt < int64(len(body)) {
		cw := faultinject.NewCutWriter(w, cutAt)
		cw.Write(body)
		return
	}
	w.Write(body)
}

// syncUntilCaughtUp polls through healthy plumbing until the follower's
// lag is zero, bounding the attempts so a livelock fails loudly.
func syncUntilCaughtUp(t *testing.T, f *Follower) {
	t.Helper()
	for attempt := 0; attempt < 10; attempt++ {
		if _, err := f.SyncOnce(context.Background()); err != nil {
			t.Fatalf("clean sync attempt %d failed: %v", attempt, err)
		}
		if f.Lag() == 0 {
			return
		}
	}
	t.Fatalf("follower never caught up: seq %d, primary %d", f.Seq(), f.PrimarySeq())
}

func assertReplicaEquivalent(t *testing.T, f *Follower, primary *State) {
	t.Helper()
	if !bytes.Equal(snapshotBytes(t, f.State()), snapshotBytes(t, primary)) {
		t.Fatalf("follower state diverged (follower seq %d, primary seq %d)", f.Seq(), primary.Seq())
	}
}

func newChaosFollower(t *testing.T, url, dir string) *Follower {
	t.Helper()
	f, err := NewFollower(url, dir, FollowerOptions{
		NumCategories: 3,
		Segment: SegmentOptions{
			MaxBytes: 1 << 20,
			Log:      LogOptions{Format: FormatBinary, GroupCommit: true},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

// TestReplicationChaosTornStream cuts the stream body at a seeded offset
// — anywhere: inside the magic, on a record boundary, mid-record — for 30
// storm rounds.  Each round the primary advances a random amount, the
// follower takes one poll through the cut and one clean poll, and must
// end the round byte-identical to the primary.
func TestReplicationChaosTornStream(t *testing.T) {
	seed := chaosSeed(t)
	rng := stats.NewRNG(seed)
	primaryDir := t.TempDir()
	ts, svc := newPrimary(t, primaryDir)
	proxy := &chaosProxy{primaryURL: ts.URL}
	ps := httptest.NewServer(proxy)
	defer ps.Close()

	followerDir := t.TempDir()
	f := newChaosFollower(t, ps.URL, followerDir)

	torn := 0
	for round := 0; round < 30; round++ {
		submitN(t, svc, rng.IntRange(1, 6))
		if rng.Bool(0.7) {
			// Seeded cut offset over a generous range: offsets beyond the
			// body length degrade to a clean pass, short ones tear the
			// header or an early record.
			proxy.set(proxyCut, int64(rng.IntRange(1, 2048)))
			if _, err := f.SyncOnce(context.Background()); err != nil {
				torn++
			}
			// Whatever the cut did, the applied prefix must be contiguous:
			// follower seq never exceeds the primary's.
			if f.Seq() > svc.State().Seq() {
				t.Fatalf("round %d: follower seq %d ahead of primary %d", round, f.Seq(), svc.State().Seq())
			}
		}
		proxy.set(proxyPass, 0)
		syncUntilCaughtUp(t, f)
		assertReplicaEquivalent(t, f, svc.State())
	}
	if torn == 0 {
		t.Fatal("no stream was ever torn — the chaos ran unexercised")
	}

	// Cold takeover at the end of the storm.
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	rec, info, err := RecoverDir(followerDir, 3)
	if err != nil {
		t.Fatal(err)
	}
	if info.TailDropped != nil {
		t.Fatalf("follower journal torn after clean syncs: %v", info.TailDropped)
	}
	if !bytes.Equal(snapshotBytes(t, rec), snapshotBytes(t, svc.State())) {
		t.Fatal("takeover state diverged from primary after torn-stream storm")
	}
}

// TestReplicationChaosPrimaryDowntime takes the primary away for whole
// poll windows while it keeps ingesting and rotating segments, then
// brings it back: the follower must absorb a multi-segment backlog and
// come back to zero lag through the ordinary poll path.
func TestReplicationChaosPrimaryDowntime(t *testing.T) {
	seed := chaosSeed(t)
	rng := stats.NewRNG(seed + 1)
	primaryDir := t.TempDir()
	// Small segments so downtime backlog provably spans several files.
	sl, err := OpenSegmentedLog(primaryDir, SegmentOptions{
		MaxBytes: 512,
		Log:      LogOptions{Format: FormatBinary, GroupCommit: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sl.Close()
	svc, err := NewService(mustState(t), greedySolver(), benefit.DefaultParams(), sl, 1)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServerWithOptions(svc, NewServerOptions()))
	defer ts.Close()
	proxy := &chaosProxy{primaryURL: ts.URL}
	ps := httptest.NewServer(proxy)
	defer ps.Close()

	followerDir := t.TempDir()
	f := newChaosFollower(t, ps.URL, followerDir)
	syncUntilCaughtUp(t, f) // initial contact at seq 0

	for storm := 0; storm < 5; storm++ {
		proxy.set(proxyDown, 0)
		segsBefore := len(sl.Segments())
		seqBefore := f.Seq()
		// The primary ingests enough during the outage to seal multiple
		// segments; every follower poll meanwhile fails without applying.
		for i := 0; i < 3; i++ {
			submitN(t, svc, rng.IntRange(4, 10))
			if n, err := f.SyncOnce(context.Background()); err == nil || n != 0 {
				t.Fatalf("storm %d: poll against a down primary applied %d events (err %v)", storm, n, err)
			}
		}
		if f.Seq() != seqBefore {
			t.Fatalf("storm %d: follower moved while the primary was down", storm)
		}
		if len(sl.Segments()) <= segsBefore {
			t.Fatalf("storm %d: backlog did not span a new segment — shrink MaxBytes", storm)
		}
		proxy.set(proxyPass, 0)
		syncUntilCaughtUp(t, f)
		assertReplicaEquivalent(t, f, svc.State())
	}
}

// poisonHook tears one scheduled segment write in half and then refuses
// the heal, modelling a disk that failed mid-write and stayed failed: the
// primary's journal poisons permanently.
type poisonHook struct {
	mu   sync.Mutex
	hit  int
	seen int
}

func (h *poisonHook) At(point string) error {
	if point == CrashSegmentHeal {
		return faultinject.ErrInjected
	}
	return nil
}

func (h *poisonHook) Wrap(point string, w io.Writer) io.Writer {
	if point != CrashSegmentWrite {
		return w
	}
	return writerFunc(func(p []byte) (int, error) {
		h.mu.Lock()
		n := h.seen
		h.seen++
		h.mu.Unlock()
		if n != h.hit {
			return w.Write(p)
		}
		k, _ := w.Write(p[:len(p)/2])
		return k, faultinject.ErrInjected
	})
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

// TestReplicationChaosPrimaryPoisonTakeover poisons the primary's journal
// mid-ingest (torn write, heal refused).  The primary keeps serving its
// committed prefix; the follower drains it and a cold takeover from the
// follower's directory must match a cold recovery of the primary's own
// directory — the poisoned tail is exactly the unacknowledged suffix.
func TestReplicationChaosPrimaryPoisonTakeover(t *testing.T) {
	primaryDir := t.TempDir()
	const acked = 7 // writes 0..6 succeed, write 7 tears
	sl, err := OpenSegmentedLog(primaryDir, SegmentOptions{
		MaxBytes: 1 << 20,
		Hook:     &poisonHook{hit: acked},
		Log:      LogOptions{Format: FormatBinary, GroupCommit: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sl.Close()
	svc, err := NewService(mustState(t), greedySolver(), benefit.DefaultParams(), sl, 1)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServerWithOptions(svc, NewServerOptions()))
	defer ts.Close()

	submitN(t, svc, acked)
	if _, err := svc.Submit(NewWorkerJoined(validWorker())); err == nil {
		t.Fatal("torn-and-unhealable append reported success")
	}
	if !sl.Poisoned() {
		t.Fatal("journal not poisoned after refused heal")
	}
	if svc.State().Seq() != acked {
		t.Fatalf("primary seq %d after rollback, want %d", svc.State().Seq(), acked)
	}
	h := svc.Health()
	if h.Status != "degraded" || !h.JournalPoisoned {
		t.Fatalf("poisoned primary health %+v", h)
	}

	// The committed prefix still streams: the follower fully drains it.
	followerDir := t.TempDir()
	f := newChaosFollower(t, ts.URL, followerDir)
	n, err := f.SyncOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if n != acked || f.Lag() != 0 {
		t.Fatalf("follower drained %d events (lag %d), want %d (0)", n, f.Lag(), acked)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// Takeover equivalence: the follower's cold recovery matches the
	// primary's own cold recovery (which drops the torn tail).
	fromFollower, _, err := RecoverDir(followerDir, 3)
	if err != nil {
		t.Fatal(err)
	}
	fromPrimary, info, err := RecoverDir(primaryDir, 3)
	if err != nil {
		t.Fatal(err)
	}
	if info.TailDropped == nil {
		t.Fatal("primary dir recovered without noticing the torn tail")
	}
	if !bytes.Equal(snapshotBytes(t, fromFollower), snapshotBytes(t, fromPrimary)) {
		t.Fatal("takeover state diverges from primary's own recovery")
	}
	if fromFollower.Seq() != acked {
		t.Fatalf("takeover seq %d, want %d", fromFollower.Seq(), acked)
	}
}
