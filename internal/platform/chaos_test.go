package platform

// Chaos suite: ≥120 rounds closed under simultaneously injected journal
// faults, solver panics, and concurrent worker/task churn, then full
// recovery verification.  Everything is seeded (CHAOS_SEED, default 1) so
// a failing run replays exactly.  Run it alone with `make chaos`; it is
// fast enough to live in the ordinary -race suite too.

import (
	"bytes"
	"errors"
	"os"
	"reflect"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/benefit"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/stats"
)

// chaosSeed reads CHAOS_SEED (default 1) so a failure can be replayed and
// CI can rotate seeds without editing the test.
func chaosSeed(t *testing.T) uint64 {
	t.Helper()
	v := os.Getenv("CHAOS_SEED")
	if v == "" {
		return 1
	}
	seed, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		t.Fatalf("bad CHAOS_SEED %q: %v", v, err)
	}
	return seed
}

// removalLedger records entity removals *before* their events are
// submitted.  Anything present in a snapshot taken before a round starts
// was therefore fully removed before that round's commit filter ran — if
// such an ID still shows up in the round's pairs, a stale assignment
// escaped.
type removalLedger struct {
	mu      sync.Mutex
	workers map[int]bool
	tasks   map[int]bool
}

func newRemovalLedger() *removalLedger {
	return &removalLedger{workers: map[int]bool{}, tasks: map[int]bool{}}
}

func (l *removalLedger) markWorker(id int) {
	l.mu.Lock()
	l.workers[id] = true
	l.mu.Unlock()
}

func (l *removalLedger) markTask(id int) {
	l.mu.Lock()
	l.tasks[id] = true
	l.mu.Unlock()
}

func (l *removalLedger) snapshot() (workers, tasks map[int]bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	workers = make(map[int]bool, len(l.workers))
	for id := range l.workers {
		workers[id] = true
	}
	tasks = make(map[int]bool, len(l.tasks))
	for id := range l.tasks {
		tasks[id] = true
	}
	return workers, tasks
}

func TestChaosRounds(t *testing.T) {
	const (
		targetRounds = 120
		churners     = 3
		churnIters   = 400
	)
	seed := chaosSeed(t)

	// Journal faults arrive in bursts of two (ops 17k, 17k+1): with
	// MaxRetries 1 a single failure is absorbed by the retry and a burst
	// defeats it, so both the retry path and the rollback path run hot.
	var buf bytes.Buffer
	fw := faultinject.NewFlakyWriter(&buf, func(op int) bool { return op%17 < 2 })
	log := NewLogWithOptions(fw, LogOptions{MaxRetries: 1, RetryBackoff: 50 * time.Microsecond})

	// Both degrader stages panic on their own schedules; when the
	// schedules collide the whole solve fails and the round closes empty
	// with SolveError set — which must be survivable too.
	solver := core.NewDegrader(0,
		faultinject.NewPanicSolver(core.LocalSearch{Kind: core.MutualWeight}, faultinject.EveryNth(5)),
		faultinject.NewPanicSolver(core.Greedy{Kind: core.MutualWeight}, faultinject.EveryNth(11)),
	)

	state := mustState(t)
	svc, err := NewService(state, solver, benefit.DefaultParams(), log, seed)
	if err != nil {
		t.Fatal(err)
	}

	// Seed population so the first rounds have a market to assign.  The
	// fault schedule fires from op 0, so even seeding must ride out
	// injected bursts — the rollback makes a failed Submit safely
	// repeatable.
	mustSubmit := func(e Event) {
		for {
			_, err := svc.Submit(e)
			if err == nil {
				return
			}
			if !errors.Is(err, faultinject.ErrInjected) {
				t.Fatal(err)
			}
		}
	}
	for i := 0; i < 8; i++ {
		mustSubmit(NewWorkerJoined(validWorker()))
		mustSubmit(NewTaskPosted(validTask()))
	}

	ledger := newRemovalLedger()
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Churners add and remove entities concurrently with round closes.
	// Submit errors (injected journal bursts) are expected and simply
	// retried on the next iteration; the rollback guarantees the failed
	// event left no trace.
	for g := 0; g < churners; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := stats.NewRNG(seed + uint64(g) + 100)
			var myWorkers, myTasks []int
			for i := 0; i < churnIters; i++ {
				select {
				case <-stop:
					return
				default:
				}
				switch rng.Intn(4) {
				case 0:
					if e, err := svc.Submit(NewWorkerJoined(validWorker())); err == nil {
						myWorkers = append(myWorkers, e.Worker.ID)
					}
				case 1:
					if e, err := svc.Submit(NewTaskPosted(validTask())); err == nil {
						myTasks = append(myTasks, e.Task.ID)
					}
				case 2:
					if len(myWorkers) > 1 {
						k := rng.Intn(len(myWorkers))
						id := myWorkers[k]
						// Mark only once the removal has committed (a
						// rolled-back removal leaves the worker live and
						// assignable): every ledger entry is then a removal
						// that completed before any later round's snapshot.
						if _, err := svc.Submit(NewWorkerLeft(id)); err == nil {
							ledger.markWorker(id)
							myWorkers = append(myWorkers[:k], myWorkers[k+1:]...)
						}
					}
				case 3:
					if len(myTasks) > 1 {
						k := rng.Intn(len(myTasks))
						id := myTasks[k]
						if _, err := svc.Submit(NewTaskClosed(id)); err == nil {
							ledger.markTask(id)
							myTasks = append(myTasks[:k], myTasks[k+1:]...)
						}
					}
				}
			}
		}(g)
	}

	rounds, failedRounds, emptyRounds := 0, 0, 0
	for rounds < targetRounds {
		deadWorkers, deadTasks := ledger.snapshot()
		res, err := svc.CloseRound()
		if err != nil {
			// Only the round-marker journal append can fail here (solver
			// failures are absorbed into SolveError); tolerated, retried.
			if !errors.Is(err, faultinject.ErrInjected) {
				t.Fatalf("round failed for a non-injected reason: %v", err)
			}
			failedRounds++
			continue
		}
		rounds++
		if res.SolveError != "" {
			emptyRounds++
		}
		for _, pr := range res.Pairs {
			if deadWorkers[pr.WorkerID] {
				t.Fatalf("round %d assigned worker %d removed before the round began", rounds, pr.WorkerID)
			}
			if deadTasks[pr.TaskID] {
				t.Fatalf("round %d assigned task %d closed before the round began", rounds, pr.TaskID)
			}
		}
	}
	close(stop)
	wg.Wait()

	if state.Rounds() != rounds {
		t.Fatalf("state counts %d rounds, loop closed %d", state.Rounds(), rounds)
	}
	if fw.Injections() == 0 {
		t.Fatal("chaos run injected no journal faults — schedule dead")
	}

	// The journal must be perfectly clean — every fault either retried
	// into success or rolled back — and replay to the exact live state.
	events, err := ReadLog(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("journal corrupt after chaos: %v", err)
	}
	replayed, err := Replay(3, events)
	if err != nil {
		t.Fatal(err)
	}
	liveIn, liveW, liveT := state.Snapshot()
	repIn, repW, repT := replayed.Snapshot()
	if !reflect.DeepEqual(liveIn, repIn) || !reflect.DeepEqual(liveW, repW) || !reflect.DeepEqual(liveT, repT) {
		t.Fatal("replayed state diverges from live state")
	}
	if replayed.Rounds() != rounds {
		t.Fatalf("replayed %d rounds, want %d", replayed.Rounds(), rounds)
	}

	// And the crash-recovery entry point agrees with the strict reader.
	recovered, replayErr, dropped := RecoverLog(3, bytes.NewReader(buf.Bytes()))
	if replayErr != nil || dropped != nil {
		t.Fatalf("RecoverLog: %v / %v", replayErr, dropped)
	}
	if recovered.Rounds() != rounds {
		t.Fatalf("recovered %d rounds, want %d", recovered.Rounds(), rounds)
	}

	t.Logf("chaos: %d rounds (%d marker-append failures retried, %d empty after double panic), %d journal faults injected, %d events journaled",
		rounds, failedRounds, emptyRounds, fw.Injections(), len(events))
}
