package platform

import (
	"bytes"
	"strings"
	"testing"
)

// buildCleanLog returns a valid journal as bytes plus the event count.
func buildCleanLog(t *testing.T, n int) []byte {
	t.Helper()
	var buf bytes.Buffer
	l := NewLog(&buf)
	s := mustState(t)
	for i := 0; i < n; i++ {
		var e Event
		var err error
		if i%2 == 0 {
			e, err = s.Apply(NewWorkerJoined(validWorker()))
		} else {
			e, err = s.Apply(NewTaskPosted(validTask()))
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

func TestReadLogPartialCleanLog(t *testing.T) {
	data := buildCleanLog(t, 6)
	events, dropped := ReadLogPartial(bytes.NewReader(data))
	if dropped != nil {
		t.Fatalf("clean log reported drop: %v", dropped)
	}
	if len(events) != 6 {
		t.Fatalf("events = %d", len(events))
	}
}

func TestReadLogPartialTornTail(t *testing.T) {
	data := buildCleanLog(t, 5)
	// Simulate a crash mid-Append: cut the last line in half.
	cut := bytes.LastIndexByte(data[:len(data)-1], '\n')
	torn := append([]byte{}, data[:cut+10]...) // half of the final line

	events, dropped := ReadLogPartial(bytes.NewReader(torn))
	if dropped == nil {
		t.Fatal("torn tail not reported")
	}
	if len(events) != 4 {
		t.Fatalf("recovered %d events, want 4", len(events))
	}
	// The recovered prefix must replay.
	state, err := Replay(3, events)
	if err != nil {
		t.Fatal(err)
	}
	w, tk := state.Counts()
	if w+tk != 4 {
		t.Fatalf("recovered state has %d entities", w+tk)
	}
}

func TestRecoverLogEndToEnd(t *testing.T) {
	data := buildCleanLog(t, 8)
	torn := append(append([]byte{}, data...), []byte(`{"seq":999,"kind":"worker`)...)
	state, replayErr, dropped := RecoverLog(3, bytes.NewReader(torn))
	if replayErr != nil {
		t.Fatal(replayErr)
	}
	if dropped == nil || !strings.Contains(dropped.Error(), "recovered 8 events") {
		t.Fatalf("diagnostic = %v", dropped)
	}
	w, tk := state.Counts()
	if w != 4 || tk != 4 {
		t.Fatalf("counts (%d,%d)", w, tk)
	}
}

func TestReadLogPartialMidLogCorruption(t *testing.T) {
	data := buildCleanLog(t, 6)
	lines := bytes.Split(data, []byte("\n"))
	lines[2] = []byte("{garbage")
	corrupted := bytes.Join(lines, []byte("\n"))
	events, dropped := ReadLogPartial(bytes.NewReader(corrupted))
	if dropped == nil {
		t.Fatal("mid-log corruption not reported")
	}
	if len(events) != 2 {
		t.Fatalf("recovered %d events, want the 2 before the corruption", len(events))
	}
}
