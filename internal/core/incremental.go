package core

import (
	"fmt"

	"repro/internal/benefit"
	"repro/internal/market"
)

// Incremental maintains a mutual-benefit assignment under a *changing*
// market — workers join and leave, tasks are posted and closed — repairing
// locally instead of recomputing from scratch.  This is the data-structure
// answer to the online problem: where the online solvers commit
// irrevocably, Incremental keeps the standing assignment greedy-maximal at
// every step (no eligible pair with spare capacity on both sides is ever
// left unassigned), repairing only the neighbourhood an event touched.
//
// Payment normalisation note: worker utility divides payment surplus by a
// scale that must stay constant while the market mutates (otherwise every
// cached benefit would shift when an expensive task arrives), so
// NewIncremental pins it as payScale; payments above it simply saturate
// the utility at 1.
type Incremental struct {
	params benefit.Params
	model  *benefit.Model
	inst   *market.Instance // evolving backing store for the model

	activeW []bool
	activeT []bool
	usedW   []int
	usedT   []int

	workersByCat [][]int // worker ids per specialty category
	tasksByCat   [][]int // task ids per category

	assigned map[int]map[int]float64 // worker → task → mutual benefit
	value    float64
}

// NewIncremental creates an empty dynamic market.  payScale pins the
// payment normalisation (a typical choice is the platform's maximum
// expected payment); it must be positive.
func NewIncremental(numCategories int, payScale float64, params benefit.Params) (*Incremental, error) {
	if numCategories <= 0 {
		return nil, fmt.Errorf("core: numCategories must be positive")
	}
	if payScale <= 0 {
		return nil, fmt.Errorf("core: payScale must be positive")
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	inst := &market.Instance{
		Name:          "incremental",
		NumCategories: numCategories,
		MaxPayment:    payScale,
	}
	model, err := benefit.NewModel(inst, params)
	if err != nil {
		return nil, err
	}
	return &Incremental{
		params:       params,
		model:        model,
		inst:         inst,
		workersByCat: make([][]int, numCategories),
		tasksByCat:   make([][]int, numCategories),
		assigned:     map[int]map[int]float64{},
	}, nil
}

// Value returns the current total mutual benefit of the assignment.
func (inc *Incremental) Value() float64 { return inc.value }

// Pairs returns the standing assignment as (worker id, task id) pairs in
// unspecified order.
func (inc *Incremental) Pairs() [][2]int {
	var out [][2]int
	for w, ts := range inc.assigned {
		for t := range ts {
			out = append(out, [2]int{w, t})
		}
	}
	return out
}

// Counts returns the number of active workers and tasks.
func (inc *Incremental) Counts() (workers, tasks int) {
	for _, a := range inc.activeW {
		if a {
			workers++
		}
	}
	for _, a := range inc.activeT {
		if a {
			tasks++
		}
	}
	return workers, tasks
}

// AddWorker activates a worker and immediately gives it its best feasible
// edges.  The worker's ID field is ignored; the returned id is permanent.
func (inc *Incremental) AddWorker(w market.Worker) (int, error) {
	if w.Capacity < 0 {
		return 0, fmt.Errorf("core: negative capacity")
	}
	if len(w.Accuracy) != inc.inst.NumCategories || len(w.Interest) != inc.inst.NumCategories {
		return 0, fmt.Errorf("core: worker profile length mismatch")
	}
	if len(w.Specialties) == 0 {
		return 0, fmt.Errorf("core: worker without specialties")
	}
	for _, c := range w.Specialties {
		if c < 0 || c >= inc.inst.NumCategories {
			return 0, fmt.Errorf("core: specialty %d out of range", c)
		}
	}
	id := len(inc.inst.Workers)
	w.ID = id
	inc.inst.Workers = append(inc.inst.Workers, w)
	inc.activeW = append(inc.activeW, true)
	inc.usedW = append(inc.usedW, 0)
	for _, c := range w.Specialties {
		inc.workersByCat[c] = append(inc.workersByCat[c], id)
	}
	inc.fillWorker(id)
	return id, nil
}

// RemoveWorker deactivates a worker, releases its assignments and refills
// the task slots it freed.
func (inc *Incremental) RemoveWorker(id int) error {
	if id < 0 || id >= len(inc.activeW) || !inc.activeW[id] {
		return fmt.Errorf("core: worker %d not active", id)
	}
	inc.activeW[id] = false
	var freedTasks []int
	for t, mu := range inc.assigned[id] {
		inc.value -= mu
		inc.usedT[t]--
		inc.usedW[id]--
		freedTasks = append(freedTasks, t)
	}
	delete(inc.assigned, id)
	for _, t := range freedTasks {
		inc.fillTask(t)
	}
	return nil
}

// AddTask activates a task and immediately fills its replication slots with
// the best available workers.
func (inc *Incremental) AddTask(t market.Task) (int, error) {
	if t.Category < 0 || t.Category >= inc.inst.NumCategories {
		return 0, fmt.Errorf("core: task category out of range")
	}
	if t.Replication <= 0 {
		return 0, fmt.Errorf("core: non-positive replication")
	}
	if t.Payment < 0 || t.Difficulty < 0 || t.Difficulty > 1 {
		return 0, fmt.Errorf("core: bad payment/difficulty")
	}
	id := len(inc.inst.Tasks)
	t.ID = id
	inc.inst.Tasks = append(inc.inst.Tasks, t)
	inc.activeT = append(inc.activeT, true)
	inc.usedT = append(inc.usedT, 0)
	inc.tasksByCat[t.Category] = append(inc.tasksByCat[t.Category], id)
	inc.fillTask(id)
	return id, nil
}

// RemoveTask deactivates a task, releases its assignments and lets the
// freed workers pick up other work.
func (inc *Incremental) RemoveTask(id int) error {
	if id < 0 || id >= len(inc.activeT) || !inc.activeT[id] {
		return fmt.Errorf("core: task %d not active", id)
	}
	inc.activeT[id] = false
	var freedWorkers []int
	for w, ts := range inc.assigned {
		if mu, ok := ts[id]; ok {
			inc.value -= mu
			delete(ts, id)
			inc.usedW[w]--
			inc.usedT[id]--
			freedWorkers = append(freedWorkers, w)
		}
	}
	for _, w := range freedWorkers {
		inc.fillWorker(w)
	}
	return nil
}

// mutual computes the pair benefit through the shared model.
func (inc *Incremental) mutual(w, t int) float64 {
	return inc.model.Mutual(&inc.inst.Workers[w], &inc.inst.Tasks[t])
}

// assign records the pair.
func (inc *Incremental) assign(w, t int, mu float64) {
	ts := inc.assigned[w]
	if ts == nil {
		ts = map[int]float64{}
		inc.assigned[w] = ts
	}
	ts[t] = mu
	inc.usedW[w]++
	inc.usedT[t]++
	inc.value += mu
}

// fillWorker greedily adds the best feasible edges of worker w until its
// capacity is exhausted or no eligible task has a free slot.
func (inc *Incremental) fillWorker(w int) {
	if !inc.activeW[w] {
		return
	}
	wk := &inc.inst.Workers[w]
	for inc.usedW[w] < wk.Capacity {
		bestT, bestMu := -1, 0.0
		for _, c := range wk.Specialties {
			for _, t := range inc.tasksByCat[c] {
				if !inc.activeT[t] || inc.usedT[t] >= inc.inst.Tasks[t].Replication {
					continue
				}
				if _, dup := inc.assigned[w][t]; dup {
					continue
				}
				if mu := inc.mutual(w, t); bestT == -1 || mu > bestMu {
					bestT, bestMu = t, mu
				}
			}
		}
		if bestT == -1 {
			return
		}
		inc.assign(w, bestT, bestMu)
	}
}

// fillTask greedily fills task t's remaining slots with the best available
// workers.
func (inc *Incremental) fillTask(t int) {
	if !inc.activeT[t] {
		return
	}
	task := &inc.inst.Tasks[t]
	for inc.usedT[t] < task.Replication {
		bestW, bestMu := -1, 0.0
		for _, w := range inc.workersByCat[task.Category] {
			if !inc.activeW[w] || inc.usedW[w] >= inc.inst.Workers[w].Capacity {
				continue
			}
			if _, dup := inc.assigned[w][t]; dup {
				continue
			}
			if mu := inc.mutual(w, t); bestW == -1 || mu > bestMu {
				bestW, bestMu = w, mu
			}
		}
		if bestW == -1 {
			return
		}
		inc.assign(bestW, t, bestMu)
	}
}

// CheckInvariants verifies feasibility (capacities, eligibility, active
// endpoints) and greedy-maximality (no assignable pair left unassigned).
// Tests call it after every mutation; it is O(V·E) and not meant for hot
// paths.
func (inc *Incremental) CheckInvariants() error {
	usedW := make([]int, len(inc.activeW))
	usedT := make([]int, len(inc.activeT))
	total := 0.0
	for w, ts := range inc.assigned {
		for t, mu := range ts {
			if !inc.activeW[w] {
				return fmt.Errorf("core: inactive worker %d assigned", w)
			}
			if !inc.activeT[t] {
				return fmt.Errorf("core: inactive task %d assigned", t)
			}
			if !inc.inst.Workers[w].AcceptsCategory(inc.inst.Tasks[t].Category) {
				return fmt.Errorf("core: ineligible pair (%d,%d)", w, t)
			}
			usedW[w]++
			usedT[t]++
			total += mu
		}
	}
	for w := range usedW {
		if usedW[w] != inc.usedW[w] {
			return fmt.Errorf("core: worker %d used count drift", w)
		}
		if inc.activeW[w] && usedW[w] > inc.inst.Workers[w].Capacity {
			return fmt.Errorf("core: worker %d over capacity", w)
		}
	}
	for t := range usedT {
		if usedT[t] != inc.usedT[t] {
			return fmt.Errorf("core: task %d used count drift", t)
		}
		if inc.activeT[t] && usedT[t] > inc.inst.Tasks[t].Replication {
			return fmt.Errorf("core: task %d over replication", t)
		}
	}
	if diff := total - inc.value; diff > 1e-6 || diff < -1e-6 {
		return fmt.Errorf("core: value drift: cached %v vs recomputed %v", inc.value, total)
	}
	// Maximality.
	for w := range inc.activeW {
		if !inc.activeW[w] || inc.usedW[w] >= inc.inst.Workers[w].Capacity {
			continue
		}
		for _, c := range inc.inst.Workers[w].Specialties {
			for _, t := range inc.tasksByCat[c] {
				if !inc.activeT[t] || inc.usedT[t] >= inc.inst.Tasks[t].Replication {
					continue
				}
				if _, ok := inc.assigned[w][t]; !ok {
					return fmt.Errorf("core: maximality violated: pair (%d,%d) assignable but unassigned", w, t)
				}
			}
		}
	}
	return nil
}
