package core

import (
	"testing"

	"repro/internal/stats"
)

func TestAnnealingFeasible(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		p := smallProblem(t, seed)
		sel, err := (SimulatedAnnealing{Kind: MutualWeight, Iters: 5000}).Solve(p, stats.NewRNG(seed))
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Feasible(sel); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestAnnealingNeverWorseThanGreedy(t *testing.T) {
	// Best-seen tracking guarantees the result is at least the greedy
	// starting point.
	for seed := uint64(1); seed <= 10; seed++ {
		p := smallProblem(t, seed)
		gSel, _ := (Greedy{Kind: MutualWeight}).Solve(p, nil)
		aSel, err := (SimulatedAnnealing{Kind: MutualWeight, Iters: 3000}).Solve(p, stats.NewRNG(seed))
		if err != nil {
			t.Fatal(err)
		}
		g := p.Evaluate(gSel).TotalMutual
		a := p.Evaluate(aSel).TotalMutual
		if a < g-1e-9 {
			t.Fatalf("seed %d: annealing %v below greedy %v", seed, a, g)
		}
	}
}

func TestAnnealingBoundedByExact(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		p := smallProblem(t, seed)
		eSel, _ := (Exact{Kind: MutualWeight}).Solve(p, nil)
		aSel, _ := (SimulatedAnnealing{Kind: MutualWeight, Iters: 3000}).Solve(p, stats.NewRNG(seed))
		if p.Evaluate(aSel).TotalMutual > p.Evaluate(eSel).TotalMutual+1e-6 {
			t.Fatalf("seed %d: annealing beat exact on linear objective", seed)
		}
	}
}

func TestAnnealingDeterministicPerSeed(t *testing.T) {
	p := smallProblem(t, 3)
	a, _ := (SimulatedAnnealing{Kind: MutualWeight, Iters: 2000}).Solve(p, stats.NewRNG(9))
	b, _ := (SimulatedAnnealing{Kind: MutualWeight, Iters: 2000}).Solve(p, stats.NewRNG(9))
	if p.Evaluate(a).TotalMutual != p.Evaluate(b).TotalMutual {
		t.Fatal("same-seed annealing runs differ")
	}
}

func TestAnnealingNilRNGAndEmpty(t *testing.T) {
	p := smallProblem(t, 4)
	if _, err := (SimulatedAnnealing{Kind: MutualWeight, Iters: 100}).Solve(p, nil); err != nil {
		t.Fatal(err)
	}
	pe := MustNewProblem(emptyMarket(), p.Model.Params())
	sel, err := (SimulatedAnnealing{}).Solve(pe, stats.NewRNG(1))
	if err != nil || len(sel) != 0 {
		t.Fatalf("empty market: sel=%v err=%v", sel, err)
	}
}

func TestAnnealingEscapesGreedyTrap(t *testing.T) {
	// The tight ½-approximation instance: one heavy edge blocking two
	// medium edges.  Greedy takes 1.0; the optimum 0.9+0.9=1.8 requires
	// abandoning the heavy edge — exactly what annealing's uphill moves
	// (and local search's rotate) are for.
	p := trapProblem(t)
	gSel, _ := (Greedy{Kind: MutualWeight}).Solve(p, nil)
	g := p.Evaluate(gSel).TotalMutual
	aSel, err := (SimulatedAnnealing{Kind: MutualWeight, Iters: 20000, T0: 0.3}).Solve(p, stats.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	a := p.Evaluate(aSel).TotalMutual
	if a <= g {
		t.Fatalf("annealing (%v) failed to escape the greedy trap (%v)", a, g)
	}
}
