package core

import (
	"os"
	"regexp"
	"slices"
	"testing"
)

// TestReadmeSolverTableInSync keeps the README's algorithm table and the
// solver registry in lock-step, in both directions: every registered name
// must have a table row, and every table row must name a registered solver.
func TestReadmeSolverTableInSync(t *testing.T) {
	raw, err := os.ReadFile("../../README.md")
	if err != nil {
		t.Fatalf("reading README.md: %v", err)
	}
	// Table rows look like: | `name` | family | weight handling |
	rowRE := regexp.MustCompile("(?m)^\\| `([a-z0-9-]+)` \\|")
	var documented []string
	for _, m := range rowRE.FindAllStringSubmatch(string(raw), -1) {
		documented = append(documented, m[1])
	}
	if len(documented) == 0 {
		t.Fatal("no solver table rows found in README.md")
	}
	slices.Sort(documented)
	registered := SolverNames()
	if !slices.Equal(documented, registered) {
		for _, name := range registered {
			if !slices.Contains(documented, name) {
				t.Errorf("registered solver %q has no README table row", name)
			}
		}
		for _, name := range documented {
			if !slices.Contains(registered, name) {
				t.Errorf("README documents %q which is not in the registry", name)
			}
		}
	}
}
