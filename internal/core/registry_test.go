package core

import (
	"testing"

	"repro/internal/stats"
)

func TestByNameResolvesEveryRegisteredSolver(t *testing.T) {
	for _, name := range SolverNames() {
		s, err := ByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s == nil {
			t.Fatalf("%s: nil solver", name)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("definitely-not-a-solver"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestRegistryNamesMatchSolverNames(t *testing.T) {
	// The registry key must equal the solver's own Name() so reports and
	// CLI flags agree (auction is registered under its canonical name too).
	for _, name := range SolverNames() {
		s, _ := ByName(name)
		if s.Name() != name {
			t.Errorf("registry key %q but solver.Name() = %q", name, s.Name())
		}
	}
}

func TestLineUpsAreFeasibleSolvers(t *testing.T) {
	p := smallProblem(t, 77)
	for _, s := range append(ComparisonSolvers(), OnlineSolvers()...) {
		sel, err := s.Solve(p, stats.NewRNG(1))
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if err := p.Feasible(sel); err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
	}
	for _, s := range HeuristicSolvers() {
		if _, err := s.Solve(p, stats.NewRNG(1)); err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
	}
}
