// Package core implements the paper's primary contribution: mutual-benefit
// aware task assignment in a bipartite labor market.
//
// A Problem couples a market.Instance with a benefit.Model and materialises
// the eligible worker-task edges (the bipartite structure).  Solvers consume
// a Problem and return a feasible assignment — a subset of edge indices that
// respects every worker's capacity and every task's replication limit.
// The package ships:
//
//   - Exact: the polynomial-time optimum of the linear objective (MBA-L) via
//     a min-cost max-flow reduction;
//   - Greedy / LocalSearch: fast approximations with a ½ guarantee from the
//     matroid-intersection structure;
//   - SubmodularGreedy: the lazy marginal-gain greedy for the
//     diminishing-returns objective (MBA-S) built on the majority-vote
//     quality oracle;
//   - OnlineGreedy / OnlineRanking / OnlineTwoPhase: irrevocable assignment
//     under random-order worker arrival (MBA-ON);
//   - the baselines the paper's family compares against: quality-only,
//     worker-only, random and round-robin assignment.
//
// All solvers validate nothing at runtime beyond their own needs; use
// Problem.Feasible to check a returned assignment and Problem.Evaluate to
// score it.
package core

import (
	"fmt"
	"sort"

	"repro/internal/benefit"
	"repro/internal/bipartite"
	"repro/internal/market"
	"repro/internal/stats"
)

// WeightKind selects which per-edge value an algorithm optimises.  The
// baselines differ from the mutual-benefit algorithms only in this choice.
type WeightKind int

const (
	// MutualWeight optimises the combined benefit µ — the paper's proposal.
	MutualWeight WeightKind = iota
	// QualityWeight optimises the requester side alone — what prior
	// assignment work does.
	QualityWeight
	// WorkerWeight optimises the worker side alone.
	WorkerWeight
)

// String names the weight kind for reports.
func (k WeightKind) String() string {
	switch k {
	case MutualWeight:
		return "mutual"
	case QualityWeight:
		return "quality"
	case WorkerWeight:
		return "worker"
	default:
		return fmt.Sprintf("weight(%d)", int(k))
	}
}

// EdgeInfo is one eligible worker-task pair with its three benefit values
// precomputed.  Precomputing keeps the hot loops of every solver free of
// model calls.
type EdgeInfo struct {
	W, T    int     // worker and task indices in the instance
	Q, B, M float64 // quality, worker utility, mutual benefit
}

// Weight returns the edge's value under kind.
func (e *EdgeInfo) Weight(kind WeightKind) float64 {
	switch kind {
	case MutualWeight:
		return e.M
	case QualityWeight:
		return e.Q
	case WorkerWeight:
		return e.B
	default:
		panic("core: unknown weight kind")
	}
}

// Problem is one assignment round: an instance, a benefit model, and the
// materialised eligible edges.
type Problem struct {
	In    *market.Instance
	Model *benefit.Model
	Edges []EdgeInfo

	adjW [][]int32 // adjW[w] = indices into Edges incident to worker w
	adjT [][]int32 // adjT[t] = indices into Edges incident to task t
}

// NewProblem builds the Problem for an instance under params.  Edges are
// enumerated in deterministic (worker, task) order: for each worker, the
// tasks of each of its specialties in task-id order.
func NewProblem(in *market.Instance, params benefit.Params) (*Problem, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	model, err := benefit.NewModel(in, params)
	if err != nil {
		return nil, err
	}
	p := &Problem{
		In:    in,
		Model: model,
		adjW:  make([][]int32, in.NumWorkers()),
		adjT:  make([][]int32, in.NumTasks()),
	}
	// Bucket tasks by category once.
	tasksByCat := make([][]int, in.NumCategories)
	for j := range in.Tasks {
		c := in.Tasks[j].Category
		tasksByCat[c] = append(tasksByCat[c], j)
	}
	p.Edges = make([]EdgeInfo, 0, in.NumEdges())
	for wi := range in.Workers {
		w := &in.Workers[wi]
		// Specialties in ascending order gives ascending task ids per worker
		// only within a category; sort the union for full determinism.
		var taskIDs []int
		for _, c := range w.Specialties {
			taskIDs = append(taskIDs, tasksByCat[c]...)
		}
		sort.Ints(taskIDs)
		for _, tj := range taskIDs {
			t := &in.Tasks[tj]
			e := EdgeInfo{
				W: wi, T: tj,
				Q: model.Quality(w, t),
				B: model.WorkerUtility(w, t),
			}
			e.M = model.Combine(e.Q, e.B)
			idx := int32(len(p.Edges))
			p.Edges = append(p.Edges, e)
			p.adjW[wi] = append(p.adjW[wi], idx)
			p.adjT[tj] = append(p.adjT[tj], idx)
		}
	}
	return p, nil
}

// MustNewProblem is NewProblem that panics on error, for tests, examples and
// benchmarks with literal inputs.
func MustNewProblem(in *market.Instance, params benefit.Params) *Problem {
	p, err := NewProblem(in, params)
	if err != nil {
		panic(err)
	}
	return p
}

// AdjW returns the edge indices incident to worker w (do not mutate).
func (p *Problem) AdjW(w int) []int32 { return p.adjW[w] }

// AdjT returns the edge indices incident to task t (do not mutate).
func (p *Problem) AdjT(t int) []int32 { return p.adjT[t] }

// CapacityW returns a fresh slice of worker capacities.
func (p *Problem) CapacityW() []int {
	caps := make([]int, p.In.NumWorkers())
	for i := range p.In.Workers {
		caps[i] = p.In.Workers[i].Capacity
	}
	return caps
}

// CapacityT returns a fresh slice of task replication limits.
func (p *Problem) CapacityT() []int {
	caps := make([]int, p.In.NumTasks())
	for j := range p.In.Tasks {
		caps[j] = p.In.Tasks[j].Replication
	}
	return caps
}

// GraphFor builds the weighted bipartite graph of the problem under kind
// (left = workers, right = tasks), preserving edge indices, for use with the
// exact flow solver.
func (p *Problem) GraphFor(kind WeightKind) *bipartite.Graph {
	g := bipartite.NewGraph(p.In.NumWorkers(), p.In.NumTasks())
	for i := range p.Edges {
		e := &p.Edges[i]
		g.AddEdge(e.W, e.T, e.Weight(kind))
	}
	return g
}

// Feasible verifies that sel (edge indices into p.Edges) is a valid
// assignment: indices in range and distinct, no duplicate worker-task pair,
// and both sides' degree constraints respected.  It returns nil or a
// descriptive error for the first violation.
func (p *Problem) Feasible(sel []int) error {
	seen := make(map[int]bool, len(sel))
	degW := make(map[int]int)
	degT := make(map[int]int)
	for _, ei := range sel {
		if ei < 0 || ei >= len(p.Edges) {
			return fmt.Errorf("core: edge index %d out of range", ei)
		}
		if seen[ei] {
			return fmt.Errorf("core: edge %d selected twice", ei)
		}
		seen[ei] = true
		e := &p.Edges[ei]
		degW[e.W]++
		degT[e.T]++
		if degW[e.W] > p.In.Workers[e.W].Capacity {
			return fmt.Errorf("core: worker %d over capacity %d", e.W, p.In.Workers[e.W].Capacity)
		}
		if degT[e.T] > p.In.Tasks[e.T].Replication {
			return fmt.Errorf("core: task %d over replication %d", e.T, p.In.Tasks[e.T].Replication)
		}
	}
	// Duplicate worker-task pairs can only arise from duplicate edges in
	// Edges, which NewProblem never creates; the distinct-index check above
	// therefore already excludes them.
	return nil
}

// Solver is the interface every assignment algorithm implements.  Solve
// returns edge indices into p.Edges.  Deterministic solvers ignore r;
// randomised and online ones draw arrival orders and tie-breaks from it, so
// the caller controls reproducibility.
type Solver interface {
	Name() string
	Solve(p *Problem, r *stats.RNG) ([]int, error)
}
