// Package core implements the paper's primary contribution: mutual-benefit
// aware task assignment in a bipartite labor market.
//
// A Problem couples a market.Instance with a benefit.Model and materialises
// the eligible worker-task edges (the bipartite structure).  Solvers consume
// a Problem and return a feasible assignment — a subset of edge indices that
// respects every worker's capacity and every task's replication limit.
// The package ships:
//
//   - Exact: the polynomial-time optimum of the linear objective (MBA-L) via
//     a min-cost max-flow reduction;
//   - Greedy / LocalSearch: fast approximations with a ½ guarantee from the
//     matroid-intersection structure;
//   - SubmodularGreedy: the lazy marginal-gain greedy for the
//     diminishing-returns objective (MBA-S) built on the majority-vote
//     quality oracle;
//   - OnlineGreedy / OnlineRanking / OnlineTwoPhase: irrevocable assignment
//     under random-order worker arrival (MBA-ON);
//   - the baselines the paper's family compares against: quality-only,
//     worker-only, random and round-robin assignment.
//
// All solvers validate nothing at runtime beyond their own needs; use
// Problem.Feasible to check a returned assignment and Problem.Evaluate to
// score it.
package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/benefit"
	"repro/internal/bipartite"
	"repro/internal/market"
	"repro/internal/stats"
)

// WeightKind selects which per-edge value an algorithm optimises.  The
// baselines differ from the mutual-benefit algorithms only in this choice.
type WeightKind int

const (
	// MutualWeight optimises the combined benefit µ — the paper's proposal.
	MutualWeight WeightKind = iota
	// QualityWeight optimises the requester side alone — what prior
	// assignment work does.
	QualityWeight
	// WorkerWeight optimises the worker side alone.
	WorkerWeight
)

// String names the weight kind for reports.
func (k WeightKind) String() string {
	switch k {
	case MutualWeight:
		return "mutual"
	case QualityWeight:
		return "quality"
	case WorkerWeight:
		return "worker"
	default:
		return fmt.Sprintf("weight(%d)", int(k))
	}
}

// EdgeInfo is one eligible worker-task pair with its three benefit values
// precomputed.  Precomputing keeps the hot loops of every solver free of
// model calls.
type EdgeInfo struct {
	W, T    int     // worker and task indices in the instance
	Q, B, M float64 // quality, worker utility, mutual benefit
}

// Weight returns the edge's value under kind.
func (e *EdgeInfo) Weight(kind WeightKind) float64 {
	switch kind {
	case MutualWeight:
		return e.M
	case QualityWeight:
		return e.Q
	case WorkerWeight:
		return e.B
	default:
		panic("core: unknown weight kind")
	}
}

// Problem is one assignment round: an instance, a benefit model, and the
// materialised eligible edges.
//
// Adjacency is stored in CSR form: one flat backing slice per side plus an
// offsets array, so building a problem performs a fixed number of
// allocations regardless of market shape and the AdjW/AdjT accessors return
// subslices of contiguous memory.
type Problem struct {
	In    *market.Instance
	Model *benefit.Model
	Edges []EdgeInfo

	adjW []int32 // edge indices incident to worker w at [offW[w], offW[w+1])
	offW []int32 // len NumWorkers+1
	adjT []int32 // edge indices incident to task t at [offT[t], offT[t+1])
	offT []int32 // len NumTasks+1

	// bs retains the counting-pass scratch so RebuildProblem can rebuild
	// this Problem for the next round without reallocating it.
	bs buildScratch
}

// buildScratch is the per-build counting scratch: category buckets, degree
// counters and fill cursors.  All O(categories + tasks), all fully
// rewritten by every build.
type buildScratch struct {
	catOff, catTasks, catCur []int32
	workersPerCat, cursorT   []int32
}

// parallelBuildCutoff is the edge count below which NewProblem stays
// serial: goroutine fan-out costs more than it saves on small markets.
const parallelBuildCutoff = 1 << 12

// NewProblem builds the Problem for an instance under params.  Edges are
// enumerated in deterministic (worker, task) order: for each worker, the
// tasks of each of its specialties in task-id order.
//
// Construction is a counted two-pass build into preallocated flat arrays,
// with edge scoring fanned out across GOMAXPROCS goroutines over disjoint
// worker ranges; the result is byte-identical to NewProblemSerial, the
// retained single-threaded reference.
func NewProblem(in *market.Instance, params benefit.Params) (*Problem, error) {
	return newProblemProcs(in, params, 0)
}

// newProblemProcs is NewProblem with an explicit scoring fan-out, so tests
// can force the parallel path regardless of GOMAXPROCS and market size.
// procs <= 0 selects GOMAXPROCS with the small-market serial cutoff.
func newProblemProcs(in *market.Instance, params benefit.Params, procs int) (*Problem, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	model, err := benefit.NewModel(in, params)
	if err != nil {
		return nil, err
	}
	p := &Problem{In: in, Model: model}
	p.build(procs)
	return p, nil
}

// build materialises Edges and the CSR adjacency in two counted passes:
// exact per-node degrees first (so every array is allocated once at final
// size), then scoring into the precomputed disjoint ranges.
func (p *Problem) build(procs int) {
	in := p.In
	nW, nT, nC := in.NumWorkers(), in.NumTasks(), in.NumCategories

	// Every array below is drawn through a reuse-aware grow helper against
	// the Problem's previous build (a no-op first time), so RebuildProblem
	// reruns this code with (almost) zero fresh allocation when the market
	// shape is stable round over round.

	// CSR bucket of tasks by category; task ids ascend within each bucket
	// because tasks are visited in id order.
	p.bs.catOff = growI32(p.bs.catOff, nC+1)
	catOff := p.bs.catOff
	clear(catOff)
	for j := range in.Tasks {
		catOff[in.Tasks[j].Category+1]++
	}
	for c := 0; c < nC; c++ {
		catOff[c+1] += catOff[c]
	}
	p.bs.catTasks = growI32(p.bs.catTasks, nT)
	catTasks := p.bs.catTasks
	p.bs.catCur = growI32(p.bs.catCur, nC)
	catCur := p.bs.catCur
	copy(catCur, catOff[:nC])
	for j := range in.Tasks {
		c := in.Tasks[j].Category
		catTasks[catCur[c]] = int32(j)
		catCur[c]++
	}

	// Pass 1: exact degrees.  A worker's edge count is the sum of its
	// specialty bucket sizes; a task's degree is the number of workers
	// specialised in its category.
	offW := growI32(p.offW, nW+1)
	offW[0] = 0
	p.bs.workersPerCat = growI32(p.bs.workersPerCat, nC)
	workersPerCat := p.bs.workersPerCat
	clear(workersPerCat)
	for wi := range in.Workers {
		deg := int32(0)
		for _, c := range in.Workers[wi].Specialties {
			deg += catOff[c+1] - catOff[c]
			workersPerCat[c]++
		}
		offW[wi+1] = offW[wi] + deg
	}
	total := int(offW[nW])
	offT := growI32(p.offT, nT+1)
	offT[0] = 0
	for j := range in.Tasks {
		offT[j+1] = offT[j] + workersPerCat[in.Tasks[j].Category]
	}

	p.Edges = growEdges(p.Edges, total)
	p.adjW = growI32(p.adjW, total)
	p.adjT = growI32(p.adjT, total)
	p.offW, p.offT = offW, offT

	if procs <= 0 {
		procs = runtime.GOMAXPROCS(0)
		if total < parallelBuildCutoff {
			procs = 1
		}
	}
	if procs > nW {
		procs = nW
	}

	// Pass 2: score edges.  Each chunk owns a contiguous worker range and
	// therefore a disjoint range of Edges/adjW, so the fan-out is race-free
	// and its output independent of goroutine scheduling.
	if procs <= 1 {
		p.scoreWorkers(0, nW, catOff, catTasks)
	} else {
		// Chunk boundaries at edge-count quantiles, so dense workers do not
		// pile into one goroutine.
		bounds := make([]int, procs+1)
		bounds[procs] = nW
		for k := 1; k < procs; k++ {
			target := int32(int64(total) * int64(k) / int64(procs))
			bounds[k] = sort.Search(nW, func(i int) bool { return offW[i] >= target })
		}
		var wg sync.WaitGroup
		for k := 0; k < procs; k++ {
			lo, hi := bounds[k], bounds[k+1]
			if lo >= hi {
				continue
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				p.scoreWorkers(lo, hi, catOff, catTasks)
			}(lo, hi)
		}
		wg.Wait()
	}

	// Task adjacency: edges ascend globally, so a single cursor sweep fills
	// every task's list in ascending edge order — matching the order the
	// grow-by-append build produced.
	p.bs.cursorT = growI32(p.bs.cursorT, nT)
	cursorT := p.bs.cursorT
	copy(cursorT, offT[:nT])
	for i := range p.Edges {
		tj := p.Edges[i].T
		p.adjT[cursorT[tj]] = int32(i)
		cursorT[tj]++
	}
}

// scoreWorkers scores the edges of workers [lo, hi) into their precomputed
// Edges/adjW ranges.  Each worker's task list is the k-way merge of its
// specialty buckets — disjoint ascending lists — replacing the seed's
// per-worker union-then-sort.Ints.
func (p *Problem) scoreWorkers(lo, hi int, catOff, catTasks []int32) {
	in := p.In
	nC := in.NumCategories
	cur := make([]int32, nC)
	end := make([]int32, nC)
	for wi := lo; wi < hi; wi++ {
		w := &in.Workers[wi]
		pos := p.offW[wi]
		specs := w.Specialties
		if len(specs) == 1 {
			c := specs[0]
			for _, tj := range catTasks[catOff[c]:catOff[c+1]] {
				p.scoreEdge(pos, wi, int(tj), w)
				pos++
			}
			continue
		}
		for s, c := range specs {
			cur[s] = catOff[c]
			end[s] = catOff[c+1]
		}
		for pos < p.offW[wi+1] {
			best, bestT := -1, int32(0)
			for s := range specs {
				if cur[s] < end[s] {
					if tj := catTasks[cur[s]]; best == -1 || tj < bestT {
						best, bestT = s, tj
					}
				}
			}
			cur[best]++
			p.scoreEdge(pos, wi, int(bestT), w)
			pos++
		}
	}
}

// scoreEdge fills Edges[pos] with the scored pair (wi, tj).  Edge index ==
// position in the worker-major enumeration, so adjW is the identity there.
func (p *Problem) scoreEdge(pos int32, wi, tj int, w *market.Worker) {
	t := &p.In.Tasks[tj]
	e := &p.Edges[pos]
	e.W, e.T = wi, tj
	e.Q = p.Model.Quality(w, t)
	e.B = p.Model.WorkerUtility(w, t)
	e.M = p.Model.Combine(e.Q, e.B)
	p.adjW[pos] = pos
}

// setAdjacency flattens per-node adjacency lists into the CSR arrays (used
// by the serial reference builder).
func (p *Problem) setAdjacency(adjW, adjT [][]int32) {
	n := len(p.Edges)
	p.offW = make([]int32, len(adjW)+1)
	p.adjW = make([]int32, 0, n)
	for w, l := range adjW {
		p.adjW = append(p.adjW, l...)
		p.offW[w+1] = int32(len(p.adjW))
	}
	p.offT = make([]int32, len(adjT)+1)
	p.adjT = make([]int32, 0, n)
	for t, l := range adjT {
		p.adjT = append(p.adjT, l...)
		p.offT[t+1] = int32(len(p.adjT))
	}
}

// MustNewProblem is NewProblem that panics on error, for tests, examples and
// benchmarks with literal inputs.
func MustNewProblem(in *market.Instance, params benefit.Params) *Problem {
	p, err := NewProblem(in, params)
	if err != nil {
		panic(err)
	}
	return p
}

// AdjW returns the edge indices incident to worker w (do not mutate).
func (p *Problem) AdjW(w int) []int32 { return p.adjW[p.offW[w]:p.offW[w+1]] }

// AdjT returns the edge indices incident to task t (do not mutate).
func (p *Problem) AdjT(t int) []int32 { return p.adjT[p.offT[t]:p.offT[t+1]] }

// CapacityW returns a fresh slice of worker capacities.
func (p *Problem) CapacityW() []int {
	caps := make([]int, p.In.NumWorkers())
	for i := range p.In.Workers {
		caps[i] = p.In.Workers[i].Capacity
	}
	return caps
}

// CapacityT returns a fresh slice of task replication limits.
func (p *Problem) CapacityT() []int {
	caps := make([]int, p.In.NumTasks())
	for j := range p.In.Tasks {
		caps[j] = p.In.Tasks[j].Replication
	}
	return caps
}

// GraphFor builds the weighted bipartite graph of the problem under kind
// (left = workers, right = tasks), preserving edge indices, for use with the
// exact flow solver.  Each call allocates a fresh graph; the exact solver's
// hot path goes through graphForInto, which rebuilds the workspace's
// retained graph arena instead.
func (p *Problem) GraphFor(kind WeightKind) *bipartite.Graph {
	return p.fillGraph(bipartite.NewGraph(p.In.NumWorkers(), p.In.NumTasks()), kind)
}

// graphForInto is GraphFor rebuilding into ws's retained graph: after the
// first solve through a pinned (or pooled) workspace, laying out the flow
// reduction's input allocates nothing.
func (p *Problem) graphForInto(kind WeightKind, ws *Workspace) *bipartite.Graph {
	if ws.flowG == nil {
		ws.flowG = bipartite.NewGraph(p.In.NumWorkers(), p.In.NumTasks())
	} else {
		ws.flowG.Reset(p.In.NumWorkers(), p.In.NumTasks())
	}
	return p.fillGraph(ws.flowG, kind)
}

// fillGraph appends every eligible edge to g under kind, preserving edge
// indices.
func (p *Problem) fillGraph(g *bipartite.Graph, kind WeightKind) *bipartite.Graph {
	for i := range p.Edges {
		e := &p.Edges[i]
		g.AddEdge(e.W, e.T, e.Weight(kind))
	}
	return g
}

// Feasible verifies that sel (edge indices into p.Edges) is a valid
// assignment: indices in range and distinct, no duplicate worker-task pair,
// and both sides' degree constraints respected.  It returns nil or a
// descriptive error for the first violation.
func (p *Problem) Feasible(sel []int) error {
	// Flat slices, not maps: Feasible runs on every solver result and the
	// three maps the seed allocated dominated its cost on large markets.
	seen := make([]bool, len(p.Edges))
	degW := make([]int, p.In.NumWorkers())
	degT := make([]int, p.In.NumTasks())
	for _, ei := range sel {
		if ei < 0 || ei >= len(p.Edges) {
			return fmt.Errorf("core: edge index %d out of range", ei)
		}
		if seen[ei] {
			return fmt.Errorf("core: edge %d selected twice", ei)
		}
		seen[ei] = true
		e := &p.Edges[ei]
		degW[e.W]++
		degT[e.T]++
		if degW[e.W] > p.In.Workers[e.W].Capacity {
			return fmt.Errorf("core: worker %d over capacity %d", e.W, p.In.Workers[e.W].Capacity)
		}
		if degT[e.T] > p.In.Tasks[e.T].Replication {
			return fmt.Errorf("core: task %d over replication %d", e.T, p.In.Tasks[e.T].Replication)
		}
	}
	// Duplicate worker-task pairs can only arise from duplicate edges in
	// Edges, which NewProblem never creates; the distinct-index check above
	// therefore already excludes them.
	return nil
}

// Solver is the interface every assignment algorithm implements.  Solve
// returns edge indices into p.Edges.  Deterministic solvers ignore r;
// randomised and online ones draw arrival orders and tie-breaks from it, so
// the caller controls reproducibility.
type Solver interface {
	Name() string
	Solve(p *Problem, r *stats.RNG) ([]int, error)
}
