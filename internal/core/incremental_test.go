package core

import (
	"testing"
	"testing/quick"

	"repro/internal/benefit"
	"repro/internal/market"
	"repro/internal/stats"
)

// incWorker builds a worker profile over 3 categories from an RNG.
func incWorker(r *stats.RNG) market.Worker {
	w := market.Worker{
		Capacity:        r.IntRange(1, 3),
		Accuracy:        make([]float64, 3),
		Interest:        make([]float64, 3),
		ReservationWage: r.Float64Range(0, 3),
	}
	for c := 0; c < 3; c++ {
		w.Accuracy[c] = r.Float64Range(0.5, 0.95)
		w.Interest[c] = r.Float64()
	}
	n := r.IntRange(1, 3)
	w.Specialties = r.Perm(3)[:n]
	return w
}

// incTask builds a task from an RNG.
func incTask(r *stats.RNG) market.Task {
	return market.Task{
		Category:    r.Intn(3),
		Replication: r.IntRange(1, 3),
		Payment:     r.Float64Range(0, 10),
		Difficulty:  r.Float64Range(0, 0.8),
	}
}

func newInc(t *testing.T) *Incremental {
	t.Helper()
	inc, err := NewIncremental(3, 10, benefit.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return inc
}

func TestNewIncrementalValidation(t *testing.T) {
	if _, err := NewIncremental(0, 10, benefit.DefaultParams()); err == nil {
		t.Fatal("zero categories accepted")
	}
	if _, err := NewIncremental(3, 0, benefit.DefaultParams()); err == nil {
		t.Fatal("zero pay scale accepted")
	}
	if _, err := NewIncremental(3, 10, benefit.Params{Lambda: 9}); err == nil {
		t.Fatal("bad params accepted")
	}
}

func TestIncrementalAddAssignsImmediately(t *testing.T) {
	inc := newInc(t)
	r := stats.NewRNG(1)
	tid, err := inc.AddTask(incTask(r))
	if err != nil {
		t.Fatal(err)
	}
	if len(inc.Pairs()) != 0 {
		t.Fatal("task assigned with no workers")
	}
	w := incWorker(r)
	w.Specialties = []int{inc.inst.Tasks[tid].Category} // guarantee eligibility
	if _, err := inc.AddWorker(w); err != nil {
		t.Fatal(err)
	}
	if len(inc.Pairs()) == 0 {
		t.Fatal("eligible worker not assigned on join")
	}
	if err := inc.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestIncrementalRemoveWorkerRefills(t *testing.T) {
	inc := newInc(t)
	// One task with one slot, two eligible workers: removing the assigned
	// worker must hand the slot to the other.
	task := market.Task{Category: 0, Replication: 1, Payment: 5, Difficulty: 0}
	if _, err := inc.AddTask(task); err != nil {
		t.Fatal(err)
	}
	mkWorker := func(interest float64) market.Worker {
		return market.Worker{
			Capacity:    1,
			Accuracy:    []float64{0.8, 0.6, 0.6},
			Interest:    []float64{interest, 0, 0},
			Specialties: []int{0},
		}
	}
	strong, err := inc.AddWorker(mkWorker(0.9))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inc.AddWorker(mkWorker(0.5)); err != nil {
		t.Fatal(err)
	}
	pairs := inc.Pairs()
	if len(pairs) != 1 || pairs[0][0] != strong {
		t.Fatalf("expected strong worker assigned, got %v", pairs)
	}
	if err := inc.RemoveWorker(strong); err != nil {
		t.Fatal(err)
	}
	pairs = inc.Pairs()
	if len(pairs) != 1 || pairs[0][0] == strong {
		t.Fatalf("slot not refilled by the other worker: %v", pairs)
	}
	if err := inc.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestIncrementalRemoveTaskFreesWorkers(t *testing.T) {
	inc := newInc(t)
	w := market.Worker{
		Capacity:    1,
		Accuracy:    []float64{0.8, 0.8, 0.6},
		Interest:    []float64{0.9, 0.3, 0},
		Specialties: []int{0, 1},
	}
	wid, _ := inc.AddWorker(w)
	hot, _ := inc.AddTask(market.Task{Category: 0, Replication: 1, Payment: 5})
	if _, err := inc.AddTask(market.Task{Category: 1, Replication: 1, Payment: 5}); err != nil {
		t.Fatal(err)
	}
	// Worker capacity 1: it should hold the category-0 task (higher
	// interest).  Removing it must move the worker to the other task.
	if err := inc.RemoveTask(hot); err != nil {
		t.Fatal(err)
	}
	pairs := inc.Pairs()
	if len(pairs) != 1 || pairs[0][0] != wid {
		t.Fatalf("worker not re-placed: %v", pairs)
	}
	if err := inc.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestIncrementalErrors(t *testing.T) {
	inc := newInc(t)
	if err := inc.RemoveWorker(0); err == nil {
		t.Fatal("removing unknown worker accepted")
	}
	if err := inc.RemoveTask(0); err == nil {
		t.Fatal("removing unknown task accepted")
	}
	if _, err := inc.AddWorker(market.Worker{Capacity: -1}); err == nil {
		t.Fatal("bad worker accepted")
	}
	if _, err := inc.AddTask(market.Task{Category: 9, Replication: 1}); err == nil {
		t.Fatal("bad task accepted")
	}
	wid, _ := inc.AddWorker(incWorker(stats.NewRNG(1)))
	if err := inc.RemoveWorker(wid); err != nil {
		t.Fatal(err)
	}
	if err := inc.RemoveWorker(wid); err == nil {
		t.Fatal("double remove accepted")
	}
}

// Property: any event sequence leaves the structure feasible, maximal and
// with a consistent cached value.
func TestQuickIncrementalInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		inc, err := NewIncremental(3, 10, benefit.DefaultParams())
		if err != nil {
			return false
		}
		var workerIDs, taskIDs []int
		for step := 0; step < 40; step++ {
			switch r.Intn(4) {
			case 0:
				id, err := inc.AddWorker(incWorker(r))
				if err != nil {
					return false
				}
				workerIDs = append(workerIDs, id)
			case 1:
				id, err := inc.AddTask(incTask(r))
				if err != nil {
					return false
				}
				taskIDs = append(taskIDs, id)
			case 2:
				if len(workerIDs) > 0 {
					i := r.Intn(len(workerIDs))
					if err := inc.RemoveWorker(workerIDs[i]); err != nil {
						return false
					}
					workerIDs = append(workerIDs[:i], workerIDs[i+1:]...)
				}
			case 3:
				if len(taskIDs) > 0 {
					i := r.Intn(len(taskIDs))
					if err := inc.RemoveTask(taskIDs[i]); err != nil {
						return false
					}
					taskIDs = append(taskIDs[:i], taskIDs[i+1:]...)
				}
			}
			if err := inc.CheckInvariants(); err != nil {
				t.Logf("seed %d step %d: %v", seed, step, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// The repair-greedy value should track batch greedy on the same final
// market within a reasonable factor (aggregate across seeds).
func TestIncrementalTracksBatchGreedy(t *testing.T) {
	var incSum, batchSum float64
	for seed := uint64(1); seed <= 6; seed++ {
		r := stats.NewRNG(seed)
		inc, _ := NewIncremental(3, 10, benefit.DefaultParams())
		type liveW struct {
			id int
			w  market.Worker
		}
		type liveT struct {
			id int
			tk market.Task
		}
		var lw []liveW
		var lt []liveT
		for step := 0; step < 60; step++ {
			switch r.Intn(5) {
			case 0, 1:
				w := incWorker(r)
				id, _ := inc.AddWorker(w)
				lw = append(lw, liveW{id, w})
			case 2, 3:
				tk := incTask(r)
				id, _ := inc.AddTask(tk)
				lt = append(lt, liveT{id, tk})
			case 4:
				if len(lw) > 1 {
					i := r.Intn(len(lw))
					inc.RemoveWorker(lw[i].id)
					lw = append(lw[:i], lw[i+1:]...)
				}
			}
		}
		// Rebuild the final market as a batch instance.
		in := &market.Instance{Name: "final", NumCategories: 3, MaxPayment: 10}
		for i, e := range lw {
			w := e.w
			w.ID = i
			in.Workers = append(in.Workers, w)
		}
		for j, e := range lt {
			tk := e.tk
			tk.ID = j
			in.Tasks = append(in.Tasks, tk)
		}
		if len(in.Workers) == 0 || len(in.Tasks) == 0 {
			continue
		}
		if err := in.Validate(); err != nil {
			t.Fatal(err)
		}
		p := MustNewProblem(in, benefit.DefaultParams())
		gSel, _ := (Greedy{Kind: MutualWeight}).Solve(p, nil)
		incSum += inc.Value()
		batchSum += p.Evaluate(gSel).TotalMutual
	}
	if incSum < 0.85*batchSum {
		t.Fatalf("incremental value %v fell below 85%% of batch greedy %v", incSum, batchSum)
	}
}
