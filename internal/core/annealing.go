package core

import (
	"math"

	"repro/internal/stats"
)

// SimulatedAnnealing refines the Greedy solution with Metropolis-accepted
// exchange moves: random add / swap / rotate proposals, accepted when they
// improve the objective or, with probability exp(gain/T), when they do not.
// Temperature cools geometrically from T0 by Cooling per proposal.
//
// It exists as a design-choice ablation against LocalSearch: annealing can
// hop out of exchange-local optima the deterministic search is stuck in, at
// the price of more evaluations and a tuning surface.  The optimality
// experiment quantifies whether that buys anything on market-shaped
// instances (spoiler: local search's rotate move already captures most of
// it).
type SimulatedAnnealing struct {
	Kind WeightKind
	// Iters is the number of proposals; 0 means 30·|E| capped at 200k.
	Iters int
	// T0 is the initial temperature; 0 means 0.05 (benefit units).
	T0 float64
	// Cooling is the per-proposal temperature factor; 0 means a schedule
	// that lands near 1e-4·T0 at the final proposal.
	Cooling float64
}

// Name implements Solver.
func (SimulatedAnnealing) Name() string { return "annealing" }

// Solve implements Solver.  The RNG drives proposals and acceptance, so the
// result is reproducible per seed.
func (s SimulatedAnnealing) Solve(p *Problem, r *stats.RNG) ([]int, error) {
	if r == nil {
		r = stats.NewRNG(0)
	}
	sel, err := Greedy{Kind: s.Kind}.Solve(p, r)
	if err != nil {
		return nil, err
	}
	if len(p.Edges) == 0 {
		return sel, nil
	}
	iters := s.Iters
	if iters <= 0 {
		iters = 30 * len(p.Edges)
		if iters > 200000 {
			iters = 200000
		}
	}
	t0 := s.T0
	if t0 <= 0 {
		t0 = 0.05
	}
	cooling := s.Cooling
	if cooling <= 0 || cooling >= 1 {
		cooling = math.Pow(1e-4, 1/float64(iters))
	}

	chosen := make([]bool, len(p.Edges))
	capW := p.CapacityW()
	capT := p.CapacityT()
	for _, ei := range sel {
		chosen[ei] = true
		capW[p.Edges[ei].W]--
		capT[p.Edges[ei].T]--
	}
	weight := func(ei int) float64 { return p.Edges[ei].Weight(s.Kind) }

	// Track the best configuration seen, so cooling noise never ships a
	// worse-than-greedy answer.
	cur := 0.0
	for ei, ok := range chosen {
		if ok {
			cur += weight(ei)
		}
	}
	best := cur
	bestChosen := append([]bool(nil), chosen...)

	cheapestChosenW := func(w int) int {
		bi, bw := -1, 0.0
		for _, ei := range p.AdjW(w) {
			if chosen[ei] && (bi == -1 || weight(int(ei)) < bw) {
				bi, bw = int(ei), weight(int(ei))
			}
		}
		return bi
	}
	cheapestChosenT := func(t int) int {
		bi, bw := -1, 0.0
		for _, ei := range p.AdjT(t) {
			if chosen[ei] && (bi == -1 || weight(int(ei)) < bw) {
				bi, bw = int(ei), weight(int(ei))
			}
		}
		return bi
	}

	temp := t0
	for it := 0; it < iters; it++ {
		ei := r.Intn(len(p.Edges))
		e := &p.Edges[ei]
		var gain float64
		var evictions [2]int
		nEvict := 0

		if chosen[ei] {
			// Propose eviction (pure removal; re-adds come from later
			// proposals).  Usually negative gain — the uphill move that
			// lets annealing escape local optima.
			gain = -weight(ei)
			evictions[0], nEvict = ei, 1
			if accept(r, gain, temp) {
				chosen[ei] = false
				capW[e.W]++
				capT[e.T]++
				cur += gain
			}
		} else {
			needW := capW[e.W] == 0
			needT := capT[e.T] == 0
			gain = weight(ei)
			ok := true
			if needW {
				out := cheapestChosenW(e.W)
				if out < 0 {
					ok = false
				} else {
					gain -= weight(out)
					evictions[nEvict] = out
					nEvict++
				}
			}
			if ok && needT {
				out := cheapestChosenT(e.T)
				if out < 0 || (nEvict > 0 && out == evictions[0]) {
					// Shared blocker frees both sides at once.
					if out >= 0 {
						// already accounted
					} else {
						ok = false
					}
				} else if out >= 0 {
					gain -= weight(out)
					evictions[nEvict] = out
					nEvict++
				}
			}
			if ok && accept(r, gain, temp) {
				for k := 0; k < nEvict; k++ {
					out := evictions[k]
					oe := &p.Edges[out]
					chosen[out] = false
					capW[oe.W]++
					capT[oe.T]++
				}
				chosen[ei] = true
				capW[e.W]--
				capT[e.T]--
				cur += gain
			}
		}

		if cur > best {
			best = cur
			copy(bestChosen, chosen)
		}
		temp *= cooling
	}

	out := make([]int, 0, len(sel))
	for ei, ok := range bestChosen {
		if ok {
			out = append(out, ei)
		}
	}
	return out, nil
}

// accept implements the Metropolis criterion.
func accept(r *stats.RNG, gain, temp float64) bool {
	if gain >= 0 {
		return true
	}
	if temp <= 0 {
		return false
	}
	return r.Float64() < math.Exp(gain/temp)
}
