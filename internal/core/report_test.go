package core

import (
	"math"
	"testing"

	"repro/internal/benefit"
	"repro/internal/market"
	"repro/internal/stats"
)

func TestByCategoryAccounting(t *testing.T) {
	p := smallProblem(t, 91)
	sel, _ := (Greedy{Kind: MutualWeight}).Solve(p, nil)
	reps := p.ByCategory(sel)
	if len(reps) != p.In.NumCategories {
		t.Fatalf("reports = %d", len(reps))
	}
	var slots, filled, tasks int
	for _, r := range reps {
		slots += r.Slots
		filled += r.Filled
		tasks += r.Tasks
		if r.Filled > r.Slots {
			t.Fatalf("category %d over-filled", r.Category)
		}
		if r.MeanMutual < 0 || r.MeanMutual > 1 {
			t.Fatalf("category %d mean mutual %v", r.Category, r.MeanMutual)
		}
	}
	if slots != p.In.TotalSlots() || tasks != p.In.NumTasks() || filled != len(sel) {
		t.Fatalf("totals: slots %d/%d tasks %d/%d filled %d/%d",
			slots, p.In.TotalSlots(), tasks, p.In.NumTasks(), filled, len(sel))
	}
}

func TestByCategoryEmptyAssignment(t *testing.T) {
	p := smallProblem(t, 92)
	reps := p.ByCategory(nil)
	for _, r := range reps {
		if r.Filled != 0 || r.MeanMutual != 0 {
			t.Fatal("empty assignment should report zero fills")
		}
	}
}

func TestStarvedCategories(t *testing.T) {
	// A market where one category has demand but no eligible workers.
	in := &market.Instance{
		Name:          "starved",
		NumCategories: 2,
		Workers: []market.Worker{
			{ID: 0, Capacity: 3, Accuracy: []float64{0.8, 0.8}, Interest: []float64{0.5, 0.5}, Specialties: []int{0}},
		},
		Tasks: []market.Task{
			{ID: 0, Category: 0, Replication: 1, Payment: 1},
			{ID: 1, Category: 1, Replication: 2, Payment: 1},
		},
		MaxPayment: 1,
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	p := MustNewProblem(in, benefit.DefaultParams())
	sel, _ := (Greedy{Kind: MutualWeight}).Solve(p, nil)
	starved := p.StarvedCategories(sel, 0.99)
	if len(starved) != 1 || starved[0].Category != 1 {
		t.Fatalf("starved = %+v", starved)
	}
	if starved[0].EligibleWorkers != 0 {
		t.Fatal("category 1 should have no eligible workers")
	}
	// With a permissive threshold nothing is starved.
	if got := p.StarvedCategories(sel, 0.0); len(got) != 0 {
		t.Fatalf("threshold 0 should starve nothing, got %+v", got)
	}
}

func TestStarvedCategoriesSorted(t *testing.T) {
	p := smallProblem(t, 93)
	sel, _ := (Random{}).Solve(p, stats.NewRNG(1))
	starved := p.StarvedCategories(sel, 1.0) // everything below 100% is starved
	for i := 1; i < len(starved); i++ {
		ci := float64(starved[i].Filled) / float64(starved[i].Slots)
		cp := float64(starved[i-1].Filled) / float64(starved[i-1].Slots)
		if ci < cp {
			t.Fatal("starved list not sorted by coverage")
		}
	}
}

func TestGiniWorkerBenefit(t *testing.T) {
	p := smallProblem(t, 94)
	if g := p.GiniWorkerBenefit(nil); g != 0 {
		t.Fatalf("empty assignment Gini = %v", g)
	}
	sel, _ := (Greedy{Kind: MutualWeight}).Solve(p, nil)
	g := p.GiniWorkerBenefit(sel)
	if g < 0 || g > 1 {
		t.Fatalf("Gini = %v", g)
	}
	// Quality-only concentrates benefit on fewer workers, so its Gini
	// should not be lower than random's spread-out allocation (aggregate
	// across seeds to kill noise).
	var qoSum, rndSum float64
	for seed := uint64(1); seed <= 8; seed++ {
		pp := smallProblem(t, seed)
		qoSel, _ := QualityOnly().Solve(pp, nil)
		rndSel, _ := (Random{}).Solve(pp, stats.NewRNG(seed))
		qoSum += pp.GiniWorkerBenefit(qoSel)
		rndSum += pp.GiniWorkerBenefit(rndSel)
	}
	if qoSum < rndSum-0.5 {
		t.Fatalf("quality-only Gini %v unexpectedly far below random %v", qoSum, rndSum)
	}
	if math.IsNaN(g) {
		t.Fatal("NaN Gini")
	}
}
