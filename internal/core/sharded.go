package core

import (
	"runtime"
	"sort"
	"sync"

	"repro/internal/stats"
)

// ShardedGreedy is the parallel variant of Greedy for very large markets:
// tasks are partitioned into shards, each shard runs edge-greedy
// concurrently against the *full* worker capacities, and a sequential
// reconciliation pass resolves the worker over-subscription the optimistic
// shards created (keep each worker's heaviest picks, then re-fill freed
// task slots greedily).
//
// The result is always feasible; quality tracks Greedy closely because the
// reconciliation pass re-ranks exactly the edges the shards fought over.
// The speed-up comes from parallelising the dominant O(E log E) sort.
type ShardedGreedy struct {
	Kind WeightKind
	// Shards is the parallelism degree; 0 means GOMAXPROCS capped at 16.
	Shards int
}

// Name implements Solver.
func (ShardedGreedy) Name() string { return "sharded-greedy" }

// Solve implements Solver.  Deterministic regardless of scheduling: shard
// results are merged in shard order and reconciliation is value-ordered.
func (s ShardedGreedy) Solve(p *Problem, _ *stats.RNG) ([]int, error) {
	shards := s.Shards
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
		if shards > 16 {
			shards = 16
		}
	}
	if shards < 1 {
		shards = 1
	}
	nT := p.In.NumTasks()
	if nT == 0 || len(p.Edges) == 0 {
		return nil, nil
	}
	if shards > nT {
		shards = nT
	}
	weight := func(ei int) float64 { return p.Edges[ei].Weight(s.Kind) }

	// Phase 1 (parallel): per-shard optimistic greedy.  Shard k owns tasks
	// with t % shards == k; every shard assumes it has each worker's full
	// capacity.
	shardPicks := make([][]int, shards)
	var wg sync.WaitGroup
	for k := 0; k < shards; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			var edges []int
			for t := k; t < nT; t += shards {
				for _, ei := range p.AdjT(t) {
					edges = append(edges, int(ei))
				}
			}
			sort.Slice(edges, func(a, b int) bool {
				wa, wb := weight(edges[a]), weight(edges[b])
				if wa != wb {
					return wa > wb
				}
				return edges[a] < edges[b]
			})
			capW := p.CapacityW()
			capT := p.CapacityT()
			var picks []int
			for _, ei := range edges {
				e := &p.Edges[ei]
				if capW[e.W] > 0 && capT[e.T] > 0 {
					capW[e.W]--
					capT[e.T]--
					picks = append(picks, ei)
				}
			}
			shardPicks[k] = picks
		}(k)
	}
	wg.Wait()

	// Phase 2 (sequential): reconcile.  Union the shard picks sorted by
	// weight and re-run the capacity-respecting take — workers that were
	// over-subscribed keep their heaviest edges.
	var union []int
	for _, picks := range shardPicks {
		union = append(union, picks...)
	}
	sort.Slice(union, func(a, b int) bool {
		wa, wb := weight(union[a]), weight(union[b])
		if wa != wb {
			return wa > wb
		}
		return union[a] < union[b]
	})
	capW := p.CapacityW()
	capT := p.CapacityT()
	taken := make([]bool, len(p.Edges))
	var sel []int
	for _, ei := range union {
		e := &p.Edges[ei]
		if !taken[ei] && capW[e.W] > 0 && capT[e.T] > 0 {
			taken[ei] = true
			capW[e.W]--
			capT[e.T]--
			sel = append(sel, ei)
		}
	}

	// Phase 3 (sequential): fill any slots the reconciliation freed, using
	// each still-open task's best remaining edges.
	for t := 0; t < nT; t++ {
		if capT[t] == 0 {
			continue
		}
		adj := p.AdjT(t)
		cands := make([]int, 0, len(adj))
		for _, ei := range adj {
			if !taken[ei] && capW[p.Edges[ei].W] > 0 {
				cands = append(cands, int(ei))
			}
		}
		sort.Slice(cands, func(a, b int) bool {
			wa, wb := weight(cands[a]), weight(cands[b])
			if wa != wb {
				return wa > wb
			}
			return cands[a] < cands[b]
		})
		for _, ei := range cands {
			if capT[t] == 0 {
				break
			}
			e := &p.Edges[ei]
			if capW[e.W] > 0 {
				taken[ei] = true
				capW[e.W]--
				capT[t]--
				sel = append(sel, ei)
			}
		}
	}
	return sel, nil
}
