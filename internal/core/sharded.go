package core

import (
	"runtime"
	"sync"

	"repro/internal/stats"
)

// ShardedGreedy is the parallel variant of Greedy for very large markets:
// tasks are partitioned into shards, each shard runs edge-greedy
// concurrently against the *full* worker capacities, and a sequential
// reconciliation pass resolves the worker over-subscription the optimistic
// shards created (keep each worker's heaviest picks, then re-fill freed
// task slots greedily).
//
// The result is always feasible; quality tracks Greedy closely because the
// reconciliation pass re-ranks exactly the edges the shards fought over.
// The speed-up comes from parallelising the dominant O(E log E) sort.
type ShardedGreedy struct {
	Kind WeightKind
	// Shards is the parallelism degree; 0 means GOMAXPROCS capped at 16.
	Shards int
	// WS optionally pins a reusable workspace for the sequential phases;
	// each shard goroutine borrows its own from the package pool.
	WS *Workspace
}

// Name implements Solver.
func (ShardedGreedy) Name() string { return "sharded-greedy" }

// Solve implements Solver.  Deterministic regardless of scheduling: shard
// results are merged in shard order and reconciliation is value-ordered.
func (s ShardedGreedy) Solve(p *Problem, _ *stats.RNG) ([]int, error) {
	shards := s.Shards
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
		if shards > 16 {
			shards = 16
		}
	}
	if shards < 1 {
		shards = 1
	}
	nT := p.In.NumTasks()
	if nT == 0 || len(p.Edges) == 0 {
		return nil, nil
	}
	// Clamp to both dimensions: with fewer tasks — or, in degenerate
	// markets, fewer edges — than shards, the surplus shards would only
	// spin empty goroutines.
	if shards > nT {
		shards = nT
	}
	if shards > len(p.Edges) {
		shards = len(p.Edges)
	}

	ws, pooled := acquireWorkspace(s.WS)
	defer releaseWorkspace(ws, pooled)

	// Phase 1 (parallel): per-shard optimistic greedy.  Shard k owns tasks
	// with t % shards == k; every shard assumes it has each worker's full
	// capacity.  Each goroutine borrows a private workspace from the pool
	// and copies its picks out before returning it.
	shardPicks := make([][]int, shards)
	var wg sync.WaitGroup
	for k := 0; k < shards; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			sws, spooled := acquireWorkspace(nil)
			defer releaseWorkspace(sws, spooled)
			n := 0
			for t := k; t < nT; t += shards {
				n += len(p.AdjT(t))
			}
			sws.order = growI32(sws.order, n)[:0]
			edges := sws.order
			for t := k; t < nT; t += shards {
				edges = append(edges, p.AdjT(t)...)
			}
			sortEdgesByWeightWS(p, s.Kind, edges, sws)
			sws.sel = growInts(sws.sel, 0)[:0]
			sws.sel = takeFeasible(p, edges, p.capacityWInto(sws), p.capacityTInto(sws), sws.sel)
			shardPicks[k] = copySel(sws.sel)
		}(k)
	}
	wg.Wait()

	// Phase 2 (sequential): reconcile.  Union the shard picks and run the
	// keep-heaviest pass against the true capacities — workers that were
	// over-subscribed keep their heaviest edges.  Ref carries the edge
	// index, whose uniqueness makes the take order strict.
	n := 0
	for _, picks := range shardPicks {
		n += len(picks)
	}
	ws.picks = growPicks(ws.picks, n)[:0]
	union := ws.picks
	for _, picks := range shardPicks {
		for _, ei := range picks {
			e := &p.Edges[ei]
			union = append(union, PickEdge{W: int32(e.W), T: int32(e.T), Weight: e.Weight(s.Kind), Ref: int32(ei)})
		}
	}
	capW := p.capacityWInto(ws)
	capT := p.capacityTInto(ws)
	k := ReconcileTake(union, capW, capT)
	ws.chosen = growBoolZero(ws.chosen, len(p.Edges))
	taken := ws.chosen
	ws.sel = growInts(ws.sel, 0)[:0]
	sel := ws.sel
	for i := 0; i < k; i++ {
		taken[union[i].Ref] = true
		sel = append(sel, int(union[i].Ref))
	}

	// Phase 3 (sequential): refill any slots the reconciliation freed with
	// the heaviest remaining edges whose endpoints both still have room.
	// Same primitive, residual capacities: only tasks with capT > 0 and
	// workers with capW > 0 contribute candidates.  The winners consumed
	// union[:k] above, so the pick buffer can be reused for candidates.
	cands := union[:0]
	for t := 0; t < nT; t++ {
		if capT[t] == 0 {
			continue
		}
		for _, ei := range p.AdjT(t) {
			e := &p.Edges[ei]
			if !taken[ei] && capW[e.W] > 0 {
				cands = append(cands, PickEdge{W: int32(e.W), T: int32(e.T), Weight: e.Weight(s.Kind), Ref: ei})
			}
		}
	}
	kf := ReconcileTake(cands, capW, capT)
	for i := 0; i < kf; i++ {
		sel = append(sel, int(cands[i].Ref))
	}
	ws.picks = cands[:0]
	ws.sel = sel
	return copySel(sel), nil
}
