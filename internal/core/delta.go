package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/stats"
)

// Delta describes how the current Problem differs from the previous one a
// delta-aware solver saw: which workers/tasks survived (and where they
// moved, since instance indices are dense and shift on every churn), which
// departed, and which arrived.  The platform's State tracks per-round churn
// and builds one of these per CloseRound so the solver can repair its
// carried matching instead of re-solving from scratch.
//
// Index conventions: "previous" indices refer to the Problem of the last
// delta-or-full solve the same solver instance performed; "current" indices
// refer to the Problem being solved now.  A solver validates the delta's
// shape against its carried state and falls back to a full solve on any
// mismatch, so a wrong (but well-formed) Delta degrades performance, never
// correctness.
type Delta struct {
	// PrevWorker[i] is the previous index of current worker i, or -1 when
	// the worker arrived this round.  len(PrevWorker) == NumWorkers().
	PrevWorker []int32
	// PrevTask[j] is the previous index of current task j, or -1 when the
	// task was posted this round.  len(PrevTask) == NumTasks().
	PrevTask []int32
	// RemovedWorkers lists previous worker indices absent this round.
	RemovedWorkers []int32
	// RemovedTasks lists previous task indices absent this round.
	RemovedTasks []int32
	// AddedWorkers lists current worker indices with PrevWorker[i] == -1.
	AddedWorkers []int32
	// AddedTasks lists current task indices with PrevTask[j] == -1.
	AddedTasks []int32
	// ChangedEdges optionally hints current edge indices whose weights
	// changed.  Advisory only: the incremental solver re-derives weight
	// changes itself with an O(E) sweep, so correctness never depends on
	// the caller noticing a change (a MaxPayment shift re-prices every
	// edge at once, for example).
	ChangedEdges []int32
}

// Empty reports whether the delta describes zero churn.
func (d *Delta) Empty() bool {
	return d != nil &&
		len(d.RemovedWorkers) == 0 && len(d.RemovedTasks) == 0 &&
		len(d.AddedWorkers) == 0 && len(d.AddedTasks) == 0
}

// DeltaSolver is the incremental extension of Solver: SolveDeltaCtx solves
// the current problem given a description of how it differs from the
// previous one, reusing carried state where the delta allows.  The result
// contract is identical to Solve — a complete feasible selection over p —
// and must hold for any delta, including a nil one (treated as "no prior
// correspondence": full solve).
type DeltaSolver interface {
	Solver
	SolveDeltaCtx(ctx context.Context, p *Problem, d *Delta, r *stats.RNG) ([]int, error)
}

// safeSolveDelta is the delta-path twin of safeSolve: panic-fenced,
// upfront-cancellation-checked.
func safeSolveDelta(ctx context.Context, p *Problem, s DeltaSolver, d *Delta, r *stats.RNG) (sel []int, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			sel, err = nil, fmt.Errorf("core: solver %s panicked: %v", s.Name(), rec)
		}
	}()
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return s.SolveDeltaCtx(ctx, p, d, r)
}

// RunDeltaCtx is RunCtx for delta-aware solves: when s implements
// DeltaSolver and a delta is supplied, the solve goes through
// SolveDeltaCtx; otherwise it degrades transparently to RunCtx.  Every
// result passes the same feasibility gate and evaluation as RunCtx — the
// incremental path earns no shortcut around validation.
func RunDeltaCtx(ctx context.Context, p *Problem, s Solver, d *Delta, r *stats.RNG) ([]int, Metrics, error) {
	ds, ok := s.(DeltaSolver)
	if !ok || d == nil {
		return RunCtx(ctx, p, s, r)
	}
	start := time.Now()
	sel, err := safeSolveDelta(ctx, p, ds, d, r)
	elapsed := time.Since(start)
	if err != nil {
		return nil, Metrics{}, fmt.Errorf("core: %s: %w", s.Name(), err)
	}
	if err := p.Feasible(sel); err != nil {
		return nil, Metrics{}, fmt.Errorf("core: %s returned infeasible assignment: %w", s.Name(), err)
	}
	m := p.Evaluate(sel)
	m.Algorithm = s.Name()
	m.Elapsed = elapsed
	return sel, m, nil
}
