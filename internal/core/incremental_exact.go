package core

import (
	"context"
	"errors"
	"slices"
	"sync"

	"repro/internal/bipartite"
	"repro/internal/stats"
)

// DefaultDirtyThreshold is the dirty-fraction cutoff above which the
// incremental solver abandons matching repair and re-solves in full: once
// roughly a quarter of the edge set is touched, replaying the churn
// through surgeries costs more than one warm exact solve.
const DefaultDirtyThreshold = 0.25

// IncrementalExact is the `incremental` solver: exact maximum-weight
// assignment with cross-round state.  It keeps a bipartite.DeltaMatcher —
// the current matching plus its dual prices — alive between solves, and
// serves a SolveDeltaCtx round by surgically applying the round's churn
// (departures, arrivals, re-priced edges) and re-augmenting only from the
// dirty frontier.  The objective is bit-identical to Exact/ExactSerial on
// every round: the matcher's potentials certify optimality of the same
// scaled-integer objective the cold kernel maximises.
//
// Correctness never leans on the caller's Delta being right.  The delta's
// shape is validated against carried state, edge-weight changes are
// re-derived internally with an O(E) sweep (so a global re-pricing like a
// MaxPayment shift is caught even if unreported), and any inconsistency —
// or a dirty fraction above DirtyThreshold — falls back to a full solve
// through the warm-start kernel path.  Plain Solve/SolveCtx always run the
// full path and (re)seed the carried state.
//
// An IncrementalExact is stateful and must not run concurrent solves; the
// platform's round mutex provides that.  LastReport is safe to read from
// other goroutines.
type IncrementalExact struct {
	// Kind selects the optimised value; MutualWeight is the paper's
	// objective.
	Kind WeightKind
	// DirtyThreshold overrides DefaultDirtyThreshold when positive.  A
	// value ≥ 1 effectively disables the fallback (the dirty fraction can
	// reach 1 on a full re-pricing, which still falls back at exactly 1
	// unless the threshold exceeds it).
	DirtyThreshold float64
	// WS optionally pins a core workspace for the full-solve path.
	WS *Workspace

	mu   sync.Mutex
	last SolveReport

	m bipartite.DeltaMatcher
	// haveState is false until a solve completes, and is cleared at the
	// start of every state mutation so a panic or cancellation mid-surgery
	// poisons the carried state instead of silently corrupting the next
	// round.
	haveState bool
	// slotW/slotT map the previous problem's indices to matcher slots;
	// workerOf/taskOf invert the current round's mapping (slot → current
	// index, -1 for dead slots).  newSlotW/newSlotT are the double buffers
	// the next mapping is built into.
	slotW, slotT       []int32
	newSlotW, newSlotT []int32
	workerOf, taskOf   []int32
	nPrevW, nPrevT     int

	changedArcs  []int32
	changedCosts []int64
}

// NewIncrementalExact returns the registry's configuration.
func NewIncrementalExact() *IncrementalExact {
	return &IncrementalExact{Kind: MutualWeight}
}

// Name implements Solver.
func (s *IncrementalExact) Name() string { return "incremental" }

// LastReport implements SolveReporter.
func (s *IncrementalExact) LastReport() SolveReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.last
}

func (s *IncrementalExact) setReport(rep SolveReport) {
	rep.ServedBy = s.Name()
	s.mu.Lock()
	s.last = rep
	s.mu.Unlock()
}

// Solve implements Solver: a full (state-seeding) solve.
func (s *IncrementalExact) Solve(p *Problem, _ *stats.RNG) ([]int, error) {
	sel, info, err := s.fullSolve(nil, p)
	s.setReport(SolveReport{WarmStarted: info.Warm, DirtyFraction: 1})
	return sel, err
}

// SolveCtx implements ContextSolver; cancellation is polled once per
// augmentation inside the kernel.
func (s *IncrementalExact) SolveCtx(ctx context.Context, p *Problem, _ *stats.RNG) ([]int, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if ctx.Done() == nil {
		ctx = nil
	}
	sel, info, err := s.fullSolve(ctx, p)
	s.setReport(SolveReport{WarmStarted: info.Warm, DirtyFraction: 1})
	return sel, err
}

// SolveDeltaCtx implements DeltaSolver: the incremental path.  It applies
// the round's churn to the carried matching, re-derives edge re-pricings,
// and re-augments from the dirty frontier; it falls back to a full warm
// solve when it carries no state, the delta doesn't validate, or the dirty
// fraction crosses the threshold.
func (s *IncrementalExact) SolveDeltaCtx(ctx context.Context, p *Problem, d *Delta, _ *stats.RNG) ([]int, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if ctx.Done() == nil {
			ctx = nil
		}
	}
	var rep SolveReport
	sel, err := s.solveDelta(ctx, p, d, &rep)
	s.setReport(rep)
	return sel, err
}

func (s *IncrementalExact) solveDelta(ctx context.Context, p *Problem, d *Delta, rep *SolveReport) ([]int, error) {
	dirty, ok := s.prepareDelta(p, d)
	rep.DirtyFraction = dirty
	threshold := s.DirtyThreshold
	if threshold <= 0 {
		threshold = DefaultDirtyThreshold
	}
	if !ok || dirty > threshold {
		// Only a fallback when state existed and went unused; the first-ever
		// solve is a plain cold start, not a degradation.
		rep.FullSolveFallback = s.haveState
		sel, info, err := s.fullSolve(ctx, p)
		rep.WarmStarted = info.Warm
		return sel, err
	}
	rep.WarmStarted = true
	sel, err := s.applyDelta(ctx, p, d)
	if err != nil {
		if errors.Is(err, bipartite.ErrStopped) && ctx != nil && ctx.Err() != nil {
			return nil, ctx.Err()
		}
		// Surgery went somewhere the invariants disown: rebuild from
		// scratch rather than serve from a suspect matcher.
		rep.WarmStarted = false
		rep.FullSolveFallback = true
		sel, info, ferr := s.fullSolve(ctx, p)
		rep.WarmStarted = info.Warm
		return sel, ferr
	}
	return sel, nil
}

// prepareDelta validates d against the carried state and measures the
// dirty fraction without mutating anything.  It also retags surviving
// arcs with their current edge indices and stashes re-priced arcs for
// applyDelta.  ok=false means the delta path must not run.
func (s *IncrementalExact) prepareDelta(p *Problem, d *Delta) (dirty float64, ok bool) {
	if !s.haveState || d == nil {
		return 1, false
	}
	nW, nT := p.In.NumWorkers(), p.In.NumTasks()
	if len(d.PrevWorker) != nW || len(d.PrevTask) != nT {
		return 1, false
	}
	survivedW, survivedT := 0, 0
	s.newSlotW = growI32(s.newSlotW, nW)
	for i, pi := range d.PrevWorker {
		if pi < 0 {
			s.newSlotW[i] = -1
			continue
		}
		if int(pi) >= s.nPrevW {
			return 1, false
		}
		s.newSlotW[i] = s.slotW[pi]
		survivedW++
	}
	s.newSlotT = growI32(s.newSlotT, nT)
	for j, pj := range d.PrevTask {
		if pj < 0 {
			s.newSlotT[j] = -1
			continue
		}
		if int(pj) >= s.nPrevT {
			return 1, false
		}
		s.newSlotT[j] = s.slotT[pj]
		survivedT++
	}
	if survivedW+len(d.RemovedWorkers) != s.nPrevW || survivedT+len(d.RemovedTasks) != s.nPrevT {
		return 1, false
	}
	for _, rw := range d.RemovedWorkers {
		if int(rw) >= s.nPrevW || rw < 0 {
			return 1, false
		}
	}
	for _, rt := range d.RemovedTasks {
		if int(rt) >= s.nPrevT || rt < 0 {
			return 1, false
		}
	}

	// Rebuild the slot → current-index inverses for this round.
	s.workerOf = growI32(s.workerOf, s.m.NumLeftSlots())
	for i := range s.workerOf {
		s.workerOf[i] = -1
	}
	s.taskOf = growI32(s.taskOf, s.m.NumRightSlots())
	for i := range s.taskOf {
		s.taskOf[i] = -1
	}
	for i := 0; i < nW; i++ {
		if slot := s.newSlotW[i]; slot >= 0 {
			s.workerOf[slot] = int32(i)
		}
	}
	for j := 0; j < nT; j++ {
		if slot := s.newSlotT[j]; slot >= 0 {
			s.taskOf[slot] = int32(j)
		}
	}

	// Dirty accounting: arcs lost to departures, arcs arriving with new
	// entities (endpoint double-counting only over-estimates, which errs
	// toward the safe fallback), and re-priced survivors found by the
	// authoritative O(E) sweep below.
	touched := 0
	for _, rw := range d.RemovedWorkers {
		touched += s.m.DegreeLeft(int(s.slotW[rw]))
	}
	for _, rt := range d.RemovedTasks {
		touched += s.m.DegreeRight(int(s.slotT[rt]))
	}
	for _, aw := range d.AddedWorkers {
		if int(aw) >= nW || aw < 0 || s.newSlotW[aw] >= 0 {
			return 1, false
		}
		touched += len(p.AdjW(int(aw)))
	}
	for _, at := range d.AddedTasks {
		if int(at) >= nT || at < 0 || s.newSlotT[at] >= 0 {
			return 1, false
		}
		touched += len(p.AdjT(int(at)))
	}

	s.changedArcs = s.changedArcs[:0]
	s.changedCosts = s.changedCosts[:0]
	for i := 0; i < nW; i++ {
		slot := s.newSlotW[i]
		if slot < 0 {
			continue
		}
		if s.m.LeftCapacity(int(slot)) != int64(p.In.Workers[i].Capacity) {
			return 1, false
		}
		adj := p.AdjW(i)
		surviving := 0
		for _, a := range s.m.ArcsOfLeft(int(slot)) {
			_, r, cost, _, _ := s.m.Arc(a)
			t := s.taskOf[r]
			if t < 0 {
				continue // partner departs this round
			}
			e, found := findEdgeByTask(p, adj, int(t))
			if !found {
				return 1, false // eligibility vanished without a departure
			}
			surviving++
			s.m.SetArcExt(a, int32(e))
			if newCost := bipartite.ScaledCost(p.Edges[e].Weight(s.Kind)); newCost != cost {
				s.changedArcs = append(s.changedArcs, a)
				s.changedCosts = append(s.changedCosts, newCost)
			}
		}
		// Surviving arcs plus this worker's edges to *new* tasks must
		// account for the whole adjacency; a shortfall means an edge
		// appeared between surviving entities, which surgery cannot see.
		newPartners := 0
		for _, ei := range adj {
			if s.newSlotT[p.Edges[ei].T] < 0 || d.PrevTask[p.Edges[ei].T] < 0 {
				newPartners++
			}
		}
		if surviving+newPartners != len(adj) {
			return 1, false
		}
	}
	for j := 0; j < nT; j++ {
		if slot := s.newSlotT[j]; slot >= 0 {
			if s.m.RightCapacity(int(slot)) != int64(p.In.Tasks[j].Replication) {
				return 1, false
			}
		}
	}
	touched += len(s.changedArcs)
	den := len(p.Edges)
	if den == 0 {
		den = 1
	}
	return float64(touched) / float64(den), true
}

// findEdgeByTask binary-searches a worker adjacency (sorted by task index)
// for the edge to task t.
func findEdgeByTask(p *Problem, adj []int32, t int) (int, bool) {
	lo, hi := 0, len(adj)
	for lo < hi {
		mid := (lo + hi) / 2
		if p.Edges[adj[mid]].T < t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(adj) && p.Edges[adj[lo]].T == t {
		return int(adj[lo]), true
	}
	return 0, false
}

// applyDelta runs the actual surgery: departures, arrivals, re-pricings,
// then dirty-frontier re-augmentation.  prepareDelta has already validated
// everything it consumes.
func (s *IncrementalExact) applyDelta(ctx context.Context, p *Problem, d *Delta) ([]int, error) {
	s.haveState = false // poisoned until the surgery completes
	for _, rw := range d.RemovedWorkers {
		s.m.RemoveLeft(int(s.slotW[rw]))
	}
	for _, rt := range d.RemovedTasks {
		s.m.RemoveRight(int(s.slotT[rt]))
	}
	for _, at := range d.AddedTasks {
		slot := s.m.AddRight(p.In.Tasks[at].Replication)
		s.newSlotT[at] = int32(slot)
	}
	for _, aw := range d.AddedWorkers {
		slot := s.m.AddLeft(p.In.Workers[aw].Capacity)
		s.newSlotW[aw] = int32(slot)
		for _, ei := range p.AdjW(int(aw)) {
			e := &p.Edges[ei]
			s.m.AddArc(slot, int(s.newSlotT[e.T]), bipartite.ScaledCost(e.Weight(s.Kind)), ei)
		}
	}
	for _, at := range d.AddedTasks {
		for _, ei := range p.AdjT(int(at)) {
			e := &p.Edges[ei]
			if d.PrevWorker[e.W] >= 0 { // new-worker arcs were added above
				s.m.AddArc(int(s.newSlotW[e.W]), int(s.newSlotT[at]), bipartite.ScaledCost(e.Weight(s.Kind)), ei)
			}
		}
	}
	for k, a := range s.changedArcs {
		s.m.SetArcCost(a, s.changedCosts[k])
	}
	if ctx != nil {
		s.m.Stop = func() bool { return ctx.Err() != nil }
		defer func() { s.m.Stop = nil }()
	}
	if _, err := s.m.Reoptimize(); err != nil {
		return nil, err
	}
	s.slotW, s.newSlotW = s.newSlotW, s.slotW
	s.slotT, s.newSlotT = s.newSlotT, s.slotT
	s.nPrevW, s.nPrevT = p.In.NumWorkers(), p.In.NumTasks()
	s.haveState = true
	return s.extract(), nil
}

// fullSolve (re)seeds the matcher through the warm-start kernel path and
// rebuilds the identity slot mappings.
func (s *IncrementalExact) fullSolve(ctx context.Context, p *Problem) ([]int, bipartite.WarmInfo, error) {
	s.haveState = false
	ws, pooled := acquireWorkspace(s.WS)
	defer releaseWorkspace(ws, pooled)
	g := p.graphForInto(s.Kind, ws)
	if ws.flowWS == nil {
		ws.flowWS = bipartite.NewFlowWorkspace()
	}
	if ctx != nil {
		ws.flowWS.Stop = func() bool { return ctx.Err() != nil }
		defer func() { ws.flowWS.Stop = nil }()
	}
	info, err := s.m.SolveFull(g, p.capacityWInto(ws), p.capacityTInto(ws), ws.flowWS)
	if err != nil {
		if errors.Is(err, bipartite.ErrStopped) && ctx != nil && ctx.Err() != nil {
			return nil, info, ctx.Err()
		}
		return nil, info, err
	}
	nW, nT := p.In.NumWorkers(), p.In.NumTasks()
	s.slotW = growI32(s.slotW, nW)
	for i := range s.slotW {
		s.slotW[i] = int32(i)
	}
	s.slotT = growI32(s.slotT, nT)
	for j := range s.slotT {
		s.slotT[j] = int32(j)
	}
	s.nPrevW, s.nPrevT = nW, nT
	s.haveState = true
	return s.extract(), info, nil
}

// extract reads the matched pairs out of the matcher as current edge
// indices, sorted — the only allocation of a steady-state round.
func (s *IncrementalExact) extract() []int {
	sel := s.m.AppendMatched(make([]int, 0, s.m.MatchedCount()))
	slices.Sort(sel)
	return sel
}
