package core

import "repro/internal/stats"

// LocalSearch refines the Greedy solution with exchange moves until a local
// optimum (or MaxPasses sweeps).  Three move types are tried for every
// unchosen edge e = (w, t):
//
//	add     — both endpoints have spare capacity: take e (gain w(e) > 0);
//	swap    — one endpoint is full: evict that endpoint's cheapest chosen
//	          edge if e is strictly heavier;
//	2-swap  — both endpoints are full: evict the cheapest chosen edge of
//	          each if e outweighs the pair;
//	rotate  — evict one *chosen* edge (w, t) and take the best addable edge
//	          at each freed endpoint if the pair outweighs the eviction.
//
// The first three moves alone can never improve on Greedy: every edge
// Greedy rejected was blocked by strictly heavier edges that remain chosen,
// so single-edge insertions are always losing trades.  The rotate move is
// what escapes Greedy's local optimum — it undoes a heavy early commitment
// that blocks two medium edges (the classic ½-approximation tight case:
// weights 1.0 vs 0.9 + 0.9).  In the optimality experiment (R-Fig10) the
// combination recovers most of the gap Greedy leaves to Exact while staying
// near-linear per pass.
type LocalSearch struct {
	Kind WeightKind
	// MaxPasses bounds the number of full sweeps; 0 means the default (8).
	MaxPasses int
}

// Name implements Solver.
func (s LocalSearch) Name() string { return "local-search" }

// Solve implements Solver.  Deterministic; the RNG is unused.
func (s LocalSearch) Solve(p *Problem, r *stats.RNG) ([]int, error) {
	sel, err := Greedy{Kind: s.Kind}.Solve(p, r)
	if err != nil {
		return nil, err
	}
	maxPasses := s.MaxPasses
	if maxPasses <= 0 {
		maxPasses = 8
	}

	chosen := make([]bool, len(p.Edges))
	capW := p.CapacityW()
	capT := p.CapacityT()
	for _, ei := range sel {
		chosen[ei] = true
		capW[p.Edges[ei].W]--
		capT[p.Edges[ei].T]--
	}
	weight := func(ei int) float64 { return p.Edges[ei].Weight(s.Kind) }

	// cheapestChosen returns the minimum-weight chosen edge incident to the
	// given side's vertex, or -1 when none is chosen.
	cheapestChosenW := func(w int) int {
		best, bw := -1, 0.0
		for _, ei := range p.AdjW(w) {
			if chosen[ei] && (best == -1 || weight(int(ei)) < bw) {
				best, bw = int(ei), weight(int(ei))
			}
		}
		return best
	}
	cheapestChosenT := func(t int) int {
		best, bw := -1, 0.0
		for _, ei := range p.AdjT(t) {
			if chosen[ei] && (best == -1 || weight(int(ei)) < bw) {
				best, bw = int(ei), weight(int(ei))
			}
		}
		return best
	}
	evict := func(ei int) {
		chosen[ei] = false
		capW[p.Edges[ei].W]++
		capT[p.Edges[ei].T]++
	}
	take := func(ei int) {
		chosen[ei] = true
		capW[p.Edges[ei].W]--
		capT[p.Edges[ei].T]--
	}

	// bestAddableW returns the heaviest unchosen edge at worker w whose task
	// side has spare capacity (assuming w itself has spare capacity), or -1.
	bestAddableW := func(w, exclude int) int {
		best, bw := -1, 0.0
		for _, ei := range p.AdjW(w) {
			if int(ei) == exclude || chosen[ei] {
				continue
			}
			if capT[p.Edges[ei].T] > 0 && (best == -1 || weight(int(ei)) > bw) {
				best, bw = int(ei), weight(int(ei))
			}
		}
		return best
	}
	bestAddableT := func(t, exclude int) int {
		best, bw := -1, 0.0
		for _, ei := range p.AdjT(t) {
			if int(ei) == exclude || chosen[ei] {
				continue
			}
			if capW[p.Edges[ei].W] > 0 && (best == -1 || weight(int(ei)) > bw) {
				best, bw = int(ei), weight(int(ei))
			}
		}
		return best
	}

	const eps = 1e-12
	for pass := 0; pass < maxPasses; pass++ {
		improved := false
		// Rotate moves: try replacing each chosen edge with the best pair of
		// edges its eviction unlocks.
		for ei := 0; ei < len(p.Edges); ei++ {
			if !chosen[ei] {
				continue
			}
			e := &p.Edges[ei]
			evict(ei)
			a := bestAddableW(e.W, ei)
			b := bestAddableT(e.T, ei)
			gain := -weight(ei)
			if a >= 0 {
				gain += weight(a)
			}
			if b >= 0 {
				gain += weight(b)
			}
			if gain > eps && (a >= 0 || b >= 0) {
				if a >= 0 {
					take(a)
				}
				if b >= 0 {
					// a may have consumed the last capacity b needed; re-check.
					eb := &p.Edges[b]
					if capW[eb.W] > 0 && capT[eb.T] > 0 {
						take(b)
					} else if a >= 0 && weight(a) > weight(ei)+eps {
						// keep a alone if it still wins outright
					} else {
						// revert entirely
						if a >= 0 {
							evict(a)
						}
						take(ei)
						continue
					}
				}
				improved = true
			} else {
				take(ei) // revert
			}
		}
		for ei := range p.Edges {
			if chosen[ei] {
				continue
			}
			e := &p.Edges[ei]
			we := weight(ei)
			freeW := capW[e.W] > 0
			freeT := capT[e.T] > 0
			switch {
			case freeW && freeT:
				if we > eps {
					take(ei)
					improved = true
				}
			case freeW && !freeT:
				out := cheapestChosenT(e.T)
				if out >= 0 && we > weight(out)+eps {
					evict(out)
					take(ei)
					improved = true
				}
			case !freeW && freeT:
				out := cheapestChosenW(e.W)
				if out >= 0 && we > weight(out)+eps {
					evict(out)
					take(ei)
					improved = true
				}
			default:
				outW := cheapestChosenW(e.W)
				outT := cheapestChosenT(e.T)
				if outW < 0 || outT < 0 {
					continue // capacity zero on that side by construction
				}
				if outW == outT {
					// The blocking edge is e's own (w,t) twin — impossible,
					// pairs are unique — or a shared edge between the same
					// endpoints; evicting it frees both sides at once.
					if we > weight(outW)+eps {
						evict(outW)
						take(ei)
						improved = true
					}
					continue
				}
				if we > weight(outW)+weight(outT)+eps {
					evict(outW)
					evict(outT)
					take(ei)
					improved = true
				}
			}
		}
		if !improved {
			break
		}
	}

	out := make([]int, 0, len(sel))
	for ei, ok := range chosen {
		if ok {
			out = append(out, ei)
		}
	}
	return out, nil
}
