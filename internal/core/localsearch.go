package core

import (
	"context"
	"runtime"
	"sort"
	"sync"

	"repro/internal/stats"
)

// LocalSearch refines the Greedy solution with exchange moves until a local
// optimum (or MaxPasses sweeps).  Four move types are considered for every
// edge e = (w, t):
//
//	add     — e unchosen, both endpoints spare: take e (gain w(e) > 0);
//	swap    — e unchosen, one endpoint full: evict that endpoint's cheapest
//	          chosen edge if e is strictly heavier;
//	2-swap  — e unchosen, both endpoints full: evict the cheapest chosen
//	          edge of each if e outweighs the pair;
//	rotate  — e chosen: evict e and take the best addable edge at each
//	          freed endpoint if the pair outweighs the eviction.
//
// The first three moves alone can never improve on Greedy: every edge
// Greedy rejected was blocked by strictly heavier edges that remain chosen,
// so single-edge insertions are always losing trades.  The rotate move is
// what escapes Greedy's local optimum — it undoes a heavy early commitment
// that blocks two medium edges (the classic ½-approximation tight case:
// weights 1.0 vs 0.9 + 0.9).  In the optimality experiment (R-Fig10) the
// combination recovers most of the gap Greedy leaves to Exact.
//
// Each pass is collect-then-apply.  Against the frozen pass-start state it
// first builds four per-vertex tables — the cheapest chosen and the best
// addable edge at every worker and task — then derives each edge's best
// move in O(1) from them, making a pass O(E) where the seed's
// per-edge adjacency rescans were O(E·deg).  Both the table sweeps and the
// move scan fan out across GOMAXPROCS goroutines over contiguous vertex and
// edge ranges; the candidate moves are then sorted (gain descending, edge
// index ascending) and applied serially, skipping any move that touches a
// worker or task an earlier-applied move already touched.  The conflict
// filter keeps every applied move's frozen-state gain exact, so the
// objective strictly increases and the outcome is bit-identical for any
// goroutine count — LocalSearchSerial runs this very code single-threaded,
// and the property test in localsearch_parallel_test.go holds the two to
// identical selections.
type LocalSearch struct {
	Kind WeightKind
	// MaxPasses bounds the number of full sweeps; 0 means the default (8).
	MaxPasses int
	// WS optionally pins a reusable workspace; nil borrows one from the
	// package pool per call.
	WS *Workspace
}

// Name implements Solver.
func (s LocalSearch) Name() string { return "local-search" }

// Solve implements Solver.  Deterministic; the RNG is unused.
func (s LocalSearch) Solve(p *Problem, r *stats.RNG) ([]int, error) {
	ws, pooled := acquireWorkspace(s.WS)
	defer releaseWorkspace(ws, pooled)
	return localSearchRun(nil, p, s.Kind, s.MaxPasses, 0, ws)
}

// SolveCtx implements ContextSolver: the sweep loop polls ctx between
// passes, so a deadline fire costs at most one more O(E) sweep before the
// solve aborts with ctx.Err().  An un-fired ctx leaves the result
// bit-identical to Solve.
func (s LocalSearch) SolveCtx(ctx context.Context, p *Problem, _ *stats.RNG) ([]int, error) {
	ws, pooled := acquireWorkspace(s.WS)
	defer releaseWorkspace(ws, pooled)
	return localSearchRun(ctx, p, s.Kind, s.MaxPasses, 0, ws)
}

// LocalSearchSerial is the retained single-threaded reference for
// LocalSearch: the identical collect-then-apply algorithm with every sweep
// forced onto one goroutine.  It exists so the equivalence property test
// and the benchmark-regression harness can hold the parallel fast path to
// the serial semantics; use LocalSearch everywhere else.
type LocalSearchSerial struct {
	Kind      WeightKind
	MaxPasses int
	// WS optionally pins a reusable workspace.
	WS *Workspace
}

// Name implements Solver.
func (s LocalSearchSerial) Name() string { return "local-search-serial" }

// Solve implements Solver.  Deterministic; the RNG is unused.
func (s LocalSearchSerial) Solve(p *Problem, r *stats.RNG) ([]int, error) {
	ws, pooled := acquireWorkspace(s.WS)
	defer releaseWorkspace(ws, pooled)
	return localSearchRun(nil, p, s.Kind, s.MaxPasses, 1, ws)
}

// parallelLSCutoff is the edge count below which local search stays serial:
// per-pass goroutine fan-out costs more than it saves on small markets.
const parallelLSCutoff = 1 << 12

// lsMove is one candidate improving move, collected against the frozen
// pass-start state.  For an exchange move (rotate false) ei is the unchosen
// edge to take and a/b the chosen worker- and task-side evictions (-1 =
// none).  For a rotate move ei is the chosen edge to evict and a/b the
// unchosen worker- and task-side takes (-1 = none, at least one set).
type lsMove struct {
	gain   float64
	ei     int32
	a, b   int32
	rotate bool
}

// lsMoveSorter orders moves by decreasing gain, ties broken by ascending
// primary edge index.  Each edge contributes at most one move, so the order
// is strict and the serial apply deterministic.
type lsMoveSorter struct{ moves []lsMove }

func (s *lsMoveSorter) Len() int { return len(s.moves) }
func (s *lsMoveSorter) Less(a, b int) bool {
	if s.moves[a].gain != s.moves[b].gain {
		return s.moves[a].gain > s.moves[b].gain
	}
	return s.moves[a].ei < s.moves[b].ei
}
func (s *lsMoveSorter) Swap(a, b int) { s.moves[a], s.moves[b] = s.moves[b], s.moves[a] }

const lsEps = 1e-12

// localSearchRun seeds from Greedy and sweeps until no move applies or
// maxPasses is exhausted.  procs <= 0 selects GOMAXPROCS with the
// small-market serial cutoff; 1 forces the serial reference path.  All
// scratch lives in ws; the returned selection is freshly allocated.
// A non-nil ctx is polled at the top of every pass; once it fires the run
// aborts with ctx.Err() (a nil ctx performs no checks at all, keeping the
// serial reference path byte-identical to the seed semantics).
func localSearchRun(ctx context.Context, p *Problem, kind WeightKind, maxPasses, procs int, ws *Workspace) ([]int, error) {
	seed := greedyInto(p, kind, ws)
	if maxPasses <= 0 {
		maxPasses = 8
	}
	nE := len(p.Edges)
	if procs <= 0 {
		procs = runtime.GOMAXPROCS(0)
		if nE < parallelLSCutoff {
			procs = 1
		}
	}
	if procs > nE {
		procs = nE
	}
	if procs < 1 {
		procs = 1
	}

	nW, nT := p.In.NumWorkers(), p.In.NumTasks()
	// greedyInto left capW/capT at post-greedy residuals — exactly the
	// chosen-state capacities the sweeps need.
	capW, capT := ws.capW, ws.capT
	ws.chosen = growBoolZero(ws.chosen, nE)
	chosen := ws.chosen
	for _, ei := range seed {
		chosen[ei] = true
	}
	ws.edgeWt = growF64(ws.edgeWt, nE)
	wt := ws.edgeWt
	extractWeights(p, kind, identityOrderWS(ws, nE), wt)

	ws.minChosenW = growI32(ws.minChosenW, nW)
	ws.bestAddW = growI32(ws.bestAddW, nW)
	ws.minChosenT = growI32(ws.minChosenT, nT)
	ws.bestAddT = growI32(ws.bestAddT, nT)
	ws.touchedW = growBoolZero(ws.touchedW, nW)
	ws.touchedT = growBoolZero(ws.touchedT, nT)
	if cap(ws.moveBufs) < procs {
		ws.moveBufs = make([][]lsMove, procs)
	}
	ws.moveBufs = ws.moveBufs[:procs]

	// The shared state lives in the workspace and the sweeps are passed as
	// method expressions, so a pass allocates nothing (method *values* like
	// ls.sweepWorkers would each heap-allocate a closure).
	ls := &ws.ls
	*ls = lsState{
		p: p, wt: wt, chosen: chosen, capW: capW, capT: capT,
		minChosenW: ws.minChosenW, minChosenT: ws.minChosenT,
		bestAddW: ws.bestAddW, bestAddT: ws.bestAddT,
	}

	for pass := 0; pass < maxPasses; pass++ {
		if ctxDone(ctx) {
			return nil, ctx.Err() // discard the partial refinement
		}
		// Phase 1 (parallel): per-vertex tables against the frozen state.
		lsParallel(nW, procs, ls, (*lsState).sweepWorkers)
		lsParallel(nT, procs, ls, (*lsState).sweepTasks)

		// Phase 2 (parallel): one candidate move per edge, collected into
		// per-range buffers whose concatenation is ascending in edge index.
		lsParallel2(nE, procs, ws.moveBufs, ls, (*lsState).scanRange)
		ws.moves = ws.moves[:0]
		for _, buf := range ws.moveBufs {
			ws.moves = append(ws.moves, buf...)
		}
		if len(ws.moves) == 0 {
			break
		}

		// Phase 3 (serial): apply best-gain-first with a vertex conflict
		// filter, so every applied move's frozen gain stays exact.
		ws.moveSorter.moves = ws.moves
		sort.Sort(&ws.moveSorter)
		ws.moveSorter.moves = nil
		clear(ws.touchedW)
		clear(ws.touchedT)
		applied := false
		for i := range ws.moves {
			if ls.apply(&ws.moves[i], ws.touchedW, ws.touchedT) {
				applied = true
			}
		}
		if !applied {
			break
		}
	}

	out := make([]int, 0, len(seed))
	for ei, ok := range chosen {
		if ok {
			out = append(out, ei)
		}
	}
	return out, nil
}

// lsState bundles the shared read-mostly arrays of one local-search run so
// the parallel sweeps close over a single pointer.
type lsState struct {
	p          *Problem
	wt         []float64
	chosen     []bool
	capW, capT []int
	// Per-pass vertex tables (edge index or -1):
	minChosenW, minChosenT []int32 // cheapest chosen edge at the vertex
	bestAddW, bestAddT     []int32 // heaviest unchosen edge whose far side has spare capacity
}

// sweepWorkers fills the worker tables for workers [lo, hi).  Strict
// comparisons keep the first extremum in adjacency order, which is
// ascending edge index — the deterministic tie-break.
func (ls *lsState) sweepWorkers(lo, hi int) {
	p := ls.p
	for w := lo; w < hi; w++ {
		minC, best := int32(-1), int32(-1)
		var minWt, bestWt float64
		for _, ei := range p.AdjW(w) {
			if ls.chosen[ei] {
				if minC < 0 || ls.wt[ei] < minWt {
					minC, minWt = ei, ls.wt[ei]
				}
			} else if ls.capT[p.Edges[ei].T] > 0 {
				if best < 0 || ls.wt[ei] > bestWt {
					best, bestWt = ei, ls.wt[ei]
				}
			}
		}
		ls.minChosenW[w], ls.bestAddW[w] = minC, best
	}
}

// sweepTasks fills the task tables for tasks [lo, hi).
func (ls *lsState) sweepTasks(lo, hi int) {
	p := ls.p
	for t := lo; t < hi; t++ {
		minC, best := int32(-1), int32(-1)
		var minWt, bestWt float64
		for _, ei := range p.AdjT(t) {
			if ls.chosen[ei] {
				if minC < 0 || ls.wt[ei] < minWt {
					minC, minWt = ei, ls.wt[ei]
				}
			} else if ls.capW[p.Edges[ei].W] > 0 {
				if best < 0 || ls.wt[ei] > bestWt {
					best, bestWt = ei, ls.wt[ei]
				}
			}
		}
		ls.minChosenT[t], ls.bestAddT[t] = minC, best
	}
}

// scanRange derives the best move of every edge in [lo, hi) from the vertex
// tables.  Eligibility rests on two structural facts: worker-task pairs are
// unique, so a rotate's two takes can never collide on a vertex (the
// colliding edge would have to be the evicted pair itself), and an
// exchange's two evictions can never be the same edge (it would have to be
// the unchosen candidate).
func (ls *lsState) scanRange(lo, hi int, out []lsMove) []lsMove {
	p := ls.p
	for ei := lo; ei < hi; ei++ {
		e := &p.Edges[ei]
		we := ls.wt[ei]
		if ls.chosen[ei] {
			a, b := ls.bestAddW[e.W], ls.bestAddT[e.T]
			if a < 0 && b < 0 {
				continue
			}
			gain := -we
			if a >= 0 {
				gain += ls.wt[a]
			}
			if b >= 0 {
				gain += ls.wt[b]
			}
			if gain > lsEps {
				out = append(out, lsMove{gain: gain, ei: int32(ei), a: a, b: b, rotate: true})
			}
			continue
		}
		freeW, freeT := ls.capW[e.W] > 0, ls.capT[e.T] > 0
		switch {
		case freeW && freeT:
			if we > lsEps {
				out = append(out, lsMove{gain: we, ei: int32(ei), a: -1, b: -1})
			}
		case freeW:
			if out2 := ls.minChosenT[e.T]; out2 >= 0 && we > ls.wt[out2]+lsEps {
				out = append(out, lsMove{gain: we - ls.wt[out2], ei: int32(ei), a: -1, b: out2})
			}
		case freeT:
			if out1 := ls.minChosenW[e.W]; out1 >= 0 && we > ls.wt[out1]+lsEps {
				out = append(out, lsMove{gain: we - ls.wt[out1], ei: int32(ei), a: out1, b: -1})
			}
		default:
			out1, out2 := ls.minChosenW[e.W], ls.minChosenT[e.T]
			if out1 < 0 || out2 < 0 {
				continue // capacity zero on that side by construction
			}
			if we > ls.wt[out1]+ls.wt[out2]+lsEps {
				out = append(out, lsMove{gain: we - ls.wt[out1] - ls.wt[out2], ei: int32(ei), a: out1, b: out2})
			}
		}
	}
	return out
}

// apply executes mv unless any involved vertex was already touched this
// pass, marking all involved vertices on success.  A move involves its
// primary edge's endpoints plus the far endpoint of each companion edge
// (the near endpoint coincides with the primary's by construction).
func (ls *lsState) apply(mv *lsMove, touchedW, touchedT []bool) bool {
	p := ls.p
	e := &p.Edges[mv.ei]
	wA, tB := -1, -1 // far endpoints of the companions
	if mv.a >= 0 {
		tB2 := p.Edges[mv.a].T
		if touchedT[tB2] {
			return false
		}
		tB = tB2
	}
	if mv.b >= 0 {
		wA2 := p.Edges[mv.b].W
		if touchedW[wA2] {
			return false
		}
		wA = wA2
	}
	if touchedW[e.W] || touchedT[e.T] {
		return false
	}
	touchedW[e.W], touchedT[e.T] = true, true
	if wA >= 0 {
		touchedW[wA] = true
	}
	if tB >= 0 {
		touchedT[tB] = true
	}
	if mv.rotate {
		ls.evict(int(mv.ei))
		if mv.a >= 0 {
			ls.take(int(mv.a))
		}
		if mv.b >= 0 {
			ls.take(int(mv.b))
		}
	} else {
		if mv.a >= 0 {
			ls.evict(int(mv.a))
		}
		if mv.b >= 0 {
			ls.evict(int(mv.b))
		}
		ls.take(int(mv.ei))
	}
	return true
}

func (ls *lsState) evict(ei int) {
	ls.chosen[ei] = false
	ls.capW[ls.p.Edges[ei].W]++
	ls.capT[ls.p.Edges[ei].T]++
}

func (ls *lsState) take(ei int) {
	ls.chosen[ei] = true
	ls.capW[ls.p.Edges[ei].W]--
	ls.capT[ls.p.Edges[ei].T]--
}

// lsParallel runs f(ls, lo, hi) over [0, n) split into procs contiguous
// ranges.  f is a method expression, not a method value, so the serial path
// performs zero allocations.
func lsParallel(n, procs int, ls *lsState, f func(*lsState, int, int)) {
	if procs <= 1 || n == 0 {
		f(ls, 0, n)
		return
	}
	chunk := (n + procs - 1) / procs
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			f(ls, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// lsParallel2 runs f over [0, n) split into len(bufs) contiguous ranges,
// giving range k the reusable buffer bufs[k] (reset to length zero) and
// storing f's result back, so the concatenation of bufs is ordered by range.
func lsParallel2(n, procs int, bufs [][]lsMove, ls *lsState, f func(*lsState, int, int, []lsMove) []lsMove) {
	if procs <= 1 || n == 0 {
		bufs[0] = f(ls, 0, n, bufs[0][:0])
		for k := 1; k < len(bufs); k++ {
			bufs[k] = bufs[k][:0]
		}
		return
	}
	chunk := (n + procs - 1) / procs
	var wg sync.WaitGroup
	k := 0
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(k, lo, hi int) {
			defer wg.Done()
			bufs[k] = f(ls, lo, hi, bufs[k][:0])
		}(k, lo, hi)
		k++
	}
	for ; k < len(bufs); k++ {
		bufs[k] = bufs[k][:0]
	}
	wg.Wait()
}
