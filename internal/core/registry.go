package core

import (
	"fmt"
	"sort"
)

// solverFactories maps public algorithm names to constructors.  The CLI
// tools, the experiment harness and the root mba package all resolve
// algorithms through this table, so names stay consistent everywhere.
var solverFactories = map[string]func() Solver{
	"exact":               func() Solver { return Exact{Kind: MutualWeight} },
	"exact-serial":        func() Solver { return ExactSerial{Kind: MutualWeight} },
	"incremental":         func() Solver { return NewIncrementalExact() },
	"greedy":              func() Solver { return Greedy{Kind: MutualWeight} },
	"local-search":        func() Solver { return LocalSearch{Kind: MutualWeight} },
	"local-search-serial": func() Solver { return LocalSearchSerial{Kind: MutualWeight} },
	"submodular-greedy":   func() Solver { return SubmodularGreedy{} },
	"auction":             func() Solver { return Auction{Kind: MutualWeight} },
	"degrader":            func() Solver { return DefaultDegrader() },
	"quality-only":        func() Solver { return QualityOnly() },
	"worker-only":         func() Solver { return WorkerOnly() },
	"random":              func() Solver { return Random{} },
	"round-robin":         func() Solver { return RoundRobin{} },
	"online-greedy":       func() Solver { return OnlineGreedy{Kind: MutualWeight} },
	"online-ranking":      func() Solver { return OnlineRanking{Kind: MutualWeight} },
	"online-twophase":     func() Solver { return OnlineTwoPhase{Kind: MutualWeight} },
	"online-task-greedy":  func() Solver { return OnlineTaskGreedy{Kind: MutualWeight} },
	"annealing":           func() Solver { return SimulatedAnnealing{Kind: MutualWeight} },
	"sharded-greedy":      func() Solver { return ShardedGreedy{Kind: MutualWeight} },
	"stable-matching":     func() Solver { return StableMatching{} },
}

// ByName returns a fresh solver for the given registry name, or an error
// listing the valid names.
func ByName(name string) (Solver, error) {
	f, ok := solverFactories[name]
	if !ok {
		return nil, fmt.Errorf("core: unknown algorithm %q (have %v)", name, SolverNames())
	}
	return f(), nil
}

// SolverNames lists all registered algorithm names in sorted order.
func SolverNames() []string {
	names := make([]string, 0, len(solverFactories))
	for n := range solverFactories {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ComparisonSolvers returns the solver line-up of the headline comparison
// experiments: the paper's algorithms plus every baseline, excluding the
// unit-capacity-only auction and the online variants (which get their own
// experiment).
func ComparisonSolvers() []Solver {
	return []Solver{
		Exact{Kind: MutualWeight},
		Greedy{Kind: MutualWeight},
		LocalSearch{Kind: MutualWeight},
		SubmodularGreedy{},
		QualityOnly(),
		WorkerOnly(),
		Random{},
		RoundRobin{},
	}
}

// HeuristicSolvers returns the scalable line-up used on instances too large
// for the exact flow solver.
func HeuristicSolvers() []Solver {
	return []Solver{
		Greedy{Kind: MutualWeight},
		LocalSearch{Kind: MutualWeight},
		QualityOnly(),
		WorkerOnly(),
		Random{},
		RoundRobin{},
	}
}

// OnlineSolvers returns the online line-up of R-Fig11 (worker arrival plus
// the task-arrival variant).
func OnlineSolvers() []Solver {
	return []Solver{
		OnlineGreedy{Kind: MutualWeight},
		OnlineRanking{Kind: MutualWeight},
		OnlineTwoPhase{Kind: MutualWeight},
		OnlineTaskGreedy{Kind: MutualWeight},
	}
}
