package core

import (
	"math"
	"testing"

	"repro/internal/benefit"
	"repro/internal/market"
	"repro/internal/stats"
)

// smallProblem returns a moderate random problem for algorithm tests.
func smallProblem(t testing.TB, seed uint64) *Problem {
	t.Helper()
	in := market.MustGenerate(market.Config{NumWorkers: 30, NumTasks: 30}, seed)
	return MustNewProblem(in, benefit.DefaultParams())
}

// unitProblem returns a unit-capacity problem (plain matching shape).
func unitProblem(t testing.TB, seed uint64) *Problem {
	t.Helper()
	in := market.MustGenerate(market.Config{
		NumWorkers: 25, NumTasks: 25,
		MinCapacity: 1, MaxCapacity: 1,
		MinReplication: 1, MaxReplication: 1,
	}, seed)
	return MustNewProblem(in, benefit.DefaultParams())
}

func TestNewProblemEdgeEnumeration(t *testing.T) {
	in := market.MustGenerate(market.Config{NumWorkers: 10, NumTasks: 20}, 1)
	p := MustNewProblem(in, benefit.DefaultParams())
	if len(p.Edges) != in.NumEdges() {
		t.Fatalf("edges %d, instance says %d", len(p.Edges), in.NumEdges())
	}
	// Every edge must be an eligible (specialty-matching) pair with benefit
	// values agreeing with the model.
	for i := range p.Edges {
		e := &p.Edges[i]
		w := &in.Workers[e.W]
		task := &in.Tasks[e.T]
		if !w.AcceptsCategory(task.Category) {
			t.Fatalf("edge %d pairs worker %d with foreign category task %d", i, e.W, e.T)
		}
		if e.Q != p.Model.Quality(w, task) || e.B != p.Model.WorkerUtility(w, task) {
			t.Fatalf("edge %d cached values disagree with model", i)
		}
		if math.Abs(e.M-p.Model.Combine(e.Q, e.B)) > 1e-15 {
			t.Fatalf("edge %d mutual value stale", i)
		}
	}
	// No duplicate pairs.
	seen := map[[2]int]bool{}
	for i := range p.Edges {
		key := [2]int{p.Edges[i].W, p.Edges[i].T}
		if seen[key] {
			t.Fatalf("duplicate pair %v", key)
		}
		seen[key] = true
	}
}

func TestNewProblemAdjacencyConsistent(t *testing.T) {
	p := smallProblem(t, 2)
	countAdj := 0
	for w := 0; w < p.In.NumWorkers(); w++ {
		for _, ei := range p.AdjW(w) {
			if p.Edges[ei].W != w {
				t.Fatal("AdjW holds foreign edge")
			}
			countAdj++
		}
	}
	if countAdj != len(p.Edges) {
		t.Fatalf("worker adjacency covers %d of %d edges", countAdj, len(p.Edges))
	}
	countAdj = 0
	for tj := 0; tj < p.In.NumTasks(); tj++ {
		for _, ei := range p.AdjT(tj) {
			if p.Edges[ei].T != tj {
				t.Fatal("AdjT holds foreign edge")
			}
			countAdj++
		}
	}
	if countAdj != len(p.Edges) {
		t.Fatalf("task adjacency covers %d of %d edges", countAdj, len(p.Edges))
	}
}

func TestNewProblemRejectsInvalid(t *testing.T) {
	in := market.MustGenerate(market.Config{NumWorkers: 5, NumTasks: 5}, 3)
	if _, err := NewProblem(in, benefit.Params{Lambda: 2}); err == nil {
		t.Fatal("invalid params accepted")
	}
	in.Workers[0].Capacity = -1
	if _, err := NewProblem(in, benefit.DefaultParams()); err == nil {
		t.Fatal("invalid instance accepted")
	}
}

func TestFeasibleCatchesViolations(t *testing.T) {
	p := smallProblem(t, 4)
	if err := p.Feasible(nil); err != nil {
		t.Fatalf("empty assignment infeasible: %v", err)
	}
	if err := p.Feasible([]int{-1}); err == nil {
		t.Fatal("negative index accepted")
	}
	if err := p.Feasible([]int{len(p.Edges)}); err == nil {
		t.Fatal("out-of-range index accepted")
	}
	if err := p.Feasible([]int{0, 0}); err == nil {
		t.Fatal("duplicate edge accepted")
	}
	// Overflow worker 0's capacity by brute force: gather more of its edges
	// than capacity.
	w := p.Edges[0].W
	cap0 := p.In.Workers[w].Capacity
	var mine []int
	for _, ei := range p.AdjW(w) {
		mine = append(mine, int(ei))
	}
	if len(mine) > cap0 {
		if err := p.Feasible(mine); err == nil {
			t.Fatal("worker capacity violation accepted")
		}
	}
}

func TestEvaluateTotals(t *testing.T) {
	p := smallProblem(t, 5)
	sel := []int{0, 1}
	m := p.Evaluate(sel)
	wantMutual := p.Edges[0].M + p.Edges[1].M
	if math.Abs(m.TotalMutual-wantMutual) > 1e-12 {
		t.Fatalf("mutual %v want %v", m.TotalMutual, wantMutual)
	}
	if m.Pairs != 2 {
		t.Fatalf("pairs = %d", m.Pairs)
	}
	if m.SlotCoverage <= 0 || m.SlotCoverage > 1 {
		t.Fatalf("coverage = %v", m.SlotCoverage)
	}
}

func TestEvaluateEmptyAssignment(t *testing.T) {
	p := smallProblem(t, 6)
	m := p.Evaluate(nil)
	if m.Pairs != 0 || m.TotalMutual != 0 || m.ActiveWorkers != 0 {
		t.Fatalf("empty metrics = %+v", m)
	}
	if m.WorkerJain != 1 {
		t.Fatalf("empty Jain = %v (all-zero benefit is vacuously fair)", m.WorkerJain)
	}
}

func TestPerWorkerBenefit(t *testing.T) {
	p := smallProblem(t, 7)
	sel := []int{0}
	per := p.PerWorkerBenefit(sel)
	if len(per) != p.In.NumWorkers() {
		t.Fatal("length mismatch")
	}
	e := &p.Edges[0]
	if per[e.W] != e.B {
		t.Fatalf("worker %d benefit %v want %v", e.W, per[e.W], e.B)
	}
	sum := 0.0
	for _, b := range per {
		sum += b
	}
	if math.Abs(sum-e.B) > 1e-12 {
		t.Fatal("other workers should have zero")
	}
}

func TestRunValidatesAndTimes(t *testing.T) {
	p := smallProblem(t, 8)
	r := stats.NewRNG(1)
	sel, m, err := Run(p, Greedy{}, r)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Feasible(sel); err != nil {
		t.Fatal(err)
	}
	if m.Algorithm != "greedy" {
		t.Fatalf("algorithm name %q", m.Algorithm)
	}
	if m.Elapsed <= 0 {
		t.Fatal("elapsed not recorded")
	}
	if m.String() == "" {
		t.Fatal("empty metrics string")
	}
}

type badSolver struct{}

func (badSolver) Name() string { return "bad" }
func (badSolver) Solve(p *Problem, _ *stats.RNG) ([]int, error) {
	// Return the same edge twice: infeasible.
	if len(p.Edges) == 0 {
		return nil, nil
	}
	return []int{0, 0}, nil
}

func TestRunRejectsInfeasibleSolver(t *testing.T) {
	p := smallProblem(t, 9)
	if _, _, err := Run(p, badSolver{}, stats.NewRNG(1)); err == nil {
		t.Fatal("infeasible solver result accepted")
	}
}

func TestWeightKindString(t *testing.T) {
	if MutualWeight.String() != "mutual" || QualityWeight.String() != "quality" ||
		WorkerWeight.String() != "worker" {
		t.Fatal("weight kind names wrong")
	}
	if WeightKind(9).String() == "" {
		t.Fatal("unknown kind should render")
	}
}

func TestEdgeWeightSelector(t *testing.T) {
	e := EdgeInfo{Q: 0.1, B: 0.2, M: 0.3}
	if e.Weight(QualityWeight) != 0.1 || e.Weight(WorkerWeight) != 0.2 || e.Weight(MutualWeight) != 0.3 {
		t.Fatal("weight selector wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown kind did not panic")
		}
	}()
	e.Weight(WeightKind(9))
}
