package core

import (
	"testing"

	"repro/internal/benefit"
	"repro/internal/market"
)

// RebuildProblem must be indistinguishable from NewProblem — same edges,
// same adjacency, bit for bit — whatever shape the previous build had:
// larger, smaller, or wildly different category structure.
func TestRebuildProblemMatchesNewProblem(t *testing.T) {
	cfgs := []market.Config{
		market.FreelanceTraceConfig(60, 45),
		{Name: "tiny", NumWorkers: 5, NumTasks: 4, NumCategories: 2, MaxSpecialties: 2},
		market.MicrotaskTraceConfig(80, 120),
		{Name: "mid", NumWorkers: 40, NumTasks: 40},
		market.FreelanceTraceConfig(60, 45), // back to the first shape
	}
	var prev *Problem
	for i, cfg := range cfgs {
		in := market.MustGenerate(cfg, uint64(100+i))
		ref, err := NewProblem(in, benefit.DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		prev, err = RebuildProblem(prev, in, benefit.DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		assertSameProblem(t, cfg.Name, ref, prev)
	}
}

// TestRebuildProblemNilPrev pins the nil-prev convenience path.
func TestRebuildProblemNilPrev(t *testing.T) {
	in := market.MustGenerate(market.Config{NumWorkers: 10, NumTasks: 10}, 3)
	p, err := RebuildProblem(nil, in, benefit.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	ref := MustNewProblem(in, benefit.DefaultParams())
	assertSameProblem(t, "nil-prev", ref, p)
}

// TestRebuildProblemReusesArenas verifies the point of the exercise: a
// same-shape rebuild keeps the previous edge arena and CSR arrays instead
// of reallocating them.
func TestRebuildProblemReusesArenas(t *testing.T) {
	in1 := market.MustGenerate(market.FreelanceTraceConfig(50, 40), 1)
	in2 := market.MustGenerate(market.FreelanceTraceConfig(50, 40), 2)
	p, err := NewProblem(in1, benefit.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	edges1, adjW1 := &p.Edges[0], &p.adjW[0]
	capE, capA := cap(p.Edges), cap(p.adjW)
	p2, err := RebuildProblem(p, in2, benefit.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if p2 != p {
		t.Fatal("RebuildProblem returned a different Problem")
	}
	if len(p2.Edges) == 0 {
		t.Fatal("rebuilt problem has no edges")
	}
	// Same-shape generators need not produce the same edge count, but the
	// arena must be reused whenever it still fits.
	if len(p2.Edges) <= capE && &p2.Edges[0] != edges1 {
		t.Error("edge arena was reallocated on a fitting rebuild")
	}
	if len(p2.adjW) <= capA && &p2.adjW[0] != adjW1 {
		t.Error("adjW was reallocated on a fitting rebuild")
	}
}
