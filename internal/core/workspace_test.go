package core

import (
	"slices"
	"testing"

	"repro/internal/benefit"
	"repro/internal/market"
	"repro/internal/stats"
)

// The workspace contract: pinning one Workspace across repeated solves of
// the same problem changes nothing about the results, and after a warm-up
// call the steady-state allocation cost of a solve is just the returned
// selection.

func workspaceTestProblem(tb testing.TB) *Problem {
	tb.Helper()
	in := market.MustGenerate(market.FreelanceTraceConfig(80, 60), 17)
	return MustNewProblem(in, benefit.DefaultParams())
}

func TestWorkspaceReuseIdenticalSelections(t *testing.T) {
	p := workspaceTestProblem(t)
	ws := NewWorkspace()
	solvers := []Solver{
		Greedy{Kind: MutualWeight, WS: ws},
		LocalSearch{Kind: MutualWeight, WS: ws},
		LocalSearchSerial{Kind: MutualWeight, WS: ws},
		ShardedGreedy{Kind: MutualWeight, Shards: 4, WS: ws},
		Random{WS: ws},
		RoundRobin{WS: ws},
		OnlineGreedy{Kind: MutualWeight, WS: ws},
		OnlineRanking{Kind: MutualWeight, WS: ws},
		OnlineTwoPhase{Kind: MutualWeight, WS: ws},
		OnlineTaskGreedy{Kind: MutualWeight, WS: ws},
	}
	for _, s := range solvers {
		// Same solver, same RNG stream, same pinned workspace — the second
		// run reuses every buffer the first one grew.
		first, err := s.Solve(p, stats.NewRNG(5))
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		second, err := s.Solve(p, stats.NewRNG(5))
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if !slices.Equal(first, second) {
			t.Fatalf("%s: workspace reuse changed the selection\nfirst:  %v\nsecond: %v", s.Name(), first, second)
		}
		if err := p.Feasible(second); err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
	}
}

// TestWorkspacePinnedVsPooledIdentical holds the pinned-workspace path to
// the pooled (WS nil) path for the deterministic solvers.
func TestWorkspacePinnedVsPooledIdentical(t *testing.T) {
	p := workspaceTestProblem(t)
	ws := NewWorkspace()
	pairs := [][2]Solver{
		{Greedy{Kind: MutualWeight, WS: ws}, Greedy{Kind: MutualWeight}},
		{LocalSearch{Kind: MutualWeight, WS: ws}, LocalSearch{Kind: MutualWeight}},
		{ShardedGreedy{Kind: MutualWeight, Shards: 4, WS: ws}, ShardedGreedy{Kind: MutualWeight, Shards: 4}},
		{RoundRobin{WS: ws}, RoundRobin{}},
	}
	for _, pr := range pairs {
		pinned, err := pr[0].Solve(p, stats.NewRNG(5))
		if err != nil {
			t.Fatal(err)
		}
		pooled, err := pr[1].Solve(p, stats.NewRNG(5))
		if err != nil {
			t.Fatal(err)
		}
		if !slices.Equal(pinned, pooled) {
			t.Fatalf("%s: pinned and pooled workspaces disagree", pr[0].Name())
		}
	}
}

// TestWorkspaceSteadyStateAllocs measures the post-warm-up allocation cost
// of the workspace-wired solvers.  The only unavoidable allocation is the
// caller-owned copy of the selection (plus, for local search, the fresh
// result slice), so the budgets are tiny; a regression that re-grows
// scratch on every call trips them immediately.
func TestWorkspaceSteadyStateAllocs(t *testing.T) {
	p := workspaceTestProblem(t)
	t.Run("greedy", func(t *testing.T) {
		s := Greedy{Kind: MutualWeight, WS: NewWorkspace()}
		s.Solve(p, nil) // warm-up grows all scratch
		n := testing.AllocsPerRun(20, func() { s.Solve(p, nil) })
		if n > 1 {
			t.Errorf("greedy: %v allocs/op in steady state, want <= 1 (the returned selection)", n)
		}
	})
	t.Run("local-search-serial", func(t *testing.T) {
		s := LocalSearchSerial{Kind: MutualWeight, WS: NewWorkspace()}
		s.Solve(p, nil)
		n := testing.AllocsPerRun(20, func() { s.Solve(p, nil) })
		if n > 2 {
			t.Errorf("local-search-serial: %v allocs/op in steady state, want <= 2", n)
		}
	})
}
