package core

import (
	"strconv"
	"testing"

	"repro/internal/benefit"
	"repro/internal/market"
)

// assertSameProblem fails unless got's edges and adjacency are exactly —
// including float bits — those of the serial reference.
func assertSameProblem(t *testing.T, label string, ref, got *Problem) {
	t.Helper()
	if len(got.Edges) != len(ref.Edges) {
		t.Fatalf("%s: %d edges, reference has %d", label, len(got.Edges), len(ref.Edges))
	}
	for i := range ref.Edges {
		if got.Edges[i] != ref.Edges[i] {
			t.Fatalf("%s: edge %d = %+v, reference %+v", label, i, got.Edges[i], ref.Edges[i])
		}
	}
	for w := 0; w < ref.In.NumWorkers(); w++ {
		a, b := got.AdjW(w), ref.AdjW(w)
		if len(a) != len(b) {
			t.Fatalf("%s: AdjW(%d) length %d, reference %d", label, w, len(a), len(b))
		}
		for k := range b {
			if a[k] != b[k] {
				t.Fatalf("%s: AdjW(%d)[%d] = %d, reference %d", label, w, k, a[k], b[k])
			}
		}
	}
	for tj := 0; tj < ref.In.NumTasks(); tj++ {
		a, b := got.AdjT(tj), ref.AdjT(tj)
		if len(a) != len(b) {
			t.Fatalf("%s: AdjT(%d) length %d, reference %d", label, tj, len(a), len(b))
		}
		for k := range b {
			if a[k] != b[k] {
				t.Fatalf("%s: AdjT(%d)[%d] = %d, reference %d", label, tj, k, a[k], b[k])
			}
		}
	}
}

// TestNewProblemMatchesSerialReference is the construction-determinism
// property test: across 20 seeds and the three trace generators, the
// counted parallel build must produce Edges, AdjW and AdjT byte-identical
// to the retained serial reference, at every fan-out (including fan-outs
// far above GOMAXPROCS, which exercise the chunk-boundary search).
func TestNewProblemMatchesSerialReference(t *testing.T) {
	gens := []struct {
		name string
		cfg  func(workers, tasks int) market.Config
	}{
		{"freelance", market.FreelanceTraceConfig},
		{"microtask", market.MicrotaskTraceConfig},
		{"zipf", func(w, tk int) market.Config { return market.ZipfConfig(w, tk, 1.2) }},
	}
	for _, g := range gens {
		g := g
		t.Run(g.name, func(t *testing.T) {
			for seed := uint64(1); seed <= 20; seed++ {
				in := market.MustGenerate(g.cfg(40, 30), seed)
				ref, err := NewProblemSerial(in, benefit.DefaultParams())
				if err != nil {
					t.Fatal(err)
				}
				pub := MustNewProblem(in, benefit.DefaultParams())
				assertSameProblem(t, "NewProblem", ref, pub)
				for _, procs := range []int{1, 3, 8} {
					p, err := newProblemProcs(in, benefit.DefaultParams(), procs)
					if err != nil {
						t.Fatal(err)
					}
					assertSameProblem(t, "procs="+strconv.Itoa(procs), ref, p)
				}
			}
		})
	}
}

// TestNewProblemParallelLargeMarket forces a genuinely chunked build on a
// market big enough that every chunk owns many workers.
func TestNewProblemParallelLargeMarket(t *testing.T) {
	in := market.MustGenerate(market.FreelanceTraceConfig(600, 400), 42)
	ref, err := NewProblemSerial(in, benefit.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, procs := range []int{2, 4, 7, 16} {
		p, err := newProblemProcs(in, benefit.DefaultParams(), procs)
		if err != nil {
			t.Fatal(err)
		}
		assertSameProblem(t, "procs="+strconv.Itoa(procs), ref, p)
	}
}

// TestNewProblemDegenerateShapes covers the counted build's boundary cases:
// no workers, no tasks, empty categories, single-specialty fast path.
func TestNewProblemDegenerateShapes(t *testing.T) {
	onlyWorkers := &market.Instance{
		Name: "only-workers", NumCategories: 3,
		Workers: []market.Worker{{
			ID: 0, Capacity: 2,
			Accuracy:    []float64{0.8, 0.8, 0.8},
			Interest:    []float64{0.5, 0.5, 0.5},
			Specialties: []int{1},
		}},
	}
	p := MustNewProblem(onlyWorkers, benefit.DefaultParams())
	if len(p.Edges) != 0 || len(p.AdjW(0)) != 0 {
		t.Fatalf("workers-only market produced %d edges", len(p.Edges))
	}

	onlyTasks := &market.Instance{
		Name: "only-tasks", NumCategories: 2,
		Tasks:      []market.Task{{ID: 0, Category: 0, Replication: 1, Payment: 1}},
		MaxPayment: 1,
	}
	p = MustNewProblem(onlyTasks, benefit.DefaultParams())
	if len(p.Edges) != 0 || len(p.AdjT(0)) != 0 {
		t.Fatalf("tasks-only market produced %d edges", len(p.Edges))
	}
}

// TestFilterProblemMatchesRebuild cross-checks the filtered CSR layout: the
// kept edges and adjacency must agree with edge-by-edge expectations.
func TestFilterProblemMatchesRebuild(t *testing.T) {
	p := smallProblem(t, 11)
	fp := FilterProblem(p, MinQuality(0.3))
	wantEdges := 0
	for i := range p.Edges {
		if p.Edges[i].Q >= 0.3 {
			wantEdges++
		}
	}
	if len(fp.Edges) != wantEdges {
		t.Fatalf("filtered %d edges, want %d", len(fp.Edges), wantEdges)
	}
	covered := 0
	for w := 0; w < fp.In.NumWorkers(); w++ {
		for _, ei := range fp.AdjW(w) {
			if fp.Edges[ei].W != w {
				t.Fatal("filtered AdjW holds foreign edge")
			}
			covered++
		}
	}
	if covered != len(fp.Edges) {
		t.Fatalf("filtered AdjW covers %d of %d edges", covered, len(fp.Edges))
	}
	covered = 0
	for tj := 0; tj < fp.In.NumTasks(); tj++ {
		prev := int32(-1)
		for _, ei := range fp.AdjT(tj) {
			if fp.Edges[ei].T != tj {
				t.Fatal("filtered AdjT holds foreign edge")
			}
			if ei <= prev {
				t.Fatal("filtered AdjT not ascending")
			}
			prev = ei
			covered++
		}
	}
	if covered != len(fp.Edges) {
		t.Fatalf("filtered AdjT covers %d of %d edges", covered, len(fp.Edges))
	}
}
