package core

import (
	"sort"

	"repro/internal/benefit"
	"repro/internal/market"
)

// NewProblemSerial is the retained single-threaded reference builder: the
// original grow-by-append construction (per-worker union of specialty
// buckets followed by sort.Ints, append-grown adjacency lists), flattened
// into the CSR layout at the end.
//
// It exists for two reasons: the construction-determinism property test
// asserts the parallel NewProblem is byte-identical to it, and the
// benchmark-regression harness measures the construction speedup against
// it.  Use NewProblem everywhere else.
func NewProblemSerial(in *market.Instance, params benefit.Params) (*Problem, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	model, err := benefit.NewModel(in, params)
	if err != nil {
		return nil, err
	}
	p := &Problem{In: in, Model: model}
	tasksByCat := make([][]int, in.NumCategories)
	for j := range in.Tasks {
		c := in.Tasks[j].Category
		tasksByCat[c] = append(tasksByCat[c], j)
	}
	adjW := make([][]int32, in.NumWorkers())
	adjT := make([][]int32, in.NumTasks())
	p.Edges = make([]EdgeInfo, 0, in.NumEdges())
	for wi := range in.Workers {
		w := &in.Workers[wi]
		// Specialties in ascending order gives ascending task ids per worker
		// only within a category; sort the union for full determinism.
		var taskIDs []int
		for _, c := range w.Specialties {
			taskIDs = append(taskIDs, tasksByCat[c]...)
		}
		sort.Ints(taskIDs)
		for _, tj := range taskIDs {
			t := &in.Tasks[tj]
			e := EdgeInfo{
				W: wi, T: tj,
				Q: model.Quality(w, t),
				B: model.WorkerUtility(w, t),
			}
			e.M = model.Combine(e.Q, e.B)
			idx := int32(len(p.Edges))
			p.Edges = append(p.Edges, e)
			adjW[wi] = append(adjW[wi], idx)
			adjT[tj] = append(adjT[tj], idx)
		}
	}
	p.setAdjacency(adjW, adjT)
	return p, nil
}
