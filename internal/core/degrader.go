package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/stats"
)

// SolveReport describes how a composite solver actually served one solve:
// which stage produced the returned assignment, whether (and from what) it
// degraded, and the errors of the stages that failed along the way.  The
// platform copies these fields into its RoundResult so operators can see
// degradation happening round by round.
type SolveReport struct {
	// ServedBy is the Name of the stage whose assignment was returned.
	ServedBy string
	// DegradedFrom is the Name of the preferred (first) stage when a later
	// stage served the solve; empty when the preferred stage itself served.
	DegradedFrom string
	// SolveTimedOut reports that at least one stage was abandoned because
	// the per-solve deadline (not the caller's context) fired.
	SolveTimedOut bool
	// StageErrors holds one "name: error" entry per failed stage, in chain
	// order.
	StageErrors []string
	// WarmStarted reports that the serving stage reused dual state carried
	// from a previous round instead of cold-starting its solve.
	WarmStarted bool
	// DirtyFraction is the serving stage's estimate of how much of the
	// problem changed since the state it carried (1 on a full solve, 0 on a
	// zero-churn warm round).  Meaningful only for delta-aware stages.
	DirtyFraction float64
	// FullSolveFallback reports that a delta-aware stage held carried state
	// but discarded it and re-solved from scratch — because the delta failed
	// validation or the dirty fraction crossed the stage's threshold.
	FullSolveFallback bool
}

// SolveReporter is implemented by solvers that can describe how their last
// solve was served.  The platform's round loop type-asserts against it.
type SolveReporter interface {
	LastReport() SolveReport
}

// Degrader is the graceful-degradation composite: a chain of solvers
// ordered best-first (e.g. exact → local-search → greedy) run under a
// per-solve deadline.  The preferred stage gets the whole Deadline; if it
// times out, panics, or fails, the middle stages share one Grace budget
// (default Deadline/2) to attempt a better-than-worst answer; the terminal
// stage runs without any deadline at all, so — short of the caller's own
// context dying — a Degrader solve always returns a complete assignment
// from *some* stage.  Partial results of an abandoned stage are never
// served: every stage either completes or contributes nothing.
//
// A zero Deadline disables the timers entirely and the chain degrades only
// on stage errors/panics, which still makes the composite a robustness
// wrapper: one broken algorithm no longer takes the serving loop down.
//
// The zero value is not usable; construct with NewDegrader or
// DefaultDegrader.  A *Degrader is safe for concurrent use, but LastReport
// only meaningfully relates to the previous SolveCtx when the caller
// serialises solves (the platform's round mutex does).
type Degrader struct {
	// Chain is the best-first stage list; at least one stage is required.
	Chain []Solver
	// Deadline is the per-solve budget for the preferred stage; 0 disables
	// deadline-based degradation.
	Deadline time.Duration
	// Grace is the shared budget for the middle stages once the preferred
	// stage has consumed the Deadline; 0 means Deadline/2.
	Grace time.Duration

	mu   sync.Mutex
	last SolveReport
}

// NewDegrader builds a Degrader over chain with the given per-solve
// deadline.  It panics on an empty chain — a degrader with nothing to run
// is a programming error, not a runtime condition.
func NewDegrader(deadline time.Duration, chain ...Solver) *Degrader {
	if len(chain) == 0 {
		panic("core: NewDegrader requires at least one stage")
	}
	return &Degrader{Chain: chain, Deadline: deadline}
}

// DefaultDegrader is the registry's chain — incremental → exact →
// local-search → greedy with no deadline, so out of the box it acts as a
// panic/error fallback; serving loops set Deadline for time-based
// degradation.  The incremental head makes the composite delta-aware: warm
// rounds repair the carried matching, and any validation failure inside the
// head degrades to a cold exact solve with identical results.
func DefaultDegrader() *Degrader {
	return NewDegrader(0,
		NewIncrementalExact(),
		Exact{Kind: MutualWeight},
		LocalSearch{Kind: MutualWeight},
		Greedy{Kind: MutualWeight},
	)
}

// Name implements Solver.
func (d *Degrader) Name() string { return "degrader" }

// LastReport implements SolveReporter: it returns how the most recently
// completed solve was served.
func (d *Degrader) LastReport() SolveReport {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.last
}

// Solve implements Solver.
func (d *Degrader) Solve(p *Problem, r *stats.RNG) ([]int, error) {
	return d.SolveCtx(context.Background(), p, r)
}

// SolveCtx implements ContextSolver.  The caller's ctx bounds the whole
// chain: once it dies the chain is abandoned immediately and ctx.Err()
// returned.  The internal Deadline/Grace timers bound individual stages
// and only ever cause degradation to the next stage, never a failed solve.
func (d *Degrader) SolveCtx(ctx context.Context, p *Problem, r *stats.RNG) ([]int, error) {
	return d.solveChain(ctx, p, nil, r)
}

// SolveDeltaCtx implements DeltaSolver: the delta is forwarded to every
// delta-aware stage in the chain (in practice the incremental head), and the
// remaining stages solve from scratch exactly as in SolveCtx.  Degradation
// semantics are unchanged — a delta that the head cannot use costs one full
// solve, never a wrong answer.
func (d *Degrader) SolveDeltaCtx(ctx context.Context, p *Problem, delta *Delta, r *stats.RNG) ([]int, error) {
	return d.solveChain(ctx, p, delta, r)
}

func (d *Degrader) solveChain(ctx context.Context, p *Problem, delta *Delta, r *stats.RNG) ([]int, error) {
	if len(d.Chain) == 0 {
		return nil, errors.New("core: degrader has an empty chain")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	var rep SolveReport
	// graceCtx is created lazily on the first post-deadline middle stage so
	// the grace clock starts when degradation starts, not when the solve did.
	var graceCtx context.Context
	defer func() {
		d.mu.Lock()
		d.last = rep
		d.mu.Unlock()
	}()

	for i, s := range d.Chain {
		stageCtx := ctx
		var cancel context.CancelFunc
		switch {
		case i == len(d.Chain)-1:
			// Terminal stage: caller ctx only.  The chain's whole point is
			// that the last, cheapest stage always gets to finish.
		case i == 0:
			if d.Deadline > 0 {
				stageCtx, cancel = context.WithTimeout(ctx, d.Deadline)
			}
		default:
			if d.Deadline > 0 {
				if graceCtx == nil {
					grace := d.Grace
					if grace <= 0 {
						grace = d.Deadline / 2
					}
					var graceCancel context.CancelFunc
					graceCtx, graceCancel = context.WithTimeout(ctx, grace)
					defer graceCancel() // runs at most once: guarded by graceCtx == nil
				}
				stageCtx = graceCtx
			}
		}

		var stageRNG *stats.RNG
		if r != nil {
			stageRNG = r.Split()
		}
		var sel []int
		var err error
		if ds, ok := s.(DeltaSolver); ok && delta != nil {
			sel, err = safeSolveDelta(stageCtx, p, ds, delta, stageRNG)
		} else {
			sel, err = safeSolve(stageCtx, p, s, stageRNG)
		}
		if cancel != nil {
			cancel()
		}
		if err == nil {
			rep.ServedBy = s.Name()
			if i > 0 {
				rep.DegradedFrom = d.Chain[0].Name()
			}
			if sr, ok := s.(SolveReporter); ok {
				sub := sr.LastReport()
				rep.WarmStarted = sub.WarmStarted
				rep.DirtyFraction = sub.DirtyFraction
				rep.FullSolveFallback = sub.FullSolveFallback
			}
			return sel, nil
		}
		rep.StageErrors = append(rep.StageErrors, fmt.Sprintf("%s: %v", s.Name(), err))
		if ctx.Err() != nil {
			// The caller is gone; degrading further would serve nobody.
			return nil, ctx.Err()
		}
		if errors.Is(err, context.DeadlineExceeded) {
			rep.SolveTimedOut = true
		}
	}
	return nil, fmt.Errorf("core: degrader: every stage failed: %s",
		strings.Join(rep.StageErrors, "; "))
}
