package core

import (
	"testing"

	"repro/internal/benefit"
	"repro/internal/market"
	"repro/internal/stats"
)

func TestOnlineSolversFeasible(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		p := smallProblem(t, seed)
		for _, s := range []Solver{
			OnlineGreedy{Kind: MutualWeight},
			OnlineRanking{Kind: MutualWeight},
			OnlineTwoPhase{Kind: MutualWeight},
		} {
			sel, err := s.Solve(p, stats.NewRNG(seed))
			if err != nil {
				t.Fatalf("%s: %v", s.Name(), err)
			}
			if err := p.Feasible(sel); err != nil {
				t.Fatalf("%s seed %d: %v", s.Name(), seed, err)
			}
		}
	}
}

func TestOnlineBoundedByOffline(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		p := smallProblem(t, seed)
		eSel, _ := (Exact{Kind: MutualWeight}).Solve(p, nil)
		opt := p.Evaluate(eSel).TotalMutual
		for _, s := range []Solver{
			OnlineGreedy{Kind: MutualWeight},
			OnlineRanking{Kind: MutualWeight},
			OnlineTwoPhase{Kind: MutualWeight},
		} {
			sel, _ := s.Solve(p, stats.NewRNG(seed))
			if got := p.Evaluate(sel).TotalMutual; got > opt+1e-6 {
				t.Fatalf("%s beat offline optimum: %v > %v", s.Name(), got, opt)
			}
		}
	}
}

func TestOnlineGreedyCompetitiveInPractice(t *testing.T) {
	// Average competitive ratio over random orders should clear 0.5 — the
	// worst-case bound — comfortably on random-order instances.
	var onSum, optSum float64
	for seed := uint64(1); seed <= 20; seed++ {
		p := smallProblem(t, seed)
		eSel, _ := (Exact{Kind: MutualWeight}).Solve(p, nil)
		oSel, _ := (OnlineGreedy{Kind: MutualWeight}).Solve(p, stats.NewRNG(seed))
		onSum += p.Evaluate(oSel).TotalMutual
		optSum += p.Evaluate(eSel).TotalMutual
	}
	if ratio := onSum / optSum; ratio < 0.6 {
		t.Fatalf("online greedy average ratio %v below 0.6", ratio)
	}
}

func TestOnlineTwoPhaseFallback(t *testing.T) {
	// With an extreme quantile the threshold is near the max observed value;
	// phase-2 workers must still get their single-best fallback edge, so
	// coverage should not collapse to the sample fraction.
	p := smallProblem(t, 31)
	sel, err := (OnlineTwoPhase{Kind: MutualWeight, ThresholdQuantile: 0.99}).
		Solve(p, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Feasible(sel); err != nil {
		t.Fatal(err)
	}
	active := map[int]bool{}
	for _, ei := range sel {
		active[p.Edges[ei].W] = true
	}
	if len(active) < p.In.NumWorkers()/3 {
		t.Fatalf("only %d/%d workers active despite fallback", len(active), p.In.NumWorkers())
	}
}

func TestOnlineTwoPhaseDefaults(t *testing.T) {
	// Invalid knob values fall back to defaults rather than failing.
	p := smallProblem(t, 32)
	for _, s := range []OnlineTwoPhase{
		{Kind: MutualWeight, SampleFrac: -1, ThresholdQuantile: -2},
		{Kind: MutualWeight, SampleFrac: 1.5, ThresholdQuantile: 2},
	} {
		sel, err := s.Solve(p, stats.NewRNG(3))
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Feasible(sel); err != nil {
			t.Fatal(err)
		}
	}
}

func TestOnlineArrivalOrderMatters(t *testing.T) {
	// Different RNG seeds permute arrivals, which should usually change the
	// achieved value — evidence the solver actually processes arrivals
	// sequentially rather than solving offline.
	p := smallProblem(t, 33)
	values := map[float64]bool{}
	for seed := uint64(1); seed <= 8; seed++ {
		sel, _ := (OnlineGreedy{Kind: MutualWeight}).Solve(p, stats.NewRNG(seed))
		values[p.Evaluate(sel).TotalMutual] = true
	}
	if len(values) < 2 {
		t.Fatal("online greedy value identical across 8 arrival orders")
	}
}

func TestOnlineZeroCapacityWorkers(t *testing.T) {
	in := market.MustGenerate(market.Config{NumWorkers: 10, NumTasks: 10}, 34)
	in.Workers[0].Capacity = 0
	in.Workers[5].Capacity = 0
	p := MustNewProblem(in, benefit.DefaultParams())
	for _, s := range []Solver{
		OnlineGreedy{Kind: MutualWeight},
		OnlineRanking{Kind: MutualWeight},
		OnlineTwoPhase{Kind: MutualWeight},
	} {
		sel, err := s.Solve(p, stats.NewRNG(1))
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		for _, ei := range sel {
			if w := p.Edges[ei].W; w == 0 || w == 5 {
				t.Fatalf("%s assigned zero-capacity worker %d", s.Name(), w)
			}
		}
	}
}
