package core

// FilterProblem derives a sub-problem containing only the edges that pass
// keep.  The instance and benefit model are shared; edge values are copied,
// so edge indices of the filtered problem do NOT correspond to indices of
// the original — treat the result as a problem in its own right.
//
// The canonical use is a per-pair quality floor (quality SLA): requesters
// on real platforms often refuse workers below a competence bar regardless
// of how cheap or willing they are.  MinQuality builds that filter; the
// SLA ablation (X-Abl6) sweeps it and measures what the bar costs in
// coverage and worker-side benefit.
func FilterProblem(p *Problem, keep func(e *EdgeInfo) bool) *Problem {
	nW, nT := p.In.NumWorkers(), p.In.NumTasks()
	out := &Problem{In: p.In, Model: p.Model}
	// Two-pass counted build into the CSR layout, mirroring NewProblem:
	// count surviving edges per node, prefix-sum into offsets, then fill.
	keepMask := make([]bool, len(p.Edges))
	offW := make([]int32, nW+1)
	offT := make([]int32, nT+1)
	total := 0
	for i := range p.Edges {
		e := &p.Edges[i]
		if keep(e) {
			keepMask[i] = true
			offW[e.W+1]++
			offT[e.T+1]++
			total++
		}
	}
	for w := 0; w < nW; w++ {
		offW[w+1] += offW[w]
	}
	for t := 0; t < nT; t++ {
		offT[t+1] += offT[t]
	}
	out.Edges = make([]EdgeInfo, 0, total)
	out.adjW = make([]int32, total)
	out.adjT = make([]int32, total)
	out.offW, out.offT = offW, offT
	curT := make([]int32, nT)
	copy(curT, offT[:nT])
	for i := range p.Edges {
		if !keepMask[i] {
			continue
		}
		e := &p.Edges[i]
		idx := int32(len(out.Edges))
		out.Edges = append(out.Edges, *e)
		// Filtering preserves the source's worker-major enumeration, so the
		// worker adjacency is the identity, exactly as in NewProblem.
		out.adjW[idx] = idx
		out.adjT[curT[e.T]] = idx
		curT[e.T]++
	}
	return out
}

// MinQuality returns a FilterProblem predicate keeping only pairs whose
// requester-side quality is at least q.
func MinQuality(q float64) func(e *EdgeInfo) bool {
	return func(e *EdgeInfo) bool { return e.Q >= q }
}
