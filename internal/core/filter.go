package core

// FilterProblem derives a sub-problem containing only the edges that pass
// keep.  The instance and benefit model are shared; edge values are copied,
// so edge indices of the filtered problem do NOT correspond to indices of
// the original — treat the result as a problem in its own right.
//
// The canonical use is a per-pair quality floor (quality SLA): requesters
// on real platforms often refuse workers below a competence bar regardless
// of how cheap or willing they are.  MinQuality builds that filter; the
// SLA ablation (X-Abl6) sweeps it and measures what the bar costs in
// coverage and worker-side benefit.
func FilterProblem(p *Problem, keep func(e *EdgeInfo) bool) *Problem {
	out := &Problem{
		In:    p.In,
		Model: p.Model,
		adjW:  make([][]int32, p.In.NumWorkers()),
		adjT:  make([][]int32, p.In.NumTasks()),
	}
	for i := range p.Edges {
		e := &p.Edges[i]
		if !keep(e) {
			continue
		}
		idx := int32(len(out.Edges))
		out.Edges = append(out.Edges, *e)
		out.adjW[e.W] = append(out.adjW[e.W], idx)
		out.adjT[e.T] = append(out.adjT[e.T], idx)
	}
	return out
}

// MinQuality returns a FilterProblem predicate keeping only pairs whose
// requester-side quality is at least q.
func MinQuality(q float64) func(e *EdgeInfo) bool {
	return func(e *EdgeInfo) bool { return e.Q >= q }
}
