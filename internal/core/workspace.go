package core

import (
	"sync"

	"repro/internal/bipartite"
)

// Workspace is the reusable scratch memory behind the solvers' hot paths:
// capacity and chosen-flag arrays, edge-order and weight buffers, the local
// search's per-pass vertex tables and move lists, and the online solvers'
// arrival orders.  Repeated solves of same-shape problems through one
// workspace allocate (almost) nothing beyond the returned selection.
//
// Two ways to use it:
//
//   - implicit: leave solvers' WS field nil and every Solve call borrows a
//     workspace from a package-wide sync.Pool for its duration — concurrent
//     solves each get their own;
//   - explicit: set the WS field (e.g. Greedy{Kind: MutualWeight, WS: ws})
//     to pin one workspace across calls, which is what the platform service
//     does round over round and what the allocation regression test
//     measures.
//
// A Workspace is not safe for concurrent use; the pool hands each borrower
// a private one.  All buffers are sized lazily and retained at high-water
// mark.
type Workspace struct {
	capW, capT []int
	chosen     []bool
	order      []int32    // edge order under sort
	sortWt     []float64  // weights permuted alongside order
	sel        []int      // selection under construction
	ints       []int      // arrival orders / int edge orders
	picks      []PickEdge // reconciliation candidates (sharded union / refill)

	// Local-search state.
	edgeWt                 []float64 // frozen per-edge weight, indexed by edge
	minChosenW, minChosenT []int32
	bestAddW, bestAddT     []int32
	touchedW, touchedT     []bool
	moveBufs               [][]lsMove
	moves                  []lsMove
	ls                     lsState // shared read-mostly view for the sweeps

	sorter32   edgeOrder[int32]
	moveSorter lsMoveSorter

	// Exact-path state: the retained bipartite graph the flow reduction is
	// rebuilt into, and the matching engine's own scratch arena (network,
	// potentials, Dijkstra labels, heap) — see bipartite.FlowWorkspace.
	flowG  *bipartite.Graph
	flowWS *bipartite.FlowWorkspace
}

// NewWorkspace returns an empty workspace; buffers grow on first use.
func NewWorkspace() *Workspace { return &Workspace{} }

var workspacePool = sync.Pool{New: func() any { return &Workspace{} }}

// acquireWorkspace hands the caller a private workspace: the solver's own
// WS when pinned (pooled false), a pooled one otherwise.  The pair is two
// plain values rather than a release closure so the pinned fast path stays
// allocation-free.
func acquireWorkspace(pinned *Workspace) (ws *Workspace, pooled bool) {
	if pinned != nil {
		return pinned, false
	}
	return workspacePool.Get().(*Workspace), true
}

// releaseWorkspace returns a pooled workspace; a pinned one stays with its
// owner.
func releaseWorkspace(ws *Workspace, pooled bool) {
	if pooled {
		workspacePool.Put(ws)
	}
}

// The grow helpers return a length-n slice backed by buf when it is large
// enough, a fresh allocation otherwise.  Contents are unspecified; callers
// that need zeroed memory clear explicitly (growBoolZero does it for them).

func growInts(buf []int, n int) []int {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]int, n)
}

func growI32(buf []int32, n int) []int32 {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]int32, n)
}

func growF64(buf []float64, n int) []float64 {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]float64, n)
}

func growEdges(buf []EdgeInfo, n int) []EdgeInfo {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]EdgeInfo, n)
}

func growPicks(buf []PickEdge, n int) []PickEdge {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]PickEdge, n)
}

func growBoolZero(buf []bool, n int) []bool {
	if cap(buf) >= n {
		buf = buf[:n]
		clear(buf)
		return buf
	}
	return make([]bool, n)
}

// capacityWInto fills ws.capW with the workers' capacities and returns it.
func (p *Problem) capacityWInto(ws *Workspace) []int {
	ws.capW = growInts(ws.capW, p.In.NumWorkers())
	for i := range p.In.Workers {
		ws.capW[i] = p.In.Workers[i].Capacity
	}
	return ws.capW
}

// capacityTInto fills ws.capT with the tasks' replication limits and
// returns it.
func (p *Problem) capacityTInto(ws *Workspace) []int {
	ws.capT = growInts(ws.capT, p.In.NumTasks())
	for j := range p.In.Tasks {
		ws.capT[j] = p.In.Tasks[j].Replication
	}
	return ws.capT
}

// copySel returns a fresh caller-owned copy of a workspace-backed
// selection (nil for an empty one), so the workspace can be reused or
// returned to the pool without aliasing the result.
func copySel(sel []int) []int {
	if len(sel) == 0 {
		return nil
	}
	out := make([]int, len(sel))
	copy(out, sel)
	return out
}
