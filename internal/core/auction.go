package core

import (
	"context"
	"fmt"

	"repro/internal/stats"
)

// Auction implements the Bertsekas auction for the *unit-capacity* special
// case of the problem (every worker capacity and task replication equal to
// 1, i.e. plain maximum-weight bipartite matching).  It exists as an
// ablation point: a decentralised price-based mechanism is the natural
// "market" answer to assignment, and the optimality experiment compares how
// close its ε-optimal matchings get to Exact at a fraction of the cost.
//
// Workers act as bidders, tasks carry prices that start at zero and only
// rise; a worker bids its best net value's margin over the second best plus
// ε, and the outbid worker re-enters the queue.  A worker whose best net
// value is negative leaves the market — correct here because matching is
// optional (weights are non-negative but unmatched is allowed) and prices
// only rise, so a priced-out worker can never become profitable again.  The
// final matching is within n·ε of the optimum.
//
// Solve returns an error when the instance is not unit-capacity; callers
// choose it deliberately for matching-shaped markets.
type Auction struct {
	Kind WeightKind
	// Epsilon is the optimality tolerance; 0 means the default 1e-4, far
	// below the benefit model's meaningful resolution.  Runtime scales as
	// O(E/ε) in the worst case, so very small ε trades time for precision.
	Epsilon float64
}

// Name implements Solver.
func (Auction) Name() string { return "auction" }

// Solve implements Solver.  Deterministic; the RNG is unused.
func (s Auction) Solve(p *Problem, _ *stats.RNG) ([]int, error) {
	return s.solve(nil, p)
}

// SolveCtx implements ContextSolver: the bidding loop polls ctx every
// auctionCtxStride pops, so a deadline fire aborts the auction with
// ctx.Err() after a bounded amount of extra bidding.  An un-fired ctx
// leaves the result bit-identical to Solve.
func (s Auction) SolveCtx(ctx context.Context, p *Problem, _ *stats.RNG) ([]int, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if ctx.Done() == nil {
		ctx = nil // cancellation impossible; skip the periodic polls
	}
	return s.solve(ctx, p)
}

// auctionCtxStride is how many queue pops happen between cancellation
// polls: each pop is O(deg) work, so polling every pop would put a ctx.Err
// atomic load in the inner loop for nothing.
const auctionCtxStride = 4096

func (s Auction) solve(ctx context.Context, p *Problem) ([]int, error) {
	for i := range p.In.Workers {
		if p.In.Workers[i].Capacity > 1 {
			return nil, fmt.Errorf("core: auction requires unit worker capacities (worker %d has %d)", i, p.In.Workers[i].Capacity)
		}
	}
	for j := range p.In.Tasks {
		if p.In.Tasks[j].Replication > 1 {
			return nil, fmt.Errorf("core: auction requires unit task replication (task %d has %d)", j, p.In.Tasks[j].Replication)
		}
	}
	eps := s.Epsilon
	if eps <= 0 {
		eps = 1e-4
	}

	nW := p.In.NumWorkers()
	nT := p.In.NumTasks()
	price := make([]float64, nT)
	matchW := make([]int, nW) // edge index assigned to worker, -1 if none
	matchT := make([]int, nT) // edge index assigned to task, -1 if none
	for i := range matchW {
		matchW[i] = -1
	}
	for j := range matchT {
		matchT[j] = -1
	}

	queue := make([]int, 0, nW)
	for w := 0; w < nW; w++ {
		if p.In.Workers[w].Capacity > 0 && len(p.AdjW(w)) > 0 {
			queue = append(queue, w)
		}
	}
	pops := 0
	for len(queue) > 0 {
		if pops++; pops%auctionCtxStride == 0 && ctxDone(ctx) {
			return nil, ctx.Err() // discard the partial matching and prices
		}
		w := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		// Find best and second-best net value among w's edges.
		bestEdge, bestVal, secondVal := -1, 0.0, 0.0
		first := true
		for _, ei := range p.AdjW(w) {
			e := &p.Edges[ei]
			v := e.Weight(s.Kind) - price[e.T]
			switch {
			case first:
				bestEdge, bestVal, secondVal = int(ei), v, v
				first = false
			case v > bestVal:
				secondVal = bestVal
				bestEdge, bestVal = int(ei), v
			case v > secondVal:
				secondVal = v
			}
		}
		if bestEdge == -1 || bestVal < 0 {
			continue // priced out: stay unmatched for good
		}
		// Matching is optional, so the bidder's outside option (profit 0)
		// acts as the second-best alternative: never bid past the point
		// where the worker would rather stay home.
		if secondVal < 0 {
			secondVal = 0
		}
		t := p.Edges[bestEdge].T
		// Bid: raise the price by the profit margin plus ε.
		price[t] += bestVal - secondVal + eps
		if prev := matchT[t]; prev != -1 {
			outbid := p.Edges[prev].W
			matchW[outbid] = -1
			queue = append(queue, outbid)
		}
		matchT[t] = bestEdge
		matchW[w] = bestEdge
	}

	var sel []int
	for _, ei := range matchW {
		if ei != -1 {
			sel = append(sel, ei)
		}
	}
	return sel, nil
}
