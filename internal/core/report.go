package core

import "repro/internal/stats"

// CategoryReport breaks an assignment down by task category — the view a
// platform operator reads to see *where* the market clears and where it
// starves.
type CategoryReport struct {
	Category int
	// Tasks and Slots describe demand in the category.
	Tasks int
	Slots int
	// Filled is how many of those slots the assignment covered.
	Filled int
	// EligibleWorkers counts workers with this category as a specialty.
	EligibleWorkers int
	// MeanMutual / MeanQuality average the per-pair values of the filled
	// slots (0 when none).
	MeanMutual  float64
	MeanQuality float64
}

// ByCategory computes one CategoryReport per category for sel.
func (p *Problem) ByCategory(sel []int) []CategoryReport {
	reps := make([]CategoryReport, p.In.NumCategories)
	for c := range reps {
		reps[c].Category = c
	}
	for j := range p.In.Tasks {
		t := &p.In.Tasks[j]
		reps[t.Category].Tasks++
		reps[t.Category].Slots += t.Replication
	}
	for i := range p.In.Workers {
		for _, c := range p.In.Workers[i].Specialties {
			reps[c].EligibleWorkers++
		}
	}
	for _, ei := range sel {
		e := &p.Edges[ei]
		c := p.In.Tasks[e.T].Category
		reps[c].Filled++
		reps[c].MeanMutual += e.M
		reps[c].MeanQuality += e.Q
	}
	for c := range reps {
		if reps[c].Filled > 0 {
			reps[c].MeanMutual /= float64(reps[c].Filled)
			reps[c].MeanQuality /= float64(reps[c].Filled)
		}
	}
	return reps
}

// StarvedCategories returns the categories whose slot coverage falls below
// threshold (ignoring categories with no demand), sorted by coverage
// ascending — the operator's worklist for recruiting or re-pricing.
func (p *Problem) StarvedCategories(sel []int, threshold float64) []CategoryReport {
	var out []CategoryReport
	for _, r := range p.ByCategory(sel) {
		if r.Slots == 0 {
			continue
		}
		if float64(r.Filled)/float64(r.Slots) < threshold {
			out = append(out, r)
		}
	}
	// Insertion sort by coverage: the list is short.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0; j-- {
			ci := float64(out[j].Filled) / float64(out[j].Slots)
			cp := float64(out[j-1].Filled) / float64(out[j-1].Slots)
			if ci < cp {
				out[j], out[j-1] = out[j-1], out[j]
			} else {
				break
			}
		}
	}
	return out
}

// GiniWorkerBenefit computes the Gini coefficient of per-worker received
// benefit under sel — a complement to the Jain index in Metrics for readers
// who think in inequality terms.
func (p *Problem) GiniWorkerBenefit(sel []int) float64 {
	return stats.Gini(p.PerWorkerBenefit(sel))
}
