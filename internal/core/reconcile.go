package core

import "slices"

// PickEdge is one candidate assignment in an abstract dense bipartite index
// space — the currency of the reconciliation pass shared by ShardedGreedy's
// sequential phases and platform-level cross-shard merging.  W and T index
// caller-chosen capacity arrays (they need not be instance indices: the
// platform reconciler densifies only the contested workers and tasks), and
// Ref is an opaque caller handle carried through the sort so the winner set
// can be mapped back to whatever the picks came from (edge indices, pair
// slots, ...).
type PickEdge struct {
	W, T   int32
	Weight float64
	Ref    int32
}

// ReconcileTake is the keep-heaviest primitive behind optimistic sharding:
// it sorts picks in place by decreasing weight (ties broken by ascending
// Ref, so callers that assign unique Refs get a strict, deterministic total
// order), then greedily takes every pick whose endpoints still have
// capacity, decrementing capW/capT in place.  Taken picks are compacted to
// picks[:k] in take order and k is returned; picks[k:] hold the losers in
// unspecified order.
//
// Both halves of the reconcile pattern are this one primitive: resolving
// over-subscription (capW = true capacities, capT = slots up for grabs) and
// refilling freed slots (capW = residual capacities, capT = freed counts).
// It allocates nothing beyond sort internals.
func ReconcileTake(picks []PickEdge, capW, capT []int) int {
	slices.SortFunc(picks, func(a, b PickEdge) int {
		switch {
		case a.Weight > b.Weight:
			return -1
		case a.Weight < b.Weight:
			return 1
		case a.Ref < b.Ref:
			return -1
		case a.Ref > b.Ref:
			return 1
		default:
			return 0
		}
	})
	k := 0
	for i := range picks {
		e := picks[i]
		if capW[e.W] > 0 && capT[e.T] > 0 {
			capW[e.W]--
			capT[e.T]--
			// Swap rather than overwrite so picks stays a permutation:
			// the loser displaced from slot k survives in picks[k:].
			picks[i] = picks[k]
			picks[k] = e
			k++
		}
	}
	return k
}
