package core

import (
	"testing"

	"repro/internal/benefit"
	"repro/internal/market"
)

func TestLocalSearchNeverWorseThanGreedy(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		p := smallProblem(t, seed)
		gSel, _ := (Greedy{Kind: MutualWeight}).Solve(p, nil)
		lSel, err := (LocalSearch{Kind: MutualWeight}).Solve(p, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Feasible(lSel); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		g := p.Evaluate(gSel).TotalMutual
		l := p.Evaluate(lSel).TotalMutual
		if l < g-1e-9 {
			t.Fatalf("seed %d: local search %v below greedy %v", seed, l, g)
		}
	}
}

func TestLocalSearchClosesGapSomewhere(t *testing.T) {
	// Across a batch of seeds, local search should strictly improve on
	// greedy at least once — otherwise the moves are dead code.
	improved := false
	for seed := uint64(1); seed <= 40 && !improved; seed++ {
		p := smallProblem(t, seed)
		gSel, _ := (Greedy{Kind: MutualWeight}).Solve(p, nil)
		lSel, _ := (LocalSearch{Kind: MutualWeight}).Solve(p, nil)
		if p.Evaluate(lSel).TotalMutual > p.Evaluate(gSel).TotalMutual+1e-9 {
			improved = true
		}
	}
	if !improved {
		t.Fatal("local search never improved on greedy across 40 seeds")
	}
}

func TestLocalSearchBoundedByExact(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		p := smallProblem(t, seed)
		eSel, _ := (Exact{Kind: MutualWeight}).Solve(p, nil)
		lSel, _ := (LocalSearch{Kind: MutualWeight}).Solve(p, nil)
		if p.Evaluate(lSel).TotalMutual > p.Evaluate(eSel).TotalMutual+1e-6 {
			t.Fatalf("seed %d: local search beat exact", seed)
		}
	}
}

func TestLocalSearchSwapScenario(t *testing.T) {
	// Hand-built instance where greedy is provably suboptimal and one swap
	// fixes it.  Two workers, two tasks, one category, all unit capacities.
	// Weights (via interest; beta=0, lambda=0 so mutual = interest):
	//   w0: interest 0.9 → both tasks weigh 0.9 (picked first for t0... tie)
	// Build it directly via accuracy instead for control: use lambda=1 so
	// mutual = quality, and give w0 acc .9, w1 acc .89 with t0 easy, t1
	// hard.  Greedy pairs (w0,t0) then (w1,t1); optimum might pair
	// (w0,t1),(w1,t0) when the strong worker matters more on the hard task.
	in := &market.Instance{
		Name:          "swap",
		NumCategories: 1,
		Workers: []market.Worker{
			{ID: 0, Capacity: 1, Accuracy: []float64{0.99}, Interest: []float64{0.5}, Specialties: []int{0}},
			{ID: 1, Capacity: 1, Accuracy: []float64{0.6}, Interest: []float64{0.5}, Specialties: []int{0}},
		},
		Tasks: []market.Task{
			{ID: 0, Category: 0, Replication: 1, Payment: 1, Difficulty: 0},
			{ID: 1, Category: 0, Replication: 1, Payment: 1, Difficulty: 0.9},
		},
		MaxPayment: 1,
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	p := MustNewProblem(in, benefit.Params{Lambda: 1, Beta: 0.5})
	eSel, _ := (Exact{Kind: MutualWeight}).Solve(p, nil)
	lSel, _ := (LocalSearch{Kind: MutualWeight}).Solve(p, nil)
	e := p.Evaluate(eSel).TotalMutual
	l := p.Evaluate(lSel).TotalMutual
	if l < e-1e-9 {
		t.Fatalf("local search %v did not reach exact %v on swap instance", l, e)
	}
}

func TestLocalSearchMaxPassesRespected(t *testing.T) {
	p := smallProblem(t, 3)
	// One pass should still be feasible and no worse than greedy.
	sel, err := (LocalSearch{Kind: MutualWeight, MaxPasses: 1}).Solve(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Feasible(sel); err != nil {
		t.Fatal(err)
	}
}
