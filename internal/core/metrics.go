package core

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/stats"
)

// Metrics scores one assignment from every angle the evaluation reports:
// both sides' totals, coverage, fairness across workers, and (optionally)
// wall-clock time filled in by the harness.
type Metrics struct {
	Algorithm string
	// Pairs is the number of assigned worker-task pairs.
	Pairs int
	// TotalMutual / TotalQuality / TotalWorker are the sums of the per-edge
	// benefit values over the assignment.  TotalMutual is the MBA-L
	// objective.
	TotalMutual  float64
	TotalQuality float64
	TotalWorker  float64
	// SlotCoverage is pairs / Σ replication — the fraction of requested
	// answer slots that were filled.
	SlotCoverage float64
	// WorkerJain is Jain's fairness index over per-worker received benefit
	// (workers with no assignment count as zero — an idle worker is the
	// unfairness the paper worries about).
	WorkerJain float64
	// MeanWorkerBenefit averages received worker-side benefit over all
	// workers (idle included).
	MeanWorkerBenefit float64
	// ActiveWorkers is the number of workers with at least one task.
	ActiveWorkers int
	// Elapsed is the solver wall-clock, set by the harness (zero when the
	// assignment was not timed).
	Elapsed time.Duration
}

// Evaluate scores sel.  It assumes sel is feasible (call Feasible first when
// in doubt); it never mutates the problem.
func (p *Problem) Evaluate(sel []int) Metrics {
	m := Metrics{Pairs: len(sel)}
	perWorker := make([]float64, p.In.NumWorkers())
	for _, ei := range sel {
		e := &p.Edges[ei]
		m.TotalMutual += e.M
		m.TotalQuality += e.Q
		m.TotalWorker += e.B
		perWorker[e.W] += e.B
	}
	if slots := p.In.TotalSlots(); slots > 0 {
		m.SlotCoverage = float64(len(sel)) / float64(slots)
	}
	m.WorkerJain = stats.JainIndex(perWorker)
	m.MeanWorkerBenefit = stats.Mean(perWorker)
	for _, b := range perWorker {
		if b > 0 {
			m.ActiveWorkers++
		}
	}
	return m
}

// PerWorkerBenefit returns each worker's received worker-side benefit under
// sel (zero for idle workers).  The dynamics layer feeds this into the
// participation model.
func (p *Problem) PerWorkerBenefit(sel []int) []float64 {
	perWorker := make([]float64, p.In.NumWorkers())
	for _, ei := range sel {
		e := &p.Edges[ei]
		perWorker[e.W] += e.B
	}
	return perWorker
}

// String renders the metrics as one aligned report line.
func (m Metrics) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s pairs=%5d mutual=%9.2f quality=%9.2f worker=%9.2f cover=%5.1f%% jain=%.3f active=%d",
		m.Algorithm, m.Pairs, m.TotalMutual, m.TotalQuality, m.TotalWorker,
		100*m.SlotCoverage, m.WorkerJain, m.ActiveWorkers)
	if m.Elapsed > 0 {
		fmt.Fprintf(&b, " time=%s", m.Elapsed.Round(time.Microsecond))
	}
	return b.String()
}

// Run times solver on p with a child generator derived from r, validates the
// result and returns the assignment together with its metrics.  It is the
// single entry point the experiment harness, examples and public API use, so
// every reported number passed through the same feasibility gate.
func Run(p *Problem, s Solver, r *stats.RNG) ([]int, Metrics, error) {
	return RunCtx(context.Background(), p, s, r)
}

// RunCtx is Run under a context: deadline-aware solvers (ContextSolver)
// observe ctx cooperatively and return ctx.Err() once it fires, others run
// to completion.  A solver panic is contained and surfaced as an error, so
// a serving loop built on RunCtx survives a broken algorithm.
func RunCtx(ctx context.Context, p *Problem, s Solver, r *stats.RNG) ([]int, Metrics, error) {
	start := time.Now()
	sel, err := safeSolve(ctx, p, s, r)
	elapsed := time.Since(start)
	if err != nil {
		return nil, Metrics{}, fmt.Errorf("core: %s: %w", s.Name(), err)
	}
	if err := p.Feasible(sel); err != nil {
		return nil, Metrics{}, fmt.Errorf("core: %s returned infeasible assignment: %w", s.Name(), err)
	}
	m := p.Evaluate(sel)
	m.Algorithm = s.Name()
	m.Elapsed = elapsed
	return sel, m, nil
}
