package core

import (
	"testing"
	"testing/quick"

	"repro/internal/benefit"
	"repro/internal/market"
	"repro/internal/stats"
)

func TestStableMatchingFeasible(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		p := smallProblem(t, seed)
		sel, err := (StableMatching{}).Solve(p, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Feasible(sel); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestStableMatchingHasNoBlockingPairs(t *testing.T) {
	// The defining property of deferred acceptance.
	for seed := uint64(1); seed <= 15; seed++ {
		p := smallProblem(t, seed)
		sel, err := (StableMatching{}).Solve(p, nil)
		if err != nil {
			t.Fatal(err)
		}
		if bp := BlockingPairs(p, sel); bp != 0 {
			t.Fatalf("seed %d: stable matching has %d blocking pairs", seed, bp)
		}
	}
}

func TestStableMatchingClassicInstance(t *testing.T) {
	// 2 workers, 2 tasks, conflicting preferences: worker 0 wants task 0
	// (higher interest) but task 0 prefers worker 1 (higher accuracy), and
	// vice versa.  Worker-proposing DA yields the worker-optimal stable
	// matching.
	in := &market.Instance{
		Name:          "conflict",
		NumCategories: 2,
		Workers: []market.Worker{
			{ID: 0, Capacity: 1, Accuracy: []float64{0.6, 0.9}, Interest: []float64{0.9, 0.1}, Specialties: []int{0, 1}},
			{ID: 1, Capacity: 1, Accuracy: []float64{0.9, 0.6}, Interest: []float64{0.1, 0.9}, Specialties: []int{0, 1}},
		},
		Tasks: []market.Task{
			{ID: 0, Category: 0, Replication: 1, Payment: 1, Difficulty: 0},
			{ID: 1, Category: 1, Replication: 1, Payment: 1, Difficulty: 0},
		},
		MaxPayment: 1,
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	// Beta 0: worker pref = interest alone.
	p := MustNewProblem(in, benefit.Params{Lambda: 0.5, Beta: 0})
	sel, err := (StableMatching{}).Solve(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 2 {
		t.Fatalf("expected full matching, got %v", sel)
	}
	// Worker-optimal: each worker gets its first choice (w0→t0, w1→t1),
	// because in this instance that is stable: t0 holding w0 would prefer
	// w1, but w1 prefers its own t1 → no blocking pair.
	for _, ei := range sel {
		e := &p.Edges[ei]
		if e.W != e.T {
			t.Fatalf("expected diagonal worker-optimal matching, got pair (%d,%d)", e.W, e.T)
		}
	}
	if bp := BlockingPairs(p, sel); bp != 0 {
		t.Fatalf("blocking pairs = %d", bp)
	}
}

func TestStableMatchingWithReplication(t *testing.T) {
	// One task with two slots, three workers: the two highest-quality
	// proposers must hold the slots.
	in := &market.Instance{
		Name:          "slots",
		NumCategories: 1,
		Workers: []market.Worker{
			{ID: 0, Capacity: 1, Accuracy: []float64{0.6}, Interest: []float64{1}, Specialties: []int{0}},
			{ID: 1, Capacity: 1, Accuracy: []float64{0.9}, Interest: []float64{1}, Specialties: []int{0}},
			{ID: 2, Capacity: 1, Accuracy: []float64{0.8}, Interest: []float64{1}, Specialties: []int{0}},
		},
		Tasks: []market.Task{
			{ID: 0, Category: 0, Replication: 2, Payment: 1, Difficulty: 0},
		},
		MaxPayment: 1,
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	p := MustNewProblem(in, benefit.DefaultParams())
	sel, err := (StableMatching{}).Solve(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 2 {
		t.Fatalf("slots not filled: %v", sel)
	}
	got := map[int]bool{}
	for _, ei := range sel {
		got[p.Edges[ei].W] = true
	}
	if !got[1] || !got[2] {
		t.Fatalf("wrong workers held: %v", got)
	}
}

func TestEfficientAlgorithmsLeaveBlockingPairs(t *testing.T) {
	// Across seeds, the benefit-maximising exact assignment should leave
	// at least one blocking pair somewhere — otherwise the stability
	// experiment is vacuous.
	total := 0
	for seed := uint64(1); seed <= 10; seed++ {
		p := smallProblem(t, seed)
		sel, _ := (Exact{Kind: MutualWeight}).Solve(p, nil)
		total += BlockingPairs(p, sel)
	}
	if total == 0 {
		t.Fatal("exact never produced a blocking pair across 10 seeds")
	}
}

func TestStableMatchingEmptyAndDeterministic(t *testing.T) {
	pe := MustNewProblem(emptyMarket(), benefit.DefaultParams())
	sel, err := (StableMatching{}).Solve(pe, nil)
	if err != nil || len(sel) != 0 {
		t.Fatalf("empty: %v %v", sel, err)
	}
	p := smallProblem(t, 9)
	a, _ := (StableMatching{}).Solve(p, stats.NewRNG(1))
	b, _ := (StableMatching{}).Solve(p, stats.NewRNG(2))
	if len(a) != len(b) {
		t.Fatal("stable matching not deterministic")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("stable matching not deterministic")
		}
	}
}

// Property: stability holds on arbitrary random instances.
func TestQuickStableNoBlockingPairs(t *testing.T) {
	f := func(seed uint64) bool {
		in, err := market.Generate(market.Config{NumWorkers: 15, NumTasks: 15}, seed)
		if err != nil {
			return false
		}
		p, err := NewProblem(in, benefit.DefaultParams())
		if err != nil {
			return false
		}
		sel, err := (StableMatching{}).Solve(p, nil)
		if err != nil || p.Feasible(sel) != nil {
			return false
		}
		return BlockingPairs(p, sel) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
