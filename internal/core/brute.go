package core

// BruteForceSubmodular computes the exact optimum of the MBA-S
// (diminishing-returns) objective by depth-first enumeration over edge
// subsets with feasibility pruning.  It is exponential — callers must keep
// instances tiny (it panics above maxBruteEdges) — and exists so tests and
// the evaluation can measure SubmodularGreedy's *actual* approximation
// ratio against the true optimum rather than only citing the ½ bound.
func (p *Problem) BruteForceSubmodular() (best float64, bestSel []int) {
	const maxBruteEdges = 22
	if len(p.Edges) > maxBruteEdges {
		panic("core: BruteForceSubmodular limited to tiny instances")
	}
	capW := p.CapacityW()
	capT := p.CapacityT()
	var cur []int

	var rec func(i int)
	rec = func(i int) {
		if i == len(p.Edges) {
			if v := p.SubmodularValue(cur); v > best {
				best = v
				bestSel = append(bestSel[:0], cur...)
			}
			return
		}
		// Branch 1: skip edge i.
		rec(i + 1)
		// Branch 2: take edge i if feasible.
		e := &p.Edges[i]
		if capW[e.W] > 0 && capT[e.T] > 0 {
			capW[e.W]--
			capT[e.T]--
			cur = append(cur, i)
			rec(i + 1)
			cur = cur[:len(cur)-1]
			capW[e.W]++
			capT[e.T]++
		}
	}
	rec(0)
	return best, bestSel
}
