package core_test

// Churn-trace equivalence for the incremental solver: a market evolves by
// random departures, arrivals and re-pricings, the platform-style Delta is
// rebuilt each round, and the incremental solver's objective must stay
// bit-identical (as the scaled int64 the kernels optimise) to a cold
// ExactSerial solve of the same round.  The harness draws entities from a
// fixed pool so a departed worker can return later — the nastiest case for
// slot reuse — and leaves Delta.ChangedEdges nil on purpose: re-pricing
// detection must come from the solver's own O(E) sweep.

import (
	"testing"

	"repro/internal/benefit"
	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/market"
	"repro/internal/stats"
)

// churnPool owns the entity pool and the live subsets of an evolving
// market.  Live order is insertion order; removals preserve it, so the
// prev→current correspondence is positional.
type churnPool struct {
	pool  *market.Instance
	liveW []int // pool worker ids, current round, in order
	liveT []int // pool task ids, current round, in order
}

func newChurnPool(cfg market.Config, seed uint64, liveFrac float64) *churnPool {
	h := &churnPool{pool: market.MustGenerate(cfg, seed)}
	nw := int(float64(h.pool.NumWorkers()) * liveFrac)
	nt := int(float64(h.pool.NumTasks()) * liveFrac)
	for i := 0; i < nw; i++ {
		h.liveW = append(h.liveW, i)
	}
	for j := 0; j < nt; j++ {
		h.liveT = append(h.liveT, j)
	}
	return h
}

// instance materialises the live subset as a dense-ID Instance.  MaxPayment
// is pinned to the pool's cached value so utility normalisation never
// shifts when the most expensive task happens to leave.
func (h *churnPool) instance() *market.Instance {
	in := &market.Instance{
		Name:          h.pool.Name,
		NumCategories: h.pool.NumCategories,
		MaxPayment:    h.pool.MaxPayment,
	}
	for i, pw := range h.liveW {
		w := h.pool.Workers[pw]
		w.ID = i
		in.Workers = append(in.Workers, w)
	}
	for j, pt := range h.liveT {
		t := h.pool.Tasks[pt]
		t.ID = j
		in.Tasks = append(in.Tasks, t)
	}
	return in
}

// churn applies one round of random mutations: a few removals per side, a
// few arrivals from the dormant pool, and a few task re-pricings.
func (h *churnPool) churn(rng *stats.RNG) {
	const minLive = 3
	for k := rng.Intn(3); k > 0 && len(h.liveW) > minLive; k-- {
		i := rng.Intn(len(h.liveW))
		h.liveW = append(h.liveW[:i], h.liveW[i+1:]...)
	}
	for k := rng.Intn(3); k > 0 && len(h.liveT) > minLive; k-- {
		i := rng.Intn(len(h.liveT))
		h.liveT = append(h.liveT[:i], h.liveT[i+1:]...)
	}
	liveW := make(map[int]bool, len(h.liveW))
	for _, pw := range h.liveW {
		liveW[pw] = true
	}
	liveT := make(map[int]bool, len(h.liveT))
	for _, pt := range h.liveT {
		liveT[pt] = true
	}
	for k := rng.Intn(3); k > 0; k-- {
		pw := rng.Intn(h.pool.NumWorkers())
		if !liveW[pw] {
			liveW[pw] = true
			h.liveW = append(h.liveW, pw)
		}
	}
	for k := rng.Intn(3); k > 0; k-- {
		pt := rng.Intn(h.pool.NumTasks())
		if !liveT[pt] {
			liveT[pt] = true
			h.liveT = append(h.liveT, pt)
		}
	}
	// Re-price a few live tasks within (0, MaxPayment] — unreported churn
	// the solver must discover on its own.
	for k := rng.Intn(3); k > 0; k-- {
		pt := h.liveT[rng.Intn(len(h.liveT))]
		h.pool.Tasks[pt].Payment = rng.Float64Range(0.01, h.pool.MaxPayment)
	}
}

// buildDelta derives the platform-style Delta between the previous round's
// live lists and the current ones, by pool-id correspondence.
func buildDelta(prevW, prevT, curW, curT []int) *core.Delta {
	idxW := make(map[int]int32, len(prevW))
	for i, pw := range prevW {
		idxW[pw] = int32(i)
	}
	idxT := make(map[int]int32, len(prevT))
	for j, pt := range prevT {
		idxT[pt] = int32(j)
	}
	d := &core.Delta{
		PrevWorker: make([]int32, len(curW)),
		PrevTask:   make([]int32, len(curT)),
	}
	seenW := make([]bool, len(prevW))
	for i, pw := range curW {
		if pi, ok := idxW[pw]; ok {
			d.PrevWorker[i] = pi
			seenW[pi] = true
		} else {
			d.PrevWorker[i] = -1
			d.AddedWorkers = append(d.AddedWorkers, int32(i))
		}
	}
	seenT := make([]bool, len(prevT))
	for j, pt := range curT {
		if pj, ok := idxT[pt]; ok {
			d.PrevTask[j] = pj
			seenT[pj] = true
		} else {
			d.PrevTask[j] = -1
			d.AddedTasks = append(d.AddedTasks, int32(j))
		}
	}
	for i, ok := range seenW {
		if !ok {
			d.RemovedWorkers = append(d.RemovedWorkers, int32(i))
		}
	}
	for j, ok := range seenT {
		if !ok {
			d.RemovedTasks = append(d.RemovedTasks, int32(j))
		}
	}
	return d
}

// scaledObjective sums the selection's weights in the exact kernels' scaled
// int64 domain, the only representation in which "bit-identical objective"
// is well-defined across distinct optimal selections.
func scaledObjective(p *core.Problem, sel []int, kind core.WeightKind) int64 {
	var sum int64
	for _, e := range sel {
		sum -= bipartite.ScaledCost(p.Edges[e].Weight(kind))
	}
	return sum
}

// TestIncrementalChurnTraceEquivalence is the acceptance property: 20 seeds
// spread over the three workload generators, ~12 rounds of random churn
// each, objective equal to the cold exact oracle on every round.  The
// dirty threshold cycles through {tight, default-ish, never-fall-back} so
// all three regimes — frequent full solves, mixed, and pure surgery — are
// exercised; threshold 2 is the strongest test, since every round after the
// first must then be served by delta surgery alone.
func TestIncrementalChurnTraceEquivalence(t *testing.T) {
	configs := []func(w, tk int) market.Config{
		market.FreelanceTraceConfig,
		market.MicrotaskTraceConfig,
		market.UniformConfig,
	}
	thresholds := []float64{0.05, 0.3, 2}
	const rounds = 12
	for seed := uint64(1); seed <= 20; seed++ {
		seed := seed
		cfg := configs[seed%3](60, 50)
		threshold := thresholds[seed%3]
		h := newChurnPool(cfg, seed, 0.7)
		rng := stats.NewRNG(seed * 977)
		solver := &core.IncrementalExact{Kind: core.MutualWeight, DirtyThreshold: threshold}
		oracle := core.ExactSerial{Kind: core.MutualWeight}

		var prevW, prevT []int
		warmRounds := 0
		for round := 0; round < rounds; round++ {
			if round > 0 {
				h.churn(rng)
			}
			in := h.instance()
			p, err := core.NewProblem(in, benefit.DefaultParams())
			if err != nil {
				t.Fatalf("seed %d round %d: %v", seed, round, err)
			}
			var delta *core.Delta
			if round > 0 {
				delta = buildDelta(prevW, prevT, h.liveW, h.liveT)
			}
			sel, _, err := core.RunDeltaCtx(nil, p, solver, delta, stats.NewRNG(seed))
			if err != nil {
				t.Fatalf("seed %d round %d: incremental: %v", seed, round, err)
			}
			rep := solver.LastReport()
			if round > 0 && rep.WarmStarted && !rep.FullSolveFallback {
				warmRounds++
			}
			want, _, err := core.Run(p, oracle, stats.NewRNG(seed))
			if err != nil {
				t.Fatalf("seed %d round %d: oracle: %v", seed, round, err)
			}
			got, exp := scaledObjective(p, sel, core.MutualWeight), scaledObjective(p, want, core.MutualWeight)
			if got != exp {
				t.Fatalf("seed %d round %d (threshold %v, delta %+v): objective %d, oracle %d (report %+v)",
					seed, round, threshold, delta, got, exp, rep)
			}
			prevW = append(prevW[:0], h.liveW...)
			prevT = append(prevT[:0], h.liveT...)
		}
		if threshold >= 1 && warmRounds != rounds-1 {
			t.Fatalf("seed %d: threshold %v should never fall back, but only %d/%d rounds were warm",
				seed, threshold, warmRounds, rounds-1)
		}
		if warmRounds == 0 {
			t.Fatalf("seed %d: no round was served warm — the delta path never ran", seed)
		}
	}
}

// TestIncrementalZeroChurnAllocs gates the steady-state allocation budget:
// a warm round with an identity delta must cost at most 2 allocations —
// the returned selection and nothing else.
func TestIncrementalZeroChurnAllocs(t *testing.T) {
	in := market.MustGenerate(market.FreelanceTraceConfig(80, 60), 7)
	p, err := core.NewProblem(in, benefit.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	s := core.NewIncrementalExact()
	if _, err := s.Solve(p, nil); err != nil {
		t.Fatal(err)
	}
	d := &core.Delta{
		PrevWorker: make([]int32, in.NumWorkers()),
		PrevTask:   make([]int32, in.NumTasks()),
	}
	for i := range d.PrevWorker {
		d.PrevWorker[i] = int32(i)
	}
	for j := range d.PrevTask {
		d.PrevTask[j] = int32(j)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := s.SolveDeltaCtx(nil, p, d, nil); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 2 {
		t.Fatalf("warm zero-churn round costs %.1f allocs/op, want <= 2", allocs)
	}
	rep := s.LastReport()
	if !rep.WarmStarted || rep.FullSolveFallback || rep.DirtyFraction != 0 {
		t.Fatalf("zero-churn round not served warm: %+v", rep)
	}
}

// TestIncrementalFallbackOnBadDelta pins the safety property: a delta whose
// shape lies about the problem must not corrupt the answer — the solver
// falls back to a full solve and still matches the oracle.
func TestIncrementalFallbackOnBadDelta(t *testing.T) {
	in := market.MustGenerate(market.MicrotaskTraceConfig(40, 30), 3)
	p, err := core.NewProblem(in, benefit.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	s := core.NewIncrementalExact()
	if _, err := s.Solve(p, nil); err != nil {
		t.Fatal(err)
	}
	// Claims one fewer worker than the problem has: shape mismatch.
	bad := &core.Delta{
		PrevWorker: make([]int32, in.NumWorkers()-1),
		PrevTask:   make([]int32, in.NumTasks()),
	}
	sel, err := s.SolveDeltaCtx(nil, p, bad, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep := s.LastReport()
	if !rep.FullSolveFallback {
		t.Fatalf("bad delta did not trigger fallback: %+v", rep)
	}
	want, _, err := core.Run(p, core.ExactSerial{Kind: core.MutualWeight}, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if g, w := scaledObjective(p, sel, core.MutualWeight), scaledObjective(p, want, core.MutualWeight); g != w {
		t.Fatalf("fallback objective %d, oracle %d", g, w)
	}
}
