package core

import (
	"container/heap"
	"sort"

	"repro/internal/stats"
)

// StableMatching computes a worker-proposing deferred-acceptance (Gale–
// Shapley) assignment: workers rank tasks by their own utility (B), tasks
// rank workers by expected quality (Q), and proposals are held or rejected
// until no rejected proposal remains.  Capacities generalise the classic
// algorithm to the many-to-many (hospitals/residents-style) setting; the
// preference structure is responsive, so the outcome is stable and
// worker-optimal among stable assignments.
//
// Stability is the economist's answer to the mutual-benefit question: no
// worker-task pair should prefer each other over what they got.  The
// stability-vs-efficiency ablation (X-Abl5) measures what that guarantee
// costs in total mutual benefit relative to the optimisation-based
// algorithms — and how many blocking pairs those algorithms leave behind.
type StableMatching struct{}

// Name implements Solver.
func (StableMatching) Name() string { return "stable-matching" }

// Solve implements Solver.  Deterministic; the RNG is unused.
func (StableMatching) Solve(p *Problem, _ *stats.RNG) ([]int, error) {
	nW := p.In.NumWorkers()
	capW := p.CapacityW()
	capT := p.CapacityT()

	// Worker preference lists: own edges by descending worker utility.
	prefs := make([][]int, nW)
	for w := 0; w < nW; w++ {
		adj := p.AdjW(w)
		list := make([]int, len(adj))
		for i, ei := range adj {
			list[i] = int(ei)
		}
		sort.Slice(list, func(a, b int) bool {
			ba, bb := p.Edges[list[a]].B, p.Edges[list[b]].B
			if ba != bb {
				return ba > bb
			}
			return list[a] < list[b]
		})
		prefs[w] = list
	}

	// Each task holds its current proposals in a min-heap by quality, so
	// the marginal (worst) held worker is evictable in O(log k).
	held := make([]qualHeap, p.In.NumTasks())
	next := make([]int, nW)    // next preference index per worker
	holding := make([]int, nW) // how many tasks each worker currently holds

	// Queue of workers that still want to propose.
	queue := make([]int, 0, nW)
	for w := 0; w < nW; w++ {
		if capW[w] > 0 && len(prefs[w]) > 0 {
			queue = append(queue, w)
		}
	}
	for len(queue) > 0 {
		w := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for holding[w] < capW[w] && next[w] < len(prefs[w]) {
			ei := prefs[w][next[w]]
			next[w]++
			e := &p.Edges[ei]
			t := e.T
			if capT[t] == 0 {
				continue
			}
			if len(held[t]) < capT[t] {
				heap.Push(&held[t], qualEntry{edge: ei, q: e.Q})
				holding[w]++
				continue
			}
			worst := held[t][0]
			if e.Q > worst.q || (e.Q == worst.q && ei < worst.edge) {
				heap.Pop(&held[t])
				heap.Push(&held[t], qualEntry{edge: ei, q: e.Q})
				holding[w]++
				evicted := p.Edges[worst.edge].W
				holding[evicted]--
				if next[evicted] < len(prefs[evicted]) {
					queue = append(queue, evicted)
				}
			}
		}
	}

	var sel []int
	for t := range held {
		for _, entry := range held[t] {
			sel = append(sel, entry.edge)
		}
	}
	sort.Ints(sel)
	return sel, nil
}

// BlockingPairs counts the edges that destabilise sel: pairs (w, t) not in
// the assignment where the worker would rather have t than its worst held
// task (or has spare capacity) AND the task would rather have w than its
// worst held worker (or has a spare slot).  A stable assignment has zero;
// efficiency-maximising assignments usually do not — the gap is the
// stability price quantified in X-Abl5.
func BlockingPairs(p *Problem, sel []int) int {
	inSel := make(map[int]bool, len(sel))
	capW := p.CapacityW()
	capT := p.CapacityT()
	// Worst held value per worker (by B) and per task (by Q).
	const inf = 1e18
	worstB := make([]float64, p.In.NumWorkers())
	worstQ := make([]float64, p.In.NumTasks())
	for i := range worstB {
		worstB[i] = inf
	}
	for i := range worstQ {
		worstQ[i] = inf
	}
	for _, ei := range sel {
		inSel[ei] = true
		e := &p.Edges[ei]
		capW[e.W]--
		capT[e.T]--
		if e.B < worstB[e.W] {
			worstB[e.W] = e.B
		}
		if e.Q < worstQ[e.T] {
			worstQ[e.T] = e.Q
		}
	}
	blocking := 0
	for ei := range p.Edges {
		if inSel[ei] {
			continue
		}
		e := &p.Edges[ei]
		workerWants := capW[e.W] > 0 || e.B > worstB[e.W]
		taskWants := capT[e.T] > 0 || e.Q > worstQ[e.T]
		// A worker with zero capacity can never participate in a blocking
		// pair, spare "capacity" notwithstanding.
		if p.In.Workers[e.W].Capacity == 0 || p.In.Tasks[e.T].Replication == 0 {
			continue
		}
		if workerWants && taskWants {
			blocking++
		}
	}
	return blocking
}

// qualEntry is one held proposal.
type qualEntry struct {
	edge int
	q    float64
}

// qualHeap is a min-heap by quality (ties: higher edge index is worse, so
// eviction order is deterministic).
type qualHeap []qualEntry

func (h qualHeap) Len() int { return len(h) }
func (h qualHeap) Less(i, j int) bool {
	if h[i].q != h[j].q {
		return h[i].q < h[j].q
	}
	return h[i].edge > h[j].edge
}
func (h qualHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *qualHeap) Push(x interface{}) { *h = append(*h, x.(qualEntry)) }
func (h *qualHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
