package core

import (
	"slices"
	"testing"

	"repro/internal/benefit"
	"repro/internal/market"
	"repro/internal/stats"
)

// The tentpole property of the parallel local search: for any goroutine
// count, the collect-then-apply pass produces bit-identical selections to
// the serial reference, because the scan runs against frozen pass-start
// state, the per-range move buffers concatenate in ascending edge order,
// and the apply phase is serial with a deterministic (gain desc, edge asc)
// order.  These tests drive localSearchRun directly with forced proc counts
// — including counts far above GOMAXPROCS — across all three market
// generators and many seeds.

func parallelTestInstances(tb testing.TB) []*Problem {
	tb.Helper()
	var ps []*Problem
	for _, seed := range []uint64{1, 7, 42, 1234, 99991} {
		for _, cfg := range []market.Config{
			market.FreelanceTraceConfig(60, 45),
			market.MicrotaskTraceConfig(45, 70),
			{Name: "uniform", NumWorkers: 50, NumTasks: 50},
		} {
			in := market.MustGenerate(cfg, seed)
			ps = append(ps, MustNewProblem(in, benefit.DefaultParams()))
		}
	}
	ps = append(ps, trapProblem(tb))
	return ps
}

func TestLocalSearchParallelMatchesSerial(t *testing.T) {
	for _, kind := range []WeightKind{MutualWeight, QualityWeight, WorkerWeight} {
		for i, p := range parallelTestInstances(t) {
			ws := NewWorkspace()
			serial, _ := localSearchRun(nil, p, kind, 0, 1, ws)
			for _, procs := range []int{2, 3, 4, 8} {
				got, _ := localSearchRun(nil, p, kind, 0, procs, ws)
				if !slices.Equal(got, serial) {
					t.Fatalf("instance %d (%s) kind %v: procs=%d selection differs from serial\nserial: %v\nparallel: %v",
						i, p.In.Name, kind, procs, serial, got)
				}
			}
		}
	}
}

// TestLocalSearchPublicMatchesSerialSolver holds the two registered solvers
// to each other through the public Solve API, on a market large enough
// (> parallelLSCutoff edges) that LocalSearch actually engages its
// parallel path.
func TestLocalSearchPublicMatchesSerialSolver(t *testing.T) {
	in := market.MustGenerate(market.Config{
		Name: "large-uniform", NumWorkers: 220, NumTasks: 220,
	}, 7)
	p := MustNewProblem(in, benefit.DefaultParams())
	if len(p.Edges) <= parallelLSCutoff {
		t.Fatalf("instance too small to engage the parallel path: %d edges", len(p.Edges))
	}
	fast, err := LocalSearch{Kind: MutualWeight}.Solve(p, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := LocalSearchSerial{Kind: MutualWeight}.Solve(p, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(fast, ref) {
		t.Fatalf("LocalSearch and LocalSearchSerial disagree: %d vs %d edges, objective %v vs %v",
			len(fast), len(ref),
			p.Evaluate(fast).TotalMutual, p.Evaluate(ref).TotalMutual)
	}
	if err := p.Feasible(fast); err != nil {
		t.Fatal(err)
	}
}

// TestLocalSearchSerialNeverWorseThanGreedy pins the monotonicity contract
// of the rewritten pass structure: seeded from Greedy, every applied move
// has exact positive frozen-state gain, so the objective can only rise.
func TestLocalSearchSerialNeverWorseThanGreedy(t *testing.T) {
	for i, p := range parallelTestInstances(t) {
		gSel, _ := Greedy{Kind: MutualWeight}.Solve(p, nil)
		lSel, _ := LocalSearchSerial{Kind: MutualWeight}.Solve(p, nil)
		if err := p.Feasible(lSel); err != nil {
			t.Fatalf("instance %d: %v", i, err)
		}
		g := p.Evaluate(gSel).TotalMutual
		l := p.Evaluate(lSel).TotalMutual
		if l < g-1e-9 {
			t.Fatalf("instance %d: local-search-serial %v worse than greedy %v", i, l, g)
		}
	}
}
