package core

import (
	"math"
	"testing"

	"repro/internal/benefit"
	"repro/internal/market"
	"repro/internal/stats"
)

// Adversarial and robustness tests: the worst-case structures the
// average-case experiments never generate.

// TestOnlineGreedyWorstCaseHalf reproduces the classical ½-competitive
// lower-bound structure for greedy matching: a "chain" where taking the
// locally best edge wastes capacity the optimum needs.  Online greedy must
// still deliver at least half the optimum (its guarantee) on every arrival
// order.
func TestOnlineGreedyWorstCaseHalf(t *testing.T) {
	// Workers w0, w1; tasks t0, t1.  Edges: (w0,t0)=0.5+ε, (w0,t1)=0.5,
	// (w1,t0)=0.5.  If w0 arrives first it grabs t0 (slightly better),
	// leaving w1 stranded (no edge to t1): value ≈ 0.5 vs OPT = 1.0.
	in := &market.Instance{
		Name:          "adversarial-chain",
		NumCategories: 2,
		Workers: []market.Worker{
			{ID: 0, Capacity: 1, Accuracy: []float64{0.8, 0.8}, Interest: []float64{0.52, 0.5}, Specialties: []int{0, 1}},
			{ID: 1, Capacity: 1, Accuracy: []float64{0.8, 0.8}, Interest: []float64{0.5, 0}, Specialties: []int{0}},
		},
		Tasks: []market.Task{
			{ID: 0, Category: 0, Replication: 1, Payment: 1, Difficulty: 0},
			{ID: 1, Category: 1, Replication: 1, Payment: 1, Difficulty: 0},
		},
		MaxPayment: 1,
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	p := MustNewProblem(in, benefit.Params{Lambda: 0, Beta: 0})
	eSel, _ := (Exact{Kind: MutualWeight}).Solve(p, nil)
	opt := p.Evaluate(eSel).TotalMutual
	worst := math.Inf(1)
	for seed := uint64(1); seed <= 32; seed++ {
		sel, err := (OnlineGreedy{Kind: MutualWeight}).Solve(p, stats.NewRNG(seed))
		if err != nil {
			t.Fatal(err)
		}
		if v := p.Evaluate(sel).TotalMutual; v < worst {
			worst = v
		}
	}
	if worst < opt/2-1e-9 {
		t.Fatalf("online greedy fell below its 1/2 guarantee: %v vs opt %v", worst, opt)
	}
	if worst > 0.75*opt {
		t.Fatalf("adversarial instance miscalibrated: worst order achieved %v of opt %v", worst, opt)
	}
}

// TestGreedyTightHalfBound drives batch greedy to exactly its tight bound
// on the trap instance and confirms the exact solver doubles it.
func TestGreedyTightHalfBound(t *testing.T) {
	p := trapProblem(t)
	gSel, _ := (Greedy{Kind: MutualWeight}).Solve(p, nil)
	eSel, _ := (Exact{Kind: MutualWeight}).Solve(p, nil)
	g := p.Evaluate(gSel).TotalMutual
	e := p.Evaluate(eSel).TotalMutual
	ratio := g / e
	if ratio < 0.5-1e-9 {
		t.Fatalf("greedy broke its guarantee: %v", ratio)
	}
	if ratio > 0.6 {
		t.Fatalf("trap not tight: ratio %v", ratio)
	}
	// Local search must escape it completely.
	lSel, _ := (LocalSearch{Kind: MutualWeight}).Solve(p, nil)
	if l := p.Evaluate(lSel).TotalMutual; math.Abs(l-e) > 1e-9 {
		t.Fatalf("local search did not reach exact on the trap: %v vs %v", l, e)
	}
}

// TestSolversOnSaturatedMarket exercises the regime where demand vastly
// exceeds supply (every worker slot contested).
func TestSolversOnSaturatedMarket(t *testing.T) {
	in := market.MustGenerate(market.Config{
		NumWorkers: 10, NumTasks: 200,
		MinCapacity: 1, MaxCapacity: 1,
		MinReplication: 3, MaxReplication: 5,
	}, 81)
	p := MustNewProblem(in, benefit.DefaultParams())
	for _, s := range allSolvers() {
		sel, err := s.Solve(p, stats.NewRNG(1))
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if err := p.Feasible(sel); err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if len(sel) > in.TotalCapacity() {
			t.Fatalf("%s assigned beyond total capacity", s.Name())
		}
	}
}

// TestSolversOnStarvedMarket exercises the opposite regime: a single task
// in a sea of workers.
func TestSolversOnStarvedMarket(t *testing.T) {
	in := market.MustGenerate(market.Config{
		NumWorkers: 200, NumTasks: 1, NumCategories: 2,
		MinSpecialties: 2, MaxSpecialties: 2,
	}, 82)
	p := MustNewProblem(in, benefit.DefaultParams())
	for _, s := range allSolvers() {
		sel, err := s.Solve(p, stats.NewRNG(1))
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if len(sel) > in.Tasks[0].Replication {
			t.Fatalf("%s over-assigned the single task", s.Name())
		}
	}
}

// TestUniformWeightsDegenerate checks tie-heavy instances (all weights
// equal) don't break deterministic tie-breaking or feasibility.
func TestUniformWeightsDegenerate(t *testing.T) {
	in := &market.Instance{
		Name:          "ties",
		NumCategories: 1,
		MaxPayment:    1,
	}
	for i := 0; i < 10; i++ {
		in.Workers = append(in.Workers, market.Worker{
			ID: i, Capacity: 2,
			Accuracy:    []float64{0.75},
			Interest:    []float64{0.5},
			Specialties: []int{0},
		})
	}
	for j := 0; j < 10; j++ {
		in.Tasks = append(in.Tasks, market.Task{
			ID: j, Category: 0, Replication: 2, Payment: 1, Difficulty: 0.5,
		})
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	p := MustNewProblem(in, benefit.DefaultParams())
	for _, s := range allSolvers() {
		sel, err := s.Solve(p, stats.NewRNG(1))
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if err := p.Feasible(sel); err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		// All weights identical → every maximal assignment has the same
		// value; exact and greedy must agree exactly.
	}
	eSel, _ := (Exact{Kind: MutualWeight}).Solve(p, nil)
	gSel, _ := (Greedy{Kind: MutualWeight}).Solve(p, nil)
	if math.Abs(p.Evaluate(eSel).TotalMutual-p.Evaluate(gSel).TotalMutual) > 1e-9 {
		t.Fatal("tie-degenerate instance: greedy and exact disagree")
	}
}
