package core_test

// External test package: these tests drive the deadline/degradation
// machinery through faultinject's sleepy and panicking solvers, which
// import core — an in-package test would be an import cycle.

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/benefit"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/market"
	"repro/internal/stats"
)

func degraderProblem(t testing.TB, nw, nt int, seed uint64) *core.Problem {
	t.Helper()
	in := market.MustGenerate(market.FreelanceTraceConfig(nw, nt), seed)
	p, err := core.NewProblem(in, benefit.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestDegraderDeadlineDegradesToTerminal is the acceptance scenario: an
// exact stage that cannot possibly meet the deadline must degrade down to
// a non-empty greedy assignment within 2× the deadline, with the report
// naming what was given up.
func TestDegraderDeadlineDegradesToTerminal(t *testing.T) {
	const deadline = 200 * time.Millisecond
	d := core.NewDegrader(deadline,
		faultinject.SleepySolver{Inner: core.Exact{Kind: core.MutualWeight}, Delay: 10 * time.Second},
		faultinject.SleepySolver{Inner: core.LocalSearch{Kind: core.MutualWeight}, Delay: 10 * time.Second},
		core.Greedy{Kind: core.MutualWeight},
	)
	p := degraderProblem(t, 40, 30, 1)

	start := time.Now()
	sel, m, err := core.Run(p, d, stats.NewRNG(1))
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed >= 2*deadline {
		t.Fatalf("degradation took %v, want < %v", elapsed, 2*deadline)
	}
	if len(sel) == 0 || m.Pairs == 0 {
		t.Fatal("degraded round assigned nothing")
	}
	rep := d.LastReport()
	if rep.ServedBy != "greedy" {
		t.Fatalf("ServedBy = %q, want greedy", rep.ServedBy)
	}
	if rep.DegradedFrom != "exact" {
		t.Fatalf("DegradedFrom = %q, want exact", rep.DegradedFrom)
	}
	if !rep.SolveTimedOut {
		t.Fatal("SolveTimedOut not set")
	}
	if len(rep.StageErrors) != 2 {
		t.Fatalf("StageErrors = %v, want both abandoned stages", rep.StageErrors)
	}
}

// TestDegraderNoDeadlineServesPreferred pins the happy path: with solvers
// that finish, the preferred stage serves and the selection is exactly
// what the stage alone would produce.
func TestDegraderNoDeadlineServesPreferred(t *testing.T) {
	p := degraderProblem(t, 30, 25, 2)
	d := core.DefaultDegrader()
	got, _, err := core.Run(p, d, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	rep := d.LastReport()
	if rep.ServedBy != "incremental" || rep.DegradedFrom != "" || rep.SolveTimedOut {
		t.Fatalf("unexpected report: %+v", rep)
	}
	want, _, err := core.Run(p, core.Exact{Kind: core.MutualWeight}, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("degrader selection size %d, exact %d", len(got), len(want))
	}
}

// TestDegraderPanicDegrades: a panicking preferred stage is contained and
// degraded past, not propagated.
func TestDegraderPanicDegrades(t *testing.T) {
	p := degraderProblem(t, 25, 20, 3)
	d := core.NewDegrader(0,
		faultinject.NewPanicSolver(core.Exact{Kind: core.MutualWeight}, faultinject.After(0)),
		core.Greedy{Kind: core.MutualWeight},
	)
	sel, _, err := core.Run(p, d, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) == 0 {
		t.Fatal("no assignment after panic degradation")
	}
	rep := d.LastReport()
	if rep.ServedBy != "greedy" || rep.DegradedFrom != "exact" {
		t.Fatalf("report = %+v", rep)
	}
	if len(rep.StageErrors) != 1 || !strings.Contains(rep.StageErrors[0], "panicked") {
		t.Fatalf("StageErrors = %v", rep.StageErrors)
	}
	if rep.SolveTimedOut {
		t.Fatal("panic misreported as timeout")
	}
}

// TestDegraderCallerContextAborts: once the caller's own context dies the
// chain must abort rather than keep degrading for nobody.
func TestDegraderCallerContextAborts(t *testing.T) {
	p := degraderProblem(t, 25, 20, 4)
	d := core.NewDegrader(50*time.Millisecond,
		faultinject.SleepySolver{Inner: core.Exact{Kind: core.MutualWeight}, Delay: 10 * time.Second},
		core.Greedy{Kind: core.MutualWeight},
	)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := d.SolveCtx(ctx, p, stats.NewRNG(1)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRunCtxContainsPanic: the panic fence turns a broken solver into an
// ordinary error for plain Run callers too.
func TestRunCtxContainsPanic(t *testing.T) {
	p := degraderProblem(t, 10, 10, 5)
	s := faultinject.NewPanicSolver(core.Greedy{Kind: core.MutualWeight}, faultinject.After(0))
	_, _, err := core.Run(p, s, stats.NewRNG(1))
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("err = %v, want contained panic", err)
	}
}

// TestSolverKernelsCancelPromptly drives the exact solver on a market
// large enough that the flow kernel takes real time, under a context that
// fires almost immediately, and bounds how long cancellation takes — the
// per-augmentation poll, not the upfront check, is what has to fire.
func TestSolverKernelsCancelPromptly(t *testing.T) {
	p := degraderProblem(t, 400, 300, 6)
	s := core.Exact{Kind: core.MutualWeight}
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := s.SolveCtx(ctx, p, stats.NewRNG(1))
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if elapsed > time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
}

// TestSolversHonourCancelledContext: every deadline-aware solver must
// refuse to serve a result under an already-dead context.
func TestSolversHonourCancelledContext(t *testing.T) {
	p := degraderProblem(t, 60, 45, 6)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, s := range []core.ContextSolver{
		core.Exact{Kind: core.MutualWeight},
		core.LocalSearch{Kind: core.MutualWeight},
		core.Auction{Kind: core.MutualWeight},
	} {
		if sel, err := s.SolveCtx(ctx, p, stats.NewRNG(1)); !errors.Is(err, context.Canceled) || sel != nil {
			t.Fatalf("%s: (%v, %v), want (nil, context.Canceled)", s.Name(), sel, err)
		}
	}
}

// TestSolveCtxUnfiredMatchesSolve pins the bit-identical promise: an
// un-fired context must not change any deadline-aware solver's output.
func TestSolveCtxUnfiredMatchesSolve(t *testing.T) {
	p := degraderProblem(t, 60, 45, 7)
	for _, s := range []core.ContextSolver{
		core.Exact{Kind: core.MutualWeight},
		core.LocalSearch{Kind: core.MutualWeight},
	} {
		plain, err := s.Solve(p, stats.NewRNG(1))
		if err != nil {
			t.Fatal(err)
		}
		ctxed, err := s.SolveCtx(context.Background(), p, stats.NewRNG(1))
		if err != nil {
			t.Fatal(err)
		}
		if len(plain) != len(ctxed) {
			t.Fatalf("%s: ctx changed the selection (%d vs %d edges)", s.Name(), len(plain), len(ctxed))
		}
		for i := range plain {
			if plain[i] != ctxed[i] {
				t.Fatalf("%s: ctx changed edge %d", s.Name(), i)
			}
		}
	}
}

// TestDegraderRegistered: the registry entry resolves and solves.
func TestDegraderRegistered(t *testing.T) {
	s, err := core.ByName("degrader")
	if err != nil {
		t.Fatal(err)
	}
	p := degraderProblem(t, 15, 12, 8)
	sel, _, err := core.Run(p, s, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) == 0 {
		t.Fatal("registry degrader assigned nothing")
	}
}
