package core

import (
	"testing"

	"repro/internal/benefit"
	"repro/internal/market"
	"repro/internal/stats"
)

func TestShardedGreedyFeasible(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		p := smallProblem(t, seed)
		for _, shards := range []int{0, 1, 2, 7} {
			sel, err := (ShardedGreedy{Kind: MutualWeight, Shards: shards}).Solve(p, nil)
			if err != nil {
				t.Fatal(err)
			}
			if err := p.Feasible(sel); err != nil {
				t.Fatalf("seed %d shards %d: %v", seed, shards, err)
			}
		}
	}
}

func TestShardedGreedyTracksGreedy(t *testing.T) {
	// Reconciliation should keep sharded within a few percent of the
	// sequential greedy across seeds (aggregate comparison).
	var sharded, greedy float64
	for seed := uint64(1); seed <= 10; seed++ {
		in := market.MustGenerate(market.FreelanceTraceConfig(150, 100), seed)
		p := MustNewProblem(in, benefit.DefaultParams())
		sSel, err := (ShardedGreedy{Kind: MutualWeight, Shards: 4}).Solve(p, nil)
		if err != nil {
			t.Fatal(err)
		}
		gSel, _ := (Greedy{Kind: MutualWeight}).Solve(p, nil)
		sharded += p.Evaluate(sSel).TotalMutual
		greedy += p.Evaluate(gSel).TotalMutual
	}
	if sharded < 0.97*greedy {
		t.Fatalf("sharded %v fell more than 3%% below greedy %v", sharded, greedy)
	}
}

func TestShardedGreedySingleShardMatchesGreedy(t *testing.T) {
	// With one shard the algorithm degenerates to plain greedy exactly.
	p := smallProblem(t, 5)
	sSel, _ := (ShardedGreedy{Kind: MutualWeight, Shards: 1}).Solve(p, nil)
	gSel, _ := (Greedy{Kind: MutualWeight}).Solve(p, nil)
	if p.Evaluate(sSel).TotalMutual != p.Evaluate(gSel).TotalMutual {
		t.Fatalf("single-shard %v != greedy %v",
			p.Evaluate(sSel).TotalMutual, p.Evaluate(gSel).TotalMutual)
	}
}

func TestShardedGreedyDeterministic(t *testing.T) {
	p := smallProblem(t, 6)
	a, _ := (ShardedGreedy{Kind: MutualWeight, Shards: 4}).Solve(p, stats.NewRNG(1))
	b, _ := (ShardedGreedy{Kind: MutualWeight, Shards: 4}).Solve(p, stats.NewRNG(2))
	if p.Evaluate(a).TotalMutual != p.Evaluate(b).TotalMutual || len(a) != len(b) {
		t.Fatal("sharded greedy not deterministic across runs")
	}
}

func TestShardedGreedyEmptyAndDegenerate(t *testing.T) {
	pe := MustNewProblem(emptyMarket(), benefit.DefaultParams())
	sel, err := (ShardedGreedy{}).Solve(pe, nil)
	if err != nil || len(sel) != 0 {
		t.Fatalf("empty: sel=%v err=%v", sel, err)
	}
	// More shards than tasks must clamp rather than fail.
	in := market.MustGenerate(market.Config{NumWorkers: 10, NumTasks: 3}, 1)
	p := MustNewProblem(in, benefit.DefaultParams())
	sel, err = (ShardedGreedy{Kind: MutualWeight, Shards: 64}).Solve(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Feasible(sel); err != nil {
		t.Fatal(err)
	}
}

func TestShardedGreedyTinyMarketsHighShards(t *testing.T) {
	// 1 task, several workers: every shard count collapses to one shard and
	// the result must equal plain greedy exactly.
	in := market.MustGenerate(market.Config{NumWorkers: 6, NumTasks: 1}, 3)
	p := MustNewProblem(in, benefit.DefaultParams())
	gSel, _ := (Greedy{Kind: MutualWeight}).Solve(p, nil)
	for _, shards := range []int{2, 8, 64} {
		sel, err := (ShardedGreedy{Kind: MutualWeight, Shards: shards}).Solve(p, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Feasible(sel); err != nil {
			t.Fatalf("shards %d: %v", shards, err)
		}
		if p.Evaluate(sel).TotalMutual != p.Evaluate(gSel).TotalMutual {
			t.Fatalf("shards %d: %v != greedy %v", shards,
				p.Evaluate(sel).TotalMutual, p.Evaluate(gSel).TotalMutual)
		}
	}
}

func TestShardedGreedySingleEdgeHighShards(t *testing.T) {
	// A 1-worker / 1-task / 1-edge market under an absurd shard count: the
	// shard clamp must reduce to one shard and still take the lone edge.
	in := &market.Instance{
		Name: "one-edge", NumCategories: 1,
		Workers: []market.Worker{{
			ID: 0, Capacity: 1,
			Accuracy:    []float64{0.9},
			Interest:    []float64{0.7},
			Specialties: []int{0},
		}},
		Tasks:      []market.Task{{ID: 0, Category: 0, Replication: 1, Payment: 2}},
		MaxPayment: 2,
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	p := MustNewProblem(in, benefit.DefaultParams())
	if len(p.Edges) != 1 {
		t.Fatalf("market has %d edges, want 1", len(p.Edges))
	}
	for _, shards := range []int{0, 1, 64} {
		sel, err := (ShardedGreedy{Kind: MutualWeight, Shards: shards}).Solve(p, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(sel) != 1 || sel[0] != 0 {
			t.Fatalf("shards %d: sel = %v, want [0]", shards, sel)
		}
		if err := p.Feasible(sel); err != nil {
			t.Fatal(err)
		}
	}
}

func TestShardedGreedyMaximal(t *testing.T) {
	// The fill pass guarantees no assignable pair is left on the table.
	p := smallProblem(t, 7)
	sel, _ := (ShardedGreedy{Kind: MutualWeight, Shards: 4}).Solve(p, nil)
	capW := p.CapacityW()
	capT := p.CapacityT()
	taken := map[int]bool{}
	for _, ei := range sel {
		taken[ei] = true
		capW[p.Edges[ei].W]--
		capT[p.Edges[ei].T]--
	}
	for ei := range p.Edges {
		if !taken[ei] && capW[p.Edges[ei].W] > 0 && capT[p.Edges[ei].T] > 0 {
			t.Fatalf("edge %d assignable but unassigned", ei)
		}
	}
}
