package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/benefit"
	"repro/internal/market"
	"repro/internal/stats"
)

// allSolvers lists every solver that works on general (non-unit) instances.
func allSolvers() []Solver {
	return []Solver{
		Exact{Kind: MutualWeight},
		Greedy{Kind: MutualWeight},
		LocalSearch{Kind: MutualWeight},
		SubmodularGreedy{},
		QualityOnly(),
		WorkerOnly(),
		Random{},
		RoundRobin{},
		OnlineGreedy{Kind: MutualWeight},
		OnlineRanking{Kind: MutualWeight},
		OnlineTwoPhase{Kind: MutualWeight},
	}
}

func TestAllSolversFeasible(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		p := smallProblem(t, seed)
		for _, s := range allSolvers() {
			sel, err := s.Solve(p, stats.NewRNG(seed))
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, s.Name(), err)
			}
			if err := p.Feasible(sel); err != nil {
				t.Fatalf("seed %d %s infeasible: %v", seed, s.Name(), err)
			}
		}
	}
}

func TestSolverNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range allSolvers() {
		if seen[s.Name()] {
			t.Fatalf("duplicate solver name %q", s.Name())
		}
		seen[s.Name()] = true
	}
}

func TestExactBeatsEveryHeuristic(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		p := smallProblem(t, seed)
		r := stats.NewRNG(seed)
		exactSel, err := (Exact{Kind: MutualWeight}).Solve(p, r)
		if err != nil {
			t.Fatal(err)
		}
		exact := p.Evaluate(exactSel).TotalMutual
		for _, s := range allSolvers() {
			sel, err := s.Solve(p, stats.NewRNG(seed))
			if err != nil {
				t.Fatal(err)
			}
			got := p.Evaluate(sel).TotalMutual
			if got > exact+1e-6 {
				t.Fatalf("seed %d: %s (%v) beat exact (%v) on the linear objective",
					seed, s.Name(), got, exact)
			}
		}
	}
}

func TestGreedyHalfApproximation(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		p := smallProblem(t, seed)
		exactSel, _ := (Exact{Kind: MutualWeight}).Solve(p, nil)
		greedySel, _ := (Greedy{Kind: MutualWeight}).Solve(p, nil)
		exact := p.Evaluate(exactSel).TotalMutual
		greedy := p.Evaluate(greedySel).TotalMutual
		if greedy < exact/2-1e-9 {
			t.Fatalf("seed %d: greedy %v below half of exact %v", seed, greedy, exact)
		}
	}
}

func TestGreedyBeatsRandom(t *testing.T) {
	// On average over seeds; individual seeds could tie on tiny instances.
	var greedySum, randomSum float64
	for seed := uint64(1); seed <= 10; seed++ {
		p := smallProblem(t, seed)
		gSel, _ := (Greedy{Kind: MutualWeight}).Solve(p, nil)
		rSel, _ := (Random{}).Solve(p, stats.NewRNG(seed))
		greedySum += p.Evaluate(gSel).TotalMutual
		randomSum += p.Evaluate(rSel).TotalMutual
	}
	if greedySum <= randomSum {
		t.Fatalf("greedy total %v did not beat random %v", greedySum, randomSum)
	}
}

func TestQualityOnlyMaximisesQualityButNotWorkerSide(t *testing.T) {
	var qoQuality, mutQuality, qoWorker, mutWorker float64
	for seed := uint64(1); seed <= 10; seed++ {
		p := smallProblem(t, seed)
		qoSel, _ := QualityOnly().Solve(p, nil)
		mutSel, _ := (Exact{Kind: MutualWeight}).Solve(p, nil)
		qo := p.Evaluate(qoSel)
		mut := p.Evaluate(mutSel)
		qoQuality += qo.TotalQuality
		mutQuality += mut.TotalQuality
		qoWorker += qo.TotalWorker
		mutWorker += mut.TotalWorker
	}
	if qoQuality <= mutQuality*0.95 {
		t.Fatalf("quality-only should excel at quality: %v vs %v", qoQuality, mutQuality)
	}
	if qoWorker >= mutWorker {
		t.Fatalf("quality-only should sacrifice worker benefit: %v vs %v", qoWorker, mutWorker)
	}
}

func TestExactAgainstBruteForceTiny(t *testing.T) {
	// On tiny instances, enumerate all subsets of edges.
	for seed := uint64(1); seed <= 15; seed++ {
		in := market.MustGenerate(market.Config{
			NumWorkers: 3, NumTasks: 3, NumCategories: 2,
			MinSpecialties: 1, MaxSpecialties: 2,
			MinCapacity: 1, MaxCapacity: 2,
			MinReplication: 1, MaxReplication: 2,
		}, seed)
		p := MustNewProblem(in, benefit.DefaultParams())
		if len(p.Edges) > 16 {
			continue
		}
		exactSel, _ := (Exact{Kind: MutualWeight}).Solve(p, nil)
		exact := p.Evaluate(exactSel).TotalMutual

		best := 0.0
		for mask := 0; mask < 1<<len(p.Edges); mask++ {
			var sel []int
			for i := 0; i < len(p.Edges); i++ {
				if mask&(1<<i) != 0 {
					sel = append(sel, i)
				}
			}
			if p.Feasible(sel) != nil {
				continue
			}
			if v := p.Evaluate(sel).TotalMutual; v > best {
				best = v
			}
		}
		if math.Abs(exact-best) > 1e-6 {
			t.Fatalf("seed %d: exact %v vs brute %v", seed, exact, best)
		}
	}
}

func TestDeterministicSolversStable(t *testing.T) {
	p := smallProblem(t, 11)
	for _, s := range []Solver{
		Exact{Kind: MutualWeight}, Greedy{Kind: MutualWeight},
		LocalSearch{Kind: MutualWeight}, SubmodularGreedy{}, RoundRobin{},
	} {
		a, _ := s.Solve(p, stats.NewRNG(1))
		b, _ := s.Solve(p, stats.NewRNG(999))
		if len(a) != len(b) {
			t.Fatalf("%s: lengths differ across RNGs", s.Name())
		}
		am := p.Evaluate(a).TotalMutual
		bm := p.Evaluate(b).TotalMutual
		if am != bm {
			t.Fatalf("%s: values differ across RNGs: %v vs %v", s.Name(), am, bm)
		}
	}
}

func TestRandomSolverSeedControlled(t *testing.T) {
	p := smallProblem(t, 12)
	a, _ := (Random{}).Solve(p, stats.NewRNG(5))
	b, _ := (Random{}).Solve(p, stats.NewRNG(5))
	if len(a) != len(b) {
		t.Fatal("same seed random runs differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed random runs differ")
		}
	}
}

// emptyMarket builds a valid instance with workers but zero tasks.  It must
// be constructed by hand: market.Config treats zero sizes as "use default".
func emptyMarket() *market.Instance {
	return &market.Instance{
		Name:          "empty",
		NumCategories: 1,
		Workers: []market.Worker{
			{ID: 0, Capacity: 1, Accuracy: []float64{0.8}, Interest: []float64{0.5}, Specialties: []int{0}},
			{ID: 1, Capacity: 1, Accuracy: []float64{0.7}, Interest: []float64{0.4}, Specialties: []int{0}},
		},
	}
}

func TestEmptyMarketAllSolvers(t *testing.T) {
	// A market with no tasks has zero edges; every solver must return an
	// empty assignment without error.
	p := MustNewProblem(emptyMarket(), benefit.DefaultParams())
	for _, s := range allSolvers() {
		sel, err := s.Solve(p, stats.NewRNG(1))
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if len(sel) != 0 {
			t.Fatalf("%s assigned in an empty market", s.Name())
		}
	}
}

// Property: on arbitrary instances every solver is feasible and bounded by
// exact on the linear objective.
func TestQuickSolversFeasibleBounded(t *testing.T) {
	f := func(seed uint64) bool {
		in, err := market.Generate(market.Config{NumWorkers: 12, NumTasks: 12}, seed)
		if err != nil {
			return false
		}
		p, err := NewProblem(in, benefit.DefaultParams())
		if err != nil {
			return false
		}
		exactSel, err := (Exact{Kind: MutualWeight}).Solve(p, nil)
		if err != nil {
			return false
		}
		exact := p.Evaluate(exactSel).TotalMutual
		for _, s := range allSolvers() {
			sel, err := s.Solve(p, stats.NewRNG(seed))
			if err != nil || p.Feasible(sel) != nil {
				return false
			}
			if p.Evaluate(sel).TotalMutual > exact+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
