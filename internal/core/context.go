package core

import (
	"context"
	"fmt"

	"repro/internal/stats"
)

// ContextSolver is the deadline-aware extension of Solver.  A solver that
// implements it promises cooperative cancellation: SolveCtx returns
// ctx.Err() promptly (at its next internal checkpoint) once ctx is done,
// and any partial work is discarded — a non-nil selection is only returned
// alongside a nil error.
//
// Solvers that do not implement the interface are still usable under a
// context through SolveWithContext; they simply run to completion once
// started.
type ContextSolver interface {
	Solver
	SolveCtx(ctx context.Context, p *Problem, r *stats.RNG) ([]int, error)
}

// SolveWithContext invokes s under ctx: its SolveCtx when it has one, the
// plain Solve otherwise (after an upfront cancellation check — an already
// dead context never starts a solve).  A nil ctx means no cancellation.
func SolveWithContext(ctx context.Context, p *Problem, s Solver, r *stats.RNG) ([]int, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if cs, ok := s.(ContextSolver); ok {
		return cs.SolveCtx(ctx, p, r)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return s.Solve(p, r)
}

// safeSolve is SolveWithContext with a panic fence: a panicking solver
// becomes an ordinary error instead of tearing down the serving process.
// Run and the Degrader's stage runner both sit behind it, so a buggy or
// adversarial algorithm can at worst fail its own round.
func safeSolve(ctx context.Context, p *Problem, s Solver, r *stats.RNG) (sel []int, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			sel, err = nil, fmt.Errorf("core: solver %s panicked: %v", s.Name(), rec)
		}
	}()
	return SolveWithContext(ctx, p, s, r)
}

// ctxDone reports whether ctx is non-nil and already cancelled or expired —
// the single-line cooperative checkpoint the iterative solvers poll.
func ctxDone(ctx context.Context) bool {
	return ctx != nil && ctx.Err() != nil
}
