package core

import (
	"testing"

	"repro/internal/benefit"
	"repro/internal/market"
	"repro/internal/stats"
)

func TestAuctionRequiresUnitCapacities(t *testing.T) {
	in := market.MustGenerate(market.Config{
		NumWorkers: 5, NumTasks: 5,
		MinCapacity: 2, MaxCapacity: 2,
	}, 1)
	p := MustNewProblem(in, benefit.DefaultParams())
	if _, err := (Auction{}).Solve(p, nil); err == nil {
		t.Fatal("multi-capacity instance accepted")
	}
	in2 := market.MustGenerate(market.Config{
		NumWorkers: 5, NumTasks: 5,
		MinCapacity: 1, MaxCapacity: 1,
		MinReplication: 2, MaxReplication: 2,
	}, 1)
	p2 := MustNewProblem(in2, benefit.DefaultParams())
	if _, err := (Auction{}).Solve(p2, nil); err == nil {
		t.Fatal("multi-replication instance accepted")
	}
}

func TestAuctionNearOptimal(t *testing.T) {
	for seed := uint64(1); seed <= 15; seed++ {
		p := unitProblem(t, seed)
		aSel, err := (Auction{Epsilon: 1e-5}).Solve(p, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Feasible(aSel); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		eSel, _ := (Exact{Kind: MutualWeight}).Solve(p, nil)
		opt := p.Evaluate(eSel).TotalMutual
		got := p.Evaluate(aSel).TotalMutual
		// ε-optimality: within n·ε of the optimum.
		slack := float64(p.In.NumWorkers()) * 1e-5
		if got < opt-slack-1e-9 {
			t.Fatalf("seed %d: auction %v below opt %v − slack %v", seed, got, opt, slack)
		}
	}
}

func TestAuctionDefaultEpsilon(t *testing.T) {
	p := unitProblem(t, 99)
	sel, err := (Auction{}).Solve(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Feasible(sel); err != nil {
		t.Fatal(err)
	}
}

func TestAuctionEmptyMarket(t *testing.T) {
	p := MustNewProblem(emptyMarket(), benefit.DefaultParams())
	sel, err := (Auction{}).Solve(p, stats.NewRNG(1))
	if err != nil || len(sel) != 0 {
		t.Fatalf("sel=%v err=%v", sel, err)
	}
}
