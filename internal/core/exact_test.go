package core

import (
	"slices"
	"testing"

	"repro/internal/benefit"
	"repro/internal/market"
	"repro/internal/stats"
)

// TestExactBitIdenticalToSerial pins the workspace-reusing exact solver
// against the retained ExactSerial cold path across 20 seeds × all three
// trace generators, solving through one pinned workspace so arena reuse
// between differently-shaped markets is part of what is tested.
func TestExactBitIdenticalToSerial(t *testing.T) {
	ws := NewWorkspace()
	fast := Exact{Kind: MutualWeight, WS: ws}
	ref := ExactSerial{Kind: MutualWeight}
	gens := []func(seed uint64) market.Config{
		func(seed uint64) market.Config { return market.UniformConfig(14+int(seed%5), 10+int(seed%7)) },
		func(seed uint64) market.Config { return market.ZipfConfig(12, 16, 1.1) },
		func(seed uint64) market.Config { return market.FreelanceTraceConfig(16, 12) },
	}
	for gi, gen := range gens {
		for seed := uint64(0); seed < 20; seed++ {
			in := market.MustGenerate(gen(seed), seed*13+1)
			p := MustNewProblem(in, benefit.DefaultParams())
			want, err := ref.Solve(p, nil)
			if err != nil {
				t.Fatal(err)
			}
			got, err := fast.Solve(p, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !slices.Equal(got, want) {
				t.Fatalf("generator %d seed %d: exact %v vs serial %v", gi, seed, got, want)
			}
			if err := p.Feasible(got); err != nil {
				t.Fatalf("generator %d seed %d: infeasible exact result: %v", gi, seed, err)
			}
		}
	}
}

// TestExactQualityKindMatchesSerial covers the non-default weight kind
// through the same pinned-workspace path.
func TestExactQualityKindMatchesSerial(t *testing.T) {
	ws := NewWorkspace()
	in := market.MustGenerate(market.MicrotaskTraceConfig(15, 20), 3)
	p := MustNewProblem(in, benefit.DefaultParams())
	got, err := Exact{Kind: QualityWeight, WS: ws}.Solve(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ExactSerial{Kind: QualityWeight}.Solve(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(got, want) {
		t.Fatalf("quality kind: exact %v vs serial %v", got, want)
	}
}

// TestExactWorkspaceAllocs enforces the steady-state allocation budget of
// the exact path: with a warmed pinned workspace, a solve allocates only
// the returned selection — single digits, not a per-augmentation storm.
func TestExactWorkspaceAllocs(t *testing.T) {
	in := market.MustGenerate(market.FreelanceTraceConfig(60, 45), 7)
	p := MustNewProblem(in, benefit.DefaultParams())
	s := Exact{Kind: MutualWeight, WS: NewWorkspace()}
	if _, err := s.Solve(p, nil); err != nil { // warm the arenas
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := s.Solve(p, stats.NewRNG(0)); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 4 {
		t.Fatalf("steady-state exact solve allocates %.0f/op, want <= 4", allocs)
	}
}
