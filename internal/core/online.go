package core

import (
	"math"
	"sort"

	"repro/internal/stats"
)

// The online variant (MBA-ON in DESIGN.md) models the live platform: workers
// arrive one at a time, in an order drawn uniformly at random (the
// random-order model the companion GOMA paper from the same ICDE session
// uses), and each arrival must be given its tasks irrevocably before the
// next worker is seen.  Task slots are the scarce offline resource.
//
// Three policies are implemented:
//
//	OnlineGreedy   — each arrival takes its best available edges; the
//	                 adversarial-order baseline with the classical ½ bound
//	                 for greedy matching.
//	OnlineRanking  — tasks receive random priorities once, and arrivals score
//	                 edges by weight discounted with the task's priority (the
//	                 Aggarwal et al. perturbation); randomisation hedges
//	                 against unlucky arrival orders.
//	OnlineTwoPhase — sample-then-match: the first SampleFrac of arrivals is
//	                 assigned greedily while their edge values are recorded;
//	                 the remaining arrivals only take edges above the learned
//	                 value threshold (falling back to their single best edge
//	                 when nothing qualifies), reserving scarce slots for
//	                 high-benefit pairs.  This mirrors the two-phase TGOA
//	                 idea from the GOMA paper.
//
// All four policies route their arrival orders, capacity arrays and
// per-arrival candidate sorts through a Workspace, so the round loop of the
// live platform can replay them allocation-lean.

// OnlineGreedy assigns each arriving worker its highest-value available
// edges up to capacity.
type OnlineGreedy struct {
	Kind WeightKind
	// WS optionally pins a reusable workspace.
	WS *Workspace
}

// Name implements Solver.
func (OnlineGreedy) Name() string { return "online-greedy" }

// Solve implements Solver.  The RNG draws the arrival order.
func (s OnlineGreedy) Solve(p *Problem, r *stats.RNG) ([]int, error) {
	ws, pooled := acquireWorkspace(s.WS)
	defer releaseWorkspace(ws, pooled)
	ws.ints = r.PermInto(ws.ints, p.In.NumWorkers())
	arrival := ws.ints
	capT := p.capacityTInto(ws)
	var sel []int
	for _, w := range arrival {
		sel = appendBestEdges(p, s.Kind, w, capT, sel, p.In.Workers[w].Capacity, math.Inf(-1), ws)
	}
	return sel, nil
}

// OnlineRanking perturbs task desirability with fixed random priorities.
type OnlineRanking struct {
	Kind WeightKind
	// WS optionally pins a reusable workspace.
	WS *Workspace
}

// Name implements Solver.
func (OnlineRanking) Name() string { return "online-ranking" }

// Solve implements Solver.  The RNG draws both the arrival order and the
// task priorities.
func (s OnlineRanking) Solve(p *Problem, r *stats.RNG) ([]int, error) {
	ws, pooled := acquireWorkspace(s.WS)
	defer releaseWorkspace(ws, pooled)
	ws.ints = r.PermInto(ws.ints, p.In.NumWorkers())
	arrival := ws.ints
	// Classic Ranking discount: an edge to task t is valued w·(1 − e^{u−1})
	// with u ~ U[0,1); low-u tasks are "spent" first, saving contested tasks
	// for later arrivals.
	prio := make([]float64, p.In.NumTasks())
	for t := range prio {
		prio[t] = 1 - math.Exp(r.Float64()-1)
	}
	capT := p.capacityTInto(ws)
	var sel []int
	for _, w := range arrival {
		need := p.In.Workers[w].Capacity
		if need == 0 {
			continue
		}
		type cand struct {
			ei    int
			score float64
		}
		var cands []cand
		for _, ei := range p.AdjW(w) {
			e := &p.Edges[ei]
			if capT[e.T] > 0 {
				cands = append(cands, cand{int(ei), e.Weight(s.Kind) * prio[e.T]})
			}
		}
		sort.Slice(cands, func(a, b int) bool {
			if cands[a].score != cands[b].score {
				return cands[a].score > cands[b].score
			}
			return cands[a].ei < cands[b].ei
		})
		for _, c := range cands {
			if need == 0 {
				break
			}
			e := &p.Edges[c.ei]
			if capT[e.T] > 0 {
				capT[e.T]--
				need--
				sel = append(sel, c.ei)
			}
		}
	}
	return sel, nil
}

// OnlineTwoPhase learns a value threshold from an observation phase.
type OnlineTwoPhase struct {
	Kind WeightKind
	// SampleFrac is the fraction of arrivals in the observation phase;
	// 0 means the default 1/e (the secretary-problem split).
	SampleFrac float64
	// ThresholdQuantile is the quantile of observed assigned-edge values used
	// as the acceptance bar in phase two; 0 means the default 0.5 (median).
	ThresholdQuantile float64
	// WS optionally pins a reusable workspace.
	WS *Workspace
}

// Name implements Solver.
func (OnlineTwoPhase) Name() string { return "online-twophase" }

// Solve implements Solver.  The RNG draws the arrival order.
func (s OnlineTwoPhase) Solve(p *Problem, r *stats.RNG) ([]int, error) {
	ws, pooled := acquireWorkspace(s.WS)
	defer releaseWorkspace(ws, pooled)
	frac := s.SampleFrac
	if frac <= 0 || frac >= 1 {
		frac = 1 / math.E
	}
	quant := s.ThresholdQuantile
	if quant <= 0 || quant >= 1 {
		quant = 0.5
	}
	ws.ints = r.PermInto(ws.ints, p.In.NumWorkers())
	arrival := ws.ints
	cut := int(math.Ceil(frac * float64(len(arrival))))
	capT := p.capacityTInto(ws)
	var sel []int

	// Phase 1: assign greedily (refusing everyone would waste real benefit)
	// while recording the values of the edges taken.
	var observed []float64
	for _, w := range arrival[:cut] {
		before := len(sel)
		sel = appendBestEdges(p, s.Kind, w, capT, sel, p.In.Workers[w].Capacity, math.Inf(-1), ws)
		for _, ei := range sel[before:] {
			observed = append(observed, p.Edges[ei].Weight(s.Kind))
		}
	}
	threshold := math.Inf(-1)
	if len(observed) > 0 {
		sort.Float64s(observed)
		threshold = stats.Percentile(observed, quant)
	}

	// Phase 2: accept only above-threshold edges; a worker with capacity but
	// no qualifying edge still takes its single best available edge so the
	// policy never strands supply outright.
	for _, w := range arrival[cut:] {
		before := len(sel)
		sel = appendBestEdges(p, s.Kind, w, capT, sel, p.In.Workers[w].Capacity, threshold, ws)
		if len(sel) == before && p.In.Workers[w].Capacity > 0 {
			sel = appendBestEdges(p, s.Kind, w, capT, sel, 1, math.Inf(-1), ws)
		}
	}
	return sel, nil
}

// OnlineTaskGreedy is the demand-side online variant: *tasks* arrive one at
// a time (the spatial-crowdsourcing regime of the companion GOMA paper) and
// each must immediately recruit its panel from the workers' remaining
// capacity.  Each arrival takes its best eligible workers by edge value,
// up to its replication requirement.
type OnlineTaskGreedy struct {
	Kind WeightKind
	// WS optionally pins a reusable workspace.
	WS *Workspace
}

// Name implements Solver.
func (OnlineTaskGreedy) Name() string { return "online-task-greedy" }

// Solve implements Solver.  The RNG draws the task arrival order.
func (s OnlineTaskGreedy) Solve(p *Problem, r *stats.RNG) ([]int, error) {
	ws, pooled := acquireWorkspace(s.WS)
	defer releaseWorkspace(ws, pooled)
	ws.ints = r.PermInto(ws.ints, p.In.NumTasks())
	arrival := ws.ints
	capW := p.capacityWInto(ws)
	var sel []int
	for _, t := range arrival {
		need := p.In.Tasks[t].Replication
		adj := p.AdjT(t)
		ws.order = growI32(ws.order, len(adj))[:0]
		order := ws.order
		for _, ei := range adj {
			if capW[p.Edges[ei].W] > 0 {
				order = append(order, ei)
			}
		}
		sortEdgesByWeightWS(p, s.Kind, order, ws)
		for _, ei := range order {
			if need == 0 {
				break
			}
			e := &p.Edges[ei]
			if capW[e.W] > 0 {
				capW[e.W]--
				need--
				sel = append(sel, int(ei))
			}
		}
	}
	return sel, nil
}

// appendBestEdges gives worker w up to limit of its best available edges
// with value >= minValue, decrementing capT in place, and returns the
// extended selection.  Candidate collection and the weight sort run in ws.
func appendBestEdges(p *Problem, kind WeightKind, w int, capT []int, sel []int, limit int, minValue float64, ws *Workspace) []int {
	if limit <= 0 {
		return sel
	}
	adj := p.AdjW(w)
	ws.order = growI32(ws.order, len(adj))[:0]
	order := ws.order
	for _, ei := range adj {
		e := &p.Edges[ei]
		if capT[e.T] > 0 && e.Weight(kind) >= minValue {
			order = append(order, ei)
		}
	}
	sortEdgesByWeightWS(p, kind, order, ws)
	for _, ei := range order {
		if limit == 0 {
			break
		}
		e := &p.Edges[ei]
		if capT[e.T] > 0 {
			capT[e.T]--
			limit--
			sel = append(sel, int(ei))
		}
	}
	return sel
}
