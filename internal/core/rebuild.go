package core

import (
	"repro/internal/benefit"
	"repro/internal/market"
)

// RebuildProblem rebuilds prev in place for a new instance, reusing every
// backing array of the previous build that is still large enough — the
// edge arena, both CSR adjacency arrays, both offset arrays and the
// counting scratch.  When the market shape is stable round over round (the
// steady state of the serving loop), a rebuild's only fresh allocation is
// the benefit model's memo tables.
//
// The returned Problem is prev itself: its previous Edges and adjacency are
// overwritten, so the caller must be the sole owner of prev and must not
// retain views into it across rebuilds (the platform service copies
// assignment pairs out of each round's result before the next rebuild).
// A nil prev is equivalent to NewProblem.
func RebuildProblem(prev *Problem, in *market.Instance, params benefit.Params) (*Problem, error) {
	if prev == nil {
		return NewProblem(in, params)
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	model, err := benefit.NewModel(in, params)
	if err != nil {
		return nil, err
	}
	prev.In, prev.Model = in, model
	prev.build(0)
	return prev, nil
}
