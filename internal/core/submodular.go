package core

import (
	"container/heap"

	"repro/internal/benefit"
	"repro/internal/stats"
)

// SubmodularValue evaluates the MBA-S (diminishing-returns) objective of an
// assignment: per task, the majority-vote correctness of its assigned panel
// (rescaled from [0.5,1] to [0,1] like Quality) weighted by λ, plus the
// (1−λ)-weighted worker utilities.  Tasks with empty panels contribute zero
// quality — the requester learned nothing.
//
// This is the objective the paper's hardness story lives in: per-task
// quality is a set function with diminishing returns, so edge weights no
// longer add up and matching-based exact solvers do not apply.
func (p *Problem) SubmodularValue(sel []int) float64 {
	lambda := p.Model.Params().Lambda
	accs := make(map[int][]float64)
	workerPart := 0.0
	for _, ei := range sel {
		e := &p.Edges[ei]
		w := &p.In.Workers[e.W]
		t := &p.In.Tasks[e.T]
		accs[e.T] = append(accs[e.T], p.Model.EffectiveAccuracy(w, t))
		workerPart += e.B
	}
	qualityPart := 0.0
	for _, a := range accs {
		qualityPart += 2 * (benefit.MajorityCorrectProb(a) - 0.5)
	}
	return lambda*qualityPart + (1-lambda)*workerPart
}

// SubmodularGreedy maximises the MBA-S objective with the lazy ("CELF")
// marginal-gain greedy.  Feasible sets are the intersection of two partition
// matroids, so the greedy inherits the classical ½ guarantee for monotone
// submodular maximisation over that constraint family.
//
// Laziness matters: adding a worker to task t changes the marginal gain only
// of other edges into t, so stale heap entries are re-evaluated on pop
// instead of rebuilding the heap after every pick.  Version counters per
// task detect staleness.
type SubmodularGreedy struct{}

// Name implements Solver.
func (SubmodularGreedy) Name() string { return "submodular-greedy" }

// Solve implements Solver.  Deterministic; the RNG is unused.
func (SubmodularGreedy) Solve(p *Problem, _ *stats.RNG) ([]int, error) {
	lambda := p.Model.Params().Lambda
	capW := p.CapacityW()
	capT := p.CapacityT()

	// Effective accuracy per edge, precomputed once.
	effacc := make([]float64, len(p.Edges))
	for i := range p.Edges {
		e := &p.Edges[i]
		effacc[i] = p.Model.EffectiveAccuracy(&p.In.Workers[e.W], &p.In.Tasks[e.T])
	}
	panels := make([][]float64, p.In.NumTasks()) // accuracies assigned so far
	taskVersion := make([]int, p.In.NumTasks())  // bumped on every panel change
	base := make([]float64, p.In.NumTasks())     // current majority prob per task
	for t := range base {
		base[t] = 0.5
	}

	gain := func(ei int) float64 {
		e := &p.Edges[ei]
		after := benefit.MajorityCorrectProb(append(append(
			make([]float64, 0, len(panels[e.T])+1), panels[e.T]...), effacc[ei]))
		dq := 2 * (after - base[e.T])
		if dq < 0 {
			dq = 0
		}
		return lambda*dq + (1-lambda)*e.B
	}

	h := &gainHeap{}
	heap.Init(h)
	for ei := range p.Edges {
		heap.Push(h, gainEntry{edge: ei, gain: gain(ei), version: 0})
	}

	var sel []int
	for h.Len() > 0 {
		top := heap.Pop(h).(gainEntry)
		e := &p.Edges[top.edge]
		if capW[e.W] == 0 || capT[e.T] == 0 {
			continue // permanently infeasible; drop
		}
		if top.version != taskVersion[e.T] {
			// Stale: recompute against the current panel and re-queue.
			heap.Push(h, gainEntry{edge: top.edge, gain: gain(top.edge), version: taskVersion[e.T]})
			continue
		}
		if top.gain <= 0 {
			break // all remaining moves are worthless; gains only shrink
		}
		capW[e.W]--
		capT[e.T]--
		panels[e.T] = append(panels[e.T], effacc[top.edge])
		base[e.T] = benefit.MajorityCorrectProb(panels[e.T])
		taskVersion[e.T]++
		sel = append(sel, top.edge)
	}
	return sel, nil
}

// gainEntry is one heap element: an edge with the gain computed at the given
// task version.
type gainEntry struct {
	edge    int
	gain    float64
	version int
}

// gainHeap is a max-heap over gains (ties by edge index for determinism).
type gainHeap []gainEntry

func (h gainHeap) Len() int { return len(h) }
func (h gainHeap) Less(i, j int) bool {
	if h[i].gain != h[j].gain {
		return h[i].gain > h[j].gain
	}
	return h[i].edge < h[j].edge
}
func (h gainHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *gainHeap) Push(x interface{}) { *h = append(*h, x.(gainEntry)) }
func (h *gainHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
